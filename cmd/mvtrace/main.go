// Command mvtrace pretty-prints flight-recorder dumps: the bounded
// event ring the always-on recorder snapshots when a commit aborts, the
// text auditor trips or a chaos property fails. It reads either a
// standalone dump (mvrun -flight, mvstress's <artifact>.flight.json) or
// an mvstress repro artifact with an embedded "flight" field.
//
//	mvtrace [-timeline] dump.json
//	mvtrace -snap state.snap
//
// With -snap the argument is a deterministic machine snapshot (mvrun
// -checkpoint / -flight-snap, mvstress artifacts) and mvtrace prints
// its header — cycle, image hash, CPU/page/runtime inventory — and the
// canonical digest two byte-identical machine states share.
//
// The default view is a flat table — one row per event with its cycle,
// causality span, kind and decoded payload. With -timeline events are
// grouped by commit-causality span and each span is rendered as a
// phase timeline (stop-machine, herd, poke, rollback) with per-phase
// latencies and proportional bars, so the shape of a failing commit —
// rendezvous, then poke phases, then rollback — reads at a glance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

var (
	timeline = flag.Bool("timeline", false, "group events by causality span and render per-span phase timelines")
	snapView = flag.Bool("snap", false, "the argument is a machine snapshot (.snap): print its header and digest")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mvtrace [-timeline] dump.json\n       mvtrace -snap state.snap\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *snapView {
		if err := renderSnap(os.Stdout, flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "mvtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	d, err := readDump(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvtrace: %v\n", err)
		os.Exit(1)
	}
	if err := render(os.Stdout, d, *timeline); err != nil {
		fmt.Fprintf(os.Stderr, "mvtrace: %v\n", err)
		os.Exit(1)
	}
}

// renderSnap prints a machine snapshot's header and canonical digest —
// the quick "what state is this, and is it the same state as that one"
// view (two snapshots of the same simulated machine state print the
// same digest, byte for byte).
func renderSnap(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	digest, err := snapshot.Digest(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	s, err := snapshot.Decode(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "snapshot: %s\n", path)
	fmt.Fprintf(w, "  digest   %s\n", digest)
	fmt.Fprintf(w, "  cycle    %d\n", s.SimCycles)
	fmt.Fprintf(w, "  image    %x\n", s.ImageSum)
	fmt.Fprintf(w, "  pages    %d (%d KiB), console %d bytes\n",
		len(s.Pages), len(s.Pages)*mem.PageSize/1024, len(s.Console))
	for i, c := range s.CPUs {
		state := "running"
		if c.Halted {
			state = "halted"
		}
		fmt.Fprintf(w, "  cpu%-4d  pc=%#x cycles=%d %s\n", i, c.PC, c.Cycles, state)
	}
	if s.Runtime == nil {
		fmt.Fprintf(w, "  runtime  none (machine-only snapshot)\n")
		return nil
	}
	committed := 0
	for _, f := range s.Runtime.Funcs {
		if f.CommittedAddr != 0 {
			committed++
		}
	}
	fmt.Fprintf(w, "  runtime  %d function(s) (%d bound), %d fn-ptr(s), %d deferred op(s), op-seq %d\n",
		len(s.Runtime.Funcs), committed, len(s.Runtime.FnPtrs), len(s.Runtime.Deferred), s.Runtime.OpSeq)
	return nil
}

// readDump loads a flight dump from path: either a bare FlightDump or
// an mvstress repro artifact whose "flight" field embeds one.
func readDump(path string) (*trace.FlightDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wrapped struct {
		Flight *trace.FlightDump `json:"flight"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && wrapped.Flight != nil {
		return wrapped.Flight, nil
	}
	var d trace.FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: not a flight dump: %v", path, err)
	}
	if d.Events == nil && d.Reason == "" {
		return nil, fmt.Errorf("%s: not a flight dump (no reason, no events)", path)
	}
	return &d, nil
}

// render writes the dump to w in the selected view.
func render(w io.Writer, d *trace.FlightDump, timeline bool) error {
	fmt.Fprintf(w, "flight dump: reason=%q cycle=%d events=%d", d.Reason, d.Cycle, len(d.Events))
	if d.Dropped > 0 {
		fmt.Fprintf(w, " (ring overwrote %d older events)", d.Dropped)
	}
	fmt.Fprintln(w)
	evs, err := decodeEvents(d)
	if err != nil {
		return err
	}
	if timeline {
		return renderTimeline(w, evs)
	}
	return renderTable(w, evs)
}

func decodeEvents(d *trace.FlightDump) ([]trace.Event, error) {
	evs := make([]trace.Event, len(d.Events))
	for i, fe := range d.Events {
		ev, err := fe.Event()
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	return evs, nil
}

func renderTable(w io.Writer, evs []trace.Event) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "CYCLE\tSPAN\tKIND\tADDR\tDETAIL")
	for _, ev := range evs {
		span, addr := "-", "-"
		if ev.Span != 0 {
			span = strconv.FormatUint(ev.Span, 10)
		}
		if ev.Addr != 0 {
			addr = fmt.Sprintf("%#x", ev.Addr)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			ev.Cycle, span, ev.Kind.Name(), addr, trace.EventDetail(ev))
	}
	return tw.Flush()
}

// spanGroup is one causality span's events, in dump order.
type spanGroup struct {
	span uint64
	evs  []trace.Event
}

// groupSpans splits events by span, preserving first-appearance order.
// Unspanned events (span 0) form a trailing group.
func groupSpans(evs []trace.Event) []*spanGroup {
	var groups []*spanGroup
	index := map[uint64]*spanGroup{}
	var loose *spanGroup
	for _, ev := range evs {
		if ev.Span == 0 {
			if loose == nil {
				loose = &spanGroup{}
			}
			loose.evs = append(loose.evs, ev)
			continue
		}
		g := index[ev.Span]
		if g == nil {
			g = &spanGroup{span: ev.Span}
			index[ev.Span] = g
			groups = append(groups, g)
		}
		g.evs = append(g.evs, ev)
	}
	if loose != nil {
		groups = append(groups, loose)
	}
	return groups
}

// spanLabel summarizes what operation a span's events trace.
func spanLabel(evs []trace.Event) string {
	op, outcome := "", ""
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindCommitBegin:
			if op == "" {
				op = "commit"
			}
		case trace.KindRevertBegin:
			if op == "" {
				op = "revert"
			}
		case trace.KindDrainBegin:
			if op == "" {
				op = "drain"
			}
		case trace.KindCommitAbort:
			outcome = "aborted"
		case trace.KindCommitEnd, trace.KindRevertEnd:
			if outcome == "" {
				outcome = "ok"
			}
		}
	}
	switch {
	case op == "" && outcome == "":
		return ""
	case outcome == "":
		return op
	case op == "":
		return outcome
	}
	return op + " " + outcome
}

const barWidth = 32

// bar renders a proportional [start,end] bar against [first,last].
func bar(first, last, start, end uint64) string {
	if last <= first {
		return ""
	}
	total := last - first
	lo := int(uint64(barWidth) * (start - first) / total)
	hi := int(uint64(barWidth) * (end - first) / total)
	if hi <= lo {
		hi = lo + 1
	}
	if hi > barWidth {
		hi = barWidth
	}
	return "|" + strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) +
		strings.Repeat(" ", barWidth-hi) + "|"
}

func renderTimeline(w io.Writer, evs []trace.Event) error {
	for _, g := range groupSpans(evs) {
		first := g.evs[0].Cycle
		last := g.evs[len(g.evs)-1].Cycle
		if g.span == 0 {
			fmt.Fprintf(w, "\nunspanned: %d event(s)\n", len(g.evs))
		} else {
			header := fmt.Sprintf("span %d", g.span)
			if label := spanLabel(g.evs); label != "" {
				header += " (" + label + ")"
			}
			fmt.Fprintf(w, "\n%s: cycles %d..%d (%d cycles, %d events)\n",
				header, first, last, last-first, len(g.evs))
		}
		tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		// Phase pairs collapse to one line at the PhaseEnd, annotated
		// with the latency since the matching PhaseBegin.
		open := map[string]uint64{}
		for _, ev := range g.evs {
			switch ev.Kind {
			case trace.KindPhaseBegin:
				open[ev.Name] = ev.Cycle
				continue
			case trace.KindPhaseEnd:
				begin, ok := open[ev.Name]
				if !ok {
					begin = first
				}
				delete(open, ev.Name)
				fmt.Fprintf(tw, "  +%d\tphase %s\t%d cycles\t%s\n",
					begin-first, ev.Name, ev.Cycle-begin, bar(first, last, begin, ev.Cycle))
				continue
			}
			fmt.Fprintf(tw, "  +%d\t%s\t%s\t%s\n",
				ev.Cycle-first, ev.Kind.Name(), trace.EventDetail(ev), bar(first, last, ev.Cycle, ev.Cycle))
		}
		// A phase left open means the failure struck mid-phase — worth
		// calling out rather than silently dropping.
		for name, begin := range open {
			fmt.Fprintf(tw, "  +%d\tphase %s\tunfinished\t%s\n",
				begin-first, name, bar(first, last, begin, last))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
