package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// sampleDump synthesizes the dump an aborted stop-machine commit
// leaves behind: rendezvous, poke phases, rollback, abort — all on one
// causality span — plus an unspanned watchdog alert.
func sampleDump() trace.FlightDump {
	cycle := uint64(1000)
	rec := trace.NewRecorder(0)
	rec.SetClock(func() uint64 { cycle += 100; return cycle })

	rec.SetSpan(7)
	rec.EmitName(trace.KindCommitBegin, 0x1000, 0, 0, "multi")
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "stop-machine")
	rec.Emit(trace.KindRendezvous, 0, 40, 2)
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "poke")
	rec.Emit(trace.KindPokePhase, 0x1010, 4, 1)
	rec.EmitName(trace.KindPhaseEnd, 0, 0, 0, "poke")
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "rollback")
	rec.Emit(trace.KindRollback, 0x1010, 4, 0)
	rec.EmitName(trace.KindPhaseEnd, 0, 0, 0, "rollback")
	rec.EmitName(trace.KindPhaseEnd, 0, 0, 0, "stop-machine")
	rec.Emit(trace.KindCommitAbort, 0, 3, 0)
	rec.SetSpan(0)
	rec.EmitName(trace.KindWatchdogAlert, 0, 9000, 5000, "rendezvous-latency")

	return rec.Dump("test abort")
}

func writeDump(t *testing.T, name string, write func(w io.Writer) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadDumpStandalone(t *testing.T) {
	d := sampleDump()
	path := writeDump(t, "dump.json", d.WriteJSON)

	got, err := readDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "test abort" || len(got.Events) != len(d.Events) {
		t.Fatalf("readDump = reason=%q events=%d, want reason=%q events=%d",
			got.Reason, len(got.Events), d.Reason, len(d.Events))
	}
}

func TestReadDumpArtifactWrapped(t *testing.T) {
	d := sampleDump()
	path := writeDump(t, "artifact.json", func(w io.Writer) error {
		if _, err := io.WriteString(w, `{"seed": 42, "error": "boom", "flight": `); err != nil {
			return err
		}
		if err := d.WriteJSON(w); err != nil {
			return err
		}
		_, err := io.WriteString(w, "}\n")
		return err
	})

	got, err := readDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "test abort" || len(got.Events) != len(d.Events) {
		t.Fatalf("wrapped readDump = reason=%q events=%d, want %q/%d",
			got.Reason, len(got.Events), d.Reason, len(d.Events))
	}
}

func TestReadDumpRejectsGarbage(t *testing.T) {
	path := writeDump(t, "garbage.json", func(w io.Writer) error {
		_, err := io.WriteString(w, `{"seed": 1}`)
		return err
	})
	if _, err := readDump(path); err == nil {
		t.Fatal("readDump accepted a JSON object that is not a flight dump")
	}
}

func TestRenderTable(t *testing.T) {
	d := sampleDump()
	var sb strings.Builder
	if err := render(&sb, &d, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`reason="test abort"`,
		"CYCLE", "SPAN", "KIND", "DETAIL",
		"CommitBegin", "func=multi",
		"Rendezvous", "latency=40 ranges=2",
		"PokePhase", "len=4 phase=1",
		"CommitAbort", "rolled_back=3",
		"WatchdogAlert", "rule=rendezvous-latency value=9000 threshold=5000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	d := sampleDump()
	var sb strings.Builder
	if err := render(&sb, &d, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"span 7 (commit aborted)",
		"phase stop-machine",
		"phase poke",
		"phase rollback",
		"Rendezvous",
		"unspanned: 1 event(s)",
		"WatchdogAlert",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
	// Phases must carry their measured latencies: poke spans two emits
	// at 100 cycles apart (begin at its PhaseBegin, end at PhaseEnd).
	if !strings.Contains(out, "200 cycles") {
		t.Errorf("timeline output missing poke phase latency:\n%s", out)
	}
}

// TestRenderTimelineOSRPhases pins the OSR span rendering: an
// on-stack-replacement commit emits osr-herd (victims stepped to
// mapped points) and osr-transfer (frame rewrite) phases inside the
// rendezvous, and -timeline must render both with latencies.
func TestRenderTimelineOSRPhases(t *testing.T) {
	cycle := uint64(0)
	rec := trace.NewRecorder(0)
	rec.SetClock(func() uint64 { cycle += 25; return cycle })
	rec.SetSpan(3)
	rec.EmitName(trace.KindCommitBegin, 0x2000, 0, 0, "spin_lock")
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "stop-machine")
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "osr-herd")
	rec.EmitName(trace.KindPhaseEnd, 0, 0, 0, "osr-herd")
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "osr-transfer")
	rec.EmitName(trace.KindPhaseEnd, 0, 0, 0, "osr-transfer")
	rec.EmitName(trace.KindPhaseEnd, 0, 0, 0, "stop-machine")
	rec.Emit(trace.KindCommitEnd, 0x2000, 1, 0)
	d := rec.Dump("osr commit")

	var sb strings.Builder
	if err := render(&sb, &d, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"span 3 (commit ok)",
		"phase osr-herd",
		"phase osr-transfer",
		"phase stop-machine",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimelineUnfinishedPhase(t *testing.T) {
	cycle := uint64(0)
	rec := trace.NewRecorder(0)
	rec.SetClock(func() uint64 { cycle += 10; return cycle })
	rec.SetSpan(1)
	rec.EmitName(trace.KindCommitBegin, 0, 0, 0, "f")
	rec.EmitName(trace.KindPhaseBegin, 0, 0, 0, "poke")
	rec.Emit(trace.KindCommitAbort, 0, 1, 0)
	d := rec.Dump("mid-phase")

	var sb strings.Builder
	if err := render(&sb, &d, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unfinished") {
		t.Errorf("timeline did not flag the unfinished phase:\n%s", sb.String())
	}
}
