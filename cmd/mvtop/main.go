// Command mvtop renders a refreshing terminal view of a multiverse
// metrics snapshot: top functions by variant residency, commit-latency
// percentiles, patch/flush rates and decode-cache effectiveness.
//
// It reads the same Snapshot JSON everywhere it looks — live from a
// running mvrun's /metrics.json endpoint, or recorded from a JSONL
// sampler file — so a saved run replays exactly like a live one:
//
//	mvtop -addr localhost:9090            # poll a live mvrun
//	mvtop -file samples.jsonl             # replay a -sample recording
//	mvtop -file samples.jsonl -once       # print the final frame only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
)

var (
	addr     = flag.String("addr", "", "poll http://addr/metrics.json of a live mvrun")
	file     = flag.String("file", "", "replay a JSONL sampler file written by mvrun -sample")
	interval = flag.Duration("interval", time.Second, "refresh / replay interval")
	once     = flag.Bool("once", false, "render a single frame and exit")
	topN     = flag.Int("top", 10, "function/variant rows to show")
)

func main() {
	flag.Parse()
	if (*addr == "") == (*file == "") {
		fmt.Fprintln(os.Stderr, "usage: mvtop (-addr host:port | -file samples.jsonl) [-interval 1s] [-once] [-top n]")
		os.Exit(2)
	}
	var err error
	if *file != "" {
		err = replayFile(*file)
	} else {
		err = pollLive(*addr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvtop: %v\n", err)
		os.Exit(1)
	}
}

// replayFile steps through the rows of a JSONL sampler file, one frame
// per interval (or just the last frame with -once). A truncated final
// row — a run that died mid-write — is dropped rather than fatal, so
// crash recordings replay.
func replayFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snaps, err := metrics.ReadSnapshotLog(f)
	if err != nil {
		return fmt.Errorf("%s: %w (is this a -sample-format jsonl file?)", path, err)
	}
	if len(snaps) == 0 {
		return fmt.Errorf("%s: no snapshots", path)
	}
	if *once {
		render(&snaps[len(snaps)-1], fmt.Sprintf("%s [%d/%d]", path, len(snaps), len(snaps)))
		return nil
	}
	for i := range snaps {
		clearScreen()
		render(&snaps[i], fmt.Sprintf("%s [%d/%d]", path, i+1, len(snaps)))
		if i < len(snaps)-1 {
			time.Sleep(*interval)
		}
	}
	return nil
}

// pollLive fetches /metrics.json until the serving mvrun goes away.
func pollLive(addr string) error {
	url := "http://" + addr + "/metrics.json"
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		snap, err := fetch(client, url)
		if err != nil {
			return err
		}
		if !*once {
			clearScreen()
		}
		render(snap, url)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (*metrics.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func clearScreen() { fmt.Print("\x1b[2J\x1b[H") }

// value returns the first series value of a family (the common case of
// unlabeled counters/gauges), 0 if absent.
func value(snap *metrics.Snapshot, name string) float64 {
	fam := snap.Find(name)
	if fam == nil {
		return 0
	}
	for _, s := range fam.Series {
		if s.Value != nil {
			return *s.Value
		}
	}
	return 0
}

func hist(snap *metrics.Snapshot, name string) *metrics.HistSnapshot {
	fam := snap.Find(name)
	if fam == nil {
		return nil
	}
	for _, s := range fam.Series {
		if s.Hist != nil {
			return s.Hist
		}
	}
	return nil
}

func render(snap *metrics.Snapshot, source string) {
	fmt.Printf("mvtop — %s\n", source)
	// A run restored from a checkpoint starts its cycle counter at the
	// checkpoint, not 0. Say so, and show the window this run actually
	// executed — the denominator rate math must use for the first
	// sample (cumulative counters were restored along with the clock).
	cycle := fmt.Sprintf("cycle %d", snap.Cycle)
	if snap.BaseCycle > 0 {
		cycle = fmt.Sprintf("cycle %d (restored @%d, ran %d)",
			snap.Cycle, snap.BaseCycle, snap.WindowCycles())
	}
	fmt.Printf("%s   instructions %.0f   commits %.0f   reverts %.0f\n",
		cycle,
		value(snap, "mv_instructions_total"),
		value(snap, "mv_commits_total"),
		value(snap, "mv_reverts_total"))
	fmt.Printf("decode-cache hit %5.1f%%   superblock %5.1f%%   icache flushes/Minst %8.2f   protects/Minst %8.2f\n",
		value(snap, "mv_decode_hit_ratio")*100,
		value(snap, "mv_superblock_hit_ratio")*100,
		value(snap, "mv_icache_flush_rate_per_minst"),
		value(snap, "mv_protect_rate_per_minst"))

	if lat := hist(snap, "mv_commit_latency_cycles"); lat != nil && lat.Count > 0 {
		p50, _ := lat.Quantile(0.50)
		p90, _ := lat.Quantile(0.90)
		p99, _ := lat.Quantile(0.99)
		line := fmt.Sprintf("commit latency (modeled cycles): count %d  mean %.0f  p50<=%d  p90<=%d  p99<=%d",
			lat.Count, lat.Mean(), p50, p90, p99)
		if sites := hist(snap, "mv_commit_sites"); sites != nil && sites.Count > 0 {
			line += fmt.Sprintf("   sites/commit %.1f", sites.Mean())
		}
		fmt.Println(line)
	} else {
		fmt.Println("commit latency: no commits observed yet")
	}

	fmt.Println()
	renderResidency(snap)
}

// renderResidency prints the top function/variant pairs by cycles of
// residency, with each function's share of total tracked cycles.
func renderResidency(snap *metrics.Snapshot) {
	fam := snap.Find("mv_variant_residency_cycles")
	if fam == nil || len(fam.Series) == 0 {
		fmt.Println("no variant residency data (is a runtime attached?)")
		return
	}
	type row struct {
		fn, variant string
		cycles      float64
	}
	var rows []row
	var total float64
	for _, s := range fam.Series {
		if s.Value == nil {
			continue
		}
		rows = append(rows, row{s.Labels["function"], s.Labels["variant"], *s.Value})
		total += *s.Value
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].fn+rows[i].variant < rows[j].fn+rows[j].variant
	})
	if len(rows) > *topN {
		rows = rows[:*topN]
	}
	fmt.Printf("%-24s %-28s %14s %7s\n", "FUNCTION", "VARIANT", "CYCLES", "SHARE")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = r.cycles / total * 100
		}
		fmt.Printf("%-24s %-28s %14.0f %6.1f%%\n", r.fn, r.variant, r.cycles, share)
	}
}
