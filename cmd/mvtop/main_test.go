package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReplayFileToleratesTruncatedFinalRow covers the crash-recording
// case end to end: a sampler file whose last row was torn mid-write
// must still replay its intact rows instead of erroring out.
func TestReplayFileToleratesTruncatedFinalRow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	rows := `{"cycle": 100, "metrics": []}
{"cycle": 200, "metrics": []}
{"cycle": 300, "metr`
	if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
		t.Fatal(err)
	}

	*once = true
	defer func() { *once = false }()
	out := captureStdout(t, func() {
		if err := replayFile(path); err != nil {
			t.Errorf("replayFile: %v", err)
		}
	})
	// The final frame is the last intact row, cycle 200.
	if !strings.Contains(out, "cycle 200") {
		t.Errorf("final frame should be the last intact snapshot:\n%s", out)
	}
	if !strings.Contains(out, "[2/2]") {
		t.Errorf("frame counter should reflect only intact rows:\n%s", out)
	}
}

func TestReplayFileRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	rows := `{"cycle": 100, "metrics": []}
{"cycle": 200, "metr
{"cycle": 300, "metrics": []}
`
	if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := replayFile(path); err == nil {
		t.Fatal("mid-file corruption should be an error")
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}
