// Command mvstress sweeps seeded chaos runs over the multiverse
// runtime: each seed drives a deterministic fault plan (write tears,
// protection faults, dropped icache shootdowns, spurious fetch
// faults) against random commit/revert sequences on the paper's E1
// spinlock kernel or E4 mini-musl workload, asserting after every
// operation that aborted commits roll back to a byte-identical image,
// the text auditor stays green, and workload semantics survive.
//
//	mvstress [-seeds n] [-seed-base s] [-workload e1|e4|all] [-smp] \
//	         [-steps n] [-faults n] [-artifact out.json] [-v]
//
// With -concurrent it instead sweeps the cross-modifying-commit
// property runs: operations land mid-execution on running CPUs under
// the stop-machine rendezvous ("stop") or the BRK text-poke protocol
// ("poke"). -onactive selects what a commit does when the patched
// function is live on a CPU stack: queue it for the next quiescent
// point ("defer") or transfer the live frames into the new variant
// inside the rendezvous ("osr", on-stack replacement — every deferral
// must then be an accounted fallback, which the run asserts):
//
//	mvstress -concurrent [-cpus 1|2] [-mode stop|poke|all] [-onactive defer|osr|all] ...
//
// On failure it prints the offending seed and configuration, writes a
// JSON repro artifact if -artifact is given (for concurrent runs the
// artifact records the effective per-CPU scheduler quanta), and exits
// nonzero. The artifact embeds the failing run's flight-recorder dump
// (the last commit-lifecycle events before the violation) and a
// standalone copy is written next to it as <artifact>.flight.json for
// mvtrace. Non-concurrent failures additionally get a machine snapshot
// taken at the op preceding the violation, written as <artifact>.snap
// (readable with mvtrace -snap). Any reported seed reproduces exactly:
//
//	mvstress -seeds 1 -seed-base <seed> -workload <w> [-smp]
//	mvstress -seeds 1 -seed-base <seed> -workload <w> -concurrent -cpus <n> -mode <m>
//
// With -replay-snap the argument is a previously written artifact:
// mvstress resumes the failed run from its embedded snapshot — no
// re-execution from cycle zero — expects the recorded violation to
// reproduce, and cross-checks the result against the full seed-based
// rerun:
//
//	mvstress -replay-snap artifact.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

var (
	seeds    = flag.Int("seeds", 50, "number of seeds to sweep per configuration")
	seedBase = flag.Int64("seed-base", 1, "first seed in the sweep")
	workload = flag.String("workload", "all", "workload to stress: e1, e4 or all")
	smp      = flag.Bool("smp", false, "restrict the sweep to SMP configurations (default sweeps both)")
	steps    = flag.Int("steps", 40, "runtime operations per run")
	faults   = flag.Int("faults", 6, "armed fault points per run")
	artifact = flag.String("artifact", "", "write a JSON repro artifact here on failure")
	sabotage = flag.Int("sabotage", 0, "corrupt a text byte after n operations (guaranteed violation; exercises the failure/artifact path)")
	verbose  = flag.Bool("v", false, "print a line per run")

	concurrent = flag.Bool("concurrent", false, "sweep cross-modifying-commit runs (ops land on running CPUs)")
	cpus       = flag.Int("cpus", 0, "concurrent mode: CPU count 1 or 2 (default sweeps both)")
	mode       = flag.String("mode", "all", "concurrent mode: stop, poke or all")
	onActive   = flag.String("onactive", "defer", "concurrent activeness policy: defer, osr or all")

	replaySnap = flag.String("replay-snap", "", "replay a failure artifact from its <artifact>.snap snapshot and cross-check against the seed-based rerun")
)

// failure is the repro artifact written for the first failing seed.
// Quanta records the effective per-CPU scheduler quanta of concurrent
// runs, so the artifact captures the exact interleaving schedule.
type failure struct {
	Seed   int64             `json:"seed"`
	Config chaos.Config      `json:"config"`
	Quanta []int             `json:"quanta,omitempty"`
	Error  string            `json:"error"`
	Flight *trace.FlightDump `json:"flight,omitempty"`
	// Replay pins the snapshot-based reproduction of non-concurrent
	// failures; the snapshot bytes themselves live in <artifact>.snap,
	// tied to this record by Replay.Digest.
	Replay *chaos.ReplayInfo `json:"replay,omitempty"`
}

func configs() []chaos.Config {
	var names []string
	switch *workload {
	case "all":
		names = []string{"e1", "e4"}
	case "e1", "e4":
		names = []string{*workload}
	default:
		fmt.Fprintf(os.Stderr, "mvstress: unknown workload %q (want e1, e4 or all)\n", *workload)
		os.Exit(2)
	}
	var cfgs []chaos.Config
	if *concurrent {
		var modes []string
		switch *mode {
		case "all":
			modes = []string{"stop", "poke"}
		case "stop", "poke":
			modes = []string{*mode}
		default:
			fmt.Fprintf(os.Stderr, "mvstress: unknown mode %q (want stop, poke or all)\n", *mode)
			os.Exit(2)
		}
		var policies []string
		switch *onActive {
		case "all":
			policies = []string{"defer", "osr"}
		case "defer", "osr":
			policies = []string{*onActive}
		default:
			fmt.Fprintf(os.Stderr, "mvstress: unknown onactive policy %q (want defer, osr or all)\n", *onActive)
			os.Exit(2)
		}
		ncpus := []int{1, 2}
		if *cpus != 0 {
			ncpus = []int{*cpus}
		}
		for _, n := range names {
			for _, md := range modes {
				for _, pol := range policies {
					for _, nc := range ncpus {
						cfgs = append(cfgs, chaos.Config{
							Workload: n, Steps: *steps, Faults: *faults,
							Concurrent: true, CPUs: nc, Mode: md, OnActive: pol,
						})
					}
				}
			}
		}
		return cfgs
	}
	for _, n := range names {
		if !*smp {
			cfgs = append(cfgs, chaos.Config{Workload: n, Steps: *steps, Faults: *faults, Sabotage: *sabotage})
		}
		cfgs = append(cfgs, chaos.Config{Workload: n, Steps: *steps, Faults: *faults, SMP: true, Sabotage: *sabotage})
	}
	return cfgs
}

func main() {
	flag.Parse()
	if *replaySnap != "" {
		if err := replayArtifact(*replaySnap); err != nil {
			fmt.Fprintf(os.Stderr, "mvstress: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runs, aborts, retries := 0, 0, 0
	var fired uint64
	for _, cfg := range configs() {
		for i := 0; i < *seeds; i++ {
			seed := *seedBase + int64(i)
			res, err := chaos.Run(seed, cfg)
			if err != nil {
				if cfg.Concurrent {
					pol := cfg.OnActive
					if pol == "" {
						pol = "defer"
					}
					fmt.Fprintf(os.Stderr, "mvstress: FAIL workload=%s mode=%s onactive=%s cpus=%d seed=%d quanta=%v: %v\n",
						cfg.Workload, cfg.Mode, pol, cfg.CPUs, seed, res.Quanta, err)
					fmt.Fprintf(os.Stderr, "mvstress: reproduce with: mvstress -seeds 1 -seed-base %d -workload %s -concurrent -cpus %d -mode %s -onactive %s -steps %d -faults %d\n",
						seed, cfg.Workload, cfg.CPUs, cfg.Mode, pol, *steps, *faults)
				} else {
					fmt.Fprintf(os.Stderr, "mvstress: FAIL workload=%s smp=%v seed=%d: %v\n",
						cfg.Workload, cfg.SMP, seed, err)
					fmt.Fprintf(os.Stderr, "mvstress: reproduce with: mvstress -seeds 1 -seed-base %d -workload %s -smp=%v -steps %d -faults %d\n",
						seed, cfg.Workload, cfg.SMP, *steps, *faults)
				}
				writeArtifact(failure{Seed: seed, Config: cfg, Quanta: res.Quanta, Error: err.Error(), Flight: res.FlightDump, Replay: res.Replay})
				os.Exit(1)
			}
			runs++
			aborts += res.Aborts
			retries += res.Retries
			fired += res.FaultsFired
			if *verbose {
				if cfg.Concurrent {
					fmt.Printf("workload=%s mode=%s onactive=%s cpus=%d seed=%d quanta=%v ops=%d aborts=%d traps=%d deferred=%d osr=%d/%d/%d faults=%d checks=%d\n",
						cfg.Workload, cfg.Mode, cfg.OnActive, cfg.CPUs, seed, res.Quanta, res.Ops, res.Aborts, res.Traps, res.Deferred,
						res.OSRTransfers, res.OSRFallbacks, res.OSRRollbacks, res.FaultsFired, res.Checks)
				} else {
					fmt.Printf("workload=%s smp=%v seed=%d ops=%d aborts=%d retries=%d flush-fixes=%d faults=%d checks=%d\n",
						cfg.Workload, cfg.SMP, seed, res.Ops, res.Aborts, res.Retries, res.FlushFixes, res.FaultsFired, res.Checks)
				}
			}
		}
	}
	fmt.Printf("mvstress: %d runs ok (%d faults fired, %d clean aborts, %d transparent retries)\n",
		runs, fired, aborts, retries)
}

func writeArtifact(f failure) {
	if *artifact == "" {
		return
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvstress: encoding artifact: %v\n", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(*artifact, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mvstress: writing artifact: %v\n", err)
	}
	// The snapshot goes standalone next to the artifact: binary, and
	// readable with mvtrace -snap; -replay-snap resumes the run from it.
	if f.Replay != nil && len(f.Replay.Snap) > 0 {
		if err := os.WriteFile(*artifact+".snap", f.Replay.Snap, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mvstress: writing snapshot: %v\n", err)
		}
	}
	if f.Flight == nil {
		return
	}
	// Also write the flight dump standalone, next to the artifact, so
	// CI can upload it and mvtrace can read it without unwrapping.
	path := *artifact + ".flight.json"
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvstress: writing flight dump: %v\n", err)
		return
	}
	defer out.Close()
	if err := f.Flight.WriteJSON(out); err != nil {
		fmt.Fprintf(os.Stderr, "mvstress: writing flight dump: %v\n", err)
	}
}

// replayArtifact resumes a failed run from an artifact's snapshot and
// cross-checks it against the seed-based full rerun: both must report
// the violation the artifact recorded.
func replayArtifact(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f failure
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: not a repro artifact: %v", path, err)
	}
	if f.Replay == nil {
		return fmt.Errorf("%s: no replay pin (concurrent failure? reproduce from seed: mvstress -seeds 1 -seed-base %d ...)", path, f.Seed)
	}
	snapData, err := os.ReadFile(path + ".snap")
	if err != nil {
		return fmt.Errorf("reading snapshot: %w", err)
	}
	if d, derr := snapshot.Digest(snapData); derr != nil {
		return fmt.Errorf("%s.snap: %w", path, derr)
	} else if d != f.Replay.Digest {
		return fmt.Errorf("%s.snap digest %s does not match the artifact's %s", path, d, f.Replay.Digest)
	}
	f.Replay.Snap = snapData

	fmt.Printf("mvstress: replaying seed %d from snapshot at op %d (of %d steps)\n",
		f.Seed, f.Replay.Op, f.Config.Steps)
	_, rerr := chaos.ReplaySnapshot(f.Seed, f.Config, f.Replay)
	if rerr == nil {
		return fmt.Errorf("snapshot replay did not reproduce (artifact recorded: %s)", f.Error)
	}
	fmt.Printf("mvstress: snapshot replay: %v\n", rerr)
	if rerr.Error() != f.Error {
		return fmt.Errorf("snapshot replay reproduced a different violation (artifact recorded: %s)", f.Error)
	}

	// Cross-check: the full seed-based rerun must agree.
	_, serr := chaos.Run(f.Seed, f.Config)
	if serr == nil {
		return fmt.Errorf("seed-based rerun passed but the snapshot replay failed — determinism bug")
	}
	fmt.Printf("mvstress: seed rerun:       %v\n", serr)
	if serr.Error() != rerr.Error() {
		return fmt.Errorf("snapshot replay and seed rerun disagree")
	}
	fmt.Println("mvstress: reproduced — snapshot replay and seed-based rerun agree")
	return nil
}
