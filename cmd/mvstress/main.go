// Command mvstress sweeps seeded chaos runs over the multiverse
// runtime: each seed drives a deterministic fault plan (write tears,
// protection faults, dropped icache shootdowns, spurious fetch
// faults) against random commit/revert sequences on the paper's E1
// spinlock kernel or E4 mini-musl workload, asserting after every
// operation that aborted commits roll back to a byte-identical image,
// the text auditor stays green, and workload semantics survive.
//
//	mvstress [-seeds n] [-seed-base s] [-workload e1|e4|all] [-smp] \
//	         [-steps n] [-faults n] [-artifact out.json] [-v]
//
// On failure it prints the offending seed and configuration, writes a
// JSON repro artifact if -artifact is given, and exits nonzero. Any
// reported seed reproduces exactly:
//
//	mvstress -seeds 1 -seed-base <seed> -workload <w> [-smp]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
)

var (
	seeds    = flag.Int("seeds", 50, "number of seeds to sweep per configuration")
	seedBase = flag.Int64("seed-base", 1, "first seed in the sweep")
	workload = flag.String("workload", "all", "workload to stress: e1, e4 or all")
	smp      = flag.Bool("smp", false, "restrict the sweep to SMP configurations (default sweeps both)")
	steps    = flag.Int("steps", 40, "runtime operations per run")
	faults   = flag.Int("faults", 6, "armed fault points per run")
	artifact = flag.String("artifact", "", "write a JSON repro artifact here on failure")
	verbose  = flag.Bool("v", false, "print a line per run")
)

// failure is the repro artifact written for the first failing seed.
type failure struct {
	Seed   int64        `json:"seed"`
	Config chaos.Config `json:"config"`
	Error  string       `json:"error"`
}

func configs() []chaos.Config {
	var names []string
	switch *workload {
	case "all":
		names = []string{"e1", "e4"}
	case "e1", "e4":
		names = []string{*workload}
	default:
		fmt.Fprintf(os.Stderr, "mvstress: unknown workload %q (want e1, e4 or all)\n", *workload)
		os.Exit(2)
	}
	var cfgs []chaos.Config
	for _, n := range names {
		if !*smp {
			cfgs = append(cfgs, chaos.Config{Workload: n, Steps: *steps, Faults: *faults})
		}
		cfgs = append(cfgs, chaos.Config{Workload: n, Steps: *steps, Faults: *faults, SMP: true})
	}
	return cfgs
}

func main() {
	flag.Parse()

	runs, aborts, retries := 0, 0, 0
	var fired uint64
	for _, cfg := range configs() {
		for i := 0; i < *seeds; i++ {
			seed := *seedBase + int64(i)
			res, err := chaos.Run(seed, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvstress: FAIL workload=%s smp=%v seed=%d: %v\n",
					cfg.Workload, cfg.SMP, seed, err)
				fmt.Fprintf(os.Stderr, "mvstress: reproduce with: mvstress -seeds 1 -seed-base %d -workload %s -smp=%v -steps %d -faults %d\n",
					seed, cfg.Workload, cfg.SMP, *steps, *faults)
				writeArtifact(failure{Seed: seed, Config: cfg, Error: err.Error()})
				os.Exit(1)
			}
			runs++
			aborts += res.Aborts
			retries += res.Retries
			fired += res.FaultsFired
			if *verbose {
				fmt.Printf("workload=%s smp=%v seed=%d ops=%d aborts=%d retries=%d flush-fixes=%d faults=%d checks=%d\n",
					cfg.Workload, cfg.SMP, seed, res.Ops, res.Aborts, res.Retries, res.FlushFixes, res.FaultsFired, res.Checks)
			}
		}
	}
	fmt.Printf("mvstress: %d runs ok (%d faults fired, %d clean aborts, %d transparent retries)\n",
		runs, fired, aborts, retries)
}

func writeArtifact(f failure) {
	if *artifact == "" {
		return
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvstress: encoding artifact: %v\n", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(*artifact, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mvstress: writing artifact: %v\n", err)
	}
}
