// Command mvdbg is a time-travel debugger for simulated multiverse
// machines. It drives one deterministic timeline — cycle advances and
// host-driven runtime operations — and can rewind it: `back N`
// restores the nearest keyframe snapshot and re-executes forward. The
// rewound-over future stays on the timeline, so a subsequent `run`
// replays it — stepping backwards through a commit (including the BRK
// text-poke protocol) and forward again lands on the exact state,
// digest-identical to the first pass. A new write operation (call,
// set, commit, revert) issued mid-timeline discards the stale future.
//
//	mvdbg [-poke] [-defer] [-restore file.snap] image
//
// -restore opens the session at a captured snapshot — a mvrun
// checkpoint, a -flight-snap failure capture, or a chaos
// <artifact>.snap pin — so debugging starts at the failure point
// with no re-run from cycle zero.
//
// Commands (also: help):
//
//	call NAME [ARG...]   start a call (halt stub as return address)
//	run [N]              advance N cycles (to the halt stub if omitted)
//	back N               rewind N cycles via keyframe + re-execution
//	break [CLASS]        toggle break on commit|trap|watchdog; bare: list
//	set NAME=VALUE       write a global / configuration switch
//	commit | revert      run the multiverse operation
//	state                runtime binding report (mvrun -state view)
//	dis [ADDR|SYM [N]]   disassemble N instructions (default: at pc)
//	spans                commit-causality spans since the last rewind
//	digest               canonical snapshot digest of the current state
//	where                current cycle, pc, timeline size
//	quit
//
// With stdin piped (batch mode) mvdbg executes the script and exits
// non-zero at the first failing command — the form `make
// checkpoint-smoke` and CI drive.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dbg"
	"repro/internal/link"
)

var (
	poke = flag.Bool("poke", false,
		"commit via the BRK text-poke protocol (ModeTextPoke) instead of the parked-CPU contract")
	deferOnActive = flag.Bool("defer", false,
		"defer (rather than refuse) commits that find the function active on a stack")
	batch = flag.Bool("batch", false,
		"batch mode: no prompt, echo commands, abort on the first error (default when stdin is not a terminal)")
	restore = flag.String("restore", "",
		"open at this snapshot (a mvrun checkpoint, -flight-snap capture, or chaos <artifact>.snap) instead of cycle zero")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mvdbg [-poke] [-defer] [-batch] [-restore file.snap] image")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "mvdbg: %v\n", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	img, err := link.ReadImage(f)
	f.Close()
	if err != nil {
		return err
	}
	var opts dbg.Options
	if *poke {
		opts.Commit.Mode = core.ModeTextPoke
	}
	if *deferOnActive {
		opts.Commit.OnActive = core.ActiveDefer
	}
	if *restore != "" {
		// Open the debugger at a captured state — a mvrun checkpoint,
		// a -flight-snap failure capture, or a chaos <artifact>.snap —
		// instead of at cycle zero.
		snap, rerr := os.ReadFile(*restore)
		if rerr != nil {
			return rerr
		}
		opts.Snapshot = snap
	}
	s, err := dbg.New(img, opts)
	if err != nil {
		return err
	}
	// A non-terminal stdin means a script is being piped in; behave
	// like -batch so a failing step fails the pipeline.
	scripted := *batch
	if fi, serr := os.Stdin.Stat(); serr == nil && fi.Mode()&os.ModeCharDevice == 0 {
		scripted = true
	}

	fmt.Printf("mvdbg: %s — %s\n", path, s.Where())
	sc := bufio.NewScanner(os.Stdin)
	for {
		if !scripted {
			fmt.Print("(mvdbg) ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if scripted {
			fmt.Printf("(mvdbg) %s\n", line)
		}
		quit, cerr := exec(s, line)
		if cerr != nil {
			if scripted {
				return fmt.Errorf("%s: %w", line, cerr)
			}
			fmt.Printf("error: %v\n", cerr)
		}
		if quit {
			return nil
		}
	}
}

// exec dispatches one command line against the session.
func exec(s *dbg.Session, line string) (quit bool, err error) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "q", "exit":
		return true, nil
	case "help", "h":
		fmt.Print(helpText)
	case "call":
		if len(args) == 0 {
			return false, fmt.Errorf("usage: call NAME [ARG...]")
		}
		vals := make([]uint64, len(args)-1)
		for i, a := range args[1:] {
			v, perr := strconv.ParseUint(a, 0, 64)
			if perr != nil {
				return false, perr
			}
			vals[i] = v
		}
		if err := s.Call(args[0], vals...); err != nil {
			return false, err
		}
		fmt.Println(s.Where())
	case "run", "r", "c", "continue":
		var n uint64
		if len(args) > 0 {
			if n, err = strconv.ParseUint(args[0], 0, 64); err != nil {
				return false, err
			}
			if n == 0 {
				return false, fmt.Errorf("run 0 advances nothing; omit N to run to the halt stub")
			}
		}
		out, err := s.Run(n)
		if err != nil {
			return false, err
		}
		fmt.Println(out)
	case "back", "b":
		if len(args) == 0 {
			return false, fmt.Errorf("usage: back N (cycles)")
		}
		n, perr := strconv.ParseUint(args[0], 0, 64)
		if perr != nil {
			return false, perr
		}
		out, err := s.Back(n)
		if err != nil {
			return false, err
		}
		fmt.Println(out)
	case "break":
		if len(args) == 0 {
			bs := s.Breaks()
			if len(bs) == 0 {
				fmt.Println("no breaks armed (break commit|trap|watchdog)")
			} else {
				fmt.Printf("armed: %s\n", strings.Join(bs, ", "))
			}
			return false, nil
		}
		on, err := s.ToggleBreak(args[0])
		if err != nil {
			return false, err
		}
		state := "disarmed"
		if on {
			state = "armed"
		}
		fmt.Printf("break %s %s\n", args[0], state)
	case "set":
		if len(args) != 1 || !strings.Contains(args[0], "=") {
			return false, fmt.Errorf("usage: set NAME=VALUE")
		}
		name, valStr, _ := strings.Cut(args[0], "=")
		v, perr := strconv.ParseInt(valStr, 0, 64)
		if perr != nil {
			return false, perr
		}
		if err := s.Set(name, uint64(v)); err != nil {
			return false, err
		}
		fmt.Printf("%s = %d\n", name, v)
	case "commit":
		res, err := s.Commit()
		if err != nil {
			return false, err
		}
		fmt.Printf("commit: %d bound, %d generic\n", res.Committed, res.Generic)
	case "revert":
		if err := s.Revert(); err != nil {
			return false, err
		}
		fmt.Println("reverted")
	case "state":
		fmt.Print(s.State())
	case "dis":
		addr, count := "", 8
		if len(args) > 0 {
			addr = args[0]
		}
		if len(args) > 1 {
			if count, err = strconv.Atoi(args[1]); err != nil {
				return false, err
			}
		}
		out, err := s.Disassemble(addr, count)
		if err != nil {
			return false, err
		}
		fmt.Print(out)
	case "spans":
		fmt.Print(s.Spans())
	case "digest":
		d, err := s.Digest()
		if err != nil {
			return false, err
		}
		fmt.Printf("digest %s\n", d)
	case "where", "w":
		fmt.Println(s.Where())
	default:
		return false, fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return false, nil
}

const helpText = `commands:
  call NAME [ARG...]   start a call (halt stub as return address)
  run [N]              advance N cycles (omit N: run to the halt stub)
  back N               rewind N cycles (keyframe restore + re-execute)
  break [CLASS]        toggle break on commit|trap|watchdog; bare: list
  set NAME=VALUE       write a global / configuration switch
  commit / revert      run the multiverse operation
  state                runtime binding report
  dis [ADDR|SYM [N]]   disassemble (default: 8 instructions at pc)
  spans                commit-causality spans since the last rewind
  digest               canonical snapshot digest of the current state
  where                current cycle, pc, timeline size
  quit
`
