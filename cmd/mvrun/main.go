// Command mvrun loads a linked image into the simulated machine,
// optionally commits the multiverse configuration, calls a function,
// and reports the result, the console output and the cycle count.
//
//	mvrun [-entry main] [-args a,b,...] [-set var=value]... [-commit] [-audit] [-wx] \
//	      [-trace out.json] [-profile out.folded] [-flight out.json] [-flight-snap] \
//	      [-watchdog] [-watchdog-rules name=value,...] \
//	      [-checkpoint cycles|on-commit] [-checkpoint-out file.snap] [-restore file.snap] \
//	      [-metrics-addr :9090] [-sample out.jsonl] [-repeat n] image
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// isaInst aliases the decoded-instruction type for the trace callback.
type isaInst = isa.Inst

type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

var (
	entry      = flag.String("entry", "main", "function to call")
	args       = flag.String("args", "", "comma-separated integer arguments")
	commit     = flag.Bool("commit", false, "run multiverse_commit() before calling")
	audit      = flag.Bool("audit", false, "run the text-image auditor before and after calling; fail on any violation")
	wx         = flag.Bool("wx", false, "enforce the strict W^X memory policy")
	itrace     = flag.Bool("itrace", false, "print every executed instruction")
	state      = flag.Bool("state", false, "print the multiverse binding state before running")
	traceLimit = flag.Int("trace-limit", 200, "stop instruction tracing after this many instructions")
	traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto)")
	profileOut = flag.String("profile", "", "write flamegraph-compatible folded stacks of simulated cycles")
	flightOut  = flag.String("flight", "",
		"write the flight-recorder dump (last commit-lifecycle/fault events) to this file; on failure it holds the failure-point dump (mvtrace renders it)")
	watchdog      = flag.Bool("watchdog", false, "arm the cycle-domain invariant watchdog; exit non-zero if any rule fires")
	watchdogRules = flag.String("watchdog-rules", "",
		"override watchdog thresholds, name=value,... (rules: rendezvous-latency, deferred-depth, flush-retry-storm, invalidation-storm); implies -watchdog")

	metricsAddr = flag.String("metrics-addr", "",
		"serve Prometheus text on /metrics and a JSON snapshot on /metrics.json at this address for the duration of the run")
	samplePath = flag.String("sample", "",
		"write periodic metric samples to this file (mvtop -file replays it)")
	sampleEvery = flag.Uint64("sample-every", 100000, "simulated cycles between samples")
	sampleFmt   = flag.String("sample-format", "jsonl", "sample file format: jsonl or csv")
	checkpoint  = flag.String("checkpoint", "",
		"capture a deterministic machine snapshot: a simulated-cycle count (pause the run there), or on-commit (right after -commit)")
	checkpointOut = flag.String("checkpoint-out", "", "snapshot output path (default <image>.snap)")
	restorePath   = flag.String("restore", "",
		"restore machine+runtime state from a snapshot and run the interrupted call to completion (excludes -set/-commit/-args/-repeat)")
	flightSnap = flag.Bool("flight-snap", false,
		"with -flight: also write a machine snapshot next to the flight dump when a failure is recorded (<flight>.snap)")

	repeat      = flag.Int("repeat", 1, "call the entry function this many times")
	superblocks = flag.Bool("superblocks", cpu.SuperblocksDefault(),
		"use the superblock threaded-dispatch interpreter (cycle counts are identical either way; also MV_SUPERBLOCKS=off)")

	sets setFlags
)

func main() {
	flag.Var(&sets, "set", "set a global or configuration switch, var=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mvrun [flags] image")
		os.Exit(2)
	}
	cpu.SetSuperblocksDefault(*superblocks)
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
		os.Exit(1)
	}
}

func run(path string) (err error) {
	// Validate the checkpoint/restore flag grammar before touching the
	// image, so misuse fails fast.
	ckptPath := *checkpointOut
	if ckptPath == "" {
		ckptPath = path + ".snap"
	}
	var ckptCycle uint64
	ckptOnCommit := false
	switch {
	case *checkpoint == "":
	case *checkpoint == "on-commit":
		ckptOnCommit = true
		if !*commit {
			return fmt.Errorf("-checkpoint on-commit needs -commit (nothing commits otherwise)")
		}
	default:
		n, perr := strconv.ParseUint(*checkpoint, 0, 64)
		if perr != nil || n == 0 {
			return fmt.Errorf("bad -checkpoint %q: want a positive cycle count or on-commit", *checkpoint)
		}
		ckptCycle = n
	}
	if *restorePath != "" {
		if len(sets) > 0 || *commit {
			return fmt.Errorf("-restore excludes -set and -commit: the snapshot already carries its committed configuration")
		}
		// -args/-repeat are checked after the snapshot is read: they
		// apply when it holds no call in flight (an on-commit
		// checkpoint), and conflict only with resuming a mid-call one.
	}
	if *flightSnap && *flightOut == "" {
		return fmt.Errorf("-flight-snap needs -flight (it rides the flight recorder's failure hook)")
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	img, err := link.ReadImage(f)
	f.Close()
	if err != nil {
		return err
	}
	var mopts []machine.Option
	if *wx {
		mopts = append(mopts, machine.WithWX())
	}
	m, err := machine.New(img, mopts...)
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(img, &core.UserPlatform{M: m})
	if err != nil {
		return err
	}

	// saveSnapshot captures the whole machine+runtime state and writes
	// it to the checkpoint path. Capture requires quiescence in the
	// runtime (no open commit transaction), which holds everywhere this
	// is called: between block dispatches (RunUntil) or right after a
	// completed commit.
	saveSnapshot := func(label string) error {
		snap, serr := snapshot.Capture(m, rt)
		if serr != nil {
			return fmt.Errorf("checkpoint: %w", serr)
		}
		enc := snap.Encode()
		digest, derr := snapshot.Digest(enc)
		if derr != nil {
			return derr
		}
		if werr := os.WriteFile(ckptPath, enc, 0o644); werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "mvrun: checkpoint (%s) cycle %d digest %s -> %s\n",
			label, snap.SimCycles, digest, ckptPath)
		return nil
	}

	var col *trace.Collector
	if *traceOut != "" || *profileOut != "" {
		col = trace.NewCollector(trace.Options{Profile: *profileOut != ""})
		core.AttachTracer(col, m, rt)
	}

	// The flight recorder tees onto whatever tracer is attached, so it
	// must come after AttachTracer (which replaces rt's tracer).
	var rec *trace.Recorder
	if *flightOut != "" {
		rec = trace.NewRecorder(0)
		core.AttachFlightRecorder(rec, m, rt)
		if *flightSnap {
			// On failure, freeze the machine alongside the event ring:
			// the snapshot restores to the exact failure-point state, so
			// the dump can be debugged in mvdbg without a re-run. The
			// runtime reports failures only from a quiescent state (the
			// commit transaction is unwound before NoteFailure), so
			// capture is safe here.
			snapPath := *flightOut + ".snap"
			rec.OnFailure = func(reason string, d *trace.FlightDump) {
				snap, serr := snapshot.Capture(m, rt)
				if serr == nil {
					serr = snapshot.WriteFile(snapPath, snap)
				}
				if serr != nil {
					fmt.Fprintf(os.Stderr, "mvrun: flight snapshot: %v\n", serr)
					return
				}
				fmt.Fprintf(os.Stderr, "mvrun: failure %q: machine snapshot -> %s\n", reason, snapPath)
			}
		}
		defer func() {
			// A failure that reached the recorder (commit abort, audit
			// violation) already produced the dump worth keeping; a clean
			// run dumps whatever the ring holds at exit.
			d := rec.LastDump()
			if d == nil || err == nil {
				reason := "end-of-run"
				if err != nil {
					reason = err.Error()
				}
				dd := rec.Dump(reason)
				d = &dd
			}
			if werr := writeFile(*flightOut, d.WriteJSON); werr != nil {
				if err == nil {
					err = werr
				}
				return
			}
			fmt.Fprintf(os.Stderr, "mvrun: flight dump (%d events, %q) -> %s\n",
				len(d.Events), d.Reason, *flightOut)
		}()
	}

	var wd *trace.Watchdog
	if *watchdog || *watchdogRules != "" {
		rules, rerr := trace.ParseWatchdogRules(*watchdogRules)
		if rerr != nil {
			return rerr
		}
		wd = trace.NewWatchdog(rules)
		core.AttachWatchdog(wd, m, rt)
		defer func() {
			if !wd.Fired() {
				return
			}
			for _, a := range wd.Alerts() {
				fmt.Fprintf(os.Stderr, "mvrun: watchdog: rule %s fired at cycle %d (value %d > threshold %d, span %d)\n",
					a.Rule, a.Cycle, a.Value, a.Threshold, a.Span)
			}
			if err == nil {
				err = fmt.Errorf("watchdog: %d invariant violation(s)", len(wd.Alerts()))
			}
		}()
	}

	var reg *metrics.Registry
	if *metricsAddr != "" || *samplePath != "" {
		reg = metrics.New()
		core.AttachMetrics(reg, m, rt)
		if col != nil {
			core.AttachTraceMetrics(reg, col)
		}
		if wd != nil {
			core.AttachWatchdogMetrics(reg, wd)
		}
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go http.Serve(ln, mux) //nolint:errcheck // shut down by ln.Close on return
		fmt.Fprintf(os.Stderr, "mvrun: serving metrics on http://%s/metrics (until the run ends)\n", ln.Addr())
	}

	var samp *metrics.Sampler
	if *samplePath != "" {
		format, err := metrics.ParseSampleFormat(*sampleFmt)
		if err != nil {
			return err
		}
		f, err := os.Create(*samplePath)
		if err != nil {
			return err
		}
		defer f.Close()
		samp = metrics.NewSampler(reg, f, *sampleEvery, format)
	}

	// Restore replaces memory, CPUs and runtime bindings wholesale, so
	// it happens after every attachment (which only touches host wiring)
	// and instead of -set/-commit (excluded above: the snapshot already
	// embodies the committed configuration).
	var restored *snapshot.Snapshot
	if *restorePath != "" {
		snap, rerr := snapshot.ReadFile(*restorePath)
		if rerr != nil {
			return rerr
		}
		if aerr := snapshot.Apply(snap, m, rt); aerr != nil {
			return fmt.Errorf("restore %s: %w", *restorePath, aerr)
		}
		digest, derr := snapshot.Digest(snap.Encode())
		if derr != nil {
			return derr
		}
		fmt.Fprintf(os.Stderr, "mvrun: restored %s: cycle %d, %d CPU(s), digest %s\n",
			*restorePath, snap.SimCycles, len(snap.CPUs), digest)
		if reg != nil {
			// The cycle counter resumes at the checkpoint, not 0; stamp
			// the base so samplers and mvtop label the first window's
			// rates against the cycles this run actually executed.
			reg.SetBaseCycle(snap.SimCycles)
		}
		restored = snap
	}

	for _, s := range sets {
		name, valStr, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("bad -set %q, want var=value", s)
		}
		val, err := strconv.ParseInt(valStr, 0, 64)
		if err != nil {
			return err
		}
		sym, ok := img.Symbols[name]
		if !ok {
			return fmt.Errorf("no symbol %q", name)
		}
		size := 8
		if sym.Size > 0 && sym.Size < 8 {
			size = int(sym.Size)
		}
		if err := m.Mem.WriteUint(sym.Addr, size, uint64(val)); err != nil {
			return err
		}
	}
	if *commit {
		res, err := rt.Commit()
		if err != nil {
			return err
		}
		fmt.Printf("commit: %d bound, %d generic\n", res.Committed, res.Generic)
		if ckptOnCommit {
			if err := saveSnapshot("on-commit"); err != nil {
				return err
			}
		}
	}
	if *audit {
		if err := rt.Audit(); err != nil {
			return fmt.Errorf("audit (pre-run): %w", err)
		}
		fmt.Println("audit: ok")
	}

	// The per-instruction hook slot is shared: instruction tracing and
	// the metric sampler both ride it, so compose whatever is enabled.
	// When neither is, the slot stays nil and the CPU keeps its
	// unobserved fast path.
	var hooks []func(pc uint64, in isaInst)
	if *itrace {
		printed := 0
		hooks = append(hooks, func(pc uint64, in isaInst) {
			if printed >= *traceLimit {
				if printed == *traceLimit {
					fmt.Println("  ... trace limit reached")
					printed++
				}
				return
			}
			printed++
			if name, ok := img.SymbolAt(pc); ok {
				if sym, found := img.Symbols[name]; found && sym.Addr == pc {
					fmt.Printf("%s:\n", name)
				}
			}
			fmt.Printf("  %#08x: %s\n", pc, in.Format(pc))
		})
	}
	if samp != nil {
		hooks = append(hooks, func(pc uint64, in isaInst) { samp.Tick(m.CPU.Cycles()) })
	}
	switch len(hooks) {
	case 0:
	case 1:
		m.CPU.Trace = hooks[0]
	default:
		m.CPU.Trace = func(pc uint64, in isaInst) {
			for _, h := range hooks {
				h(pc, in)
			}
		}
	}

	if *state {
		fmt.Print(rt.StateReport())
	}

	var callArgs []uint64
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(a), 0, 64)
			if err != nil {
				return err
			}
			callArgs = append(callArgs, v)
		}
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
	}

	// runToHalt drives the boot CPU to the halt stub, pausing once at
	// the checkpoint cycle (if one was requested and lies ahead) to
	// capture a snapshot. RunUntil only pauses between block dispatches,
	// so the capture point is always an instruction boundary and the
	// paused run retires bit-identical cycles and statistics.
	runToHalt := func() error {
		c := m.CPU
		if ckptCycle > 0 {
			if c.Cycles() >= ckptCycle {
				fmt.Fprintf(os.Stderr, "mvrun: checkpoint skipped: already at cycle %d (>= %d)\n",
					c.Cycles(), ckptCycle)
			} else {
				if _, rerr := c.RunUntil(ckptCycle, m.MaxSteps); rerr != nil {
					return rerr
				}
				if c.Halted() {
					fmt.Fprintf(os.Stderr, "mvrun: checkpoint skipped: run halted at cycle %d before %d\n",
						c.Cycles(), ckptCycle)
				} else if serr := saveSnapshot(fmt.Sprintf("cycle %d", ckptCycle)); serr != nil {
					return serr
				}
			}
		}
		if !c.Halted() {
			if _, rerr := c.Run(m.MaxSteps); rerr != nil {
				return rerr
			}
		}
		return nil
	}

	start := m.CPU.Cycles()
	startInstr := m.CPU.Stats().Instructions // nonzero after a restore
	var ret uint64
	switch {
	case restored != nil && (m.CPU.PC() != 0 || m.CPU.Halted()):
		// The snapshot holds an interrupted call (pc mid-function, halt
		// stub on the stack); run it out. -checkpoint N still composes,
		// which is how the restore difftest re-checkpoints a restored
		// run and compares digests against an uninterrupted one.
		if *args != "" || *repeat != 1 {
			return fmt.Errorf("-restore resumes the interrupted call; -args and -repeat do not apply")
		}
		if m.CPU.Halted() {
			fmt.Fprintln(os.Stderr, "mvrun: snapshot was captured at a halt; nothing left to execute")
		} else if rerr := runToHalt(); rerr != nil {
			return rerr
		}
		ret = m.CPU.Reg(0)
		fmt.Printf("restored-run = %d (%#x)\n", int64(ret), ret)
	default:
		// Either a plain run, or a restore of a snapshot with no call
		// in flight (an on-commit checkpoint fires before the entry
		// call): start -entry normally against the restored state.
		if restored != nil {
			fmt.Fprintf(os.Stderr, "mvrun: snapshot holds no call in flight; calling %q against the restored state\n", *entry)
		}
		for i := 0; i < *repeat; i++ {
			if i == 0 && ckptCycle > 0 {
				// A cycle checkpoint lands mid-call, so drive the first
				// call by hand: start it, pause at the requested cycle,
				// capture, continue to the halt stub.
				if serr := m.StartCall(m.CPU, *entry, callArgs...); serr != nil {
					return serr
				}
				if rerr := runToHalt(); rerr != nil {
					return rerr
				}
				ret = m.CPU.Reg(0)
				continue
			}
			ret, err = m.CallNamed(*entry, callArgs...)
			if err != nil {
				return err
			}
		}
		fmt.Printf("%s(%s) = %d (%#x)\n", *entry, *args, int64(ret), ret)
		if *repeat > 1 {
			fmt.Printf("repeat: %d calls\n", *repeat)
		}
	}
	fmt.Printf("cycles: %d, instructions: %d\n",
		m.CPU.Cycles()-start, m.CPU.Stats().Instructions-startInstr)
	if *audit {
		if err := rt.Audit(); err != nil {
			return fmt.Errorf("audit (post-run): %w", err)
		}
	}
	if samp != nil {
		samp.Sample() // final row, so short runs always record something
		if err := samp.Err(); err != nil {
			return fmt.Errorf("sampler: %w", err)
		}
		fmt.Printf("samples: %d rows -> %s\n", samp.Rows(), *samplePath)
	}
	if out := m.Console(); len(out) > 0 {
		fmt.Printf("console: %q\n", out)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, col.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", len(col.Events()), *traceOut)
		// Per-CPU drop accounting on stderr: a stream that overflowed
		// its ring buffer silently lost its oldest events, and the user
		// should know which CPU's view is truncated.
		for _, ss := range col.StreamStats() {
			fmt.Fprintf(os.Stderr, "mvrun: trace stream %-8s %8d events, %d dropped\n",
				ss.Label, ss.Events, ss.Dropped)
			if ss.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "mvrun: trace stream %s overflowed; oldest events were overwritten\n", ss.Label)
			}
		}
	}
	if *profileOut != "" {
		if err := writeFile(*profileOut, col.WriteFolded); err != nil {
			return err
		}
		fmt.Printf("profile: %d stacks -> %s\n", len(col.Profile().Folded), *profileOut)
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
