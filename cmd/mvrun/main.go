// Command mvrun loads a linked image into the simulated machine,
// optionally commits the multiverse configuration, calls a function,
// and reports the result, the console output and the cycle count.
//
//	mvrun [-entry main] [-args a,b,...] [-set var=value]... [-commit] [-audit] [-wx] \
//	      [-trace out.json] [-profile out.folded] [-flight out.json] \
//	      [-watchdog] [-watchdog-rules name=value,...] \
//	      [-metrics-addr :9090] [-sample out.jsonl] [-repeat n] image
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// isaInst aliases the decoded-instruction type for the trace callback.
type isaInst = isa.Inst

type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

var (
	entry      = flag.String("entry", "main", "function to call")
	args       = flag.String("args", "", "comma-separated integer arguments")
	commit     = flag.Bool("commit", false, "run multiverse_commit() before calling")
	audit      = flag.Bool("audit", false, "run the text-image auditor before and after calling; fail on any violation")
	wx         = flag.Bool("wx", false, "enforce the strict W^X memory policy")
	itrace     = flag.Bool("itrace", false, "print every executed instruction")
	state      = flag.Bool("state", false, "print the multiverse binding state before running")
	traceLimit = flag.Int("trace-limit", 200, "stop instruction tracing after this many instructions")
	traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto)")
	profileOut = flag.String("profile", "", "write flamegraph-compatible folded stacks of simulated cycles")
	flightOut  = flag.String("flight", "",
		"write the flight-recorder dump (last commit-lifecycle/fault events) to this file; on failure it holds the failure-point dump (mvtrace renders it)")
	watchdog      = flag.Bool("watchdog", false, "arm the cycle-domain invariant watchdog; exit non-zero if any rule fires")
	watchdogRules = flag.String("watchdog-rules", "",
		"override watchdog thresholds, name=value,... (rules: rendezvous-latency, deferred-depth, flush-retry-storm, invalidation-storm); implies -watchdog")

	metricsAddr = flag.String("metrics-addr", "",
		"serve Prometheus text on /metrics and a JSON snapshot on /metrics.json at this address for the duration of the run")
	samplePath = flag.String("sample", "",
		"write periodic metric samples to this file (mvtop -file replays it)")
	sampleEvery = flag.Uint64("sample-every", 100000, "simulated cycles between samples")
	sampleFmt   = flag.String("sample-format", "jsonl", "sample file format: jsonl or csv")
	repeat      = flag.Int("repeat", 1, "call the entry function this many times")
	superblocks = flag.Bool("superblocks", cpu.SuperblocksDefault(),
		"use the superblock threaded-dispatch interpreter (cycle counts are identical either way; also MV_SUPERBLOCKS=off)")

	sets setFlags
)

func main() {
	flag.Var(&sets, "set", "set a global or configuration switch, var=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mvrun [flags] image")
		os.Exit(2)
	}
	cpu.SetSuperblocksDefault(*superblocks)
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
		os.Exit(1)
	}
}

func run(path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	img, err := link.ReadImage(f)
	f.Close()
	if err != nil {
		return err
	}
	var mopts []machine.Option
	if *wx {
		mopts = append(mopts, machine.WithWX())
	}
	m, err := machine.New(img, mopts...)
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(img, &core.UserPlatform{M: m})
	if err != nil {
		return err
	}

	var col *trace.Collector
	if *traceOut != "" || *profileOut != "" {
		col = trace.NewCollector(trace.Options{Profile: *profileOut != ""})
		core.AttachTracer(col, m, rt)
	}

	// The flight recorder tees onto whatever tracer is attached, so it
	// must come after AttachTracer (which replaces rt's tracer).
	var rec *trace.Recorder
	if *flightOut != "" {
		rec = trace.NewRecorder(0)
		core.AttachFlightRecorder(rec, m, rt)
		defer func() {
			// A failure that reached the recorder (commit abort, audit
			// violation) already produced the dump worth keeping; a clean
			// run dumps whatever the ring holds at exit.
			d := rec.LastDump()
			if d == nil || err == nil {
				reason := "end-of-run"
				if err != nil {
					reason = err.Error()
				}
				dd := rec.Dump(reason)
				d = &dd
			}
			if werr := writeFile(*flightOut, d.WriteJSON); werr != nil {
				if err == nil {
					err = werr
				}
				return
			}
			fmt.Fprintf(os.Stderr, "mvrun: flight dump (%d events, %q) -> %s\n",
				len(d.Events), d.Reason, *flightOut)
		}()
	}

	var wd *trace.Watchdog
	if *watchdog || *watchdogRules != "" {
		rules, rerr := trace.ParseWatchdogRules(*watchdogRules)
		if rerr != nil {
			return rerr
		}
		wd = trace.NewWatchdog(rules)
		core.AttachWatchdog(wd, m, rt)
		defer func() {
			if !wd.Fired() {
				return
			}
			for _, a := range wd.Alerts() {
				fmt.Fprintf(os.Stderr, "mvrun: watchdog: rule %s fired at cycle %d (value %d > threshold %d, span %d)\n",
					a.Rule, a.Cycle, a.Value, a.Threshold, a.Span)
			}
			if err == nil {
				err = fmt.Errorf("watchdog: %d invariant violation(s)", len(wd.Alerts()))
			}
		}()
	}

	var reg *metrics.Registry
	if *metricsAddr != "" || *samplePath != "" {
		reg = metrics.New()
		core.AttachMetrics(reg, m, rt)
		if col != nil {
			core.AttachTraceMetrics(reg, col)
		}
		if wd != nil {
			core.AttachWatchdogMetrics(reg, wd)
		}
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go http.Serve(ln, mux) //nolint:errcheck // shut down by ln.Close on return
		fmt.Fprintf(os.Stderr, "mvrun: serving metrics on http://%s/metrics (until the run ends)\n", ln.Addr())
	}

	var samp *metrics.Sampler
	if *samplePath != "" {
		format, err := metrics.ParseSampleFormat(*sampleFmt)
		if err != nil {
			return err
		}
		f, err := os.Create(*samplePath)
		if err != nil {
			return err
		}
		defer f.Close()
		samp = metrics.NewSampler(reg, f, *sampleEvery, format)
	}

	for _, s := range sets {
		name, valStr, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("bad -set %q, want var=value", s)
		}
		val, err := strconv.ParseInt(valStr, 0, 64)
		if err != nil {
			return err
		}
		sym, ok := img.Symbols[name]
		if !ok {
			return fmt.Errorf("no symbol %q", name)
		}
		size := 8
		if sym.Size > 0 && sym.Size < 8 {
			size = int(sym.Size)
		}
		if err := m.Mem.WriteUint(sym.Addr, size, uint64(val)); err != nil {
			return err
		}
	}
	if *commit {
		res, err := rt.Commit()
		if err != nil {
			return err
		}
		fmt.Printf("commit: %d bound, %d generic\n", res.Committed, res.Generic)
	}
	if *audit {
		if err := rt.Audit(); err != nil {
			return fmt.Errorf("audit (pre-run): %w", err)
		}
		fmt.Println("audit: ok")
	}

	// The per-instruction hook slot is shared: instruction tracing and
	// the metric sampler both ride it, so compose whatever is enabled.
	// When neither is, the slot stays nil and the CPU keeps its
	// unobserved fast path.
	var hooks []func(pc uint64, in isaInst)
	if *itrace {
		printed := 0
		hooks = append(hooks, func(pc uint64, in isaInst) {
			if printed >= *traceLimit {
				if printed == *traceLimit {
					fmt.Println("  ... trace limit reached")
					printed++
				}
				return
			}
			printed++
			if name, ok := img.SymbolAt(pc); ok {
				if sym, found := img.Symbols[name]; found && sym.Addr == pc {
					fmt.Printf("%s:\n", name)
				}
			}
			fmt.Printf("  %#08x: %s\n", pc, in.Format(pc))
		})
	}
	if samp != nil {
		hooks = append(hooks, func(pc uint64, in isaInst) { samp.Tick(m.CPU.Cycles()) })
	}
	switch len(hooks) {
	case 0:
	case 1:
		m.CPU.Trace = hooks[0]
	default:
		m.CPU.Trace = func(pc uint64, in isaInst) {
			for _, h := range hooks {
				h(pc, in)
			}
		}
	}

	if *state {
		fmt.Print(rt.StateReport())
	}

	var callArgs []uint64
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(a), 0, 64)
			if err != nil {
				return err
			}
			callArgs = append(callArgs, v)
		}
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
	}
	start := m.CPU.Cycles()
	var ret uint64
	for i := 0; i < *repeat; i++ {
		ret, err = m.CallNamed(*entry, callArgs...)
		if err != nil {
			return err
		}
	}
	fmt.Printf("%s(%s) = %d (%#x)\n", *entry, *args, int64(ret), ret)
	if *repeat > 1 {
		fmt.Printf("repeat: %d calls\n", *repeat)
	}
	fmt.Printf("cycles: %d, instructions: %d\n", m.CPU.Cycles()-start, m.CPU.Stats().Instructions)
	if *audit {
		if err := rt.Audit(); err != nil {
			return fmt.Errorf("audit (post-run): %w", err)
		}
	}
	if samp != nil {
		samp.Sample() // final row, so short runs always record something
		if err := samp.Err(); err != nil {
			return fmt.Errorf("sampler: %w", err)
		}
		fmt.Printf("samples: %d rows -> %s\n", samp.Rows(), *samplePath)
	}
	if out := m.Console(); len(out) > 0 {
		fmt.Printf("console: %q\n", out)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, col.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", len(col.Events()), *traceOut)
		// Per-CPU drop accounting on stderr: a stream that overflowed
		// its ring buffer silently lost its oldest events, and the user
		// should know which CPU's view is truncated.
		for _, ss := range col.StreamStats() {
			fmt.Fprintf(os.Stderr, "mvrun: trace stream %-8s %8d events, %d dropped\n",
				ss.Label, ss.Events, ss.Dropped)
			if ss.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "mvrun: trace stream %s overflowed; oldest events were overwritten\n", ss.Label)
			}
		}
	}
	if *profileOut != "" {
		if err := writeFile(*profileOut, col.WriteFolded); err != nil {
			return err
		}
		fmt.Printf("profile: %d stacks -> %s\n", len(col.Profile().Folded), *profileOut)
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
