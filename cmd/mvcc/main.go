// Command mvcc is the MVC compiler driver: it runs the multiverse
// pipeline (parse, check, variant generation, code generation) on each
// source file and either writes relocatable objects (-c) or links an
// executable image.
//
//	mvcc [-c] [-o out] [-max-variants n] [-v] file.mvc...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/obj"
)

var (
	compileOnly = flag.Bool("c", false, "compile to objects, do not link")
	output      = flag.String("o", "", "output file (default a.img / <src>.mvo)")
	maxVariants = flag.Int("max-variants", core.DefaultMaxVariants, "variant cross-product limit per function")
	verbose     = flag.Bool("v", false, "print the variant-generation report")
	dumpVar     = flag.Bool("dump-variants", false, "print each generated variant as MVC source")
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mvcc [-c] [-o out] file.mvc...")
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mvcc: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	opts := core.GenOptions{MaxVariants: *maxVariants}
	var objects []*obj.Object
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		unitName := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		u, err := cc.Parse(unitName, string(src))
		if err != nil {
			return err
		}
		if err := cc.Check(u); err != nil {
			return err
		}
		o, rep, err := core.CompileUnit(u, opts)
		if err != nil {
			return err
		}
		report(path, rep)
		if *compileOnly {
			out := unitName + ".mvo"
			if *output != "" && flag.NArg() == 1 {
				out = *output
			}
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := o.Write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			continue
		}
		objects = append(objects, o)
	}
	if *compileOnly {
		return nil
	}
	img, err := link.Link(objects...)
	if err != nil {
		return err
	}
	out := *output
	if out == "" {
		out = "a.img"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := img.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func report(path string, rep *core.GenReport) {
	for _, w := range rep.Warnings {
		fmt.Fprintf(os.Stderr, "mvcc: warning: %s\n", w)
	}
	if *verbose {
		for _, f := range rep.Functions {
			fmt.Fprintf(os.Stderr, "%s: %s: switches=%v variants=%d (merged from %d), descriptors=%d B\n",
				path, f.Name, f.Switches, f.MergedVariants, f.RawVariants, f.DescriptorBytes)
		}
	}
	if *dumpVar {
		for _, f := range rep.Functions {
			names := make([]string, 0, len(f.VariantSrc))
			for n := range f.VariantSrc {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(os.Stderr, "// variant %s\n%s\n", n, f.VariantSrc[n])
			}
		}
	}
}
