// mvfleet runs a supervised fleet of multiverse machines: a sharded,
// request-serving service swept by config-flip commit storms, with
// per-shard supervisors restarting chaos-killed machines from their
// periodic snapshots and live-migrating machines between shards.
//
// Usage:
//
//	mvfleet [-shards n] [-machines n] [-rounds n] [-seed s]
//	        [-storm every] [-chaos] [-kill-rate r] [-fault-points n]
//	        [-mode parked|stop-machine|text-poke] [-active-storms]
//	        [-metrics-addr :9090] [-metrics-out file] [-json] [-v]
//
// Every run is bit-reproducible for a given seed: the load, the
// storms, the kill schedule and the migrations all derive from it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/fleet"
)

var (
	shards      = flag.Int("shards", 4, "host shards (one supervisor goroutine each)")
	machines    = flag.Int("machines", 64, "machines in the fleet")
	rounds      = flag.Int("rounds", 24, "global rounds to run")
	seed        = flag.Int64("seed", 1, "deterministic seed for load, storms and chaos")
	storm       = flag.Int("storm", 3, "rounds between fleet-wide config-flip storms")
	chaosOn     = flag.Bool("chaos", false, "arm the chaos kill schedule and fault plans")
	killRate    = flag.Int("kill-rate", 30, "per-(machine,round) kill probability out of 1000 (with -chaos)")
	faultPts    = flag.Int("fault-points", 0, "per-machine commit fault points (with -chaos)")
	mode        = flag.String("mode", "stop-machine", "commit mode: parked, stop-machine or text-poke")
	activeStorm = flag.Bool("active-storms", false,
		"park each machine inside a multiversed function before every storm (exercises the retry → OSR → park ladder)")
	metricsAddr = flag.String("metrics-addr", "",
		"serve /metrics (Prometheus) and /metrics.json on this address after the run")
	metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file")
	jsonOut    = flag.Bool("json", false, "print the full result as JSON")
	verbose    = flag.Bool("v", false, "print per-machine results")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mvfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var cm core.CommitMode
	switch *mode {
	case "parked":
		cm = core.ModeParked
	case "stop-machine":
		cm = core.ModeStopMachine
	case "text-poke":
		cm = core.ModeTextPoke
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	cfg := fleet.Config{
		Seed:         *seed,
		Shards:       *shards,
		Machines:     *machines,
		Rounds:       *rounds,
		StormEvery:   *storm,
		Mode:         cm,
		ActiveStorms: *activeStorm,
		Chaos:        *chaosOn,
		KillRate:     *killRate,
		FaultPoints:  *faultPts,
	}
	fl, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	res, err := fl.Run()
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printSummary(res)
	}
	for _, e := range fl.MemberErrors() {
		fmt.Fprintln(os.Stderr, "mvfleet: machine error:", e)
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := fl.Registry().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := fl.Registry().WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := fl.Registry().WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		fmt.Fprintf(os.Stderr, "mvfleet: serving metrics on %s (ctrl-c to stop)\n", ln.Addr())
		return http.Serve(ln, mux)
	}

	if res.Failed > 0 {
		return fmt.Errorf("%d machines failed permanently", res.Failed)
	}
	if res.Served != res.Scheduled {
		return fmt.Errorf("request loss: served %d of %d scheduled", res.Served, res.Scheduled)
	}
	return nil
}

func printSummary(res *fleet.Result) {
	fmt.Printf("fleet: %d machines / %d shards, %d requests served of %d scheduled (%d incl. replays)\n",
		len(res.Machines), len(res.Shards), res.Served, res.Scheduled, res.Requests)
	fmt.Printf("chaos: %d kills, %d restarts, %d migrations, %d parked flips, %d osr commits (%d frames), %d commit aborts, %d failed\n",
		res.Kills, res.Restarts, res.Migrations, res.ParkedFlips, res.OSRCommits, res.OSRTransfers, res.CommitAborts, res.Failed)
	fmt.Printf("commit latency cycles: p50=%d p99=%d p999=%d; rendezvous p99=%d\n",
		res.CommitP50, res.CommitP99, res.CommitP999, res.RendezvousP99)
	for _, sh := range res.Shards {
		fmt.Printf("  shard %d: %d machines, %d req, %.2f req/kcycle, %d restarts, %d in / %d out\n",
			sh.Shard, sh.Machines, sh.Requests, sh.Throughput, sh.Restarts, sh.MigrIn, sh.MigrOut)
	}
	if res.HostSeconds > 0 {
		fmt.Printf("host: %.3fs\n", res.HostSeconds)
	}
	if *verbose {
		for _, m := range res.Machines {
			fmt.Printf("  machine %3d shard %d %-8s req=%-6d kills=%d restarts=%d parked=%v digest=%.16s\n",
				m.ID, m.Shard, m.State, m.Requests, m.Kills, m.Restarts, m.Parked, m.Digest)
		}
	}
}
