// Command mvdis inspects compiled artifacts: it disassembles objects
// (.mvo) and images (.img), lists sections and symbols, and decodes
// the multiverse descriptor sections of an image.
//
//	mvdis file
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/obj"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mvdis file")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "mvdis: %v\n", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if img, err := link.ReadImage(f); err == nil {
		return dumpImage(img)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	o, err := obj.Read(f)
	if err != nil {
		return fmt.Errorf("not a valid image or object: %w", err)
	}
	return dumpObject(o)
}

func dumpObject(o *obj.Object) error {
	fmt.Printf("object %s\n\nsections:\n", o.Name)
	for _, s := range o.Sections {
		fmt.Printf("  %-24s %6d bytes  flags=%d\n", s.Name, s.ByteSize(), s.Flags)
	}
	fmt.Println("\nsymbols:")
	for _, s := range o.DefinedSymbols() {
		vis := "local "
		if s.Global {
			vis = "global"
		}
		fmt.Printf("  %s %-28s %s+%#x size=%d\n", vis, s.Name, s.Section, s.Offset, s.Size)
	}
	fmt.Printf("\nrelocations: %d\n", len(o.Relocs))
	for _, s := range o.Sections {
		if s.Name == obj.SecText {
			fmt.Println("\ndisassembly (.text, unrelocated):")
			fmt.Print(isa.Disassemble(s.Data, 0))
		}
	}
	return nil
}

func dumpImage(img *link.Image) error {
	fmt.Printf("image: entry=%#x halt=%#x\n\nsegments:\n", img.Entry, img.HaltAddr)
	for _, s := range img.Segments {
		fmt.Printf("  %#08x  %7d bytes  %s\n", s.Addr, len(s.Data), s.Prot)
	}
	fmt.Println("\nsections:")
	names := make([]string, 0, len(img.Sections))
	for n := range img.Sections {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return img.Sections[names[i]].Addr < img.Sections[names[j]].Addr
	})
	for _, n := range names {
		r := img.Sections[n]
		fmt.Printf("  %-24s %#08x  %6d bytes\n", n, r.Addr, r.Size)
	}

	type namedSym struct {
		name string
		link.SymbolInfo
	}
	syms := make([]namedSym, 0, len(img.Symbols))
	for n, s := range img.Symbols {
		syms = append(syms, namedSym{n, s})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	fmt.Println("\nsymbols:")
	for _, s := range syms {
		fmt.Printf("  %#08x  %-32s size=%d\n", s.Addr, s.name, s.Size)
	}

	// Decode descriptors by loading the image into a scratch machine.
	m, err := machine.New(img)
	if err != nil {
		return err
	}
	desc, err := core.DecodeDescriptors(img, &core.UserPlatform{M: m})
	if err != nil {
		return err
	}
	if len(desc.Vars)+len(desc.Funcs)+len(desc.Sites) > 0 {
		fmt.Println("\nmultiverse descriptors:")
		for _, v := range desc.Vars {
			kind := "int"
			if v.FnPtr {
				kind = "fnptr"
			}
			fmt.Printf("  var  %-20s @%#x width=%d signed=%v kind=%s\n", v.Name, v.Addr, v.Width, v.Signed, kind)
		}
		for _, fd := range desc.Funcs {
			fmt.Printf("  func %-20s generic=%#x size=%d variants=%d\n", fd.Name, fd.Generic, fd.Size, len(fd.Variants))
			for _, v := range fd.Variants {
				fmt.Printf("       variant @%#x size=%d guards=%v\n", v.Addr, v.Size, v.Guards)
			}
		}
		for _, s := range desc.Sites {
			fmt.Printf("  site %#x -> callee %#x\n", s.Addr, s.Callee)
		}
	}

	// Disassemble text with symbol annotations.
	fmt.Println("\ndisassembly (.text):")
	text := img.Segments[0]
	starts := make(map[uint64]string)
	for _, s := range syms {
		if s.Addr >= text.Addr && s.Addr < text.Addr+uint64(len(text.Data)) {
			starts[s.Addr] = s.name
		}
	}
	off := 0
	for off < len(text.Data) {
		addr := text.Addr + uint64(off)
		if name, ok := starts[addr]; ok {
			fmt.Printf("\n%s:\n", name)
		}
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			fmt.Printf("%#08x: .byte %#02x\n", addr, text.Data[off])
			off++
			continue
		}
		fmt.Printf("%#08x: %s\n", addr, in.Format(addr))
		off += in.Len
	}
	return nil
}
