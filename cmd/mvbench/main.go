// Command mvbench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate, plus the ablation
// studies from DESIGN.md. Run with no arguments for everything, or
// name experiments:
//
//	mvbench [flags] [fig1 fig4-spinlock fig4-pvops fig5 grep cpython
//	                 overheads ablation-btb ablation-mechanism alternative]
//
// Absolute numbers come from the simulator's cost model; the paper's
// numbers are printed alongside so the shapes can be compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/grepsim"
	"repro/internal/kernelsim"
	"repro/internal/metrics"
	"repro/internal/muslsim"
	"repro/internal/pysim"
	"repro/internal/trace"
)

var (
	samples = flag.Int("samples", 200, "samples per measurement")
	iters   = flag.Uint64("iters", 100, "calls per sample")

	// Reported cycle counts are bit-identical either way (the
	// difftests assert it); the knobs exist to demonstrate exactly
	// that, and to time the host-side speedup.
	decodeCache = flag.Bool("decode-cache", cpu.DecodeCacheDefault(),
		"use the predecoded-instruction cache (cycle counts are identical either way)")
	superblocks = flag.Bool("superblocks", cpu.SuperblocksDefault(),
		"use the superblock threaded-dispatch interpreter (cycle counts are identical either way)")

	repeat    = flag.Int("repeat", 1, "run the selected experiments this many times")
	jsonPath  = flag.String("json", "", "write machine-readable results to this JSON file")
	tracePath = flag.String("trace", "", "record all experiment activity and write a Chrome trace-event JSON file")
)

// jsonEntry is one measurement in the -json output. Counters carries
// the machine-activity deltas attributable to this measurement: every
// system any experiment builds registers into one shared metrics
// registry (see core.BuildSystem), and record diffs the aggregated
// totals since the previous measurement.
type jsonEntry struct {
	Experiment string            `json:"experiment"`
	Label      string            `json:"label"`
	Result     bench.Result      `json:"result"`
	Counters   map[string]uint64 `json:"counters,omitempty"`
}

var (
	results []jsonEntry

	// registry aggregates every system built during the run; deltas
	// attributes its counter activity to individual measurements (per
	// -repeat round, never against run start — see metrics.DeltaTracker).
	registry = metrics.New()
	deltas   = metrics.NewDeltaTracker(registry)
)

// recordedCounters are the per-measurement activity deltas exported in
// jsonEntry.Counters, keyed by registry counter name.
var recordedCounters = []string{
	"mv_instructions_total",
	"mv_decode_hits_total",
	"mv_decode_misses_total",
	"mv_superblock_builds_total",
	"mv_superblock_hits_total",
	"mv_superblock_insts_total",
	"mv_superblock_invalidated_total",
	"mv_mem_protect_calls_total",
	"mv_icache_flushes_total",
	"mv_commits_total",
	"mv_sites_patched_total",
	"mv_sites_inlined_total",
	"mv_commit_aborts_total",
	"mv_commit_retries_total",
	"mv_sites_rolled_back_total",
	"mv_flush_retries_total",
}

// record notes a measurement for -json and returns it unchanged, so
// call sites stay one-liners.
func record(experiment, label string, r bench.Result) bench.Result {
	results = append(results, jsonEntry{Experiment: experiment, Label: label,
		Result: r, Counters: deltas.Take(recordedCounters)})
	return r
}

func opts() kernelsim.MeasureOpts {
	return kernelsim.MeasureOpts{Samples: *samples, Iters: *iters, Warmup: 5}
}

func main() {
	flag.Parse()
	cpu.SetDecodeCacheDefault(*decodeCache)
	cpu.SetSuperblocksDefault(*superblocks)
	// Every system any experiment builds registers into this one
	// registry; attaching is scrape-time-only, so the cycle numbers in
	// the tables are bit-identical with or without it (the difftests
	// assert exactly that).
	core.SetDefaultMetricsRegistry(registry)
	var col *trace.Collector
	if *tracePath != "" {
		// Every system any experiment builds attaches to this collector
		// (see core.BuildSystem), so one file captures the whole run.
		col = trace.NewCollector(trace.Options{})
		core.SetDefaultTraceCollector(col)
	}
	experiments := map[string]func() error{
		"fig1":               fig1,
		"fig4-spinlock":      fig4Spinlock,
		"fig4-pvops":         fig4PVOps,
		"fig5":               fig5,
		"grep":               grep,
		"cpython":            cpython,
		"overheads":          overheads,
		"ablation-btb":       ablationBTB,
		"ablation-mechanism": ablationMechanism,
		"alternative":        alternative,
	}
	order := []string{"fig1", "fig4-spinlock", "fig4-pvops", "fig5", "grep",
		"cpython", "overheads", "ablation-btb", "ablation-mechanism", "alternative"}

	names := flag.Args()
	if len(names) == 0 {
		names = order
	}
	for _, n := range names {
		if _, ok := experiments[n]; !ok {
			fmt.Fprintf(os.Stderr, "mvbench: unknown experiment %q\n", n)
			os.Exit(2)
		}
	}
	for rep := 0; rep < *repeat; rep++ {
		for _, n := range names {
			if err := experiments[n](); err != nil {
				fmt.Fprintf(os.Stderr, "mvbench: %s: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if err := writeOutputs(col); err != nil {
		fmt.Fprintf(os.Stderr, "mvbench: %v\n", err)
		os.Exit(1)
	}
}

// jsonOutput is the top-level -json document: the per-measurement
// results plus a full metrics snapshot of the whole run.
type jsonOutput struct {
	Results []jsonEntry      `json:"results"`
	Metrics metrics.Snapshot `json:"metrics"`
}

func writeOutputs(col *trace.Collector) error {
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOutput{Results: results, Metrics: registry.Snapshot()}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d results to %s\n", len(results), *jsonPath)
	}
	if col != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := col.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", len(col.Events()), *tracePath)
	}
	return nil
}

func fmtRes(r bench.Result) string { return fmt.Sprintf("%.2f ±%.2f", r.Mean, r.Std) }

func fig1() error {
	var rows [][]string
	for _, b := range []kernelsim.Fig1Binding{kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse} {
		row := []string{b.String()}
		for _, smp := range []bool{false, true} {
			sys, err := kernelsim.BuildFig1(b, smp)
			if err != nil {
				return err
			}
			res, err := sys.Measure(opts())
			if err != nil {
				return err
			}
			record("fig1", fmt.Sprintf("%s/smp=%v", b, smp), res)
			row = append(row, fmtRes(res))
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table(
		"E1 / Figure 1 — spin_irq_lock avg cycles (paper: A 6.64/28.82, B 9.75/28.91, C 7.48/28.86)",
		[]string{"binding", "SMP=false", "SMP=true"}, rows))
	return nil
}

func fig4Spinlock() error {
	var rows [][]string
	for _, k := range []kernelsim.SpinKernel{kernelsim.SpinMainline, kernelsim.SpinIf,
		kernelsim.SpinMultiverse, kernelsim.SpinStaticUP} {
		row := []string{k.String()}
		for _, smp := range []bool{false, true} {
			s, err := kernelsim.BuildSpin(k)
			if err != nil {
				return err
			}
			if err := s.SetSMP(smp); err != nil {
				row = append(row, "n/a")
				continue
			}
			res, err := s.Measure(opts())
			if err != nil {
				return err
			}
			record("fig4-spinlock", fmt.Sprintf("%s/smp=%v", k, smp), res)
			row = append(row, fmtRes(res))
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table(
		"E2 / Figure 4 (left) — spinlock lock+unlock cycles (paper shape: static < mv < if < mainline unicore; all equal multicore)",
		[]string{"kernel", "Unicore", "Multicore"}, rows))
	return nil
}

func fig4PVOps() error {
	var rows [][]string
	for _, k := range []kernelsim.PVKernel{kernelsim.PVCurrent, kernelsim.PVMultiverse, kernelsim.PVDisabled} {
		row := []string{k.String()}
		for _, env := range []kernelsim.PVEnv{kernelsim.EnvNative, kernelsim.EnvXen} {
			p, err := kernelsim.BuildPV(k, env)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			res, err := p.Measure(opts())
			if err != nil {
				return err
			}
			record("fig4-pvops", fmt.Sprintf("%v/%v", k, env), res)
			row = append(row, fmtRes(res))
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table(
		"E3 / Figure 4 (right) — sti+cli cycles (paper shape: all equal native; mv beats current in Xen guest)",
		[]string{"kernel", "Native", "XEN (guest)"}, rows))
	return nil
}

func fig5() error {
	type cell struct{ res bench.Result }
	builds := []muslsim.Build{muslsim.Plain, muslsim.Multiverse}
	var rows [][]string
	for _, multi := range []bool{false, true} {
		mode := "single-threaded"
		if multi {
			mode = "multi-threaded"
		}
		var per [2]map[muslsim.Func]cell
		for bi, b := range builds {
			per[bi] = make(map[muslsim.Func]cell)
			m, err := muslsim.BuildMusl(b)
			if err != nil {
				return err
			}
			if err := m.SetThreads(multi); err != nil {
				return err
			}
			for _, f := range muslsim.Funcs() {
				res, err := m.Measure(f, *samples, *iters)
				if err != nil {
					return err
				}
				record("fig5", fmt.Sprintf("%s/%v/%v", mode, f, b), res)
				per[bi][f] = cell{res}
			}
		}
		for _, f := range muslsim.Funcs() {
			p := per[0][f].res
			v := per[1][f].res
			delta := (p.Mean - v.Mean) / p.Mean * 100
			rows = append(rows, []string{
				mode, f.String(),
				fmt.Sprintf("%.1f cyc (%.0f ms)", p.Mean, muslsim.CyclesToMilliseconds(p.Mean)),
				fmt.Sprintf("%.1f cyc (%.0f ms)", v.Mean, muslsim.CyclesToMilliseconds(v.Mean)),
				fmt.Sprintf("%+.0f%%", -delta),
			})
			if f == muslsim.FnFputc && !multi {
				rows = append(rows, []string{
					mode, "fputc bandwidth",
					fmt.Sprintf("%.0f MiB/s", muslsim.FputcBandwidthMiBs(p.Mean)),
					fmt.Sprintf("%.0f MiB/s", muslsim.FputcBandwidthMiBs(v.Mean)),
					"(paper: 124 -> 264)",
				})
			}
		}
	}
	fmt.Print(bench.Table(
		"E4 / Figure 5 — musl, 10M invocations scaled to ms at 3 GHz (paper: -43% .. -54% single-threaded, ~0% multi-threaded)",
		[]string{"mode", "function", "w/o multiverse", "w/ multiverse", "delta"}, rows))
	return nil
}

func grep() error {
	var rows [][]string
	var plainMean float64
	for _, b := range []grepsim.Build{grepsim.Plain, grepsim.Multiverse} {
		g, err := grepsim.BuildGrep(b)
		if err != nil {
			return err
		}
		if err := g.SetMode(false); err != nil {
			return err
		}
		matches, err := g.Matches()
		if err != nil {
			return err
		}
		res, err := g.Measure(*samples / 10)
		if err != nil {
			return err
		}
		record("grep", b.String(), res)
		delta := ""
		if b == grepsim.Plain {
			plainMean = res.Mean
		} else {
			delta = fmt.Sprintf("%+.2f%%", (res.Mean-plainMean)/plainMean*100)
		}
		rows = append(rows, []string{b.String(),
			fmt.Sprintf("%.0f cycles", res.Mean),
			fmt.Sprintf("%d matches", matches), delta})
	}
	fmt.Print(bench.Table(
		"E5 / grep end-to-end — pattern \"a.a\" over hex-random corpus (paper: -2.73%)",
		[]string{"build", "run time", "correctness", "delta"}, rows))
	return nil
}

func cpython() error {
	var rows [][]string
	var plainMean float64
	for _, b := range []pysim.Build{pysim.Plain, pysim.Multiverse} {
		p, err := pysim.BuildPython(b)
		if err != nil {
			return err
		}
		if err := p.SetGCEnabled(false); err != nil {
			return err
		}
		res, err := p.Measure(*samples, *iters)
		if err != nil {
			return err
		}
		record("cpython", b.String(), res)
		delta := ""
		if b == pysim.Plain {
			plainMean = res.Mean
		} else {
			delta = fmt.Sprintf("%+.2f%%", (res.Mean-plainMean)/plainMean*100)
		}
		rows = append(rows, []string{b.String(), fmtRes(res), delta})
	}
	fmt.Print(bench.Table(
		"E6 / cPython _PyObject_GC_Alloc, gc disabled (paper: no stable result; deterministic simulator shows the small effect)",
		[]string{"build", "cycles/alloc", "delta"}, rows))
	return nil
}

func overheads() error {
	sys, err := kernelsim.BuildManyCallSites(kernelsim.PaperCallSites)
	if err != nil {
		return err
	}
	rep, err := kernelsim.TimeCommit(sys, true)
	if err != nil {
		return err
	}
	rep2, err := kernelsim.TimeCommit(sys, false)
	if err != nil {
		return err
	}
	var descBytes int
	for _, f := range sys.Report.Functions {
		descBytes += f.DescriptorBytes
	}
	rows := [][]string{
		{"call sites recorded", fmt.Sprintf("%d", rep.CallSites), "paper: 1161"},
		{"sites patched (SMP commit)", fmt.Sprintf("%d", rep.SitesTouched), ""},
		{"commit wall time (SMP)", rep.HostDuration.String(), "paper: ~16 ms for 1161 sites"},
		{"commit wall time (UP)", rep2.HostDuration.String(), ""},
		{"function+variant descriptors", fmt.Sprintf("%d B", descBytes), "32 B/var + 16 B/site + 48+v*(32+g*16) B/fn"},
		{"variable descriptors", fmt.Sprintf("%d B", 32*len(sys.RT.Vars())), ""},
		{"call-site descriptors", fmt.Sprintf("%d B", 16*rep.CallSites), ""},
	}
	fmt.Print(bench.Table("E7 / patching + descriptor overheads",
		[]string{"metric", "value", "reference"}, rows))
	return nil
}

func ablationBTB() error {
	var rows [][]string
	for _, b := range []kernelsim.Fig1Binding{kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse} {
		sys, err := kernelsim.BuildFig1(b, false)
		if err != nil {
			return err
		}
		warm, err := sys.Measure(opts())
		if err != nil {
			return err
		}
		cold, err := sys.MeasureColdBTB(opts())
		if err != nil {
			return err
		}
		record("ablation-btb", b.String()+"/warm", warm)
		record("ablation-btb", b.String()+"/cold", cold)
		rows = append(rows, []string{b.String(), fmtRes(warm), fmtRes(cold),
			fmt.Sprintf("%+.1f", cold.Mean-warm.Mean)})
	}
	fmt.Print(bench.Table(
		"E8 / BTB ablation — warm vs cold predictor, UP mode (paper §1: mispredict costs 15-20 cycles)",
		[]string{"binding", "warm BTB", "cold BTB", "penalty"}, rows))
	return nil
}

func ablationMechanism() error {
	build := func(configure func(rt *core.Runtime)) (bench.Result, error) {
		s, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
		if err != nil {
			return bench.Result{}, err
		}
		configure(s.Runtime())
		if err := s.SetSMP(false); err != nil {
			return bench.Result{}, err
		}
		return s.Measure(opts())
	}
	full, err := build(func(rt *core.Runtime) {})
	if err != nil {
		return err
	}
	noInline, err := build(func(rt *core.Runtime) { rt.DisableInlining = true })
	if err != nil {
		return err
	}
	prologueOnly, err := build(func(rt *core.Runtime) { rt.PrologueOnly = true })
	if err != nil {
		return err
	}
	record("ablation-mechanism", "full", full)
	record("ablation-mechanism", "no-inlining", noInline)
	record("ablation-mechanism", "prologue-only", prologueOnly)
	rows := [][]string{
		{"full mechanism (sites + inlining)", fmtRes(full)},
		{"no tiny-body inlining", fmtRes(noInline)},
		{"prologue jump only (no site patching)", fmtRes(prologueOnly)},
	}
	fmt.Print(bench.Table(
		"E9 / mechanism ablation — multiverse spinlock kernel, UP commit",
		[]string{"configuration", "cycles/op"}, rows))
	return nil
}

func alternative() error {
	var rows [][]string
	for _, k := range []kernelsim.AltKernel{kernelsim.AltMacro, kernelsim.AltMultiverse} {
		row := []string{k.String()}
		for _, feature := range []bool{false, true} {
			a, err := kernelsim.BuildAlt(k, feature)
			if err != nil {
				return err
			}
			res, err := a.Measure(opts())
			if err != nil {
				return err
			}
			record("alternative", fmt.Sprintf("%v/feature=%v", k, feature), res)
			row = append(row, fmtRes(res))
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table(
		"E10 / alternative() macros vs multiverse — SMAP-style feature patching (paper claim: multiverse replaces the mechanism without compromise)",
		[]string{"mechanism", "feature off (patched)", "feature on"}, rows))
	return nil
}
