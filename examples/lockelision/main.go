// Lock elision: the Figure 1 walkthrough. Builds the three
// implementations of spin_irq_lock — static #ifdef, dynamic if(), and
// multiverse — and prints the measured cycle table, reproducing the
// motivating table of the paper's introduction.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/kernelsim"
)

func main() {
	opts := kernelsim.MeasureOpts{Samples: 100, Iters: 100, Warmup: 5}
	bindings := []kernelsim.Fig1Binding{
		kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
	}
	var rows [][]string
	for _, b := range bindings {
		row := []string{b.String()}
		for _, smp := range []bool{false, true} {
			sys, err := kernelsim.BuildFig1(b, smp)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Measure(opts)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.2f", res.Mean))
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table("Figure 1 — avg cycles for spin_irq_lock (paper: 6.64/9.75/7.48 and ~28.8)",
		[]string{"[avg. cycles]", "SMP=false", "SMP=true"}, rows))

	fmt.Println("\nThe multiverse hotplug story of §1: switch UP -> SMP -> UP at run time.")
	sys, err := kernelsim.BuildFig1(kernelsim.Fig1Multiverse, false)
	if err != nil {
		log.Fatal(err)
	}
	_ = sys
	spin, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
	if err != nil {
		log.Fatal(err)
	}
	for _, smp := range []bool{false, true, false} {
		if err := spin.SetSMP(smp); err != nil {
			log.Fatal(err)
		}
		res, err := spin.Measure(opts)
		if err != nil {
			log.Fatal(err)
		}
		mode := "UP "
		if smp {
			mode = "SMP"
		}
		fmt.Printf("  hotplug -> %s: lock+unlock = %.2f cycles (sites patched so far: %d, inlined: %d)\n",
			mode, res.Mean, spin.Runtime().Stats.SitesPatched, spin.Runtime().Stats.SitesInlined)
	}
}
