// Dynamically loaded modules: the §5 extension. A "kernel" exports a
// configuration switch and a multiversed function; a module linked and
// loaded at run time brings its own call sites (and its own switch).
// After registration, one commit binds call sites in both images.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const kernel = `
	multiverse int tracing;
	long events;
	multiverse void trace_event(void) {
		if (tracing) { events++; }
	}
	void syscall_entry(void) { trace_event(); }
	long eventCount(void) { return events; }
`

const module = `
	// The attribute must be visible on the declaration (paper §5).
	extern multiverse int tracing;
	multiverse void trace_event(void);

	long driverOps;
	void driver_ioctl(void) {
		trace_event();
		driverOps++;
	}
`

func main() {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "kernel", Text: kernel})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("kernel booted; committing tracing=0 (call sites erased)")
	if err := sys.SetSwitch("tracing", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("insmod: linking the driver module against the kernel's exports")
	mod, err := core.BuildModule(sys.Machine.Image, 0, core.GenOptions{},
		core.Source{Name: "driver", Text: module})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.LoadModule(sys.Machine, mod); err != nil {
		log.Fatal(err)
	}
	if err := sys.RT.AddModule(mod); err != nil {
		log.Fatal(err)
	}
	for name, s := range mod.Symbols {
		if _, dup := sys.Machine.Image.Symbols[name]; !dup {
			sys.Machine.Image.Symbols[name] = s
		}
	}
	fmt.Printf("  module text at %#x, %d call site descriptors registered\n",
		mod.Segments[0].Addr, 1)
	if _, err := sys.RT.Commit(); err != nil { // the post-insmod commit
		log.Fatal(err)
	}

	call := func(name string) uint64 {
		v, err := sys.Machine.CallNamed(name)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	call("syscall_entry")
	call("driver_ioctl")
	fmt.Printf("tracing off: events = %d (both sites erased)\n", call("eventCount"))

	fmt.Println("\nenable tracing and re-commit: both images repatched")
	if err := sys.SetSwitch("tracing", 1); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		log.Fatal(err)
	}
	call("syscall_entry")
	call("driver_ioctl")
	fmt.Printf("tracing on: events = %d\n", call("eventCount"))
	fmt.Printf("runtime stats: %+v\n", sys.RT.Stats)
}
