// Grep mode binding: the §6.2.3 case study end-to-end. At startup the
// tool decides from "locale" and pattern whether multi-byte handling
// is needed, commits the mode, and the per-line check disappears from
// the matching loop.
package main

import (
	"fmt"
	"log"

	"repro/internal/grepsim"
)

func main() {
	corpus := grepsim.Corpus(grepsim.CorpusSize)
	want := grepsim.ReferenceMatches(corpus)
	fmt.Printf("corpus: %d bytes of hex-random lines, %d matches of \"a.a\" expected\n\n",
		len(corpus), want)

	for _, build := range []grepsim.Build{grepsim.Plain, grepsim.Multiverse} {
		g, err := grepsim.BuildGrep(build)
		if err != nil {
			log.Fatal(err)
		}
		// "At start, grep decides upon the current language settings
		// and the search pattern" — single-byte locale here.
		if err := g.SetMode(false); err != nil {
			log.Fatal(err)
		}
		matches, err := g.Matches()
		if err != nil {
			log.Fatal(err)
		}
		res, err := g.Measure(20)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if matches != want {
			status = "WRONG"
		}
		fmt.Printf("%-16s %12.0f cycles/run  matches=%d %s\n", build, res.Mean, matches, status)
	}

	fmt.Println("\nUTF-8 locale (mode committed to multi-byte) still matches correctly:")
	g, err := grepsim.BuildGrep(grepsim.Multiverse)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.SetMode(true); err != nil {
		log.Fatal(err)
	}
	matches, err := g.Matches()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  multibyte build: matches=%d (want %d)\n", matches, want)
}
