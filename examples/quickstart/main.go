// Quickstart: annotate a configuration switch and a function with the
// multiverse attribute, compile, and watch commit/revert change the
// binding of the code — the minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const program = `
	// A configuration switch: an annotated global integer (paper §2).
	multiverse int feature_enabled;

	long fast_calls;
	long slow_calls;
	void fast_path(void) { fast_calls++; }
	void slow_path(void) { slow_calls++; }

	// A variation point: the compiler generates one specialized
	// variant per value in the switch's domain ({0, 1} by default).
	multiverse void process(void) {
		if (feature_enabled) {
			fast_path();
		} else {
			slow_path();
		}
	}

	// A compiler-visible call site: this is what commit patches.
	void handle_request(void) { process(); }

	long fasts(void) { return fast_calls; }
	long slows(void) { return slow_calls; }
`

func main() {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "quickstart", Text: program})
	if err != nil {
		log.Fatal(err)
	}
	call := func(name string) uint64 {
		v, err := sys.Machine.CallNamed(name)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	fmt.Println("== variant generation ==")
	for _, f := range sys.Report.Functions {
		fmt.Printf("%s: switches %v -> %d variants (merged from %d)\n",
			f.Name, f.Switches, f.MergedVariants, f.RawVariants)
	}

	fmt.Println("\n== uncommitted: the switch is evaluated dynamically ==")
	call("handle_request")
	fmt.Printf("fast=%d slow=%d\n", call("fasts"), call("slows"))

	fmt.Println("\n== commit feature_enabled=1: process() is bound ==")
	if err := sys.SetSwitch("feature_enabled", 1); err != nil {
		log.Fatal(err)
	}
	res, err := sys.RT.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("commit: %d function(s) bound; %d call site(s) patched\n",
		res.Committed, sys.RT.Stats.SitesPatched+sys.RT.Stats.SitesInlined)
	call("handle_request")
	fmt.Printf("fast=%d slow=%d\n", call("fasts"), call("slows"))

	fmt.Println("\n== the key semantic: a write without a commit has no effect ==")
	if err := sys.SetSwitch("feature_enabled", 0); err != nil {
		log.Fatal(err)
	}
	call("handle_request")
	fmt.Printf("fast=%d slow=%d  (still the bound fast path)\n", call("fasts"), call("slows"))

	fmt.Println("\n== revert: back to dynamic evaluation ==")
	if err := sys.RT.Revert(); err != nil {
		log.Fatal(err)
	}
	call("handle_request")
	fmt.Printf("fast=%d slow=%d  (the 0 took effect again)\n", call("fasts"), call("slows"))
}
