// Function-pointer switches: the PV-Ops pattern (§4, §6.1). A
// multiversed function pointer dispatches to per-environment
// implementations; committing patches every call site into a direct
// call (or inlines a trivial body), and the prologue-free indirect
// path disappears.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernelsim"
)

const program = `
	long native_ops;
	long hyper_ops;

	void native_flush(void) { native_ops++; }
	void hyper_flush(void) {
		hyper_ops++;
		__hcall(1);
	}

	// The annotated function pointer is a configuration switch whose
	// call sites the compiler records (paper §4).
	multiverse void (*tlb_flush)(void);

	void touch_memory(void) { tlb_flush(); }

	long natives(void) { return native_ops; }
	long hypers(void)  { return hyper_ops; }
`

func main() {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "funcptr", Text: program})
	if err != nil {
		log.Fatal(err)
	}
	// Hypercall 1 needs a hypervisor; reuse kernelsim's Xen model.
	xen := &kernelsim.Xen{}
	sys.Machine.CPU.SetHypervisor(xen)

	call := func(name string) uint64 {
		v, err := sys.Machine.CallNamed(name)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	fmt.Println("boot on bare metal: tlb_flush = native_flush")
	if err := sys.SetFnPtr("tlb_flush", "native_flush"); err != nil {
		log.Fatal(err)
	}
	call("touch_memory") // indirect call through the pointer
	fmt.Printf("  uncommitted (indirect): natives=%d hypers=%d\n", call("natives"), call("hypers"))

	res, err := sys.RT.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  commit: %d switch bound, %d site(s) direct, %d inlined\n",
		res.Committed, sys.RT.Stats.SitesPatched, sys.RT.Stats.SitesInlined)
	call("touch_memory")
	fmt.Printf("  committed (direct): natives=%d hypers=%d\n", call("natives"), call("hypers"))

	fmt.Println("\nmigrate under a hypervisor: tlb_flush = hyper_flush, then re-commit")
	if err := sys.SetFnPtr("tlb_flush", "hyper_flush"); err != nil {
		log.Fatal(err)
	}
	call("touch_memory")
	fmt.Printf("  before re-commit the binding is unchanged: natives=%d hypers=%d\n",
		call("natives"), call("hypers"))
	if _, err := sys.RT.Commit(); err != nil {
		log.Fatal(err)
	}
	call("touch_memory")
	fmt.Printf("  after re-commit: natives=%d hypers=%d (hypercalls seen: %d)\n",
		call("natives"), call("hypers"), xen.Hypercalls)
}
