package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// figure2Src is the paper's running example (Figure 2): two boolean
// switches, a multiversed function whose A=0 variants merge.
const figure2Src = `
	multiverse int A;
	multiverse int B;
	long calcCount;
	long logCount;
	void calc(void) { calcCount++; }
	void logmsg(void) { logCount++; }
	multiverse void multi(void) {
		if (A) {
			calc();
			if (B) { logmsg(); }
		}
	}
	void foo(void) { multi(); }
	long calcs(void) { return calcCount; }
	long logs(void) { return logCount; }
`

func buildFig2(t *testing.T) *System {
	t.Helper()
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "fig2.mvc", Text: figure2Src})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func call(t *testing.T, sys *System, name string, args ...uint64) uint64 {
	t.Helper()
	v, err := sys.Machine.CallNamed(name, args...)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return v
}

func setAndCommit(t *testing.T, sys *System, vals map[string]int64) CommitResult {
	t.Helper()
	for k, v := range vals {
		if err := sys.SetSwitch(k, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVariantGenerationMergesFigure2(t *testing.T) {
	sys := buildFig2(t)
	if len(sys.Report.Functions) != 1 {
		t.Fatalf("reports = %+v", sys.Report.Functions)
	}
	fr := sys.Report.Functions[0]
	if fr.RawVariants != 4 {
		t.Errorf("raw variants = %d, want 4", fr.RawVariants)
	}
	if fr.MergedVariants != 3 {
		t.Errorf("merged variants = %d, want 3 (A=0 merges)", fr.MergedVariants)
	}
	// The merged A=0 variant must carry a range guard B in [0,1].
	var fd *FuncDesc
	for i, f := range sys.RT.Funcs() {
		if f.Name == "multi" {
			fd = &sys.RT.Funcs()[i]
		}
	}
	if fd == nil {
		t.Fatal("no descriptor for multi")
	}
	foundRange := false
	for _, v := range fd.Variants {
		for _, g := range v.Guards {
			if g.Lo == 0 && g.Hi == 1 {
				foundRange = true
			}
		}
	}
	if !foundRange {
		t.Errorf("no merged range guard found: %+v", fd.Variants)
	}
}

func TestCommitSemantics(t *testing.T) {
	sys := buildFig2(t)

	// Uncommitted: dynamic evaluation through the generic body.
	setSwitchOnly := func(name string, v int64) {
		if err := sys.SetSwitch(name, v); err != nil {
			t.Fatal(err)
		}
	}
	setSwitchOnly("A", 1)
	setSwitchOnly("B", 1)
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 || call(t, sys, "logs") != 1 {
		t.Fatal("generic execution broken")
	}

	// Commit A=1, B=0: calc still runs, log does not.
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 0})
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 2 || call(t, sys, "logs") != 1 {
		t.Errorf("A=1,B=0 committed: calcs=%d logs=%d", call(t, sys, "calcs"), call(t, sys, "logs"))
	}

	// The key semantic of §2: after the commit, changing the variable
	// WITHOUT a new commit has no effect — the code is bound.
	setSwitchOnly("B", 1)
	call(t, sys, "foo")
	if call(t, sys, "logs") != 1 {
		t.Error("bound variant still evaluates B dynamically")
	}

	// Re-commit picks up the change.
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	call(t, sys, "foo")
	if call(t, sys, "logs") != 2 {
		t.Error("re-commit did not install the B=1 variant")
	}

	// Commit A=0: multi becomes empty (erased call site).
	setAndCommit(t, sys, map[string]int64{"A": 0, "B": 0})
	before := call(t, sys, "calcs")
	call(t, sys, "foo")
	if call(t, sys, "calcs") != before {
		t.Error("A=0 variant still calls calc")
	}
}

func TestRevertRestoresDynamicBehavior(t *testing.T) {
	sys := buildFig2(t)
	setAndCommit(t, sys, map[string]int64{"A": 0, "B": 0})
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	// Dynamic again: A=1 honoured without commit.
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 {
		t.Error("revert did not restore dynamic evaluation")
	}
}

func TestOutOfDomainFallsBackToGeneric(t *testing.T) {
	sys := buildFig2(t)
	res := setAndCommit(t, sys, map[string]int64{"A": 3, "B": 4})
	if res.Committed != 0 || res.Generic != 1 {
		t.Errorf("commit result = %+v, want generic fallback", res)
	}
	// Figure 3d: the generic code still behaves correctly (A=3 is
	// truthy).
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 {
		t.Error("generic fallback broken")
	}
	if sys.RT.Stats.GenericSignals == 0 {
		t.Error("generic fallback not signalled")
	}
}

func TestCompletenessThroughFunctionPointer(t *testing.T) {
	// Calls through untracked function pointers must reach the
	// committed variant via the prologue jump (§7.4).
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "fp.mvc", Text: `
		multiverse int on;
		long count;
		multiverse void tick(void) { if (on) { count = count + 100; } else { count++; } }
		void (*escape)(void);
		void setup(void) { escape = tick; }
		void callEscape(void) { escape(); }
		long get(void) { return count; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	call(t, sys, "setup")
	if err := sys.SetSwitch("on", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	// Bind on=1, then flip the variable: an indirect call must still
	// execute the committed on=1 variant.
	if err := sys.SetSwitch("on", 0); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "callEscape")
	if got := call(t, sys, "get"); got != 100 {
		t.Errorf("count = %d, want 100 (prologue jump missing?)", got)
	}
}

func TestCommitFuncAndRefs(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "two.mvc", Text: `
		multiverse int a;
		multiverse int b;
		long r;
		multiverse void fa(void) { if (a) { r += 1; } }
		multiverse void fb(void) { if (b) { r += 10; } }
		void runBoth(void) { fa(); fb(); }
		long get(void) { return r; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("b", 1); err != nil {
		t.Fatal(err)
	}
	// Commit only fa via commit_refs(&a).
	aAddr, _ := sys.RT.VarByName("a")
	if _, err := sys.RT.CommitRefs(aAddr); err != nil {
		t.Fatal(err)
	}
	// Flip both variables: fa is bound (a=1 behaviour), fb dynamic.
	if err := sys.SetSwitch("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("b", 0); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "runBoth")
	if got := call(t, sys, "get"); got != 1 {
		t.Errorf("r = %d, want 1 (fa bound to a=1, fb dynamic with b=0)", got)
	}
	// RevertRefs(&a) unbinds fa again.
	if err := sys.RT.RevertRefs(aAddr); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "runBoth")
	if got := call(t, sys, "get"); got != 1 {
		t.Errorf("r = %d after revert, want 1 (fa dynamic with a=0)", got)
	}

	// CommitFunc on fb only.
	fbAddr, ok := sys.RT.FuncByName("fb")
	if !ok {
		t.Fatal("fb not found")
	}
	if err := sys.SetSwitch("b", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.CommitFunc(fbAddr); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("b", 0); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "runBoth")
	if got := call(t, sys, "get"); got != 11 {
		t.Errorf("r = %d, want 11 (fb bound to b=1)", got)
	}
	// RevertFunc fb.
	if err := sys.RT.RevertFunc(fbAddr); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "runBoth")
	if got := call(t, sys, "get"); got != 11 {
		t.Errorf("r = %d, want 11 (both dynamic, a=0, b=0)", got)
	}
}

func TestFunctionPointerSwitchCommit(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "pv.mvc", Text: `
		long nativeCalls;
		long xenCalls;
		void native_sti(void) { nativeCalls++; }
		void xen_sti(void) { xenCalls++; }
		multiverse void (*pv_sti)(void);
		void irq_enable(void) { pv_sti(); }
		long natives(void) { return nativeCalls; }
		long xens(void) { return xenCalls; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetFnPtr("pv_sti", "native_sti"); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: indirect call works.
	call(t, sys, "irq_enable")
	if call(t, sys, "natives") != 1 {
		t.Fatal("indirect pvop call broken")
	}
	// Commit: the call site becomes a direct call.
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1 {
		t.Errorf("commit result = %+v", res)
	}
	// Flip the pointer WITHOUT commit: bound semantics keep calling
	// native_sti.
	if err := sys.SetFnPtr("pv_sti", "xen_sti"); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "irq_enable")
	if call(t, sys, "natives") != 2 || call(t, sys, "xens") != 0 {
		t.Error("committed fnptr call site still indirect")
	}
	// Re-commit: now xen_sti.
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "irq_enable")
	if call(t, sys, "xens") != 1 {
		t.Error("re-commit did not repoint the call site")
	}
	// Revert: indirect again, follows the pointer.
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetFnPtr("pv_sti", "native_sti"); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "irq_enable")
	if call(t, sys, "natives") != 3 {
		t.Error("revert did not restore the indirect call")
	}
}

func TestEmptyVariantErasesCallSite(t *testing.T) {
	sys := buildFig2(t)
	setAndCommit(t, sys, map[string]int64{"A": 0, "B": 0})
	if sys.RT.Stats.SitesInlined == 0 {
		t.Errorf("empty variant was not inlined: %+v", sys.RT.Stats)
	}
	// The erased call must still be erased after many calls, and
	// revert must restore it.
	for i := 0; i < 10; i++ {
		call(t, sys, "foo")
	}
	if call(t, sys, "calcs") != 0 {
		t.Error("erased call site executed something")
	}
}

func TestTinyBodyInliningSTI(t *testing.T) {
	// A variant that is just __sti() must be inlined into the call
	// site (the PV-Ops case of §6.1).
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "sti.mvc", Text: `
		multiverse int paravirt;
		multiverse void irq_enable(void) {
			if (paravirt) { __hcall(1); } else { __sti(); }
		}
		void kernelPath(void) { irq_enable(); }
	`})
	if err != nil {
		t.Fatal(err)
	}
	setAndCommit(t, sys, map[string]int64{"paravirt": 0})
	if sys.RT.Stats.SitesInlined != 1 {
		t.Errorf("sti variant not inlined: %+v", sys.RT.Stats)
	}
	call(t, sys, "kernelPath")
	if !sys.Machine.CPU.InterruptsEnabled() {
		t.Error("inlined sti did not execute")
	}
}

func TestGuardRangeNeverMatchesUnspecializedValue(t *testing.T) {
	// Domain {0, 4}: the values are not contiguous, so no single range
	// guard may cover them — a runtime value of 2 must fall back to
	// the generic.
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "gap.mvc", Text: `
		multiverse(0, 4) int mode;
		long r;
		multiverse void f(void) { if (mode == 0) { r = 100; } else { r = 200; } }
		void run(void) { f(); }
		long get(void) { return r; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	// mode=4 and mode=0 both produce r=200/100; but mode=2 (not in the
	// domain) must not match a guard built from merging 0 and 4.
	if err := sys.SetSwitch("mode", 2); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 0 {
		t.Errorf("value outside the domain matched a guard: %+v", res)
	}
	call(t, sys, "run")
	if got := call(t, sys, "get"); got != 200 {
		t.Errorf("generic result = %d, want 200", got)
	}
}

func TestTamperedCallSiteDetected(t *testing.T) {
	sys := buildFig2(t)
	// Corrupt the first recorded call site behind the runtime's back.
	fnAddr, _ := sys.RT.FuncByName("multi")
	if sys.RT.Sites(fnAddr) == 0 {
		t.Fatal("no call sites")
	}
	site := sys.RT.sites[fnAddr][0].desc.Addr
	if err := sys.Machine.Mem.WriteForce(site, []byte{0x01, 0x01, 0x01, 0x01, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	_, err := sys.RT.Commit()
	if err == nil || !strings.Contains(err.Error(), "modified behind") {
		t.Errorf("tampered site not detected: %v", err)
	}
}

func TestVariantExplosionRejected(t *testing.T) {
	src := `
		multiverse(0,1,2,3,4,5,6,7) int a;
		multiverse(0,1,2,3,4,5,6,7) int b;
		multiverse(0,1,2,3,4,5,6,7) int c;
		multiverse void f(void) { if (a + b + c) { } }
	`
	_, _, err := BuildImage(GenOptions{}, Source{Name: "boom.mvc", Text: src})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("variant explosion not rejected: %v", err)
	}
	// Partial specialization (Bind) rescues it.
	_, rep, err := BuildImage(GenOptions{Bind: map[string]bool{"a": true}},
		Source{Name: "ok.mvc", Text: src})
	if err != nil {
		t.Fatalf("bind subset failed: %v", err)
	}
	if rep.Functions[0].RawVariants != 8 {
		t.Errorf("bound variants = %d, want 8", rep.Functions[0].RawVariants)
	}
}

func TestWriteWarning(t *testing.T) {
	_, rep, err := BuildImage(GenOptions{}, Source{Name: "warn.mvc", Text: `
		multiverse int w;
		multiverse void f(void) { w = 1; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 {
		t.Error("write to switch produced no warning")
	}
}

func TestKernelPlatformPatchesThroughRX(t *testing.T) {
	img, _, err := BuildImage(GenOptions{}, Source{Name: "fig2.mvc", Text: figure2Src})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(img)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(img, &KernelPlatform{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteGlobal("A", 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteGlobal("B", 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Commit(); err != nil {
		t.Fatalf("kernel-mode commit failed: %v", err)
	}
	if _, err := m.CallNamed("foo"); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallNamed("logs")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("logs = %d", got)
	}
}

func TestWXSafePatching(t *testing.T) {
	img, _, err := BuildImage(GenOptions{}, Source{Name: "fig2.mvc", Text: figure2Src})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(img, machine.WithWX())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(img, &UserPlatform{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteGlobal("A", 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Commit(); err != nil {
		t.Fatalf("W^X commit failed: %v", err)
	}
	// Text must be back to r-x (not writable) after patching.
	addr, _ := rt.FuncByName("multi")
	prot, _ := m.Mem.ProtOf(addr)
	if prot.String() != "r-x" {
		t.Errorf("text prot after commit = %v", prot)
	}
}

func TestCommitIdempotent(t *testing.T) {
	sys := buildFig2(t)
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	patched := sys.RT.Stats.SitesPatched + sys.RT.Stats.SitesInlined
	// A second commit with unchanged values must patch nothing new.
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := sys.RT.Stats.SitesPatched + sys.RT.Stats.SitesInlined; got != patched {
		t.Errorf("idempotent commit patched more sites (%d -> %d)", patched, got)
	}
}

func TestRuntimeAPIErrors(t *testing.T) {
	sys := buildFig2(t)
	if _, err := sys.RT.CommitFunc(0xdead); err == nil {
		t.Error("CommitFunc on a random address succeeded")
	}
	if err := sys.RT.RevertFunc(0xdead); err == nil {
		t.Error("RevertFunc on a random address succeeded")
	}
	if _, err := sys.RT.CommitRefs(0xdead); err == nil {
		t.Error("CommitRefs on a random address succeeded")
	}
	if err := sys.RT.RevertRefs(0xdead); err == nil {
		t.Error("RevertRefs on a random address succeeded")
	}
	if err := sys.SetSwitch("nope", 1); err == nil {
		t.Error("SetSwitch on unknown switch succeeded")
	}
}

func TestDescriptorsDecoded(t *testing.T) {
	sys := buildFig2(t)
	if len(sys.RT.Vars()) != 2 {
		t.Errorf("vars = %+v", sys.RT.Vars())
	}
	names := map[string]bool{}
	for _, v := range sys.RT.Vars() {
		names[v.Name] = true
		if v.Width != 4 || !v.Signed || v.FnPtr {
			t.Errorf("descriptor %+v", v)
		}
	}
	if !names["A"] || !names["B"] {
		t.Errorf("names = %v", names)
	}
	fnAddr, ok := sys.RT.FuncByName("multi")
	if !ok || fnAddr == 0 {
		t.Error("multi descriptor missing")
	}
	if sys.RT.Sites(fnAddr) != 1 {
		t.Errorf("call sites = %d, want 1", sys.RT.Sites(fnAddr))
	}
}
