package core

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// defaultTraceCollector, when non-nil, is attached to every System
// that BuildSystem constructs. It is the same global-toggle idiom as
// cpu.SetDecodeCacheDefault: mvbench and the difftests build systems
// deep inside experiment helpers, so a parameter cannot reach them.
var defaultTraceCollector *trace.Collector

// SetDefaultTraceCollector installs (or, with nil, removes) the
// collector that BuildSystem auto-attaches to new systems.
func SetDefaultTraceCollector(c *trace.Collector) { defaultTraceCollector = c }

// DefaultTraceCollector returns the collector BuildSystem attaches.
func DefaultTraceCollector() *trace.Collector { return defaultTraceCollector }

// TraceSymbols builds the symbol set the profiler and trace exporter
// resolve addresses against: every symbol inside an executable
// segment of the image, plus one synthesized symbol per generated
// variant body ("name.variant0", ...) — variants are emitted by the
// multiverse compiler pass and never make it into the linker's
// symbol table, but they are where committed execution spends its
// cycles.
func TraceSymbols(img *link.Image, desc *Descriptors) []trace.Sym {
	exec := func(addr uint64) bool {
		for _, seg := range img.Segments {
			if seg.Prot&mem.Exec != 0 && addr >= seg.Addr && addr < seg.Addr+uint64(len(seg.Data)) {
				return true
			}
		}
		return false
	}
	var syms []trace.Sym
	for name, s := range img.Symbols {
		if s.Size > 0 && exec(s.Addr) {
			syms = append(syms, trace.Sym{Name: name, Addr: s.Addr, Size: s.Size})
		}
	}
	if desc != nil {
		for i := range desc.Funcs {
			fd := &desc.Funcs[i]
			for vi := range fd.Variants {
				v := &fd.Variants[vi]
				syms = append(syms, trace.Sym{
					Name: fmt.Sprintf("%s.variant%d", fd.Name, vi),
					Addr: v.Addr,
					Size: v.Size,
				})
			}
		}
	}
	return syms
}

// AttachTracer wires a collector into every layer of a built system:
// a "cpu0" stream stamped from the primary CPU's cycle clock feeds
// the CPU hooks, the shared memory and the runtime library, and the
// machine remembers the collector so AddCPU gives later hardware
// threads their own streams. The first attached system also installs
// the collector's symbol table (image symbols plus synthesized
// variant names). Returns the created stream.
func AttachTracer(col *trace.Collector, m *machine.Machine, rt *Runtime) *trace.Stream {
	s := col.NewStream("cpu0", m.CPU.Cycles)
	m.CPU.SetTracer(s)
	m.Mem.Tracer = s
	if rt != nil {
		rt.Tracer = s
	}
	m.TraceCollector = col
	if !col.HasSymbols() {
		var desc *Descriptors
		if rt != nil {
			desc = rt.desc
		}
		col.SetSymbols(trace.NewSymTable(TraceSymbols(m.Image, desc)))
	}
	return s
}

// AttachTracer wires the collector into this system's machine and
// runtime (see the package-level AttachTracer).
func (s *System) AttachTracer(col *trace.Collector) *trace.Stream {
	return AttachTracer(col, s.Machine, s.RT)
}

// defaultFlightRecorder, when non-nil, is attached to every System
// BuildSystem constructs — the difftests use it to pin cycle counts
// bit-identical with the recorder attached and detached.
var defaultFlightRecorder *trace.Recorder

// SetDefaultFlightRecorder installs (or, with nil, removes) the flight
// recorder BuildSystem auto-attaches to new systems.
func SetDefaultFlightRecorder(r *trace.Recorder) { defaultFlightRecorder = r }

// DefaultFlightRecorder returns the recorder BuildSystem attaches.
func DefaultFlightRecorder() *trace.Recorder { return defaultFlightRecorder }

// AttachFlightRecorder wires the always-on flight recorder into a
// built system: it tees into the runtime's tracer hook (commit
// lifecycle, retries, rollbacks), the memory system's hook (injected
// faults) and the machine observer (shootdown broadcasts), and stamps
// events from the primary CPU's cycle clock. It deliberately touches
// no CPU tracer — the unobserved stepFast/superblock path stays
// hook-free. The runtime will hand the recorder a failure dump on
// commit abort and audit failure.
//
// Attach any opt-in collector (AttachTracer) first: AttachTracer
// replaces the runtime's tracer outright, while this composes with
// whatever is already there.
func AttachFlightRecorder(rec *trace.Recorder, m *machine.Machine, rt *Runtime) {
	rec.SetClock(m.CPU.Cycles)
	m.Mem.Tracer = trace.NewTee(m.Mem.Tracer, rec)
	m.Observer = trace.NewTee(m.Observer, rec)
	if rt != nil {
		rt.Tracer = trace.NewTee(rt.Tracer, rec)
		rt.flight = rec
	}
}

// AttachFlightRecorder wires the recorder into this system's machine
// and runtime (see the package-level AttachFlightRecorder).
func (s *System) AttachFlightRecorder(rec *trace.Recorder) {
	AttachFlightRecorder(rec, s.Machine, s.RT)
}

// AttachWatchdog wires a cycle-domain invariant watchdog into a built
// system: it observes the runtime's tracer hook (rendezvous latencies,
// deferred-queue depths, flush retries) and the machine observer
// (invalidation broadcasts), clocked from the primary CPU. Alerts are
// re-emitted as KindWatchdogAlert events into whatever tracer chain
// was attached before the watchdog (collector streams, the flight
// recorder), so they land in traces and failure dumps.
func AttachWatchdog(wd *trace.Watchdog, m *machine.Machine, rt *Runtime) {
	wd.SetClock(m.CPU.Cycles)
	if rt != nil {
		wd.Sink = rt.Tracer
		rt.Tracer = trace.NewTee(rt.Tracer, wd)
	}
	m.Observer = trace.NewTee(m.Observer, wd)
}

// AttachWatchdog wires the watchdog into this system's machine and
// runtime (see the package-level AttachWatchdog).
func (s *System) AttachWatchdog(wd *trace.Watchdog) {
	AttachWatchdog(wd, s.Machine, s.RT)
}

// AttachTraceMetrics surfaces the collector's per-stream dropped-event
// counts as mv_trace_dropped_events_total{stream=...}. Streams created
// later (machine.AddCPU gives each hardware thread its own stream) are
// picked up through the collector's new-stream observer.
func AttachTraceMetrics(reg *metrics.Registry, col *trace.Collector) {
	register := func(s *trace.Stream) {
		reg.CounterFunc("mv_trace_dropped_events_total",
			"Trace events overwritten because a stream's ring buffer was full.",
			s.Dropped, metrics.L("stream", s.Label()))
	}
	for _, s := range col.Streams() {
		register(s)
	}
	col.OnNewStream(register)
}

// AttachWatchdogMetrics exports each watchdog rule's fire count as
// mv_watchdog_alerts_total{rule=...}. Every rule is registered up
// front so a healthy run scrapes explicit zeros.
func AttachWatchdogMetrics(reg *metrics.Registry, wd *trace.Watchdog) {
	for _, rule := range wd.RuleNames() {
		rule := rule
		reg.CounterFunc("mv_watchdog_alerts_total",
			"Cycle-domain watchdog invariant violations by rule.",
			func() uint64 { return wd.Count(rule) }, metrics.L("rule", rule))
	}
}
