package core

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// defaultTraceCollector, when non-nil, is attached to every System
// that BuildSystem constructs. It is the same global-toggle idiom as
// cpu.SetDecodeCacheDefault: mvbench and the difftests build systems
// deep inside experiment helpers, so a parameter cannot reach them.
var defaultTraceCollector *trace.Collector

// SetDefaultTraceCollector installs (or, with nil, removes) the
// collector that BuildSystem auto-attaches to new systems.
func SetDefaultTraceCollector(c *trace.Collector) { defaultTraceCollector = c }

// DefaultTraceCollector returns the collector BuildSystem attaches.
func DefaultTraceCollector() *trace.Collector { return defaultTraceCollector }

// TraceSymbols builds the symbol set the profiler and trace exporter
// resolve addresses against: every symbol inside an executable
// segment of the image, plus one synthesized symbol per generated
// variant body ("name.variant0", ...) — variants are emitted by the
// multiverse compiler pass and never make it into the linker's
// symbol table, but they are where committed execution spends its
// cycles.
func TraceSymbols(img *link.Image, desc *Descriptors) []trace.Sym {
	exec := func(addr uint64) bool {
		for _, seg := range img.Segments {
			if seg.Prot&mem.Exec != 0 && addr >= seg.Addr && addr < seg.Addr+uint64(len(seg.Data)) {
				return true
			}
		}
		return false
	}
	var syms []trace.Sym
	for name, s := range img.Symbols {
		if s.Size > 0 && exec(s.Addr) {
			syms = append(syms, trace.Sym{Name: name, Addr: s.Addr, Size: s.Size})
		}
	}
	if desc != nil {
		for i := range desc.Funcs {
			fd := &desc.Funcs[i]
			for vi := range fd.Variants {
				v := &fd.Variants[vi]
				syms = append(syms, trace.Sym{
					Name: fmt.Sprintf("%s.variant%d", fd.Name, vi),
					Addr: v.Addr,
					Size: v.Size,
				})
			}
		}
	}
	return syms
}

// AttachTracer wires a collector into every layer of a built system:
// a "cpu0" stream stamped from the primary CPU's cycle clock feeds
// the CPU hooks, the shared memory and the runtime library, and the
// machine remembers the collector so AddCPU gives later hardware
// threads their own streams. The first attached system also installs
// the collector's symbol table (image symbols plus synthesized
// variant names). Returns the created stream.
func AttachTracer(col *trace.Collector, m *machine.Machine, rt *Runtime) *trace.Stream {
	s := col.NewStream("cpu0", m.CPU.Cycles)
	m.CPU.SetTracer(s)
	m.Mem.Tracer = s
	if rt != nil {
		rt.Tracer = s
	}
	m.TraceCollector = col
	if !col.HasSymbols() {
		var desc *Descriptors
		if rt != nil {
			desc = rt.desc
		}
		col.SetSymbols(trace.NewSymTable(TraceSymbols(m.Image, desc)))
	}
	return s
}

// AttachTracer wires the collector into this system's machine and
// runtime (see the package-level AttachTracer).
func (s *System) AttachTracer(col *trace.Collector) *trace.Stream {
	return AttachTracer(col, s.Machine, s.RT)
}
