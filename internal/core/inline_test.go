package core

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

func TestInlinePayloadEmptyBody(t *testing.T) {
	var a isa.Asm
	a.Ret()
	payload, ok := inlinePayload(a.Bytes())
	if !ok || len(payload) != 0 {
		t.Errorf("RET-only body: payload=%x ok=%v", payload, ok)
	}
}

func TestInlinePayloadSingleInstruction(t *testing.T) {
	var a isa.Asm
	a.Sti()
	a.Ret()
	payload, ok := inlinePayload(a.Bytes())
	if !ok || len(payload) != 1 || isa.Op(payload[0]) != isa.STI {
		t.Errorf("sti body: payload=%x ok=%v", payload, ok)
	}
}

func TestInlinePayloadSkipsNops(t *testing.T) {
	var a isa.Asm
	a.Nop(20) // no-scratch placeholder collapsed to one wide NOP
	a.Cli()
	a.Nop(2)
	a.Ret()
	payload, ok := inlinePayload(a.Bytes())
	if !ok || len(payload) != 1 || isa.Op(payload[0]) != isa.CLI {
		t.Errorf("nop-padded body: payload=%x ok=%v", payload, ok)
	}
}

func TestInlinePayloadRejectsControlFlowAndStack(t *testing.T) {
	cases := map[string]func(a *isa.Asm){
		"call":     func(a *isa.Asm) { a.Call(0) },
		"jmp":      func(a *isa.Asm) { a.Jmp(0) },
		"jcc":      func(a *isa.Asm) { a.Jcc(isa.EQ, 0) },
		"push":     func(a *isa.Asm) { a.Push(1) },
		"pop":      func(a *isa.Asm) { a.Pop(1) },
		"spadd":    func(a *isa.Asm) { a.SpAdd(-8) },
		"callr":    func(a *isa.Asm) { a.CallR(1) },
		"sp-read":  func(a *isa.Asm) { a.Mov(0, isa.SP) },
		"sp-write": func(a *isa.Asm) { a.Mov(isa.SP, 0) },
		"sp-load":  func(a *isa.Asm) { a.Ld(0, isa.SP, 8, 0) },
		"hlt":      func(a *isa.Asm) { a.Hlt() },
	}
	for name, emit := range cases {
		var a isa.Asm
		emit(&a)
		a.Ret()
		if _, ok := inlinePayload(a.Bytes()); ok {
			t.Errorf("%s body reported inlinable", name)
		}
	}
}

func TestInlinePayloadRejectsOversized(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 1) // 10 bytes > 5
	a.Ret()
	if _, ok := inlinePayload(a.Bytes()); ok {
		t.Error("10-byte instruction reported inlinable")
	}
	// Exactly at the limit: cli(1)+sti(1)+pause(1)+cli(1)+sti(1) = 5.
	var b isa.Asm
	b.Cli()
	b.Sti()
	b.Pause()
	b.Cli()
	b.Sti()
	b.Ret()
	payload, ok := inlinePayload(b.Bytes())
	if !ok || len(payload) != isa.CallSiteLen {
		t.Errorf("5-byte body: payload=%x ok=%v", payload, ok)
	}
	// One more byte tips it over.
	var c isa.Asm
	c.Cli()
	c.Sti()
	c.Pause()
	c.Cli()
	c.Sti()
	c.Pause()
	c.Ret()
	if _, ok := inlinePayload(c.Bytes()); ok {
		t.Error("6-byte body reported inlinable")
	}
}

func TestInlinePayloadNoRet(t *testing.T) {
	var a isa.Asm
	a.Cli()
	if _, ok := inlinePayload(a.Bytes()); ok {
		t.Error("body without RET reported inlinable")
	}
	if _, ok := inlinePayload(nil); ok {
		t.Error("empty body reported inlinable")
	}
	if _, ok := inlinePayload([]byte{0xFF}); ok {
		t.Error("undecodable body reported inlinable")
	}
}

func TestEncodePatched(t *testing.T) {
	// Empty payload becomes one maximal NOP (Figure 3c).
	out := encodePatched(nil)
	if len(out) != isa.CallSiteLen {
		t.Fatalf("len = %d", len(out))
	}
	in, err := isa.Decode(out)
	if err != nil || in.Op != isa.NOPN || in.Len != isa.CallSiteLen {
		t.Errorf("empty payload encodes to %v (%v)", in, err)
	}
	// Payload + filler.
	var a isa.Asm
	a.Sti()
	out = encodePatched(a.Bytes())
	if len(out) != isa.CallSiteLen || isa.Op(out[0]) != isa.STI {
		t.Errorf("sti payload: %x", out)
	}
	// Exact-size payload gets no filler.
	full := bytes.Repeat([]byte{byte(isa.PAUSE)}, isa.CallSiteLen)
	out = encodePatched(full)
	if !bytes.Equal(out, full) {
		t.Errorf("full payload altered: %x", out)
	}
}
