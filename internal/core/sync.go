package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/trace"
)

// This file adds SMP-safe commit modes to the runtime library. The
// legacy contract (paper §2: "the caller decides when the program is
// in a patchable state") survives as ModeParked; the two new modes
// make commits safe while other CPUs execute:
//
//   - ModeStopMachine quiesces every CPU at an instruction boundary
//     outside all patchable ranges before any byte changes — the
//     kernel's stop_machine.
//   - ModeTextPoke rewrites multi-byte sites with the breakpoint
//     protocol (BRK first byte, tail, first byte; flush + acknowledge
//     between phases) so a racing CPU either decodes the old
//     instruction whole or traps resumably — the kernel's
//     text_poke_bp.
//
// Orthogonally, an activeness check refuses (or defers) rebinding a
// function whose currently-committed code is live on some CPU's stack
// — the stack check of kernel livepatch.

// CommitMode selects how commits synchronize with concurrently
// executing CPUs.
type CommitMode int

const (
	// ModeParked is the legacy contract: the caller guarantees no CPU
	// executes near patched text. No rendezvous, no poke protocol —
	// byte- and cycle-identical to the pre-SMP runtime.
	ModeParked CommitMode = iota
	// ModeStopMachine quiesces all CPUs outside the patch ranges for
	// the duration of each operation.
	ModeStopMachine
	// ModeTextPoke leaves CPUs running and rewrites text with the
	// breakpoint protocol.
	ModeTextPoke
)

// String names the mode (flag values of mvstress -mode).
func (m CommitMode) String() string {
	switch m {
	case ModeParked:
		return "parked"
	case ModeStopMachine:
		return "stop"
	case ModeTextPoke:
		return "poke"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// OnActivePolicy decides what a commit does when the activeness check
// finds the function live on a CPU stack.
type OnActivePolicy int

const (
	// ActiveRefuse fails the operation with ErrFunctionActive (the
	// transaction rolls back anything already patched).
	ActiveRefuse OnActivePolicy = iota
	// ActiveDefer queues the operation; DrainDeferred applies it at the
	// next quiescent point.
	ActiveDefer
	// ActiveOSR performs on-stack replacement: inside the commit
	// rendezvous, every live frame of the old body is transferred to
	// the equivalent OSR point of the target body (PC, SP, spilled
	// slots, return addresses — all through the undo journal). When no
	// mapped point exists the operation falls back to ActiveDefer and
	// is counted in Stats.OSRFallbacks.
	ActiveOSR
)

// String names the policy (flag values of mvstress -onactive).
func (p OnActivePolicy) String() string {
	switch p {
	case ActiveRefuse:
		return "refuse"
	case ActiveDefer:
		return "defer"
	case ActiveOSR:
		return "osr"
	}
	return fmt.Sprintf("onactive%d", int(p))
}

// CommitOptions configures the concurrency behavior of every
// subsequent commit/revert operation.
type CommitOptions struct {
	Mode     CommitMode
	OnActive OnActivePolicy
}

// SetCommitOptions installs the commit concurrency options. The zero
// value (ModeParked, ActiveRefuse) restores legacy behavior.
func (rt *Runtime) SetCommitOptions(o CommitOptions) { rt.Options = o }

// ErrFunctionActive is returned (wrapped) when a commit or revert is
// refused because the function's currently-committed code is live on
// some CPU's stack and the policy is ActiveRefuse.
var ErrFunctionActive = errors.New("core: function is active on a CPU stack")

// Activeness is implemented by platforms that can enumerate the code
// addresses currently live on any CPU (PCs plus conservative stack
// return-address scans). Without it the activeness check is skipped.
// The bool result reports completeness: false means a stack scan was
// truncated and the list cannot prove anything inactive — consumers
// must treat every function as potentially active.
type Activeness interface {
	LiveCodeAddrs() ([]uint64, bool)
}

// FrameAccessor is implemented by platforms that expose the paused
// CPUs and their stack geometry, enabling on-stack replacement.
// Without it ActiveOSR always falls back to defer.
type FrameAccessor interface {
	OSRCPUs() []machine.OSRCPU
}

// Stopper is implemented by platforms that can run a stop-machine
// rendezvous: quiesce every CPU outside the avoid ranges, run fn, and
// report the rendezvous latency in cycles.
type Stopper interface {
	StopMachine(avoid []machine.Range, fn func() error) (uint64, error)
}

// PokeAnnouncer is implemented by platforms that forward text-poke
// phase transitions to machine-level hooks (chaos harnesses and fault
// injectors listen there).
type PokeAnnouncer interface {
	NotePokePhase(phase int, addr, n uint64)
}

// runGuarded runs body under the configured synchronization: a
// stop-machine rendezvous in ModeStopMachine (when the platform can),
// plainly otherwise. It is the wrapper every public operation's
// transaction body goes through.
func (rt *Runtime) runGuarded(body func() error) error {
	if rt.Options.Mode != ModeStopMachine {
		return body()
	}
	sm, ok := rt.plat.(Stopper)
	if !ok {
		return body()
	}
	prs := rt.PatchRanges()
	avoid := make([]machine.Range, len(prs))
	for i, pr := range prs {
		avoid[i] = machine.Range{Addr: pr.Addr, Len: pr.Len}
	}
	endPhase := rt.phase("stop-machine")
	lat, err := sm.StopMachine(avoid, body)
	rt.Stats.StopMachines++
	rt.noteRendezvous(lat, uint64(len(avoid)))
	endPhase()
	return err
}

// noteRendezvous records one stop-machine rendezvous in the trace and
// the latency histogram.
func (rt *Runtime) noteRendezvous(latency, ranges uint64) {
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindRendezvous, 0, latency, ranges)
	}
	rt.metrics.observeRendezvous(latency)
}

// pokeWrite is the journaled breakpoint-protocol text write writeText
// dispatches to in ModeTextPoke. Each phase is journaled separately,
// so an abort at any point replays newest-first:
//
//	E3 undone -> BRK back over the first byte,
//	E2 undone -> original tail back,
//	E1 undone -> original first byte back,
//
// leaving the image byte-identical and BRK-free. Between phases the
// icache shootdown is verified (flushAck): a CPU whose flush was
// dropped must not carry its stale snapshot into the next phase, or a
// later refill could hand it a spliced old/new hybrid.
//
// Before phase 1 the machine is herded so no PC sits strictly inside
// the window, and any live return address interior to the window must
// be an instruction boundary of both the old and the new content —
// otherwise the poke is refused (the transaction aborts cleanly).
func (rt *Runtime) pokeWrite(addr uint64, old, data []byte) error {
	n := uint64(len(data))
	if err := rt.pokeGuard(addr, old, data); err != nil {
		return err
	}
	defer rt.phase("poke")()
	rt.Stats.TextPokes++
	pa, _ := rt.plat.(PokeAnnouncer)
	phase := func(ph int, a uint64, oldB, newB []byte) error {
		if err := rt.writeTextDirect(a, oldB, newB); err != nil {
			return err
		}
		rt.plat.FlushICache(a, uint64(len(newB)))
		rt.flushAck(a, uint64(len(newB)))
		if rt.Tracer != nil {
			rt.Tracer.Emit(trace.KindPokePhase, addr, n, uint64(ph))
		}
		if pa != nil {
			pa.NotePokePhase(ph, addr, n)
		}
		return nil
	}
	brk := []byte{byte(isa.BRK)}
	if err := phase(1, addr, old[:1], brk); err != nil {
		return err
	}
	if err := phase(2, addr+1, old[1:], data[1:]); err != nil {
		return err
	}
	return phase(3, addr, brk, data[:1])
}

// pokeGuard establishes the poke protocol's precondition: no CPU may
// be (or return) strictly inside the window at a point that is not an
// instruction boundary of both the old and the new content. PCs are
// herded out with a bounded rendezvous (the window's old content is
// straight-line, so a few steps always exit it); an interior return
// address that would land mid-instruction in the new content refuses
// the poke.
func (rt *Runtime) pokeGuard(addr uint64, old, data []byte) error {
	n := uint64(len(data))
	if sm, ok := rt.plat.(Stopper); ok {
		endPhase := rt.phase("herd")
		lat, err := sm.StopMachine([]machine.Range{{Addr: addr + 1, Len: n - 1}}, func() error { return nil })
		if err != nil {
			endPhase()
			return fmt.Errorf("core: herding CPUs out of poke window [%#x,%#x): %w", addr, addr+n, err)
		}
		rt.noteRendezvous(lat, 1)
		endPhase()
	}
	la, ok := rt.plat.(Activeness)
	if !ok {
		return nil
	}
	oldB := instBoundaries(addr, old)
	newB := instBoundaries(addr, data)
	live, complete := la.LiveCodeAddrs()
	if !complete {
		return fmt.Errorf("core: stack scan truncated; cannot prove poke window [%#x,%#x) free of live addresses",
			addr, addr+n)
	}
	for _, a := range live {
		if a > addr && a < addr+n && !(oldB[a] && newB[a]) {
			return fmt.Errorf("core: live code address %#x inside poke window [%#x,%#x) is not a common instruction boundary",
				a, addr, addr+n)
		}
	}
	return nil
}

// instBoundaries returns the set of addresses at which an instruction
// of code (loaded at base) begins. Undecodable bytes end the walk; the
// partial set only ever makes the guard stricter.
func instBoundaries(base uint64, code []byte) map[uint64]bool {
	out := make(map[uint64]bool, len(code))
	off := 0
	for off < len(code) {
		out[base+uint64(off)] = true
		in, err := isa.Decode(code[off:])
		if err != nil {
			break
		}
		off += in.Len
	}
	return out
}

// flushAck re-broadcasts the shootdown for one range until no hardware
// thread caches stale bytes — the per-phase acknowledge step of the
// poke protocol (text_poke_sync's IPI wait).
func (rt *Runtime) flushAck(addr, n uint64) {
	fv, ok := rt.plat.(FlushVerifier)
	if !ok {
		return
	}
	for try := 0; try < maxFlushVerify && fv.ICacheStale(addr, n); try++ {
		rt.Stats.FlushRetries++
		if rt.Tracer != nil {
			rt.Tracer.Emit(trace.KindFlushRetry, addr, n, uint64(try+1))
		}
		rt.plat.FlushICache(addr, n)
	}
}

// bindStatus is the tri-state outcome of one function commit.
type bindStatus int

const (
	bindGeneric  bindStatus = iota // no variant matched; generic stays
	bindBound                      // a variant was installed
	bindDeferred                   // function active; operation queued
)

// pendingKind tags a deferred operation.
type pendingKind int

const (
	pendingCommit pendingKind = iota
	pendingRevert
)

// isActive reports whether fs's currently-running code — the committed
// variant's body, or the generic body when none is committed — is live
// on any CPU (PC or stack return address). Always false in ModeParked
// (the legacy caller already guarantees quiescence) and on platforms
// without an Activeness view.
func (rt *Runtime) isActive(fs *funcState) bool {
	if rt.Options.Mode == ModeParked {
		return false
	}
	la, ok := rt.plat.(Activeness)
	if !ok {
		return false
	}
	lo, hi := fs.fd.Generic, fs.fd.Generic+uint64(fs.fd.Size)
	if v := fs.committed; v != nil {
		lo, hi = v.Addr, v.Addr+uint64(v.Size)
	}
	if hi == lo {
		return false
	}
	live, complete := la.LiveCodeAddrs()
	if !complete {
		// A truncated scan proves nothing inactive: conservatively
		// treat the function as live rather than patch under a frame
		// the bound hid.
		return true
	}
	for _, a := range live {
		if a >= lo && a < hi {
			return true
		}
	}
	return false
}

// deferOp queues (or re-tags) a deferred operation for fs. The queue
// mutation is undo-registered: if the enclosing transaction aborts,
// the queue returns to its pre-operation state.
func (rt *Runtime) deferOp(fs *funcState, k pendingKind) {
	if rt.deferredKind == nil {
		rt.deferredKind = make(map[*funcState]pendingKind)
	}
	prev, had := rt.deferredKind[fs]
	rt.noteUndo(func() {
		if had {
			rt.deferredKind[fs] = prev
			return
		}
		delete(rt.deferredKind, fs)
		for i := len(rt.deferredOrder) - 1; i >= 0; i-- {
			if rt.deferredOrder[i] == fs {
				rt.deferredOrder = append(rt.deferredOrder[:i], rt.deferredOrder[i+1:]...)
				break
			}
		}
	})
	if !had {
		rt.deferredOrder = append(rt.deferredOrder, fs)
	}
	rt.deferredKind[fs] = k
	rt.Stats.DeferredPatches++
	if rt.Tracer != nil {
		op := uint64(1)
		if k == pendingRevert {
			op = 2
		}
		rt.Tracer.EmitName(trace.KindDeferred, fs.fd.Generic, op, uint64(len(rt.deferredOrder)), fs.fd.Name)
	}
}

// DeferredCount returns how many functions have a queued deferred
// operation.
func (rt *Runtime) DeferredCount() int { return len(rt.deferredOrder) }

// DrainDeferred applies every queued operation whose function is no
// longer active, each in its own transaction, and returns how many
// were applied. Still-active functions stay queued. Call it at
// quiescent points (the chaos harness drains after parking its
// workers). Errors are joined; a failed operation goes back on the
// queue.
func (rt *Runtime) DrainDeferred() (int, error) {
	if len(rt.deferredOrder) == 0 {
		return 0, nil
	}
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	pend := append([]*funcState(nil), rt.deferredOrder...)
	done := 0
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindDrainBegin, 0, uint64(len(pend)), 0)
		defer func() {
			rt.Tracer.Emit(trace.KindDrainEnd, 0, uint64(done), uint64(len(rt.deferredOrder)))
		}()
	}
	var errs []error
	for _, fs := range pend {
		k, ok := rt.deferredKind[fs]
		if !ok {
			continue // a later operation already handled it
		}
		if rt.isActive(fs) {
			continue
		}
		// Dequeue before running: the operation may legitimately re-defer.
		delete(rt.deferredKind, fs)
		for i, q := range rt.deferredOrder {
			if q == fs {
				rt.deferredOrder = append(rt.deferredOrder[:i], rt.deferredOrder[i+1:]...)
				break
			}
		}
		t := rt.beginTxn()
		err := rt.runGuarded(func() error {
			switch k {
			case pendingCommit:
				_, err := rt.commitFunc(fs)
				return err
			default:
				return rt.revertFunc(fs)
			}
		})
		if err = rt.endTxn(t, err); err != nil {
			errs = append(errs, fmt.Errorf("core: draining deferred op for %q: %w", fs.fd.Name, err))
			// Re-queue outside any transaction; no stats bump, it was
			// already counted when first deferred.
			if _, requeued := rt.deferredKind[fs]; !requeued {
				rt.deferredKind[fs] = k
				rt.deferredOrder = append(rt.deferredOrder, fs)
			}
			continue
		}
		// A stop-machine rendezvous inside the drain can step a CPU into
		// the function, re-deferring the operation mid-drain; that one
		// was postponed again, not applied.
		if _, requeued := rt.deferredKind[fs]; requeued {
			continue
		}
		done++
		rt.Stats.DeferredDrained++
	}
	return done, errors.Join(errs...)
}

// checkActive runs the activeness policy for one function about to be
// rebound or reverted. target is the variant being committed (nil for
// a revert to generic). It returns (true, nil, nil) when the operation
// was deferred, a non-nil error when refused, and (false, plan, nil)
// when the operation may proceed — with a frame-transfer plan attached
// when ActiveOSR validated one (the caller applies it after patching,
// inside the same transaction).
func (rt *Runtime) checkActive(fs *funcState, k pendingKind, target *VariantDesc) (bool, *osrPlan, error) {
	if !rt.isActive(fs) {
		return false, nil, nil
	}
	switch rt.Options.OnActive {
	case ActiveDefer:
		rt.deferOp(fs, k)
		return true, nil, nil
	case ActiveOSR:
		plan, err := rt.osrPrepare(fs, target)
		if err == nil {
			return false, plan, nil
		}
		// No safe frame mapping: the documented ActiveOSR contract is
		// to fall back to the deferred queue, never to abort here (no
		// byte has been patched yet).
		rt.Stats.OSRFallbacks++
		rt.deferOp(fs, k)
		return true, nil, nil
	}
	rt.Stats.ActiveRefusals++
	return false, nil, fmt.Errorf("core: %q: %w", fs.fd.Name, ErrFunctionActive)
}

// purgeDeferred drops any queued deferred operation for fs. A commit
// or revert that lands (directly or via on-stack replacement) makes an
// older queued operation stale — leaving it queued would let a later
// DrainDeferred re-apply an outdated rebinding on top of the newer
// one. The queue mutation is undo-registered like deferOp's, so an
// aborted transaction restores the queue exactly.
func (rt *Runtime) purgeDeferred(fs *funcState) {
	k, had := rt.deferredKind[fs]
	if !had {
		return
	}
	idx := -1
	for i, q := range rt.deferredOrder {
		if q == fs {
			idx = i
			break
		}
	}
	rt.noteUndo(func() {
		rt.deferredKind[fs] = k
		if idx < 0 || idx > len(rt.deferredOrder) {
			rt.deferredOrder = append(rt.deferredOrder, fs)
			return
		}
		rt.deferredOrder = append(rt.deferredOrder[:idx],
			append([]*funcState{fs}, rt.deferredOrder[idx:]...)...)
	})
	delete(rt.deferredKind, fs)
	if idx >= 0 {
		rt.deferredOrder = append(rt.deferredOrder[:idx], rt.deferredOrder[idx+1:]...)
	}
	if rt.Tracer != nil {
		rt.Tracer.EmitName(trace.KindDeferred, fs.fd.Generic, 0, uint64(len(rt.deferredOrder)), fs.fd.Name)
	}
}
