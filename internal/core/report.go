package core

import (
	"fmt"
	"sort"
	"strings"
)

// StateReport renders the runtime's current binding state: every
// multiversed function with its committed variant (or "generic"),
// every function-pointer switch, and per-site patch status. It is the
// introspection surface mvrun and the examples print.
func (rt *Runtime) StateReport() string {
	var sb strings.Builder
	// All three listings sort with an address tie-breaker: names are
	// almost always unique, but two units may legally declare colliding
	// names, and a report that depends on map-iteration (or descriptor)
	// order for the tie would render differently run to run — mvdbg's
	// `state` view and the snapshot goldens need byte-stable output.
	funcs := append([]*funcState(nil), rt.funcs...)
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].fd.Name != funcs[j].fd.Name {
			return funcs[i].fd.Name < funcs[j].fd.Name
		}
		return funcs[i].fd.Generic < funcs[j].fd.Generic
	})
	for _, fs := range funcs {
		state := "generic (dynamic)"
		if fs.committed != nil {
			state = fmt.Sprintf("bound to variant @%#x", fs.committed.Addr)
		}
		fmt.Fprintf(&sb, "func %-24s %s", fs.fd.Name, state)
		sites := rt.sites[fs.fd.Generic]
		patched := 0
		for _, st := range sites {
			if st.patched {
				patched++
			}
		}
		fmt.Fprintf(&sb, "  [%d/%d sites patched", patched, len(sites))
		if fs.prologueOn {
			sb.WriteString(", prologue redirected")
		}
		sb.WriteString("]\n")
	}

	var ptrs []*fnptrState
	for _, ps := range rt.fnptrs {
		ptrs = append(ptrs, ps)
	}
	sort.Slice(ptrs, func(i, j int) bool {
		if ptrs[i].vd.Name != ptrs[j].vd.Name {
			return ptrs[i].vd.Name < ptrs[j].vd.Name
		}
		return ptrs[i].vd.Addr < ptrs[j].vd.Addr
	})
	for _, ps := range ptrs {
		state := "indirect (dynamic)"
		if ps.committed {
			state = fmt.Sprintf("bound to %#x", ps.target)
		}
		sites := rt.sites[ps.vd.Addr]
		fmt.Fprintf(&sb, "fptr %-24s %s  [%d sites]\n", ps.vd.Name, state, len(sites))
	}

	var vars []VarDesc
	vars = append(vars, rt.desc.Vars...)
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].Name != vars[j].Name {
			return vars[i].Name < vars[j].Name
		}
		return vars[i].Addr < vars[j].Addr
	})
	for _, v := range vars {
		if v.FnPtr {
			continue
		}
		val, err := rt.readSwitch(&v)
		if err != nil {
			fmt.Fprintf(&sb, "var  %-24s <unreadable: %v>\n", v.Name, err)
			continue
		}
		fmt.Fprintf(&sb, "var  %-24s = %d\n", v.Name, val)
	}

	s := rt.Stats
	fmt.Fprintf(&sb, "stat commits=%d reverts=%d sites{patched=%d inlined=%d reverted=%d} prologues=%d generic-signals=%d\n",
		s.Commits, s.Reverts, s.SitesPatched, s.SitesInlined, s.SitesReverted, s.ProloguePatch, s.GenericSignals)
	// The transactional counters only print when something transactional
	// actually happened, so fault-free runs (and their golden tests)
	// render byte-identically with and without the crash-consistency
	// layer.
	if s.CommitAborts+s.CommitRetries+s.SitesRolledBack+s.FlushRetries > 0 {
		fmt.Fprintf(&sb, "txn  aborts=%d retries=%d sites-rolled-back=%d flush-retries=%d\n",
			s.CommitAborts, s.CommitRetries, s.SitesRolledBack, s.FlushRetries)
	}
	// Same gating for the SMP-safety counters: ModeParked runs (and
	// their golden tests) never print this line.
	if s.StopMachines+s.TextPokes+s.DeferredPatches+s.DeferredDrained+s.ActiveRefusals > 0 {
		fmt.Fprintf(&sb, "sync stop-machines=%d text-pokes=%d deferred{queued=%d drained=%d} active-refusals=%d\n",
			s.StopMachines, s.TextPokes, s.DeferredPatches, s.DeferredDrained, s.ActiveRefusals)
	}
	if ms, ok := rt.plat.(MemStatser); ok {
		m := ms.MemStats()
		fmt.Fprintf(&sb, "mem  protect-calls=%d icache-flushes=%d\n", m.ProtectCalls, m.Flushes)
	}
	// The metrics section appears only when a registry is attached, so
	// unobserved runs (and their golden tests) render byte-identically
	// with and without the metrics build-out.
	if mm := rt.metrics; mm != nil {
		lat := mm.commitLatency.Snapshot()
		if lat.Count > 0 {
			p50, _ := lat.Quantile(0.50)
			p99, _ := lat.Quantile(0.99)
			sites := mm.commitSites.Snapshot()
			fmt.Fprintf(&sb, "mtrc commit-latency{count=%d mean=%.0f p50<=%d p99<=%d cycles} sites/commit mean=%.1f\n",
				lat.Count, lat.Mean(), p50, p99, sites.Mean())
		}
	}
	return sb.String()
}
