package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/trace"
)

// Runtime is the multiverse run-time library (paper §4, Table 1): it
// decodes the descriptors of a loaded image and installs or removes
// function variants by patching call sites and generic prologues.
//
// Like the paper's library it performs no synchronization by default;
// the caller decides when the program is in a patchable state (§2).
// SetCommitOptions can opt into SMP-safe modes (stop-machine
// rendezvous or the BRK text-poke protocol, see sync.go) when other
// CPUs keep running during commits.
type Runtime struct {
	plat Platform
	desc *Descriptors

	varsByAddr map[uint64]*VarDesc
	funcs      []*funcState
	byGeneric  map[uint64]*funcState
	byName     map[string]*funcState
	fnptrs     map[uint64]*fnptrState // keyed by switch-variable address
	ptrOrder   []*fnptrState          // fnptrs in address order, for deterministic commits
	sites      map[uint64][]*siteState

	// tx is the open transaction, if any; see journal.go. Public
	// operations open one, nested helpers join it.
	tx *txn

	// Options selects the commit concurrency mode and the activeness
	// policy (sync.go); the zero value is the legacy parked contract.
	Options CommitOptions

	// deferredKind/deferredOrder queue operations postponed because
	// the target function was active on a CPU stack (ActiveDefer);
	// DrainDeferred applies them at the next quiescent point.
	deferredKind  map[*funcState]pendingKind
	deferredOrder []*funcState

	// Stats accumulates patching work across all commits.
	Stats RuntimeStats

	// Tracer, when non-nil, records commit/revert spans, the switch
	// values that drove them, and every site/prologue patch.
	Tracer trace.Tracer

	// opSeq numbers public operations; beginOpSpan (span.go) stamps it
	// into every trace sink that carries commit-causality spans.
	opSeq uint64

	// flight, when non-nil (AttachFlightRecorder), receives a failure
	// dump on commit abort and audit failure.
	flight *trace.Recorder

	// metrics, when non-nil (set by AttachMetrics), observes commit
	// latency, sites-per-commit and per-function variant residency.
	// All its methods are nil-receiver safe, so the hooks below cost
	// one pointer comparison when detached.
	metrics *MVMetrics

	// DisableInlining turns off tiny-body call-site inlining; variants
	// are always installed as direct calls (ablation E9).
	DisableInlining bool
	// PrologueOnly skips call-site patching entirely and relies on the
	// generic-prologue jump alone — the configuration §7.4 calls "a
	// mere optimization" to go beyond (ablation E9).
	PrologueOnly bool
}

// RuntimeStats counts runtime-library activity. The patch/site
// counters record attempted work and are not decremented by rollback;
// the transactional counters below them tell how much of it was
// subsequently undone.
type RuntimeStats struct {
	Commits        int
	Reverts        int
	SitesPatched   int
	SitesInlined   int
	SitesReverted  int
	ProloguePatch  int
	GenericSignals int // commits that fell back to the generic variant

	CommitAborts    int // operations rolled back to the pre-commit image
	CommitRetries   int // text writes retried after a transient fault
	SitesRolledBack int // journal entries restored during aborts
	FlushRetries    int // icache shootdowns re-broadcast after verification

	// Concurrency counters (sync.go). Zero in ModeParked.
	StopMachines    int // stop-machine rendezvous run for guarded operations
	TextPokes       int // multi-byte text writes done via the BRK protocol
	DeferredPatches int // operations queued because the function was active
	DeferredDrained int // queued operations applied by DrainDeferred
	ActiveRefusals  int // operations refused with ErrFunctionActive

	// On-stack replacement counters (osr.go). Zero unless ActiveOSR.
	OSRTransfers int // live frames transferred into a new body
	OSRFallbacks int // ActiveOSR operations that fell back to the deferred queue
	OSRRollbacks int // frame transfers undone (or torn down) by rollback
}

type siteState struct {
	desc     CallSiteDesc
	size     int // 5 for direct CALL sites, 9 for CALLM pointer sites
	original []byte
	current  []byte
	patched  bool
}

type funcState struct {
	fd            *FuncDesc
	committed     *VariantDesc
	savedPrologue [isa.CallSiteLen]byte
	prologueOn    bool
}

type fnptrState struct {
	vd        *VarDesc
	committed bool
	target    uint64
}

// NewRuntime decodes the image's descriptors and snapshots every call
// site, verifying that each one holds the call instruction the
// compiler said it would.
func NewRuntime(img *link.Image, plat Platform) (*Runtime, error) {
	desc, err := DecodeDescriptors(img, plat)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		plat:       plat,
		desc:       desc,
		varsByAddr: make(map[uint64]*VarDesc),
		byGeneric:  make(map[uint64]*funcState),
		byName:     make(map[string]*funcState),
		fnptrs:     make(map[uint64]*fnptrState),
		sites:      make(map[uint64][]*siteState),
	}
	for i := range desc.Vars {
		v := &desc.Vars[i]
		rt.varsByAddr[v.Addr] = v
		if v.FnPtr {
			rt.fnptrs[v.Addr] = &fnptrState{vd: v}
		}
	}
	for i := range desc.Funcs {
		fs := &funcState{fd: &desc.Funcs[i]}
		rt.funcs = append(rt.funcs, fs)
		rt.byGeneric[fs.fd.Generic] = fs
		rt.byName[fs.fd.Name] = fs
	}
	for _, s := range desc.Sites {
		st := &siteState{desc: s}
		window, err := readSiteWindow(plat, s.Addr)
		if err != nil {
			return nil, err
		}
		if err := rt.verifyOriginalSite(st, window); err != nil {
			return nil, err
		}
		st.original = append([]byte(nil), window[:st.size]...)
		st.current = append([]byte(nil), st.original...)
		rt.sites[s.Callee] = append(rt.sites[s.Callee], st)
	}
	// Pointer switches live in a map keyed by address; commit them in
	// address order so every run patches (and injects faults) in the
	// same deterministic sequence.
	for _, ps := range rt.fnptrs {
		rt.ptrOrder = append(rt.ptrOrder, ps)
	}
	sort.Slice(rt.ptrOrder, func(i, j int) bool {
		return rt.ptrOrder[i].vd.Addr < rt.ptrOrder[j].vd.Addr
	})
	return rt, nil
}

// verifyOriginalSite checks that a freshly decoded call site contains
// the call instruction the descriptor promises, and fixes the site's
// patch-unit size.
func (rt *Runtime) verifyOriginalSite(st *siteState, window []byte) error {
	in, err := isa.Decode(window)
	if err != nil {
		return fmt.Errorf("core: call site %#x holds undecodable bytes: %w", st.desc.Addr, err)
	}
	switch in.Op {
	case isa.CALL:
		st.size = isa.CallSiteLen
		target := st.desc.Addr + isa.CallSiteLen + uint64(in.Imm)
		if target != st.desc.Callee {
			return fmt.Errorf("core: call site %#x targets %#x, descriptor says %#x",
				st.desc.Addr, target, st.desc.Callee)
		}
	case isa.CLLM:
		st.size = isa.MemCallSiteLen
		if uint64(in.Imm) != st.desc.Callee {
			return fmt.Errorf("core: pointer call site %#x loads %#x, descriptor says %#x",
				st.desc.Addr, uint64(in.Imm), st.desc.Callee)
		}
		if _, ok := rt.fnptrs[st.desc.Callee]; !ok {
			return fmt.Errorf("core: indirect call site %#x references unknown switch %#x",
				st.desc.Addr, st.desc.Callee)
		}
	default:
		return fmt.Errorf("core: call site %#x holds %v, want a call", st.desc.Addr, in.Op)
	}
	return nil
}

// Funcs returns the decoded function descriptors.
func (rt *Runtime) Funcs() []FuncDesc { return rt.desc.Funcs }

// Vars returns the decoded variable descriptors.
func (rt *Runtime) Vars() []VarDesc { return rt.desc.Vars }

// Sites returns the number of recorded call sites for a callee
// (generic function address or switch-variable address).
func (rt *Runtime) Sites(callee uint64) int { return len(rt.sites[callee]) }

// PatchRange is one text range the runtime may rewrite.
type PatchRange struct {
	Addr uint64
	Len  uint64
}

// PatchRanges returns every text range a commit or revert may patch:
// all call-site windows plus every generic prologue. A caller driving
// CPUs concurrently with runtime operations (§3.5's interrupt-window
// hazard) must keep their PCs out of these ranges while patching; the
// chaos harness steps CPUs to safety before each operation.
func (rt *Runtime) PatchRanges() []PatchRange {
	var out []PatchRange
	for _, sites := range rt.sites {
		for _, st := range sites {
			out = append(out, PatchRange{st.desc.Addr, uint64(st.size)})
		}
	}
	for _, fs := range rt.funcs {
		out = append(out, PatchRange{fs.fd.Generic, isa.CallSiteLen})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FuncByName returns the generic address of a multiversed function.
func (rt *Runtime) FuncByName(name string) (uint64, bool) {
	fs, ok := rt.byName[name]
	if !ok {
		return 0, false
	}
	return fs.fd.Generic, true
}

// VarByName returns the address of a configuration switch.
func (rt *Runtime) VarByName(name string) (uint64, bool) {
	for _, v := range rt.desc.Vars {
		if v.Name == name {
			return v.Addr, true
		}
	}
	return 0, false
}

// readSwitch reads the current value of a configuration switch.
func (rt *Runtime) readSwitch(vd *VarDesc) (int64, error) {
	var buf [8]byte
	w := vd.Width
	if w <= 0 || w > 8 {
		return 0, fmt.Errorf("core: switch %q has width %d", vd.Name, w)
	}
	if err := rt.plat.Read(vd.Addr, buf[:w]); err != nil {
		return 0, err
	}
	var v uint64
	for i := w - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	if vd.Signed {
		shift := uint(64 - 8*w)
		return int64(v<<shift) >> shift, nil
	}
	return int64(v), nil
}

// selectVariant picks the first variant whose guards all hold for the
// current switch values (paper §4).
func (rt *Runtime) selectVariant(fd *FuncDesc) (*VariantDesc, error) {
	for i := range fd.Variants {
		v := &fd.Variants[i]
		ok := true
		for _, g := range v.Guards {
			vd, found := rt.varsByAddr[g.VarAddr]
			if !found {
				return nil, fmt.Errorf("core: %q guard references unknown switch %#x", fd.Name, g.VarAddr)
			}
			val, err := rt.readSwitch(vd)
			if err != nil {
				return nil, err
			}
			if val < int64(g.Lo) || val > int64(g.Hi) {
				ok = false
				break
			}
		}
		if ok {
			return v, nil
		}
	}
	return nil, nil
}

// patchSite writes new bytes into a call site after verifying that it
// still contains exactly what the runtime last installed.
func (rt *Runtime) patchSite(st *siteState, newBytes []byte) error {
	cur := make([]byte, st.size)
	if err := rt.plat.Read(st.desc.Addr, cur); err != nil {
		return err
	}
	if !bytesEqual(cur, st.current) {
		return fmt.Errorf("core: call site %#x was modified behind the runtime's back (have %x, expect %x)",
			st.desc.Addr, cur, st.current)
	}
	// Pad to the full patch unit so no stale instruction tail remains.
	padded := append([]byte(nil), newBytes...)
	if rest := st.size - len(padded); rest > 0 {
		padded = append(padded, isa.EncodeNop(rest)...)
	} else if rest < 0 {
		return fmt.Errorf("core: patch of %d bytes exceeds %d-byte site %#x", len(newBytes), st.size, st.desc.Addr)
	}
	if err := rt.writeText(st.desc.Addr, cur, padded); err != nil {
		return err
	}
	prevCur := append([]byte(nil), st.current...)
	prevPatched := st.patched
	rt.noteUndo(func() {
		copy(st.current, prevCur)
		st.patched = prevPatched
	})
	copy(st.current, padded)
	st.patched = !bytesEqual(st.current, st.original)
	rt.plat.FlushICache(st.desc.Addr, uint64(st.size))
	if rt.Tracer != nil {
		var restore uint64
		if !st.patched {
			restore = 1
		}
		rt.Tracer.Emit(trace.KindPatchSite, st.desc.Addr, uint64(st.size), restore)
	}
	return nil
}

// readSiteWindow reads the bytes of a call site; a site at the very
// end of the text mapping may be shorter than the widest patch unit,
// so a failed wide read falls back to the direct-call width.
func readSiteWindow(p Platform, addr uint64) ([]byte, error) {
	window := make([]byte, isa.MemCallSiteLen)
	if err := p.Read(addr, window); err == nil {
		return window, nil
	}
	window = window[:isa.CallSiteLen]
	if err := p.Read(addr, window); err != nil {
		return nil, fmt.Errorf("core: reading call site %#x: %w", addr, err)
	}
	return window, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// installAtSites points every call site of fs at target. Tiny variant
// bodies are inlined into the site instead (paper §4).
func (rt *Runtime) installAtSites(fs *funcState, v *VariantDesc) error {
	sites := rt.sites[fs.fd.Generic]
	if len(sites) == 0 {
		return nil
	}
	body := make([]byte, v.Size)
	if err := rt.plat.Read(v.Addr, body); err != nil {
		return err
	}
	payload, inlinable := inlinePayload(body)
	if rt.DisableInlining {
		inlinable = false
	}
	for _, st := range sites {
		if inlinable {
			if err := rt.patchSite(st, encodePatched(payload)); err != nil {
				return err
			}
			rt.Stats.SitesInlined++
			continue
		}
		rel, err := isa.CallRel(st.desc.Addr, v.Addr)
		if err != nil {
			return err
		}
		enc := isa.EncodeCall(rel)
		if err := rt.patchSite(st, enc[:]); err != nil {
			return err
		}
		rt.Stats.SitesPatched++
	}
	return nil
}

// revertSites restores the original call instructions of fs.
func (rt *Runtime) revertSitesFor(callee uint64) error {
	for _, st := range rt.sites[callee] {
		if !st.patched {
			continue
		}
		if err := rt.patchSite(st, st.original); err != nil {
			return err
		}
		rt.Stats.SitesReverted++
	}
	return nil
}

// patchPrologue redirects the generic function's entry to the variant,
// so calls the compiler could not see (function pointers, assembly)
// still reach the committed variant — the completeness argument of
// §7.4.
func (rt *Runtime) patchPrologue(fs *funcState, v *VariantDesc) error {
	if fs.fd.Size < isa.CallSiteLen {
		return fmt.Errorf("core: generic %q too small to patch (%d bytes)", fs.fd.Name, fs.fd.Size)
	}
	if !fs.prologueOn {
		if err := rt.plat.Read(fs.fd.Generic, fs.savedPrologue[:]); err != nil {
			return err
		}
	}
	rel := int64(v.Addr) - int64(fs.fd.Generic+5)
	if rel != int64(int32(rel)) {
		return fmt.Errorf("core: variant of %q out of jump range", fs.fd.Name)
	}
	var cur [isa.CallSiteLen]byte
	if err := rt.plat.Read(fs.fd.Generic, cur[:]); err != nil {
		return err
	}
	jmp := isa.EncodeJmp(int32(rel))
	if err := rt.writeText(fs.fd.Generic, cur[:], jmp[:]); err != nil {
		return err
	}
	prevOn := fs.prologueOn
	rt.noteUndo(func() { fs.prologueOn = prevOn })
	rt.plat.FlushICache(fs.fd.Generic, isa.CallSiteLen)
	fs.prologueOn = true
	rt.Stats.ProloguePatch++
	if rt.Tracer != nil {
		rt.Tracer.EmitName(trace.KindProloguePatch, fs.fd.Generic, v.Addr, 0, fs.fd.Name)
	}
	return nil
}

func (rt *Runtime) restorePrologue(fs *funcState) error {
	if !fs.prologueOn {
		return nil
	}
	var cur [isa.CallSiteLen]byte
	if err := rt.plat.Read(fs.fd.Generic, cur[:]); err != nil {
		return err
	}
	if err := rt.writeText(fs.fd.Generic, cur[:], fs.savedPrologue[:]); err != nil {
		return err
	}
	rt.noteUndo(func() { fs.prologueOn = true })
	rt.plat.FlushICache(fs.fd.Generic, isa.CallSiteLen)
	fs.prologueOn = false
	if rt.Tracer != nil {
		rt.Tracer.EmitName(trace.KindPrologueRestore, fs.fd.Generic, 0, 0, fs.fd.Name)
	}
	return nil
}

// commitFunc binds one function to the variant matching the current
// switch values. bindBound means a specialized variant was installed;
// bindGeneric that the generic function remains active (the situation
// Figure 3d signals to the user); bindDeferred that the function was
// live on a CPU stack and the rebinding was queued for DrainDeferred.
func (rt *Runtime) commitFunc(fs *funcState) (bindStatus, error) {
	v, err := rt.selectVariant(fs.fd)
	if err != nil {
		return bindGeneric, err
	}
	if v == nil {
		rt.Stats.GenericSignals++
		var plan *osrPlan
		if fs.committed != nil {
			// Falling back to generic tears down live patches, which is
			// only safe when the committed variant is not executing —
			// or when its frames can be transferred to the generic.
			deferred, pl, err := rt.checkActive(fs, pendingCommit, nil)
			if err != nil {
				return bindGeneric, err
			}
			if deferred {
				return bindDeferred, nil
			}
			plan = pl
		}
		if err := rt.revertFunc(fs); err != nil {
			return bindGeneric, err
		}
		if plan != nil {
			if err := rt.osrApply(plan); err != nil {
				return bindGeneric, err
			}
		}
		return bindGeneric, nil
	}
	if fs.committed == v {
		// Already bound right; a queued deferred operation is stale.
		rt.purgeDeferred(fs)
		return bindBound, nil
	}
	deferred, plan, err := rt.checkActive(fs, pendingCommit, v)
	if err != nil {
		return bindGeneric, err
	}
	if deferred {
		return bindDeferred, nil
	}
	prev := fs.committed
	rt.metrics.noteBinding(fs.fd, v)
	rt.noteUndo(func() { rt.metrics.noteBinding(fs.fd, prev) })
	// Repoint call sites first, then the prologue; both are idempotent
	// with respect to the saved originals.
	if rt.PrologueOnly {
		if err := rt.revertSitesFor(fs.fd.Generic); err != nil {
			return bindGeneric, err
		}
	} else if err := rt.installAtSites(fs, v); err != nil {
		return bindGeneric, err
	}
	if err := rt.patchPrologue(fs, v); err != nil {
		return bindGeneric, err
	}
	if plan != nil {
		// The text now routes into v; move the live frames over too,
		// inside the same transaction.
		if err := rt.osrApply(plan); err != nil {
			return bindGeneric, err
		}
	}
	rt.noteUndo(func() { fs.committed = prev })
	fs.committed = v
	rt.purgeDeferred(fs)
	return bindBound, nil
}

// revertFuncChecked applies the activeness policy before reverting: a
// function whose committed variant is still executing (or awaiting
// return) cannot have its binding torn down underneath it.
func (rt *Runtime) revertFuncChecked(fs *funcState) (bindStatus, error) {
	var plan *osrPlan
	if fs.committed != nil {
		deferred, pl, err := rt.checkActive(fs, pendingRevert, nil)
		if err != nil {
			return bindGeneric, err
		}
		if deferred {
			return bindDeferred, nil
		}
		plan = pl
	}
	if err := rt.revertFunc(fs); err != nil {
		return bindGeneric, err
	}
	if plan != nil {
		if err := rt.osrApply(plan); err != nil {
			return bindGeneric, err
		}
	}
	return bindGeneric, nil
}

func (rt *Runtime) revertFunc(fs *funcState) error {
	prev := fs.committed
	if prev != nil {
		rt.metrics.noteBinding(fs.fd, nil)
		rt.noteUndo(func() { rt.metrics.noteBinding(fs.fd, prev) })
	}
	if err := rt.revertSitesFor(fs.fd.Generic); err != nil {
		return err
	}
	if err := rt.restorePrologue(fs); err != nil {
		return err
	}
	rt.noteUndo(func() { fs.committed = prev })
	fs.committed = nil
	rt.purgeDeferred(fs)
	return nil
}

// commitFnPtr installs the current value of a function-pointer switch
// into all its call sites as direct calls (paper §4: "when such a
// function pointer is committed, we reuse the patching mechanism").
func (rt *Runtime) commitFnPtr(ps *fnptrState) (bool, error) {
	val, err := rt.readPointer(ps.vd.Addr)
	if err != nil {
		return false, err
	}
	if val == 0 {
		// An unset pointer cannot be bound; fall back to the indirect
		// call and signal.
		rt.Stats.GenericSignals++
		if err := rt.revertSitesFor(ps.vd.Addr); err != nil {
			return false, err
		}
		prevC, prevT := ps.committed, ps.target
		rt.noteUndo(func() { ps.committed, ps.target = prevC, prevT })
		ps.committed = false
		return false, nil
	}
	if ps.committed && ps.target == val {
		return true, nil
	}
	// Like the kernel's PV-Ops patcher, try to inline a trivial target
	// body straight into the site; otherwise fall back to a direct
	// call. The body length is unknown for plain pointers, so read a
	// small window and let the decoder find the RET.
	var payload []byte
	inlinable := false
	window := make([]byte, 64)
	if err := rt.plat.Read(val, window); err == nil && !rt.DisableInlining {
		payload, inlinable = inlinePayload(window)
	}
	for _, st := range rt.sites[ps.vd.Addr] {
		if inlinable {
			if err := rt.patchSite(st, encodePatched(payload)); err != nil {
				return false, err
			}
			rt.Stats.SitesInlined++
			continue
		}
		rel, err := isa.CallRel(st.desc.Addr, val)
		if err != nil {
			return false, err
		}
		enc := isa.EncodeCall(rel)
		if err := rt.patchSite(st, enc[:]); err != nil {
			return false, err
		}
		rt.Stats.SitesPatched++
	}
	prevC, prevT := ps.committed, ps.target
	rt.noteUndo(func() { ps.committed, ps.target = prevC, prevT })
	ps.committed = true
	ps.target = val
	return true, nil
}

func (rt *Runtime) revertFnPtr(ps *fnptrState) error {
	if err := rt.revertSitesFor(ps.vd.Addr); err != nil {
		return err
	}
	prevC, prevT := ps.committed, ps.target
	rt.noteUndo(func() { ps.committed, ps.target = prevC, prevT })
	ps.committed = false
	return nil
}

func (rt *Runtime) readPointer(addr uint64) (uint64, error) {
	var buf [8]byte
	if err := rt.plat.Read(addr, buf[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, nil
}

// CommitResult summarizes one commit operation.
type CommitResult struct {
	Committed int // functions / pointers bound to a variant
	Generic   int // functions left on their generic implementation
	Deferred  int // rebindings queued because the function was active
}

// emitSwitchValues records the current value of every configuration
// switch at the start of a commit span, so a trace shows *why* the
// runtime picked the variants it did.
func (rt *Runtime) emitSwitchValues() {
	for i := range rt.desc.Vars {
		vd := &rt.desc.Vars[i]
		if vd.FnPtr {
			if ptr, err := rt.readPointer(vd.Addr); err == nil {
				rt.Tracer.EmitName(trace.KindSwitchValue, vd.Addr, ptr, 1, vd.Name)
			}
			continue
		}
		if val, err := rt.readSwitch(vd); err == nil {
			rt.Tracer.EmitName(trace.KindSwitchValue, vd.Addr, uint64(val), 0, vd.Name)
		}
	}
}

// Commit inspects all multiversed variables, selects optimized
// variants and installs them (Table 1: multiverse_commit).
//
// Commit is transactional: if any step fails, the process image is
// rolled back byte-identical to its pre-commit state and the error
// wraps ErrCommitAborted. A zero CommitResult is returned in that
// case — nothing stayed committed.
func (rt *Runtime) Commit() (CommitResult, error) {
	rt.Stats.Commits++
	if end := rt.metrics.beginCommit(rt); end != nil {
		defer end()
	}
	// Open the causality span before the Begin event and close it after
	// the deferred End event (defers run newest-first), so both carry it.
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	var res CommitResult
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindCommitBegin, 0, 0, 0)
		rt.emitSwitchValues()
		defer func() {
			rt.Tracer.Emit(trace.KindCommitEnd, 0, uint64(res.Committed), uint64(res.Generic))
		}()
	}
	t := rt.beginTxn()
	err := rt.runGuarded(func() error {
		for _, fs := range rt.funcs {
			st, err := rt.commitFunc(fs)
			if err != nil {
				return err
			}
			switch st {
			case bindBound:
				res.Committed++
			case bindDeferred:
				res.Deferred++
			default:
				res.Generic++
			}
		}
		for _, ps := range rt.ptrOrder {
			ok, err := rt.commitFnPtr(ps)
			if err != nil {
				return err
			}
			if ok {
				res.Committed++
			} else {
				res.Generic++
			}
		}
		return nil
	})
	if err = rt.endTxn(t, err); err != nil {
		res = CommitResult{}
		return res, err
	}
	return res, nil
}

// Revert restores the original process image everywhere
// (Table 1: multiverse_revert). Each function (and pointer switch)
// reverts in its own transaction: one failed revert rolls that
// function back and moves on to the next, so a single bad page cannot
// pin every other binding. The joined errors report every failure.
func (rt *Runtime) Revert() error {
	rt.Stats.Reverts++
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindRevertBegin, 0, 0, 0)
		defer rt.Tracer.Emit(trace.KindRevertEnd, 0, 0, 0)
	}
	var errs []error
	for _, fs := range rt.funcs {
		t := rt.beginTxn()
		err := rt.endTxn(t, rt.runGuarded(func() error {
			_, err := rt.revertFuncChecked(fs)
			return err
		}))
		if err != nil {
			errs = append(errs, fmt.Errorf("core: reverting %q: %w", fs.fd.Name, err))
		}
	}
	for _, ps := range rt.ptrOrder {
		t := rt.beginTxn()
		err := rt.endTxn(t, rt.runGuarded(func() error { return rt.revertFnPtr(ps) }))
		if err != nil {
			errs = append(errs, fmt.Errorf("core: reverting switch %q: %w", ps.vd.Name, err))
		}
	}
	return errors.Join(errs...)
}

// CommitFunc commits a single function identified by its generic
// address (Table 1: multiverse_commit_func).
func (rt *Runtime) CommitFunc(generic uint64) (bool, error) {
	fs, ok := rt.byGeneric[generic]
	if !ok {
		return false, fmt.Errorf("core: %#x is not a multiversed function", generic)
	}
	rt.Stats.Commits++
	if end := rt.metrics.beginCommit(rt); end != nil {
		defer end()
	}
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	commit := func() (bindStatus, error) {
		t := rt.beginTxn()
		var st bindStatus
		err := rt.runGuarded(func() error {
			var err error
			st, err = rt.commitFunc(fs)
			return err
		})
		if err = rt.endTxn(t, err); err != nil {
			st = bindGeneric
		}
		return st, err
	}
	if rt.Tracer == nil {
		st, err := commit()
		return st == bindBound, err
	}
	rt.Tracer.EmitName(trace.KindCommitBegin, generic, 0, 0, fs.fd.Name)
	st, err := commit()
	var nc, ng uint64
	if st == bindBound {
		nc = 1
	} else if err == nil && st == bindGeneric {
		ng = 1
	}
	rt.Tracer.EmitName(trace.KindCommitEnd, generic, nc, ng, fs.fd.Name)
	return st == bindBound, err
}

// RevertFunc reverts a single function (Table 1: multiverse_revert_func).
func (rt *Runtime) RevertFunc(generic uint64) error {
	fs, ok := rt.byGeneric[generic]
	if !ok {
		return fmt.Errorf("core: %#x is not a multiversed function", generic)
	}
	rt.Stats.Reverts++
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	if rt.Tracer != nil {
		rt.Tracer.EmitName(trace.KindRevertBegin, generic, 0, 0, fs.fd.Name)
		defer rt.Tracer.EmitName(trace.KindRevertEnd, generic, 0, 0, fs.fd.Name)
	}
	t := rt.beginTxn()
	return rt.endTxn(t, rt.runGuarded(func() error {
		_, err := rt.revertFuncChecked(fs)
		return err
	}))
}

// refersTo reports whether any variant of fd guards on the switch.
func refersTo(fd *FuncDesc, varAddr uint64) bool {
	for _, v := range fd.Variants {
		for _, g := range v.Guards {
			if g.VarAddr == varAddr {
				return true
			}
		}
	}
	return false
}

// CommitRefs commits every function that references the given switch
// (Table 1: multiverse_commit_refs).
func (rt *Runtime) CommitRefs(varAddr uint64) (CommitResult, error) {
	rt.Stats.Commits++
	if end := rt.metrics.beginCommit(rt); end != nil {
		defer end()
	}
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	var res CommitResult
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindCommitBegin, varAddr, 0, 0)
		rt.emitSwitchValues()
		defer func() {
			rt.Tracer.Emit(trace.KindCommitEnd, varAddr, uint64(res.Committed), uint64(res.Generic))
		}()
	}
	if _, isPtr := rt.fnptrs[varAddr]; !isPtr {
		if _, known := rt.varsByAddr[varAddr]; !known {
			return res, fmt.Errorf("core: %#x is not a configuration switch", varAddr)
		}
	}
	t := rt.beginTxn()
	err := rt.runGuarded(func() error {
		if ps, ok := rt.fnptrs[varAddr]; ok {
			ok2, err := rt.commitFnPtr(ps)
			if err != nil {
				return err
			}
			if ok2 {
				res.Committed++
			} else {
				res.Generic++
			}
			return nil
		}
		for _, fs := range rt.funcs {
			if !refersTo(fs.fd, varAddr) {
				continue
			}
			st, err := rt.commitFunc(fs)
			if err != nil {
				return err
			}
			switch st {
			case bindBound:
				res.Committed++
			case bindDeferred:
				res.Deferred++
			default:
				res.Generic++
			}
		}
		return nil
	})
	if err = rt.endTxn(t, err); err != nil {
		res = CommitResult{}
		return res, err
	}
	return res, nil
}

// RevertRefs reverts every function that references the given switch
// (Table 1: multiverse_revert_refs).
func (rt *Runtime) RevertRefs(varAddr uint64) error {
	rt.Stats.Reverts++
	if reset := rt.beginOpSpan(); reset != nil {
		defer reset()
	}
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindRevertBegin, varAddr, 0, 0)
		defer rt.Tracer.Emit(trace.KindRevertEnd, varAddr, 0, 0)
	}
	if ps, ok := rt.fnptrs[varAddr]; ok {
		t := rt.beginTxn()
		return rt.endTxn(t, rt.runGuarded(func() error { return rt.revertFnPtr(ps) }))
	}
	if _, known := rt.varsByAddr[varAddr]; !known {
		return fmt.Errorf("core: %#x is not a configuration switch", varAddr)
	}
	// Like Revert: one transaction per function, joined errors, so a
	// failed revert cannot block the remaining functions.
	var errs []error
	for _, fs := range rt.funcs {
		if !refersTo(fs.fd, varAddr) {
			continue
		}
		t := rt.beginTxn()
		err := rt.endTxn(t, rt.runGuarded(func() error {
			_, err := rt.revertFuncChecked(fs)
			return err
		}))
		if err != nil {
			errs = append(errs, fmt.Errorf("core: reverting %q: %w", fs.fd.Name, err))
		}
	}
	return errors.Join(errs...)
}
