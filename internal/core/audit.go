package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Audit walks the descriptor tables and checks that the live text
// image is exactly what the runtime believes it installed — the
// "fsck for the process image" counterpart of the transactional
// commit layer. It verifies:
//
//   - every call site's memory matches the runtime's shadow copy
//     (no torn rel32, no third-party modification),
//   - every patched direct call targets the callee's generic, one of
//     its variants, or — for pointer sites — the committed pointer
//     target, and inlined payloads decode as straight-line code,
//   - pages holding sites, prologues and variants are executable and
//     not writable (no stranded protection flip),
//   - every committed function has its prologue redirected to exactly
//     the committed variant, and every uncommitted one has its
//     original prologue bytes in place.
//
// Audit never mutates state and is safe to call at any patchable
// point: after a commit, after a rollback (endTxn calls it), from
// mvrun -audit, or between chaos operations. It returns nil when the
// image is consistent, or every violation joined into one error.
func (rt *Runtime) Audit() error {
	var errs []error
	for _, fs := range rt.funcs {
		for _, st := range rt.sites[fs.fd.Generic] {
			if err := rt.auditSite(st, rt.siteTargets(fs)); err != nil {
				errs = append(errs, err)
			}
		}
		if err := rt.auditPrologue(fs); err != nil {
			errs = append(errs, err)
		}
		for i := range fs.fd.Variants {
			if err := rt.auditProt("variant", fs.fd.Variants[i].Addr); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for _, ps := range rt.ptrOrder {
		var targets map[uint64]bool
		if ps.committed {
			targets = map[uint64]bool{ps.target: true}
		}
		for _, st := range rt.sites[ps.vd.Addr] {
			if err := rt.auditSite(st, targets); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		// An inconsistent image is a flight-dump moment: the ring holds
		// the operations that led here.
		rt.noteFailure("audit-failure")
		return err
	}
	return nil
}

// siteTargets is the set of addresses a direct call installed at one
// of fs's sites may legally target.
func (rt *Runtime) siteTargets(fs *funcState) map[uint64]bool {
	t := map[uint64]bool{fs.fd.Generic: true}
	for i := range fs.fd.Variants {
		t[fs.fd.Variants[i].Addr] = true
	}
	return t
}

// auditSite checks one call site against the runtime's shadow state.
func (rt *Runtime) auditSite(st *siteState, targets map[uint64]bool) error {
	buf := make([]byte, st.size)
	if err := rt.plat.Read(st.desc.Addr, buf); err != nil {
		return fmt.Errorf("core: audit: reading site %#x: %w", st.desc.Addr, err)
	}
	if !bytesEqual(buf, st.current) {
		return fmt.Errorf("core: audit: site %#x holds %x, runtime expects %x (torn or tampered write)",
			st.desc.Addr, buf, st.current)
	}
	if st.patched != !bytesEqual(st.current, st.original) {
		return fmt.Errorf("core: audit: site %#x patched flag %v disagrees with its bytes",
			st.desc.Addr, st.patched)
	}
	if err := rt.auditProt("site", st.desc.Addr); err != nil {
		return err
	}
	return rt.auditSiteCode(st, buf, targets)
}

// auditSiteCode decodes the installed bytes: the site must hold a
// single call (with a legal target), the pristine original, or a
// straight-line inlined payload padded with NOPs.
func (rt *Runtime) auditSiteCode(st *siteState, buf []byte, targets map[uint64]bool) error {
	if bytesEqual(buf, st.original) {
		return nil // pristine sites were verified against the descriptor at load
	}
	in, err := isa.Decode(buf)
	if err != nil {
		return fmt.Errorf("core: audit: site %#x holds undecodable bytes %x: %w", st.desc.Addr, buf, err)
	}
	if in.Op == isa.CALL {
		target := st.desc.Addr + isa.CallSiteLen + uint64(in.Imm)
		if !targets[target] {
			return fmt.Errorf("core: audit: site %#x calls %#x, not a variant, generic or committed pointer target",
				st.desc.Addr, target)
		}
		// The tail of a wide (pointer) site must be pure padding.
		return auditPadding(st.desc.Addr, buf[in.Len:])
	}
	// Anything else must be an inlined payload: straight-line
	// instructions, then NOP padding to the end of the patch unit.
	n := 0
	for n < len(buf) {
		in, err := isa.Decode(buf[n:])
		if err != nil {
			return fmt.Errorf("core: audit: site %#x inline payload undecodable at +%d: %w", st.desc.Addr, n, err)
		}
		switch in.Op {
		case isa.BRK:
			// The text-poke protocol plants BRK transiently; a completed
			// (or rolled-back) operation must never leave one behind.
			return fmt.Errorf("core: audit: site %#x holds a residual BRK byte at +%d", st.desc.Addr, n)
		case isa.CALL, isa.CLLR, isa.CLLM, isa.JMP, isa.JCC, isa.RET, isa.HLT:
			return fmt.Errorf("core: audit: site %#x inline payload contains control flow (%v)", st.desc.Addr, in.Op)
		}
		if usesSP(in) {
			return fmt.Errorf("core: audit: site %#x inline payload touches SP", st.desc.Addr)
		}
		n += in.Len
	}
	return nil
}

// auditPadding requires buf to decode as NOPs only.
func auditPadding(site uint64, buf []byte) error {
	n := 0
	for n < len(buf) {
		in, err := isa.Decode(buf[n:])
		if err != nil {
			return fmt.Errorf("core: audit: site %#x padding undecodable at +%d: %w", site, n, err)
		}
		if in.Op == isa.BRK {
			return fmt.Errorf("core: audit: site %#x padding holds a residual BRK byte at +%d", site, n)
		}
		if in.Op != isa.NOP && in.Op != isa.NOPN {
			return fmt.Errorf("core: audit: site %#x padding holds %v, want nop", site, in.Op)
		}
		n += in.Len
	}
	return nil
}

// auditPrologue checks the generic entry of one function: committed
// functions must jump to exactly their committed variant; uncommitted
// ones must not have a lingering redirect.
func (rt *Runtime) auditPrologue(fs *funcState) error {
	if fs.committed == nil && !fs.prologueOn {
		return rt.auditProt("generic", fs.fd.Generic)
	}
	if (fs.committed == nil) != !fs.prologueOn {
		return fmt.Errorf("core: audit: %q committed/prologue state inconsistent (committed=%v prologue=%v)",
			fs.fd.Name, fs.committed != nil, fs.prologueOn)
	}
	var buf [isa.CallSiteLen]byte
	if err := rt.plat.Read(fs.fd.Generic, buf[:]); err != nil {
		return fmt.Errorf("core: audit: reading prologue of %q: %w", fs.fd.Name, err)
	}
	in, err := isa.Decode(buf[:])
	if err != nil {
		return fmt.Errorf("core: audit: prologue of %q undecodable: %w", fs.fd.Name, err)
	}
	if in.Op != isa.JMP {
		return fmt.Errorf("core: audit: prologue of %q holds %v, want jmp to the committed variant",
			fs.fd.Name, in.Op)
	}
	target := fs.fd.Generic + isa.CallSiteLen + uint64(in.Imm)
	if target != fs.committed.Addr {
		return fmt.Errorf("core: audit: prologue of %q jumps to %#x, committed variant is %#x",
			fs.fd.Name, target, fs.committed.Addr)
	}
	return rt.auditProt("generic", fs.fd.Generic)
}

// auditProt checks that the page holding a text address is executable
// and not writable — a stranded RW page means a protection flip never
// got undone. Skipped when the platform cannot report protections.
func (rt *Runtime) auditProt(what string, addr uint64) error {
	pp, ok := rt.plat.(Protter)
	if !ok {
		return nil
	}
	prot, mapped := pp.ProtAt(addr)
	if !mapped {
		return fmt.Errorf("core: audit: %s %#x is unmapped", what, addr)
	}
	if prot&mem.Exec == 0 {
		return fmt.Errorf("core: audit: %s %#x page is not executable (%v)", what, addr, prot)
	}
	if prot&mem.Write != 0 {
		return fmt.Errorf("core: audit: %s %#x page is writable (%v) — stranded protection flip", what, addr, prot)
	}
	return nil
}
