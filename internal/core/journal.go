package core

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// This file makes commits and reverts transactional. Every text write
// the runtime performs inside one public operation (Commit, Revert,
// CommitFunc, ...) is journaled first — old bytes and old page
// protection — and every logical state change registers an undo
// closure. If any step fails mid-operation, the journal is replayed
// newest-first: the text image returns byte-identical to its
// pre-operation state, stranded protection flips are undone, touched
// icache ranges are re-flushed, and the caller gets a clean
// ErrCommitAborted wrapping the cause. Transient faults (a lost
// protection flip, an interrupted write) are retried with a
// cycle-charged backoff before the operation gives up.
//
// The fault model this defends against is deterministic and finite
// (internal/faultinject: every armed fault point fires exactly once),
// so the bounded retry loops below provably terminate.

// ErrCommitAborted is returned (wrapped around the causing fault) when
// a commit or revert could not complete and the process image was
// rolled back to its pre-operation state.
var ErrCommitAborted = errors.New("core: commit aborted, image rolled back")

// Retry and rollback bounds. Fault plans are finite, so any bound
// larger than the plan's point count guarantees progress; these leave
// generous headroom.
const (
	maxPatchRetries = 8   // attempts per text write before aborting
	maxRestoreTries = 64  // attempts per journal entry during rollback
	maxFlushVerify  = 64  // shootdown re-broadcasts per verify pass
	backoffBase     = 200 // simulated cycles charged for the first retry
	backoffCap      = 1 << 14
)

// transienter classifies faults that may succeed on retry. It is an
// interface probe (satisfied by *faultinject.Fault) so core never
// imports the injector package.
type transienter interface{ FaultTransient() bool }

// faultTransient reports whether err, anywhere in its chain, marks
// itself retryable.
func faultTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.FaultTransient()
}

// journalEntry is one undoable step: either a text write (old holds
// the pre-write bytes) or a logical state change (undo != nil).
type journalEntry struct {
	addr    uint64
	old     []byte
	prot    mem.Prot
	hasProt bool
	undo    func()
}

// txn journals one public runtime operation.
type txn struct {
	entries []journalEntry
}

// beginTxn opens a transaction, or returns nil when one is already
// open: nested operations join the enclosing transaction, which owns
// the rollback decision.
func (rt *Runtime) beginTxn() *txn {
	if rt.tx != nil {
		return nil
	}
	rt.tx = &txn{}
	return rt.tx
}

// noteUndo registers a logical undo closure with the open transaction.
// Closures run in reverse registration order during rollback,
// interleaved correctly with byte restores.
func (rt *Runtime) noteUndo(fn func()) {
	if rt.tx != nil {
		rt.tx.entries = append(rt.tx.entries, journalEntry{undo: fn})
	}
}

// snapshotProt captures the protection of the page holding addr, when
// the platform can tell.
func (rt *Runtime) snapshotProt(addr uint64) (mem.Prot, bool) {
	if pp, ok := rt.plat.(Protter); ok {
		return pp.ProtAt(addr)
	}
	return 0, false
}

// writeText performs one journaled text write, dispatching on the
// commit mode: in ModeTextPoke a multi-byte rewrite goes through the
// breakpoint protocol (pokeWrite, sync.go) so CPUs racing the write
// never decode a torn instruction; everything else writes directly.
func (rt *Runtime) writeText(addr uint64, old, data []byte) error {
	if rt.Options.Mode == ModeTextPoke && len(data) > 1 && len(old) == len(data) {
		return rt.pokeWrite(addr, old, data)
	}
	return rt.writeTextDirect(addr, old, data)
}

// writeTextDirect performs one journaled text write with bounded
// retry-with-backoff. old must hold the current content of the range
// (the caller has just read and verified it). On a transient fault the
// range is repaired to its journaled state and the write retried after
// charging backoff cycles; a persistent fault or exhausted retries
// return the error with the torn state still in place — the
// transaction's rollback repairs it.
func (rt *Runtime) writeTextDirect(addr uint64, old, data []byte) error {
	e := journalEntry{addr: addr, old: append([]byte(nil), old...)}
	e.prot, e.hasProt = rt.snapshotProt(addr)
	if rt.tx != nil {
		rt.tx.entries = append(rt.tx.entries, e)
	}
	var err error
	for attempt := 0; attempt < maxPatchRetries; attempt++ {
		if attempt > 0 {
			rt.Stats.CommitRetries++
			if rt.Tracer != nil {
				rt.Tracer.Emit(trace.KindCommitRetry, addr, uint64(attempt), 0)
			}
			rt.repairEntry(e)
			rt.backoff(attempt)
		}
		if err = rt.plat.Patch(addr, data); err == nil {
			return nil
		}
		if !faultTransient(err) {
			return err
		}
	}
	return err
}

// backoff charges simulated cycles for one retry round. It only runs
// after a fault fired, so fault-free executions remain cycle-identical
// to a build without any of this machinery.
func (rt *Runtime) backoff(attempt int) {
	ca, ok := rt.plat.(CycleAdvancer)
	if !ok {
		return
	}
	n := uint64(backoffBase) << (attempt - 1)
	if n > backoffCap {
		n = backoffCap
	}
	ca.AdvanceCycles(n)
}

// repairEntry best-effort restores one journal entry: journaled bytes
// first, then the journaled page protection (a mid-patch fault can
// strand a page writable). Restores themselves go through the injected
// memory system and can fault; they are retried until the finite fault
// plan runs dry or the bound trips.
func (rt *Runtime) repairEntry(e journalEntry) error {
	var errs []error
	restore := func(addr uint64, buf []byte) error { return rt.plat.Patch(addr, buf) }
	if r, ok := rt.plat.(Restorer); ok {
		restore = r.Restore
	}
	var err error
	for try := 0; try < maxRestoreTries; try++ {
		if err = restore(e.addr, e.old); err == nil {
			break
		}
	}
	if err != nil {
		errs = append(errs, fmt.Errorf("core: rollback of %#x: %w", e.addr, err))
	}
	if e.hasProt {
		if pr, ok := rt.plat.(Protector); ok {
			for try := 0; try < maxRestoreTries; try++ {
				if err = pr.SetProt(e.addr, uint64(len(e.old)), e.prot); err == nil {
					break
				}
			}
			if err != nil {
				errs = append(errs, fmt.Errorf("core: rollback of %#x protection: %w", e.addr, err))
			}
		}
	}
	return errors.Join(errs...)
}

// verifyFlushes re-broadcasts the icache shootdown for every range the
// transaction touched until no hardware thread caches stale bytes —
// the acknowledge loop of a real shootdown protocol, and the defense
// against injected dropped-flush faults. Without a FlushVerifier
// platform it is a no-op.
func (rt *Runtime) verifyFlushes(entries []journalEntry) {
	fv, ok := rt.plat.(FlushVerifier)
	if !ok {
		return
	}
	for _, e := range entries {
		if e.undo != nil {
			continue
		}
		n := uint64(len(e.old))
		for try := 0; try < maxFlushVerify && fv.ICacheStale(e.addr, n); try++ {
			rt.Stats.FlushRetries++
			if rt.Tracer != nil {
				rt.Tracer.Emit(trace.KindFlushRetry, e.addr, n, uint64(try+1))
			}
			rt.plat.FlushICache(e.addr, n)
		}
	}
}

// endTxn closes a transaction. A nil txn means the operation joined an
// enclosing transaction, which owns commit/rollback — the error passes
// through untouched. On success the touched ranges get their
// shootdowns verified; on failure the journal is rolled back and the
// error wrapped in ErrCommitAborted.
func (rt *Runtime) endTxn(t *txn, opErr error) error {
	if t == nil {
		return opErr
	}
	rt.tx = nil
	if opErr == nil {
		rt.verifyFlushes(t.entries)
		return nil
	}
	return rt.abort(t, opErr)
}

// abort rolls the journal back newest-first, re-flushes every touched
// range, verifies the shootdowns landed, audits the resulting image,
// and wraps the cause in ErrCommitAborted.
func (rt *Runtime) abort(t *txn, cause error) error {
	rt.Stats.CommitAborts++
	var errs []error
	rolled := 0
	endPhase := rt.phase("rollback")
	for i := len(t.entries) - 1; i >= 0; i-- {
		e := t.entries[i]
		if e.undo != nil {
			e.undo()
			continue
		}
		if err := rt.repairEntry(e); err != nil {
			errs = append(errs, err)
		}
		rt.plat.FlushICache(e.addr, uint64(len(e.old)))
		if rt.Tracer != nil {
			rt.Tracer.Emit(trace.KindRollback, e.addr, uint64(len(e.old)), 0)
		}
		rolled++
	}
	rt.Stats.SitesRolledBack += rolled
	rt.verifyFlushes(t.entries)
	endPhase()
	if rt.Tracer != nil {
		rt.Tracer.Emit(trace.KindCommitAbort, 0, uint64(rolled), 0)
	}
	if err := rt.Audit(); err != nil {
		errs = append(errs, fmt.Errorf("core: post-rollback audit: %w", err))
	}
	// The flight recorder dumps here, after the abort's own events are
	// in the ring, so the dump's span tree covers the whole failure.
	rt.noteFailure("commit-abort")
	if len(errs) > 0 {
		return fmt.Errorf("%w: %w (rollback incomplete: %w)", ErrCommitAborted, cause, errors.Join(errs...))
	}
	return fmt.Errorf("%w: %w", ErrCommitAborted, cause)
}
