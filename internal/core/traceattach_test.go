package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

const traceProgram = `
	multiverse int feature_enabled;

	long fast_calls;
	long slow_calls;
	void fast_path(void) { fast_calls++; }
	void slow_path(void) { slow_calls++; }

	multiverse void process(void) {
		if (feature_enabled) {
			fast_path();
		} else {
			slow_path();
		}
	}

	void handle_request(void) { process(); }
`

// TestAttachTracerEndToEnd drives the full observability path: build,
// attach, commit, run, then check the events, the Chrome export and
// the folded profile.
func TestAttachTracerEndToEnd(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "trace", Text: traceProgram})
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector(trace.Options{Profile: true})
	sys.AttachTracer(col)

	if err := sys.SetSwitch("feature_enabled", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.Machine.CallNamed("handle_request"); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}

	kinds := make(map[trace.Kind]int)
	for _, ev := range col.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []trace.Kind{
		trace.KindCommitBegin, trace.KindCommitEnd,
		trace.KindRevertBegin, trace.KindRevertEnd,
		trace.KindSwitchValue, trace.KindPatchSite,
		trace.KindProloguePatch, trace.KindPrologueRestore,
		trace.KindProtect, trace.KindFlushICache,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event recorded (have %v)", want, kinds)
		}
	}

	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Fatal("Chrome export missing traceEvents")
	}

	prof := col.Profile()
	if prof == nil || len(prof.Folded) == 0 {
		t.Fatal("profiler produced no folded stacks")
	}
	var sawVariant, sawCallee bool
	for stack := range prof.Folded {
		if strings.Contains(stack, "process.variant") {
			sawVariant = true
		}
		if strings.Contains(stack, "fast_path") {
			sawCallee = true
		}
	}
	if !sawVariant {
		t.Errorf("no stack attributes cycles to a synthesized variant symbol: %v", keys(prof.Folded))
	}
	if !sawCallee {
		t.Errorf("no stack reaches fast_path: %v", keys(prof.Folded))
	}
	if _, ok := prof.Calls["handle_request;process.variant1"]; !ok {
		t.Errorf("missing patched call edge, have %v", keys(prof.Calls))
	}
}

func keys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceSymbolsIncludeVariants checks the symbol synthesis the
// linker cannot provide.
func TestTraceSymbolsIncludeVariants(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "trace", Text: traceProgram})
	if err != nil {
		t.Fatal(err)
	}
	syms := TraceSymbols(sys.Machine.Image, sys.RT.desc)
	have := make(map[string]bool)
	for _, s := range syms {
		if s.Size == 0 {
			t.Errorf("symbol %q has zero size", s.Name)
		}
		have[s.Name] = true
	}
	for _, want := range []string{"process", "process.variant0", "process.variant1", "handle_request", "fast_path"} {
		if !have[want] {
			t.Errorf("missing symbol %q", want)
		}
	}
	// Data symbols must not pollute the executable table.
	if have["fast_calls"] || have["feature_enabled"] {
		t.Errorf("data symbols leaked into the exec symbol table")
	}
}

// TestBuildSystemDefaultCollector checks the global auto-attach hook
// mvbench -trace relies on.
func TestBuildSystemDefaultCollector(t *testing.T) {
	col := trace.NewCollector(trace.Options{})
	SetDefaultTraceCollector(col)
	defer SetDefaultTraceCollector(nil)

	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "trace", Text: traceProgram})
	if err != nil {
		t.Fatal(err)
	}
	if sys.RT.Tracer == nil || sys.Machine.CPU.Tracer() == nil {
		t.Fatal("default collector was not attached by BuildSystem")
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(col.Events()) == 0 {
		t.Error("no events collected through the default collector")
	}
}
