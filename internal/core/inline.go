package core

import (
	"repro/internal/isa"
)

// inlinePayload analyzes a variant body and returns the instruction
// bytes that can be copied into a 5-byte call site, or ok=false when
// the body does not qualify.
//
// A body is inlinable (paper §4: "the library detects if the function
// body of a variant is smaller than a call instruction") when it is a
// straight-line sequence of instructions ending in RET whose combined
// non-RET length fits in isa.CallSiteLen bytes, and no instruction
// touches the stack or transfers control — without the call there is
// no return address, so any SP-relative behaviour would break.
func inlinePayload(body []byte) (payload []byte, ok bool) {
	n := 0
	for n < len(body) {
		in, err := isa.Decode(body[n:])
		if err != nil {
			return nil, false
		}
		switch in.Op {
		case isa.RET:
			return payload, true
		case isa.CALL, isa.CLLR, isa.JMP, isa.JCC, isa.HLT,
			isa.PUSH, isa.POP, isa.SPAD:
			return nil, false
		case isa.NOP, isa.NOPN:
			// Padding costs nothing at the call site; skip it.
			n += in.Len
			continue
		}
		// Any instruction reading or writing SP disqualifies the body:
		// without the call there is no return address on the stack.
		if usesSP(in) {
			return nil, false
		}
		payload = append(payload, body[n:n+in.Len]...)
		if len(payload) > isa.CallSiteLen {
			return nil, false
		}
		n += in.Len
	}
	return nil, false // no RET found
}

// usesSP reports whether the instruction references the stack pointer.
func usesSP(in isa.Inst) bool {
	switch in.Op {
	case isa.MOVI, isa.MOV, isa.LD, isa.LDS, isa.ST, isa.LEA,
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.UDIV, isa.UMOD,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR,
		isa.NEG, isa.NOT,
		isa.ADDI, isa.SUBI, isa.MULI, isa.DIVI, isa.MODI,
		isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SARI,
		isa.CMP, isa.CMPI, isa.SETCC, isa.XCHG, isa.RDTSC, isa.INB:
		if in.Rd == isa.SP || in.Rs == isa.SP {
			return true
		}
	case isa.OUTB:
		return in.Rs == isa.SP
	}
	return false
}

// encodePatched renders the bytes installed at a call site for an
// inlined body: the payload followed by NOP filler up to the call-site
// length. An empty payload becomes one maximal NOP (paper Figure 3c).
func encodePatched(payload []byte) []byte {
	out := make([]byte, 0, isa.CallSiteLen)
	out = append(out, payload...)
	if rest := isa.CallSiteLen - len(out); rest > 0 {
		out = append(out, isa.EncodeNop(rest)...)
	}
	return out
}
