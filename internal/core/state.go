package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Runtime state export/import for deterministic machine snapshots.
//
// The runtime's durable state is surprisingly small: which variant
// each function is bound to, whether its generic prologue is
// redirected (and the saved pre-patch bytes), which pointer switches
// are committed to which targets, the deferred-operation queue, the
// operation counters and the causality-span sequence. Everything else
// is either re-derived from the descriptor tables at construction, or
// re-read from restored memory at import: per-site "current" bytes are
// recovered from the snapshot's memory image itself, which cannot
// disagree with it.
//
// Export refuses to run inside an open transaction — a mid-commit
// snapshot would capture a state the runtime itself considers
// unobservable (the journal exists precisely to erase it).

// FuncBindingState is the exported binding of one multiversed function.
type FuncBindingState struct {
	Name          string
	Generic       uint64
	CommittedAddr uint64 // 0 = generic (no variant committed)
	PrologueOn    bool
	SavedPrologue [isa.CallSiteLen]byte
}

// FnPtrBindingState is the exported binding of one pointer switch.
type FnPtrBindingState struct {
	Addr      uint64 // switch-variable address
	Committed bool
	Target    uint64
}

// DeferredOpState is one queued deferred operation, in queue order.
type DeferredOpState struct {
	Name string
	Kind uint8 // 0 = commit, 1 = revert (pendingKind)
}

// RuntimeState is the complete serializable state of a Runtime.
type RuntimeState struct {
	Funcs    []FuncBindingState
	FnPtrs   []FnPtrBindingState
	Deferred []DeferredOpState
	Stats    RuntimeStats
	OpSeq    uint64
}

// ErrNotQuiesced reports that the runtime is inside an open commit or
// revert transaction, so its binding state is momentarily
// unobservable. The condition is transient by construction — every
// transaction either commits or rolls back — so callers (snapshot
// capture, fleet supervisors) should treat it as "retry once the
// current operation finishes", never as corruption.
var ErrNotQuiesced = errors.New("core: runtime is inside an open transaction (not commit-quiesced)")

// ExportState captures the runtime's durable state. It fails with
// ErrNotQuiesced when a transaction is open: commits are atomic, so
// there is no meaningful mid-commit state to snapshot.
func (rt *Runtime) ExportState() (RuntimeState, error) {
	if rt.tx != nil {
		return RuntimeState{}, fmt.Errorf("cannot snapshot runtime state: %w", ErrNotQuiesced)
	}
	var s RuntimeState
	s.Funcs = make([]FuncBindingState, 0, len(rt.funcs))
	for _, fs := range rt.funcs {
		fb := FuncBindingState{
			Name:          fs.fd.Name,
			Generic:       fs.fd.Generic,
			PrologueOn:    fs.prologueOn,
			SavedPrologue: fs.savedPrologue,
		}
		if fs.committed != nil {
			fb.CommittedAddr = fs.committed.Addr
		}
		s.Funcs = append(s.Funcs, fb)
	}
	for _, ps := range rt.ptrOrder {
		s.FnPtrs = append(s.FnPtrs, FnPtrBindingState{
			Addr:      ps.vd.Addr,
			Committed: ps.committed,
			Target:    ps.target,
		})
	}
	for _, fs := range rt.deferredOrder {
		s.Deferred = append(s.Deferred, DeferredOpState{
			Name: fs.fd.Name,
			Kind: uint8(rt.deferredKind[fs]),
		})
	}
	s.Stats = rt.Stats
	s.OpSeq = rt.opSeq
	return s, nil
}

// ImportState restores a previously exported runtime state. The
// runtime must have been constructed against the same image (the
// function names and addresses are matched; a mismatch is an error,
// not silent corruption), and the platform's memory must already hold
// the snapshot's restored image: per-site current bytes and patch
// status are recovered by re-reading the call-site windows.
func (rt *Runtime) ImportState(s RuntimeState) error {
	if rt.tx != nil {
		return fmt.Errorf("cannot restore runtime state: %w", ErrNotQuiesced)
	}
	if len(s.Funcs) != len(rt.funcs) {
		return fmt.Errorf("core: snapshot has %d functions, image has %d", len(s.Funcs), len(rt.funcs))
	}
	if len(s.FnPtrs) != len(rt.ptrOrder) {
		return fmt.Errorf("core: snapshot has %d pointer switches, image has %d", len(s.FnPtrs), len(rt.ptrOrder))
	}
	for _, fb := range s.Funcs {
		fs, ok := rt.byName[fb.Name]
		if !ok {
			return fmt.Errorf("core: snapshot binds unknown function %q", fb.Name)
		}
		if fs.fd.Generic != fb.Generic {
			return fmt.Errorf("core: snapshot places %q at %#x, image at %#x (different image?)",
				fb.Name, fb.Generic, fs.fd.Generic)
		}
		if fb.CommittedAddr == 0 {
			fs.committed = nil
		} else {
			var v *VariantDesc
			for i := range fs.fd.Variants {
				if fs.fd.Variants[i].Addr == fb.CommittedAddr {
					v = &fs.fd.Variants[i]
					break
				}
			}
			if v == nil {
				return fmt.Errorf("core: snapshot commits %q to unknown variant %#x", fb.Name, fb.CommittedAddr)
			}
			fs.committed = v
		}
		fs.prologueOn = fb.PrologueOn
		fs.savedPrologue = fb.SavedPrologue
	}
	for _, pb := range s.FnPtrs {
		ps, ok := rt.fnptrs[pb.Addr]
		if !ok {
			return fmt.Errorf("core: snapshot binds unknown pointer switch %#x", pb.Addr)
		}
		ps.committed = pb.Committed
		ps.target = pb.Target
	}
	// Call-site current bytes come from the (already restored) memory
	// image, which by construction agrees with the snapshot.
	for _, sites := range rt.sites {
		for _, st := range sites {
			window, err := readSiteWindow(rt.plat, st.desc.Addr)
			if err != nil {
				return fmt.Errorf("core: re-reading call site %#x: %w", st.desc.Addr, err)
			}
			st.current = append(st.current[:0], window[:st.size]...)
			st.patched = !bytesEqual(st.current, st.original)
		}
	}
	rt.deferredKind = nil
	rt.deferredOrder = nil
	for _, d := range s.Deferred {
		fs, ok := rt.byName[d.Name]
		if !ok {
			return fmt.Errorf("core: snapshot defers operation on unknown function %q", d.Name)
		}
		if rt.deferredKind == nil {
			rt.deferredKind = make(map[*funcState]pendingKind)
		}
		if _, dup := rt.deferredKind[fs]; dup {
			return fmt.Errorf("core: snapshot defers %q twice", d.Name)
		}
		rt.deferredKind[fs] = pendingKind(d.Kind)
		rt.deferredOrder = append(rt.deferredOrder, fs)
	}
	rt.Stats = s.Stats
	rt.opSeq = s.OpSeq
	return nil
}
