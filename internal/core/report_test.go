package core

import (
	"regexp"
	"testing"
)

// The report program exercises every StateReport section: a
// multiversed function, a function-pointer switch, and a plain
// configuration switch.
const reportProgram = `
	multiverse int feature_enabled;

	long fast_calls;
	long slow_calls;
	void fast_path(void) { fast_calls++; }
	void slow_path(void) { slow_calls++; }

	multiverse void process(void) {
		if (feature_enabled) {
			fast_path();
		} else {
			slow_path();
		}
	}

	void handle_request(void) { process(); }

	multiverse void (*notify)(void);
	void poke(void) { notify(); }
`

// hexAddrs normalizes layout-dependent addresses so the goldens stay
// stable across codegen changes.
var hexAddrs = regexp.MustCompile(`0x[0-9a-f]+`)

func normalizeReport(s string) string { return hexAddrs.ReplaceAllString(s, "0xADDR") }

func buildReportSystem(t *testing.T) *System {
	t.Helper()
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "report", Text: reportProgram})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestStateReportDeterministic pins full ordering determinism: with
// several functions, pointer switches and variables per section (the
// pointer listing walks a map), the report must render byte-identically
// across repeated calls and across independently constructed systems —
// the property mvdbg's `state` view and the snapshot goldens rely on.
func TestStateReportDeterministic(t *testing.T) {
	const src = `
		multiverse int alpha;
		multiverse int beta;
		multiverse int gamma;
		long n;
		void w1(void) { n++; }
		void w2(void) { n += 2; }
		multiverse void zfirst(void) { if (gamma) { w1(); } }
		multiverse void afirst(void) { if (alpha) { w2(); } }
		multiverse void mid(void) { if (beta) { w1(); } }
		void drive(void) { zfirst(); afirst(); mid(); }
		multiverse void (*cb_z)(void);
		multiverse void (*cb_a)(void);
		void poke(void) { cb_z(); cb_a(); }
	`
	build := func() *System {
		sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "det", Text: src})
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range []string{"alpha", "beta"} {
			if err := sys.SetSwitch(sw, 1); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range []string{"cb_z", "cb_a"} {
			if err := sys.SetFnPtr(p, "w1"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sys.RT.Commit(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := build()
	first := sys.RT.StateReport()
	for i := 0; i < 32; i++ {
		if got := sys.RT.StateReport(); got != first {
			t.Fatalf("render %d diverged:\ngot:\n%s\nfirst:\n%s", i, got, first)
		}
	}
	if got := build().RT.StateReport(); got != first {
		t.Fatalf("independently built system renders differently:\ngot:\n%s\nfirst:\n%s", got, first)
	}
}

func TestStateReportGolden(t *testing.T) {
	sys := buildReportSystem(t)
	rt := sys.RT

	const generic = `func process                  generic (dynamic)  [0/1 sites patched]
fptr notify                   indirect (dynamic)  [1 sites]
var  feature_enabled          = 0
stat commits=0 reverts=0 sites{patched=0 inlined=0 reverted=0} prologues=0 generic-signals=0
mem  protect-calls=3 icache-flushes=0
`
	if got := normalizeReport(rt.StateReport()); got != generic {
		t.Errorf("generic report mismatch:\ngot:\n%s\nwant:\n%s", got, generic)
	}

	if err := sys.SetSwitch("feature_enabled", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetFnPtr("notify", "fast_path"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Commit(); err != nil {
		t.Fatal(err)
	}

	const committed = `func process                  bound to variant @0xADDR  [1/1 sites patched, prologue redirected]
fptr notify                   bound to 0xADDR  [1 sites]
var  feature_enabled          = 1
stat commits=1 reverts=0 sites{patched=2 inlined=0 reverted=0} prologues=1 generic-signals=0
mem  protect-calls=9 icache-flushes=3
`
	if got := normalizeReport(rt.StateReport()); got != committed {
		t.Errorf("committed report mismatch:\ngot:\n%s\nwant:\n%s", got, committed)
	}

	if err := rt.Revert(); err != nil {
		t.Fatal(err)
	}

	const reverted = `func process                  generic (dynamic)  [0/1 sites patched]
fptr notify                   indirect (dynamic)  [1 sites]
var  feature_enabled          = 1
stat commits=1 reverts=1 sites{patched=2 inlined=0 reverted=2} prologues=1 generic-signals=0
mem  protect-calls=15 icache-flushes=6
`
	if got := normalizeReport(rt.StateReport()); got != reverted {
		t.Errorf("reverted report mismatch:\ngot:\n%s\nwant:\n%s", got, reverted)
	}
}
