package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
)

// Platform abstracts how the runtime library reads and patches memory.
// The paper ports the library to Linux user space, the Linux kernel
// and OctopOS by swapping exactly this layer (§5); here the user port
// goes through mprotect-style permission flips while the kernel port
// writes through the direct mapping.
type Platform interface {
	// Read copies memory into buf.
	Read(addr uint64, buf []byte) error
	// Patch writes buf into the text segment, temporarily making it
	// writable if the port needs to.
	Patch(addr uint64, buf []byte) error
	// FlushICache invalidates any cached decode of the range. Skipping
	// this after a Patch leaves the CPU executing stale bytes.
	FlushICache(addr, n uint64)
}

// MemStatser is implemented by platforms that can expose the memory
// system's operation counters (mem.Stats); StateReport includes them
// when available.
type MemStatser interface {
	MemStats() mem.Stats
}

// UserPlatform patches like a user-space process: mprotect the pages
// writable (never writable+executable, so it also works under strict
// W^X), write, and restore the original protection.
type UserPlatform struct {
	M *machine.Machine
	// Stats counts protection flips and bytes patched.
	Stats PlatformStats
}

// PlatformStats counts patching work for the overhead experiments.
type PlatformStats struct {
	Patches      int
	BytesPatched int
	ProtFlips    int
	ICacheFlush  int
}

// Read implements Platform.
func (p *UserPlatform) Read(addr uint64, buf []byte) error {
	return p.M.Mem.Read(addr, buf)
}

// Patch implements Platform.
func (p *UserPlatform) Patch(addr uint64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	orig, ok := p.M.Mem.ProtOf(addr)
	if !ok {
		return fmt.Errorf("core: patch of unmapped address %#x", addr)
	}
	if err := p.M.Mem.Protect(addr, uint64(len(buf)), mem.RW); err != nil {
		return err
	}
	p.Stats.ProtFlips++
	if err := p.M.Mem.Write(addr, buf); err != nil {
		return err
	}
	if err := p.M.Mem.Protect(addr, uint64(len(buf)), orig); err != nil {
		return err
	}
	p.Stats.ProtFlips++
	p.Stats.Patches++
	p.Stats.BytesPatched += len(buf)
	return nil
}

// FlushICache implements Platform.
func (p *UserPlatform) FlushICache(addr, n uint64) {
	p.M.CPU.FlushICache(addr, n)
	p.Stats.ICacheFlush++
}

// MemStats implements MemStatser.
func (p *UserPlatform) MemStats() mem.Stats { return p.M.Mem.Stats }

// KernelPlatform patches like kernel code: straight through the
// physical mapping, no protection flips, but still an icache flush.
type KernelPlatform struct {
	M     *machine.Machine
	Stats PlatformStats
}

// Read implements Platform.
func (p *KernelPlatform) Read(addr uint64, buf []byte) error {
	return p.M.Mem.Read(addr, buf)
}

// Patch implements Platform.
func (p *KernelPlatform) Patch(addr uint64, buf []byte) error {
	if err := p.M.Mem.WriteForce(addr, buf); err != nil {
		return err
	}
	p.Stats.Patches++
	p.Stats.BytesPatched += len(buf)
	return nil
}

// FlushICache implements Platform.
func (p *KernelPlatform) FlushICache(addr, n uint64) {
	p.M.CPU.FlushICache(addr, n)
	p.Stats.ICacheFlush++
}

// MemStats implements MemStatser.
func (p *KernelPlatform) MemStats() mem.Stats { return p.M.Mem.Stats }
