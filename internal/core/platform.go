package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
)

// Platform abstracts how the runtime library reads and patches memory.
// The paper ports the library to Linux user space, the Linux kernel
// and OctopOS by swapping exactly this layer (§5); here the user port
// goes through mprotect-style permission flips while the kernel port
// writes through the direct mapping.
type Platform interface {
	// Read copies memory into buf.
	Read(addr uint64, buf []byte) error
	// Patch writes buf into the text segment, temporarily making it
	// writable if the port needs to.
	Patch(addr uint64, buf []byte) error
	// FlushICache invalidates any cached decode of the range. Skipping
	// this after a Patch leaves the CPU executing stale bytes.
	FlushICache(addr, n uint64)
}

// MemStatser is implemented by platforms that can expose the memory
// system's operation counters (mem.Stats); StateReport includes them
// when available.
type MemStatser interface {
	MemStats() mem.Stats
}

// The transactional commit layer discovers extra platform capabilities
// through the optional interfaces below (the same pattern as
// MemStatser): a port that implements them gets crash-consistent
// rollback and shootdown verification; a port that does not still
// works, minus those guarantees.

// Restorer force-writes journaled bytes back into the text segment
// during rollback, regardless of current page protections — rollback
// must succeed even when the fault left a page in an unexpected state.
type Restorer interface {
	Restore(addr uint64, buf []byte) error
}

// Protector sets page protections directly, so rollback can undo a
// protection flip stranded by a mid-patch fault.
type Protector interface {
	SetProt(addr, n uint64, prot mem.Prot) error
}

// Protter inspects the protection of the page holding addr; the
// journal snapshots it before each patch, and the auditor checks
// variant pages stay non-writable.
type Protter interface {
	ProtAt(addr uint64) (mem.Prot, bool)
}

// CycleAdvancer charges simulated cycles for retry backoff. Only
// consulted when a fault actually fired, so uninjected runs stay
// cycle-identical.
type CycleAdvancer interface {
	AdvanceCycles(n uint64)
}

// FlushVerifier reports whether any hardware thread still caches
// pre-patch bytes of a range — the acknowledge step of a shootdown
// protocol, which catches injected dropped-flush faults.
type FlushVerifier interface {
	ICacheStale(addr, n uint64) bool
}

// UserPlatform patches like a user-space process: mprotect the pages
// writable (never writable+executable, so it also works under strict
// W^X), write, and restore the original protection.
type UserPlatform struct {
	M *machine.Machine
	// Stats counts protection flips and bytes patched.
	Stats PlatformStats
}

// PlatformStats counts patching work for the overhead experiments.
type PlatformStats struct {
	Patches      int
	BytesPatched int
	ProtFlips    int
	ICacheFlush  int
}

// Read implements Platform.
func (p *UserPlatform) Read(addr uint64, buf []byte) error {
	return p.M.Mem.Read(addr, buf)
}

// Patch implements Platform.
func (p *UserPlatform) Patch(addr uint64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	orig, ok := p.M.Mem.ProtOf(addr)
	if !ok {
		return fmt.Errorf("core: patch of unmapped address %#x", addr)
	}
	if err := p.M.Mem.Protect(addr, uint64(len(buf)), mem.RW); err != nil {
		return err
	}
	p.Stats.ProtFlips++
	if err := p.M.Mem.Write(addr, buf); err != nil {
		return err
	}
	if err := p.M.Mem.Protect(addr, uint64(len(buf)), orig); err != nil {
		return err
	}
	p.Stats.ProtFlips++
	p.Stats.Patches++
	p.Stats.BytesPatched += len(buf)
	return nil
}

// FlushICache implements Platform. The flush is broadcast to every
// hardware thread: on SMP machines a patch must shoot down all icaches,
// not just the patching CPU's.
func (p *UserPlatform) FlushICache(addr, n uint64) {
	p.M.FlushICacheAll(addr, n)
	p.Stats.ICacheFlush++
}

// MemStats implements MemStatser.
func (p *UserPlatform) MemStats() mem.Stats { return p.M.Mem.Stats }

// Restore implements Restorer.
func (p *UserPlatform) Restore(addr uint64, buf []byte) error {
	return p.M.Mem.WriteForce(addr, buf)
}

// SetProt implements Protector.
func (p *UserPlatform) SetProt(addr, n uint64, prot mem.Prot) error {
	return p.M.Mem.Protect(addr, n, prot)
}

// ProtAt implements Protter.
func (p *UserPlatform) ProtAt(addr uint64) (mem.Prot, bool) { return p.M.Mem.ProtOf(addr) }

// AdvanceCycles implements CycleAdvancer: retry backoff burns cycles
// on the patching (primary) CPU.
func (p *UserPlatform) AdvanceCycles(n uint64) { p.M.CPU.AddCycles(n) }

// ICacheStale implements FlushVerifier.
func (p *UserPlatform) ICacheStale(addr, n uint64) bool { return p.M.ICacheStale(addr, n) }

// LiveCodeAddrs implements Activeness: every PC plus the conservative
// stack return-address scan of each non-halted hardware thread. The
// bool is false when a truncated stack scan made the list incomplete.
func (p *UserPlatform) LiveCodeAddrs() ([]uint64, bool) { return p.M.LiveCodeAddrs() }

// OSRCPUs implements FrameAccessor: the paused CPUs whose frames an
// on-stack replacement may rewrite.
func (p *UserPlatform) OSRCPUs() []machine.OSRCPU { return p.M.OSRCPUs() }

// StopMachine implements Stopper.
func (p *UserPlatform) StopMachine(avoid []machine.Range, fn func() error) (uint64, error) {
	return p.M.StopMachine(avoid, fn)
}

// NotePokePhase implements PokeAnnouncer.
func (p *UserPlatform) NotePokePhase(phase int, addr, n uint64) {
	p.M.NotePokePhase(phase, addr, n)
}

// KernelPlatform patches like kernel code: straight through the
// physical mapping, no protection flips, but still an icache flush.
type KernelPlatform struct {
	M     *machine.Machine
	Stats PlatformStats
}

// Read implements Platform.
func (p *KernelPlatform) Read(addr uint64, buf []byte) error {
	return p.M.Mem.Read(addr, buf)
}

// Patch implements Platform.
func (p *KernelPlatform) Patch(addr uint64, buf []byte) error {
	if err := p.M.Mem.WriteForce(addr, buf); err != nil {
		return err
	}
	p.Stats.Patches++
	p.Stats.BytesPatched += len(buf)
	return nil
}

// FlushICache implements Platform; like the user port it broadcasts
// the shootdown to every hardware thread.
func (p *KernelPlatform) FlushICache(addr, n uint64) {
	p.M.FlushICacheAll(addr, n)
	p.Stats.ICacheFlush++
}

// MemStats implements MemStatser.
func (p *KernelPlatform) MemStats() mem.Stats { return p.M.Mem.Stats }

// Restore implements Restorer.
func (p *KernelPlatform) Restore(addr uint64, buf []byte) error {
	return p.M.Mem.WriteForce(addr, buf)
}

// SetProt implements Protector.
func (p *KernelPlatform) SetProt(addr, n uint64, prot mem.Prot) error {
	return p.M.Mem.Protect(addr, n, prot)
}

// ProtAt implements Protter.
func (p *KernelPlatform) ProtAt(addr uint64) (mem.Prot, bool) { return p.M.Mem.ProtOf(addr) }

// AdvanceCycles implements CycleAdvancer.
func (p *KernelPlatform) AdvanceCycles(n uint64) { p.M.CPU.AddCycles(n) }

// ICacheStale implements FlushVerifier.
func (p *KernelPlatform) ICacheStale(addr, n uint64) bool { return p.M.ICacheStale(addr, n) }

// LiveCodeAddrs implements Activeness.
func (p *KernelPlatform) LiveCodeAddrs() ([]uint64, bool) { return p.M.LiveCodeAddrs() }

// OSRCPUs implements FrameAccessor.
func (p *KernelPlatform) OSRCPUs() []machine.OSRCPU { return p.M.OSRCPUs() }

// StopMachine implements Stopper.
func (p *KernelPlatform) StopMachine(avoid []machine.Range, fn func() error) (uint64, error) {
	return p.M.StopMachine(avoid, fn)
}

// NotePokePhase implements PokeAnnouncer.
func (p *KernelPlatform) NotePokePhase(phase int, addr, n uint64) {
	p.M.NotePokePhase(phase, addr, n)
}
