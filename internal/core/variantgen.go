// Package core implements multiverse itself: ahead-of-time variant
// generation (paper §3) and the run-time library that installs
// variants by binary patching (paper §4, Table 1).
//
// The compile-time half clones every annotated function once per
// assignment in the cross product of the referenced configuration
// switches' domains, substitutes the constants *before* optimization,
// merges variants whose optimized bodies are identical, and emits
// descriptor records for variables, functions/variants/guards, and
// call sites. The run-time half decodes those descriptors from a
// loaded image and implements commit/revert by patching call sites and
// generic-function prologues.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/codegen"
	"repro/internal/mvir"
	"repro/internal/obj"
)

// DefaultMaxVariants bounds the cross product per function; exceeding
// it is reported as an error so variant explosion (paper §7.1) is a
// loud event, not a silent code-size disaster.
const DefaultMaxVariants = 64

// GenOptions configures variant generation.
type GenOptions struct {
	// MaxVariants overrides DefaultMaxVariants when > 0.
	MaxVariants int
	// Bind restricts specialization to the given switches (partial
	// specialization, §7.1). Empty means bind every referenced switch.
	Bind map[string]bool
	// DisableOptimizer skips the optimization passes on variants; used
	// by the ablation benchmarks.
	DisableOptimizer bool
}

// GenReport records what variant generation did, for logging and for
// the overhead accounting of experiment E7.
type GenReport struct {
	Functions []FuncReport
	Warnings  []string
}

// FuncReport describes variant generation for one function.
type FuncReport struct {
	Name            string
	Switches        []string
	RawVariants     int // before merging
	MergedVariants  int
	DescriptorBytes int
	// VariantSrc maps each variant symbol to its specialized body
	// rendered back to MVC source (mvcc -dump-variants).
	VariantSrc map[string]string
}

// CompileUnit runs the full multiverse pipeline on a checked unit and
// returns the relocatable object plus a generation report.
func CompileUnit(u *cc.Unit, opts GenOptions) (*obj.Object, *GenReport, error) {
	prog := codegen.ProgramFromUnit(u)
	report := &GenReport{}

	maxVariants := opts.MaxVariants
	if maxVariants <= 0 {
		maxVariants = DefaultMaxVariants
	}

	// Optimize every function body once (the same passes GCC would run
	// on the generic code), then specialize the multiversed ones.
	var mvFuncs []*codegen.Func
	for _, f := range prog.Funcs {
		if f.Decl.Multiverse {
			mvFuncs = append(mvFuncs, f)
		} else {
			mvir.Optimize(f.Decl)
		}
	}

	for _, f := range mvFuncs {
		fr, variants, err := generateVariants(u, f, maxVariants, opts, report)
		if err != nil {
			return nil, nil, err
		}
		// Generic functions need at least a patchable prologue.
		f.PadTo = 5
		for _, v := range variants {
			prog.Funcs = append(prog.Funcs, v.Func)
		}
		// A variant may carry several guard boxes (disjoint range
		// products) that share one body; each box becomes a descriptor.
		mvf := &codegen.MVFunc{
			GenericSym: f.SymName,
			Name:       f.Decl.Name,
			Variants:   expandBoxes(variants),
		}
		prog.MVFuncs = append(prog.MVFuncs, mvf)
		report.Functions = append(report.Functions, *fr)

		// Now that clones exist, optimize the generic too.
		if !opts.DisableOptimizer {
			mvir.Optimize(f.Decl)
		}
	}

	o, err := codegen.Compile(prog)
	if err != nil {
		return nil, nil, err
	}
	return o, report, nil
}

// variantFunc couples an emitted variant with its guard boxes.
type variantFunc struct {
	*codegen.Func
	guards []codegen.Guard   // first box (kept for convenience)
	boxes  [][]codegen.Guard // all boxes covering this variant
}

func expandBoxes(variants []*variantFunc) []codegen.MVVariant {
	var out []codegen.MVVariant
	for _, v := range variants {
		for _, box := range v.boxes {
			out = append(out, codegen.MVVariant{SymName: v.SymName, Guards: box})
		}
	}
	return out
}

// assignment is one point of the cross product.
type assignment []int64

func generateVariants(u *cc.Unit, f *codegen.Func, maxVariants int, opts GenOptions, report *GenReport) (*FuncReport, []*variantFunc, error) {
	decl := f.Decl
	// Stamp variant-invariant OSR labels on the pristine body before
	// any cloning: CloneFunc copies the label fields, so the generic
	// and every variant agree on which loop/call is which.
	mvir.AssignOSRLabels(decl)
	switches := mvir.ReferencedSwitches(decl)
	if len(opts.Bind) > 0 {
		var kept []*cc.VarSym
		for _, s := range switches {
			if opts.Bind[s.Name] {
				kept = append(kept, s)
			}
		}
		switches = kept
	}
	if len(decl.BindOnly) > 0 {
		// Per-function partial specialization: multiverse(bind(...)).
		want := make(map[string]bool, len(decl.BindOnly))
		for _, n := range decl.BindOnly {
			want[n] = true
		}
		var kept []*cc.VarSym
		for _, s := range switches {
			if want[s.Name] {
				kept = append(kept, s)
			}
		}
		switches = kept
	}
	fr := &FuncReport{Name: decl.Name}
	for _, s := range switches {
		fr.Switches = append(fr.Switches, s.Name)
	}
	if len(switches) == 0 {
		return fr, nil, nil
	}

	// Function-pointer switches have no value domain; they are handled
	// purely by call-site patching, not by variant generation.
	var valueSwitches []*cc.VarSym
	for _, s := range switches {
		if s.Type.Kind != cc.KindPtr {
			valueSwitches = append(valueSwitches, s)
		}
	}
	if len(valueSwitches) == 0 {
		return fr, nil, nil
	}

	domains := make([][]int64, len(valueSwitches))
	total := 1
	for i, s := range valueSwitches {
		domains[i] = cc.EffectiveDomain(s, u.Enums)
		sort.Slice(domains[i], func(a, b int) bool { return domains[i][a] < domains[i][b] })
		total *= len(domains[i])
		if total > maxVariants {
			return nil, nil, fmt.Errorf(
				"core: %s: cross product of %d switches exceeds %d variants — restrict domains or bind a subset (paper §7.1)",
				decl.Name, len(valueSwitches), maxVariants)
		}
	}
	fr.RawVariants = total

	// Enumerate the cross product in lexicographic order.
	assignments := make([]assignment, 0, total)
	cur := make(assignment, len(valueSwitches))
	var enum func(dim int)
	enum = func(dim int) {
		if dim == len(valueSwitches) {
			assignments = append(assignments, append(assignment(nil), cur...))
			return
		}
		for _, v := range domains[dim] {
			cur[dim] = v
			enum(dim + 1)
		}
	}
	enum(0)

	// Clone + substitute + optimize each assignment; group equal
	// bodies by fingerprint.
	type group struct {
		repr    *cc.FuncDecl
		members []assignment
	}
	groups := make(map[string]*group)
	var order []string
	for _, as := range assignments {
		clone := mvir.CloneFunc(decl)
		sub := make(map[*cc.VarSym]int64, len(valueSwitches))
		for i, s := range valueSwitches {
			sub[s] = as[i]
		}
		warns := mvir.Substitute(clone, sub)
		report.Warnings = append(report.Warnings, warns...)
		if !opts.DisableOptimizer {
			mvir.Optimize(clone)
		}
		fp := mvir.Fingerprint(clone)
		g, ok := groups[fp]
		if !ok {
			g = &group{repr: clone}
			groups[fp] = g
			order = append(order, fp)
		}
		g.members = append(g.members, as)
	}
	fr.MergedVariants = len(groups)

	var out []*variantFunc
	for _, fp := range order {
		g := groups[fp]
		boxes := mergeBoxes(g.members, domains)
		guards := make([][]codegen.Guard, 0, len(boxes))
		for _, b := range boxes {
			gs := make([]codegen.Guard, len(valueSwitches))
			for i, s := range valueSwitches {
				gs[i] = codegen.Guard{Var: s, Lo: b[i][0], Hi: b[i][1]}
			}
			guards = append(guards, gs)
		}
		symName := variantSymName(f.SymName, valueSwitches, boxes[0])
		out = append(out, &variantFunc{
			Func:   &codegen.Func{Decl: g.repr, SymName: symName},
			guards: guards[0],
			boxes:  guards,
		})
		if fr.VariantSrc == nil {
			fr.VariantSrc = make(map[string]string)
		}
		fr.VariantSrc[symName] = cc.FormatFunc(g.repr)
	}

	// Descriptor accounting (paper §5 formula).
	variantGuardCounts := make([]int, 0)
	for _, v := range out {
		for range v.boxes {
			variantGuardCounts = append(variantGuardCounts, len(valueSwitches))
		}
	}
	fr.DescriptorBytes = codegen.DescriptorBytes(0, 0, [][]int{variantGuardCounts})
	return fr, out, nil
}

// variantSymName builds names like "multi.A=1.B=0-1" (paper Figure 2
// uses multi.A=1.B=01 for the merged variant).
func variantSymName(base string, switches []*cc.VarSym, box [][2]int64) string {
	var sb strings.Builder
	sb.WriteString(base)
	for i, s := range switches {
		lo, hi := box[i][0], box[i][1]
		if lo == hi {
			fmt.Fprintf(&sb, ".%s=%d", s.Name, lo)
		} else {
			fmt.Fprintf(&sb, ".%s=%d-%d", s.Name, lo, hi)
		}
	}
	return sb.String()
}

// mergeBoxes covers the assignment set with axis-aligned boxes of
// contiguous integer ranges, greedily. Each box is represented as one
// [lo, hi] pair per dimension. Only ranges whose covered integers all
// belong to the group are produced, so a guard can never match a
// run-time value the variant was not specialized for.
func mergeBoxes(members []assignment, domains [][]int64) [][][2]int64 {
	ndim := len(domains)
	if ndim == 0 {
		return nil
	}
	inGroup := make(map[string]bool, len(members))
	key := func(a assignment) string {
		var sb strings.Builder
		for _, v := range a {
			fmt.Fprintf(&sb, "%d,", v)
		}
		return sb.String()
	}
	for _, m := range members {
		inGroup[key(m)] = true
	}
	covered := make(map[string]bool, len(members))

	// boxContains enumerates a candidate box and reports whether every
	// point is in the group.
	var boxOK func(box [][2]int64) bool
	boxOK = func(box [][2]int64) bool {
		pts := enumerateBox(box)
		for _, p := range pts {
			if !inGroup[key(p)] {
				return false
			}
		}
		return true
	}

	var out [][][2]int64
	for _, m := range members {
		if covered[key(m)] {
			continue
		}
		// Start with the point box and greedily extend each dimension
		// downward and upward by adjacent integers.
		box := make([][2]int64, ndim)
		for i, v := range m {
			box[i] = [2]int64{v, v}
		}
		for dim := 0; dim < ndim; dim++ {
			for {
				try := cloneBox(box)
				try[dim][1]++
				if !boxOK(try) {
					break
				}
				box = try
			}
			for {
				try := cloneBox(box)
				try[dim][0]--
				if !boxOK(try) {
					break
				}
				box = try
			}
		}
		for _, p := range enumerateBox(box) {
			covered[key(p)] = true
		}
		out = append(out, box)
	}
	return out
}

func cloneBox(b [][2]int64) [][2]int64 {
	out := make([][2]int64, len(b))
	copy(out, b)
	return out
}

// enumerateBox lists every integer point in the box.
func enumerateBox(box [][2]int64) []assignment {
	pts := []assignment{{}}
	for _, r := range box {
		var next []assignment
		for v := r[0]; v <= r[1]; v++ {
			for _, p := range pts {
				next = append(next, append(append(assignment(nil), p...), v))
			}
		}
		pts = next
		if len(pts) > 4096 {
			// Give up on absurdly large boxes; treat as not-ok by
			// returning a sentinel the caller will reject.
			return pts
		}
	}
	return pts
}
