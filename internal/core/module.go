package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obj"
)

// ModuleBase is the default load address for dynamically loaded
// modules, well above the main image.
const ModuleBase = uint64(0x0800_0000)

// BuildModule compiles MVC sources into a loadable module linked at
// base, resolving undefined symbols (extern switches, multiverse
// function prototypes, helper functions) against the main image — the
// dynamic-loading scenario §5 sketches for kernel modules.
func BuildModule(main *link.Image, base uint64, opts GenOptions, srcs ...Source) (*link.Image, error) {
	if base == 0 {
		base = ModuleBase
	}
	var objs []*obj.Object
	for _, src := range srcs {
		u, err := cc.Parse(src.Name, src.Text)
		if err != nil {
			return nil, err
		}
		if err := cc.Check(u); err != nil {
			return nil, err
		}
		o, _, err := CompileUnit(u, opts)
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
	return link.LinkWithOptions(link.Options{Base: base, Externs: main.Symbols}, objs...)
}

// LoadModule maps a module image into an already running machine.
func LoadModule(m *machine.Machine, mod *link.Image) error {
	for _, seg := range mod.Segments {
		length := mem.PageAlignUp(uint64(len(seg.Data)))
		if length == 0 {
			continue
		}
		if err := m.Mem.Map(seg.Addr, length, mem.RW); err != nil {
			return fmt.Errorf("core: mapping module segment at %#x: %w", seg.Addr, err)
		}
		if err := m.Mem.Write(seg.Addr, seg.Data); err != nil {
			return err
		}
		if err := m.Mem.Protect(seg.Addr, length, seg.Prot); err != nil {
			return err
		}
	}
	return nil
}

// AddModule registers a loaded module's multiverse descriptors with
// the runtime: new switches, new multiversed functions, and — the
// common case — call sites inside the module that reference multiverse
// functions or switches of the main image. Functions gaining new call
// sites are marked for repatching; call Commit afterwards, as a kernel
// does after insmod.
func (rt *Runtime) AddModule(mod *link.Image) error {
	desc, err := DecodeDescriptors(mod, rt.plat)
	if err != nil {
		return err
	}
	for i := range desc.Vars {
		v := desc.Vars[i]
		if _, dup := rt.varsByAddr[v.Addr]; dup {
			return fmt.Errorf("core: module redefines switch %q", v.Name)
		}
		rt.desc.Vars = append(rt.desc.Vars, v)
		nv := &rt.desc.Vars[len(rt.desc.Vars)-1]
		rt.varsByAddr[nv.Addr] = nv
		if nv.FnPtr {
			rt.fnptrs[nv.Addr] = &fnptrState{vd: nv}
		}
	}
	for i := range desc.Funcs {
		f := desc.Funcs[i]
		if _, dup := rt.byGeneric[f.Generic]; dup {
			return fmt.Errorf("core: module redefines function %q", f.Name)
		}
		rt.desc.Funcs = append(rt.desc.Funcs, f)
		fs := &funcState{fd: &rt.desc.Funcs[len(rt.desc.Funcs)-1]}
		rt.funcs = append(rt.funcs, fs)
		rt.byGeneric[fs.fd.Generic] = fs
		rt.byName[fs.fd.Name] = fs
	}
	for _, s := range desc.Sites {
		st := &siteState{desc: s}
		window, err := readSiteWindow(rt.plat, s.Addr)
		if err != nil {
			return err
		}
		if err := rt.verifyOriginalSite(st, window); err != nil {
			return err
		}
		st.original = append([]byte(nil), window[:st.size]...)
		st.current = append([]byte(nil), st.original...)
		rt.sites[s.Callee] = append(rt.sites[s.Callee], st)
		rt.desc.Sites = append(rt.desc.Sites, s)
		// Force a repatch of the callee so the new site catches up
		// with an already committed variant.
		if fs, ok := rt.byGeneric[s.Callee]; ok {
			fs.committed = nil
		}
		if ps, ok := rt.fnptrs[s.Callee]; ok {
			ps.committed = false
		}
	}
	return nil
}
