package core

import (
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// This file wires the simulated stack into the metrics registry
// (internal/metrics). The split mirrors AttachTracer: the hot layers
// keep plain struct counters (cpu.Stats, mem.Stats, RuntimeStats) and
// the registry reads them through closures at scrape time, so the
// interpreter's stepFast loop never sees a metrics call and the
// difftests can assert cycle counts are bit-identical with a registry
// attached or not.
//
// Two families are event-sourced rather than scraped, because they
// are distributions that only exist at commit granularity:
//
//   - mv_commit_latency_cycles: the modeled cost of one commit span.
//     Patching happens *outside* the simulated CPU (the runtime
//     library is host code mutating guest memory), so the CPU clock
//     does not advance during a commit; charging it would perturb the
//     experiments the observability exists to measure. Instead the
//     latency is accounted in the cycle domain from the operations
//     the commit performed — the same §5 arithmetic the paper uses
//     for its stop_machine analogue: protection flips (mprotect
//     analogue), icache shootdowns and per-site text writes, each at
//     a documented calibrated cost, plus any cycles the clock really
//     did advance (SMP commits during interleaved execution).
//   - mv_variant_residency_cycles{function,variant}: wall-cycle time
//     each function spent bound to each variant (or "generic"),
//     closed out lazily at scrape time so the currently open binding
//     is always included.

// Modeled per-operation commit costs in cycles, used only for the
// mv_commit_latency_cycles accounting (never charged to any CPU).
// Values are in the same calibration family as cpu.DefaultConfig:
// a protection flip costs about two syscall round-trips, an icache
// shootdown is an IPI plus refill, a site write is a handful of
// stores plus verification reads.
const (
	CostCommitProtect = 900 // one mem.Protect transition
	CostCommitFlush   = 250 // one icache flush
	CostCommitSite    = 40  // one patched, inlined or restored site / prologue
)

// defaultMetricsRegistry, when non-nil, is attached to every System
// that BuildSystem constructs — the same global-toggle idiom as
// SetDefaultTraceCollector, for the same reason: mvbench and the
// difftests build systems deep inside experiment helpers.
var defaultMetricsRegistry *metrics.Registry

// SetDefaultMetricsRegistry installs (or, with nil, removes) the
// registry that BuildSystem auto-attaches to new systems.
func SetDefaultMetricsRegistry(r *metrics.Registry) { defaultMetricsRegistry = r }

// DefaultMetricsRegistry returns the registry BuildSystem attaches.
func DefaultMetricsRegistry() *metrics.Registry { return defaultMetricsRegistry }

// MVMetrics is the per-runtime instrument bundle AttachMetrics hangs
// off a Runtime. All methods are nil-receiver safe, so the runtime
// hooks cost one pointer check when metrics are detached.
type MVMetrics struct {
	reg   *metrics.Registry
	clock func() uint64

	commitLatency *metrics.Histogram
	commitSites   *metrics.Histogram
	rendezvous    *metrics.Histogram
	osrLatency    *metrics.Histogram

	res *residencyTracker
}

// Registry returns the registry this bundle reports into (nil when
// detached).
func (mm *MVMetrics) Registry() *metrics.Registry {
	if mm == nil {
		return nil
	}
	return mm.reg
}

func (mm *MVMetrics) now() uint64 {
	if mm.clock == nil {
		return 0
	}
	return mm.clock()
}

// AttachMetrics wires a machine and its runtime into a registry:
// CPU and memory stats become scrape-time counter readers, derived
// gauges (decode hit ratio, flush and protect rates per million
// instructions) are registered once per registry against the
// aggregated counters, and the runtime gets an MVMetrics bundle for
// commit-latency, sites-per-commit and variant-residency accounting.
// Attaching many systems to one registry aggregates them. rt may be
// nil (bare machine). Returns the runtime's bundle (nil if rt is nil).
func AttachMetrics(reg *metrics.Registry, m *machine.Machine, rt *Runtime) *MVMetrics {
	reg.SetClock(m.CPU.Cycles)

	stat := func(pick func(s machineStats) uint64) func() uint64 {
		return func() uint64 { return pick(machineStats{m.TotalStats(), m.Mem.Stats}) }
	}
	type cf struct {
		name, help string
		read       func() uint64
	}
	for _, c := range []cf{
		{"mv_instructions_total", "Instructions retired across all CPUs.",
			stat(func(s machineStats) uint64 { return s.cpu.Instructions })},
		{"mv_branches_total", "Conditional and indirect branches executed.",
			stat(func(s machineStats) uint64 { return s.cpu.Branches })},
		{"mv_mispredicts_total", "Branch/indirect/return mispredictions.",
			stat(func(s machineStats) uint64 { return s.cpu.Mispredicts })},
		{"mv_calls_total", "Call instructions executed.",
			stat(func(s machineStats) uint64 { return s.cpu.Calls })},
		{"mv_loads_total", "Data loads executed.",
			stat(func(s machineStats) uint64 { return s.cpu.Loads })},
		{"mv_stores_total", "Data stores executed.",
			stat(func(s machineStats) uint64 { return s.cpu.Stores })},
		{"mv_interrupts_total", "Asynchronous interrupts serviced.",
			stat(func(s machineStats) uint64 { return s.cpu.Interrupts })},
		{"mv_traps_total", "BRK breakpoint traps taken (text-poke windows).",
			stat(func(s machineStats) uint64 { return s.cpu.Traps })},
		{"mv_icache_fills_total", "Instruction-cache line fills.",
			stat(func(s machineStats) uint64 { return s.cpu.ICacheFills })},
		{"mv_decode_hits_total", "Instructions dispatched from the predecoded cache.",
			stat(func(s machineStats) uint64 { return s.cpu.DecodeHits })},
		{"mv_decode_misses_total", "Instructions decoded from raw bytes.",
			stat(func(s machineStats) uint64 { return s.cpu.DecodeMisses })},
		{"mv_superblock_builds_total", "Superblocks chained from icache-line snapshots.",
			stat(func(s machineStats) uint64 { return s.cpu.BlockBuilds })},
		{"mv_superblock_hits_total", "Superblock dispatches (block entries and re-entries).",
			stat(func(s machineStats) uint64 { return s.cpu.BlockHits })},
		{"mv_superblock_insts_total", "Instructions dispatched through superblocks.",
			stat(func(s machineStats) uint64 { return s.cpu.BlockInsts })},
		{"mv_superblock_invalidated_total", "Superblocks dropped by icache flushes.",
			stat(func(s machineStats) uint64 { return s.cpu.BlockInvalidates })},
		{"mv_mem_protect_calls_total", "mem.Protect transitions (mprotect analogue).",
			stat(func(s machineStats) uint64 { return s.mem.ProtectCalls })},
		{"mv_icache_flushes_total", "Explicit icache invalidations after patching.",
			stat(func(s machineStats) uint64 { return s.mem.Flushes })},
		{"mv_cycles_total", "Simulated cycles across all CPUs.",
			func() uint64 {
				var n uint64
				for _, c := range m.CPUs() {
					n += c.Cycles()
				}
				return n
			}},
	} {
		reg.CounterFunc(c.name, c.help, c.read)
	}

	// Derived gauges read the *registry's* aggregated counters, so
	// they stay correct when many systems share one registry —
	// register them only once per registry.
	if !reg.Has("mv_decode_hit_ratio") {
		reg.GaugeFunc("mv_decode_hit_ratio", "Decode-cache hit ratio across all systems.",
			func() float64 {
				hits := reg.CounterTotal("mv_decode_hits_total")
				total := hits + reg.CounterTotal("mv_decode_misses_total")
				if total == 0 {
					return 0
				}
				return float64(hits) / float64(total)
			})
		reg.GaugeFunc("mv_superblock_hit_ratio",
			"Fraction of instructions dispatched through superblocks across all systems.",
			func() float64 {
				inst := reg.CounterTotal("mv_instructions_total")
				if inst == 0 {
					return 0
				}
				return float64(reg.CounterTotal("mv_superblock_insts_total")) / float64(inst)
			})
		perMInst := func(name string) func() float64 {
			return func() float64 {
				inst := reg.CounterTotal("mv_instructions_total")
				if inst == 0 {
					return 0
				}
				return float64(reg.CounterTotal(name)) / float64(inst) * 1e6
			}
		}
		reg.GaugeFunc("mv_icache_flush_rate_per_minst",
			"Icache flushes per million retired instructions.",
			perMInst("mv_icache_flushes_total"))
		reg.GaugeFunc("mv_protect_rate_per_minst",
			"Protection transitions per million retired instructions.",
			perMInst("mv_mem_protect_calls_total"))
	}

	if rt == nil {
		return nil
	}

	rstat := func(pick func(s RuntimeStats) uint64) func() uint64 {
		return func() uint64 { return pick(rt.Stats) }
	}
	for _, c := range []cf{
		{"mv_commits_total", "Commit operations (all granularities).",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.Commits) })},
		{"mv_reverts_total", "Revert operations.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.Reverts) })},
		{"mv_sites_patched_total", "Call sites patched to direct variant calls.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.SitesPatched) })},
		{"mv_sites_inlined_total", "Call sites with variant bodies inlined.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.SitesInlined) })},
		{"mv_sites_reverted_total", "Call sites restored to their original call.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.SitesReverted) })},
		{"mv_prologue_patches_total", "Generic prologues redirected to variants.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.ProloguePatch) })},
		{"mv_generic_signals_total", "Commits that fell back to the generic variant.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.GenericSignals) })},
		{"mv_commit_aborts_total", "Commits/reverts rolled back to the pre-operation image.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.CommitAborts) })},
		{"mv_commit_retries_total", "Text writes retried after a transient injected fault.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.CommitRetries) })},
		{"mv_sites_rolled_back_total", "Journal entries restored during commit aborts.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.SitesRolledBack) })},
		{"mv_flush_retries_total", "Icache shootdowns re-broadcast after stale-line verification.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.FlushRetries) })},
		{"mv_stop_machines_total", "Stop-machine rendezvous run for guarded operations.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.StopMachines) })},
		{"mv_text_pokes_total", "Multi-byte text writes done via the BRK poke protocol.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.TextPokes) })},
		{"mv_deferred_patches_total", "Operations queued because the target function was active.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.DeferredPatches) })},
		{"mv_deferred_drained_total", "Queued operations applied by DrainDeferred.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.DeferredDrained) })},
		{"mv_active_refusals_total", "Operations refused because the function was active.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.ActiveRefusals) })},
		{"mv_osr_transfers_total", "Live frames transferred into a new body by on-stack replacement.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.OSRTransfers) })},
		{"mv_osr_fallbacks_total", "ActiveOSR operations that fell back to the deferred queue.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.OSRFallbacks) })},
		{"mv_osr_rollbacks_total", "OSR frame transfers undone by transaction rollback.",
			rstat(func(s RuntimeStats) uint64 { return uint64(s.OSRRollbacks) })},
	} {
		reg.CounterFunc(c.name, c.help, c.read)
	}

	mm := &MVMetrics{
		reg:   reg,
		clock: m.CPU.Cycles,
		commitLatency: reg.Histogram("mv_commit_latency_cycles",
			"Modeled latency of one commit span in cycles (begin to end across all patched sites)."),
		commitSites: reg.Histogram("mv_commit_sites",
			"Sites touched (patched, inlined or reverted) per commit span."),
		rendezvous: reg.Histogram("mv_rendezvous_latency_cycles",
			"Cycles spent herding CPUs to safe points per stop-machine rendezvous."),
		osrLatency: reg.Histogram("mv_osr_transfer_latency_cycles",
			"Cycles spent herding victims to mapped OSR points per frame-transfer operation."),
	}
	mm.res = newResidencyTracker(reg, mm.clock)
	// Every function starts on its generic implementation.
	for _, fs := range rt.funcs {
		mm.res.note(fs.fd.Name, "generic")
	}
	rt.metrics = mm
	return mm
}

// machineStats bundles the two scrape sources of one machine.
type machineStats struct {
	cpu cpu.Stats
	mem mem.Stats
}

// beginCommit opens a commit span: it snapshots the counters the
// latency model is computed from and returns a closure that closes
// the span. Nil-receiver safe.
func (mm *MVMetrics) beginCommit(rt *Runtime) func() {
	if mm == nil {
		return nil
	}
	var memBefore mem.Stats
	if ms, ok := rt.plat.(MemStatser); ok {
		memBefore = ms.MemStats()
	}
	statBefore := rt.Stats
	cycBefore := mm.now()
	return func() {
		var memDelta mem.Stats
		if ms, ok := rt.plat.(MemStatser); ok {
			memDelta = ms.MemStats().Sub(memBefore)
		}
		s := rt.Stats
		sites := uint64(s.SitesPatched - statBefore.SitesPatched +
			s.SitesInlined - statBefore.SitesInlined +
			s.SitesReverted - statBefore.SitesReverted +
			s.ProloguePatch - statBefore.ProloguePatch)
		latency := memDelta.ProtectCalls*CostCommitProtect +
			memDelta.Flushes*CostCommitFlush +
			sites*CostCommitSite +
			(mm.now() - cycBefore)
		mm.commitLatency.Observe(latency)
		mm.commitSites.Observe(sites)
	}
}

// observeRendezvous records the herding latency of one stop-machine
// rendezvous. Nil-receiver safe.
func (mm *MVMetrics) observeRendezvous(latency uint64) {
	if mm == nil {
		return
	}
	mm.rendezvous.Observe(latency)
}

// observeOSR records the victim-herding latency of one on-stack
// replacement operation. Nil-receiver safe.
func (mm *MVMetrics) observeOSR(latency uint64) {
	if mm == nil {
		return
	}
	mm.osrLatency.Observe(latency)
}

// noteBinding records a function switching to a new variant (nil for
// generic); the variant label reuses the trace symbolizer's naming
// ("process.variant1"). Nil-receiver safe.
func (mm *MVMetrics) noteBinding(fd *FuncDesc, v *VariantDesc) {
	if mm == nil {
		return
	}
	mm.res.note(fd.Name, variantLabel(fd, v))
}

// variantLabel names a binding the way core.TraceSymbols names
// variant bodies, so profiles and metrics agree.
func variantLabel(fd *FuncDesc, v *VariantDesc) string {
	if v == nil {
		return "generic"
	}
	for i := range fd.Variants {
		if &fd.Variants[i] == v {
			return fmt.Sprintf("%s.variant%d", fd.Name, i)
		}
	}
	return fd.Name + ".variant?"
}

// residencyTracker accumulates, per (function, variant), the cycles
// spent bound to that variant. Each pair is exported as a
// CounterFunc whose reader folds in the still-open interval, so a
// scrape mid-residency sees up-to-date numbers without any hook on
// the execution path.
type residencyTracker struct {
	reg   *metrics.Registry
	clock func() uint64

	mu     sync.Mutex
	accum  map[[2]string]*uint64 // closed-interval cycles
	active map[string]*binding   // function -> current binding
}

type binding struct {
	variant string
	since   uint64
}

func newResidencyTracker(reg *metrics.Registry, clock func() uint64) *residencyTracker {
	return &residencyTracker{
		reg:    reg,
		clock:  clock,
		accum:  make(map[[2]string]*uint64),
		active: make(map[string]*binding),
	}
}

// note closes the function's current residency interval and opens one
// for the new variant. Re-binding to the same variant is a no-op.
func (rt *residencyTracker) note(fn, variant string) {
	now := rt.clock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if b, ok := rt.active[fn]; ok {
		if b.variant == variant {
			return
		}
		*rt.cell(fn, b.variant) += now - b.since
	}
	rt.cell(fn, variant) // ensure the series exists from bind time
	rt.active[fn] = &binding{variant: variant, since: now}
}

// cell returns the accumulator for (fn, variant), registering its
// exported series on first use. Callers hold rt.mu.
func (rt *residencyTracker) cell(fn, variant string) *uint64 {
	key := [2]string{fn, variant}
	if c, ok := rt.accum[key]; ok {
		return c
	}
	c := new(uint64)
	rt.accum[key] = c
	rt.reg.CounterFunc("mv_variant_residency_cycles",
		"Cycles each function spent bound to each variant (generic included).",
		func() uint64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			v := *c
			if b, ok := rt.active[fn]; ok && b.variant == variant {
				v += rt.clock() - b.since
			}
			return v
		},
		metrics.L("function", fn), metrics.L("variant", variant))
	return c
}
