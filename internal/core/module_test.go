package core

import (
	"strings"
	"testing"
)

// mainKernelSrc exports a multiverse switch and a multiversed function
// plus a helper, like a kernel exporting symbols to modules.
const mainKernelSrc = `
	multiverse int feature;
	long fastHits;
	long slowHits;
	void fastImpl(void) { fastHits++; }
	void slowImpl(void) { slowHits++; }
	multiverse void op(void) {
		if (feature) { fastImpl(); } else { slowImpl(); }
	}
	void kernelPath(void) { op(); }
	long fasts(void) { return fastHits; }
	long slows(void) { return slowHits; }
`

// moduleSrc is a loadable module: it declares the kernel's switch and
// function extern (the attribute must be on the declaration, §5) and
// adds its own call sites plus its own multiversed function.
const moduleSrc = `
	extern multiverse int feature;
	multiverse void op(void);
	long modCalls;

	void modulePath(void) {
		op();
		modCalls++;
	}
	long moduleCalls(void) { return modCalls; }

	multiverse(0, 1) int mod_verbose;
	long verboseHits;
	multiverse void modLog(void) {
		if (mod_verbose) { verboseHits++; }
	}
	void modWork(void) { modLog(); }
	long verbose(void) { return verboseHits; }
`

func buildWithModule(t *testing.T) *System {
	t.Helper()
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "kernel", Text: mainKernelSrc})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(sys.Machine.Image, 0, GenOptions{}, Source{Name: "mod", Text: moduleSrc})
	if err != nil {
		t.Fatalf("BuildModule: %v", err)
	}
	if err := LoadModule(sys.Machine, mod); err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if err := sys.RT.AddModule(mod); err != nil {
		t.Fatalf("AddModule: %v", err)
	}
	// Make the module's symbols callable through the machine.
	for name, s := range mod.Symbols {
		if _, dup := sys.Machine.Image.Symbols[name]; !dup {
			sys.Machine.Image.Symbols[name] = s
		}
	}
	return sys
}

func TestModuleCallSitesGetPatched(t *testing.T) {
	sys := buildWithModule(t)
	call := func(name string) uint64 {
		v, err := sys.Machine.CallNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}

	// Dynamic execution through the module works before any commit.
	call("modulePath")
	if call("slows") != 1 {
		t.Fatal("module call did not reach the kernel function")
	}

	// Commit feature=1: BOTH the kernel call site and the module call
	// site must be patched to the fast variant.
	if err := sys.SetSwitch("feature", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	// Changing the variable without commit must have no effect in the
	// module either (bound semantics across images).
	if err := sys.SetSwitch("feature", 0); err != nil {
		t.Fatal(err)
	}
	call("modulePath")
	call("kernelPath")
	if call("fasts") != 2 {
		t.Errorf("fasts = %d, want 2 (module site not bound)", call("fasts"))
	}
	if call("slows") != 1 {
		t.Errorf("slows = %d, want 1", call("slows"))
	}
}

func TestModuleLoadedAfterCommitCatchesUp(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "kernel", Text: mainKernelSrc})
	if err != nil {
		t.Fatal(err)
	}
	// Commit BEFORE the module is loaded.
	if err := sys.SetSwitch("feature", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(sys.Machine.Image, 0, GenOptions{}, Source{Name: "mod", Text: moduleSrc})
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModule(sys.Machine, mod); err != nil {
		t.Fatal(err)
	}
	if err := sys.RT.AddModule(mod); err != nil {
		t.Fatal(err)
	}
	for name, s := range mod.Symbols {
		if _, dup := sys.Machine.Image.Symbols[name]; !dup {
			sys.Machine.Image.Symbols[name] = s
		}
	}
	// The insmod-style re-commit picks up the new sites.
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("feature", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Machine.CallNamed("modulePath"); err != nil {
		t.Fatal(err)
	}
	fasts, err := sys.Machine.CallNamed("fasts")
	if err != nil {
		t.Fatal(err)
	}
	if fasts != 1 {
		t.Errorf("fasts = %d, want 1 (late module site not patched)", fasts)
	}
}

func TestModuleOwnSwitchesWork(t *testing.T) {
	sys := buildWithModule(t)
	if _, ok := sys.RT.VarByName("mod_verbose"); !ok {
		t.Fatal("module switch not registered")
	}
	if err := sys.SetSwitch("mod_verbose", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("mod_verbose", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Machine.CallNamed("modWork"); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Machine.CallNamed("verbose")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("verbose = %d, want 1 (module function not bound)", v)
	}
}

func TestModuleConflictsRejected(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "kernel", Text: mainKernelSrc})
	if err != nil {
		t.Fatal(err)
	}
	// A module that defines a symbol the kernel already exports fails
	// to link against Externs only at load/registration time — here we
	// provoke a descriptor conflict by registering the main image as a
	// module of itself.
	err = sys.RT.AddModule(sys.Machine.Image)
	if err == nil || !strings.Contains(err.Error(), "redefines") {
		t.Errorf("self-registration err = %v, want redefinition error", err)
	}
}

func TestModuleUnresolvedSymbolFails(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "kernel", Text: mainKernelSrc})
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildModule(sys.Machine.Image, 0, GenOptions{}, Source{Name: "bad", Text: `
		void missingKernelFunc(void);
		void entry(void) { missingKernelFunc(); }
	`})
	if err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("err = %v, want undefined symbol", err)
	}
}
