package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/link"
	"repro/internal/obj"
)

// VarDesc is the decoded form of a multiverse.variables record.
type VarDesc struct {
	Addr   uint64
	Width  int
	Signed bool
	FnPtr  bool
	Name   string
}

// GuardDesc restricts one switch to [Lo, Hi].
type GuardDesc struct {
	VarAddr uint64
	Lo, Hi  int32
}

// VariantDesc is one selectable function variant.
type VariantDesc struct {
	Addr   uint64
	Size   uint64
	Guards []GuardDesc
}

// FuncDesc is the decoded form of a multiverse.functions record.
type FuncDesc struct {
	Generic  uint64
	Size     uint64
	Name     string
	Variants []VariantDesc
}

// CallSiteDesc is the decoded form of a multiverse.callsites record.
type CallSiteDesc struct {
	Addr   uint64 // address of the 5-byte call instruction
	Callee uint64 // generic function or switch-variable address
}

// OSRPointDesc is one decoded OSR point inside a function body.
type OSRPointDesc struct {
	Label  int    // variant-invariant logical id (≥1)
	Kind   int    // codegen.OSRPointLoop or codegen.OSRPointCall
	Off    uint32 // text offset from function start
	RegMsk uint32 // pushed | live<<16 register mask (call points)
}

// OSRFuncDesc is the decoded OSR metadata of one function body
// (generic or variant), keyed by its start address.
type OSRFuncDesc struct {
	Addr      uint64
	FrameSize int32
	HasFrame  bool
	NoScratch bool
	Slots     map[string]int32 // "Name#Seq" -> FP-relative displacement
	Points    []OSRPointDesc
}

// Point returns the OSR point with the given label and kind, or nil.
func (fd *OSRFuncDesc) Point(label, kind int) *OSRPointDesc {
	for i := range fd.Points {
		if fd.Points[i].Label == label && fd.Points[i].Kind == kind {
			return &fd.Points[i]
		}
	}
	return nil
}

// PointAt returns the OSR point at the given text offset, or nil.
func (fd *OSRFuncDesc) PointAt(off uint32) *OSRPointDesc {
	for i := range fd.Points {
		if fd.Points[i].Off == off {
			return &fd.Points[i]
		}
	}
	return nil
}

// Descriptors holds every decoded multiverse record of an image.
type Descriptors struct {
	Vars  []VarDesc
	Funcs []FuncDesc
	Sites []CallSiteDesc
	OSR   map[uint64]*OSRFuncDesc // body start address -> OSR metadata
}

// readCString reads a NUL-terminated string.
func readCString(p Platform, addr uint64) (string, error) {
	if addr == 0 {
		return "", nil
	}
	var out []byte
	var buf [1]byte
	for len(out) < 4096 {
		if err := p.Read(addr+uint64(len(out)), buf[:]); err != nil {
			return "", err
		}
		if buf[0] == 0 {
			return string(out), nil
		}
		out = append(out, buf[0])
	}
	return "", fmt.Errorf("core: unterminated descriptor string at %#x", addr)
}

// DecodeDescriptors reads the multiverse descriptor sections of a
// loaded image through the platform. This is what the run-time
// library does at startup: the linker has already concatenated the
// per-unit records and resolved their address fields.
func DecodeDescriptors(img *link.Image, p Platform) (*Descriptors, error) {
	d := &Descriptors{}
	read := func(sec string) ([]byte, error) {
		r, ok := img.Sections[sec]
		if !ok || r.Size == 0 {
			return nil, nil
		}
		buf := make([]byte, r.Size)
		if err := p.Read(r.Addr, buf); err != nil {
			return nil, fmt.Errorf("core: reading %s: %w", sec, err)
		}
		return buf, nil
	}
	u32 := binary.LittleEndian.Uint32
	u64 := binary.LittleEndian.Uint64

	vars, err := read(obj.SecMVVars)
	if err != nil {
		return nil, err
	}
	if len(vars)%codegen.VarDescSize != 0 {
		return nil, fmt.Errorf("core: variables section size %d not a multiple of %d", len(vars), codegen.VarDescSize)
	}
	for off := 0; off < len(vars); off += codegen.VarDescSize {
		rec := vars[off:]
		flags := u32(rec[12:])
		name, err := readCString(p, u64(rec[16:]))
		if err != nil {
			return nil, err
		}
		d.Vars = append(d.Vars, VarDesc{
			Addr:   u64(rec[0:]),
			Width:  int(u32(rec[8:])),
			Signed: flags&codegen.VarFlagSigned != 0,
			FnPtr:  flags&codegen.VarFlagFnPtr != 0,
			Name:   name,
		})
	}

	funcs, err := read(obj.SecMVFuncs)
	if err != nil {
		return nil, err
	}
	for off := 0; off < len(funcs); {
		if off+codegen.FuncDescSize > len(funcs) {
			return nil, fmt.Errorf("core: truncated function descriptor at %d", off)
		}
		rec := funcs[off:]
		nvar := int(u32(rec[16:]))
		name, err := readCString(p, u64(rec[8:]))
		if err != nil {
			return nil, err
		}
		fd := FuncDesc{
			Generic: u64(rec[0:]),
			Size:    u64(rec[24:]),
			Name:    name,
		}
		off += codegen.FuncDescSize
		for i := 0; i < nvar; i++ {
			if off+codegen.VariantDescSize > len(funcs) {
				return nil, fmt.Errorf("core: truncated variant descriptor in %q", name)
			}
			vrec := funcs[off:]
			nguards := int(u32(vrec[16:]))
			v := VariantDesc{Addr: u64(vrec[0:]), Size: u64(vrec[8:])}
			off += codegen.VariantDescSize
			for g := 0; g < nguards; g++ {
				if off+codegen.GuardDescSize > len(funcs) {
					return nil, fmt.Errorf("core: truncated guard descriptor in %q", name)
				}
				grec := funcs[off:]
				v.Guards = append(v.Guards, GuardDesc{
					VarAddr: u64(grec[0:]),
					Lo:      int32(u32(grec[8:])),
					Hi:      int32(u32(grec[12:])),
				})
				off += codegen.GuardDescSize
			}
			fd.Variants = append(fd.Variants, v)
		}
		d.Funcs = append(d.Funcs, fd)
	}

	osr, err := read(obj.SecMVOSR)
	if err != nil {
		return nil, err
	}
	d.OSR = make(map[uint64]*OSRFuncDesc)
	for off := 0; off < len(osr); {
		if off+codegen.OSRFuncHeaderSize > len(osr) {
			return nil, fmt.Errorf("core: truncated OSR header at %d", off)
		}
		rec := osr[off:]
		flags := u32(rec[12:])
		fd := &OSRFuncDesc{
			Addr:      u64(rec[0:]),
			FrameSize: int32(u32(rec[8:])),
			HasFrame:  flags&codegen.OSRFlagHasFrame != 0,
			NoScratch: flags&codegen.OSRFlagNoScratch != 0,
			Slots:     make(map[string]int32),
		}
		nslots := int(u32(rec[16:]))
		npoints := int(u32(rec[20:]))
		off += codegen.OSRFuncHeaderSize
		for i := 0; i < nslots; i++ {
			if off+codegen.OSRSlotRecSize > len(osr) {
				return nil, fmt.Errorf("core: truncated OSR slot record at %d", off)
			}
			srec := osr[off:]
			key, err := readCString(p, u64(srec[0:]))
			if err != nil {
				return nil, err
			}
			fd.Slots[key] = int32(u32(srec[8:]))
			off += codegen.OSRSlotRecSize
		}
		for i := 0; i < npoints; i++ {
			if off+codegen.OSRPointRecSize > len(osr) {
				return nil, fmt.Errorf("core: truncated OSR point record at %d", off)
			}
			prec := osr[off:]
			fd.Points = append(fd.Points, OSRPointDesc{
				Label:  int(u32(prec[0:])),
				Kind:   int(u32(prec[4:])),
				Off:    u32(prec[8:]),
				RegMsk: u32(prec[12:]),
			})
			off += codegen.OSRPointRecSize
		}
		d.OSR[fd.Addr] = fd
	}

	sites, err := read(obj.SecMVCallSites)
	if err != nil {
		return nil, err
	}
	if len(sites)%codegen.CallSiteSize != 0 {
		return nil, fmt.Errorf("core: callsites section size %d not a multiple of %d", len(sites), codegen.CallSiteSize)
	}
	for off := 0; off < len(sites); off += codegen.CallSiteSize {
		rec := sites[off:]
		d.Sites = append(d.Sites, CallSiteDesc{
			Addr:   u64(rec[0:]),
			Callee: u64(rec[8:]),
		})
	}
	return d, nil
}
