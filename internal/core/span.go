package core

import "repro/internal/trace"

// Commit-causality spans. Every public runtime operation — Commit,
// Revert, the single-function and by-switch forms, and DrainDeferred —
// gets a monotonic id that beginOpSpan installs into the attached
// tracer for the operation's duration. Because collector streams share
// the span collector-wide (trace.Stream.SetSpan), the id reaches every
// event the operation causes on every CPU: the victim thread's BRK
// trap, a secondary's icache shootdown, the memory system's protection
// flip. The Chrome exporter turns shared span ids into flow arrows;
// mvtrace groups flight-dump rows by them.

// beginOpSpan opens a new span for a public operation and returns the
// closure that clears it, or nil when no attached sink carries spans.
// Nested operations (a drain's per-function transactions, say) reuse
// the enclosing span: the span follows the outermost public call the
// way the transaction does.
func (rt *Runtime) beginOpSpan() func() {
	sc, ok := rt.Tracer.(trace.SpanCarrier)
	if !ok {
		return nil
	}
	if rt.tx != nil {
		return nil // joined an enclosing operation; its span stands
	}
	rt.opSeq++
	sc.SetSpan(rt.opSeq)
	return func() { sc.SetSpan(0) }
}

// phase brackets a named commit sub-phase ("herd", "poke", "rollback")
// with PhaseBegin/PhaseEnd events and returns the closing closure.
// With no tracer attached both sides are free.
func (rt *Runtime) phase(name string) func() {
	if rt.Tracer == nil {
		return func() {}
	}
	rt.Tracer.EmitName(trace.KindPhaseBegin, 0, 0, 0, name)
	return func() { rt.Tracer.EmitName(trace.KindPhaseEnd, 0, 0, 0, name) }
}

// noteFailure hands the attached flight recorder a failure-point dump.
func (rt *Runtime) noteFailure(reason string) {
	if rt.flight != nil {
		rt.flight.NoteFailure(reason)
	}
}
