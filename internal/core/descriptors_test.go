package core

import (
	"strings"
	"testing"

	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/obj"
)

// corrupt builds the Figure 2 image, then lets tamper shrink or break a
// descriptor section before the runtime decodes it.
func corrupt(t *testing.T, tamper func(img *link.Image)) error {
	t.Helper()
	img, _, err := BuildImage(GenOptions{}, Source{Name: "fig2.mvc", Text: figure2Src})
	if err != nil {
		t.Fatal(err)
	}
	tamper(img)
	m, err := machine.New(img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewRuntime(img, &UserPlatform{M: m})
	return err
}

func TestDecodeRejectsTruncatedVariablesSection(t *testing.T) {
	err := corrupt(t, func(img *link.Image) {
		r := img.Sections[obj.SecMVVars]
		r.Size -= 7 // no longer a multiple of 32
		img.Sections[obj.SecMVVars] = r
	})
	if err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeRejectsTruncatedFunctionsSection(t *testing.T) {
	err := corrupt(t, func(img *link.Image) {
		r := img.Sections[obj.SecMVFuncs]
		r.Size = 20 // cuts into the header
		img.Sections[obj.SecMVFuncs] = r
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeRejectsTruncatedCallsitesSection(t *testing.T) {
	err := corrupt(t, func(img *link.Image) {
		r := img.Sections[obj.SecMVCallSites]
		r.Size -= 3
		img.Sections[obj.SecMVCallSites] = r
	})
	if err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeToleratesMissingSections(t *testing.T) {
	// A program without any multiverse annotation has no descriptor
	// sections at all; the runtime must come up empty but functional.
	img, _, err := BuildImage(GenOptions{}, Source{Name: "plain.mvc", Text: `
		long f(long x) { return x + 1; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(img)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(img, &UserPlatform{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Vars()) != 0 || len(rt.Funcs()) != 0 {
		t.Errorf("descriptors from thin air: %+v", rt.desc)
	}
	res, err := rt.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 0 || res.Generic != 0 {
		t.Errorf("commit on empty runtime = %+v", res)
	}
	if err := rt.Revert(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruptCallSiteBytes(t *testing.T) {
	// Overwrite a recorded call site with junk before the runtime
	// starts: verification must fail loudly.
	img, _, err := BuildImage(GenOptions{}, Source{Name: "fig2.mvc", Text: figure2Src})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(img)
	if err != nil {
		t.Fatal(err)
	}
	rtProbe, err := NewRuntime(img, &UserPlatform{M: m})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := rtProbe.FuncByName("multi")
	site := rtProbe.sites[fn][0].desc.Addr
	if err := m.Mem.WriteForce(site, []byte{0xEE, 0xEE, 0xEE, 0xEE, 0xEE}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(img, &UserPlatform{M: m}); err == nil {
		t.Error("corrupt call site accepted at startup")
	}
}

func TestGuardStringRendering(t *testing.T) {
	sys := buildFig2(t)
	for _, fd := range sys.RT.Funcs() {
		for _, v := range fd.Variants {
			for _, g := range v.Guards {
				if g.VarAddr == 0 {
					t.Errorf("guard with null variable in %q", fd.Name)
				}
				if g.Lo > g.Hi {
					t.Errorf("inverted guard range [%d,%d]", g.Lo, g.Hi)
				}
			}
		}
	}
}
