package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// stepInto steps the system's primary CPU (after StartCall) until the
// PC lands in [lo, hi), failing the test if it never does.
func stepInto(t *testing.T, sys *System, lo, hi uint64) {
	t.Helper()
	c := sys.Machine.CPU
	for i := 0; i < 100_000; i++ {
		if pc := c.PC(); pc >= lo && pc < hi && !c.Halted() {
			return
		}
		if c.Halted() {
			t.Fatalf("CPU halted before reaching [%#x,%#x)", lo, hi)
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("CPU never reached [%#x,%#x)", lo, hi)
}

// stepToHalt runs the primary CPU to the halt stub.
func stepToHalt(t *testing.T, sys *System) {
	t.Helper()
	c := sys.Machine.CPU
	for i := 0; i < 1_000_000 && !c.Halted(); i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Halted() {
		t.Fatal("CPU did not halt")
	}
}

// parkInCommittedVariant commits A=1,B=1, then starts foo on the
// primary CPU and steps it until the PC is inside the committed
// variant body of multi. Returns multi's funcState.
func parkInCommittedVariant(t *testing.T, sys *System) *funcState {
	t.Helper()
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	fs := sys.RT.byName["multi"]
	if fs == nil || fs.committed == nil {
		t.Fatal("multi not committed")
	}
	v := fs.committed
	if err := sys.Machine.StartCall(sys.Machine.CPU, "foo"); err != nil {
		t.Fatal(err)
	}
	stepInto(t, sys, v.Addr, v.Addr+uint64(v.Size))
	return fs
}

// TestCommitRefusedWhileFunctionActive: with a CPU executing inside
// the committed variant, a re-commit under ActiveRefuse must abort
// with ErrFunctionActive, leave the binding untouched, and keep the
// image audit-clean; after the CPU halts, the same commit succeeds.
func TestCommitRefusedWhileFunctionActive(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	was := fs.committed

	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveRefuse})
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	_, err := sys.RT.Commit()
	if !errors.Is(err, ErrFunctionActive) {
		t.Fatalf("commit on active function: err = %v, want ErrFunctionActive", err)
	}
	if !errors.Is(err, ErrCommitAborted) {
		t.Errorf("refusal did not abort the transaction: %v", err)
	}
	if fs.committed != was {
		t.Error("refused commit still changed the binding")
	}
	if sys.RT.Stats.ActiveRefusals != 1 {
		t.Errorf("ActiveRefusals = %d, want 1", sys.RT.Stats.ActiveRefusals)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after refused commit: %v", err)
	}

	stepToHalt(t, sys)
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("commit after quiesce: %v", err)
	}
	if fs.committed == was {
		t.Error("post-quiesce commit did not rebind")
	}
}

// TestRevertRefusedWhileFunctionActive: RevertFunc under ActiveRefuse
// must also respect the activeness check.
func TestRevertRefusedWhileFunctionActive(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveRefuse})
	err := sys.RT.RevertFunc(fs.fd.Generic)
	if !errors.Is(err, ErrFunctionActive) {
		t.Fatalf("revert of active function: err = %v, want ErrFunctionActive", err)
	}
	if fs.committed == nil {
		t.Error("refused revert still tore down the binding")
	}
}

// TestCommitDeferredWhileFunctionActive: under ActiveDefer the commit
// succeeds with the rebinding queued; DrainDeferred applies it once
// the CPU has halted.
func TestCommitDeferredWhileFunctionActive(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	was := fs.committed

	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveDefer})
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatalf("deferring commit: %v", err)
	}
	if res.Deferred != 1 {
		t.Fatalf("res.Deferred = %d, want 1", res.Deferred)
	}
	if got := sys.RT.DeferredCount(); got != 1 {
		t.Fatalf("DeferredCount = %d, want 1", got)
	}
	if fs.committed != was {
		t.Error("deferred commit changed the binding immediately")
	}

	// Still active: a drain must keep it queued.
	if n, err := sys.RT.DrainDeferred(); err != nil || n != 0 {
		t.Fatalf("drain while active: n=%d err=%v, want 0,nil", n, err)
	}

	stepToHalt(t, sys)
	n, err := sys.RT.DrainDeferred()
	if err != nil {
		t.Fatalf("drain after quiesce: %v", err)
	}
	if n != 1 {
		t.Fatalf("drained %d ops, want 1", n)
	}
	if sys.RT.DeferredCount() != 0 {
		t.Error("queue not empty after drain")
	}
	if fs.committed == was || fs.committed == nil {
		t.Error("drain did not apply the deferred rebinding")
	}
	if sys.RT.Stats.DeferredPatches != 1 || sys.RT.Stats.DeferredDrained != 1 {
		t.Errorf("deferred stats = %+v", sys.RT.Stats)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after drain: %v", err)
	}
	// Semantics: the drained B=0 variant no longer calls logmsg.
	logs := call(t, sys, "logs")
	call(t, sys, "foo")
	if call(t, sys, "logs") != logs {
		t.Error("drained binding still runs the B=1 variant")
	}
}

// TestStackActivenessViaReturnAddress: the CPU's PC sits in calc (a
// plain helper), but the return address into multi's committed variant
// is live on its stack — the conservative stack walk must still report
// the variant active.
func TestStackActivenessViaReturnAddress(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	v := fs.committed

	// Step onward until the PC leaves the variant for calc's body; the
	// frame that will return into the variant is now on the stack.
	calcAddr := sys.Machine.MustSymbol("calc")
	stepInto(t, sys, calcAddr, calcAddr+1)

	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveRefuse})
	if !sys.RT.isActive(fs) {
		t.Fatalf("variant [%#x,%#x) not reported active despite a live return address",
			v.Addr, v.Addr+uint64(v.Size))
	}
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); !errors.Is(err, ErrFunctionActive) {
		t.Fatalf("commit with live return address: err = %v, want ErrFunctionActive", err)
	}
	stepToHalt(t, sys)
}

// TestTextPokeModeCommit: commits in ModeTextPoke go through the BRK
// protocol (TextPokes counted), end audit-clean with no residual BRK,
// and preserve commit semantics.
func TestTextPokeModeCommit(t *testing.T) {
	sys := buildFig2(t)
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeTextPoke})
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 0})
	if sys.RT.Stats.TextPokes == 0 {
		t.Fatal("ModeTextPoke commit performed no pokes")
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after poke-mode commit: %v", err)
	}
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 || call(t, sys, "logs") != 0 {
		t.Error("poke-mode commit broke variant semantics")
	}
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after poke-mode revert: %v", err)
	}
}

// TestAuditRejectsResidualBRK: a BRK instruction surviving in a site
// the runtime believes patched is exactly what a torn poke would leave
// behind; the auditor must name it.
func TestAuditRejectsResidualBRK(t *testing.T) {
	sys := buildFig2(t)
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	var st *siteState
	for _, sites := range sys.RT.sites {
		for _, s := range sites {
			if s.patched {
				st = s
			}
		}
	}
	if st == nil {
		t.Fatal("no patched site to corrupt")
	}
	// Simulate a stranded poke: BRK in memory AND in the shadow, so the
	// shadow-compare passes and the code check must catch it.
	brk := []byte{byte(isa.BRK)}
	if err := sys.Machine.Mem.WriteForce(st.desc.Addr, brk); err != nil {
		t.Fatal(err)
	}
	st.current[0] = byte(isa.BRK)
	err := sys.RT.Audit()
	if err == nil || !strings.Contains(err.Error(), "residual BRK") {
		t.Fatalf("audit of BRK-poisoned site: %v, want residual BRK error", err)
	}
}

// osrLoopSrc is a workload whose multiversed function has a real
// frame (parameter + induction variable) and a loop OSR point present
// in every variant, so an ActiveOSR commit against a CPU parked in
// its body succeeds by live frame transfer rather than falling back.
const osrLoopSrc = `
	multiverse int S;
	long ticks;
	multiverse void spin(ulong n) {
		for (ulong i = 0; i < n; i++) {
			if (S) { ticks = ticks + 2; }
			else { ticks = ticks + 1; }
		}
	}
	void drive(void) { spin(300); }
	long get_ticks(void) { return ticks; }
`

// TestOSRCommitPurgesDeferredQueue: a function queued by an
// ActiveDefer commit and then successfully OSR-committed must be
// purged from the deferred queue — DrainDeferred must not re-apply
// the stale patch. The sting in the tail: deferred operations apply
// with the switch values current at drain time, so a stale queued op
// plus an uncommitted switch flip would rebind to a variant nobody
// ever committed.
func TestOSRCommitPurgesDeferredQueue(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "osrloop.mvc", Text: osrLoopSrc})
	if err != nil {
		t.Fatal(err)
	}
	setAndCommit(t, sys, map[string]int64{"S": 1})
	fs := sys.RT.byName["spin"]
	if fs == nil || fs.committed == nil {
		t.Fatal("spin not committed")
	}
	was := fs.committed
	if err := sys.Machine.StartCall(sys.Machine.CPU, "drive"); err != nil {
		t.Fatal(err)
	}
	stepInto(t, sys, was.Addr, was.Addr+uint64(was.Size))

	// Queue a rebinding against the active body.
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveDefer})
	if err := sys.SetSwitch("S", 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatalf("deferring commit: %v", err)
	}
	if res.Deferred != 1 || sys.RT.DeferredCount() != 1 {
		t.Fatalf("deferred=%d queue=%d, want 1,1", res.Deferred, sys.RT.DeferredCount())
	}

	// Same commit under ActiveOSR: lands live via frame transfer and
	// must purge the queued op. A flight recorder pins the phase spans
	// the real runtime emits (the mvtrace rendering test uses synthetic
	// events; this ties the names to the engine).
	rec := trace.NewRecorder(256)
	AttachFlightRecorder(rec, sys.Machine, sys.RT)
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveOSR})
	res2, err := sys.RT.Commit()
	if err != nil {
		t.Fatalf("OSR commit: %v", err)
	}
	if res2.Committed != 1 {
		t.Fatalf("OSR commit result = %+v, want 1 committed", res2)
	}
	if fs.committed == was || fs.committed == nil {
		t.Fatal("OSR commit did not rebind")
	}
	bound := fs.committed
	if sys.RT.Stats.OSRTransfers == 0 {
		t.Error("OSR commit transferred no frames (fell back?)")
	}
	if sys.RT.Stats.OSRFallbacks != 0 {
		t.Errorf("OSRFallbacks = %d, want 0", sys.RT.Stats.OSRFallbacks)
	}
	if got := sys.RT.DeferredCount(); got != 0 {
		t.Fatalf("DeferredCount after OSR commit = %d, want 0 (stale op not purged)", got)
	}
	phases := map[string]bool{}
	for _, ev := range rec.Dump("osr purge test").Events {
		if ev.Kind == trace.KindPhaseBegin.Name() {
			phases[ev.Name] = true
		}
	}
	if !phases["osr-herd"] || !phases["osr-transfer"] {
		t.Errorf("OSR commit emitted phases %v, want osr-herd and osr-transfer", phases)
	}

	// The transferred CPU finishes inside the S=0 body: some iterations
	// ran at +2 under the old binding, the rest at +1.
	stepToHalt(t, sys)
	ticks := call(t, sys, "get_ticks")
	if ticks < 300 || ticks >= 600 {
		t.Errorf("ticks = %d, want in [300,600) (transfer landed mid-loop)", ticks)
	}

	// Flip the switch back WITHOUT committing. If the stale queued op
	// survived, the drain below would apply it at today's S=1 and
	// rebind behind the user's back; the purge makes it a no-op.
	if err := sys.SetSwitch("S", 1); err != nil {
		t.Fatal(err)
	}
	n, err := sys.RT.DrainDeferred()
	if err != nil {
		t.Fatalf("drain after OSR commit: %v", err)
	}
	if n != 0 {
		t.Fatalf("drain re-applied %d stale op(s), want 0", n)
	}
	if fs.committed != bound {
		t.Error("drain disturbed the OSR-committed binding")
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	// Bound semantics: another full run adds exactly 300 (+1 each).
	call(t, sys, "drive")
	if got := call(t, sys, "get_ticks"); got != ticks+300 {
		t.Errorf("ticks after bound rerun = %d, want %d", got, ticks+300)
	}
}

// TestParkedModeUnchanged: the zero-value options keep legacy
// semantics — no activeness check even with a CPU mid-function, no
// rendezvous, no pokes.
func TestParkedModeUnchanged(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	// Legacy contract: the caller vouches for safety; commit applies.
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("parked-mode commit: %v", err)
	}
	if fs.committed == nil {
		t.Error("parked-mode commit did not rebind")
	}
	s := sys.RT.Stats
	if s.StopMachines+s.TextPokes+s.DeferredPatches+s.ActiveRefusals != 0 {
		t.Errorf("parked mode touched sync machinery: %+v", s)
	}
}
