package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
)

// stepInto steps the system's primary CPU (after StartCall) until the
// PC lands in [lo, hi), failing the test if it never does.
func stepInto(t *testing.T, sys *System, lo, hi uint64) {
	t.Helper()
	c := sys.Machine.CPU
	for i := 0; i < 100_000; i++ {
		if pc := c.PC(); pc >= lo && pc < hi && !c.Halted() {
			return
		}
		if c.Halted() {
			t.Fatalf("CPU halted before reaching [%#x,%#x)", lo, hi)
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("CPU never reached [%#x,%#x)", lo, hi)
}

// stepToHalt runs the primary CPU to the halt stub.
func stepToHalt(t *testing.T, sys *System) {
	t.Helper()
	c := sys.Machine.CPU
	for i := 0; i < 1_000_000 && !c.Halted(); i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Halted() {
		t.Fatal("CPU did not halt")
	}
}

// parkInCommittedVariant commits A=1,B=1, then starts foo on the
// primary CPU and steps it until the PC is inside the committed
// variant body of multi. Returns multi's funcState.
func parkInCommittedVariant(t *testing.T, sys *System) *funcState {
	t.Helper()
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	fs := sys.RT.byName["multi"]
	if fs == nil || fs.committed == nil {
		t.Fatal("multi not committed")
	}
	v := fs.committed
	if err := sys.Machine.StartCall(sys.Machine.CPU, "foo"); err != nil {
		t.Fatal(err)
	}
	stepInto(t, sys, v.Addr, v.Addr+uint64(v.Size))
	return fs
}

// TestCommitRefusedWhileFunctionActive: with a CPU executing inside
// the committed variant, a re-commit under ActiveRefuse must abort
// with ErrFunctionActive, leave the binding untouched, and keep the
// image audit-clean; after the CPU halts, the same commit succeeds.
func TestCommitRefusedWhileFunctionActive(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	was := fs.committed

	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveRefuse})
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	_, err := sys.RT.Commit()
	if !errors.Is(err, ErrFunctionActive) {
		t.Fatalf("commit on active function: err = %v, want ErrFunctionActive", err)
	}
	if !errors.Is(err, ErrCommitAborted) {
		t.Errorf("refusal did not abort the transaction: %v", err)
	}
	if fs.committed != was {
		t.Error("refused commit still changed the binding")
	}
	if sys.RT.Stats.ActiveRefusals != 1 {
		t.Errorf("ActiveRefusals = %d, want 1", sys.RT.Stats.ActiveRefusals)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after refused commit: %v", err)
	}

	stepToHalt(t, sys)
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("commit after quiesce: %v", err)
	}
	if fs.committed == was {
		t.Error("post-quiesce commit did not rebind")
	}
}

// TestRevertRefusedWhileFunctionActive: RevertFunc under ActiveRefuse
// must also respect the activeness check.
func TestRevertRefusedWhileFunctionActive(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveRefuse})
	err := sys.RT.RevertFunc(fs.fd.Generic)
	if !errors.Is(err, ErrFunctionActive) {
		t.Fatalf("revert of active function: err = %v, want ErrFunctionActive", err)
	}
	if fs.committed == nil {
		t.Error("refused revert still tore down the binding")
	}
}

// TestCommitDeferredWhileFunctionActive: under ActiveDefer the commit
// succeeds with the rebinding queued; DrainDeferred applies it once
// the CPU has halted.
func TestCommitDeferredWhileFunctionActive(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	was := fs.committed

	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveDefer})
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatalf("deferring commit: %v", err)
	}
	if res.Deferred != 1 {
		t.Fatalf("res.Deferred = %d, want 1", res.Deferred)
	}
	if got := sys.RT.DeferredCount(); got != 1 {
		t.Fatalf("DeferredCount = %d, want 1", got)
	}
	if fs.committed != was {
		t.Error("deferred commit changed the binding immediately")
	}

	// Still active: a drain must keep it queued.
	if n, err := sys.RT.DrainDeferred(); err != nil || n != 0 {
		t.Fatalf("drain while active: n=%d err=%v, want 0,nil", n, err)
	}

	stepToHalt(t, sys)
	n, err := sys.RT.DrainDeferred()
	if err != nil {
		t.Fatalf("drain after quiesce: %v", err)
	}
	if n != 1 {
		t.Fatalf("drained %d ops, want 1", n)
	}
	if sys.RT.DeferredCount() != 0 {
		t.Error("queue not empty after drain")
	}
	if fs.committed == was || fs.committed == nil {
		t.Error("drain did not apply the deferred rebinding")
	}
	if sys.RT.Stats.DeferredPatches != 1 || sys.RT.Stats.DeferredDrained != 1 {
		t.Errorf("deferred stats = %+v", sys.RT.Stats)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after drain: %v", err)
	}
	// Semantics: the drained B=0 variant no longer calls logmsg.
	logs := call(t, sys, "logs")
	call(t, sys, "foo")
	if call(t, sys, "logs") != logs {
		t.Error("drained binding still runs the B=1 variant")
	}
}

// TestStackActivenessViaReturnAddress: the CPU's PC sits in calc (a
// plain helper), but the return address into multi's committed variant
// is live on its stack — the conservative stack walk must still report
// the variant active.
func TestStackActivenessViaReturnAddress(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	v := fs.committed

	// Step onward until the PC leaves the variant for calc's body; the
	// frame that will return into the variant is now on the stack.
	calcAddr := sys.Machine.MustSymbol("calc")
	stepInto(t, sys, calcAddr, calcAddr+1)

	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeStopMachine, OnActive: ActiveRefuse})
	if !sys.RT.isActive(fs) {
		t.Fatalf("variant [%#x,%#x) not reported active despite a live return address",
			v.Addr, v.Addr+uint64(v.Size))
	}
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); !errors.Is(err, ErrFunctionActive) {
		t.Fatalf("commit with live return address: err = %v, want ErrFunctionActive", err)
	}
	stepToHalt(t, sys)
}

// TestTextPokeModeCommit: commits in ModeTextPoke go through the BRK
// protocol (TextPokes counted), end audit-clean with no residual BRK,
// and preserve commit semantics.
func TestTextPokeModeCommit(t *testing.T) {
	sys := buildFig2(t)
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeTextPoke})
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 0})
	if sys.RT.Stats.TextPokes == 0 {
		t.Fatal("ModeTextPoke commit performed no pokes")
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after poke-mode commit: %v", err)
	}
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 || call(t, sys, "logs") != 0 {
		t.Error("poke-mode commit broke variant semantics")
	}
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after poke-mode revert: %v", err)
	}
}

// TestAuditRejectsResidualBRK: a BRK instruction surviving in a site
// the runtime believes patched is exactly what a torn poke would leave
// behind; the auditor must name it.
func TestAuditRejectsResidualBRK(t *testing.T) {
	sys := buildFig2(t)
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	var st *siteState
	for _, sites := range sys.RT.sites {
		for _, s := range sites {
			if s.patched {
				st = s
			}
		}
	}
	if st == nil {
		t.Fatal("no patched site to corrupt")
	}
	// Simulate a stranded poke: BRK in memory AND in the shadow, so the
	// shadow-compare passes and the code check must catch it.
	brk := []byte{byte(isa.BRK)}
	if err := sys.Machine.Mem.WriteForce(st.desc.Addr, brk); err != nil {
		t.Fatal(err)
	}
	st.current[0] = byte(isa.BRK)
	err := sys.RT.Audit()
	if err == nil || !strings.Contains(err.Error(), "residual BRK") {
		t.Fatalf("audit of BRK-poisoned site: %v, want residual BRK error", err)
	}
}

// TestParkedModeUnchanged: the zero-value options keep legacy
// semantics — no activeness check even with a CPU mid-function, no
// rendezvous, no pokes.
func TestParkedModeUnchanged(t *testing.T) {
	sys := buildFig2(t)
	fs := parkInCommittedVariant(t, sys)
	if err := sys.SetSwitch("B", 0); err != nil {
		t.Fatal(err)
	}
	// Legacy contract: the caller vouches for safety; commit applies.
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("parked-mode commit: %v", err)
	}
	if fs.committed == nil {
		t.Error("parked-mode commit did not rebind")
	}
	s := sys.RT.Stats
	if s.StopMachines+s.TextPokes+s.DeferredPatches+s.ActiveRefusals != 0 {
		t.Errorf("parked mode touched sync machinery: %+v", s)
	}
}
