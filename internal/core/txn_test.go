package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mem"
)

// snapshotExec captures every executable byte of the machine, so tests
// can assert a rolled-back image is byte-identical to its pre-commit
// state.
func snapshotExec(t *testing.T, sys *System) map[uint64][]byte {
	t.Helper()
	snap := make(map[uint64][]byte)
	for _, r := range sys.Machine.Mem.Regions() {
		if r.Prot&mem.Exec == 0 {
			continue
		}
		buf := make([]byte, r.Len)
		if err := sys.Machine.Mem.Read(r.Addr, buf); err != nil {
			t.Fatalf("snapshot read %#x: %v", r.Addr, err)
		}
		snap[r.Addr] = buf
	}
	return snap
}

func assertExecEqual(t *testing.T, sys *System, snap map[uint64][]byte, when string) {
	t.Helper()
	for addr, want := range snap {
		got := make([]byte, len(want))
		if err := sys.Machine.Mem.Read(addr, got); err != nil {
			t.Fatalf("%s: read %#x: %v", when, addr, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: text at %#x differs (byte +%d: got %#x want %#x)",
					when, addr, i, got[i], want[i])
			}
		}
	}
}

// TestCommitAbortRollsBackImage injects a persistent protect fault
// into the middle of a multi-site commit and asserts the text image
// comes back byte-identical, the logical state unwinds, and the audit
// passes.
func TestCommitAbortRollsBackImage(t *testing.T) {
	sys := buildFig2(t)
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("B", 1); err != nil {
		t.Fatal(err)
	}
	pre := snapshotExec(t, sys)

	// The second protection flip of the commit fails hard (the first
	// patch's RW flip succeeds, so real bytes have landed by then).
	plan := faultinject.Exact(faultinject.Point{Kind: faultinject.KindProtect, Op: 2})
	plan.Attach(sys.Machine)
	defer faultinject.Detach(sys.Machine)

	res, err := sys.RT.Commit()
	if err == nil {
		t.Fatal("commit with a persistent protect fault succeeded")
	}
	if !errors.Is(err, ErrCommitAborted) {
		t.Fatalf("error does not wrap ErrCommitAborted: %v", err)
	}
	if res.Committed != 0 || res.Generic != 0 {
		t.Fatalf("aborted commit reported work: %+v", res)
	}
	assertExecEqual(t, sys, pre, "after abort")
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after rollback: %v", err)
	}
	if sys.RT.Stats.CommitAborts != 1 {
		t.Fatalf("CommitAborts = %d, want 1", sys.RT.Stats.CommitAborts)
	}
	// The program still runs on generic dispatch.
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 || call(t, sys, "logs") != 1 {
		t.Fatal("program broken after rollback")
	}

	// With the plan exhausted, the same commit now succeeds.
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("retried commit: %v", err)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after committed retry: %v", err)
	}
}

// TestTransientFaultRetriesAndSucceeds arms a transient write tear:
// the commit must repair the torn site, retry, and complete without
// surfacing an error.
func TestTransientFaultRetriesAndSucceeds(t *testing.T) {
	sys := buildFig2(t)
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("B", 1); err != nil {
		t.Fatal(err)
	}
	cyclesBefore := sys.Machine.CPU.Cycles()

	plan := faultinject.Exact(
		faultinject.Point{Kind: faultinject.KindWriteTear, Op: 0, Tear: 2, Transient: true},
	)
	plan.Attach(sys.Machine)
	defer faultinject.Detach(sys.Machine)

	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("commit with transient tear: %v", err)
	}
	if plan.Stats.WriteTears != 1 {
		t.Fatalf("tear fired %d times, want 1", plan.Stats.WriteTears)
	}
	if sys.RT.Stats.CommitRetries == 0 {
		t.Fatal("no retry recorded for the transient fault")
	}
	if sys.RT.Stats.CommitAborts != 0 {
		t.Fatalf("transient fault aborted the commit (aborts=%d)", sys.RT.Stats.CommitAborts)
	}
	// Retry backoff must charge simulated time — only when faults fire.
	if sys.Machine.CPU.Cycles() == cyclesBefore {
		t.Fatal("retry backoff advanced no cycles")
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after retried commit: %v", err)
	}
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 {
		t.Fatal("committed variant broken after retried patch")
	}
}

// TestDroppedFlushIsReflushed arms a dropped icache shootdown and
// checks the commit's verify pass re-broadcasts it.
func TestDroppedFlushIsReflushed(t *testing.T) {
	sys := buildFig2(t)
	// Warm the primary CPU's icache over the patch targets by running
	// the generic path first. PrologueOnly keeps the commit down to a
	// single patch (and so a single flush): in the tiny test program
	// all patch targets share one text page, and any later flush of
	// that page would mask the dropped one — exactly the coverage this
	// test must avoid.
	sys.RT.PrologueOnly = true
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "foo")

	plan := faultinject.Exact(
		faultinject.Point{Kind: faultinject.KindDropFlush, Op: 0, CPU: 0, Transient: true},
	)
	plan.Attach(sys.Machine)
	defer faultinject.Detach(sys.Machine)

	if _, err := sys.RT.Commit(); err != nil {
		t.Fatalf("commit with dropped flush: %v", err)
	}
	if plan.Stats.DropFlush != 1 {
		t.Fatalf("drop-flush fired %d times, want 1", plan.Stats.DropFlush)
	}
	if sys.RT.Stats.FlushRetries == 0 {
		t.Fatal("dropped shootdown was not re-broadcast")
	}
	if sys.Machine.ICacheStale(0, ^uint64(0)) {
		t.Fatal("stale icache lines survive the verify pass")
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestRevertContinuesPastFailures arms one persistent fault and checks
// Revert still restores every other function, reporting the single
// failure via errors.Join (the old code stopped at the first error).
func TestRevertContinuesPastFailures(t *testing.T) {
	src := `
		multiverse int A;
		long n;
		multiverse void f1(void) { if (A) { n++; } }
		multiverse void f2(void) { if (A) { n++; } }
		multiverse void f3(void) { if (A) { n++; } }
		void foo(void) { f1(); f2(); f3(); }
	`
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "multi.mvc", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	committed := snapshotExec(t, sys)

	// Fail the first protection flip of the revert, persistently: f1's
	// first site revert aborts and rolls back, f2 and f3 must still
	// revert.
	plan := faultinject.Exact(faultinject.Point{Kind: faultinject.KindProtect, Op: 0})
	plan.Attach(sys.Machine)
	defer faultinject.Detach(sys.Machine)

	err = sys.RT.Revert()
	if err == nil {
		t.Fatal("revert with a persistent fault reported success")
	}
	if !errors.Is(err, ErrCommitAborted) {
		t.Fatalf("revert error does not wrap ErrCommitAborted: %v", err)
	}
	if !strings.Contains(err.Error(), `"f1"`) {
		t.Fatalf("revert error does not name the failed function: %v", err)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after partial revert: %v", err)
	}

	// f1 rolled back to its committed binding; f2/f3 reverted. A clean
	// Revert (plan exhausted) must now fully restore the image, and a
	// Commit restores the committed snapshot.
	if err := sys.RT.Revert(); err != nil {
		t.Fatalf("second revert: %v", err)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit after full revert: %v", err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	assertExecEqual(t, sys, committed, "after recommit")
}

// TestFaultMetadataSurvivesCorePaths checks errors.As extracts both
// the injector's fault and the architectural mem.Fault from a commit
// error that crossed platform, memory and runtime layers.
func TestFaultMetadataSurvivesCorePaths(t *testing.T) {
	sys := buildFig2(t)
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.Exact(faultinject.Point{Kind: faultinject.KindProtect, Op: 0})
	plan.Attach(sys.Machine)
	defer faultinject.Detach(sys.Machine)

	_, err := sys.RT.Commit()
	if err == nil {
		t.Fatal("commit succeeded")
	}
	var inj *faultinject.Fault
	if !errors.As(err, &inj) {
		t.Fatalf("errors.As found no *faultinject.Fault in %v", err)
	}
	if inj.Point.Kind != faultinject.KindProtect {
		t.Fatalf("fault kind = %v, want protect", inj.Point.Kind)
	}
	if inj.FaultTransient() {
		t.Fatal("persistent fault claims to be transient")
	}
}

// TestProtectFaultOnUnmappedWrapsMemFault checks the typed-fault
// satellite: Protect on an unmapped range yields a *mem.Fault through
// errors.As, with the faulting page address.
func TestProtectFaultOnUnmappedWrapsMemFault(t *testing.T) {
	m := mem.New()
	if err := m.Map(0x1000, 0x1000, mem.RW); err != nil {
		t.Fatal(err)
	}
	err := m.Protect(0x1000, 0x3000, mem.Read) // pages 2 and 3 unmapped
	if err == nil {
		t.Fatal("Protect over unmapped pages succeeded")
	}
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("no *mem.Fault in %v", err)
	}
	if f.Addr != 0x2000 {
		t.Fatalf("fault addr = %#x, want 0x2000", f.Addr)
	}
}

// TestAuditDetectsTamper corrupts a patched site behind the runtime's
// back and checks the auditor reports it.
func TestAuditDetectsTamper(t *testing.T) {
	sys := buildFig2(t)
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RT.Audit(); err != nil {
		t.Fatalf("audit of a clean commit: %v", err)
	}

	// Corrupt one byte of the generic prologue of multi (a JMP rel32
	// after commit) — a torn write the runtime never made.
	gen, ok := sys.RT.FuncByName("multi")
	if !ok {
		t.Fatal("no function multi")
	}
	var b [1]byte
	if err := sys.Machine.Mem.Read(gen+2, b[:]); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := sys.Machine.Mem.WriteForce(gen+2, b[:]); err != nil {
		t.Fatal(err)
	}
	err := sys.RT.Audit()
	if err == nil {
		t.Fatal("audit missed a corrupted prologue")
	}
	if !strings.Contains(err.Error(), "multi") {
		t.Fatalf("audit error does not name the function: %v", err)
	}
}

// TestAuditDetectsStrandedRWPage flips a text page writable outside
// the runtime and checks the protection audit fires.
func TestAuditDetectsStrandedRWPage(t *testing.T) {
	sys := buildFig2(t)
	gen, ok := sys.RT.FuncByName("multi")
	if !ok {
		t.Fatal("no function multi")
	}
	page := gen &^ (mem.PageSize - 1)
	if err := sys.Machine.Mem.Protect(page, mem.PageSize, mem.RW|mem.Exec); err != nil {
		t.Fatal(err)
	}
	err := sys.RT.Audit()
	if err == nil {
		t.Fatal("audit missed a writable text page")
	}
	if !strings.Contains(err.Error(), "writable") {
		t.Fatalf("unexpected audit error: %v", err)
	}
}
