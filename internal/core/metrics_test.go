package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestAttachMetricsEndToEnd drives the scrape path: build, attach,
// commit, run, then check that the Prometheus exposition carries the
// commit-latency histogram and per-function residency series the
// issue's acceptance criteria name.
func TestAttachMetricsEndToEnd(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "m", Text: traceProgram})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	mm := AttachMetrics(reg, sys.Machine, sys.RT)
	if mm == nil || sys.RT.metrics != mm {
		t.Fatal("AttachMetrics did not install the bundle on the runtime")
	}

	if err := sys.SetSwitch("feature_enabled", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.Machine.CallNamed("handle_request"); err != nil {
			t.Fatal(err)
		}
	}

	lat := mm.commitLatency.Snapshot()
	if lat.Count != 1 {
		t.Fatalf("commit latency observations = %d, want 1", lat.Count)
	}
	if lat.Sum == 0 {
		t.Error("commit latency modeled as zero cycles; protect/flush/site costs not accounted")
	}
	if got := reg.CounterTotal("mv_commits_total"); got != 1 {
		t.Errorf("mv_commits_total = %d, want 1", got)
	}
	if got := reg.CounterTotal("mv_instructions_total"); got == 0 {
		t.Error("mv_instructions_total = 0 after running guest code")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE mv_commit_latency_cycles histogram",
		"mv_commit_latency_cycles_bucket{le=\"+Inf\"} 1",
		"mv_variant_residency_cycles{function=\"process\",variant=\"process.variant1\"}",
		"mv_variant_residency_cycles{function=\"process\",variant=\"generic\"}",
		"mv_decode_hit_ratio",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q\n%s", want, prom)
		}
	}

	// The open residency interval must be folded in at scrape time:
	// after 10 calls the variant binding has accumulated real cycles.
	snap := reg.Snapshot()
	fam := snap.Find("mv_variant_residency_cycles")
	if fam == nil {
		t.Fatal("snapshot missing mv_variant_residency_cycles")
	}
	var variantCycles float64
	for _, s := range fam.Series {
		if s.Labels["function"] == "process" && s.Labels["variant"] == "process.variant1" {
			variantCycles = *s.Value
		}
	}
	if variantCycles == 0 {
		t.Error("process.variant1 residency is zero while the binding is live")
	}
}

// TestResidencyClosesIntervalsOnRebind checks the interval bookkeeping
// across commit → revert → commit transitions.
func TestResidencyClosesIntervalsOnRebind(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "m", Text: traceProgram})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	mm := AttachMetrics(reg, sys.Machine, sys.RT)

	read := func(variant string) uint64 {
		snap := reg.Snapshot()
		fam := snap.Find("mv_variant_residency_cycles")
		for _, s := range fam.Series {
			if s.Labels["function"] == "process" && s.Labels["variant"] == variant {
				return uint64(*s.Value)
			}
		}
		return 0
	}

	if err := sys.SetSwitch("feature_enabled", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sys.Machine.CallNamed("handle_request"); err != nil {
			t.Fatal(err)
		}
	}
	boundCycles := read("process.variant1")
	if boundCycles == 0 {
		t.Fatal("no residency accumulated while bound")
	}

	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sys.Machine.CallNamed("handle_request"); err != nil {
			t.Fatal(err)
		}
	}
	// The variant interval is closed: more execution must not grow it.
	if after := read("process.variant1"); after != boundCycles {
		t.Errorf("closed variant residency moved: %d -> %d", boundCycles, after)
	}
	if read("generic") == 0 {
		t.Error("no generic residency accumulated after revert")
	}
	if mm.commitLatency.Snapshot().Count != 1 {
		t.Errorf("revert must not observe into the commit-latency histogram")
	}
}

// TestStateReportMetricsSection checks that the report gains a metrics
// line only when a registry is attached — the detached rendering is
// pinned byte-for-byte by report_test.go.
func TestStateReportMetricsSection(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "m", Text: traceProgram})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := sys.RT.StateReport(); strings.Contains(got, "mtrc ") {
		t.Fatalf("detached report mentions metrics:\n%s", got)
	}

	AttachMetrics(metrics.New(), sys.Machine, sys.RT)
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := sys.RT.StateReport(); !strings.Contains(got, "mtrc commit-latency{count=1") {
		t.Fatalf("attached report missing metrics section:\n%s", got)
	}
}

// TestBuildSystemDefaultMetricsRegistry checks the global auto-attach
// hook mvbench and the difftests rely on, including aggregation of two
// systems into one registry.
func TestBuildSystemDefaultMetricsRegistry(t *testing.T) {
	reg := metrics.New()
	SetDefaultMetricsRegistry(reg)
	defer SetDefaultMetricsRegistry(nil)

	var systems []*System
	for i := 0; i < 2; i++ {
		sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "m", Text: traceProgram})
		if err != nil {
			t.Fatal(err)
		}
		if sys.RT.metrics == nil {
			t.Fatal("default registry was not attached by BuildSystem")
		}
		systems = append(systems, sys)
	}
	for _, sys := range systems {
		if _, err := sys.RT.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Machine.CallNamed("handle_request"); err != nil {
			t.Fatal(err)
		}
	}
	// Readers from both systems sum into one series.
	if got := reg.CounterTotal("mv_commits_total"); got != 2 {
		t.Errorf("aggregated mv_commits_total = %d, want 2", got)
	}
	one := systems[0].Machine.TotalStats().Instructions
	two := systems[1].Machine.TotalStats().Instructions
	if got := reg.CounterTotal("mv_instructions_total"); got != one+two {
		t.Errorf("aggregated mv_instructions_total = %d, want %d", got, one+two)
	}
}
