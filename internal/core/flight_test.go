package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestAbortFlightDumpShowsSpanTree is the flight recorder's acceptance
// path: a text-poke commit whose protect flip fails persistently must
// abort, and the recorder's failure dump must hold the whole causal
// story on one commit span — herding rendezvous, poke phases, journal
// rollback, then the abort — without any tracer having been attached.
func TestAbortFlightDumpShowsSpanTree(t *testing.T) {
	sys := buildFig2(t)
	rec := trace.NewRecorder(0)
	sys.AttachFlightRecorder(rec)
	sys.RT.SetCommitOptions(CommitOptions{Mode: ModeTextPoke})
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("B", 1); err != nil {
		t.Fatal(err)
	}

	plan := faultinject.Exact(faultinject.Point{Kind: faultinject.KindProtect, Op: 2})
	plan.Attach(sys.Machine)
	defer faultinject.Detach(sys.Machine)

	_, err := sys.RT.Commit()
	if !errors.Is(err, ErrCommitAborted) {
		t.Fatalf("want ErrCommitAborted, got %v", err)
	}

	d := rec.LastDump()
	if d == nil {
		t.Fatal("abort did not leave a flight dump")
	}
	if d.Reason != "commit-abort" {
		t.Fatalf("dump reason = %q, want commit-abort", d.Reason)
	}

	evs := make([]trace.Event, len(d.Events))
	for i, fe := range d.Events {
		ev, err := fe.Event()
		if err != nil {
			t.Fatal(err)
		}
		evs[i] = ev
	}

	// Everything hangs off the aborted commit's span.
	span := uint64(0)
	for _, ev := range evs {
		if ev.Kind == trace.KindCommitAbort {
			span = ev.Span
		}
	}
	if span == 0 {
		t.Fatalf("no spanned CommitAbort in dump: %+v", d.Events)
	}

	// The span tree reads rendezvous -> poke phase -> rollback -> abort.
	order := map[trace.Kind]int{}
	var phases []string
	for i, ev := range evs {
		if ev.Span != span {
			continue
		}
		if _, seen := order[ev.Kind]; !seen {
			order[ev.Kind] = i
		}
		if ev.Kind == trace.KindPhaseBegin {
			phases = append(phases, ev.Name)
		}
	}
	for _, k := range []trace.Kind{
		trace.KindCommitBegin, trace.KindRendezvous, trace.KindPokePhase,
		trace.KindRollback, trace.KindCommitAbort,
	} {
		if _, ok := order[k]; !ok {
			t.Fatalf("span %d is missing a %s event: %+v", span, k.Name(), d.Events)
		}
	}
	if !(order[trace.KindRendezvous] < order[trace.KindPokePhase] &&
		order[trace.KindPokePhase] < order[trace.KindRollback] &&
		order[trace.KindRollback] < order[trace.KindCommitAbort]) {
		t.Fatalf("span events out of causal order: %+v", d.Events)
	}
	joined := strings.Join(phases, " ")
	for _, want := range []string{"herd", "poke", "rollback"} {
		if !strings.Contains(joined, want) {
			t.Errorf("span phases %q missing %q", joined, want)
		}
	}
}

// TestOpSpansAreDistinct: consecutive runtime operations get distinct,
// monotonically increasing span IDs, and events outside any operation
// stay unspanned.
func TestOpSpansAreDistinct(t *testing.T) {
	sys := buildFig2(t)
	rec := trace.NewRecorder(0)
	sys.AttachFlightRecorder(rec)

	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}

	var spans []uint64
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindCommitBegin, trace.KindRevertBegin:
			spans = append(spans, ev.Span)
		}
	}
	if len(spans) < 2 {
		t.Fatalf("expected a commit and a revert span, got %v", spans)
	}
	seen := map[uint64]bool{}
	last := uint64(0)
	for _, s := range spans {
		if s == 0 {
			t.Fatal("operation event is unspanned")
		}
		if seen[s] {
			t.Fatalf("span %d reused across operations: %v", s, spans)
		}
		seen[s] = true
		if s <= last {
			t.Fatalf("spans not monotonic: %v", spans)
		}
		last = s
	}
}

// TestWatchdogMetricsEndToEnd drives an alert through the full attach
// chain: runtime event -> watchdog rule -> alert counter -> Prometheus
// exposition.
func TestWatchdogMetricsEndToEnd(t *testing.T) {
	sys := buildFig2(t)
	// A commit always reports committed > 0 functions in A, so this
	// rule deterministically fires once per successful commit.
	wd := trace.NewWatchdog([]trace.WatchdogRule{
		{Name: "test-commit", Kind: trace.KindCommitEnd, Field: 'a', Threshold: 0},
	})
	sys.AttachWatchdog(wd)
	reg := metrics.New()
	AttachWatchdogMetrics(reg, wd)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `mv_watchdog_alerts_total{rule="test-commit"} 0`) {
		t.Fatalf("healthy scrape should expose an explicit zero:\n%s", sb.String())
	}

	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	if !wd.Fired() {
		t.Fatal("watchdog did not observe the commit")
	}
	if a := wd.Alerts()[0]; a.Span == 0 {
		t.Errorf("alert not stamped with the commit span: %+v", a)
	}

	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `mv_watchdog_alerts_total{rule="test-commit"} 1`) {
		t.Fatalf("fired rule not visible in exposition:\n%s", sb.String())
	}
}
