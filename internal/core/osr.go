package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/isa"
	"repro/internal/machine"
)

// On-stack replacement (OSR): committing *into* an active function.
//
// The defer/refuse policies treat a function whose body is live on a
// CPU stack as unpatchable. ActiveOSR instead transfers every live
// frame of the old body to the equivalent point of the target body,
// inside the same transaction as the patch:
//
//   - the topmost frame (a CPU paused inside the body) is herded
//     forward to a loop OSR point whose label the target body also
//     carries, then its PC and SP are rewritten and its spilled slots
//     moved to the target's frame layout;
//   - a waiting frame (the body called out and awaits return) has its
//     on-stack return address rewritten to the matching call OSR point
//     of the target, plus the same slot moves.
//
// Every stack write goes through the undo journal (writeTextDirect)
// and every register rewrite registers an undo closure, so an abort
// anywhere mid-transfer restores a byte- and register-identical
// machine. When no safe mapping exists the operation falls back to the
// deferred queue — prepare runs before any byte is patched, so
// ineligibility defers cleanly instead of aborting.

// osrHerdMaxSteps bounds how many instructions one CPU may be stepped
// toward a mapped loop OSR point. Loop bodies re-reach their back-edge
// every iteration, so the bound only turns a wedged CPU into an error.
const osrHerdMaxSteps = 4096

// osrStackScanWords bounds the conservative cross-check scan; matches
// the machine-level activeness scan bound.
const osrStackScanWords = 8192

// osrMaxFrames bounds the saved-FP chain walk.
const osrMaxFrames = 4096

// osrPlan carries one validated frame-transfer plan from checkActive
// (before any patching) to osrApply (after the prologue patch, same
// transaction).
type osrPlan struct {
	fs      *funcState
	oldLo   uint64 // currently-running body (committed variant or generic)
	oldHi   uint64
	newBase uint64 // target body (variant being committed, or generic on revert)
	oldDesc *OSRFuncDesc
	newDesc *OSRFuncDesc

	herdCycles uint64 // cycles burned herding victims during prepare
}

// osrTransfer is one located live frame of the old body.
type osrTransfer struct {
	oc      machine.OSRCPU
	waiting bool
	wa      uint64 // waiting: stack address of the return-address word
	fp      uint64 // frame base (the FP value of the old function's frame)
	oldPt   *OSRPointDesc
	newPt   *OSRPointDesc
}

// osrPrepare validates that every live frame of fs's current body can
// be transferred to the target body (nil target = the generic), herding
// paused CPUs to mapped loop points on the way. It runs before any
// byte is patched: an error here means the operation falls back to the
// deferred queue, with the image untouched.
func (rt *Runtime) osrPrepare(fs *funcState, target *VariantDesc) (*osrPlan, error) {
	fa, ok := rt.plat.(FrameAccessor)
	if !ok {
		return nil, fmt.Errorf("core: %q: platform exposes no CPU frames", fs.fd.Name)
	}
	p := &osrPlan{fs: fs}
	p.oldLo, p.oldHi = fs.fd.Generic, fs.fd.Generic+fs.fd.Size
	if v := fs.committed; v != nil {
		p.oldLo, p.oldHi = v.Addr, v.Addr+v.Size
	}
	p.newBase = fs.fd.Generic
	if target != nil {
		p.newBase = target.Addr
	}
	p.oldDesc = rt.desc.OSR[p.oldLo]
	p.newDesc = rt.desc.OSR[p.newBase]
	if p.oldDesc == nil || p.newDesc == nil {
		return nil, fmt.Errorf("core: %q: missing OSR metadata", fs.fd.Name)
	}
	// Frame transfer needs a real frame on both sides: FP must base the
	// old frame (to find slots) and the new layout (to re-derive SP).
	if !p.oldDesc.HasFrame || !p.newDesc.HasFrame {
		return nil, fmt.Errorf("core: %q: frameless body cannot take a frame transfer", fs.fd.Name)
	}
	if p.oldDesc.NoScratch || p.newDesc.NoScratch {
		return nil, fmt.Errorf("core: %q: non-standard register discipline", fs.fd.Name)
	}
	// Every slot the target body reads must have a source in the old
	// frame (the cloner preserves Name#Seq keys across variants).
	for key := range p.newDesc.Slots {
		if _, ok := p.oldDesc.Slots[key]; !ok {
			return nil, fmt.Errorf("core: %q: target slot %q has no source in the running frame", fs.fd.Name, key)
		}
	}
	endPhase := rt.phase("osr-herd")
	lat, err := rt.osrHerdAll(p, fa)
	p.herdCycles += lat
	endPhase()
	if err != nil {
		return nil, err
	}
	if _, err := rt.osrLocate(p, fa); err != nil {
		return nil, err
	}
	return p, nil
}

// osrHerdAll steps every CPU paused inside the old body forward until
// it rests on a loop OSR point that maps into the target body (or it
// leaves the body, which needs no topmost transfer). Herding is plain
// forward execution, so it is safe even if the operation later defers
// or aborts. Returns the cycles burned stepping.
func (rt *Runtime) osrHerdAll(p *osrPlan, fa FrameAccessor) (uint64, error) {
	var lat uint64
	for _, oc := range fa.OSRCPUs() {
		c := oc.CPU
		start := c.Cycles()
		for tries := 0; ; tries++ {
			if c.Halted() {
				break
			}
			pc := c.PC()
			if pc < p.oldLo || pc >= p.oldHi {
				break
			}
			if pt := p.oldDesc.PointAt(uint32(pc - p.oldLo)); pt != nil && pt.Kind == codegen.OSRPointLoop &&
				p.newDesc.Point(pt.Label, codegen.OSRPointLoop) != nil {
				break
			}
			if tries >= osrHerdMaxSteps {
				lat += c.Cycles() - start
				return lat, fmt.Errorf("core: %q: cpu %d reached no mapped OSR point after %d steps (pc=%#x)",
					p.fs.fd.Name, oc.Index, osrHerdMaxSteps, pc)
			}
			if err := c.Step(); err != nil {
				if faultTransient(err) {
					continue // spurious fault: nothing retired, retry
				}
				lat += c.Cycles() - start
				return lat, fmt.Errorf("core: %q: cpu %d while herding to an OSR point: %w",
					p.fs.fd.Name, oc.Index, err)
			}
		}
		lat += c.Cycles() - start
	}
	return lat, nil
}

// osrLocate finds every live frame of the old body and pairs it with
// its target OSR point. Topmost frames must already rest on a mapped
// loop point (osrHerdAll ran). Waiting frames are found by walking the
// saved-FP chain — [fp] holds the caller's FP, [fp+8] the return
// address into the caller — which, unlike the conservative scan, never
// mistakes spilled data for a return address. The conservative scan
// still runs as a cross-check: any old-body candidate it reports that
// the chain walk did not explain fails the plan (better to defer than
// to rewrite a frame the walk missed).
func (rt *Runtime) osrLocate(p *osrPlan, fa FrameAccessor) ([]osrTransfer, error) {
	var out []osrTransfer
	name := p.fs.fd.Name
	for _, oc := range fa.OSRCPUs() {
		c := oc.CPU
		sp := c.Reg(isa.SP)
		found := make(map[uint64]bool)

		pc := c.PC()
		if pc >= p.oldLo && pc < p.oldHi {
			pt := p.oldDesc.PointAt(uint32(pc - p.oldLo))
			if pt == nil || pt.Kind != codegen.OSRPointLoop {
				return nil, fmt.Errorf("core: %q: cpu %d paused at %#x, not a loop OSR point", name, oc.Index, pc)
			}
			npt := p.newDesc.Point(pt.Label, codegen.OSRPointLoop)
			if npt == nil {
				return nil, fmt.Errorf("core: %q: loop label %d has no point in the target body", name, pt.Label)
			}
			fp := c.Reg(codegen.FP)
			// At a loop point the expression stack is empty, so SP sits
			// exactly one frame below FP.
			if fp != sp+uint64(p.oldDesc.FrameSize) {
				return nil, fmt.Errorf("core: %q: cpu %d frame geometry mismatch (fp=%#x sp=%#x frame=%d)",
					name, oc.Index, fp, sp, p.oldDesc.FrameSize)
			}
			out = append(out, osrTransfer{oc: oc, fp: fp, oldPt: pt, newPt: npt})
		}

		// Saved-FP chain walk for waiting frames.
		readWord := func(addr uint64) (uint64, error) {
			var b [8]byte
			if err := rt.plat.Read(addr, b[:]); err != nil {
				return 0, err
			}
			return binary.LittleEndian.Uint64(b[:]), nil
		}
		f := c.Reg(codegen.FP)
		for n := 0; n < osrMaxFrames; n++ {
			if f < sp || f+16 > oc.StackTop || f&7 != 0 {
				break
			}
			ra, err := readWord(f + 8)
			if err != nil || ra == oc.HaltAddr {
				break
			}
			caller, err := readWord(f)
			if err != nil {
				break
			}
			if ra >= p.oldLo && ra < p.oldHi {
				wa := f + 8
				pt := p.oldDesc.PointAt(uint32(ra - p.oldLo))
				if pt == nil || pt.Kind != codegen.OSRPointCall {
					return nil, fmt.Errorf("core: %q: cpu %d waits at %#x, not a call OSR point", name, oc.Index, ra)
				}
				if pt.RegMsk != 0 {
					return nil, fmt.Errorf("core: %q: call point %d holds live temporaries across the call", name, pt.Label)
				}
				npt := p.newDesc.Point(pt.Label, codegen.OSRPointCall)
				if npt == nil {
					return nil, fmt.Errorf("core: %q: call label %d has no point in the target body", name, pt.Label)
				}
				if npt.RegMsk != 0 {
					return nil, fmt.Errorf("core: %q: target call point %d holds live temporaries", name, pt.Label)
				}
				// A waiting frame resumes with SP = wa+8: the target
				// layout must fit inside the old one.
				if p.newDesc.FrameSize > p.oldDesc.FrameSize {
					return nil, fmt.Errorf("core: %q: target frame (%d bytes) outgrows the waiting frame (%d bytes)",
						name, p.newDesc.FrameSize, p.oldDesc.FrameSize)
				}
				// Cross-derive the frame base: the callee's saved-FP word
				// must agree with the call-site geometry (RegMsk==0 means
				// nothing was pushed between frame setup and the call).
				if caller != wa+8+uint64(p.oldDesc.FrameSize) {
					return nil, fmt.Errorf("core: %q: cpu %d waiting-frame base mismatch (saved fp %#x, derived %#x)",
						name, oc.Index, caller, wa+8+uint64(p.oldDesc.FrameSize))
				}
				found[wa] = true
				out = append(out, osrTransfer{oc: oc, waiting: true, wa: wa, fp: caller, oldPt: pt, newPt: npt})
			}
			if caller <= f {
				break
			}
			f = caller
		}

		// Cross-check: the conservative scan must not report an old-body
		// return address the chain walk did not explain.
		sites, complete := c.StackReturnSites(oc.StackTop, oc.HaltAddr, osrStackScanWords)
		if !complete {
			return nil, fmt.Errorf("core: %q: cpu %d stack scan truncated; cannot enumerate frames", name, oc.Index)
		}
		for _, s := range sites {
			if s.Value >= p.oldLo && s.Value < p.oldHi && !found[s.Addr] {
				return nil, fmt.Errorf("core: %q: cpu %d has an unexplained candidate return address %#x at %#x",
					name, oc.Index, s.Value, s.Addr)
			}
		}
	}
	return out, nil
}

// osrApply performs the frame transfers of a prepared plan. It runs
// after the patch (same transaction): victims may have drifted since
// prepare (poke-mode herding steps CPUs out of patch windows), so the
// frames are herded and located afresh. An error aborts the enclosing
// transaction, which restores every rewritten frame.
func (rt *Runtime) osrApply(p *osrPlan) error {
	fa, ok := rt.plat.(FrameAccessor)
	if !ok {
		return fmt.Errorf("core: %q: platform exposes no CPU frames", p.fs.fd.Name)
	}
	endPhase := rt.phase("osr-transfer")
	defer endPhase()
	lat, err := rt.osrHerdAll(p, fa)
	rt.metrics.observeOSR(p.herdCycles + lat)
	if err != nil {
		return err
	}
	xfers, err := rt.osrLocate(p, fa)
	if err != nil {
		return err
	}
	for _, x := range xfers {
		if err := rt.osrTransferFrame(p, x); err != nil {
			return err
		}
	}
	return nil
}

// osrTransferFrame rewrites one frame: slot moves through the journal,
// then the control state (PC+SP for a topmost frame, the on-stack
// return address for a waiting one).
func (rt *Runtime) osrTransferFrame(p *osrPlan, x osrTransfer) error {
	name := p.fs.fd.Name
	// Any rollback from here on tears this frame back down.
	rt.noteUndo(func() { rt.Stats.OSRRollbacks++ })

	// Move slots in deterministic order, reading every source before
	// writing any destination — the two layouts overlap in the frame.
	keys := make([]string, 0, len(p.newDesc.Slots))
	for k := range p.newDesc.Slots {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type move struct {
		dst uint64
		val [8]byte
	}
	var moves []move
	for _, key := range keys {
		noff, ooff := p.newDesc.Slots[key], p.oldDesc.Slots[key]
		if noff == ooff {
			continue
		}
		var val [8]byte
		if err := rt.plat.Read(x.fp+uint64(int64(ooff)), val[:]); err != nil {
			return fmt.Errorf("core: %q: reading slot %q: %w", name, key, err)
		}
		moves = append(moves, move{dst: x.fp + uint64(int64(noff)), val: val})
	}
	for _, mv := range moves {
		var old [8]byte
		if err := rt.plat.Read(mv.dst, old[:]); err != nil {
			return fmt.Errorf("core: %q: reading slot destination %#x: %w", name, mv.dst, err)
		}
		if old == mv.val {
			continue
		}
		if err := rt.writeTextDirect(mv.dst, old[:], mv.val[:]); err != nil {
			return fmt.Errorf("core: %q: moving slot to %#x: %w", name, mv.dst, err)
		}
	}

	newAddr := p.newBase + uint64(x.newPt.Off)
	if x.waiting {
		var old, nb [8]byte
		if err := rt.plat.Read(x.wa, old[:]); err != nil {
			return fmt.Errorf("core: %q: reading return address at %#x: %w", name, x.wa, err)
		}
		binary.LittleEndian.PutUint64(nb[:], newAddr)
		if err := rt.writeTextDirect(x.wa, old[:], nb[:]); err != nil {
			return fmt.Errorf("core: %q: rewriting return address at %#x: %w", name, x.wa, err)
		}
	} else {
		c := x.oc.CPU
		oldPC, oldSP := c.PC(), c.Reg(isa.SP)
		rt.noteUndo(func() {
			c.SetPC(oldPC)
			c.SetReg(isa.SP, oldSP)
		})
		c.SetPC(newAddr)
		c.SetReg(isa.SP, x.fp-uint64(p.newDesc.FrameSize))
	}
	rt.Stats.OSRTransfers++
	return nil
}
