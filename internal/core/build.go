package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/obj"
)

// Source is one MVC translation unit.
type Source struct {
	Name string
	Text string
}

// BuildImage compiles MVC sources through the full multiverse pipeline
// (parse, check, variant generation, codegen, link).
func BuildImage(opts GenOptions, srcs ...Source) (*link.Image, *GenReport, error) {
	if len(srcs) == 0 {
		return nil, nil, fmt.Errorf("core: no sources")
	}
	var objs []*obj.Object
	total := &GenReport{}
	for _, src := range srcs {
		u, err := cc.Parse(src.Name, src.Text)
		if err != nil {
			return nil, nil, err
		}
		if err := cc.Check(u); err != nil {
			return nil, nil, err
		}
		o, rep, err := CompileUnit(u, opts)
		if err != nil {
			return nil, nil, err
		}
		total.Functions = append(total.Functions, rep.Functions...)
		total.Warnings = append(total.Warnings, rep.Warnings...)
		objs = append(objs, o)
	}
	img, err := link.Link(objs...)
	if err != nil {
		return nil, nil, err
	}
	return img, total, nil
}

// System bundles a loaded machine with its multiverse runtime — the
// common setup of every example and benchmark.
type System struct {
	Machine *machine.Machine
	RT      *Runtime
	Report  *GenReport
}

// BuildSystem compiles, links, loads and attaches a user-space
// runtime. Machine options (cost model, W^X) may be supplied.
func BuildSystem(opts GenOptions, machOpts []machine.Option, srcs ...Source) (*System, error) {
	img, rep, err := BuildImage(opts, srcs...)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(img, machOpts...)
	if err != nil {
		return nil, err
	}
	rt, err := NewRuntime(img, &UserPlatform{M: m})
	if err != nil {
		return nil, err
	}
	s := &System{Machine: m, RT: rt, Report: rep}
	if defaultTraceCollector != nil {
		s.AttachTracer(defaultTraceCollector)
	}
	if defaultMetricsRegistry != nil {
		AttachMetrics(defaultMetricsRegistry, m, rt)
	}
	// After the tracer: AttachTracer replaces rt.Tracer, the recorder
	// tees onto it.
	if defaultFlightRecorder != nil {
		s.AttachFlightRecorder(defaultFlightRecorder)
	}
	return s, nil
}

// SetSwitch writes a value into a configuration switch by name.
// Like a plain C assignment, it does not commit anything.
func (s *System) SetSwitch(name string, v int64) error {
	addr, ok := s.RT.VarByName(name)
	if !ok {
		return fmt.Errorf("core: no configuration switch %q", name)
	}
	var vd *VarDesc
	for i := range s.RT.desc.Vars {
		if s.RT.desc.Vars[i].Addr == addr {
			vd = &s.RT.desc.Vars[i]
		}
	}
	return s.Machine.Mem.WriteUint(addr, vd.Width, uint64(v))
}

// SetFnPtr assigns a function's address to a function-pointer switch.
func (s *System) SetFnPtr(switchName, funcName string) error {
	addr, ok := s.RT.VarByName(switchName)
	if !ok {
		return fmt.Errorf("core: no configuration switch %q", switchName)
	}
	fn, err := s.Machine.Symbol(funcName)
	if err != nil {
		return err
	}
	return s.Machine.Mem.WriteUint(addr, 8, fn)
}
