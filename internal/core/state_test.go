package core

import (
	"errors"
	"reflect"
	"repro/internal/machine"
	"testing"
)

// TestRuntimeFieldsClassifiedForSnapshot is the snapshot-completeness
// gate for the runtime: every field of Runtime and of the per-binding
// state structs must be explicitly serialized, derivable, or host
// wiring. A field added without a disposition fails here instead of
// silently never reaching RuntimeState.
func TestRuntimeFieldsClassifiedForSnapshot(t *testing.T) {
	serialized := map[string]bool{
		"funcs":         true, // bindings → FuncBindingState
		"fnptrs":        true, // via ptrOrder → FnPtrBindingState
		"ptrOrder":      true,
		"deferredKind":  true, // → DeferredOpState
		"deferredOrder": true,
		"Stats":         true,
		"opSeq":         true,
	}
	derived := map[string]bool{
		// Rebuilt by NewRuntime from the image descriptors; ImportState
		// cross-checks names and addresses against the snapshot.
		"desc": true, "varsByAddr": true, "byGeneric": true, "byName": true,
		// Per-site current/patched bytes are re-read from the restored
		// memory image by ImportState.
		"sites": true,
		// tx must be nil at export (enforced) and at import.
		"tx": true,
	}
	hostWiring := map[string]bool{
		"plat":    true,                                  // the platform wraps the (separately restored) machine
		"Options": true,                                  // commit-mode policy, chosen by the harness
		"Tracer":  true, "flight": true, "metrics": true, // observability hooks
		"DisableInlining": true, "PrologueOnly": true, // ablation policy knobs
	}
	typ := reflect.TypeOf(Runtime{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if serialized[name] || derived[name] || hostWiring[name] {
			continue
		}
		t.Errorf("Runtime.%s is not classified for snapshots: extend ExportState/ImportState "+
			"(and the wire format in internal/snapshot) or record its disposition here", name)
	}

	// The binding structs mirror into *State types field by field; a
	// new field here must appear there (or be derivable like siteState's
	// current/patched, which ImportState re-reads from memory).
	for _, c := range []struct {
		typ   reflect.Type
		known map[string]bool
	}{
		{reflect.TypeOf(funcState{}), map[string]bool{
			"fd": true, "committed": true, "savedPrologue": true, "prologueOn": true}},
		{reflect.TypeOf(fnptrState{}), map[string]bool{
			"vd": true, "committed": true, "target": true}},
		{reflect.TypeOf(siteState{}), map[string]bool{
			"desc": true, "size": true, "original": true, "current": true, "patched": true}},
	} {
		for i := 0; i < c.typ.NumField(); i++ {
			name := c.typ.Field(i).Name
			if !c.known[name] {
				t.Errorf("%s.%s has no snapshot disposition: extend core.RuntimeState "+
					"(or derive it in ImportState) and update this test", c.typ.Name(), name)
			}
		}
	}
}

// TestRuntimeStateRoundTrip exports a runtime mid-life (committed
// function, pending deferred op) and imports it into a second runtime
// over the same machine, which must then render an identical state
// report and identical re-export.
func TestRuntimeStateRoundTrip(t *testing.T) {
	sys := buildFig2(t)
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 0})
	call(t, sys, "foo")

	st, err := sys.RT.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the restore order: a fresh machine from the same image
	// (so NewRuntime's site verification sees the original call
	// instructions), then the memory image, then the runtime state —
	// which re-derives per-site patch status from the restored text.
	m2, err := machine.New(sys.Machine.Image)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(m2.Image, &UserPlatform{M: m2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Mem.ImportPages(sys.Machine.Mem.ExportPages()); err != nil {
		t.Fatal(err)
	}
	m2.Mem.SetStats(sys.Machine.Mem.Stats)
	if err := rt2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if got, want := rt2.StateReport(), sys.RT.StateReport(); got != want {
		t.Fatalf("state reports diverged after import:\ngot:\n%s\nwant:\n%s", got, want)
	}
	st2, err := rt2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("re-export diverged:\nfirst:  %+v\nsecond: %+v", st, st2)
	}
	// The imported runtime must keep operating: revert cleanly.
	if err := rt2.Revert(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeStateImportRejectsMismatch(t *testing.T) {
	sys := buildFig2(t)
	st, err := sys.RT.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	other, err := BuildSystem(GenOptions{}, nil, Source{Name: "other.mvc", Text: `
		multiverse int X;
		multiverse void g(void) { if (X) {} }
		void use(void) { g(); }
	`})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RT.ImportState(st); err == nil {
		t.Fatal("imported runtime state across images")
	}

	bad := st
	bad.Funcs = append([]FuncBindingState(nil), st.Funcs...)
	bad.Funcs[0].CommittedAddr = 0xdead_beef
	if err := sys.RT.ImportState(bad); err == nil {
		t.Fatal("imported a binding to an unknown variant address")
	}
}

// TestExportStateNotQuiescedIsTyped pins the supervisor contract: a
// mid-transaction export fails with the retryable ErrNotQuiesced
// sentinel, matchable through errors.Is, not a one-off string.
func TestExportStateNotQuiescedIsTyped(t *testing.T) {
	sys := buildFig2(t)
	sys.RT.tx = &txn{}
	defer func() { sys.RT.tx = nil }()
	if _, err := sys.RT.ExportState(); !errors.Is(err, ErrNotQuiesced) {
		t.Fatalf("ExportState inside txn = %v, want errors.Is ErrNotQuiesced", err)
	}
	if err := sys.RT.ImportState(RuntimeState{}); !errors.Is(err, ErrNotQuiesced) {
		t.Fatalf("ImportState inside txn = %v, want errors.Is ErrNotQuiesced", err)
	}
}
