package core

import (
	"strings"
	"testing"
)

// TestEmptyGenericFunctionIsProloguePatchable checks the PadTo
// guarantee: a multiversed function whose generic body would compile
// to a single RET must still be at least one jump long, or the
// prologue patch would clobber the next function.
func TestEmptyGenericFunctionIsProloguePatchable(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "tiny.mvc", Text: `
		multiverse int on;
		long witness;
		multiverse void maybe(void) { if (on) { } }
		void next_function(void) { witness = 42; }
		void caller(void) { maybe(); next_function(); }
	`})
	if err != nil {
		t.Fatal(err)
	}
	// Commit installs a prologue jump over maybe()'s first 5 bytes.
	if err := sys.SetSwitch("on", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	// next_function must be intact.
	if _, err := sys.Machine.CallNamed("caller"); err != nil {
		t.Fatalf("caller after prologue patch: %v", err)
	}
	w, err := sys.Machine.ReadGlobal("witness", 8)
	if err != nil {
		t.Fatal(err)
	}
	if w != 42 {
		t.Errorf("witness = %d; prologue patch damaged the neighbour function", w)
	}
	// Direct call to the (patched) generic also lands in the variant.
	if _, err := sys.Machine.CallNamed("maybe"); err != nil {
		t.Fatalf("calling the patched generic: %v", err)
	}
	// Revert restores the original prologue bytes.
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Machine.CallNamed("caller"); err != nil {
		t.Fatalf("caller after revert: %v", err)
	}
}

// TestTransactionPattern exercises the §2 example: a subsystem lock
// around variable writes and per-variable commit_refs calls, with an
// object-layout translation in between.
func TestTransactionPattern(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "txn.mvc", Text: `
		multiverse int A;
		multiverse int B;
		long layoutVersion;
		long aPath;
		long bPath;
		multiverse void useA(void) { if (A) { aPath++; } }
		multiverse void useB(void) { if (B) { bPath++; } }
		void subsystem_op(void) { useA(); useB(); }
		void translate_objects(void) { layoutVersion++; }
		long versions(void) { return layoutVersion; }
		long as(void) { return aPath; }
		long bs(void) { return bPath; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	aAddr, _ := sys.RT.VarByName("A")
	bAddr, _ := sys.RT.VarByName("B")

	// The transaction: set A, commit_refs(&A); set B, commit_refs(&B);
	// translate_objects().
	setConfig := func(a, b int64) {
		if err := sys.SetSwitch("A", a); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RT.CommitRefs(aAddr); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetSwitch("B", b); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RT.CommitRefs(bAddr); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Machine.CallNamed("translate_objects"); err != nil {
			t.Fatal(err)
		}
	}

	setConfig(1, 0)
	if _, err := sys.Machine.CallNamed("subsystem_op"); err != nil {
		t.Fatal(err)
	}
	setConfig(0, 1)
	if _, err := sys.Machine.CallNamed("subsystem_op"); err != nil {
		t.Fatal(err)
	}

	get := func(name string) uint64 {
		v, err := sys.Machine.CallNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get("as") != 1 || get("bs") != 1 {
		t.Errorf("paths = %d/%d, want 1/1", get("as"), get("bs"))
	}
	if get("versions") != 2 {
		t.Errorf("layout translations = %d, want 2", get("versions"))
	}
}

// TestPrologueOnlyModeIsStillCorrect verifies the §7.4 claim that call
// sites are "a mere optimization": with PrologueOnly the semantics are
// identical, every call routed through the patched generic entry.
func TestPrologueOnlyModeIsStillCorrect(t *testing.T) {
	sys := buildFig2(t)
	sys.RT.PrologueOnly = true
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 1})
	// Flip the variables: bound semantics must hold purely through the
	// prologue jump.
	if err := sys.SetSwitch("A", 0); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 1 || call(t, sys, "logs") != 1 {
		t.Errorf("prologue-only commit not bound: calcs=%d logs=%d",
			call(t, sys, "calcs"), call(t, sys, "logs"))
	}
	if sys.RT.Stats.SitesPatched+sys.RT.Stats.SitesInlined != 0 {
		t.Errorf("prologue-only mode patched call sites: %+v", sys.RT.Stats)
	}
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "foo") // A=0 now takes effect dynamically
	if call(t, sys, "calcs") != 1 {
		t.Error("revert after prologue-only commit broken")
	}
}

// TestDisableInliningStillCorrect: with inlining off, empty variants
// are reached by a direct call instead of being erased — semantics
// unchanged, one call of overhead kept.
func TestDisableInliningStillCorrect(t *testing.T) {
	sys := buildFig2(t)
	sys.RT.DisableInlining = true
	setAndCommit(t, sys, map[string]int64{"A": 0, "B": 0})
	call(t, sys, "foo")
	if call(t, sys, "calcs") != 0 {
		t.Error("A=0 variant executed calc")
	}
	if sys.RT.Stats.SitesInlined != 0 {
		t.Errorf("inlining happened despite DisableInlining: %+v", sys.RT.Stats)
	}
	if sys.RT.Stats.SitesPatched == 0 {
		t.Error("no direct-call patches recorded")
	}
}

// TestRepeatedCommitRevertCycles stresses state bookkeeping.
func TestRepeatedCommitRevertCycles(t *testing.T) {
	sys := buildFig2(t)
	for i := 0; i < 25; i++ {
		a := int64(i % 2)
		b := int64((i / 2) % 2)
		setAndCommit(t, sys, map[string]int64{"A": a, "B": b})
		call(t, sys, "foo")
		if i%3 == 0 {
			if err := sys.RT.Revert(); err != nil {
				t.Fatalf("cycle %d: revert: %v", i, err)
			}
			call(t, sys, "foo")
		}
	}
	// Behaviour check after the storm: dynamic evaluation with A=1,B=1.
	if err := sys.RT.Revert(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("B", 1); err != nil {
		t.Fatal(err)
	}
	before := call(t, sys, "logs")
	call(t, sys, "foo")
	if call(t, sys, "logs") != before+1 {
		t.Error("dynamic behaviour broken after commit/revert cycles")
	}
}

// TestSwitchVariantSpecialization: the grep-style pattern — a
// multiversed dispatch over an enum-mode switch statement collapses to
// the selected case in each variant.
func TestSwitchVariantSpecialization(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "sw.mvc", Text: `
		enum Mode { PLAIN, GZIP, LZ4 };
		multiverse enum Mode codec;
		long plainN;
		long gzipN;
		long lz4N;
		multiverse void compress(void) {
			switch (codec) {
			case PLAIN:
				plainN++;
				break;
			case GZIP:
				gzipN++;
				break;
			case LZ4:
				lz4N++;
				break;
			}
		}
		void write_block(void) { compress(); }
		long plains(void) { return plainN; }
		long gzips(void) { return gzipN; }
		long lz4s(void) { return lz4N; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	// Three enum values -> three variants, no merging.
	if fr := sys.Report.Functions[0]; fr.RawVariants != 3 || fr.MergedVariants != 3 {
		t.Errorf("variants = %+v", fr)
	}
	for v, counter := range map[int64]string{0: "plains", 1: "gzips", 2: "lz4s"} {
		if err := sys.SetSwitch("codec", v); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RT.Commit(); err != nil {
			t.Fatal(err)
		}
		before := call(t, sys, counter)
		call(t, sys, "write_block")
		if got := call(t, sys, counter); got != before+1 {
			t.Errorf("codec=%d: %s = %d, want %d", v, counter, got, before+1)
		}
	}
	// Out-of-domain: generic fallback still behaves (no case matches,
	// switch falls through).
	if err := sys.SetSwitch("codec", 9); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RT.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generic != 1 {
		t.Errorf("out-of-domain commit = %+v", res)
	}
	p, g, l := call(t, sys, "plains"), call(t, sys, "gzips"), call(t, sys, "lz4s")
	call(t, sys, "write_block")
	if call(t, sys, "plains") != p || call(t, sys, "gzips") != g || call(t, sys, "lz4s") != l {
		t.Error("out-of-domain value incremented a counter")
	}
}

func TestStateReport(t *testing.T) {
	sys := buildFig2(t)
	rep := sys.RT.StateReport()
	for _, want := range []string{"func multi", "generic (dynamic)", "var  A", "var  B"} {
		if !containsStr(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	setAndCommit(t, sys, map[string]int64{"A": 1, "B": 0})
	rep = sys.RT.StateReport()
	for _, want := range []string{"bound to variant", "1/1 sites patched", "prologue redirected", "= 1"} {
		if !containsStr(rep, want) {
			t.Errorf("committed report missing %q:\n%s", want, rep)
		}
	}
}

func containsStr(s, sub string) bool {
	return strings.Contains(s, sub)
}

// TestPartialSpecializationBind: multiverse(bind(hot)) binds only the
// named switch; the other stays a dynamic check inside every variant
// (paper §2: "binding a subset of the referenced variables").
func TestPartialSpecializationBind(t *testing.T) {
	sys, err := BuildSystem(GenOptions{}, nil, Source{Name: "bind.mvc", Text: `
		multiverse int hot;
		multiverse int cold;
		long hots;
		long colds;
		multiverse(bind(hot)) void poll(void) {
			if (hot) { hots++; }
			if (cold) { colds++; }
		}
		void tick(void) { poll(); }
		long gotHots(void) { return hots; }
		long gotColds(void) { return colds; }
	`})
	if err != nil {
		t.Fatal(err)
	}
	fr := sys.Report.Functions[0]
	// Only `hot` in the cross product: 2 raw variants, not 4.
	if fr.RawVariants != 2 {
		t.Fatalf("raw variants = %d, want 2 (bind subset ignored?)", fr.RawVariants)
	}
	// Commit hot=1; cold stays dynamic inside the bound variant.
	if err := sys.SetSwitch("hot", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("cold", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "tick")
	if call(t, sys, "gotHots") != 1 || call(t, sys, "gotColds") != 0 {
		t.Fatal("bound behaviour wrong")
	}
	// Flip hot without commit: bound, no effect. Flip cold without
	// commit: dynamic, takes effect immediately.
	if err := sys.SetSwitch("hot", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetSwitch("cold", 1); err != nil {
		t.Fatal(err)
	}
	call(t, sys, "tick")
	if call(t, sys, "gotHots") != 2 {
		t.Error("bound switch `hot` was evaluated dynamically")
	}
	if call(t, sys, "gotColds") != 1 {
		t.Error("unbound switch `cold` was not evaluated dynamically")
	}
}
