// Package bench implements the measurement methodology of the paper's
// evaluation (§6.1/§7.5): repeated samples of many invocations each,
// timed with the cycle counter, with the small population of outliers
// (≤ 0.04 %) removed before averaging.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Result summarizes one measurement series.
type Result struct {
	Mean    float64
	Std     float64
	Min     float64
	Max     float64
	Samples int
	Dropped int // outliers removed
}

// String renders mean ± std.
func (r Result) String() string {
	return fmt.Sprintf("%.2f ±%.2f (n=%d)", r.Mean, r.Std, r.Samples)
}

// MarshalJSON renders the result with lowercase field names, the
// shape mvbench -json emits for downstream tooling.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mean    float64 `json:"mean"`
		Std     float64 `json:"std"`
		Min     float64 `json:"min"`
		Max     float64 `json:"max"`
		Samples int     `json:"samples"`
		Dropped int     `json:"dropped"`
	}{r.Mean, r.Std, r.Min, r.Max, r.Samples, r.Dropped})
}

// OutlierFraction is the maximum fraction of samples dropped as
// outliers, mirroring the paper's "not exceeding 0.04 %".
const OutlierFraction = 0.0004

// Measure collects n samples from sample() and returns filtered
// statistics. Sample values are per-operation costs (cycles, ns, ...).
// At least one sample is always dropped from the top when n is large
// enough, because the very first executions run with cold caches and
// predictors — the same role processor interrupts play in the paper's
// setup.
func Measure(n int, sample func() float64) Result {
	if n <= 0 {
		return Result{}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = sample()
	}
	return Summarize(vals)
}

// Summarize filters outliers and computes statistics.
func Summarize(vals []float64) Result {
	n := len(vals)
	if n == 0 {
		return Result{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	drop := int(math.Ceil(float64(n) * OutlierFraction))
	if drop >= n {
		drop = n - 1
	}
	kept := sorted[:n-drop]

	var sum float64
	for _, v := range kept {
		sum += v
	}
	mean := sum / float64(len(kept))
	var sq float64
	for _, v := range kept {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if len(kept) > 1 {
		std = math.Sqrt(sq / float64(len(kept)-1))
	}
	return Result{
		Mean:    mean,
		Std:     std,
		Min:     kept[0],
		Max:     kept[len(kept)-1],
		Samples: len(kept),
		Dropped: drop,
	}
}

// Table renders rows of labelled results with aligned columns.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		out := ""
		for i, c := range cells {
			if i > 0 {
				out += "  "
			}
			out += pad(c, widths[i])
		}
		return out + "\n"
	}
	s := title + "\n"
	s += line(header)
	// The separator is built in a fresh slice: writing the dashes into
	// the caller's header would render them as column titles the next
	// time the slice is reused.
	sep := make([]string, len(widths))
	for i, w := range widths {
		sep[i] = dashes(w)
	}
	s += line(sep)
	for _, row := range rows {
		s += line(row)
	}
	return s
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func dashes(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '-'
	}
	return string(out)
}
