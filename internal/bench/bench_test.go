package bench

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	r := Summarize([]float64{2, 4, 6})
	if r.Samples != 2 { // one outlier dropped from the top
		t.Errorf("samples = %d", r.Samples)
	}
	if r.Mean != 3 {
		t.Errorf("mean = %f, want 3 after dropping the max", r.Mean)
	}
	if r.Min != 2 || r.Max != 4 {
		t.Errorf("min/max = %f/%f", r.Min, r.Max)
	}
	if r.Dropped != 1 {
		t.Errorf("dropped = %d", r.Dropped)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if r := Summarize(nil); r.Samples != 0 {
		t.Errorf("empty: %+v", r)
	}
	r := Summarize([]float64{7})
	if r.Samples != 1 || r.Mean != 7 || r.Std != 0 {
		t.Errorf("single: %+v", r)
	}
}

func TestOutlierRejection(t *testing.T) {
	// 10000 identical samples plus interrupt-like spikes: with n=10000
	// the 0.04% rule drops ceil(4) = 4 outliers.
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = 10
	}
	vals[17] = 5000
	vals[423] = 9000
	vals[999] = 7000
	r := Summarize(vals)
	if r.Mean != 10 {
		t.Errorf("mean = %f, want 10 (outliers not rejected)", r.Mean)
	}
	if r.Dropped != 4 {
		t.Errorf("dropped = %d, want 4", r.Dropped)
	}
}

func TestOutlierFractionMatchesPaper(t *testing.T) {
	if OutlierFraction != 0.0004 {
		t.Errorf("OutlierFraction = %v, want the paper's 0.04%%", OutlierFraction)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Summarize(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("input mutated")
	}
}

func TestMeanWithinRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		r := Summarize(vals)
		return r.Mean >= r.Min-1e-9 && r.Mean <= r.Max+1e-9 && r.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureCallsSampler(t *testing.T) {
	n := 0
	r := Measure(5, func() float64 {
		n++
		return float64(n)
	})
	if n != 5 {
		t.Errorf("sampler called %d times", n)
	}
	if r.Samples+r.Dropped != 5 {
		t.Errorf("samples %d + dropped %d != 5", r.Samples, r.Dropped)
	}
	if Measure(0, func() float64 { return 1 }).Samples != 0 {
		t.Error("Measure(0) not empty")
	}
}

func TestStdDeviation(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9 has stddev 2 (population) / ~2.14 (sample);
	// add a dropped max so the kept set is the classic example.
	r := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9, 1000})
	want := math.Sqrt((9 + 1 + 1 + 1 + 0 + 0 + 4 + 16) / 7.0) // mean 5, sample variance
	if math.Abs(r.Std-want) > 1e-9 {
		t.Errorf("std = %f, want %f", r.Std, want)
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table("title", []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"yyyyyy", "2"},
	})
	if !strings.HasPrefix(out, "title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "long-header") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[2], "---") {
		t.Error("separator missing")
	}
	// Columns align: 'long-header' and '1'/'2' start at the same offset.
	h := strings.Index(lines[1], "long-header")
	if lines[4][h:h+1] != "2" {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableDoesNotMutateHeader(t *testing.T) {
	// Regression: Table used to write the separator dashes into the
	// caller's header slice, so reusing one header across two tables
	// rendered "----" strings as the second table's column titles.
	header := []string{"variant", "cycles"}
	Table("first", header, [][]string{{"a", "1"}})
	if header[0] != "variant" || header[1] != "cycles" {
		t.Fatalf("header mutated: %q", header)
	}
	out := Table("second", header, [][]string{{"b", "2"}})
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "variant") || !strings.Contains(lines[1], "cycles") {
		t.Errorf("second table lost its column titles:\n%s", out)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Mean: 1.234, Std: 0.5, Samples: 10}
	if s := r.String(); !strings.Contains(s, "1.23") || !strings.Contains(s, "n=10") {
		t.Errorf("String() = %q", s)
	}
}
