package kernelsim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

// Fig1Binding selects the variability mechanism of Figure 1.
type Fig1Binding int

// Figure 1's three implementations of spin_irq_lock.
const (
	Fig1Static     Fig1Binding = iota // A: #ifdef CONFIG_SMP, inline
	Fig1Dynamic                       // B: if (config_smp), global variable
	Fig1Multiverse                    // C: multiverse attribute + commit
)

// String names the binding like the paper's table.
func (b Fig1Binding) String() string {
	switch b {
	case Fig1Static:
		return "A static (#ifdef)"
	case Fig1Dynamic:
		return "B dynamic (if)"
	case Fig1Multiverse:
		return "C multiverse"
	}
	return "?"
}

// fig1Common is the lock machinery shared by all three bindings: the
// interrupt disable and the SMP lock acquisition of Figure 1.
const fig1Common = `
	ulong lock_word;
	void irq_disable(void) { __cli(); }
	void spin_acquire(ulong* l) {
		while (__xchg(l, 1)) {
			while (*l) { __pause(); }
		}
	}
	void lock_release(void) { lock_word = 0; __sti(); }
`

// fig1Sources returns the MVC program for one binding. The static
// binding is compiled per SMP value (that is the point of #ifdef), and
// since the paper's spin_irq_lock is declared inline, its body sits
// directly in the benchmark loop.
func fig1Sources(b Fig1Binding, staticSMP bool) string {
	switch b {
	case Fig1Static:
		body := "irq_disable();"
		if staticSMP {
			body = "irq_disable(); spin_acquire(&lock_word);"
		}
		return fig1Common + benchSource + fmt.Sprintf(`
			ulong bench_fig1(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					%s
					lock_release();
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`, body)
	case Fig1Dynamic, Fig1Multiverse:
		attr := ""
		if b == Fig1Multiverse {
			attr = "multiverse "
		}
		return fig1Common + benchSource + fmt.Sprintf(`
			%[1]sint config_smp;
			%[1]svoid spin_irq_lock(ulong* l) {
				if (config_smp) {
					irq_disable();
					spin_acquire(l);
				} else {
					irq_disable();
				}
			}
			ulong bench_fig1(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					spin_irq_lock(&lock_word);
					lock_release();
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`, attr)
	}
	panic("kernelsim: unknown binding")
}

// Fig1System is one built Figure 1 configuration.
type Fig1System struct {
	Binding Fig1Binding
	SMP     bool
	sys     *core.System
}

// BuildFig1 compiles and configures one cell of the Figure 1 table.
func BuildFig1(b Fig1Binding, smp bool) (*Fig1System, error) {
	src := fig1Sources(b, smp)
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "fig1", Text: src})
	if err != nil {
		return nil, err
	}
	f := &Fig1System{Binding: b, SMP: smp, sys: sys}
	switch b {
	case Fig1Dynamic:
		v := uint64(0)
		if smp {
			v = 1
		}
		// A plain global, not a multiverse switch: ordinary store.
		if err := sys.Machine.WriteGlobal("config_smp", 4, v); err != nil {
			return nil, err
		}
	case Fig1Multiverse:
		v := int64(0)
		if smp {
			v = 1
		}
		if err := sys.SetSwitch("config_smp", v); err != nil {
			return nil, err
		}
		if _, err := sys.RT.Commit(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// System exposes the underlying machine/runtime pair, so harnesses
// (difftests, chaos) can attach injectors or drive commits directly.
func (f *Fig1System) System() *core.System { return f.sys }

// Measure returns the spin_irq_lock cost in cycles (lock_release is
// part of the loop for all bindings and cancels in comparisons; the
// Figure 1 shape is driven entirely by the lock side).
func (f *Fig1System) Measure(opts MeasureOpts) (bench.Result, error) {
	return run(f.sys, "bench_fig1", opts)
}

// MeasureColdBTB measures the same loop with the branch predictor
// flushed before every sample — the "real kernel execution paths"
// situation §1 describes, where the induced branch has a high chance
// to be mispredicted (experiment E8).
func (f *Fig1System) MeasureColdBTB(opts MeasureOpts) (bench.Result, error) {
	for i := 0; i < opts.Warmup; i++ {
		if _, err := measurePair(f.sys, "bench_fig1", 1); err != nil {
			return bench.Result{}, err
		}
	}
	var firstErr error
	res := bench.Measure(opts.Samples, func() float64 {
		f.sys.Machine.CPU.FlushPredictor()
		v, err := measurePair(f.sys, "bench_fig1", 1)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	})
	return res, firstErr
}
