package kernelsim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
)

// PVKernel identifies one of the three kernel builds of §6.1's
// paravirtual-operations experiment (Figure 4, right).
type PVKernel int

// The three kernel variants.
const (
	// PVCurrent models the kernel's existing PV-Ops mechanism:
	// function-pointer dispatch with the custom no-scratch calling
	// convention, patched to direct calls (natives inlined) at boot.
	PVCurrent PVKernel = iota
	// PVMultiverse replaces the mechanism with a multiversed function
	// over an environment switch, compiled with the standard calling
	// convention.
	PVMultiverse
	// PVDisabled is the kernel with paravirtualization support
	// compiled out: sti/cli are emitted inline. It only runs on bare
	// metal.
	PVDisabled
)

// String names the kernel like the figure legend.
func (k PVKernel) String() string {
	switch k {
	case PVCurrent:
		return "PV-Op Patching [current]"
	case PVMultiverse:
		return "PV-Op Patching [multiverse]"
	case PVDisabled:
		return "PV-OP Disabled [ifdef]"
	}
	return "?"
}

// PVEnv selects the execution environment.
type PVEnv int

// Environments of the PV-Ops benchmark.
const (
	EnvNative PVEnv = iota // bare metal
	EnvXen                 // paravirtualized guest
)

func (e PVEnv) String() string {
	if e == EnvXen {
		return "XEN (guest)"
	}
	return "Native"
}

// xenWork is the body of the Xen irq-enable/disable implementation: it
// inspects the shared vcpu info page before issuing the hypercall,
// which is what makes the function clobber several registers — the
// traffic the custom calling convention then has to save and restore.
const xenWork = `
	ulong a = vcpu_flags[0];
	ulong b = vcpu_flags[1];
	ulong c = a ^ b;
	ulong d = a & b;
	vcpu_flags[2] = c + d;
`

// pvSources builds one PV kernel flavor.
func pvSources(k PVKernel) string {
	common := `
		ulong vcpu_flags[4];
	` + benchSource
	benchLoop := `
		ulong bench_pv(ulong iters) {
			ulong t0 = __rdtsc();
			for (ulong i = 0; i < iters; i++) {
				irq_enable();
				irq_disable();
			}
			ulong t1 = __rdtsc();
			return t1 - t0;
		}
	`
	switch k {
	case PVCurrent:
		return common + `
			noscratch void native_irq_enable(void) { __sti(); }
			noscratch void native_irq_disable(void) { __cli(); }
			noscratch void xen_irq_enable(void) {` + xenWork + `__hcall(1); }
			noscratch void xen_irq_disable(void) {` + xenWork + `__hcall(2); }
			multiverse void (*pv_irq_enable)(void);
			multiverse void (*pv_irq_disable)(void);
			ulong bench_pv(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					pv_irq_enable();
					pv_irq_disable();
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`
	case PVMultiverse:
		return common + `
			multiverse int pv_env;
			multiverse void irq_enable(void) {
				if (pv_env) {` + xenWork + `__hcall(1); } else { __sti(); }
			}
			multiverse void irq_disable(void) {
				if (pv_env) {` + xenWork + `__hcall(2); } else { __cli(); }
			}
		` + benchLoop
	case PVDisabled:
		// Paravirt compiled out: the native operations are static
		// inlines, so they sit directly in the instruction stream.
		return common + `
			ulong bench_pv(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					__sti();
					__cli();
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`
	}
	panic("kernelsim: unknown pv kernel")
}

// PVSystem is one booted PV-Ops kernel in one environment.
type PVSystem struct {
	Kernel PVKernel
	Env    PVEnv
	Xen    *Xen
	sys    *core.System
}

// BuildPV compiles one PV kernel and boots it in the given
// environment, performing the boot-time patching each mechanism does.
func BuildPV(k PVKernel, env PVEnv) (*PVSystem, error) {
	if k == PVDisabled && env == EnvXen {
		return nil, fmt.Errorf("kernelsim: a kernel without paravirt support cannot run as a Xen PV guest")
	}
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "pvops", Text: pvSources(k)})
	if err != nil {
		return nil, err
	}
	p := &PVSystem{Kernel: k, Env: env, sys: sys}
	if env == EnvXen {
		p.Xen = &Xen{}
		sys.Machine.CPU.SetHypervisor(p.Xen)
		sys.Machine.CPU.SetMode(cpu.Guest)
	} else if k == PVMultiverse || k == PVCurrent {
		// Hypercalls exist in the binary (the unselected paths); give
		// the CPU a hypervisor so an accidental execution is loud in
		// tests rather than an opaque fault.
		p.Xen = &Xen{}
		sys.Machine.CPU.SetHypervisor(p.Xen)
	}

	// Boot-time patching.
	switch k {
	case PVCurrent:
		impl := map[PVEnv][2]string{
			EnvNative: {"native_irq_enable", "native_irq_disable"},
			EnvXen:    {"xen_irq_enable", "xen_irq_disable"},
		}[env]
		if err := sys.SetFnPtr("pv_irq_enable", impl[0]); err != nil {
			return nil, err
		}
		if err := sys.SetFnPtr("pv_irq_disable", impl[1]); err != nil {
			return nil, err
		}
		if _, err := sys.RT.Commit(); err != nil {
			return nil, err
		}
	case PVMultiverse:
		v := int64(0)
		if env == EnvXen {
			v = 1
		}
		if err := sys.SetSwitch("pv_env", v); err != nil {
			return nil, err
		}
		if _, err := sys.RT.Commit(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Runtime exposes the multiverse runtime.
func (p *PVSystem) Runtime() *core.Runtime { return p.sys.RT }

// System returns the underlying built system.
func (p *PVSystem) System() *core.System { return p.sys }

// Measure returns cycles per sti+cli pair.
func (p *PVSystem) Measure(opts MeasureOpts) (bench.Result, error) {
	return run(p.sys, "bench_pv", opts)
}
