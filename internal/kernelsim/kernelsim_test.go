package kernelsim

import (
	"testing"
)

func quick() MeasureOpts { return MeasureOpts{Samples: 20, Iters: 50, Warmup: 2} }

// --- Figure 1 ---

func fig1Cell(t *testing.T, b Fig1Binding, smp bool) float64 {
	t.Helper()
	sys, err := BuildFig1(b, smp)
	if err != nil {
		t.Fatalf("build %v smp=%v: %v", b, smp, err)
	}
	res, err := sys.Measure(quick())
	if err != nil {
		t.Fatalf("measure %v smp=%v: %v", b, smp, err)
	}
	if res.Mean <= 0 {
		t.Fatalf("%v smp=%v: non-positive mean %v", b, smp, res)
	}
	return res.Mean
}

func TestFig1ShapeUP(t *testing.T) {
	a := fig1Cell(t, Fig1Static, false)
	b := fig1Cell(t, Fig1Dynamic, false)
	c := fig1Cell(t, Fig1Multiverse, false)
	// Paper: A (6.64) < C (7.48) < B (9.75) in the UP case.
	if !(a < c) {
		t.Errorf("static (%.2f) should beat multiverse (%.2f)", a, c)
	}
	if !(c < b) {
		t.Errorf("multiverse (%.2f) should beat dynamic if (%.2f)", c, b)
	}
}

func TestFig1ShapeSMP(t *testing.T) {
	a := fig1Cell(t, Fig1Static, true)
	b := fig1Cell(t, Fig1Dynamic, true)
	c := fig1Cell(t, Fig1Multiverse, true)
	up := fig1Cell(t, Fig1Multiverse, false)
	// Paper: all three within a whisker of each other under SMP
	// (28.82 / 28.91 / 28.86), and far above the UP numbers.
	rel := func(x, y float64) float64 {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d / y
	}
	// The in-order cost model exposes call/frame overhead an OoO core
	// hides, so "virtually equal" (paper: 28.82/28.91/28.86) becomes
	// "within ~45% with the same ordering" here; the defining property
	// is that the SMP cells tower over every UP cell.
	if rel(b, a) > 0.45 || rel(c, a) > 0.45 {
		t.Errorf("SMP variants diverge: A=%.2f B=%.2f C=%.2f", a, b, c)
	}
	if !(a <= c && c <= b) {
		t.Errorf("SMP ordering should stay A <= C <= B: A=%.2f C=%.2f B=%.2f", a, c, b)
	}
	if a < 1.5*up {
		t.Errorf("SMP (%.2f) should dwarf UP (%.2f)", a, up)
	}
}

func TestFig1ColdBTBPenalizesDynamic(t *testing.T) {
	dyn, err := BuildFig1(Fig1Dynamic, false)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := BuildFig1(Fig1Multiverse, false)
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	dynWarm, err := dyn.Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	dynCold, err := dyn.MeasureColdBTB(o)
	if err != nil {
		t.Fatal(err)
	}
	mvCold, err := mv.MeasureColdBTB(o)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §1 argument: with a cold BTB the dynamic check's
	// branch mispredicts, adding 15-20 cycles the multiversed variant
	// does not pay at that decision point.
	if dynCold.Mean <= dynWarm.Mean {
		t.Errorf("cold BTB (%.2f) not worse than warm (%.2f)", dynCold.Mean, dynWarm.Mean)
	}
	if dynCold.Mean <= mvCold.Mean {
		t.Errorf("dynamic cold (%.2f) should exceed multiverse cold (%.2f)", dynCold.Mean, mvCold.Mean)
	}
}

// --- Figure 4 left: spinlocks ---

func spinCell(t *testing.T, k SpinKernel, smp bool) float64 {
	t.Helper()
	s, err := BuildSpin(k)
	if err != nil {
		t.Fatalf("build %v: %v", k, err)
	}
	if err := s.SetSMP(smp); err != nil {
		t.Fatalf("SetSMP(%v) on %v: %v", smp, k, err)
	}
	res, err := s.Measure(quick())
	if err != nil {
		t.Fatalf("measure %v: %v", k, err)
	}
	return res.Mean
}

func TestFig4SpinlockUnicoreShape(t *testing.T) {
	mainline := spinCell(t, SpinMainline, false)
	ifel := spinCell(t, SpinIf, false)
	mv := spinCell(t, SpinMultiverse, false)
	static := spinCell(t, SpinStaticUP, false)
	// Paper: static < multiverse < if < mainline; multiverse roughly
	// twice as fast as mainline.
	if !(static < mv && mv < ifel && ifel < mainline) {
		t.Errorf("unicore order wrong: static=%.1f mv=%.1f if=%.1f mainline=%.1f",
			static, mv, ifel, mainline)
	}
	if mainline < 1.5*mv {
		t.Errorf("multiverse (%.1f) should be ~2x faster than mainline (%.1f)", mv, mainline)
	}
}

func TestFig4SpinlockMulticoreShape(t *testing.T) {
	mainline := spinCell(t, SpinMainline, true)
	ifel := spinCell(t, SpinIf, true)
	mv := spinCell(t, SpinMultiverse, true)
	rel := func(x float64) float64 {
		d := x - mainline
		if d < 0 {
			d = -d
		}
		return d / mainline
	}
	if rel(ifel) > 0.25 || rel(mv) > 0.25 {
		t.Errorf("multicore variants diverge: mainline=%.1f if=%.1f mv=%.1f", mainline, ifel, mv)
	}
}

func TestSpinlockKernelsBehaveCorrectly(t *testing.T) {
	for _, k := range []SpinKernel{SpinMainline, SpinIf, SpinMultiverse} {
		s, err := BuildSpin(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetSMP(true); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Measure(MeasureOpts{Samples: 2, Iters: 10, Warmup: 0}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		// Lock must end unlocked, preemption balanced.
		lw, err := s.LockWord()
		if err != nil {
			t.Fatal(err)
		}
		if lw != 0 {
			t.Errorf("%v: lock word = %d after balanced lock/unlock", k, lw)
		}
		pc, err := s.PreemptCount()
		if err != nil {
			t.Fatal(err)
		}
		if pc != 0 {
			t.Errorf("%v: preempt count = %d", k, pc)
		}
	}
}

func TestSpinMultiverseHotplugCycle(t *testing.T) {
	// UP -> SMP -> UP, as in the cloud-CPU-hotplug story of §1.
	s, err := BuildSpin(SpinMultiverse)
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	if err := s.SetSMP(false); err != nil {
		t.Fatal(err)
	}
	up1, err := s.Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSMP(true); err != nil {
		t.Fatal(err)
	}
	smp, err := s.Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSMP(false); err != nil {
		t.Fatal(err)
	}
	up2, err := s.Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	if smp.Mean < 1.3*up1.Mean {
		t.Errorf("SMP commit had no cost effect: up=%.1f smp=%.1f", up1.Mean, smp.Mean)
	}
	if diff := up2.Mean - up1.Mean; diff > 1 || diff < -1 {
		t.Errorf("hotplug cycle not reversible: %.2f vs %.2f", up1.Mean, up2.Mean)
	}
	if err := s.SetSMP(true); err != nil {
		t.Fatal(err)
	}
}

func TestStaticUPCannotGoSMP(t *testing.T) {
	s, err := BuildSpin(SpinStaticUP)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSMP(true); err == nil {
		t.Error("UP-only kernel accepted SMP mode")
	}
}

// --- Figure 4 right: PV-Ops ---

func pvCell(t *testing.T, k PVKernel, env PVEnv) float64 {
	t.Helper()
	p, err := BuildPV(k, env)
	if err != nil {
		t.Fatalf("build %v/%v: %v", k, env, err)
	}
	res, err := p.Measure(quick())
	if err != nil {
		t.Fatalf("measure %v/%v: %v", k, env, err)
	}
	return res.Mean
}

func TestFig4PVOpsNativeShape(t *testing.T) {
	cur := pvCell(t, PVCurrent, EnvNative)
	mv := pvCell(t, PVMultiverse, EnvNative)
	off := pvCell(t, PVDisabled, EnvNative)
	// Paper: all three perform similarly on bare metal because both
	// patching mechanisms inline the single sti/cli instruction.
	max := cur
	if mv > max {
		max = mv
	}
	if off > max {
		max = off
	}
	min := cur
	if mv < min {
		min = mv
	}
	if off < min {
		min = off
	}
	if max-min > 0.35*max {
		t.Errorf("native kernels diverge: current=%.2f mv=%.2f ifdef=%.2f", cur, mv, off)
	}
}

func TestFig4PVOpsXenShape(t *testing.T) {
	cur := pvCell(t, PVCurrent, EnvXen)
	mv := pvCell(t, PVMultiverse, EnvXen)
	// Paper: the multiversed kernel beats the current mechanism in the
	// guest because of the custom calling convention's save/restore
	// overhead.
	if mv >= cur {
		t.Errorf("multiverse (%.2f) should beat current PV-Ops (%.2f) in the guest", mv, cur)
	}
	native := pvCell(t, PVMultiverse, EnvNative)
	if cur <= native {
		t.Errorf("guest (%.2f) should cost more than native (%.2f)", cur, native)
	}
}

func TestPVOpsGuestUsesHypercalls(t *testing.T) {
	p, err := BuildPV(PVMultiverse, EnvXen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(MeasureOpts{Samples: 1, Iters: 10, Warmup: 0}); err != nil {
		t.Fatal(err)
	}
	if p.Xen.Hypercalls == 0 {
		t.Error("guest kernel issued no hypercalls")
	}
	// Virtual interrupt flag must be consistent (last op disables).
	if p.System().Machine.CPU.InterruptsEnabled() {
		t.Error("interrupts enabled after trailing cli")
	}
}

func TestPVDisabledRefusesXen(t *testing.T) {
	if _, err := BuildPV(PVDisabled, EnvXen); err == nil {
		t.Error("paravirt-less kernel booted as Xen guest")
	}
}

func TestPVCurrentInlinesNatives(t *testing.T) {
	p, err := BuildPV(PVCurrent, EnvNative)
	if err != nil {
		t.Fatal(err)
	}
	if p.Runtime().Stats.SitesInlined == 0 {
		t.Error("native pvops were not inlined at their call sites")
	}
}

// --- E7: many call sites ---

func TestManyCallSitesPatching(t *testing.T) {
	sys, err := BuildManyCallSites(200)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TimeCommit(sys, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CallSites != 200 {
		t.Errorf("call sites = %d, want 200", rep.CallSites)
	}
	if rep.SitesTouched != 200 {
		t.Errorf("sites touched = %d, want 200", rep.SitesTouched)
	}
	// Sanity: the kernel still works after mass patching.
	if _, err := sys.Machine.CallNamed("subsys_0"); err != nil {
		t.Fatal(err)
	}
	lw, err := sys.Machine.ReadGlobal("lock_word", 8)
	if err != nil {
		t.Fatal(err)
	}
	if lw != 0 {
		t.Error("lock held after subsys call")
	}
	// Repatch to UP and verify reconfiguration took effect.
	rep2, err := TimeCommit(sys, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SitesTouched != 200 {
		t.Errorf("UP repatch touched %d sites", rep2.SitesTouched)
	}
}

// --- §7.5: measurement validity under interrupt perturbation ---

func TestOutlierFilteringAbsorbsInterrupts(t *testing.T) {
	// The paper observed rare outliers "presumably attributable to the
	// occurrence of processor interrupts during measurement" and
	// excluded them. Reproduce the situation: enable asynchronous
	// interrupt perturbation, measure, and check that the filtered
	// mean stays near the quiet mean while the raw maximum spikes.
	quiet, err := BuildFig1(Fig1Multiverse, false)
	if err != nil {
		t.Fatal(err)
	}
	qres, err := quiet.Measure(MeasureOpts{Samples: 200, Iters: 20, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}

	noisy, err := BuildFig1(Fig1Multiverse, false)
	if err != nil {
		t.Fatal(err)
	}
	// One interrupt roughly every 40 samples' worth of cycles: rare
	// spikes, like timer ticks during a microbenchmark.
	noisy.sys.Machine.CPU.SetInterruptPerturbation(40_000, 3_000)
	// The fig1 loop runs with interrupts toggled by lock_release's sti.
	nres, err := noisy.Measure(MeasureOpts{Samples: 200, Iters: 20, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.sys.Machine.CPU.Stats().Interrupts == 0 {
		t.Skip("no interrupts fired during measurement window")
	}
	// The spikes must be visible in the raw max but mostly filtered
	// from the mean.
	if nres.Max <= qres.Max {
		t.Errorf("no interrupt spike visible: noisy max %.1f <= quiet max %.1f", nres.Max, qres.Max)
	}
	if nres.Mean > qres.Mean*1.25 {
		t.Errorf("filtered mean drifted: %.2f vs quiet %.2f", nres.Mean, qres.Mean)
	}
}

// --- E10: alternative() macros vs multiverse ---

func TestAlternativeVsMultiverseBehaviour(t *testing.T) {
	for _, k := range []AltKernel{AltMacro, AltMultiverse} {
		for _, feature := range []bool{false, true} {
			a, err := BuildAlt(k, feature)
			if err != nil {
				t.Fatalf("%v feature=%v: %v", k, feature, err)
			}
			if _, err := a.Measure(MeasureOpts{Samples: 2, Iters: 50, Warmup: 0}); err != nil {
				t.Fatal(err)
			}
			ev, err := a.Events()
			if err != nil {
				t.Fatal(err)
			}
			if feature && ev == 0 {
				t.Errorf("%v: feature on but no events", k)
			}
			if !feature && ev != 0 {
				t.Errorf("%v: feature patched out but %d events fired", k, ev)
			}
		}
	}
}

func TestAlternativeVsMultiversePerformance(t *testing.T) {
	// The unification claim: multiverse matches the special-purpose
	// mechanism without its hand-maintained metadata.
	o := quick()
	cell := func(k AltKernel, feature bool) float64 {
		a, err := BuildAlt(k, feature)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Measure(o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean
	}
	offAlt := cell(AltMacro, false)
	offMV := cell(AltMultiverse, false)
	onAlt := cell(AltMacro, true)
	onMV := cell(AltMultiverse, true)
	near := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= 2.0
	}
	if !near(offAlt, offMV) {
		t.Errorf("feature off: alternative %.2f vs multiverse %.2f", offAlt, offMV)
	}
	if !near(onAlt, onMV) {
		t.Errorf("feature on: alternative %.2f vs multiverse %.2f", onAlt, onMV)
	}
	// Patching the feature out must actually help.
	if offAlt >= onAlt {
		t.Errorf("NOP patching did not help: off %.2f, on %.2f", offAlt, onAlt)
	}
}

func TestAlternativeScanFindsSites(t *testing.T) {
	a, err := BuildAlt(AltMacro, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sites) != 1 {
		t.Errorf("sites = %d, want 1", len(a.Sites))
	}
}

func TestLabelStrings(t *testing.T) {
	cases := map[string]string{
		Fig1Static.String():     "A static (#ifdef)",
		Fig1Dynamic.String():    "B dynamic (if)",
		Fig1Multiverse.String(): "C multiverse",
		SpinMainline.String():   "No Lock Elision",
		SpinIf.String():         "Lock Elision [if]",
		SpinMultiverse.String(): "Lock Elision [multiverse]",
		SpinStaticUP.String():   "Lock Elision [ifdef Off]",
		PVCurrent.String():      "PV-Op Patching [current]",
		PVMultiverse.String():   "PV-Op Patching [multiverse]",
		PVDisabled.String():     "PV-OP Disabled [ifdef]",
		EnvNative.String():      "Native",
		EnvXen.String():         "XEN (guest)",
		AltMacro.String():       "alternative macro",
		AltMultiverse.String():  "multiverse",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("label %q != %q", got, want)
		}
	}
	if Fig1Binding(99).String() != "?" || SpinKernel(99).String() != "?" ||
		PVKernel(99).String() != "?" {
		t.Error("unknown labels should render '?'")
	}
}

func TestAccessorsNonNil(t *testing.T) {
	s, err := BuildSpin(SpinMultiverse)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runtime() == nil || s.System() == nil {
		t.Error("spin accessors nil")
	}
	a, err := BuildAlt(AltMultiverse, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.System() == nil {
		t.Error("alt accessor nil")
	}
	if n, err := BuildManyCallSites(1); err == nil || n != nil {
		t.Error("BuildManyCallSites(1) should fail")
	}
}
