package kernelsim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

// SpinKernel identifies one of the four kernel builds of §6.1's
// spinlock experiment (Figure 4, left).
type SpinKernel int

// The four kernel variants.
const (
	// SpinMainline is the unmodified SMP-capable kernel without lock
	// elision, as shipped by all major distributions.
	SpinMainline SpinKernel = iota
	// SpinIf adds lock elision through a control-flow branch on a
	// run-time variable.
	SpinIf
	// SpinMultiverse adds lock elision through multiverse.
	SpinMultiverse
	// SpinStaticUP is the mainline kernel configured without SMP
	// capability: static lock elision, spinlock bodies inlined away.
	SpinStaticUP
)

// String names the kernel like the figure legend.
func (k SpinKernel) String() string {
	switch k {
	case SpinMainline:
		return "No Lock Elision"
	case SpinIf:
		return "Lock Elision [if]"
	case SpinMultiverse:
		return "Lock Elision [multiverse]"
	case SpinStaticUP:
		return "Lock Elision [ifdef Off]"
	}
	return "?"
}

// spinCommon models the parts of the Linux spinlock that exist in
// every configuration: the preemption counter is always maintained;
// only the actual lock-word operation is subject to elision.
const spinCommon = `
	ulong lock_word;
	long preempt_count;
`

// spinSources builds one kernel flavor. The UP-only kernel's spinlock
// collapses to inline preempt accounting (spinlock_up.h makes them
// static inlines), so its benchmark loop carries the inlined body;
// every SMP-capable kernel calls out-of-line lock functions, like
// Linux does.
func spinSources(k SpinKernel) string {
	lockBody := `
		while (__xchg(l, 1)) {
			while (*l) { __pause(); }
		}`
	unlockBody := `*l = 0;`
	wrap := func(attr, lock, unlock string) string {
		return spinCommon + benchSource + fmt.Sprintf(`
			%[1]svoid spin_lock(ulong* l) {
				preempt_count++;
				%[2]s
			}
			%[1]svoid spin_unlock(ulong* l) {
				%[3]s
				preempt_count--;
			}
			ulong bench_spin(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					spin_lock(&lock_word);
					spin_unlock(&lock_word);
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`, attr, lock, unlock)
	}
	switch k {
	case SpinMainline:
		return wrap("", lockBody, unlockBody)
	case SpinIf:
		return "int config_smp;\n" +
			wrap("", "if (config_smp) {"+lockBody+"}", "if (config_smp) { "+unlockBody+" }")
	case SpinMultiverse:
		return "multiverse int config_smp;\n" +
			wrap("multiverse ", "if (config_smp) {"+lockBody+"}", "if (config_smp) { "+unlockBody+" }")
	case SpinStaticUP:
		return spinCommon + benchSource + `
			ulong bench_spin(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					preempt_count++;
					preempt_count--;
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`
	}
	panic("kernelsim: unknown spin kernel")
}

// SpinSystem is one booted spinlock kernel.
type SpinSystem struct {
	Kernel SpinKernel
	sys    *core.System
}

// BuildSpin compiles and boots one spinlock kernel.
func BuildSpin(k SpinKernel) (*SpinSystem, error) {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "spin", Text: spinSources(k)})
	if err != nil {
		return nil, err
	}
	return &SpinSystem{Kernel: k, sys: sys}, nil
}

// SetSMP switches the kernel between unicore and multicore operation,
// the hotplug scenario of §1 (for the multiverse kernel this performs
// the commit). The mainline kernel has no switch — it always takes the
// lock — and the static UP kernel cannot do SMP at all.
func (s *SpinSystem) SetSMP(on bool) error {
	switch s.Kernel {
	case SpinMainline:
		return nil // compiled-in SMP: nothing to configure
	case SpinStaticUP:
		if on {
			return fmt.Errorf("kernelsim: the UP-only kernel cannot enter SMP mode")
		}
		return nil
	}
	v := uint64(0)
	if on {
		v = 1
	}
	if s.Kernel == SpinIf {
		// A plain global, not a multiverse switch: ordinary store.
		return s.sys.Machine.WriteGlobal("config_smp", 4, v)
	}
	if err := s.sys.SetSwitch("config_smp", int64(v)); err != nil {
		return err
	}
	if _, err := s.sys.RT.Commit(); err != nil {
		return err
	}
	return nil
}

// Runtime exposes the multiverse runtime (nil-safe only for the
// multiverse kernel).
func (s *SpinSystem) Runtime() *core.Runtime { return s.sys.RT }

// System returns the underlying built system.
func (s *SpinSystem) System() *core.System { return s.sys }

// Measure returns cycles per lock+unlock pair.
func (s *SpinSystem) Measure(opts MeasureOpts) (bench.Result, error) {
	return run(s.sys, "bench_spin", opts)
}

// LockWord reads the lock word, for correctness checks.
func (s *SpinSystem) LockWord() (uint64, error) {
	return s.sys.Machine.ReadGlobal("lock_word", 8)
}

// PreemptCount reads the preemption counter.
func (s *SpinSystem) PreemptCount() (int64, error) {
	v, err := s.sys.Machine.ReadGlobal("preempt_count", 8)
	return int64(v), err
}
