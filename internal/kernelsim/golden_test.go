package kernelsim

import (
	"math"
	"testing"
)

// The simulator is fully deterministic, so the evaluation numbers in
// EXPERIMENTS.md can be pinned exactly. These golden tests protect the
// calibration: a change to the cost model, the code generator or the
// runtime that shifts any cell shows up here first (and EXPERIMENTS.md
// must then be regenerated with `go run ./cmd/mvbench`).

func almost(got, want float64) bool {
	return math.Abs(got-want) <= 1.0
}

func TestGoldenFig1(t *testing.T) {
	want := map[Fig1Binding][2]float64{
		Fig1Static:     {17, 53},
		Fig1Dynamic:    {35, 75},
		Fig1Multiverse: {22, 67},
	}
	for b, cells := range want {
		for i, smp := range []bool{false, true} {
			sys, err := BuildFig1(b, smp)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Measure(DefaultMeasure())
			if err != nil {
				t.Fatal(err)
			}
			if !almost(res.Mean, cells[i]) {
				t.Errorf("%v smp=%v: %.2f cycles, golden %.2f (update EXPERIMENTS.md if intended)",
					b, smp, res.Mean, cells[i])
			}
			if res.Std > 0.5 {
				t.Errorf("%v smp=%v: nondeterministic (std %.2f)", b, smp, res.Std)
			}
		}
	}
}

func TestGoldenFig4Spinlock(t *testing.T) {
	want := map[SpinKernel][2]float64{
		SpinMainline:   {67, 67},
		SpinIf:         {50, 81},
		SpinMultiverse: {24, 67},
		SpinStaticUP:   {14, -1},
	}
	for k, cells := range want {
		for i, smp := range []bool{false, true} {
			if cells[i] < 0 {
				continue
			}
			s, err := BuildSpin(k)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetSMP(smp); err != nil {
				t.Fatal(err)
			}
			res, err := s.Measure(DefaultMeasure())
			if err != nil {
				t.Fatal(err)
			}
			if !almost(res.Mean, cells[i]) {
				t.Errorf("%v smp=%v: %.2f cycles, golden %.2f", k, smp, res.Mean, cells[i])
			}
		}
	}
}

func TestGoldenFig4PVOps(t *testing.T) {
	want := map[PVKernel][2]float64{
		PVCurrent:    {6, 130},
		PVMultiverse: {6, 118},
		PVDisabled:   {6, -1},
	}
	for k, cells := range want {
		for i, env := range []PVEnv{EnvNative, EnvXen} {
			if cells[i] < 0 {
				continue
			}
			p, err := BuildPV(k, env)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Measure(DefaultMeasure())
			if err != nil {
				t.Fatal(err)
			}
			if !almost(res.Mean, cells[i]) {
				t.Errorf("%v %v: %.2f cycles, golden %.2f", k, env, res.Mean, cells[i])
			}
		}
	}
}
