package kernelsim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/link"
)

// This file models the kernel's alternative()/alternative_smp() macro
// family (paper §1.1): single instructions or calls are located by
// hand-maintained metadata and overwritten with NOPs (or replacement
// instructions) at boot, e.g. to disable SMAP on processors without
// it. Multiverse's claim (§6, §9) is that it can replace these
// special-purpose mechanisms without a performance compromise —
// experiment E10 makes that comparison directly.

// AltKernel selects the mechanism guarding the SMAP-style feature.
type AltKernel int

// The compared mechanisms.
const (
	// AltMacro is the existing mechanism: the feature code is always
	// compiled in; boot-time patching NOPs it out when the CPU lacks
	// the feature. The patch sites come from hand-maintained metadata
	// (here: an ad-hoc text scan, standing in for the inline-asm
	// section tricks the paper criticizes).
	AltMacro AltKernel = iota
	// AltMultiverse guards the same code with a multiverse switch.
	AltMultiverse
)

func (k AltKernel) String() string {
	if k == AltMultiverse {
		return "multiverse"
	}
	return "alternative macro"
}

// altCommon is the guarded feature: a SMAP-style access check on the
// user-copy path.
const altCommon = `
	long smap_events;
	ulong kbuf[8];
`

func altSources(k AltKernel) string {
	switch k {
	case AltMacro:
		// The feature body is unconditional; patching removes the call.
		return altCommon + benchSource + `
			void smap_assert(void) { smap_events++; }
			void copy_from_user(long i) {
				smap_assert();
				kbuf[i & 7] = (ulong)i;
			}
			ulong bench_copy(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					copy_from_user((long)i);
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`
	case AltMultiverse:
		return altCommon + benchSource + `
			multiverse int cpu_has_smap;
			multiverse void smap_assert(void) {
				if (cpu_has_smap) { smap_events++; }
			}
			void copy_from_user(long i) {
				smap_assert();
				kbuf[i & 7] = (ulong)i;
			}
			ulong bench_copy(ulong iters) {
				ulong t0 = __rdtsc();
				for (ulong i = 0; i < iters; i++) {
					copy_from_user((long)i);
				}
				ulong t1 = __rdtsc();
				return t1 - t0;
			}
		`
	}
	panic("kernelsim: unknown alt kernel")
}

// AltSystem is one booted kernel with its feature configuration.
type AltSystem struct {
	Kernel AltKernel
	sys    *core.System
	// Sites found by the ad-hoc scan (AltMacro only).
	Sites []uint64
}

// findCallSites scans the text segment for direct calls to target —
// the stand-in for the alternative mechanism's hand-maintained patch
// metadata. It deliberately lives outside the compiler: this is the
// ad-hoc, architecture-specific bookkeeping the paper argues against.
func findCallSites(img *link.Image, target uint64) []uint64 {
	var sites []uint64
	text := img.Segments[0]
	off := 0
	for off < len(text.Data) {
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			off++
			continue
		}
		if in.Op == isa.CALL {
			addr := text.Addr + uint64(off)
			if addr+uint64(in.Len)+uint64(in.Imm) == target {
				sites = append(sites, addr)
			}
		}
		off += in.Len
	}
	return sites
}

// BuildAlt boots one kernel with the SMAP feature present or absent.
func BuildAlt(k AltKernel, hasFeature bool) (*AltSystem, error) {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "smap", Text: altSources(k)})
	if err != nil {
		return nil, err
	}
	a := &AltSystem{Kernel: k, sys: sys}
	switch k {
	case AltMacro:
		target, err := sys.Machine.Symbol("smap_assert")
		if err != nil {
			return nil, err
		}
		a.Sites = findCallSites(sys.Machine.Image, target)
		if len(a.Sites) == 0 {
			return nil, fmt.Errorf("kernelsim: alternative scan found no patch sites")
		}
		if !hasFeature {
			// Boot-time NOP patching, alternative() style.
			plat := &core.KernelPlatform{M: sys.Machine}
			for _, site := range a.Sites {
				if err := plat.Patch(site, isa.EncodeNop(isa.CallSiteLen)); err != nil {
					return nil, err
				}
				plat.FlushICache(site, isa.CallSiteLen)
			}
		}
	case AltMultiverse:
		v := int64(0)
		if hasFeature {
			v = 1
		}
		if err := sys.SetSwitch("cpu_has_smap", v); err != nil {
			return nil, err
		}
		if _, err := sys.RT.Commit(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// System exposes the underlying system.
func (a *AltSystem) System() *core.System { return a.sys }

// Measure returns cycles per copy_from_user call.
func (a *AltSystem) Measure(opts MeasureOpts) (bench.Result, error) {
	return run(a.sys, "bench_copy", opts)
}

// Events reads the feature-path counter.
func (a *AltSystem) Events() (uint64, error) {
	return a.sys.Machine.ReadGlobal("smap_events", 8)
}
