package kernelsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

// smpWorkload is a true-concurrency kernel fragment: two hardware
// threads increment a shared counter under the multiversed spinlock.
// The increment is deliberately a read-modify-write through a local so
// that losing mutual exclusion loses updates.
const smpWorkload = `
	multiverse int config_smp;
	ulong lock_word;
	long shared_counter;

	multiverse void spin_lock(ulong* l) {
		if (config_smp) {
			while (__xchg(l, 1)) {
				while (*l) { __pause(); }
			}
		}
	}
	multiverse void spin_unlock(ulong* l) {
		if (config_smp) { *l = 0; }
	}

	void worker(long n) {
		for (long i = 0; i < n; i++) {
			spin_lock(&lock_word);
			long v = shared_counter;
			long w = v + 1;
			shared_counter = w;
			spin_unlock(&lock_word);
		}
	}
`

func buildSMPWorkload(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "smp", Text: smpWorkload})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runTwoWorkers drives two CPUs through worker(n) with the given
// interleaving quanta and returns the final shared counter.
func runTwoWorkers(t *testing.T, sys *core.System, n uint64, q1, q2 int) int64 {
	t.Helper()
	m := sys.Machine
	if err := m.WriteGlobal("shared_counter", 8, 0); err != nil {
		t.Fatal(err)
	}
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(m.CPU, "worker", n); err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(c2, "worker", n); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Interleave([]*cpu.CPU{m.CPU, c2}, []int{q1, q2}, 50_000_000); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadGlobal("shared_counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	return int64(v)
}

func TestContendedSpinlockPreservesMutualExclusion(t *testing.T) {
	const n = 300
	// A spread of interleavings, including adversarial prime quanta
	// that shift the phase every round.
	for _, q := range [][2]int{{1, 1}, {1, 7}, {13, 3}, {50, 1}, {5, 5}} {
		sys := buildSMPWorkload(t)
		if err := sys.SetSwitch("config_smp", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RT.Commit(); err != nil {
			t.Fatal(err)
		}
		got := runTwoWorkers(t, sys, n, q[0], q[1])
		if got != 2*n {
			t.Errorf("quanta %v: counter = %d, want %d (lost updates under lock!)", q, got, 2*n)
		}
	}
}

func TestElidedLockLosesUpdatesUnderContention(t *testing.T) {
	// The flip side: committing the UP (elided) variant while two CPUs
	// actually run is a usage error the paper leaves to the developer
	// (§2: explicit commit, no synchronization). The simulator makes
	// the consequence observable: updates get lost.
	const n = 300
	lost := false
	for _, q := range [][2]int{{1, 1}, {1, 7}, {13, 3}} {
		sys := buildSMPWorkload(t)
		if err := sys.SetSwitch("config_smp", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RT.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := runTwoWorkers(t, sys, n, q[0], q[1]); got < 2*n {
			lost = true
		}
	}
	if !lost {
		t.Error("no interleaving lost updates without the lock; the contention test is too weak")
	}
}

func TestDynamicLockAlsoCorrectUnderContention(t *testing.T) {
	// Without any commit the generic function evaluates config_smp
	// dynamically — with the flag set, mutual exclusion must hold too.
	const n = 200
	sys := buildSMPWorkload(t)
	if err := sys.SetSwitch("config_smp", 1); err != nil {
		t.Fatal(err)
	}
	if got := runTwoWorkers(t, sys, n, 7, 3); got != 2*n {
		t.Errorf("dynamic lock: counter = %d, want %d", got, 2*n)
	}
}

func TestSecondCPUSeesPatchedCode(t *testing.T) {
	// Binary patching must be visible to every hardware thread (they
	// share memory; each has its own icache, cold at start).
	sys := buildSMPWorkload(t)
	if err := sys.SetSwitch("config_smp", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	m := sys.Machine
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(c2, "worker", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadGlobal("shared_counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("secondary CPU result = %d, want 10", v)
	}
	lw, err := m.ReadGlobal("lock_word", 8)
	if err != nil {
		t.Fatal(err)
	}
	if lw != 0 {
		t.Errorf("lock held after secondary CPU finished")
	}
}

func TestInterleaveErrors(t *testing.T) {
	sys := buildSMPWorkload(t)
	m := sys.Machine
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Interleave([]*cpu.CPU{m.CPU, c2}, []int{1}, 1000); err == nil {
		t.Error("mismatched quanta accepted")
	}
	if err := m.StartCall(c2, "nope"); err == nil {
		t.Error("StartCall on unknown symbol succeeded")
	}
	if err := m.StartCall(c2, "worker", 1, 2, 3, 4, 5, 6, 7); err == nil {
		t.Error("StartCall with 7 args succeeded")
	}
}

func TestManyCPUs(t *testing.T) {
	sys := buildSMPWorkload(t)
	if err := sys.SetSwitch("config_smp", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RT.Commit(); err != nil {
		t.Fatal(err)
	}
	m := sys.Machine
	cpus := []*cpu.CPU{m.CPU}
	quanta := []int{3}
	for i := 0; i < 3; i++ {
		c, err := m.AddCPU()
		if err != nil {
			t.Fatalf("AddCPU %d: %v", i, err)
		}
		cpus = append(cpus, c)
		quanta = append(quanta, 2+i)
	}
	const n = 100
	for i, c := range cpus {
		if err := m.StartCall(c, "worker", n); err != nil {
			t.Fatalf("cpu %d: %v", i, err)
		}
	}
	if _, err := m.Interleave(cpus, quanta, 100_000_000); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadGlobal("shared_counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if int64(v) != int64(len(cpus))*n {
		t.Errorf("counter = %d, want %d", v, len(cpus)*n)
	}
}
