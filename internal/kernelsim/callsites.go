package kernelsim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// PaperCallSites is the number of spinlock call sites the paper's
// multiversed kernel records (§6.1: "Multiverse records 1161 call
// sites of spinlock functions").
const PaperCallSites = 1161

// BuildManyCallSites synthesizes a kernel with n call sites of a
// multiversed spinlock pair, modelling the whole-kernel patching load
// of experiment E7. Call sites are spread over many small functions,
// like they are in a real kernel text segment.
func BuildManyCallSites(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("kernelsim: need at least 2 call sites")
	}
	var sb strings.Builder
	sb.WriteString(`
		multiverse int config_smp;
		ulong lock_word;
		long preempt_count;
		multiverse void spin_lock(ulong* l) {
			preempt_count++;
			if (config_smp) {
				while (__xchg(l, 1)) { while (*l) { __pause(); } }
			}
		}
		multiverse void spin_unlock(ulong* l) {
			if (config_smp) { *l = 0; }
			preempt_count--;
		}
	`)
	// Each subsystem function contributes one lock and one unlock
	// site; n/2 functions give n sites.
	funcs := (n + 1) / 2
	for i := 0; i < funcs; i++ {
		fmt.Fprintf(&sb, "void subsys_%d(void) { spin_lock(&lock_word); spin_unlock(&lock_word); }\n", i)
	}
	return core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "bigkernel", Text: sb.String()})
}

// PatchReport is the outcome of timing one full commit.
type PatchReport struct {
	CallSites    int
	SitesTouched int
	HostDuration time.Duration
}

// TimeCommit measures one full commit over all call sites.
func TimeCommit(sys *core.System, smp bool) (PatchReport, error) {
	v := int64(0)
	if smp {
		v = 1
	}
	if err := sys.SetSwitch("config_smp", v); err != nil {
		return PatchReport{}, err
	}
	before := sys.RT.Stats
	start := time.Now()
	if _, err := sys.RT.Commit(); err != nil {
		return PatchReport{}, err
	}
	elapsed := time.Since(start)
	after := sys.RT.Stats
	lockAddr, _ := sys.RT.FuncByName("spin_lock")
	unlockAddr, _ := sys.RT.FuncByName("spin_unlock")
	return PatchReport{
		CallSites:    sys.RT.Sites(lockAddr) + sys.RT.Sites(unlockAddr),
		SitesTouched: (after.SitesPatched - before.SitesPatched) + (after.SitesInlined - before.SitesInlined),
		HostDuration: elapsed,
	}, nil
}
