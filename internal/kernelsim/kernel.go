// Package kernelsim reproduces the paper's Linux-kernel case studies
// (§6.1): spinlock lock elision and paravirtual operations. Each
// "kernel" is a small MVC program mirroring the relevant kernel code
// paths, built in the four (spinlocks) respectively three (PV-Ops)
// configurations the paper benchmarks, and measured exactly like the
// paper measures: repeated TSC-timed samples of many invocations, with
// a timed empty loop subtracted.
package kernelsim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
)

// Xen is the hypervisor model: hypercall 1 enables, hypercall 2
// disables the guest's virtual interrupt flag — the sti/cli pair the
// paper multiverses.
type Xen struct {
	Hypercalls uint64
}

// Hypercall implements cpu.Hypervisor.
func (x *Xen) Hypercall(c *cpu.CPU, n uint8) error {
	x.Hypercalls++
	switch n {
	case 1:
		c.SetInterruptsEnabled(true)
	case 2:
		c.SetInterruptsEnabled(false)
	default:
		return fmt.Errorf("kernelsim: unknown hypercall %d", n)
	}
	return nil
}

// benchSource provides the shared TSC measurement loops. The bench
// body loops live in MVC so the measured code includes exactly the
// call sequences a kernel microbenchmark would execute.
const benchSource = `
	// bench_baseline times an empty measurement loop; harnesses
	// subtract it so results are per-operation costs.
	ulong bench_baseline(ulong iters) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) { }
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
`

// measurePair runs the named MVC bench function and the baseline and
// returns cycles per iteration.
func measurePair(sys *core.System, fn string, iters uint64) (float64, error) {
	total, err := sys.Machine.CallNamed(fn, iters)
	if err != nil {
		return 0, err
	}
	base, err := sys.Machine.CallNamed("bench_baseline", iters)
	if err != nil {
		return 0, err
	}
	if total < base {
		return 0, nil
	}
	return float64(total-base) / float64(iters), nil
}

// MeasureOpts controls sample counts. The paper uses 1 million samples
// of 100 calls; the defaults here are scaled down so the simulation
// stays fast while the statistics remain stable (the simulator is
// deterministic, so far fewer samples suffice).
type MeasureOpts struct {
	Samples int
	Iters   uint64
	Warmup  int
}

// DefaultMeasure returns the default sampling parameters.
func DefaultMeasure() MeasureOpts {
	return MeasureOpts{Samples: 60, Iters: 100, Warmup: 3}
}

// run performs the warmup-and-sample protocol for one bench function.
func run(sys *core.System, fn string, opts MeasureOpts) (bench.Result, error) {
	for i := 0; i < opts.Warmup; i++ {
		if _, err := measurePair(sys, fn, opts.Iters); err != nil {
			return bench.Result{}, err
		}
	}
	var firstErr error
	res := bench.Measure(opts.Samples, func() float64 {
		v, err := measurePair(sys, fn, opts.Iters)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	})
	return res, firstErr
}
