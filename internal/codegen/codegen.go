// Package codegen lowers checked MVC functions to m64 machine code and
// emits the multiverse descriptor sections.
//
// The calling convention mirrors the shape of the paper's Figure 3:
//
//	push fp            ; fp is r14
//	mov  fp, sp
//	spadd -frame
//	st   [fp-8], r0    ; spill parameters to slots
//	...
//	mov  sp, fp
//	pop  fp
//	ret
//
// Arguments are passed in r0..r5, the result returns in r0, r0..r9 are
// caller-saved scratch. Functions with the NoScratch attribute (the
// PV-Ops custom convention) additionally push/pop every scratch
// register they clobber, so their callers save nothing — reproducing
// the calling-convention overhead §6.1 measures.
//
// Every direct call to a multiverse function and every indirect call
// through a multiverse function-pointer switch is recorded in the
// multiverse.callsites section; both encode as exactly
// isa.CallSiteLen bytes so the runtime can patch them in place.
package codegen

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/obj"
)

// FP is the frame-pointer register.
const FP = isa.Reg(14)

// scratchRegs are the caller-saved expression registers.
const numScratch = 10

// Guard restricts one configuration switch to a value range
// (paper Figure 2: {&B, .low=0, .high=1}).
type Guard struct {
	Var    *cc.VarSym
	Lo, Hi int64
}

// MVVariant describes one generated function variant.
type MVVariant struct {
	SymName string
	Guards  []Guard
}

// MVFunc describes a multiversed function and its variants for the
// multiverse.functions section.
type MVFunc struct {
	GenericSym string
	Name       string // source-level name
	Variants   []MVVariant
}

// Func is one function to emit.
type Func struct {
	Decl    *cc.FuncDecl
	SymName string
	// PadTo forces the emitted body to at least this many bytes
	// (generic multiverse functions need >= isa.CallSiteLen bytes so
	// their prologue can be overwritten with a jump).
	PadTo int
}

// Program is a fully planned translation unit ready for emission.
type Program struct {
	UnitName string
	Globals  []*cc.GlobalDecl
	Funcs    []*Func
	MVVars   []*cc.VarSym
	MVFuncs  []*MVFunc
}

// ProgramFromUnit plans a unit without variant generation: every
// defined function is emitted as-is and multiverse variables get
// descriptors. The variant generator in package core builds on top of
// this.
func ProgramFromUnit(u *cc.Unit) *Program {
	p := &Program{UnitName: u.File}
	seenGlobal := make(map[*cc.VarSym]bool)
	for _, d := range u.Decls {
		switch d := d.(type) {
		case *cc.GlobalDecl:
			if d.Sym.Extern || seenGlobal[d.Sym] {
				continue
			}
			seenGlobal[d.Sym] = true
			p.Globals = append(p.Globals, d)
			if d.Sym.Multiverse {
				p.MVVars = append(p.MVVars, d.Sym)
			}
		case *cc.FuncDecl:
			if d.Body == nil || d.Sym.Func != d {
				continue // prototype, or superseded by the definition
			}
			p.Funcs = append(p.Funcs, &Func{Decl: d, SymName: SymbolName(u.File, d.Sym)})
		}
	}
	return p
}

// SymbolName returns the linker symbol for a file-scope symbol;
// statics are mangled with the unit name.
func SymbolName(unit string, s *cc.VarSym) string {
	if s.Storage == cc.StorageStatic {
		return unit + "$" + s.Name
	}
	return s.Name
}

// Compile emits the program into a relocatable object.
func Compile(p *Program) (*obj.Object, error) {
	e := &emitter{
		prog:     p,
		o:        obj.New(p.UnitName),
		funcSyms: make(map[*cc.VarSym]string),
		funcLens: make(map[string]uint64),
		strSyms:  make(map[string]string),
	}
	// Pre-register symbol names for all defined functions so calls can
	// reference them before their bodies are emitted.
	for _, f := range p.Funcs {
		if _, dup := e.funcLens[f.SymName]; dup {
			return nil, fmt.Errorf("codegen: duplicate function symbol %q", f.SymName)
		}
		e.funcLens[f.SymName] = 0
		if f.Decl.Sym != nil && f.SymName == SymbolName(p.UnitName, f.Decl.Sym) {
			e.funcSyms[f.Decl.Sym] = f.SymName
		}
	}
	if err := e.emitGlobals(); err != nil {
		return nil, err
	}
	for _, f := range p.Funcs {
		if err := e.emitFunc(f); err != nil {
			return nil, err
		}
	}
	e.o.Section(obj.SecText).Data = e.text.Bytes()
	if err := e.emitDescriptors(); err != nil {
		return nil, err
	}
	if err := e.o.Validate(); err != nil {
		return nil, err
	}
	return e.o, nil
}

type callSiteRec struct {
	textOff   uint64 // offset of the CALL/CLLR opcode within .text
	calleeSym string // generic function symbol or switch-variable symbol
}

type emitter struct {
	prog *Program
	o    *obj.Object
	text isa.Asm

	funcSyms map[*cc.VarSym]string // function symbol names (generic)
	funcLens map[string]uint64     // emitted body length per symbol
	strSyms  map[string]string     // string literal -> rodata symbol

	callSites []callSiteRec
	osrFuncs  []*osrFuncRec
	strCount  int
}

// symName resolves the emitted name for a data or function symbol.
func (e *emitter) symName(s *cc.VarSym) string {
	if n, ok := e.funcSyms[s]; ok {
		return n
	}
	return SymbolName(e.prog.UnitName, s)
}

func (e *emitter) emitGlobals() error {
	data := e.o.Section(obj.SecData)
	bss := e.o.Section(obj.SecBSS)
	for _, g := range e.prog.Globals {
		s := g.Sym
		size := s.Type.ByteSize()
		if size <= 0 {
			return fmt.Errorf("codegen: global %q has no size", s.Name)
		}
		name := e.symName(s)
		if s.Init != nil && *s.Init != 0 {
			off := alignSection(data, 8)
			buf := make([]byte, size)
			v := uint64(*s.Init)
			for i := int64(0); i < size && i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			data.Data = append(data.Data, buf...)
			e.o.AddSymbol(obj.Symbol{Name: name, Section: obj.SecData, Offset: off,
				Size: uint64(size), Global: s.Storage == cc.StorageGlobal})
		} else {
			align := uint64(8)
			if s.Type.Kind == cc.KindArray {
				align = 16
			}
			bss.Size = alignTo(bss.Size, align)
			off := bss.Size
			bss.Size += uint64(size)
			e.o.AddSymbol(obj.Symbol{Name: name, Section: obj.SecBSS, Offset: off,
				Size: uint64(size), Global: s.Storage == cc.StorageGlobal})
		}
	}
	return nil
}

// strSym interns a string literal into .rodata and returns its symbol.
func (e *emitter) strSym(v string) string {
	if sym, ok := e.strSyms[v]; ok {
		return sym
	}
	ro := e.o.Section(obj.SecROData)
	off := uint64(len(ro.Data))
	ro.Data = append(ro.Data, []byte(v)...)
	ro.Data = append(ro.Data, 0)
	sym := fmt.Sprintf("%s$str%d", e.prog.UnitName, e.strCount)
	e.strCount++
	e.o.AddSymbol(obj.Symbol{Name: sym, Section: obj.SecROData, Offset: off,
		Size: uint64(len(v) + 1)})
	e.strSyms[v] = sym
	return sym
}

func alignSection(s *obj.Section, align uint64) uint64 {
	n := alignTo(uint64(len(s.Data)), align)
	for uint64(len(s.Data)) < n {
		s.Data = append(s.Data, 0)
	}
	return n
}

func alignTo(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// padText aligns the text cursor to 16 bytes with NOP filler.
func (e *emitter) padText() {
	for e.text.Len()%16 != 0 {
		gap := 16 - e.text.Len()%16
		if gap > 255 {
			gap = 255
		}
		e.text.Nop(gap)
	}
}

func (e *emitter) emitFunc(f *Func) error {
	e.padText()
	start := uint64(e.text.Len())

	fe := &fnEmitter{e: e, f: f.Decl, symName: f.SymName}
	if err := fe.emit(); err != nil {
		return fmt.Errorf("%s: %w", f.SymName, err)
	}
	if f.Decl.Multiverse {
		e.osrFuncs = append(e.osrFuncs, fe.osrRecord())
	}

	for uint64(e.text.Len())-start < uint64(f.PadTo) {
		e.text.Nop(1)
	}
	size := uint64(e.text.Len()) - start
	e.funcLens[f.SymName] = size
	global := true
	if f.Decl.Sym != nil && f.Decl.Sym.Storage == cc.StorageStatic {
		global = false
	}
	// Variant symbols (SymName != source symbol) stay local.
	if f.Decl.Sym != nil && f.SymName != SymbolName(e.prog.UnitName, f.Decl.Sym) {
		global = false
	}
	e.o.AddSymbol(obj.Symbol{Name: f.SymName, Section: obj.SecText, Offset: start,
		Size: size, Global: global})
	return nil
}
