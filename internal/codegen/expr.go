package codegen

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/obj"
)

// movSym loads the absolute address of a symbol into r via an Abs64
// relocation on a MOVI immediate.
func (fe *fnEmitter) movSym(r isa.Reg, sym string) {
	at := fe.asm().Len()
	fe.asm().Movi(r, 0)
	fe.e.o.AddReloc(obj.Reloc{
		Section: obj.SecText,
		Offset:  uint64(at + 2),
		Type:    obj.RelocAbs64,
		Symbol:  sym,
	})
}

// location describes an addressable memory slot.
type location struct {
	base    isa.Reg
	disp    int32
	size    int
	signed  bool
	ownBase bool // base register must be freed after use
}

func (fe *fnEmitter) freeLoc(l location) {
	if l.ownBase {
		fe.free(l.base)
	}
}

// locOf resolves an lvalue to a location.
func (fe *fnEmitter) locOf(x cc.Expr) (location, error) {
	switch x := x.(type) {
	case *cc.VarRef:
		sym := x.Sym
		size, signed := accessInfo(sym.Type)
		switch sym.Storage {
		case cc.StorageLocal, cc.StorageParam:
			return location{base: FP, disp: fe.slots[sym], size: size, signed: signed}, nil
		default:
			r, err := fe.alloc()
			if err != nil {
				return location{}, err
			}
			fe.movSym(r, fe.e.symName(sym))
			return location{base: r, size: size, signed: signed, ownBase: true}, nil
		}

	case *cc.Unary: // *p
		if x.Op != "*" {
			break
		}
		r, err := fe.expr(x.X)
		if err != nil {
			return location{}, err
		}
		size, signed := accessInfo(x.Type())
		return location{base: r, size: size, signed: signed, ownBase: true}, nil

	case *cc.Index:
		r, err := fe.indexAddr(x)
		if err != nil {
			return location{}, err
		}
		size, signed := accessInfo(x.Type())
		return location{base: r, size: size, signed: signed, ownBase: true}, nil
	}
	return location{}, fmt.Errorf("not an lvalue: %T", x)
}

// indexAddr computes &base[idx] into a fresh register.
func (fe *fnEmitter) indexAddr(x *cc.Index) (isa.Reg, error) {
	rb, err := fe.expr(x.Base)
	if err != nil {
		return 0, err
	}
	elem := x.Base.Type().Elem.ByteSize()
	// Constant index: fold into the displacement-free add.
	if lit, ok := x.Idx.(*cc.IntLit); ok {
		off := lit.Value * elem
		if off != 0 {
			if off >= math.MinInt32 && off <= math.MaxInt32 {
				fe.asm().AluI(isa.ADDI, rb, int32(off))
			} else {
				ri, err := fe.alloc()
				if err != nil {
					return 0, err
				}
				fe.asm().Movi(ri, off)
				fe.asm().Alu(isa.ADD, rb, ri)
				fe.free(ri)
			}
		}
		return rb, nil
	}
	ri, err := fe.expr(x.Idx)
	if err != nil {
		return 0, err
	}
	fe.scale(ri, elem)
	fe.asm().Alu(isa.ADD, rb, ri)
	fe.free(ri)
	return rb, nil
}

// scale multiplies r by a positive element size.
func (fe *fnEmitter) scale(r isa.Reg, elem int64) {
	switch {
	case elem == 1:
	case elem > 0 && elem&(elem-1) == 0:
		fe.asm().AluI(isa.SHLI, r, int32(bits.TrailingZeros64(uint64(elem))))
	default:
		fe.asm().AluI(isa.MULI, r, int32(elem))
	}
}

func (fe *fnEmitter) load(l location) (isa.Reg, error) {
	r, err := fe.alloc()
	if err != nil {
		return 0, err
	}
	if l.signed {
		fe.asm().Lds(r, l.base, l.size, l.disp)
	} else {
		fe.asm().Ld(r, l.base, l.size, l.disp)
	}
	return r, nil
}

func (fe *fnEmitter) store(l location, r isa.Reg) {
	fe.asm().St(l.base, r, l.size, l.disp)
}

// expr evaluates x into a freshly allocated register.
func (fe *fnEmitter) expr(x cc.Expr) (isa.Reg, error) {
	switch x := x.(type) {
	case *cc.IntLit:
		r, err := fe.alloc()
		if err != nil {
			return 0, err
		}
		fe.asm().Movi(r, x.Value)
		return r, nil

	case *cc.StrLit:
		r, err := fe.alloc()
		if err != nil {
			return 0, err
		}
		fe.movSym(r, fe.e.strSym(x.Value))
		return r, nil

	case *cc.VarRef:
		sym := x.Sym
		// Function designators and arrays evaluate to their address.
		if sym.Func != nil || sym.Type.Kind == cc.KindArray {
			r, err := fe.alloc()
			if err != nil {
				return 0, err
			}
			fe.movSym(r, fe.e.symName(sym))
			return r, nil
		}
		loc, err := fe.locOf(x)
		if err != nil {
			return 0, err
		}
		if !loc.ownBase {
			return fe.load(loc)
		}
		// Reuse the address register for the value.
		if loc.signed {
			fe.asm().Lds(loc.base, loc.base, loc.size, loc.disp)
		} else {
			fe.asm().Ld(loc.base, loc.base, loc.size, loc.disp)
		}
		return loc.base, nil

	case *cc.Unary:
		return fe.unary(x)

	case *cc.Binary:
		return fe.binary(x)

	case *cc.Assign:
		if err := fe.assign(x, true); err != nil {
			return 0, err
		}
		return fe.vstack[len(fe.vstack)-1], nil

	case *cc.IncDec:
		if err := fe.incDec(x, true); err != nil {
			return 0, err
		}
		return fe.vstack[len(fe.vstack)-1], nil

	case *cc.Call:
		r, err := fe.call(x)
		if err != nil {
			return 0, err
		}
		if r < 0 {
			return 0, fmt.Errorf("void call used as a value")
		}
		return isa.Reg(r), nil

	case *cc.Index:
		loc, err := fe.locOf(x)
		if err != nil {
			return 0, err
		}
		if loc.signed {
			fe.asm().Lds(loc.base, loc.base, loc.size, loc.disp)
		} else {
			fe.asm().Ld(loc.base, loc.base, loc.size, loc.disp)
		}
		return loc.base, nil

	case *cc.Cast:
		return fe.cast(x)

	case *cc.Cond:
		r, err := fe.alloc()
		if err != nil {
			return 0, err
		}
		elseL := fe.newLabel()
		endL := fe.newLabel()
		if err := fe.cond(x.C, false, elseL); err != nil {
			return 0, err
		}
		rt, err := fe.expr(x.T)
		if err != nil {
			return 0, err
		}
		if rt != r {
			fe.asm().Mov(r, rt)
		}
		fe.free(rt)
		fe.jump(endL)
		fe.place(elseL)
		rf, err := fe.expr(x.F)
		if err != nil {
			return 0, err
		}
		if rf != r {
			fe.asm().Mov(r, rf)
		}
		fe.free(rf)
		fe.place(endL)
		return r, nil

	case *cc.Builtin:
		r, err := fe.builtin(x)
		if err != nil {
			return 0, err
		}
		if r < 0 {
			return 0, fmt.Errorf("void builtin %s used as a value", x.Name)
		}
		return isa.Reg(r), nil
	}
	return 0, fmt.Errorf("codegen: unknown expression %T", x)
}

func (fe *fnEmitter) unary(x *cc.Unary) (isa.Reg, error) {
	switch x.Op {
	case "-", "~":
		r, err := fe.expr(x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == "-" {
			fe.asm().Alu(isa.NEG, r, 0)
		} else {
			fe.asm().Alu(isa.NOT, r, 0)
		}
		return r, nil

	case "!":
		r, err := fe.expr(x.X)
		if err != nil {
			return 0, err
		}
		fe.asm().CmpI(r, 0)
		fe.asm().SetCC(r, isa.EQ)
		return r, nil

	case "*":
		loc, err := fe.locOf(x)
		if err != nil {
			return 0, err
		}
		if loc.signed {
			fe.asm().Lds(loc.base, loc.base, loc.size, loc.disp)
		} else {
			fe.asm().Ld(loc.base, loc.base, loc.size, loc.disp)
		}
		return loc.base, nil

	case "&":
		return fe.addrOf(x.X)
	}
	return 0, fmt.Errorf("codegen: unary %q", x.Op)
}

// addrOf evaluates &x.
func (fe *fnEmitter) addrOf(x cc.Expr) (isa.Reg, error) {
	switch x := x.(type) {
	case *cc.VarRef:
		sym := x.Sym
		switch sym.Storage {
		case cc.StorageLocal, cc.StorageParam:
			r, err := fe.alloc()
			if err != nil {
				return 0, err
			}
			fe.asm().Lea(r, FP, fe.slots[sym])
			return r, nil
		default:
			r, err := fe.alloc()
			if err != nil {
				return 0, err
			}
			fe.movSym(r, fe.e.symName(sym))
			return r, nil
		}
	case *cc.Unary:
		if x.Op == "*" {
			return fe.expr(x.X)
		}
	case *cc.Index:
		return fe.indexAddr(x)
	}
	return 0, fmt.Errorf("cannot take address of %T", x)
}

// immALUOp maps a binary operator to its immediate-form opcode when
// the operand signedness allows it (div/mod/shr depend on sign).
func immALUOp(op string, unsigned bool) (isa.Op, bool) {
	switch op {
	case "+":
		return isa.ADDI, true
	case "-":
		return isa.SUBI, true
	case "*":
		return isa.MULI, true
	case "&":
		return isa.ANDI, true
	case "|":
		return isa.ORI, true
	case "^":
		return isa.XORI, true
	case "<<":
		return isa.SHLI, true
	case ">>":
		if unsigned {
			return isa.SHRI, true
		}
		return isa.SARI, true
	case "/":
		if !unsigned {
			return isa.DIVI, true
		}
	case "%":
		if !unsigned {
			return isa.MODI, true
		}
	}
	return 0, false
}

func regALUOp(op string, unsigned bool) isa.Op {
	switch op {
	case "+":
		return isa.ADD
	case "-":
		return isa.SUB
	case "*":
		return isa.MUL
	case "&":
		return isa.AND
	case "|":
		return isa.OR
	case "^":
		return isa.XOR
	case "<<":
		return isa.SHL
	case ">>":
		if unsigned {
			return isa.SHR
		}
		return isa.SAR
	case "/":
		if unsigned {
			return isa.UDIV
		}
		return isa.DIV
	case "%":
		if unsigned {
			return isa.UMOD
		}
		return isa.MOD
	}
	panic("codegen: not an ALU operator: " + op)
}

func (fe *fnEmitter) binary(x *cc.Binary) (isa.Reg, error) {
	if isCompare(x.Op) {
		rx, err := fe.expr(x.X)
		if err != nil {
			return 0, err
		}
		unsigned := unsignedCompare(x.X, x.Y)
		if lit, ok := x.Y.(*cc.IntLit); ok && fitsI32(lit.Value) {
			fe.asm().CmpI(rx, int32(lit.Value))
		} else {
			ry, err := fe.expr(x.Y)
			if err != nil {
				return 0, err
			}
			fe.asm().Cmp(rx, ry)
			fe.free(ry)
		}
		fe.asm().SetCC(rx, condCode(x.Op, unsigned))
		return rx, nil
	}

	if x.Op == "&&" || x.Op == "||" {
		r, err := fe.alloc()
		if err != nil {
			return 0, err
		}
		falseL := fe.newLabel()
		endL := fe.newLabel()
		if err := fe.cond(x, false, falseL); err != nil {
			return 0, err
		}
		fe.asm().Movi(r, 1)
		fe.jump(endL)
		fe.place(falseL)
		fe.asm().Movi(r, 0)
		fe.place(endL)
		return r, nil
	}

	xt, yt := x.X.Type(), x.Y.Type()

	// Pointer arithmetic.
	if xt.Kind == cc.KindPtr || yt.Kind == cc.KindPtr {
		switch {
		case xt.Kind == cc.KindPtr && yt.Kind == cc.KindPtr: // ptr - ptr
			rx, err := fe.expr(x.X)
			if err != nil {
				return 0, err
			}
			ry, err := fe.expr(x.Y)
			if err != nil {
				return 0, err
			}
			fe.asm().Alu(isa.SUB, rx, ry)
			fe.free(ry)
			elem := xt.Elem.ByteSize()
			switch {
			case elem == 1:
			case elem > 0 && elem&(elem-1) == 0:
				fe.asm().AluI(isa.SARI, rx, int32(bits.TrailingZeros64(uint64(elem))))
			default:
				fe.asm().AluI(isa.DIVI, rx, int32(elem))
			}
			return rx, nil

		case xt.Kind == cc.KindPtr: // ptr +- int
			rx, err := fe.expr(x.X)
			if err != nil {
				return 0, err
			}
			elem := xt.Elem.ByteSize()
			if lit, ok := x.Y.(*cc.IntLit); ok && fitsI32(lit.Value*elem) {
				off := int32(lit.Value * elem)
				if x.Op == "-" {
					off = -off
				}
				if off != 0 {
					fe.asm().AluI(isa.ADDI, rx, off)
				}
				return rx, nil
			}
			ry, err := fe.expr(x.Y)
			if err != nil {
				return 0, err
			}
			fe.scale(ry, elem)
			if x.Op == "+" {
				fe.asm().Alu(isa.ADD, rx, ry)
			} else {
				fe.asm().Alu(isa.SUB, rx, ry)
			}
			fe.free(ry)
			return rx, nil

		default: // int + ptr
			ry, err := fe.expr(x.Y)
			if err != nil {
				return 0, err
			}
			rx, err := fe.expr(x.X)
			if err != nil {
				return 0, err
			}
			fe.scale(rx, yt.Elem.ByteSize())
			fe.asm().Alu(isa.ADD, ry, rx)
			fe.free(rx)
			return ry, nil
		}
	}

	unsigned := !x.Type().IsSigned()
	rx, err := fe.expr(x.X)
	if err != nil {
		return 0, err
	}
	if lit, ok := x.Y.(*cc.IntLit); ok && fitsI32(lit.Value) {
		if op, ok := immALUOp(x.Op, unsigned); ok && !(lit.Value == 0 && (x.Op == "/" || x.Op == "%")) {
			fe.asm().AluI(op, rx, int32(lit.Value))
			return rx, nil
		}
	}
	ry, err := fe.expr(x.Y)
	if err != nil {
		return 0, err
	}
	fe.asm().Alu(regALUOp(x.Op, unsigned), rx, ry)
	fe.free(ry)
	return rx, nil
}

func fitsI32(v int64) bool {
	return v >= math.MinInt32 && v <= math.MaxInt32
}

// assign emits lhs op= rhs; when needValue is true the stored value is
// left on the vstack.
func (fe *fnEmitter) assign(x *cc.Assign, needValue bool) error {
	loc, err := fe.locOf(x.LHS)
	if err != nil {
		return err
	}
	var r isa.Reg
	if x.Op == "=" {
		r, err = fe.expr(x.RHS)
		if err != nil {
			return err
		}
	} else {
		// Compound: load, combine, store.
		r, err = fe.load(loc)
		if err != nil {
			return err
		}
		op := x.Op[:len(x.Op)-1]
		lt := x.LHS.Type()
		if lt.Kind == cc.KindPtr {
			// p += n / p -= n with scaling.
			ry, err := fe.expr(x.RHS)
			if err != nil {
				return err
			}
			fe.scale(ry, lt.Elem.ByteSize())
			if op == "+" {
				fe.asm().Alu(isa.ADD, r, ry)
			} else {
				fe.asm().Alu(isa.SUB, r, ry)
			}
			fe.free(ry)
		} else {
			unsigned := !cc.Common(lt, x.RHS.Type()).IsSigned()
			if lit, ok := x.RHS.(*cc.IntLit); ok && fitsI32(lit.Value) {
				if iop, ok := immALUOp(op, unsigned); ok && !(lit.Value == 0 && (op == "/" || op == "%")) {
					fe.asm().AluI(iop, r, int32(lit.Value))
					goto stored
				}
			}
			{
				ry, err := fe.expr(x.RHS)
				if err != nil {
					return err
				}
				fe.asm().Alu(regALUOp(op, unsigned), r, ry)
				fe.free(ry)
			}
		}
	}
stored:
	fe.store(loc, r)
	if loc.ownBase {
		// Free the base but keep the value register live if requested.
		fe.free(loc.base)
	}
	if !needValue {
		fe.free(r)
	}
	return nil
}

// incDec emits x++ / x-- / ++x / --x; when needValue is true the old
// (postfix) or new (prefix) value is left on the vstack.
func (fe *fnEmitter) incDec(x *cc.IncDec, needValue bool) error {
	loc, err := fe.locOf(x.X)
	if err != nil {
		return err
	}
	r, err := fe.load(loc)
	if err != nil {
		return err
	}
	var old isa.Reg
	saveOld := needValue && !x.Prefix
	if saveOld {
		old, err = fe.alloc()
		if err != nil {
			return err
		}
		fe.asm().Mov(old, r)
	}
	step := int64(1)
	if t := x.X.Type(); t.Kind == cc.KindPtr {
		step = t.Elem.ByteSize()
	}
	if x.Op == "++" {
		fe.asm().AluI(isa.ADDI, r, int32(step))
	} else {
		fe.asm().AluI(isa.SUBI, r, int32(step))
	}
	fe.store(loc, r)
	if needValue && x.Prefix {
		// Prefix: the updated value is the result; keep r live.
		fe.freeLoc(loc)
		fe.free(r)
		fe.vstack = append(fe.vstack, r)
		return nil
	}
	fe.free(r)
	fe.freeLoc(loc)
	if saveOld {
		// Move the old value to the top of the vstack bookkeeping.
		fe.free(old)
		fe.vstack = append(fe.vstack, old)
	}
	return nil
}

func (fe *fnEmitter) cast(x *cc.Cast) (isa.Reg, error) {
	r, err := fe.expr(x.X)
	if err != nil {
		return 0, err
	}
	to := x.To
	if to.Kind == cc.KindBool {
		fe.asm().CmpI(r, 0)
		fe.asm().SetCC(r, isa.NE)
		return r, nil
	}
	if !to.IsInteger() {
		return r, nil // pointer casts are free
	}
	size := to.ByteSize()
	if size >= 8 {
		return r, nil
	}
	sh := int32(64 - 8*size)
	fe.asm().AluI(isa.SHLI, r, sh)
	if to.IsSigned() {
		fe.asm().AluI(isa.SARI, r, sh)
	} else {
		fe.asm().AluI(isa.SHRI, r, sh)
	}
	return r, nil
}
