package codegen

import (
	"fmt"
	"sort"

	"repro/internal/cc"
	"repro/internal/isa"
)

// fnEmitter generates code for one function body.
type fnEmitter struct {
	e       *emitter
	f       *cc.FuncDecl
	symName string

	slots     map[*cc.VarSym]int32 // FP-relative displacement
	frameSize int32

	vstack    []isa.Reg // expression registers currently live
	clobbered [numScratch]bool

	labels   []int   // label id -> text offset (-1 unplaced)
	fixups   []fixup // rel32 fields to patch
	breakLbl []int   // loop nesting: break targets
	contLbl  []int   // loop nesting: continue targets
	epilogue int     // label id of the common exit

	funcStart int        // text offset of the function entry
	osrPoints []osrPoint // recorded OSR points (multiverse funcs)
}

type fixup struct {
	fieldOff int // offset of the rel32 field within .text
	label    int
}

func (fe *fnEmitter) asm() *isa.Asm { return &fe.e.text }

func (fe *fnEmitter) newLabel() int {
	fe.labels = append(fe.labels, -1)
	return len(fe.labels) - 1
}

func (fe *fnEmitter) place(l int) {
	fe.labels[l] = fe.asm().Len()
}

// jump emits an unconditional jump to a label.
func (fe *fnEmitter) jump(l int) {
	at := fe.asm().Len()
	fe.asm().Jmp(0)
	fe.fixups = append(fe.fixups, fixup{at + 1, l})
}

// jcc emits a conditional jump to a label.
func (fe *fnEmitter) jcc(cc isa.Cond, l int) {
	at := fe.asm().Len()
	fe.asm().Jcc(cc, 0)
	fe.fixups = append(fe.fixups, fixup{at + 2, l})
}

func (fe *fnEmitter) patchFixups(funcStart int) error {
	code := fe.asm().Bytes()
	for _, fx := range fe.fixups {
		target := fe.labels[fx.label]
		if target < 0 {
			return fmt.Errorf("unplaced label %d", fx.label)
		}
		rel := int64(target) - int64(fx.fieldOff+4)
		if rel != int64(int32(rel)) {
			return fmt.Errorf("branch out of range")
		}
		for i := 0; i < 4; i++ {
			code[fx.fieldOff+i] = byte(uint32(rel) >> (8 * i))
		}
	}
	return nil
}

// ---- register allocation ----

func (fe *fnEmitter) alloc() (isa.Reg, error) {
	inUse := [numScratch]bool{}
	for _, r := range fe.vstack {
		inUse[r] = true
	}
	for r := 0; r < numScratch; r++ {
		if !inUse[r] {
			fe.vstack = append(fe.vstack, isa.Reg(r))
			fe.clobbered[r] = true
			return isa.Reg(r), nil
		}
	}
	return 0, fmt.Errorf("expression too complex: out of scratch registers")
}

func (fe *fnEmitter) free(r isa.Reg) {
	for i := len(fe.vstack) - 1; i >= 0; i-- {
		if fe.vstack[i] == r {
			fe.vstack = append(fe.vstack[:i], fe.vstack[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("codegen: free of non-live register %v", r))
}

// ---- frame layout ----

func (fe *fnEmitter) assignSlots() {
	fe.slots = make(map[*cc.VarSym]int32)
	idx := int32(0)
	add := func(s *cc.VarSym) {
		if _, ok := fe.slots[s]; ok {
			return
		}
		idx++
		fe.slots[s] = -8 * idx
	}
	used := usedSyms(fe.f)
	for _, p := range fe.f.Params {
		if used[p] {
			add(p)
		}
	}
	var walkStmt func(s cc.Stmt)
	walkStmt = func(s cc.Stmt) {
		switch s := s.(type) {
		case *cc.Block:
			for _, st := range s.Stmts {
				walkStmt(st)
			}
		case *cc.DeclStmt:
			add(s.Sym)
		case *cc.If:
			walkStmt(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *cc.While:
			walkStmt(s.Body)
		case *cc.DoWhile:
			walkStmt(s.Body)
		case *cc.For:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkStmt(s.Body)
		case *cc.Switch:
			for _, cs := range s.Cases {
				for _, st := range cs.Stmts {
					walkStmt(st)
				}
			}
		}
	}
	if fe.f.Body != nil {
		walkStmt(fe.f.Body)
	}
	fe.frameSize = 8 * idx
}

// accessInfo returns the memory access size and signedness for a type.
func accessInfo(t *cc.Type) (int, bool) {
	switch t.Kind {
	case cc.KindPtr, cc.KindFunc:
		return 8, false
	default:
		size := int(t.ByteSize())
		if size == 0 {
			size = 8
		}
		return size, t.IsSigned()
	}
}

// ---- emission ----

func (fe *fnEmitter) emit() error {
	fe.assignSlots()
	fe.epilogue = fe.newLabel()
	a := fe.asm()
	funcStart := a.Len()
	fe.funcStart = funcStart

	// Frame-pointer omission: a function without parameters or locals
	// never addresses its frame, so the FP dance disappears and an
	// empty body compiles to a bare RET — which is what lets the
	// runtime's call-site inlining (paper Â§4) erase empty variants.
	hasFrame := fe.frameSize > 0
	if hasFrame {
		a.Push(FP)
		a.Mov(FP, isa.SP)
		a.SpAdd(-fe.frameSize)
	}
	// NoScratch: reserve room for register saves; we only know the
	// clobber set after emitting the body, so emit placeholder NOPs
	// now and rewrite them into pushes afterwards. Each push is 2
	// bytes, so reserve 2 bytes per scratch register.
	savesAt := a.Len()
	if fe.f.NoScratch {
		for i := 0; i < numScratch; i++ {
			a.Nop(2)
		}
	}
	// Spill parameters into their slots. Parameters a specialized
	// variant no longer reads get neither a slot nor a spill, so an
	// optimized-to-nothing variant really compiles to nothing.
	for i, p := range fe.f.Params {
		if _, ok := fe.slots[p]; !ok {
			continue
		}
		size, _ := accessInfo(p.Type)
		a.St(FP, isa.Reg(i), size, fe.slots[p])
	}

	if fe.f.Body != nil {
		if err := fe.stmt(fe.f.Body); err != nil {
			return err
		}
	}

	// Common epilogue.
	fe.place(fe.epilogue)
	if fe.f.NoScratch {
		// Restore clobbered scratch registers (reverse order).
		var regs []isa.Reg
		for r := 0; r < numScratch; r++ {
			if fe.clobbered[r] {
				regs = append(regs, isa.Reg(r))
			}
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		for i := len(regs) - 1; i >= 0; i-- {
			a.Pop(regs[i])
		}
		// Rewrite the placeholder NOPs into the pushes; collapse the
		// unused remainder into one wide NOP so it costs one decode.
		code := a.Bytes()
		off := savesAt
		for _, r := range regs {
			code[off] = byte(isa.PUSH)
			code[off+1] = byte(r)
			off += 2
		}
		if rest := savesAt + 2*numScratch - off; rest >= 2 {
			code[off] = byte(isa.NOPN)
			code[off+1] = byte(rest)
			for i := 2; i < rest; i++ {
				code[off+i] = 0
			}
		}
	}
	if hasFrame {
		a.Mov(isa.SP, FP)
		a.Pop(FP)
	}
	a.Ret()

	return fe.patchFixups(funcStart)
}

func (fe *fnEmitter) stmt(s cc.Stmt) error {
	switch s := s.(type) {
	case nil, *cc.Empty:
		return nil

	case *cc.Block:
		for _, st := range s.Stmts {
			if err := fe.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *cc.DeclStmt:
		if s.Init == nil {
			return nil
		}
		r, err := fe.expr(s.Init)
		if err != nil {
			return err
		}
		size, _ := accessInfo(s.Sym.Type)
		fe.asm().St(FP, r, size, fe.slots[s.Sym])
		fe.free(r)
		return nil

	case *cc.ExprStmt:
		return fe.exprForEffect(s.X)

	case *cc.If:
		elseL := fe.newLabel()
		endL := elseL
		if s.Else != nil {
			endL = fe.newLabel()
		}
		if err := fe.cond(s.Cond, false, elseL); err != nil {
			return err
		}
		if err := fe.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			fe.jump(endL)
			fe.place(elseL)
			if err := fe.stmt(s.Else); err != nil {
				return err
			}
			fe.place(endL)
		} else {
			fe.place(elseL)
		}
		return nil

	case *cc.While:
		top := fe.newLabel()
		end := fe.newLabel()
		fe.place(top)
		fe.noteOSRPoint(s.OSR, OSRPointLoop, 0)
		if err := fe.cond(s.Cond, false, end); err != nil {
			return err
		}
		fe.breakLbl = append(fe.breakLbl, end)
		fe.contLbl = append(fe.contLbl, top)
		err := fe.stmt(s.Body)
		fe.breakLbl = fe.breakLbl[:len(fe.breakLbl)-1]
		fe.contLbl = fe.contLbl[:len(fe.contLbl)-1]
		if err != nil {
			return err
		}
		fe.jump(top)
		fe.place(end)
		return nil

	case *cc.DoWhile:
		top := fe.newLabel()
		cont := fe.newLabel()
		end := fe.newLabel()
		fe.place(top)
		fe.noteOSRPoint(s.OSR, OSRPointLoop, 0)
		fe.breakLbl = append(fe.breakLbl, end)
		fe.contLbl = append(fe.contLbl, cont)
		err := fe.stmt(s.Body)
		fe.breakLbl = fe.breakLbl[:len(fe.breakLbl)-1]
		fe.contLbl = fe.contLbl[:len(fe.contLbl)-1]
		if err != nil {
			return err
		}
		fe.place(cont)
		if err := fe.cond(s.Cond, true, top); err != nil {
			return err
		}
		fe.place(end)
		return nil

	case *cc.For:
		if s.Init != nil {
			if err := fe.stmt(s.Init); err != nil {
				return err
			}
		}
		top := fe.newLabel()
		cont := fe.newLabel()
		end := fe.newLabel()
		fe.place(top)
		fe.noteOSRPoint(s.OSR, OSRPointLoop, 0)
		if s.Cond != nil {
			if err := fe.cond(s.Cond, false, end); err != nil {
				return err
			}
		}
		fe.breakLbl = append(fe.breakLbl, end)
		fe.contLbl = append(fe.contLbl, cont)
		err := fe.stmt(s.Body)
		fe.breakLbl = fe.breakLbl[:len(fe.breakLbl)-1]
		fe.contLbl = fe.contLbl[:len(fe.contLbl)-1]
		if err != nil {
			return err
		}
		fe.place(cont)
		if s.Post != nil {
			if err := fe.exprForEffect(s.Post); err != nil {
				return err
			}
		}
		fe.jump(top)
		fe.place(end)
		return nil

	case *cc.Switch:
		return fe.switchStmt(s)

	case *cc.Return:
		if s.X != nil {
			r, err := fe.expr(s.X)
			if err != nil {
				return err
			}
			if r != 0 {
				fe.asm().Mov(0, r)
				fe.clobbered[0] = true
			}
			fe.free(r)
		}
		fe.jump(fe.epilogue)
		return nil

	case *cc.Break:
		if len(fe.breakLbl) == 0 {
			return fmt.Errorf("break outside loop")
		}
		fe.jump(fe.breakLbl[len(fe.breakLbl)-1])
		return nil

	case *cc.Continue:
		if len(fe.contLbl) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		fe.jump(fe.contLbl[len(fe.contLbl)-1])
		return nil
	}
	return fmt.Errorf("codegen: unknown statement %T", s)
}

// exprForEffect evaluates an expression, discarding the value.
func (fe *fnEmitter) exprForEffect(x cc.Expr) error {
	switch x := x.(type) {
	case *cc.Assign:
		return fe.assign(x, false)
	case *cc.IncDec:
		return fe.incDec(x, false)
	case *cc.Call:
		r, err := fe.call(x)
		if err != nil {
			return err
		}
		if r >= 0 {
			fe.free(isa.Reg(r))
		}
		return nil
	case *cc.Builtin:
		r, err := fe.builtin(x)
		if err != nil {
			return err
		}
		if r >= 0 {
			fe.free(isa.Reg(r))
		}
		return nil
	default:
		r, err := fe.expr(x)
		if err != nil {
			return err
		}
		fe.free(r)
		return nil
	}
}

// ---- conditions ----

// condCode maps a comparison operator to a condition code given the
// signedness of the comparison.
func condCode(op string, unsigned bool) isa.Cond {
	if unsigned {
		switch op {
		case "==":
			return isa.EQ
		case "!=":
			return isa.NE
		case "<":
			return isa.B
		case "<=":
			return isa.BE
		case ">":
			return isa.A
		case ">=":
			return isa.AE
		}
	}
	switch op {
	case "==":
		return isa.EQ
	case "!=":
		return isa.NE
	case "<":
		return isa.LT
	case "<=":
		return isa.LE
	case ">":
		return isa.GT
	case ">=":
		return isa.GE
	}
	panic("codegen: not a comparison: " + op)
}

func isCompare(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// unsignedCompare reports whether the comparison of x and y is
// unsigned: pointers always, integers per the usual conversions.
func unsignedCompare(x, y cc.Expr) bool {
	xt, yt := x.Type(), y.Type()
	if xt.Kind == cc.KindPtr || yt.Kind == cc.KindPtr {
		return true
	}
	return !cc.Common(xt, yt).IsSigned()
}

// cond emits a branch to label when the truth value of x equals
// jumpIfTrue; otherwise control falls through.
func (fe *fnEmitter) cond(x cc.Expr, jumpIfTrue bool, label int) error {
	switch x := x.(type) {
	case *cc.IntLit:
		if (x.Value != 0) == jumpIfTrue {
			fe.jump(label)
		}
		return nil

	case *cc.Unary:
		if x.Op == "!" {
			return fe.cond(x.X, !jumpIfTrue, label)
		}

	case *cc.Binary:
		if isCompare(x.Op) {
			rx, err := fe.expr(x.X)
			if err != nil {
				return err
			}
			ry, err := fe.expr(x.Y)
			if err != nil {
				return err
			}
			fe.asm().Cmp(rx, ry)
			fe.free(ry)
			fe.free(rx)
			code := condCode(x.Op, unsignedCompare(x.X, x.Y))
			if !jumpIfTrue {
				code = code.Neg()
			}
			fe.jcc(code, label)
			return nil
		}
		switch x.Op {
		case "&&":
			if jumpIfTrue {
				skip := fe.newLabel()
				if err := fe.cond(x.X, false, skip); err != nil {
					return err
				}
				if err := fe.cond(x.Y, true, label); err != nil {
					return err
				}
				fe.place(skip)
				return nil
			}
			if err := fe.cond(x.X, false, label); err != nil {
				return err
			}
			return fe.cond(x.Y, false, label)
		case "||":
			if jumpIfTrue {
				if err := fe.cond(x.X, true, label); err != nil {
					return err
				}
				return fe.cond(x.Y, true, label)
			}
			skip := fe.newLabel()
			if err := fe.cond(x.X, true, skip); err != nil {
				return err
			}
			if err := fe.cond(x.Y, false, label); err != nil {
				return err
			}
			fe.place(skip)
			return nil
		}
	}

	// Generic: evaluate and compare against zero.
	r, err := fe.expr(x)
	if err != nil {
		return err
	}
	fe.asm().CmpI(r, 0)
	fe.free(r)
	if jumpIfTrue {
		fe.jcc(isa.NE, label)
	} else {
		fe.jcc(isa.EQ, label)
	}
	return nil
}

// usedSyms collects every local/param symbol that is read, written or
// address-taken anywhere in the body.
func usedSyms(f *cc.FuncDecl) map[*cc.VarSym]bool {
	out := make(map[*cc.VarSym]bool)
	var walkExpr func(e cc.Expr)
	walkExpr = func(e cc.Expr) {
		switch e := e.(type) {
		case nil:
		case *cc.VarRef:
			if e.Sym != nil {
				out[e.Sym] = true
			}
		case *cc.Unary:
			walkExpr(e.X)
		case *cc.Binary:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *cc.Assign:
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *cc.IncDec:
			walkExpr(e.X)
		case *cc.Call:
			walkExpr(e.Fn)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *cc.Index:
			walkExpr(e.Base)
			walkExpr(e.Idx)
		case *cc.Cast:
			walkExpr(e.X)
		case *cc.Cond:
			walkExpr(e.C)
			walkExpr(e.T)
			walkExpr(e.F)
		case *cc.Builtin:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(s cc.Stmt)
	walk = func(s cc.Stmt) {
		switch s := s.(type) {
		case nil:
		case *cc.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *cc.DeclStmt:
			walkExpr(s.Init)
		case *cc.ExprStmt:
			walkExpr(s.X)
		case *cc.If:
			walkExpr(s.Cond)
			walk(s.Then)
			walk(s.Else)
		case *cc.While:
			walkExpr(s.Cond)
			walk(s.Body)
		case *cc.DoWhile:
			walk(s.Body)
			walkExpr(s.Cond)
		case *cc.For:
			walk(s.Init)
			walkExpr(s.Cond)
			walkExpr(s.Post)
			walk(s.Body)
		case *cc.Switch:
			walkExpr(s.Cond)
			for _, cs := range s.Cases {
				for _, st := range cs.Stmts {
					walk(st)
				}
			}
		case *cc.Return:
			walkExpr(s.X)
		}
	}
	if f.Body != nil {
		walk(f.Body)
	}
	return out
}

// switchStmt lowers a switch to a compare chain followed by the case
// bodies in order (fallthrough is free; break targets the end label).
func (fe *fnEmitter) switchStmt(s *cc.Switch) error {
	r, err := fe.expr(s.Cond)
	if err != nil {
		return err
	}
	end := fe.newLabel()
	caseLbl := make([]int, len(s.Cases))
	defaultIdx := -1
	for i, cs := range s.Cases {
		caseLbl[i] = fe.newLabel()
		if cs.IsDefault {
			defaultIdx = i
			continue
		}
		if cs.Val >= -2147483648 && cs.Val <= 2147483647 {
			fe.asm().CmpI(r, int32(cs.Val))
		} else {
			rv, err := fe.alloc()
			if err != nil {
				return err
			}
			fe.asm().Movi(rv, cs.Val)
			fe.asm().Cmp(r, rv)
			fe.free(rv)
		}
		fe.jcc(isa.EQ, caseLbl[i])
	}
	fe.free(r)
	if defaultIdx >= 0 {
		fe.jump(caseLbl[defaultIdx])
	} else {
		fe.jump(end)
	}
	// Bodies: break exits the switch; continue stays bound to the
	// enclosing loop, so only the break stack grows.
	fe.breakLbl = append(fe.breakLbl, end)
	for i, cs := range s.Cases {
		fe.place(caseLbl[i])
		for _, st := range cs.Stmts {
			if err := fe.stmt(st); err != nil {
				fe.breakLbl = fe.breakLbl[:len(fe.breakLbl)-1]
				return err
			}
		}
	}
	fe.breakLbl = fe.breakLbl[:len(fe.breakLbl)-1]
	fe.place(end)
	return nil
}
