package codegen

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/obj"
)

// compileAndLoad runs the full pipeline on one or more MVC sources and
// returns a loaded machine.
func compileAndLoad(t *testing.T, srcs ...string) *machine.Machine {
	t.Helper()
	var objs []*obj.Object
	for i, src := range srcs {
		name := "unit" + string(rune('A'+i)) + ".mvc"
		u, err := cc.Parse(name, src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := cc.Check(u); err != nil {
			t.Fatalf("check: %v", err)
		}
		o, err := Compile(ProgramFromUnit(u))
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		objs = append(objs, o)
	}
	img, err := link.Link(objs...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m, err := machine.New(img)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return m
}

func callOK(t *testing.T, m *machine.Machine, name string, args ...uint64) uint64 {
	t.Helper()
	v, err := m.CallNamed(name, args...)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return v
}

func TestArithmeticFunctions(t *testing.T) {
	m := compileAndLoad(t, `
		long add(long a, long b) { return a + b; }
		long mix(long a, long b, long c) { return a * b - c / 2 + (a % 3); }
		long neg(long a) { return -a; }
		long bitops(long a, long b) { return ((a & b) | (a ^ b)) << 1 >> 1; }
	`)
	if got := callOK(t, m, "add", 30, 12); got != 42 {
		t.Errorf("add = %d", got)
	}
	if got := int64(callOK(t, m, "mix", 7, 6, 10)); got != 7*6-10/2+7%3 {
		t.Errorf("mix = %d", got)
	}
	if got := int64(callOK(t, m, "neg", 5)); got != -5 {
		t.Errorf("neg = %d", got)
	}
	if got := callOK(t, m, "bitops", 0b1100, 0b1010); got != ((0b1100&0b1010)|(0b1100^0b1010))<<1>>1 {
		t.Errorf("bitops = %d", got)
	}
}

func TestUnsignedDivision(t *testing.T) {
	m := compileAndLoad(t, `
		ulong udiv(ulong a, ulong b) { return a / b; }
		ulong umod(ulong a, ulong b) { return a % b; }
		long sdiv(long a, long b) { return a / b; }
	`)
	big := uint64(0xFFFFFFFFFFFFFFF0)
	if got := callOK(t, m, "udiv", big, 16); got != big/16 {
		t.Errorf("udiv = %d, want %d", got, big/16)
	}
	if got := callOK(t, m, "umod", big, 7); got != big%7 {
		t.Errorf("umod = %d", got)
	}
	if got := int64(callOK(t, m, "sdiv", uint64(0xFFFFFFFFFFFFFFF0), 16)); got != -1 {
		t.Errorf("sdiv(-16, 16) = %d, want -1", got)
	}
}

func TestControlFlow(t *testing.T) {
	m := compileAndLoad(t, `
		long sumTo(long n) {
			long s = 0;
			for (long i = 1; i <= n; i++) { s += i; }
			return s;
		}
		long collatzSteps(long n) {
			long steps = 0;
			while (n != 1) {
				if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
				steps++;
			}
			return steps;
		}
		long firstSquareAbove(long limit) {
			long i = 0;
			do { i++; } while (i * i <= limit);
			return i * i;
		}
		long breaker(long n) {
			long acc = 0;
			for (long i = 0; i < 100; i++) {
				if (i == n) { break; }
				if (i % 2) { continue; }
				acc += i;
			}
			return acc;
		}
	`)
	if got := callOK(t, m, "sumTo", 100); got != 5050 {
		t.Errorf("sumTo = %d", got)
	}
	if got := callOK(t, m, "collatzSteps", 27); got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
	if got := callOK(t, m, "firstSquareAbove", 99); got != 100 {
		t.Errorf("firstSquareAbove = %d", got)
	}
	want := uint64(0 + 2 + 4 + 6)
	if got := callOK(t, m, "breaker", 7); got != want {
		t.Errorf("breaker = %d, want %d", got, want)
	}
}

func TestGlobalsAndPointers(t *testing.T) {
	m := compileAndLoad(t, `
		long counter = 3;
		long buf[16];
		long bump(void) { counter++; return counter; }
		void fill(long n) {
			for (long i = 0; i < n; i++) { buf[i] = i * i; }
		}
		long sum(long n) {
			long s = 0;
			long* p = buf;
			for (long i = 0; i < n; i++) { s += *p; p++; }
			return s;
		}
		long via(long* p) { return *p + p[1]; }
		void swap(long* a, long* b) { long t = *a; *a = *b; *b = t; }
		long swapped(void) {
			long x = 1;
			long y = 2;
			swap(&x, &y);
			return x * 10 + y;
		}
	`)
	if got := callOK(t, m, "bump"); got != 4 {
		t.Errorf("bump = %d (initializer lost?)", got)
	}
	callOK(t, m, "fill", 5)
	if got := callOK(t, m, "sum", 5); got != 0+1+4+9+16 {
		t.Errorf("sum = %d", got)
	}
	bufAddr := m.MustSymbol("buf")
	if got := callOK(t, m, "via", bufAddr); got != 0+1 {
		t.Errorf("via = %d", got)
	}
	if got := callOK(t, m, "swapped"); got != 21 {
		t.Errorf("swapped = %d", got)
	}
}

func TestNarrowTypes(t *testing.T) {
	m := compileAndLoad(t, `
		char cbuf[8];
		int istore(int v) { int x = v; return x; }
		long signext(void) {
			cbuf[0] = (char)200;
			return cbuf[0];
		}
		long zeroext(void) {
			cbuf[1] = (char)200;
			uchar* p = (uchar*)cbuf;
			return p[1];
		}
		long truncated(long v) { return (int)v; }
		ulong utrunc(long v) { return (uint)v; }
	`)
	if got := int64(callOK(t, m, "signext")); got != -56 { // int8(200)
		t.Errorf("signext = %d, want -56", got)
	}
	if got := callOK(t, m, "zeroext"); got != 200 {
		t.Errorf("zeroext = %d", got)
	}
	if got := int64(callOK(t, m, "truncated", 0x1_0000_0001)); got != 1 {
		t.Errorf("truncated = %d", got)
	}
	if got := int64(callOK(t, m, "truncated", uint64(0xFFFFFFFF))); got != -1 {
		t.Errorf("truncated(0xFFFFFFFF) = %d, want -1", got)
	}
	if got := callOK(t, m, "utrunc", uint64(0xAABBCCDD11223344)); got != 0x11223344 {
		t.Errorf("utrunc = %#x", got)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	m := compileAndLoad(t, `
		long calls;
		long probe(long v) { calls++; return v; }
		long andTest(long a) { return probe(a) && probe(1); }
		long orTest(long a) { return probe(a) || probe(0); }
		long callCount(void) { return calls; }
		void reset(void) { calls = 0; }
	`)
	callOK(t, m, "reset")
	if got := callOK(t, m, "andTest", 0); got != 0 {
		t.Errorf("0 && 1 = %d", got)
	}
	if got := callOK(t, m, "callCount"); got != 1 {
		t.Errorf("short-circuit && evaluated both sides (calls=%d)", got)
	}
	callOK(t, m, "reset")
	if got := callOK(t, m, "orTest", 5); got != 1 {
		t.Errorf("5 || 0 = %d", got)
	}
	if got := callOK(t, m, "callCount"); got != 1 {
		t.Errorf("short-circuit || evaluated both sides (calls=%d)", got)
	}
}

func TestComparisonMaterialization(t *testing.T) {
	m := compileAndLoad(t, `
		long lt(long a, long b) { return a < b; }
		long ltu(ulong a, ulong b) { return a < b; }
		long eq(long a, long b) { return a == b; }
		long notx(long a) { return !a; }
	`)
	if callOK(t, m, "lt", uint64(0xFFFFFFFFFFFFFFFF), 0) != 1 { // -1 < 0 signed
		t.Error("signed lt")
	}
	if callOK(t, m, "ltu", uint64(0xFFFFFFFFFFFFFFFF), 0) != 0 { // max > 0 unsigned
		t.Error("unsigned ltu")
	}
	if callOK(t, m, "eq", 4, 4) != 1 || callOK(t, m, "eq", 4, 5) != 0 {
		t.Error("eq")
	}
	if callOK(t, m, "notx", 0) != 1 || callOK(t, m, "notx", 9) != 0 {
		t.Error("notx")
	}
}

func TestNestedCallsPreserveTemps(t *testing.T) {
	m := compileAndLoad(t, `
		long twice(long x) { return 2 * x; }
		long deep(long a) { return a + twice(a + twice(a + 1)) + a; }
	`)
	// a=3: twice(4)=8; 3+8=11; twice(11)=22; 3+22+3=28.
	if got := callOK(t, m, "deep", 3); got != 28 {
		t.Errorf("deep = %d, want 28", got)
	}
}

func TestSixArguments(t *testing.T) {
	m := compileAndLoad(t, `
		long six(long a, long b, long c, long d, long e, long f) {
			return a + 2*b + 3*c + 4*d + 5*e + 6*f;
		}
		long caller(void) { return six(1, 2, 3, 4, 5, 6); }
	`)
	want := uint64(1 + 4 + 9 + 16 + 25 + 36)
	if got := callOK(t, m, "six", 1, 2, 3, 4, 5, 6); got != want {
		t.Errorf("six = %d", got)
	}
	if got := callOK(t, m, "caller"); got != want {
		t.Errorf("caller = %d", got)
	}
}

func TestRecursion(t *testing.T) {
	m := compileAndLoad(t, `
		long fib(long n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
	`)
	if got := callOK(t, m, "fib", 15); got != 610 {
		t.Errorf("fib(15) = %d", got)
	}
}

func TestFunctionPointers(t *testing.T) {
	m := compileAndLoad(t, `
		long inc(long x) { return x + 1; }
		long dec(long x) { return x - 1; }
		long (*op)(long);
		void useInc(void) { op = inc; }
		void useDec(void) { op = &dec; }
		long apply(long x) { return op(x); }
	`)
	callOK(t, m, "useInc")
	if got := callOK(t, m, "apply", 10); got != 11 {
		t.Errorf("apply inc = %d", got)
	}
	callOK(t, m, "useDec")
	if got := callOK(t, m, "apply", 10); got != 9 {
		t.Errorf("apply dec = %d", got)
	}
}

func TestCrossUnitLinking(t *testing.T) {
	m := compileAndLoad(t,
		`extern long shared;
		 long helper(long x);
		 long entry(void) { return helper(shared) + 1; }`,
		`long shared = 20;
		 long helper(long x) { return x * 2; }`,
	)
	if got := callOK(t, m, "entry"); got != 41 {
		t.Errorf("entry = %d", got)
	}
}

func TestStaticsAreUnitLocal(t *testing.T) {
	m := compileAndLoad(t,
		`static long hidden = 1;
		 long getA(void) { return hidden; }`,
		`static long hidden = 2;
		 long getB(void) { return hidden; }`,
	)
	if got := callOK(t, m, "getA"); got != 1 {
		t.Errorf("getA = %d", got)
	}
	if got := callOK(t, m, "getB"); got != 2 {
		t.Errorf("getB = %d", got)
	}
}

func TestBuiltinsEndToEnd(t *testing.T) {
	m := compileAndLoad(t, `
		ulong lockword;
		long tryLock(void) { return __xchg(&lockword, 1); }
		void unlock(void) { lockword = 0; }
		ulong stamp(void) { ulong a = __rdtsc(); ulong b = __rdtsc(); return b - a; }
		void shout(void) { __outb(1, 'h'); __outb(1, 'i'); }
	`)
	if got := callOK(t, m, "tryLock"); got != 0 {
		t.Errorf("first tryLock = %d", got)
	}
	if got := callOK(t, m, "tryLock"); got != 1 {
		t.Errorf("second tryLock = %d", got)
	}
	callOK(t, m, "unlock")
	if got := callOK(t, m, "tryLock"); got != 0 {
		t.Errorf("tryLock after unlock = %d", got)
	}
	if got := callOK(t, m, "stamp"); got == 0 {
		t.Error("rdtsc did not advance")
	}
	callOK(t, m, "shout")
	if string(m.Console()) != "hi" {
		t.Errorf("console = %q", m.Console())
	}
}

func TestTernaryAndIncDec(t *testing.T) {
	m := compileAndLoad(t, `
		long pick(long c) { return c ? 111 : 222; }
		long post(void) {
			long i = 5;
			long old = i++;
			return old * 100 + i;
		}
		long postdec(void) {
			long i = 5;
			return i-- * 100 + i;
		}
	`)
	if callOK(t, m, "pick", 1) != 111 || callOK(t, m, "pick", 0) != 222 {
		t.Error("ternary")
	}
	if got := callOK(t, m, "post"); got != 506 {
		t.Errorf("post = %d", got)
	}
	if got := callOK(t, m, "postdec"); got != 504 {
		t.Errorf("postdec = %d", got)
	}
}

func TestStringLiterals(t *testing.T) {
	m := compileAndLoad(t, `
		long strlen_(char* s) {
			long n = 0;
			while (s[n]) { n++; }
			return n;
		}
		long hello(void) { return strlen_("hello"); }
	`)
	if got := callOK(t, m, "hello"); got != 5 {
		t.Errorf("strlen(hello) = %d", got)
	}
}

func TestMultiverseCallSitesRecorded(t *testing.T) {
	u, err := cc.Parse("t.mvc", `
		multiverse int flag;
		multiverse void mvfn(void) { if (flag) {} }
		void a(void) { mvfn(); }
		void b(void) { mvfn(); mvfn(); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Check(u); err != nil {
		t.Fatal(err)
	}
	o, err := Compile(ProgramFromUnit(u))
	if err != nil {
		t.Fatal(err)
	}
	var cs *obj.Section
	for _, s := range o.Sections {
		if s.Name == obj.SecMVCallSites {
			cs = s
		}
	}
	if cs == nil {
		t.Fatal("no callsites section")
	}
	if len(cs.Data) != 3*CallSiteSize {
		t.Errorf("callsites bytes = %d, want %d", len(cs.Data), 3*CallSiteSize)
	}
	// Variable descriptor section must hold one 32-byte record.
	for _, s := range o.Sections {
		if s.Name == obj.SecMVVars && len(s.Data) != VarDescSize {
			t.Errorf("variables bytes = %d, want %d", len(s.Data), VarDescSize)
		}
	}
}

func TestFnPtrSwitchCallSiteRecorded(t *testing.T) {
	u, err := cc.Parse("t.mvc", `
		void native(void) { }
		multiverse void (*pvop)(void);
		void irq(void) { pvop(); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Check(u); err != nil {
		t.Fatal(err)
	}
	o, err := Compile(ProgramFromUnit(u))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range o.Sections {
		if s.Name == obj.SecMVCallSites && len(s.Data) == CallSiteSize {
			found = true
		}
	}
	if !found {
		t.Error("indirect multiverse call site not recorded")
	}
}

func TestNoScratchConventionPreservesRegisters(t *testing.T) {
	// A no-scratch callee must leave every scratch register intact, so
	// the caller's live temporaries survive without caller saves.
	m := compileAndLoad(t, `
		long g;
		noscratch void clobber(void) {
			long a = 1; long b = 2; long c = 3;
			g = a + b + c;
		}
		long caller(long x) {
			long t = x * 7;
			clobber();
			return t + g;
		}
	`)
	if got := callOK(t, m, "caller", 3); got != 3*7+6 {
		t.Errorf("caller = %d, want %d", got, 3*7+6)
	}
}

func TestDescriptorBytesFormula(t *testing.T) {
	// 2 switches, 10 call sites, one function with 2 variants of 1 and
	// 2 guards: 2*32 + 10*16 + 48 + (32+16) + (32+32) = 64+160+48+48+64.
	got := DescriptorBytes(2, 10, [][]int{{1, 2}})
	want := 2*32 + 10*16 + 48 + (32 + 1*16) + (32 + 2*16)
	if got != want {
		t.Errorf("DescriptorBytes = %d, want %d", got, want)
	}
}

func TestEnumsInCode(t *testing.T) {
	m := compileAndLoad(t, `
		enum Mode { ASCII, UTF8, OTHER };
		enum Mode mode;
		void setMode(int m) { mode = (int)m; }
		long isUtf8(void) { return mode == UTF8; }
	`)
	callOK(t, m, "setMode", 1)
	if got := callOK(t, m, "isUtf8"); got != 1 {
		t.Errorf("isUtf8 = %d", got)
	}
	callOK(t, m, "setMode", 2)
	if got := callOK(t, m, "isUtf8"); got != 0 {
		t.Errorf("isUtf8 = %d", got)
	}
}

func TestGlobalCharArrayAndLoop(t *testing.T) {
	m := compileAndLoad(t, `
		char text[64];
		void put(long i, int c) { text[i] = (char)c; }
		long countA(long n) {
			long hits = 0;
			for (long i = 0; i < n; i++) {
				if (text[i] == 'a') { hits++; }
			}
			return hits;
		}
	`)
	callOK(t, m, "put", 0, 'a')
	callOK(t, m, "put", 1, 'b')
	callOK(t, m, "put", 2, 'a')
	if got := callOK(t, m, "countA", 3); got != 2 {
		t.Errorf("countA = %d", got)
	}
}
