package codegen

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/obj"
)

// directCallee returns the function declaration when the call target is
// a plain function reference.
func directCallee(fn cc.Expr) (*cc.VarSym, *cc.FuncDecl, bool) {
	vr, ok := fn.(*cc.VarRef)
	if !ok || vr.Sym == nil || vr.Sym.Func == nil {
		return nil, nil, false
	}
	return vr.Sym, vr.Sym.Func, true
}

// switchPointer returns the multiverse function-pointer switch when the
// call goes through one.
func switchPointer(fn cc.Expr) (*cc.VarSym, bool) {
	vr, ok := fn.(*cc.VarRef)
	if !ok || vr.Sym == nil || vr.Sym.Func != nil {
		return nil, false
	}
	if vr.Sym.Multiverse && vr.Sym.Type.Kind == cc.KindPtr && vr.Sym.Type.Elem.Kind == cc.KindFunc {
		return vr.Sym, true
	}
	return nil, false
}

// call emits a function call. It returns the register index holding the
// result, or -1 for void calls.
func (fe *fnEmitter) call(x *cc.Call) (int, error) {
	calleeSym, calleeDecl, direct := directCallee(x.Fn)
	noScratch := direct && calleeDecl.NoScratch

	// 1. Save the live expression registers (the callee clobbers all
	//    scratch registers). A no-scratch callee preserves registers
	//    itself, so only live temps that collide with argument-passing
	//    registers need saving.
	saved := append([]isa.Reg(nil), fe.vstack...)
	var pushed []isa.Reg
	if noScratch {
		for _, r := range saved {
			if int(r) < len(x.Args) {
				pushed = append(pushed, r)
			}
		}
	} else {
		pushed = saved
	}
	for _, r := range pushed {
		fe.asm().Push(r)
		fe.free(r)
	}

	// 2. Calls through a multiverse function-pointer switch compile to
	//    a single memory-indirect CALLM — the uniform patch unit the
	//    runtime later rewrites into a direct call (the kernel's
	//    "call *pv_ops.field" sites). Other indirect calls evaluate
	//    the target into r9 (never an argument register).
	const fnReg = isa.Reg(9)
	mvSwitch, isSwitch := switchPointer(x.Fn)
	indirect := !direct && !isSwitch
	if indirect {
		rf, err := fe.expr(x.Fn)
		if err != nil {
			return -1, err
		}
		if rf != fnReg {
			if fe.isLive(fnReg) {
				return -1, fmt.Errorf("internal: r9 busy for indirect call")
			}
			fe.asm().Mov(fnReg, rf)
			fe.free(rf)
			fe.vstack = append(fe.vstack, fnReg)
			fe.clobbered[fnReg] = true
		}
	}

	// 3. Evaluate arguments left to right.
	var argRegs []isa.Reg
	for _, a := range x.Args {
		r, err := fe.expr(a)
		if err != nil {
			return -1, err
		}
		argRegs = append(argRegs, r)
	}

	// 4. Shuffle argument registers into r0..r(n-1).
	if err := fe.shuffleArgs(argRegs, indirect, fnReg); err != nil {
		return -1, err
	}

	// 5. Emit the call instruction (exactly isa.CallSiteLen bytes) and
	//    record multiverse call sites.
	at := uint64(fe.asm().Len())
	switch {
	case direct:
		name := fe.e.symName(calleeSym)
		fe.asm().Call(0)
		fe.e.o.AddReloc(obj.Reloc{
			Section: obj.SecText,
			Offset:  at + 1,
			Type:    obj.RelocRel32,
			Symbol:  name,
		})
		if calleeDecl.Multiverse {
			fe.e.callSites = append(fe.e.callSites, callSiteRec{textOff: at, calleeSym: name})
		}
	case isSwitch:
		fe.asm().CallM(0)
		fe.e.o.AddReloc(obj.Reloc{
			Section: obj.SecText,
			Offset:  at + 1,
			Type:    obj.RelocAbs64,
			Symbol:  fe.e.symName(mvSwitch),
		})
		fe.e.callSites = append(fe.e.callSites, callSiteRec{
			textOff:   at,
			calleeSym: fe.e.symName(mvSwitch),
		})
	default:
		fe.asm().CallR(fnReg)
	}

	// The instruction boundary after the call is an OSR point: a frame
	// waiting here can have its return address retargeted to the
	// equivalent point in another variant. Pack the pushed-register
	// mask (low 16 bits) and the live-across-call mask (high 16 bits);
	// the runtime only transfers waiting frames when both are empty in
	// both variants, so no old-variant temps survive the transfer.
	var osrMask uint32
	for _, r := range pushed {
		osrMask |= 1 << uint(r)
	}
	for _, r := range saved {
		osrMask |= 1 << (16 + uint(r))
	}
	fe.noteOSRPoint(x.OSR, OSRPointCall, osrMask)

	// All argument (and fn) registers die at the call.
	fe.vstack = fe.vstack[:0]
	if !noScratch {
		for r := 0; r < numScratch; r++ {
			fe.clobbered[r] = true
		}
	}

	// 6. Restore saved registers and fetch the result.
	fe.vstack = append(fe.vstack, saved...)
	res := -1
	if x.Type().Kind != cc.KindVoid {
		r, err := fe.alloc()
		if err != nil {
			return -1, err
		}
		if r != 0 {
			fe.asm().Mov(r, 0)
		}
		res = int(r)
	}
	for i := len(pushed) - 1; i >= 0; i-- {
		fe.asm().Pop(pushed[i])
	}
	return res, nil
}

func (fe *fnEmitter) isLive(r isa.Reg) bool {
	for _, v := range fe.vstack {
		if v == r {
			return true
		}
	}
	return false
}

// shuffleArgs moves argRegs into r0..r(n-1) with MOVs, resolving
// permutation cycles through a spare register.
func (fe *fnEmitter) shuffleArgs(argRegs []isa.Reg, keepFn bool, fnReg isa.Reg) error {
	n := len(argRegs)
	if n > 6 {
		return fmt.Errorf("more than 6 arguments")
	}
	// cur[i] = register currently holding argument i; want i.
	cur := append([]isa.Reg(nil), argRegs...)
	occupied := func(r isa.Reg) int {
		for i, c := range cur {
			if c == r {
				return i
			}
		}
		return -1
	}
	for {
		progress := false
		done := true
		for i := 0; i < n; i++ {
			want := isa.Reg(i)
			if cur[i] == want {
				continue
			}
			done = false
			if occupied(want) == -1 && (!keepFn || want != fnReg) {
				fe.asm().Mov(want, cur[i])
				cur[i] = want
				fe.clobbered[want] = true
				progress = true
			}
		}
		if done {
			break
		}
		if !progress {
			// A cycle: rotate through a spare register (r8 is never an
			// argument target; fnReg is r9).
			spare := isa.Reg(8)
			if keepFn && spare == fnReg {
				spare = isa.Reg(7)
			}
			if occupied(spare) != -1 {
				return fmt.Errorf("internal: no spare register for argument shuffle")
			}
			// Break the first out-of-place chain.
			for i := 0; i < n; i++ {
				if cur[i] != isa.Reg(i) {
					fe.asm().Mov(spare, cur[i])
					cur[i] = spare
					fe.clobbered[spare] = true
					break
				}
			}
		}
	}
	return nil
}

// builtin emits a compiler builtin; returns the result register index
// or -1 for void builtins.
func (fe *fnEmitter) builtin(x *cc.Builtin) (int, error) {
	a := fe.asm()
	switch x.Name {
	case "__pause":
		a.Pause()
		return -1, nil
	case "__cli":
		a.Cli()
		return -1, nil
	case "__sti":
		a.Sti()
		return -1, nil
	case "__hcall":
		lit, ok := x.Args[0].(*cc.IntLit)
		if !ok || lit.Value < 0 || lit.Value > 255 {
			return -1, fmt.Errorf("__hcall requires a constant 0..255")
		}
		a.Hcall(uint8(lit.Value))
		return -1, nil
	case "__outb":
		lit, ok := x.Args[0].(*cc.IntLit)
		if !ok || lit.Value < 0 || lit.Value > 255 {
			return -1, fmt.Errorf("__outb port must be a constant 0..255")
		}
		r, err := fe.expr(x.Args[1])
		if err != nil {
			return -1, err
		}
		a.OutB(uint8(lit.Value), r)
		fe.free(r)
		return -1, nil
	case "__inb":
		lit, ok := x.Args[0].(*cc.IntLit)
		if !ok || lit.Value < 0 || lit.Value > 255 {
			return -1, fmt.Errorf("__inb port must be a constant 0..255")
		}
		r, err := fe.alloc()
		if err != nil {
			return -1, err
		}
		a.InB(r, uint8(lit.Value))
		return int(r), nil
	case "__rdtsc":
		r, err := fe.alloc()
		if err != nil {
			return -1, err
		}
		a.Rdtsc(r)
		return int(r), nil
	case "__xchg":
		rp, err := fe.expr(x.Args[0])
		if err != nil {
			return -1, err
		}
		rv, err := fe.expr(x.Args[1])
		if err != nil {
			return -1, err
		}
		a.Xchg(rp, rv) // rv receives the old value
		fe.free(rp)
		// rv stays live as the result; ensure it is on top.
		fe.free(rv)
		fe.vstack = append(fe.vstack, rv)
		return int(rv), nil
	}
	return -1, fmt.Errorf("codegen: unknown builtin %q", x.Name)
}
