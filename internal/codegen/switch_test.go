package codegen

import "testing"

func TestSwitchDispatch(t *testing.T) {
	m := compileAndLoad(t, `
		long classify(long x) {
			switch (x) {
			case 1:
				return 100;
			case 2:
				return 200;
			case -3:
				return 300;
			default:
				return 999;
			}
		}
	`)
	cases := map[int64]uint64{1: 100, 2: 200, -3: 300, 7: 999, 0: 999}
	for in, want := range cases {
		if got := callOK(t, m, "classify", uint64(in)); got != want {
			t.Errorf("classify(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	m := compileAndLoad(t, `
		long acc;
		long fall(long x) {
			acc = 0;
			switch (x) {
			case 1:
				acc += 1;
			case 2:
				acc += 10;
			case 3:
				acc += 100;
				break;
			case 4:
				acc += 1000;
			}
			return acc;
		}
	`)
	cases := map[uint64]uint64{1: 111, 2: 110, 3: 100, 4: 1000, 9: 0}
	for in, want := range cases {
		if got := callOK(t, m, "fall", in); got != want {
			t.Errorf("fall(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	m := compileAndLoad(t, `
		long f(long x) {
			long r = 7;
			switch (x) {
			case 1:
				r = 1;
				break;
			}
			return r;
		}
	`)
	if got := callOK(t, m, "f", 1); got != 1 {
		t.Errorf("f(1) = %d", got)
	}
	if got := callOK(t, m, "f", 5); got != 7 {
		t.Errorf("f(5) = %d", got)
	}
}

func TestSwitchInsideLoopContinue(t *testing.T) {
	// continue inside a switch must bind to the loop, break to the
	// switch.
	m := compileAndLoad(t, `
		long f(long n) {
			long sum = 0;
			for (long i = 0; i < n; i++) {
				switch (i % 3) {
				case 0:
					continue;
				case 1:
					sum += 10;
					break;
				default:
					sum += 1;
				}
				sum += 100;
			}
			return sum;
		}
	`)
	// i=0: continue. i=1: +10 +100. i=2: +1 +100. i=3: continue.
	// i=4: +10+100. i=5: +1+100.
	if got := callOK(t, m, "f", 6); got != 2*(110+101) {
		t.Errorf("f(6) = %d, want %d", got, 2*(110+101))
	}
}

func TestNestedSwitches(t *testing.T) {
	m := compileAndLoad(t, `
		long f(long a, long b) {
			switch (a) {
			case 1:
				switch (b) {
				case 1: return 11;
				default: return 19;
				}
			case 2:
				return 20;
			}
			return 0;
		}
	`)
	if callOK(t, m, "f", 1, 1) != 11 || callOK(t, m, "f", 1, 5) != 19 ||
		callOK(t, m, "f", 2, 0) != 20 || callOK(t, m, "f", 9, 9) != 0 {
		t.Error("nested switch dispatch wrong")
	}
}

func TestSwitchOnEnum(t *testing.T) {
	m := compileAndLoad(t, `
		enum Mode { ASCII, UTF8, BINARY = 10 };
		long name(int m) {
			switch (m) {
			case ASCII: return 'a';
			case UTF8: return 'u';
			case BINARY: return 'b';
			}
			return '?';
		}
	`)
	if callOK(t, m, "name", 0) != 'a' || callOK(t, m, "name", 1) != 'u' ||
		callOK(t, m, "name", 10) != 'b' || callOK(t, m, "name", 3) != '?' {
		t.Error("enum switch wrong")
	}
}

func TestSwitchCaseLocals(t *testing.T) {
	m := compileAndLoad(t, `
		long f(long x) {
			switch (x) {
			case 1: {
				long t = x * 2;
				return t;
			}
			default: {
				long t = x * 3;
				return t;
			}
			}
		}
	`)
	if callOK(t, m, "f", 1) != 2 || callOK(t, m, "f", 4) != 12 {
		t.Error("case-local declarations wrong")
	}
}

func TestPrefixIncDec(t *testing.T) {
	m := compileAndLoad(t, `
		long pre(void) {
			long i = 5;
			long v = ++i;
			return v * 100 + i;
		}
		long predec(void) {
			long i = 5;
			return --i * 100 + i;
		}
		long arr[2];
		long preptr(void) {
			long* p = arr;
			long* q = arr;
			++p;
			return p - q;
		}
		long mixed(void) {
			long i = 0;
			long a = i++ + ++i;
			return a * 10 + i;
		}
	`)
	if got := callOK(t, m, "pre"); got != 606 {
		t.Errorf("pre = %d, want 606", got)
	}
	if got := callOK(t, m, "predec"); got != 404 {
		t.Errorf("predec = %d, want 404", got)
	}
	if got := callOK(t, m, "preptr"); got != 1 {
		t.Errorf("preptr = %d, want 1", got)
	}
	// i++ evaluates to 0 (i becomes 1), ++i evaluates to 2: a=2, i=2.
	if got := callOK(t, m, "mixed"); got != 22 {
		t.Errorf("mixed = %d, want 22", got)
	}
}
