package codegen

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/obj"
)

// Descriptor sizes (paper §5: "we add 32 bytes for every configuration
// switch, 16 bytes for every call site, and 48 + #variants · (32 +
// #guards · 16) bytes per multiversed function").
const (
	VarDescSize     = 32
	CallSiteSize    = 16
	FuncDescSize    = 48
	VariantDescSize = 32
	GuardDescSize   = 16
)

// Variable descriptor flag bits.
const (
	VarFlagSigned = 1 << 0 // the switch is a signed integer
	VarFlagFnPtr  = 1 << 1 // the switch is a tracked function pointer
)

// OSR record sizes and flag bits (multiverse.osr section). Each
// multiversed body (generic + every variant) contributes:
//
//	header  (OSRFuncHeaderSize):
//	  [0:8)   reloc → function symbol
//	  [8:12)  frame size (bytes)
//	  [12:16) flags (OSRFlagHasFrame | OSRFlagNoScratch)
//	  [16:20) slot count
//	  [20:24) point count
//	slot rec (OSRSlotRecSize), slot-count times:
//	  [0:8)   reloc → interned "Name#Seq" string
//	  [8:12)  FP-relative displacement (int32)
//	  [12:16) reserved
//	point rec (OSRPointRecSize), point-count times:
//	  [0:4)   logical label id
//	  [4:8)   kind (OSRPointLoop | OSRPointCall)
//	  [8:12)  text offset from function start
//	  [12:16) register mask (pushed | live<<16; call points only)
const (
	OSRFuncHeaderSize = 24
	OSRSlotRecSize    = 16
	OSRPointRecSize   = 16

	OSRFlagHasFrame  = 1 << 0
	OSRFlagNoScratch = 1 << 1
)

// DescriptorBytes returns the total descriptor footprint of a program
// with the given shape, per the paper's formula.
func DescriptorBytes(vars, callsites int, variantsPerFunc [][]int) int {
	total := vars*VarDescSize + callsites*CallSiteSize
	for _, variants := range variantsPerFunc {
		total += FuncDescSize
		for _, guards := range variants {
			total += VariantDescSize + guards*GuardDescSize
		}
	}
	return total
}

// mvStrSym interns a descriptor name into multiverse.strings.
func (e *emitter) mvStrSym(name string) string {
	sec := e.o.Section(obj.SecMVStrings)
	sym := fmt.Sprintf("%s$mvs$%s", e.prog.UnitName, name)
	for _, s := range e.o.Symbols {
		if s.Name == sym {
			return sym
		}
	}
	off := uint64(len(sec.Data))
	sec.Data = append(sec.Data, []byte(name)...)
	sec.Data = append(sec.Data, 0)
	e.o.AddSymbol(obj.Symbol{Name: sym, Section: obj.SecMVStrings, Offset: off,
		Size: uint64(len(name) + 1)})
	return sym
}

func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }

// emitDescriptors writes the three multiverse descriptor sections.
func (e *emitter) emitDescriptors() error {
	// multiverse.variables — one fixed-size record per switch.
	if len(e.prog.MVVars) > 0 {
		sec := e.o.Section(obj.SecMVVars)
		for _, v := range e.prog.MVVars {
			rec := make([]byte, VarDescSize)
			base := uint64(len(sec.Data))
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVVars, Offset: base + 0,
				Type: obj.RelocAbs64, Symbol: e.symName(v)})
			width := uint32(v.Type.ByteSize())
			var flags uint32
			if v.Type.IsSigned() {
				flags |= VarFlagSigned
			}
			if v.Type.Kind == cc.KindPtr {
				flags |= VarFlagFnPtr
			}
			putU32(rec, 8, width)
			putU32(rec, 12, flags)
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVVars, Offset: base + 16,
				Type: obj.RelocAbs64, Symbol: e.mvStrSym(v.Name)})
			sec.Data = append(sec.Data, rec...)
		}
	}

	// multiverse.functions — variable-length records.
	if len(e.prog.MVFuncs) > 0 {
		sec := e.o.Section(obj.SecMVFuncs)
		for _, f := range e.prog.MVFuncs {
			genSize, ok := e.funcLens[f.GenericSym]
			if !ok {
				return fmt.Errorf("codegen: multiverse function %q not emitted", f.GenericSym)
			}
			base := uint64(len(sec.Data))
			hdr := make([]byte, FuncDescSize)
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVFuncs, Offset: base + 0,
				Type: obj.RelocAbs64, Symbol: f.GenericSym})
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVFuncs, Offset: base + 8,
				Type: obj.RelocAbs64, Symbol: e.mvStrSym(f.Name)})
			putU32(hdr, 16, uint32(len(f.Variants)))
			putU64(hdr, 24, genSize)
			sec.Data = append(sec.Data, hdr...)
			for _, v := range f.Variants {
				vSize, ok := e.funcLens[v.SymName]
				if !ok {
					return fmt.Errorf("codegen: variant %q not emitted", v.SymName)
				}
				vbase := uint64(len(sec.Data))
				rec := make([]byte, VariantDescSize)
				e.o.AddReloc(obj.Reloc{Section: obj.SecMVFuncs, Offset: vbase + 0,
					Type: obj.RelocAbs64, Symbol: v.SymName})
				putU64(rec, 8, vSize)
				putU32(rec, 16, uint32(len(v.Guards)))
				sec.Data = append(sec.Data, rec...)
				for _, g := range v.Guards {
					gbase := uint64(len(sec.Data))
					grec := make([]byte, GuardDescSize)
					e.o.AddReloc(obj.Reloc{Section: obj.SecMVFuncs, Offset: gbase + 0,
						Type: obj.RelocAbs64, Symbol: e.symName(g.Var)})
					putU32(grec, 8, uint32(int32(g.Lo)))
					putU32(grec, 12, uint32(int32(g.Hi)))
					sec.Data = append(sec.Data, grec...)
				}
			}
		}
	}

	// multiverse.osr — per-body OSR metadata for multiversed functions.
	if len(e.osrFuncs) > 0 {
		sec := e.o.Section(obj.SecMVOSR)
		for _, fr := range e.osrFuncs {
			base := uint64(len(sec.Data))
			hdr := make([]byte, OSRFuncHeaderSize)
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVOSR, Offset: base + 0,
				Type: obj.RelocAbs64, Symbol: fr.symName})
			putU32(hdr, 8, uint32(fr.frameSize))
			var flags uint32
			if fr.hasFrame {
				flags |= OSRFlagHasFrame
			}
			if fr.noScratch {
				flags |= OSRFlagNoScratch
			}
			putU32(hdr, 12, flags)
			putU32(hdr, 16, uint32(len(fr.slots)))
			putU32(hdr, 20, uint32(len(fr.points)))
			sec.Data = append(sec.Data, hdr...)
			for _, sl := range fr.slots {
				sbase := uint64(len(sec.Data))
				rec := make([]byte, OSRSlotRecSize)
				e.o.AddReloc(obj.Reloc{Section: obj.SecMVOSR, Offset: sbase + 0,
					Type: obj.RelocAbs64, Symbol: e.mvStrSym(sl.key)})
				putU32(rec, 8, uint32(sl.off))
				sec.Data = append(sec.Data, rec...)
			}
			for _, pt := range fr.points {
				rec := make([]byte, OSRPointRecSize)
				putU32(rec, 0, uint32(pt.label))
				putU32(rec, 4, uint32(pt.kind))
				putU32(rec, 8, pt.off)
				putU32(rec, 12, pt.pushedMask)
				sec.Data = append(sec.Data, rec...)
			}
		}
	}

	// multiverse.callsites — one record per recorded call site. Each
	// site gets a local label symbol so the record's address field is
	// an ordinary relocation.
	if len(e.callSites) > 0 {
		sec := e.o.Section(obj.SecMVCallSites)
		for i, cs := range e.callSites {
			label := fmt.Sprintf("%s$cs%d", e.prog.UnitName, i)
			e.o.AddSymbol(obj.Symbol{Name: label, Section: obj.SecText,
				Offset: cs.textOff, Size: uint64(isa.CallSiteLen)})
			base := uint64(len(sec.Data))
			rec := make([]byte, CallSiteSize)
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVCallSites, Offset: base + 0,
				Type: obj.RelocAbs64, Symbol: label})
			e.o.AddReloc(obj.Reloc{Section: obj.SecMVCallSites, Offset: base + 8,
				Type: obj.RelocAbs64, Symbol: cs.calleeSym})
			sec.Data = append(sec.Data, rec...)
		}
	}
	return nil
}
