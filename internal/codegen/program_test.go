package codegen

import (
	"encoding/binary"
	"testing"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/obj"
)

func checkedUnit(t *testing.T, src string) *cc.Unit {
	t.Helper()
	u, err := cc.Parse("unit.mvc", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Check(u); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestProgramFromUnitSkipsExternsAndPrototypes(t *testing.T) {
	u := checkedUnit(t, `
		extern long importedVar;
		long importedFn(long x);
		long ownVar = 1;
		long ownFn(void) { return importedFn(importedVar); }
	`)
	p := ProgramFromUnit(u)
	if len(p.Globals) != 1 || p.Globals[0].Sym.Name != "ownVar" {
		t.Errorf("globals = %+v", p.Globals)
	}
	if len(p.Funcs) != 1 || p.Funcs[0].SymName != "ownFn" {
		t.Errorf("funcs = %+v", p.Funcs)
	}
}

func TestProgramFromUnitCollectsMVVars(t *testing.T) {
	u := checkedUnit(t, `
		multiverse int a;
		int plain;
		multiverse void (*fp)(void);
	`)
	p := ProgramFromUnit(u)
	if len(p.MVVars) != 2 {
		t.Fatalf("mv vars = %d, want 2", len(p.MVVars))
	}
}

func TestSymbolNameMangling(t *testing.T) {
	g := &cc.VarSym{Name: "f", Storage: cc.StorageGlobal}
	s := &cc.VarSym{Name: "f", Storage: cc.StorageStatic}
	if SymbolName("unit", g) != "f" {
		t.Error("global mangled")
	}
	if SymbolName("unit", s) != "unit$f" {
		t.Errorf("static = %q", SymbolName("unit", s))
	}
}

func TestFunctionsAlignedTo16(t *testing.T) {
	u := checkedUnit(t, `
		void a(void) { }
		void b(void) { }
		void c(void) { }
	`)
	o, err := Compile(ProgramFromUnit(u))
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range o.DefinedSymbols() {
		if sym.Section == obj.SecText && sym.Offset%16 != 0 {
			t.Errorf("function %q at unaligned offset %#x", sym.Name, sym.Offset)
		}
	}
}

func TestPadToEnforced(t *testing.T) {
	u := checkedUnit(t, `void tiny(void) { }`)
	p := ProgramFromUnit(u)
	p.Funcs[0].PadTo = 5
	o, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range o.DefinedSymbols() {
		if sym.Name == "tiny" && sym.Size < 5 {
			t.Errorf("tiny padded to %d bytes, want >= 5", sym.Size)
		}
	}
}

func TestInitializedDataEmission(t *testing.T) {
	u := checkedUnit(t, `
		long big = 74565;
		int small = -2;
		short h = 7;
		long zero = 0;
	`)
	o, err := Compile(ProgramFromUnit(u))
	if err != nil {
		t.Fatal(err)
	}
	var data, bss *obj.Section
	for _, s := range o.Sections {
		switch s.Name {
		case obj.SecData:
			data = s
		case obj.SecBSS:
			bss = s
		}
	}
	syms := map[string]obj.Symbol{}
	for _, s := range o.Symbols {
		syms[s.Name] = s
	}
	if syms["big"].Section != obj.SecData {
		t.Fatal("big not in .data")
	}
	got := binary.LittleEndian.Uint64(data.Data[syms["big"].Offset:])
	if got != 74565 {
		t.Errorf("big = %d", got)
	}
	if v := int32(binary.LittleEndian.Uint32(data.Data[syms["small"].Offset:])); v != -2 {
		t.Errorf("small = %d", v)
	}
	if v := binary.LittleEndian.Uint16(data.Data[syms["h"].Offset:]); v != 7 {
		t.Errorf("h = %d", v)
	}
	// Zero-initialized scalars land in .bss.
	if syms["zero"].Section != obj.SecBSS {
		t.Error("zero-initialized global not in .bss")
	}
	if bss == nil || bss.Size < 8 {
		t.Error("bss missing")
	}
}

func TestDuplicateFunctionSymbolRejected(t *testing.T) {
	u := checkedUnit(t, `void f(void) { }`)
	p := ProgramFromUnit(u)
	p.Funcs = append(p.Funcs, &Func{Decl: p.Funcs[0].Decl, SymName: "f"})
	if _, err := Compile(p); err == nil {
		t.Error("duplicate symbol accepted")
	}
}

func TestStringLiteralsInterned(t *testing.T) {
	u := checkedUnit(t, `
		char* a(void) { return "same"; }
		char* b(void) { return "same"; }
		char* c(void) { return "different"; }
	`)
	o, err := Compile(ProgramFromUnit(u))
	if err != nil {
		t.Fatal(err)
	}
	var ro *obj.Section
	for _, s := range o.Sections {
		if s.Name == obj.SecROData {
			ro = s
		}
	}
	if ro == nil {
		t.Fatal("no .rodata")
	}
	want := len("same") + 1 + len("different") + 1
	if len(ro.Data) != want {
		t.Errorf(".rodata = %d bytes, want %d (interning broken?)", len(ro.Data), want)
	}
}

func TestStaticsGetLocalSymbols(t *testing.T) {
	u := checkedUnit(t, `
		static long hidden;
		static void helper(void) { hidden++; }
		void entry(void) { helper(); }
	`)
	o, err := Compile(ProgramFromUnit(u))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range o.DefinedSymbols() {
		switch s.Name {
		case "unit.mvc$hidden", "unit.mvc$helper":
			if s.Global {
				t.Errorf("%q is global", s.Name)
			}
		case "entry":
			if !s.Global {
				t.Error("entry not global")
			}
		}
	}
	// And the whole thing links and runs.
	img, err := link.Link(o)
	if err != nil {
		t.Fatal(err)
	}
	_ = img
}

func TestKitchenSinkCompilesAndRuns(t *testing.T) {
	// The mvir kitchen-sink program must survive the whole pipeline.
	m := compileAndLoad(t, `
		enum Mode { OFF, ON };
		enum Mode mode;
		char buf[32];
		long sink;
		long helper(long x) { return x; }
		long (*hook)(long);

		long everything(long p, long* q) {
			long acc = 0;
			int narrow = (int)p;
			acc += narrow;
			acc = acc * 2 - 1;
			acc |= p & 3;
			acc ^= p;
			acc <<= 1;
			acc >>= 1;
			if (mode == ON && p > 0 || !q) { acc++; } else { acc--; }
			while (acc > 100) { acc /= 2; }
			do { acc++; } while (acc < 0);
			for (long i = 0; i < 3; i++) {
				if (i == 1) { continue; }
				if (i == 2) { break; }
				acc += buf[i];
			}
			buf[0] = (char)acc;
			*q = acc;
			q[1] = helper(acc);
			long t = acc > 0 ? acc : -acc;
			acc = t;
			sink = __xchg((ulong*)&sink, acc);
			acc -= sink;
			long old = acc--;
			acc += old;
			hook = helper;
			acc += hook(1);
			return acc + "x"[0];
		}
		long scratch[4];
		long run(long p) { return everything(p, scratch); }
	`)
	// Smoke execution for a few inputs; results must be deterministic.
	r1 := callOK(t, m, "run", 5)
	r2 := callOK(t, m, "run", 5)
	// sink mutates between calls, so equality is not expected; just
	// sanity-check both runs completed and wrote the out-params.
	if r1 == 0 && r2 == 0 {
		t.Error("kitchen sink produced all zeros")
	}
	s0, err := m.Mem.ReadUint(m.MustSymbol("scratch"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if s0 == 0 {
		t.Error("*q never written")
	}
}
