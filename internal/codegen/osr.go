package codegen

import "repro/internal/cc"

// OSR-point metadata (paper-adjacent; see DESIGN.md §13). For every
// multiversed function body — the generic and each variant — the
// emitter records, per function:
//
//   - the frame shape (frameSize, hasFrame, NoScratch),
//   - every named local/param slot keyed by "Name#Seq" (stable across
//     variants: the cloner preserves Seq), and
//   - every OSR point: a loop back-edge target or a call-return
//     address, tagged with the variant-invariant logical label stamped
//     by mvir.AssignOSRLabels before cloning.
//
// The runtime matches points between a committed body and its target
// by (label, kind) and rewrites a paused CPU's frame accordingly.

// OSR point kinds.
const (
	OSRPointLoop = 0 // loop back-edge target (top of cond re-check)
	OSRPointCall = 1 // return address of a call instruction
)

// osrPoint is one recorded OSR point inside a function body.
type osrPoint struct {
	label      int    // logical id from mvir.AssignOSRLabels (≥1)
	kind       int    // OSRPointLoop or OSRPointCall
	off        uint32 // text offset relative to function start
	pushedMask uint32 // scratch registers pushed across a call (call kind)
}

// osrSlot is one FP-relative local/parameter slot.
type osrSlot struct {
	key string // "Name#Seq"
	off int32  // FP-relative displacement (negative)
}

// osrFuncRec is the per-function OSR record destined for the
// multiverse.osr section.
type osrFuncRec struct {
	symName   string
	frameSize int32
	hasFrame  bool
	noScratch bool
	slots     []osrSlot
	points    []osrPoint
}

// noteOSRPoint records an OSR point at the current emission offset.
// Unlabeled nodes (label 0, i.e. non-multiversed functions) are
// skipped.
func (fe *fnEmitter) noteOSRPoint(label, kind int, pushedMask uint32) {
	if label == 0 || !fe.f.Multiverse {
		return
	}
	fe.osrPoints = append(fe.osrPoints, osrPoint{
		label:      label,
		kind:       kind,
		off:        uint32(fe.asm().Len() - fe.funcStart),
		pushedMask: pushedMask,
	})
}

// osrRecord assembles the function's OSR record after emission.
func (fe *fnEmitter) osrRecord() *osrFuncRec {
	rec := &osrFuncRec{
		symName:   fe.symName,
		frameSize: fe.frameSize,
		hasFrame:  fe.frameSize > 0,
		noScratch: fe.f.NoScratch,
		points:    fe.osrPoints,
	}
	for sym, off := range fe.slots {
		rec.slots = append(rec.slots, osrSlot{key: slotKey(sym), off: off})
	}
	// Deterministic order: by displacement (unique per slot).
	for i := 1; i < len(rec.slots); i++ {
		for j := i; j > 0 && rec.slots[j].off > rec.slots[j-1].off; j-- {
			rec.slots[j], rec.slots[j-1] = rec.slots[j-1], rec.slots[j]
		}
	}
	return rec
}

// slotKey names a local/param slot stably across variant clones.
func slotKey(s *cc.VarSym) string {
	if s.Seq == 0 {
		return s.Name
	}
	return s.Name + "#" + itoa(s.Seq)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
