package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	for k := KindCommitBegin; k <= KindMispredict; k++ {
		if k.String() == "Unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "Unknown" {
		t.Errorf("out-of-range kind should be Unknown")
	}
}

func TestStreamRingBound(t *testing.T) {
	c := NewCollector(Options{Limit: 4})
	var cycle uint64
	s := c.NewStream("cpu0", func() uint64 { return cycle })
	for i := 0; i < 10; i++ {
		cycle = uint64(i)
		s.Emit(KindPatchSite, uint64(i), 0, 0)
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want ring bound 4", len(evs))
	}
	// The survivors are the newest four, in emission order.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("event %d has cycle %d, want %d", i, ev.Cycle, want)
		}
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", s.Dropped())
	}
	if c.Dropped() != 6 {
		t.Errorf("Collector.Dropped() = %d, want 6", c.Dropped())
	}
}

func TestCollectorMergesStreamsByCycle(t *testing.T) {
	c := NewCollector(Options{})
	t0, t1 := uint64(0), uint64(0)
	s0 := c.NewStream("cpu0", func() uint64 { return t0 })
	s1 := c.NewStream("cpu1", func() uint64 { return t1 })
	t0 = 5
	s0.Emit(KindFlushICache, 1, 0, 0)
	t1 = 2
	s1.Emit(KindFlushICache, 2, 0, 0)
	t0 = 9
	s0.Emit(KindFlushICache, 3, 0, 0)
	t1 = 9 // tie: stream order breaks it
	s1.Emit(KindFlushICache, 4, 0, 0)

	evs := c.Events()
	var got []uint64
	for _, ev := range evs {
		got = append(got, ev.Addr)
	}
	want := []uint64{2, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged order %v, want %v", got, want)
		}
	}
}

func TestSymTableResolve(t *testing.T) {
	tab := NewSymTable([]Sym{
		{Name: "b", Addr: 200, Size: 50},
		{Name: "a", Addr: 100, Size: 20},
		{Name: "zero", Addr: 300, Size: 0}, // dropped
	})
	if tab.Len() != 2 {
		t.Fatalf("Len() = %d, want 2 (zero-size dropped)", tab.Len())
	}
	cases := []struct {
		pc     uint64
		name   string
		lo, hi uint64
	}{
		{100, "a", 100, 120},
		{119, "a", 100, 120},
		{120, UnknownName, 120, 200}, // gap between a and b
		{200, "b", 200, 250},
		{249, "b", 200, 250},
		{250, UnknownName, 250, ^uint64(0)},
		{50, UnknownName, 0, 100},
	}
	for _, tc := range cases {
		name, lo, hi := tab.Resolve(tc.pc)
		if name != tc.name || lo != tc.lo || hi != tc.hi {
			t.Errorf("Resolve(%d) = (%q, %d, %d), want (%q, %d, %d)",
				tc.pc, name, lo, hi, tc.name, tc.lo, tc.hi)
		}
	}
	var nilTab *SymTable
	if n := nilTab.Name(42); n != UnknownName {
		t.Errorf("nil table resolved %q", n)
	}
}

// feedProgram drives the profiler hooks the way the interpreter
// would: Step before each instruction, Call/Ret on transfers.
func TestProfilerFoldedStacks(t *testing.T) {
	c := NewCollector(Options{Profile: true})
	c.SetSymbols(NewSymTable([]Sym{
		{Name: "main", Addr: 100, Size: 50},
		{Name: "leaffn", Addr: 200, Size: 30},
	}))
	var cyc uint64
	s := c.NewStream("cpu0", func() uint64 { return cyc })

	step := func(pc, cost uint64) {
		s.Step(pc, cyc)
		cyc += cost
	}
	step(100, 10) // main
	step(105, 5)  // main
	s.Call(110, 200)
	step(110, 3) // the call instruction: charged to main
	step(200, 7) // leaffn
	step(210, 7) // leaffn
	s.Ret(225, 115)
	step(225, 2) // the ret instruction: charged to leaffn
	step(115, 4) // back in main
	step(119, 0) // final Step closes the previous delta

	p := c.Profile()
	if p == nil {
		t.Fatal("Profile() = nil with profiling enabled")
	}
	if got, want := p.Folded["main"], uint64(10+5+3+4); got != want {
		t.Errorf("main self cycles = %d, want %d", got, want)
	}
	if got, want := p.Folded["main;leaffn"], uint64(7+7+2); got != want {
		t.Errorf("main;leaffn cycles = %d, want %d", got, want)
	}
	if got, want := p.Calls["main;leaffn"], uint64(1); got != want {
		t.Errorf("call edge count = %d, want %d", got, want)
	}

	var buf bytes.Buffer
	if err := c.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "main;leaffn 16") {
		t.Errorf("folded output missing stack line:\n%s", out)
	}
}

func TestProfilerDisabledHooksAreNoops(t *testing.T) {
	c := NewCollector(Options{})
	s := c.NewStream("cpu0", nil)
	s.Step(1, 2)
	s.Call(3, 4)
	s.Ret(5, 6)
	if c.Profile() != nil {
		t.Error("Profile() non-nil without profiling")
	}
	if err := c.WriteFolded(&bytes.Buffer{}); err == nil {
		t.Error("WriteFolded should fail without profiling")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector(Options{})
	c.SetSymbols(NewSymTable([]Sym{{Name: "handler", Addr: 0x400, Size: 0x100}}))
	var cyc uint64
	s := c.NewStream("cpu0", func() uint64 { return cyc })

	s.Emit(KindCommitBegin, 0, 0, 0)
	s.EmitName(KindSwitchValue, 0x1000, 1, 0, "feature")
	cyc = 10
	s.Emit(KindPatchSite, 0x410, 5, 0)
	s.Emit(KindFlushICache, 0x410, 5, 0)
	cyc = 20
	s.Emit(KindCommitEnd, 0, 1, 0)
	cyc = 30
	s.Emit(KindRevertBegin, 0, 0, 0) // never closed: exported to lastCycle

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byName := map[string][]map[string]any{}
	for _, ev := range out.TraceEvents {
		n := ev["name"].(string)
		byName[n] = append(byName[n], ev)
	}
	if len(byName["thread_name"]) != 1 {
		t.Errorf("want one thread_name metadata row, got %d", len(byName["thread_name"]))
	}
	commits := byName["Commit"]
	if len(commits) != 1 || commits[0]["ph"] != "X" {
		t.Fatalf("want one complete Commit span, got %v", commits)
	}
	if dur := commits[0]["dur"].(float64); dur != 20 {
		t.Errorf("Commit span duration = %v, want 20", dur)
	}
	reverts := byName["Revert"]
	if len(reverts) != 1 || reverts[0]["ph"] != "X" {
		t.Fatalf("unclosed Revert should still export as a span, got %v", reverts)
	}
	patch := byName["PatchSite"]
	if len(patch) != 1 || patch[0]["ph"] != "i" {
		t.Fatalf("want an instant PatchSite, got %v", patch)
	}
	args := patch[0]["args"].(map[string]any)
	if args["sym"] != "handler" {
		t.Errorf("PatchSite not annotated with symbol: %v", args)
	}
	sw := byName["SwitchValue"]
	if len(sw) != 1 {
		t.Fatalf("want a SwitchValue event")
	}
	if sw[0]["args"].(map[string]any)["switch"] != "feature" {
		t.Errorf("SwitchValue lost its name: %v", sw[0])
	}
}

// TestChromeTraceFlowEvents pins the cross-CPU causality rendering: a
// commit span whose events land on two streams (the committing CPU and
// a victim CPU trapping on the patched site) must export Chrome flow
// events (ph "s" ... "f" with the span as id) tying the streams
// together in Perfetto. Single-stream spans get no flow arrows.
func TestChromeTraceFlowEvents(t *testing.T) {
	c := NewCollector(Options{})
	t0, t1 := uint64(0), uint64(0)
	s0 := c.NewStream("cpu0", func() uint64 { return t0 })
	s1 := c.NewStream("cpu1", func() uint64 { return t1 })

	s0.SetSpan(9) // collector-wide: both streams stamp span 9
	s0.Emit(KindCommitBegin, 0, 0, 0)
	t1 = 5
	s1.EmitName(KindTrap, 0x400, 0, 0, "multi") // victim CPU, same span
	t0 = 10
	s0.Emit(KindCommitEnd, 0, 1, 0)
	s0.SetSpan(0)
	t0 = 20
	s0.Emit(KindRevertBegin, 0, 0, 0) // unspanned: no flow
	t0 = 25
	s0.Emit(KindRevertEnd, 0, 0, 0)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	byPh := map[string][]map[string]any{}
	for _, ev := range out.TraceEvents {
		ph := ev["ph"].(string)
		byPh[ph] = append(byPh[ph], ev)
	}
	if len(byPh["s"]) != 1 || len(byPh["f"]) != 1 {
		t.Fatalf("want one flow start and one finish, got s=%d f=%d:\n%s",
			len(byPh["s"]), len(byPh["f"]), buf.String())
	}
	start, finish := byPh["s"][0], byPh["f"][0]
	if start["id"].(float64) != 9 || finish["id"].(float64) != 9 {
		t.Errorf("flow events should carry the span as id: s=%v f=%v", start, finish)
	}
	// The chain must visit both streams: start on the committing CPU,
	// a "t" hop where the victim CPU first saw the span.
	tids := map[any]bool{start["tid"]: true, finish["tid"]: true}
	for _, hop := range byPh["t"] {
		if hop["id"].(float64) == 9 {
			tids[hop["tid"]] = true
		}
	}
	if len(tids) < 2 {
		t.Errorf("flow chain should cross streams, saw tids %v:\n%s", tids, buf.String())
	}
}

func TestChromeTraceUnmatchedEndDegradesToInstant(t *testing.T) {
	c := NewCollector(Options{})
	s := c.NewStream("cpu0", nil)
	s.Emit(KindCommitEnd, 0, 1, 0) // begin was dropped from the ring
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"i"`) {
		t.Errorf("orphan end should become an instant:\n%s", buf.String())
	}
}
