package trace

import (
	"strings"
	"testing"
)

func TestWatchdogValueRule(t *testing.T) {
	w := NewWatchdog([]WatchdogRule{
		{Name: "rendezvous-latency", Kind: KindRendezvous, Field: 'a', Threshold: 100},
	})
	w.Emit(KindRendezvous, 0, 100, 1) // at the threshold: healthy
	if w.Fired() {
		t.Fatal("value rule fired at (not above) its threshold")
	}
	w.SetSpan(5)
	w.Emit(KindRendezvous, 0, 101, 1)
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Rule != "rendezvous-latency" || a.Value != 101 || a.Threshold != 100 || a.Span != 5 {
		t.Fatalf("alert = %+v", a)
	}
	if w.Count("rendezvous-latency") != 1 {
		t.Errorf("Count = %d, want 1", w.Count("rendezvous-latency"))
	}
	// Other kinds and the other payload field never match.
	w.Emit(KindDeferred, 0, 9999, 0)
	if len(w.Alerts()) != 1 {
		t.Error("rule matched an unrelated kind")
	}
}

func TestWatchdogFieldB(t *testing.T) {
	w := NewWatchdog([]WatchdogRule{
		{Name: "deferred-depth", Kind: KindDeferred, Field: 'b', Threshold: 2},
	})
	w.Emit(KindDeferred, 0, 999, 2) // depth rides in B; A is the op code
	if w.Fired() {
		t.Fatal("field-b rule compared field A")
	}
	w.Emit(KindDeferred, 0, 0, 3)
	if !w.Fired() {
		t.Fatal("field-b rule did not fire on B above threshold")
	}
}

func TestWatchdogStormRule(t *testing.T) {
	cycle := uint64(0)
	w := NewWatchdog([]WatchdogRule{
		{Name: "flush-retry-storm", Kind: KindFlushRetry, Window: 100, Count: 3},
	})
	w.SetClock(func() uint64 { return cycle })

	// Three matches spread wider than the window: never fires.
	for _, c := range []uint64{0, 200, 400} {
		cycle = c
		w.Emit(KindFlushRetry, 0, 4, 1)
	}
	if w.Fired() {
		t.Fatal("storm rule fired on matches outside the window")
	}
	// Three matches inside one window: fires once, then the window
	// resets so the next lone match stays quiet.
	for _, c := range []uint64{1000, 1010, 1020} {
		cycle = c
		w.Emit(KindFlushRetry, 0, 4, 1)
	}
	if w.Count("flush-retry-storm") != 1 {
		t.Fatalf("Count = %d, want 1", w.Count("flush-retry-storm"))
	}
	cycle = 1030
	w.Emit(KindFlushRetry, 0, 4, 1)
	if w.Count("flush-retry-storm") != 1 {
		t.Error("storm window did not reset after firing")
	}
}

func TestWatchdogAlertsReachSinkWithoutRecursion(t *testing.T) {
	w := NewWatchdog([]WatchdogRule{
		{Name: "rendezvous-latency", Kind: KindRendezvous, Field: 'a', Threshold: 10},
	})
	rec := NewRecorder(0)
	// Simulate the attach wiring: the sink tee includes the watchdog
	// itself, as it does when rt.Tracer is teed after AttachWatchdog.
	w.Sink = NewTee(rec, w)
	w.Emit(KindRendezvous, 0, 50, 1)
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != KindWatchdogAlert {
		t.Fatalf("sink saw %v, want one WatchdogAlert", evs)
	}
	if evs[0].A != 50 || evs[0].B != 10 || evs[0].Name != "rendezvous-latency" {
		t.Fatalf("alert payload = %+v", evs[0])
	}
	if len(w.Alerts()) != 1 {
		t.Fatalf("recursion: %d alerts, want 1", len(w.Alerts()))
	}
}

func TestParseWatchdogRules(t *testing.T) {
	rules, err := ParseWatchdogRules("rendezvous-latency=42, flush-retry-storm=3")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]WatchdogRule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	if got := byName["rendezvous-latency"].Threshold; got != 42 {
		t.Errorf("rendezvous-latency threshold = %d, want 42", got)
	}
	if got := byName["flush-retry-storm"].Count; got != 3 {
		t.Errorf("flush-retry-storm count = %d, want 3", got)
	}
	// Untouched rules keep their defaults.
	if got := byName["deferred-depth"].Threshold; got != 8 {
		t.Errorf("deferred-depth threshold = %d, want default 8", got)
	}

	if _, err := ParseWatchdogRules("no-such-rule=1"); err == nil {
		t.Error("unknown rule name should error")
	}
	if _, err := ParseWatchdogRules("rendezvous-latency=abc"); err == nil {
		t.Error("non-numeric value should error")
	}
	if _, err := ParseWatchdogRules("rendezvous-latency"); err == nil || !strings.Contains(err.Error(), "name=value") {
		t.Errorf("missing '=' should error, got %v", err)
	}
}
