package trace

import (
	"bytes"
	"testing"
)

func TestRecorderFiltersToFlightKinds(t *testing.T) {
	r := NewRecorder(0)
	r.Emit(KindPatchSite, 0x100, 4, 0)   // high-rate kind: dropped
	r.Emit(KindFlushICache, 0x100, 4, 0) // high-rate kind: dropped
	r.Step(0x100, 1)                     // CPU hooks are no-ops
	r.Call(0x100, 0x200)
	r.Ret(0x200, 0x104)
	r.Emit(KindCommitAbort, 0, 1, 0)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != KindCommitAbort {
		t.Fatalf("recorder kept %v, want only the CommitAbort", evs)
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4)
	cycle := uint64(0)
	r.SetClock(func() uint64 { cycle++; return cycle })
	for i := 0; i < 10; i++ {
		r.Emit(KindCommitRetry, 0, uint64(i), 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want ring bound 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.A != want {
			t.Errorf("event %d: A = %d, want %d (oldest-first)", i, ev.A, want)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", r.Dropped())
	}
}

func TestRecorderSpanStamping(t *testing.T) {
	r := NewRecorder(0)
	r.SetSpan(3)
	r.Emit(KindCommitBegin, 0, 0, 0)
	r.SetSpan(0)
	r.Emit(KindRendezvous, 0, 10, 1)
	evs := r.Events()
	if evs[0].Span != 3 || evs[1].Span != 0 {
		t.Fatalf("span stamping wrong: %+v", evs)
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	cycle := uint64(100)
	r.SetClock(func() uint64 { cycle += 10; return cycle })
	r.SetSpan(1)
	r.EmitName(KindCommitBegin, 0x400, 0, 0, "multi")
	r.Emit(KindRendezvous, 0, 25, 2)
	r.Emit(KindCommitAbort, 0, 2, 0)
	d := r.Dump("boom")

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "boom" || len(got.Events) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	want := r.Events()
	for i, fe := range got.Events {
		ev, err := fe.Event()
		if err != nil {
			t.Fatal(err)
		}
		if ev != want[i] {
			t.Errorf("event %d: round trip %+v != original %+v", i, ev, want[i])
		}
	}
}

func TestRecorderNoteFailure(t *testing.T) {
	r := NewRecorder(0)
	r.Emit(KindCommitAbort, 0, 1, 0)
	var cbReason string
	r.OnFailure = func(reason string, d *FlightDump) { cbReason = reason }

	if r.LastDump() != nil {
		t.Fatal("LastDump should be nil before any failure")
	}
	r.NoteFailure("commit-abort")
	d := r.LastDump()
	if d == nil || d.Reason != "commit-abort" || len(d.Events) != 1 {
		t.Fatalf("LastDump = %+v", d)
	}
	if cbReason != "commit-abort" {
		t.Errorf("OnFailure got reason %q", cbReason)
	}
}

func TestFlightEventRejectsUnknownKind(t *testing.T) {
	if _, err := (FlightEvent{Kind: "NoSuchKind"}).Event(); err == nil {
		t.Fatal("unknown kind name should not decode")
	}
}
