package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The always-on flight recorder: a tiny bounded ring of
// commit-lifecycle and fault events, attached independently of the
// opt-in Collector. When a commit aborts, an audit fails or a chaos
// property trips, the last N events are dumped as JSON — the causal
// record of which rendezvous, poke phase or shootdown misbehaved,
// available exactly when the failure strikes instead of only when
// -trace happened to be on.
//
// The recorder is deliberately cheap: it implements Tracer with no-op
// Step/Call/Ret (it never attaches to a CPU's hot path — doing so
// would disable the unobserved superblock interpreter), filters to the
// flight kinds below, and allocates nothing per event once the ring is
// warm.

// FlightLimit is the default flight-recorder ring bound.
const FlightLimit = 256

// flightKinds selects the kinds the recorder keeps: the commit
// lifecycle (begin/end, phases, drains), the cross-modifying protocol
// (rendezvous, poke phases, traps, deferred ops), and every
// fault/recovery event. High-rate kinds (per-instruction, per-site,
// per-flush) are excluded so the ring's history window stays long
// enough to cover a whole failing operation.
var flightKinds = func() [KindCount]bool {
	var m [KindCount]bool
	for _, k := range []Kind{
		KindCommitBegin, KindCommitEnd, KindRevertBegin, KindRevertEnd,
		KindFaultInjected, KindCommitRetry, KindCommitAbort, KindRollback,
		KindTrap, KindPokePhase, KindRendezvous, KindDeferred,
		KindFlushRetry, KindDrainBegin, KindDrainEnd,
		KindPhaseBegin, KindPhaseEnd, KindWatchdogAlert,
	} {
		m[k] = true
	}
	return m
}()

// FlightRecorded reports whether the flight recorder keeps this kind.
func FlightRecorded(k Kind) bool { return int(k) < KindCount && flightKinds[k] }

// Recorder is the always-on flight recorder. It implements Tracer and
// SpanCarrier; attach it with core.AttachFlightRecorder so it sees the
// runtime library's and the memory system's commit-path events without
// touching any CPU hot path.
type Recorder struct {
	limit   int
	clock   func() uint64
	buf     []Event
	next    int
	dropped uint64
	span    uint64
	last    *FlightDump

	// OnFailure, when non-nil, receives the dump produced by each
	// NoteFailure call (mvrun points it at the -flight output file).
	OnFailure func(reason string, d *FlightDump)
}

// NewRecorder returns a flight recorder bounded to limit events
// (0 means FlightLimit).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = FlightLimit
	}
	return &Recorder{limit: limit, buf: make([]Event, 0, limit)}
}

// SetClock installs the cycle clock events are stamped from (typically
// the primary CPU's Cycles method; nil stamps cycle 0).
func (r *Recorder) SetClock(f func() uint64) { r.clock = f }

func (r *Recorder) now() uint64 {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

func (r *Recorder) record(ev Event) {
	if !FlightRecorded(ev.Kind) {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.dropped++
}

// Emit implements Tracer.
func (r *Recorder) Emit(k Kind, addr, a, b uint64) {
	r.record(Event{Cycle: r.now(), Kind: k, Addr: addr, A: a, B: b, Span: r.span})
}

// EmitName implements Tracer.
func (r *Recorder) EmitName(k Kind, addr, a, b uint64, name string) {
	r.record(Event{Cycle: r.now(), Kind: k, Addr: addr, A: a, B: b, Span: r.span, Name: name})
}

// Step implements Tracer as a no-op: the recorder never observes the
// interpreter hot path.
func (r *Recorder) Step(pc, cycles uint64) {}

// Call implements Tracer as a no-op.
func (r *Recorder) Call(pc, target uint64) {}

// Ret implements Tracer as a no-op.
func (r *Recorder) Ret(pc, target uint64) {}

// SetSpan implements SpanCarrier.
func (r *Recorder) SetSpan(id uint64) { r.span = id }

// Events returns the ring's events oldest-first.
func (r *Recorder) Events() []Event {
	if len(r.buf) < cap(r.buf) || r.next == 0 {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Dump snapshots the ring into a dump tagged with the reason.
func (r *Recorder) Dump(reason string) FlightDump {
	evs := r.Events()
	d := FlightDump{
		Reason:  reason,
		Cycle:   r.now(),
		Dropped: r.dropped,
		Events:  make([]FlightEvent, len(evs)),
	}
	for i, ev := range evs {
		d.Events[i] = EncodeFlightEvent(ev)
	}
	return d
}

// NoteFailure records a failure-point dump: the runtime library calls
// it on commit abort and audit failure. The dump is retained (see
// LastDump) and handed to OnFailure when set.
func (r *Recorder) NoteFailure(reason string) {
	d := r.Dump(reason)
	r.last = &d
	if r.OnFailure != nil {
		r.OnFailure(reason, &d)
	}
}

// LastDump returns the most recent failure dump, or nil if no failure
// was noted.
func (r *Recorder) LastDump() *FlightDump { return r.last }

// FlightDump is the JSON dump format: the failure reason, the cycle at
// dump time, the ring's drop count and the retained events oldest-first.
type FlightDump struct {
	Reason  string        `json:"reason"`
	Cycle   uint64        `json:"cycle"`
	Dropped uint64        `json:"dropped,omitempty"`
	Events  []FlightEvent `json:"events"`
}

// FlightEvent is one event of a dump, with the kind as its unique wire
// name (Kind.Name) so dumps stay readable and round-trip exactly.
type FlightEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Span  uint64 `json:"span,omitempty"`
	Addr  uint64 `json:"addr,omitempty"`
	A     uint64 `json:"a,omitempty"`
	B     uint64 `json:"b,omitempty"`
	Name  string `json:"name,omitempty"`
}

// EncodeFlightEvent converts an Event to its dump form.
func EncodeFlightEvent(ev Event) FlightEvent {
	return FlightEvent{
		Cycle: ev.Cycle, Kind: ev.Kind.Name(), Span: ev.Span,
		Addr: ev.Addr, A: ev.A, B: ev.B, Name: ev.Name,
	}
}

// Event converts a dump row back to an Event, resolving the kind name.
func (e FlightEvent) Event() (Event, error) {
	k, ok := ParseKind(e.Kind)
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown flight event kind %q", e.Kind)
	}
	return Event{
		Cycle: e.Cycle, Kind: k, Span: e.Span,
		Addr: e.Addr, A: e.A, B: e.B, Name: e.Name,
	}, nil
}

// WriteJSON writes the dump as indented JSON.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadFlightDump parses a dump written by WriteJSON.
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: reading flight dump: %w", err)
	}
	return &d, nil
}

// EventDetail renders the kind-specific payload of an event as one
// human-readable string — the DETAIL column of mvtrace's table view.
func EventDetail(ev Event) string {
	switch ev.Kind {
	case KindCommitBegin, KindRevertBegin:
		if ev.Name != "" {
			return "func=" + ev.Name
		}
		return ""
	case KindCommitEnd:
		return fmt.Sprintf("committed=%d generic=%d", ev.A, ev.B)
	case KindRevertEnd:
		if ev.Name != "" {
			return "func=" + ev.Name
		}
		return ""
	case KindSwitchValue:
		if ev.B != 0 {
			return fmt.Sprintf("switch=%s fnptr=%#x", ev.Name, ev.A)
		}
		return fmt.Sprintf("switch=%s value=%d", ev.Name, int64(ev.A))
	case KindPatchSite:
		if ev.B != 0 {
			return fmt.Sprintf("bytes=%d restore", ev.A)
		}
		return fmt.Sprintf("bytes=%d", ev.A)
	case KindProloguePatch:
		return fmt.Sprintf("func=%s variant=%#x", ev.Name, ev.A)
	case KindPrologueRestore:
		return "func=" + ev.Name
	case KindProtect:
		return fmt.Sprintf("len=%d prot=%s old=%s", ev.A, protString(uint8(ev.B)), protString(uint8(ev.B>>8)))
	case KindFlushICache:
		return fmt.Sprintf("len=%d", ev.A)
	case KindInterrupt:
		return fmt.Sprintf("cost=%d", ev.A)
	case KindMispredict:
		return fmt.Sprintf("target=%#x branch=%s", ev.A, [...]string{"cond", "indirect", "ret"}[ev.B%3])
	case KindFaultInjected:
		return fmt.Sprintf("fault=%s aux=%d", [...]string{"protect", "torn-write", "drop-flush", "fetch"}[ev.B%4], ev.A)
	case KindCommitRetry:
		return fmt.Sprintf("attempt=%d", ev.A)
	case KindCommitAbort:
		return fmt.Sprintf("rolled_back=%d", ev.A)
	case KindRollback:
		return fmt.Sprintf("len=%d", ev.A)
	case KindTrap:
		return "brk"
	case KindPokePhase:
		return fmt.Sprintf("len=%d phase=%d", ev.A, ev.B)
	case KindRendezvous:
		return fmt.Sprintf("latency=%d ranges=%d", ev.A, ev.B)
	case KindDeferred:
		op := "commit"
		if ev.A == 2 {
			op = "revert"
		}
		return fmt.Sprintf("op=%s func=%s depth=%d", op, ev.Name, ev.B)
	case KindFlushRetry:
		return fmt.Sprintf("len=%d retry=%d", ev.A, ev.B)
	case KindDrainBegin:
		return fmt.Sprintf("queued=%d", ev.A)
	case KindDrainEnd:
		return fmt.Sprintf("applied=%d queued=%d", ev.A, ev.B)
	case KindPhaseBegin, KindPhaseEnd:
		return "phase=" + ev.Name
	case KindWatchdogAlert:
		return fmt.Sprintf("rule=%s value=%d threshold=%d", ev.Name, ev.A, ev.B)
	}
	return ""
}
