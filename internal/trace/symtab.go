package trace

import "sort"

// Sym is one named address range — a function of the linked image or
// a generated variant body. The machine/runtime layers build these
// from link.Image symbols and multiverse descriptors (this package
// cannot import them without a cycle).
type Sym struct {
	Name string
	Addr uint64
	Size uint64
}

// UnknownName labels cycles spent outside every known symbol (the
// halt stub, gaps between functions).
const UnknownName = "[unknown]"

// SymTable resolves program counters to symbol names. Lookup returns
// the containing range, so callers can memoize and skip the binary
// search while the pc stays inside one function — the profiler's
// steady-state fast path.
type SymTable struct {
	syms []Sym // sorted by Addr, zero-size entries removed
}

// NewSymTable builds a table from syms (copied, sorted, zero-size
// entries dropped, exact-duplicate addresses deduplicated).
func NewSymTable(syms []Sym) *SymTable {
	t := &SymTable{syms: make([]Sym, 0, len(syms))}
	for _, s := range syms {
		if s.Size > 0 {
			t.syms = append(t.syms, s)
		}
	}
	sort.Slice(t.syms, func(i, j int) bool {
		if t.syms[i].Addr != t.syms[j].Addr {
			return t.syms[i].Addr < t.syms[j].Addr
		}
		return t.syms[i].Size > t.syms[j].Size
	})
	// Deduplicate identical addresses (keep the widest).
	out := t.syms[:0]
	for _, s := range t.syms {
		if n := len(out); n > 0 && out[n-1].Addr == s.Addr {
			continue
		}
		out = append(out, s)
	}
	t.syms = out
	return t
}

// Len returns the number of symbols.
func (t *SymTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.syms)
}

// Resolve returns the name of the symbol containing pc together with
// the half-open range [lo, hi) for which that answer stays valid. A
// pc outside every symbol resolves to UnknownName with the
// surrounding gap as its range, so memoization works there too. A nil
// table resolves everything to UnknownName.
func (t *SymTable) Resolve(pc uint64) (name string, lo, hi uint64) {
	if t == nil || len(t.syms) == 0 {
		return UnknownName, 0, ^uint64(0)
	}
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].Addr > pc }) - 1
	if i >= 0 {
		s := t.syms[i]
		if pc < s.Addr+s.Size {
			return s.Name, s.Addr, s.Addr + s.Size
		}
		lo = s.Addr + s.Size
	}
	hi = ^uint64(0)
	if i+1 < len(t.syms) {
		hi = t.syms[i+1].Addr
	}
	return UnknownName, lo, hi
}

// Name resolves pc to a symbol name alone.
func (t *SymTable) Name(pc uint64) string {
	n, _, _ := t.Resolve(pc)
	return n
}
