package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (the JSON format Perfetto and
// chrome://tracing load). Simulated cycles map 1:1 to the format's
// microsecond timestamps; one "thread" per stream. Commit/Revert
// Begin/End pairs are folded into complete ("X") duration events so a
// span survives even when the ring buffer dropped its counterpart;
// every other kind exports as a thread-scoped instant ("i") event.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   uint64         `json:"id,omitempty"` // flow-event binding id (the span)
	Bp   string         `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// cat groups kinds into Perfetto categories.
func (k Kind) cat() string {
	switch k {
	case KindCommitBegin, KindCommitEnd, KindRevertBegin, KindRevertEnd, KindSwitchValue:
		return "runtime"
	case KindPatchSite, KindProloguePatch, KindPrologueRestore:
		return "patch"
	case KindProtect, KindFlushICache:
		return "mem"
	case KindInterrupt, KindMispredict:
		return "cpu"
	case KindFaultInjected:
		return "fault"
	case KindCommitRetry, KindCommitAbort, KindRollback, KindFlushRetry:
		return "txn"
	case KindTrap, KindPokePhase, KindRendezvous, KindDeferred, KindDrainBegin, KindDrainEnd:
		return "xmod"
	case KindPhaseBegin, KindPhaseEnd:
		return "runtime"
	case KindWatchdogAlert:
		return "watchdog"
	}
	return "other"
}

// hex renders an address the way the rest of the tooling prints them.
func hex(v uint64) string { return fmt.Sprintf("%#x", v) }

// args renders the kind-specific payload, annotating addresses with
// symbol names when a table is available.
func (c *Collector) args(ev Event) map[string]any {
	a := map[string]any{}
	sym := func(addr uint64) {
		a["addr"] = hex(addr)
		if c.HasSymbols() {
			if n := c.symtab.Name(addr); n != UnknownName {
				a["sym"] = n
			}
		}
	}
	switch ev.Kind {
	case KindCommitEnd:
		a["committed"] = ev.A
		a["generic"] = ev.B
	case KindSwitchValue:
		sym(ev.Addr)
		a["switch"] = ev.Name
		if ev.B != 0 {
			a["fnptr"] = hex(ev.A)
		} else {
			a["value"] = int64(ev.A)
		}
	case KindPatchSite:
		sym(ev.Addr)
		a["bytes"] = ev.A
		if ev.B != 0 {
			a["restore"] = true
		}
	case KindProloguePatch:
		sym(ev.Addr)
		a["func"] = ev.Name
		a["variant"] = hex(ev.A)
	case KindPrologueRestore:
		sym(ev.Addr)
		a["func"] = ev.Name
	case KindProtect:
		sym(ev.Addr)
		a["len"] = ev.A
		a["prot"] = protString(uint8(ev.B))
		a["old"] = protString(uint8(ev.B >> 8))
	case KindFlushICache:
		sym(ev.Addr)
		a["len"] = ev.A
	case KindInterrupt:
		sym(ev.Addr)
		a["cost"] = ev.A
	case KindMispredict:
		sym(ev.Addr)
		a["target"] = hex(ev.A)
		a["branch"] = [...]string{"cond", "indirect", "ret"}[ev.B%3]
	case KindFaultInjected:
		sym(ev.Addr)
		a["aux"] = ev.A
		a["fault"] = [...]string{"protect", "torn-write", "drop-flush", "fetch"}[ev.B%4]
	case KindCommitRetry:
		sym(ev.Addr)
		a["attempt"] = ev.A
	case KindCommitAbort:
		a["rolled_back"] = ev.A
	case KindRollback:
		sym(ev.Addr)
		a["len"] = ev.A
	case KindTrap:
		sym(ev.Addr)
	case KindPokePhase:
		sym(ev.Addr)
		a["len"] = ev.A
		a["phase"] = ev.B
	case KindRendezvous:
		a["latency"] = ev.A
		a["ranges"] = ev.B
	case KindDeferred:
		sym(ev.Addr)
		if ev.A == 2 {
			a["op"] = "revert"
		} else {
			a["op"] = "commit"
		}
		a["func"] = ev.Name
		a["depth"] = ev.B
	case KindFlushRetry:
		sym(ev.Addr)
		a["len"] = ev.A
		a["retry"] = ev.B
	case KindDrainBegin:
		a["queued"] = ev.A
	case KindDrainEnd:
		a["applied"] = ev.A
		a["queued"] = ev.B
	case KindPhaseBegin, KindPhaseEnd:
		a["phase"] = ev.Name
	case KindWatchdogAlert:
		a["rule"] = ev.Name
		a["value"] = ev.A
		a["threshold"] = ev.B
	}
	if ev.Span != 0 {
		a["span"] = ev.Span
	}
	if len(a) == 0 {
		return nil
	}
	return a
}

// protString mirrors mem.Prot.String without importing mem (import
// cycle: mem emits trace events).
func protString(p uint8) string {
	b := []byte("---")
	if p&1 != 0 {
		b[0] = 'r'
	}
	if p&2 != 0 {
		b[1] = 'w'
	}
	if p&4 != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// spanBegin reports whether k opens a span and which kind closes it.
func (k Kind) spanBegin() (Kind, bool) {
	switch k {
	case KindCommitBegin:
		return KindCommitEnd, true
	case KindRevertBegin:
		return KindRevertEnd, true
	case KindDrainBegin:
		return KindDrainEnd, true
	case KindPhaseBegin:
		return KindPhaseEnd, true
	}
	return 0, false
}

func (k Kind) spanEnd() bool {
	switch k {
	case KindCommitEnd, KindRevertEnd, KindDrainEnd, KindPhaseEnd:
		return true
	}
	return false
}

// WriteChromeTrace writes every buffered event, merged across
// streams, as Chrome trace-event JSON.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	out := chromeTrace{DisplayTimeUnit: "ns"}
	if d := c.Dropped(); d > 0 {
		out.OtherData = map[string]any{"droppedEvents": d}
	}
	// Thread-name metadata rows, one per stream.
	for _, s := range c.streams {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: s.id,
			Args: map[string]any{"name": s.label},
		})
	}

	// Pending span begins, per stream, matched innermost-first.
	type open struct {
		end Kind
		ev  Event
	}
	pending := make(map[int][]open)
	var lastCycle uint64
	emitSpan := func(begin Event, endCycle uint64, args map[string]any) {
		name := begin.Kind.String()
		if begin.Kind == KindPhaseBegin && begin.Name != "" {
			// Sub-phase slices read better under their phase name
			// ("herd", "poke", "rollback") than a generic "Phase".
			name = begin.Name
		}
		dur := float64(endCycle - begin.Cycle)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: begin.Kind.cat(), Ph: "X",
			Ts: float64(begin.Cycle), Dur: &dur, Pid: 0, Tid: begin.Stream,
			Args: args,
		})
	}
	// Commit-causality flow tracking: for each span, remember the first
	// event per stream and the last event overall, so flow arrows can
	// connect a commit's work across CPUs.
	type flowState struct {
		firstCycle  uint64
		firstStream int
		perStream   map[int]uint64 // stream -> first cycle on that stream
		lastCycle   uint64
		lastStream  int
	}
	flows := map[uint64]*flowState{}
	var flowOrder []uint64
	noteFlow := func(ev Event) {
		if ev.Span == 0 {
			return
		}
		f := flows[ev.Span]
		if f == nil {
			f = &flowState{
				firstCycle: ev.Cycle, firstStream: ev.Stream,
				perStream: map[int]uint64{},
			}
			flows[ev.Span] = f
			flowOrder = append(flowOrder, ev.Span)
		}
		if _, ok := f.perStream[ev.Stream]; !ok {
			f.perStream[ev.Stream] = ev.Cycle
		}
		f.lastCycle, f.lastStream = ev.Cycle, ev.Stream
	}
	for _, ev := range events {
		if ev.Cycle > lastCycle {
			lastCycle = ev.Cycle
		}
		noteFlow(ev)
		if end, ok := ev.Kind.spanBegin(); ok {
			pending[ev.Stream] = append(pending[ev.Stream], open{end: end, ev: ev})
			continue
		}
		if ev.Kind.spanEnd() {
			stack := pending[ev.Stream]
			matched := false
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].end == ev.Kind {
					emitSpan(stack[i].ev, ev.Cycle, c.args(ev))
					pending[ev.Stream] = append(stack[:i], stack[i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				// The begin was overwritten in the ring: degrade to an
				// instant so the operation stays visible.
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: ev.Kind.String(), Cat: ev.Kind.cat(), Ph: "i",
					Ts: float64(ev.Cycle), Pid: 0, Tid: ev.Stream, S: "t",
					Args: c.args(ev),
				})
			}
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Kind.String(), Cat: ev.Kind.cat(), Ph: "i",
			Ts: float64(ev.Cycle), Pid: 0, Tid: ev.Stream, S: "t",
			Args: c.args(ev),
		})
	}
	// Close spans whose end was never recorded.
	for _, stack := range pending {
		for _, o := range stack {
			emitSpan(o.ev, lastCycle, nil)
		}
	}

	// Flow events: one s→t…→f chain per commit-causality span that
	// touched more than one stream, so Perfetto draws arrows from the
	// committing CPU to the victims it trapped and shot down.
	for _, span := range flowOrder {
		f := flows[span]
		if len(f.perStream) < 2 {
			continue
		}
		name := fmt.Sprintf("span %d", span)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "flow", Ph: "s", ID: span,
			Ts: float64(f.firstCycle), Pid: 0, Tid: f.firstStream,
		})
		// Step through each other stream's first sighting in cycle
		// order (ties by stream id, for deterministic output).
		type hop struct {
			stream int
			cycle  uint64
		}
		var hops []hop
		for st, cy := range f.perStream {
			if st == f.firstStream {
				continue
			}
			hops = append(hops, hop{st, cy})
		}
		sort.Slice(hops, func(i, j int) bool {
			if hops[i].cycle != hops[j].cycle {
				return hops[i].cycle < hops[j].cycle
			}
			return hops[i].stream < hops[j].stream
		})
		for _, h := range hops {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: "flow", Ph: "t", ID: span,
				Ts: float64(h.cycle), Pid: 0, Tid: h.stream,
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "flow", Ph: "f", ID: span, Bp: "e",
			Ts: float64(f.lastCycle), Pid: 0, Tid: f.lastStream,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
