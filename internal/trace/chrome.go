package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export (the JSON format Perfetto and
// chrome://tracing load). Simulated cycles map 1:1 to the format's
// microsecond timestamps; one "thread" per stream. Commit/Revert
// Begin/End pairs are folded into complete ("X") duration events so a
// span survives even when the ring buffer dropped its counterpart;
// every other kind exports as a thread-scoped instant ("i") event.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// cat groups kinds into Perfetto categories.
func (k Kind) cat() string {
	switch k {
	case KindCommitBegin, KindCommitEnd, KindRevertBegin, KindRevertEnd, KindSwitchValue:
		return "runtime"
	case KindPatchSite, KindProloguePatch, KindPrologueRestore:
		return "patch"
	case KindProtect, KindFlushICache:
		return "mem"
	case KindInterrupt, KindMispredict:
		return "cpu"
	case KindFaultInjected:
		return "fault"
	case KindCommitRetry, KindCommitAbort, KindRollback:
		return "txn"
	}
	return "other"
}

// hex renders an address the way the rest of the tooling prints them.
func hex(v uint64) string { return fmt.Sprintf("%#x", v) }

// args renders the kind-specific payload, annotating addresses with
// symbol names when a table is available.
func (c *Collector) args(ev Event) map[string]any {
	a := map[string]any{}
	sym := func(addr uint64) {
		a["addr"] = hex(addr)
		if c.HasSymbols() {
			if n := c.symtab.Name(addr); n != UnknownName {
				a["sym"] = n
			}
		}
	}
	switch ev.Kind {
	case KindCommitEnd:
		a["committed"] = ev.A
		a["generic"] = ev.B
	case KindSwitchValue:
		sym(ev.Addr)
		a["switch"] = ev.Name
		if ev.B != 0 {
			a["fnptr"] = hex(ev.A)
		} else {
			a["value"] = int64(ev.A)
		}
	case KindPatchSite:
		sym(ev.Addr)
		a["bytes"] = ev.A
		if ev.B != 0 {
			a["restore"] = true
		}
	case KindProloguePatch:
		sym(ev.Addr)
		a["func"] = ev.Name
		a["variant"] = hex(ev.A)
	case KindPrologueRestore:
		sym(ev.Addr)
		a["func"] = ev.Name
	case KindProtect:
		sym(ev.Addr)
		a["len"] = ev.A
		a["prot"] = protString(uint8(ev.B))
		a["old"] = protString(uint8(ev.B >> 8))
	case KindFlushICache:
		sym(ev.Addr)
		a["len"] = ev.A
	case KindInterrupt:
		sym(ev.Addr)
		a["cost"] = ev.A
	case KindMispredict:
		sym(ev.Addr)
		a["target"] = hex(ev.A)
		a["branch"] = [...]string{"cond", "indirect", "ret"}[ev.B%3]
	case KindFaultInjected:
		sym(ev.Addr)
		a["aux"] = ev.A
		a["fault"] = [...]string{"protect", "torn-write", "drop-flush", "fetch"}[ev.B%4]
	case KindCommitRetry:
		sym(ev.Addr)
		a["attempt"] = ev.A
	case KindCommitAbort:
		a["rolled_back"] = ev.A
	case KindRollback:
		sym(ev.Addr)
		a["len"] = ev.A
	}
	if len(a) == 0 {
		return nil
	}
	return a
}

// protString mirrors mem.Prot.String without importing mem (import
// cycle: mem emits trace events).
func protString(p uint8) string {
	b := []byte("---")
	if p&1 != 0 {
		b[0] = 'r'
	}
	if p&2 != 0 {
		b[1] = 'w'
	}
	if p&4 != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// spanBegin reports whether k opens a span and which kind closes it.
func (k Kind) spanBegin() (Kind, bool) {
	switch k {
	case KindCommitBegin:
		return KindCommitEnd, true
	case KindRevertBegin:
		return KindRevertEnd, true
	}
	return 0, false
}

func (k Kind) spanEnd() bool { return k == KindCommitEnd || k == KindRevertEnd }

// WriteChromeTrace writes every buffered event, merged across
// streams, as Chrome trace-event JSON.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	out := chromeTrace{DisplayTimeUnit: "ns"}
	if d := c.Dropped(); d > 0 {
		out.OtherData = map[string]any{"droppedEvents": d}
	}
	// Thread-name metadata rows, one per stream.
	for _, s := range c.streams {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: s.id,
			Args: map[string]any{"name": s.label},
		})
	}

	// Pending span begins, per stream, matched innermost-first.
	type open struct {
		end Kind
		ev  Event
	}
	pending := make(map[int][]open)
	var lastCycle uint64
	emitSpan := func(begin Event, endCycle uint64, args map[string]any) {
		dur := float64(endCycle - begin.Cycle)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: begin.Kind.String(), Cat: begin.Kind.cat(), Ph: "X",
			Ts: float64(begin.Cycle), Dur: &dur, Pid: 0, Tid: begin.Stream,
			Args: args,
		})
	}
	for _, ev := range events {
		if ev.Cycle > lastCycle {
			lastCycle = ev.Cycle
		}
		if end, ok := ev.Kind.spanBegin(); ok {
			pending[ev.Stream] = append(pending[ev.Stream], open{end: end, ev: ev})
			continue
		}
		if ev.Kind.spanEnd() {
			stack := pending[ev.Stream]
			matched := false
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].end == ev.Kind {
					emitSpan(stack[i].ev, ev.Cycle, c.args(ev))
					pending[ev.Stream] = append(stack[:i], stack[i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				// The begin was overwritten in the ring: degrade to an
				// instant so the operation stays visible.
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: ev.Kind.String(), Cat: ev.Kind.cat(), Ph: "i",
					Ts: float64(ev.Cycle), Pid: 0, Tid: ev.Stream, S: "t",
					Args: c.args(ev),
				})
			}
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Kind.String(), Cat: ev.Kind.cat(), Ph: "i",
			Ts: float64(ev.Cycle), Pid: 0, Tid: ev.Stream, S: "t",
			Args: c.args(ev),
		})
	}
	// Close spans whose end was never recorded.
	for _, stack := range pending {
		for _, o := range stack {
			emitSpan(o.ev, lastCycle, nil)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
