package trace

// Tee fans every tracer call out to multiple sinks, so the always-on
// flight recorder and the cycle-domain watchdog can ride alongside an
// opt-in collector stream on the same hook. Span updates are forwarded
// to every sink that carries spans.
type Tee struct {
	sinks []Tracer
}

// NewTee composes sinks into one Tracer, dropping nils. It returns nil
// for no sinks and the sink itself for exactly one, so composing onto
// an unset hook costs nothing.
func NewTee(sinks ...Tracer) Tracer {
	var out []Tracer
	for _, s := range sinks {
		if s == nil {
			continue
		}
		// Flatten nested tees so repeated attachment stays shallow.
		if t, ok := s.(*Tee); ok {
			out = append(out, t.sinks...)
			continue
		}
		out = append(out, s)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return &Tee{sinks: out}
}

// Emit implements Tracer.
func (t *Tee) Emit(k Kind, addr, a, b uint64) {
	for _, s := range t.sinks {
		s.Emit(k, addr, a, b)
	}
}

// EmitName implements Tracer.
func (t *Tee) EmitName(k Kind, addr, a, b uint64, name string) {
	for _, s := range t.sinks {
		s.EmitName(k, addr, a, b, name)
	}
}

// Step implements Tracer.
func (t *Tee) Step(pc, cycles uint64) {
	for _, s := range t.sinks {
		s.Step(pc, cycles)
	}
}

// Call implements Tracer.
func (t *Tee) Call(pc, target uint64) {
	for _, s := range t.sinks {
		s.Call(pc, target)
	}
}

// Ret implements Tracer.
func (t *Tee) Ret(pc, target uint64) {
	for _, s := range t.sinks {
		s.Ret(pc, target)
	}
}

// SetSpan implements SpanCarrier, forwarding to every span-carrying sink.
func (t *Tee) SetSpan(id uint64) {
	for _, s := range t.sinks {
		if sc, ok := s.(SpanCarrier); ok {
			sc.SetSpan(id)
		}
	}
}
