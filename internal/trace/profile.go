package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// The cycle-attribution profiler.
//
// Attribution model: the interpreter calls Step(pc, cycles) once per
// instruction, before executing it. The cycle delta between two
// consecutive Steps — the cost of the instruction in between, plus
// any interrupt serviced after it — is charged to the call stack that
// was current when time advanced. Call/Ret maintain that stack from
// the executed CALL/CLLM/CLLR/RET instructions; a generic prologue
// that was patched to JMP into a variant body shows up naturally,
// because the leaf frame follows the pc through the symbol table
// rather than trusting the stack alone.
//
// The steady-state fast path does no map lookups and no string work:
// while the pc stays inside one symbol's range and the stack depth is
// unchanged, deltas accumulate into a pending counter that is flushed
// into the folded-stack map only when the leaf or the stack changes.

// maxStackDepth bounds the recorded stack; deeper frames fold into
// the deepest recorded one.
const maxStackDepth = 64

// Profiler aggregates cycle attribution across all streams.
type Profiler struct {
	syms   *SymTable
	folded map[string]uint64 // "frame;frame;leaf" -> cycles
	flat   map[string]uint64 // leaf function -> self cycles
	calls  map[string]uint64 // "caller;callee" -> call count
}

func newProfiler() *Profiler {
	return &Profiler{
		folded: make(map[string]uint64),
		flat:   make(map[string]uint64),
		calls:  make(map[string]uint64),
	}
}

// profCursor is the per-stream profiler state.
type profCursor struct {
	started bool
	last    uint64 // cycle stamp of the previous Step
	pending uint64 // cycles not yet flushed into the maps

	stack    []string
	overflow int // frames beyond maxStackDepth

	leaf   string // symbol containing the current pc
	lo, hi uint64 // validity range of leaf
	key    string // folded key for (stack, leaf)
}

// invalidate forces re-resolution of the leaf on the next Step (used
// when the symbol table changes).
func (c *profCursor) invalidate() { c.lo, c.hi = 1, 0 }

func (c *profCursor) rebuildKey() {
	if n := len(c.stack); n > 0 {
		k := strings.Join(c.stack, ";")
		if c.leaf != c.stack[n-1] {
			k += ";" + c.leaf
		}
		c.key = k
	} else {
		c.key = c.leaf
	}
}

func (s *Stream) flushProf(p *Profiler) {
	c := &s.cur
	if c.pending == 0 {
		return
	}
	if c.key == "" {
		c.rebuildKey()
	}
	p.folded[c.key] += c.pending
	p.flat[c.leaf] += c.pending
	c.pending = 0
}

// Step implements Tracer; it feeds the profiler and is a no-op unless
// profiling is enabled.
func (s *Stream) Step(pc, cycles uint64) {
	p := s.col.prof
	if p == nil {
		return
	}
	c := &s.cur
	if c.started {
		c.pending += cycles - c.last
	}
	c.last = cycles
	c.started = true
	if pc < c.lo || pc >= c.hi {
		s.flushProf(p)
		c.leaf, c.lo, c.hi = p.syms.Resolve(pc)
		c.rebuildKey()
	}
}

// Call implements Tracer: it records a call edge and pushes the
// callee frame. The in-flight call instruction's cost still flushes
// under the caller's key (the key is rebuilt only when the pc enters
// the callee).
func (s *Stream) Call(pc, target uint64) {
	p := s.col.prof
	if p == nil {
		return
	}
	c := &s.cur
	if pc < c.lo || pc >= c.hi {
		// First event before any Step, or a stale leaf: resolve now so
		// the edge gets a real caller.
		s.flushProf(p)
		c.leaf, c.lo, c.hi = p.syms.Resolve(pc)
		c.rebuildKey()
	}
	callee := p.syms.Name(target)
	p.calls[c.leaf+";"+callee]++
	if len(c.stack) >= maxStackDepth {
		c.overflow++
		return
	}
	s.flushProf(p)
	if len(c.stack) == 0 {
		// Seed the base frame: the function execution started in was
		// never pushed by a Call, but it belongs at the stack's root.
		c.stack = append(c.stack, c.leaf)
	}
	c.stack = append(c.stack, callee)
	// The key keeps attributing to the caller until the pc actually
	// enters the callee; entering it triggers the leaf-range miss in
	// Step, which flushes and rebuilds.
}

// Ret implements Tracer: it pops the deepest frame. Unbalanced
// returns (e.g. into harness stubs) are ignored.
func (s *Stream) Ret(pc, target uint64) {
	p := s.col.prof
	if p == nil {
		return
	}
	c := &s.cur
	if c.overflow > 0 {
		c.overflow--
		return
	}
	if len(c.stack) == 0 {
		return
	}
	s.flushProf(p)
	c.stack = c.stack[:len(c.stack)-1]
	c.key = "" // rebuilt lazily on the next flush
}

// flushCursors finalizes every stream's pending attribution.
func (c *Collector) flushCursors() {
	if c.prof == nil {
		return
	}
	for _, s := range c.streams {
		s.flushProf(c.prof)
	}
}

// ProfileSummary is the aggregated profiler output.
type ProfileSummary struct {
	// Folded maps "frame;frame;leaf" stacks to simulated cycles —
	// flamegraph.pl / speedscope compatible when rendered one per
	// line as "stack count".
	Folded map[string]uint64
	// Flat maps each function to its self cycles.
	Flat map[string]uint64
	// Calls maps "caller;callee" edges to call counts.
	Calls map[string]uint64
}

// Profile returns the aggregated attribution, or nil when profiling
// is disabled.
func (c *Collector) Profile() *ProfileSummary {
	if c.prof == nil {
		return nil
	}
	c.flushCursors()
	return &ProfileSummary{Folded: c.prof.folded, Flat: c.prof.flat, Calls: c.prof.calls}
}

// WriteFolded writes the folded stacks in flamegraph.pl format, one
// "stack cycles" pair per line, sorted for deterministic output.
func (c *Collector) WriteFolded(w io.Writer) error {
	p := c.Profile()
	if p == nil {
		return fmt.Errorf("trace: profiling not enabled on this collector")
	}
	keys := make([]string, 0, len(p.Folded))
	for k := range p.Folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, p.Folded[k]); err != nil {
			return err
		}
	}
	return nil
}
