package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestEveryKindIsFullyRendered walks the whole kind space and asserts
// each kind carries every encoding the tooling relies on: a unique
// wire name that round-trips through ParseKind (flight dumps), a
// Chrome display name and category, and a rendering in the Chrome
// export. Adding a kind without extending those tables fails here
// instead of silently exporting "Unknown"/"other" rows.
func TestEveryKindIsFullyRendered(t *testing.T) {
	seen := map[string]Kind{}
	for i := 0; i < KindCount; i++ {
		k := Kind(i)

		name := k.Name()
		if name == "" || name == "Unknown" {
			t.Errorf("kind %d has no wire name", i)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share wire name %q", prev, k, name)
		}
		seen[name] = k
		if got, ok := ParseKind(name); !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, ok, k)
		}

		if k.String() == "Unknown" {
			t.Errorf("kind %s has no Chrome display name", name)
		}
		if k.cat() == "other" {
			t.Errorf("kind %s has no Perfetto category", name)
		}
	}
}

// Every kind must survive the flight-dump JSON encoding bit-exactly.
func TestEveryKindFlightEncodes(t *testing.T) {
	for i := 0; i < KindCount; i++ {
		ev := Event{
			Cycle: 123, Kind: Kind(i), Addr: 0x400,
			A: 7, B: 9, Span: 2, Name: "payload",
		}
		data, err := json.Marshal(EncodeFlightEvent(ev))
		if err != nil {
			t.Fatal(err)
		}
		var fe FlightEvent
		if err := json.Unmarshal(data, &fe); err != nil {
			t.Fatal(err)
		}
		back, err := fe.Event()
		if err != nil {
			t.Errorf("kind %s: %v", Kind(i).Name(), err)
			continue
		}
		if back != ev {
			t.Errorf("kind %s: round trip %+v != %+v", Kind(i).Name(), back, ev)
		}
	}
}

// Every kind must produce a visible row (span, instant or flow) in the
// Chrome export — not vanish into an unhandled case.
func TestEveryKindChromeExports(t *testing.T) {
	for i := 0; i < KindCount; i++ {
		k := Kind(i)
		c := NewCollector(Options{})
		var cyc uint64
		s := c.NewStream("cpu0", func() uint64 { return cyc })
		s.EmitName(k, 0x400, 1, 2, "payload")
		if end, ok := k.spanBegin(); ok {
			cyc = 10
			s.EmitName(end, 0x400, 1, 2, "payload")
		}
		var buf bytes.Buffer
		if err := c.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var out struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("kind %s: export is not valid JSON: %v", k.Name(), err)
		}
		visible := 0
		for _, ev := range out.TraceEvents {
			if ev["ph"] == "M" { // metadata rows don't count
				continue
			}
			visible++
		}
		if visible == 0 {
			t.Errorf("kind %s produced no visible Chrome event", k.Name())
		}
	}
}
