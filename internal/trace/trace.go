// Package trace is the unified tracing and profiling subsystem of the
// simulated multiverse stack.
//
// The paper's entire evaluation (§6) is about *observing* the cost of
// dynamic variability — call-site patch counts, icache flushes, cycle
// deltas across variant commits — so the simulator records exactly
// those moments as typed events: Commit/Revert spans with the switch
// values that drove them, per-site patches and prologue redirections,
// page-protection flips, icache invalidations, interrupts and branch
// mispredicts. Events are collected in bounded per-CPU ring buffers
// (one Stream per hardware thread plus the runtime library, each
// stamped from its CPU's simulated-cycle clock) and merged on the
// cycle timestamp at export time. Two outputs are supported:
//
//   - Chrome trace-event JSON (chrome.go), loadable in Perfetto, with
//     commit/revert rendered as duration spans and everything else as
//     instant events;
//   - flamegraph-compatible folded stacks plus flat per-function
//     cycle and call-edge counters (profile.go), attributed by symbol
//     name through a SymTable built from the linked image.
//
// The package deliberately depends on nothing but the standard
// library so that the lowest layers (internal/mem, internal/cpu) can
// emit events without import cycles. A nil Tracer means tracing is
// off; every hook in the hot interpreter path is a single
// pointer-nil check and costs no allocations (the difftests assert
// that simulated cycle counts are bit-identical with tracing on and
// off, and BenchmarkInterpreterThroughput bounds the host-side cost).
package trace

import "sort"

// Kind classifies a trace event.
type Kind uint8

// Event kinds. Begin/End pairs become duration spans in the Chrome
// export; everything else is an instant event.
const (
	// Variability-management events (internal/core).
	KindCommitBegin     Kind = iota // a commit operation starts
	KindCommitEnd                   // A = functions bound, B = left generic
	KindRevertBegin                 // a revert operation starts
	KindRevertEnd                   //
	KindSwitchValue                 // Addr = switch, A = value, B = 1 for fn pointers, Name = switch name
	KindPatchSite                   // Addr = call site, A = patch-unit bytes, B = 1 when restoring the original
	KindProloguePatch               // Addr = generic entry, A = variant address, Name = function
	KindPrologueRestore             // Addr = generic entry, Name = function

	// Memory-system events (internal/mem, internal/cpu).
	KindProtect     // Addr, A = length, B = new prot | old prot << 8
	KindFlushICache // Addr, A = length

	// Microarchitectural events (internal/cpu).
	KindInterrupt  // Addr = pc, A = cycles stolen
	KindMispredict // Addr = pc, A = actual target/taken, B = 0 cond, 1 indirect, 2 ret

	// Fault-injection and crash-consistency events (internal/mem,
	// internal/cpu, internal/core). The B field of KindFaultInjected
	// carries the injected kind: 0 protect, 1 torn write, 2 dropped
	// icache flush, 3 spurious fetch fault.
	KindFaultInjected // Addr = faulting address, A = aux (length/tear/pc), B = fault kind
	KindCommitRetry   // Addr = retried patch address, A = attempt number
	KindCommitAbort   // Addr = commit scope, A = journal entries rolled back
	KindRollback      // Addr = restored range start, A = length

	// Cross-modifying-code events (internal/cpu, internal/machine,
	// internal/core).
	KindTrap       // Addr = pc that fetched a BRK byte
	KindPokePhase  // Addr = poked range start, A = length, B = phase (1 BRK in, 2 tail, 3 first byte)
	KindRendezvous // Addr = 0, A = rendezvous latency in cycles, B = CPUs quiesced
	KindDeferred   // Addr = function entry, A = 1 commit / 2 revert, B = queue depth, Name = function

	// Observability events (internal/core, flight.go, watchdog.go).
	KindFlushRetry    // Addr = range start, A = length, B = re-broadcast attempt
	KindDrainBegin    // a deferred-queue drain starts; A = queued operations
	KindDrainEnd      // A = operations applied, B = operations still queued
	KindPhaseBegin    // commit sub-phase opens; Name = phase ("herd", "poke", "rollback", ...)
	KindPhaseEnd      // commit sub-phase closes; Name = phase
	KindWatchdogAlert // A = observed value, B = threshold, Name = rule

	kindSentinel // count marker; keep last
)

// KindCount is the number of defined event kinds; reflection-style
// tests iterate Kind(0)..Kind(KindCount-1) to assert every kind has a
// Chrome-export category and a flight-recorder JSON encoding.
const KindCount = int(kindSentinel)

// kindNames gives each kind a unique, stable wire name — the encoding
// used by flight-recorder dumps, where Begin/End pairs must stay
// distinguishable (unlike String, which folds them for Chrome span
// display).
var kindNames = [KindCount]string{
	KindCommitBegin:     "CommitBegin",
	KindCommitEnd:       "CommitEnd",
	KindRevertBegin:     "RevertBegin",
	KindRevertEnd:       "RevertEnd",
	KindSwitchValue:     "SwitchValue",
	KindPatchSite:       "PatchSite",
	KindProloguePatch:   "ProloguePatch",
	KindPrologueRestore: "PrologueRestore",
	KindProtect:         "Protect",
	KindFlushICache:     "FlushICache",
	KindInterrupt:       "Interrupt",
	KindMispredict:      "Mispredict",
	KindFaultInjected:   "FaultInjected",
	KindCommitRetry:     "CommitRetry",
	KindCommitAbort:     "CommitAbort",
	KindRollback:        "Rollback",
	KindTrap:            "Trap",
	KindPokePhase:       "PokePhase",
	KindRendezvous:      "Rendezvous",
	KindDeferred:        "Deferred",
	KindFlushRetry:      "FlushRetry",
	KindDrainBegin:      "DrainBegin",
	KindDrainEnd:        "DrainEnd",
	KindPhaseBegin:      "PhaseBegin",
	KindPhaseEnd:        "PhaseEnd",
	KindWatchdogAlert:   "WatchdogAlert",
}

// Name returns the kind's unique wire name (flight-dump encoding).
func (k Kind) Name() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Unknown"
}

// ParseKind resolves a wire name produced by Kind.Name back to the
// kind, so flight dumps round-trip through JSON.
func ParseKind(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// String names the kind as exported to Chrome traces.
func (k Kind) String() string {
	switch k {
	case KindCommitBegin, KindCommitEnd:
		return "Commit"
	case KindRevertBegin, KindRevertEnd:
		return "Revert"
	case KindSwitchValue:
		return "SwitchValue"
	case KindPatchSite:
		return "PatchSite"
	case KindProloguePatch:
		return "ProloguePatch"
	case KindPrologueRestore:
		return "PrologueRestore"
	case KindProtect:
		return "Protect"
	case KindFlushICache:
		return "FlushICache"
	case KindInterrupt:
		return "Interrupt"
	case KindMispredict:
		return "Mispredict"
	case KindFaultInjected:
		return "FaultInjected"
	case KindCommitRetry:
		return "CommitRetry"
	case KindCommitAbort:
		return "CommitAbort"
	case KindRollback:
		return "Rollback"
	case KindTrap:
		return "Trap"
	case KindPokePhase:
		return "PokePhase"
	case KindRendezvous:
		return "Rendezvous"
	case KindDeferred:
		return "Deferred"
	case KindFlushRetry:
		return "FlushRetry"
	case KindDrainBegin, KindDrainEnd:
		return "Drain"
	case KindPhaseBegin, KindPhaseEnd:
		return "Phase"
	case KindWatchdogAlert:
		return "WatchdogAlert"
	}
	return "Unknown"
}

// Event is one recorded occurrence. The meaning of Addr, A and B is
// per Kind (see the constants above).
type Event struct {
	Cycle uint64
	Addr  uint64
	A, B  uint64
	// Span is the commit-causality span the event belongs to: the
	// monotonic id core.Runtime assigns to each public commit, revert
	// or drain operation. 0 means "outside any operation". Because the
	// span is collector-wide, events on every stream — the victim CPU's
	// BRK trap, a secondary thread's icache shootdown, the memory
	// system's protection flip — carry the id of the commit that caused
	// them, which is what lets the Chrome export draw cross-CPU flow
	// arrows for a single commit.
	Span   uint64
	Name   string // optional symbolic label (switch or function name)
	Kind   Kind
	Stream int // id of the emitting Stream
}

// SpanCarrier is implemented by tracer sinks that stamp emitted events
// with the current commit-causality span. core.Runtime probes its
// Tracer for this interface at the start and end of every public
// operation; sinks that don't implement it simply record span 0.
type SpanCarrier interface {
	// SetSpan installs the current span id; 0 clears it.
	SetSpan(id uint64)
}

// Tracer is the hook interface the simulated stack calls into. A nil
// Tracer disables tracing; implementations must not mutate simulated
// state (tracing is strictly passive — cycle counts are bit-identical
// with any tracer attached or none).
//
// Emit/EmitName record variability and machine events; Step, Call and
// Ret feed the cycle-attribution profiler and are called on the
// interpreter hot path (scalar arguments only, no allocations).
type Tracer interface {
	// Emit records an event; the implementation stamps the cycle.
	Emit(k Kind, addr, a, b uint64)
	// EmitName is Emit with a symbolic label.
	EmitName(k Kind, addr, a, b uint64, name string)
	// Step observes one retired instruction: its pc and the cycle
	// counter before execution.
	Step(pc, cycles uint64)
	// Call observes a call edge from the instruction at pc to target.
	Call(pc, target uint64)
	// Ret observes a return from the instruction at pc to target.
	Ret(pc, target uint64)
}

// DefaultLimit is the default per-stream event-buffer bound.
const DefaultLimit = 1 << 16

// Options configures a Collector.
type Options struct {
	// Limit bounds each stream's event buffer; when full, the oldest
	// events are overwritten (and counted as dropped). 0 means
	// DefaultLimit.
	Limit int
	// Profile enables cycle-attribution profiling (folded stacks,
	// flat and call-edge counters) from the Step/Call/Ret feed.
	Profile bool
}

// Collector owns the per-CPU event streams and the optional profiler.
// It is not safe for concurrent use; the simulator interleaves CPUs
// on one goroutine (machine.Interleave), matching that model.
type Collector struct {
	limit   int
	streams []*Stream
	prof    *Profiler
	// symtab is kept even without profiling so the Chrome exporter
	// can annotate addresses with function names.
	symtab *SymTable
	// span is the collector-wide current commit-causality span; every
	// stream stamps it into recorded events (see Event.Span).
	span uint64
	// onNew observes streams created after OnNewStream was called
	// (AddCPU creates streams for late hardware threads; metric
	// attachment needs to see them).
	onNew func(*Stream)
}

// NewCollector returns an empty collector.
func NewCollector(o Options) *Collector {
	if o.Limit <= 0 {
		o.Limit = DefaultLimit
	}
	c := &Collector{limit: o.Limit}
	if o.Profile {
		c.prof = newProfiler()
	}
	return c
}

// SetSymbols installs the symbol table used for profiling attribution
// and for annotating exported events with function names.
func (c *Collector) SetSymbols(t *SymTable) {
	if c.prof != nil {
		c.prof.syms = t
		// Cached pc ranges were resolved against the old table.
		for _, s := range c.streams {
			s.cur.invalidate()
		}
	}
	c.symtab = t
}

// Symbols returns the installed symbol table (possibly nil).
func (c *Collector) Symbols() *SymTable { return c.symtab }

// HasSymbols reports whether a non-empty symbol table is installed.
func (c *Collector) HasSymbols() bool { return c.symtab != nil && len(c.symtab.syms) > 0 }

// NewStream adds an event stream stamped from clock (typically one
// CPU's Cycles method; nil stamps every event with cycle 0). The
// label names the stream in exports ("cpu0", "cpu1", ...).
func (c *Collector) NewStream(label string, clock func() uint64) *Stream {
	s := &Stream{
		col:   c,
		id:    len(c.streams),
		label: label,
		clock: clock,
		buf:   make([]Event, 0, c.limit),
	}
	c.streams = append(c.streams, s)
	if c.onNew != nil {
		c.onNew(s)
	}
	return s
}

// OnNewStream registers an observer for streams created after this
// call (existing streams are the caller's to enumerate via Streams).
// core.AttachTraceMetrics uses it to register dropped-event counters
// for the per-CPU streams AddCPU creates later.
func (c *Collector) OnNewStream(f func(*Stream)) { c.onNew = f }

// Streams returns the collector's streams in creation order.
func (c *Collector) Streams() []*Stream { return c.streams }

// Events returns all buffered events merged across streams in
// simulated-cycle order (ties broken by stream creation order).
func (c *Collector) Events() []Event {
	var out []Event
	for _, s := range c.streams {
		out = append(out, s.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// Dropped returns the total number of events overwritten because a
// stream's buffer was full.
func (c *Collector) Dropped() uint64 {
	var n uint64
	for _, s := range c.streams {
		n += s.dropped
	}
	return n
}

// StreamStat summarizes one stream for end-of-run reporting.
type StreamStat struct {
	Label   string
	Events  int
	Dropped uint64
}

// StreamStats returns per-stream event and drop counts in stream
// creation order (the primary CPU's stream first), so tools can tell
// the user which CPU's ring buffer overflowed.
func (c *Collector) StreamStats() []StreamStat {
	out := make([]StreamStat, 0, len(c.streams))
	for _, s := range c.streams {
		out = append(out, StreamStat{Label: s.label, Events: len(s.Events()), Dropped: s.dropped})
	}
	return out
}

// Profiling reports whether cycle-attribution profiling is enabled.
func (c *Collector) Profiling() bool { return c.prof != nil }

// Stream is one bounded, cycle-stamped event sequence, usually bound
// to a single simulated CPU. It implements Tracer.
type Stream struct {
	col   *Collector
	id    int
	label string
	clock func() uint64

	buf     []Event // ring once len == cap
	next    int     // overwrite position when full
	dropped uint64

	cur profCursor
}

// ID returns the stream's id (the Chrome-trace tid).
func (s *Stream) ID() int { return s.id }

// Label returns the stream's display name.
func (s *Stream) Label() string { return s.label }

// Dropped returns how many events this stream overwrote.
func (s *Stream) Dropped() uint64 { return s.dropped }

func (s *Stream) now() uint64 {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

func (s *Stream) record(ev Event) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
		return
	}
	s.buf[s.next] = ev
	s.next = (s.next + 1) % len(s.buf)
	s.dropped++
}

// Events returns the stream's buffered events in emission order.
func (s *Stream) Events() []Event {
	if len(s.buf) < cap(s.buf) || s.next == 0 {
		return append([]Event(nil), s.buf...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Emit implements Tracer.
func (s *Stream) Emit(k Kind, addr, a, b uint64) {
	s.record(Event{Cycle: s.now(), Kind: k, Addr: addr, A: a, B: b, Span: s.col.span, Stream: s.id})
}

// EmitName implements Tracer.
func (s *Stream) EmitName(k Kind, addr, a, b uint64, name string) {
	s.record(Event{Cycle: s.now(), Kind: k, Addr: addr, A: a, B: b, Span: s.col.span, Name: name, Stream: s.id})
}

// SetSpan implements SpanCarrier: the span is collector-wide, so a
// commit's id reaches every stream — including the per-CPU streams of
// hardware threads the commit shoots down or traps.
func (s *Stream) SetSpan(id uint64) { s.col.span = id }
