package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// The cycle-domain invariant watchdog: configurable monitors over the
// event stream that fire structured alerts when a commit-path
// invariant degrades — a rendezvous taking too long, the deferred
// queue growing without draining, flush-retry or invalidation storms.
// Alerts are themselves trace events (KindWatchdogAlert) so they land
// in the collector, the flight recorder and the Chrome export, and
// they back the mv_watchdog_alerts_total{rule=...} metric.

// WatchdogRule is one invariant monitor. Two shapes exist:
//
//   - value rules (Count == 0): fire whenever the watched field of a
//     matching event exceeds Threshold;
//   - storm rules (Count > 0): fire when Count matching events occur
//     within a Window of cycles.
type WatchdogRule struct {
	Name string // metric label and alert name
	Kind Kind   // event kind the rule watches
	// Field selects which payload field a value rule compares:
	// 'a' or 'b'.
	Field     byte
	Threshold uint64 // value rules: fire when field > Threshold
	Window    uint64 // storm rules: cycle window
	Count     int    // storm rules: matches within Window that fire
}

func (r WatchdogRule) storm() bool { return r.Count > 0 }

// DefaultWatchdogRules returns the built-in monitors. Thresholds are
// deliberately loose for healthy runs; -watchdog-rules tightens them.
func DefaultWatchdogRules() []WatchdogRule {
	return []WatchdogRule{
		// A stop-machine or herding rendezvous should quiesce the fleet
		// in well under this many cycles.
		{Name: "rendezvous-latency", Kind: KindRendezvous, Field: 'a', Threshold: 5000},
		// Deferred-queue depth growing past this means stack-active
		// functions are never settling.
		{Name: "deferred-depth", Kind: KindDeferred, Field: 'b', Threshold: 8},
		// Repeated icache-flush re-broadcasts inside one window point at
		// a CPU that keeps missing shootdowns.
		{Name: "flush-retry-storm", Kind: KindFlushRetry, Window: 50000, Count: 16},
		// A storm of icache invalidations thrashes every CPU's decoded
		// superblock cache.
		{Name: "invalidation-storm", Kind: KindFlushICache, Window: 10000, Count: 64},
	}
}

// ParseWatchdogRules applies a "name=value,name=value" spec on top of
// the default rules: the value overrides a value rule's Threshold or a
// storm rule's Count. Unknown names are an error.
func ParseWatchdogRules(spec string) ([]WatchdogRule, error) {
	rules := DefaultWatchdogRules()
	if spec == "" {
		return rules, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("trace: watchdog rule %q: want name=value", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: watchdog rule %q: %w", part, err)
		}
		found := false
		for i := range rules {
			if rules[i].Name != strings.TrimSpace(name) {
				continue
			}
			if rules[i].storm() {
				rules[i].Count = int(n)
			} else {
				rules[i].Threshold = n
			}
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("trace: unknown watchdog rule %q", name)
		}
	}
	return rules, nil
}

// WatchdogAlert is one fired invariant violation.
type WatchdogAlert struct {
	Rule      string `json:"rule"`
	Cycle     uint64 `json:"cycle"`
	Span      uint64 `json:"span,omitempty"`
	Value     uint64 `json:"value"`
	Threshold uint64 `json:"threshold"`
}

// Watchdog evaluates its rules against every event it sees. It
// implements Tracer (Step/Call/Ret are no-ops — it never rides the
// interpreter hot path) and SpanCarrier; attach it with
// core.AttachWatchdog.
type Watchdog struct {
	rules  []WatchdogRule
	counts []uint64
	recent [][]uint64 // per storm rule: match cycles within the window
	alerts []WatchdogAlert
	span   uint64
	clock  func() uint64

	// Sink, when non-nil, receives a KindWatchdogAlert event per fire
	// (typically the runtime's tracer tee, so alerts reach the
	// collector and the flight recorder).
	Sink Tracer
}

// NewWatchdog returns a watchdog over rules (nil means the defaults).
func NewWatchdog(rules []WatchdogRule) *Watchdog {
	if rules == nil {
		rules = DefaultWatchdogRules()
	}
	return &Watchdog{
		rules:  rules,
		counts: make([]uint64, len(rules)),
		recent: make([][]uint64, len(rules)),
	}
}

// SetClock installs the cycle clock used for storm windows and alert
// stamps.
func (w *Watchdog) SetClock(f func() uint64) { w.clock = f }

func (w *Watchdog) now() uint64 {
	if w.clock == nil {
		return 0
	}
	return w.clock()
}

// RuleNames returns the rule names in order (metric label values).
func (w *Watchdog) RuleNames() []string {
	out := make([]string, len(w.rules))
	for i, r := range w.rules {
		out[i] = r.Name
	}
	return out
}

// Count returns how often the named rule fired.
func (w *Watchdog) Count(rule string) uint64 {
	for i, r := range w.rules {
		if r.Name == rule {
			return w.counts[i]
		}
	}
	return 0
}

// Alerts returns every fired alert in order.
func (w *Watchdog) Alerts() []WatchdogAlert { return w.alerts }

// Fired reports whether any rule fired.
func (w *Watchdog) Fired() bool { return len(w.alerts) > 0 }

func (w *Watchdog) fire(i int, value uint64) {
	r := w.rules[i]
	w.counts[i]++
	w.alerts = append(w.alerts, WatchdogAlert{
		Rule: r.Name, Cycle: w.now(), Span: w.span,
		Value: value, Threshold: w.threshold(i),
	})
	if w.Sink != nil {
		w.Sink.EmitName(KindWatchdogAlert, 0, value, w.threshold(i), r.Name)
	}
}

func (w *Watchdog) threshold(i int) uint64 {
	if w.rules[i].storm() {
		return uint64(w.rules[i].Count)
	}
	return w.rules[i].Threshold
}

func (w *Watchdog) observe(k Kind, a, b uint64) {
	// The watchdog's own alerts flow back through the shared tee; never
	// match on them or a firing rule would recurse.
	if k == KindWatchdogAlert {
		return
	}
	now := w.now()
	for i := range w.rules {
		r := &w.rules[i]
		if r.Kind != k {
			continue
		}
		if r.storm() {
			keep := w.recent[i][:0]
			for _, c := range w.recent[i] {
				if now-c <= r.Window {
					keep = append(keep, c)
				}
			}
			w.recent[i] = append(keep, now)
			if len(w.recent[i]) >= r.Count {
				w.fire(i, uint64(len(w.recent[i])))
				w.recent[i] = w.recent[i][:0]
			}
			continue
		}
		v := a
		if r.Field == 'b' {
			v = b
		}
		if v > r.Threshold {
			w.fire(i, v)
		}
	}
}

// Emit implements Tracer.
func (w *Watchdog) Emit(k Kind, addr, a, b uint64) { w.observe(k, a, b) }

// EmitName implements Tracer.
func (w *Watchdog) EmitName(k Kind, addr, a, b uint64, name string) { w.observe(k, a, b) }

// Step implements Tracer as a no-op.
func (w *Watchdog) Step(pc, cycles uint64) {}

// Call implements Tracer as a no-op.
func (w *Watchdog) Call(pc, target uint64) {}

// Ret implements Tracer as a no-op.
func (w *Watchdog) Ret(pc, target uint64) {}

// SetSpan implements SpanCarrier.
func (w *Watchdog) SetSpan(id uint64) { w.span = id }
