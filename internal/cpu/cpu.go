// Package cpu implements the m64 execution engine together with a
// deterministic microarchitectural cost model.
//
// The paper's entire argument is microarchitectural: a dynamic
// configuration check costs a load, a compare and a conditional branch
// on every invocation, and the branch costs 15–20 cycles more whenever
// the branch target buffer is cold or wrong. The model therefore
// tracks exactly the features the paper reasons about:
//
//   - per-opcode base costs,
//   - a direct-mapped BTB with 2-bit saturating counters for
//     conditional branches,
//   - indirect-call target prediction through the same BTB,
//   - a return-address stack,
//   - expensive locked operations (XCHG),
//   - privileged instructions that trap when executed in a
//     paravirtualized guest, plus cheap explicit hypercalls,
//   - an instruction cache that keeps executing stale bytes until it
//     is explicitly flushed (forgetting the flush after binary
//     patching is a real bug the tests provoke).
//
// A predecoded-instruction cache (decodecache.go) is layered on top of
// each icache line so the steady-state Step loop dispatches on cached
// isa.Inst structs instead of re-decoding raw bytes. It is a pure
// host-side accelerator: simulated cycle counts are bit-identical with
// it enabled or disabled.
//
// Cycle counts are deterministic: the same program always reports the
// same number of cycles.
package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Mode distinguishes bare-metal execution from running as a
// paravirtualized guest.
type Mode uint8

// Execution modes.
const (
	Native Mode = iota // privileged instructions execute directly
	Guest              // privileged instructions trap to the hypervisor
)

// Hypervisor handles HCALL instructions and privileged-instruction
// traps of a Guest-mode CPU.
type Hypervisor interface {
	// Hypercall is invoked for HCALL n. It may inspect and modify the
	// CPU (e.g. its virtual interrupt flag).
	Hypercall(c *CPU, n uint8) error
}

// Injector is the CPU-side fault-injection hook (see
// internal/faultinject, which implements it together with the
// mem-side hooks). A nil injector disables injection entirely: Run
// selects the hook-free stepFastN loop, so the unobserved hot path is
// untouched — the same pattern as Tracer. Implementations must be
// deterministic.
type Injector interface {
	// FetchFault is consulted once per Step before fetch; a non-nil
	// error models a spurious instruction-fetch fault. The PC does not
	// advance, so re-stepping retries the same instruction. Consulted
	// per instruction: Run drops to single-step dispatch (no
	// superblocks) whenever an injector is installed.
	FetchFault(cpu int, pc, cycles uint64) error
	// DropFlush reports whether this CPU should silently lose the
	// icache invalidation for [addr, addr+n) — a dropped SMP shootdown
	// IPI. The CPU keeps executing its stale snapshot until the next
	// flush of the range.
	DropFlush(cpu int, addr, n uint64) bool
}

// Config holds the cycle cost model. All costs are in cycles.
type Config struct {
	CostALU   int // simple ALU op, MOV, MOVI, LEA, SPADD
	CostMul   int
	CostDiv   int
	CostLoad  int // L1 load-to-use
	CostStore int
	CostPush  int
	CostPop   int
	CostNop   int

	CostJmp           int // unconditional direct jump
	CostBranch        int // correctly predicted conditional branch
	MispredictPenalty int // added on any misprediction (cf. 15–20 cycles on Skylake)
	CostCall          int
	CostRet           int
	CostCallR         int // indirect call base cost (before prediction)

	CostXchg  int // locked atomic exchange
	CostPause int
	CostCmp   int

	CostCliSti    int // CLI/STI executed natively
	GuestTrapCost int // CLI/STI executed in a guest: trap-and-emulate
	CostHcall     int // explicit hypercall
	CostRdtsc     int
	CostIO        int // OUTB/INB device access

	BTBSize  int // number of direct-mapped BTB entries (power of two)
	RASDepth int // return-address stack depth

	// Tracer, when non-nil, observes execution and variability events
	// (see internal/trace). Tracing is strictly passive: cycle counts
	// are bit-identical with any tracer attached or none, and a nil
	// tracer costs one pointer check per hook. SetTracer rebinds it
	// after construction.
	Tracer trace.Tracer
}

// DefaultConfig returns the calibrated cost model used by the paper
// reproduction benchmarks.
func DefaultConfig() Config {
	return Config{
		CostALU:           1,
		CostMul:           3,
		CostDiv:           20,
		CostLoad:          4,
		CostStore:         1,
		CostPush:          1,
		CostPop:           1,
		CostNop:           0, // NOPs are eliminated in rename on modern cores
		CostJmp:           1,
		CostBranch:        1,
		MispredictPenalty: 16,
		CostCall:          2,
		CostRet:           2,
		CostCallR:         4,
		CostXchg:          18,
		CostPause:         1,
		CostCmp:           1,
		CostCliSti:        3,
		GuestTrapCost:     250,
		CostHcall:         5,
		CostRdtsc:         24,
		CostIO:            40,
		BTBSize:           512,
		RASDepth:          16,
	}
}

type btbEntry struct {
	valid   bool
	tag     uint64
	counter uint8  // 2-bit saturating; >= 2 predicts taken
	target  uint64 // predicted indirect target
}

// Stats accumulates execution statistics. The fields are plain
// uint64s incremented in the interpreter loop; the metrics registry
// (internal/metrics via core.AttachMetrics) reads them through
// closures at export time, so observability never adds work here.
type Stats struct {
	Instructions uint64
	Branches     uint64
	Mispredicts  uint64
	Loads        uint64
	Stores       uint64
	Calls        uint64
	ICacheFills  uint64
	Interrupts   uint64
	DecodeHits   uint64 // instructions dispatched from the decode cache
	DecodeMisses uint64 // instructions decoded from raw bytes (cache enabled)
	Traps        uint64 // BRK breakpoint traps taken (text-poke windows)

	BlockBuilds      uint64 // superblocks chained from icache-line snapshots
	BlockHits        uint64 // superblock dispatches (one per block entry/re-entry)
	BlockInsts       uint64 // instructions dispatched through superblocks
	BlockInvalidates uint64 // superblocks dropped by FlushICache
}

// Add returns the field-wise sum of s and o — how per-CPU stats
// aggregate across an SMP machine.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Instructions: s.Instructions + o.Instructions,
		Branches:     s.Branches + o.Branches,
		Mispredicts:  s.Mispredicts + o.Mispredicts,
		Loads:        s.Loads + o.Loads,
		Stores:       s.Stores + o.Stores,
		Calls:        s.Calls + o.Calls,
		ICacheFills:  s.ICacheFills + o.ICacheFills,
		Interrupts:   s.Interrupts + o.Interrupts,
		DecodeHits:   s.DecodeHits + o.DecodeHits,
		DecodeMisses: s.DecodeMisses + o.DecodeMisses,
		Traps:        s.Traps + o.Traps,

		BlockBuilds:      s.BlockBuilds + o.BlockBuilds,
		BlockHits:        s.BlockHits + o.BlockHits,
		BlockInsts:       s.BlockInsts + o.BlockInsts,
		BlockInvalidates: s.BlockInvalidates + o.BlockInvalidates,
	}
}

// DecodeHitRatio returns DecodeHits/(DecodeHits+DecodeMisses), or 0
// when the decode cache has not been exercised.
func (s Stats) DecodeHitRatio() float64 {
	total := s.DecodeHits + s.DecodeMisses
	if total == 0 {
		return 0
	}
	return float64(s.DecodeHits) / float64(total)
}

// BlockHitRatio returns the fraction of instructions dispatched
// through superblocks, or 0 when nothing has executed. Never NaN:
// ratio gauges are exported straight into JSON, which cannot
// represent NaN.
func (s Stats) BlockHitRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.BlockInsts) / float64(s.Instructions)
}

// CPU is a single m64 hardware thread.
type CPU struct {
	Mem *mem.Memory

	regs   [isa.NumRegs]uint64
	pc     uint64
	cycles uint64
	halted bool

	cmpA, cmpB int64 // operands of the last CMP/CMPI

	cfg  Config
	btb  []btbEntry
	ras  []uint64
	rasN int

	icache      map[uint64]*icLine // page number -> cached line
	decodeCache bool               // serve Step from predecoded instructions
	superblocks bool               // chain straight-line runs for Run's fast path
	lastPN      uint64             // page number memo for the decode-cache fast path
	lastLine    *icLine            // line memo; nil = invalid, cleared by FlushICache

	mode       Mode
	intrOn     bool
	hypervisor Hypervisor
	tracer     trace.Tracer

	inject Injector // nil = no fault injection (Run keeps stepFastN)
	id     int      // hardware-thread index the injector keys faults on

	intrPeriod uint64 // perturbation period in cycles; 0 = off
	intrCost   uint64
	nextIntr   uint64

	// cycleStop, when non-zero, makes stepFastN stop chaining
	// superblocks once the cycle counter reaches it — the pause
	// mechanism RunUntil uses to park the CPU at a block-chain boundary
	// without ever splitting a block (which would perturb BlockHits and
	// break checkpoint determinism). Zero outside RunUntil.
	cycleStop uint64

	// Trace, when non-nil, observes every executed instruction after
	// decode and before execution — the substrate for debugger-style
	// tooling (cf. the paper's §7.2 discussion of stepping through
	// patched code).
	Trace func(pc uint64, in isa.Inst)

	// OutB receives device writes; nil discards them.
	OutB func(port uint8, b byte)
	// InB supplies device reads; nil reads zero.
	InB func(port uint8) byte

	stats Stats
}

type icLine struct {
	bytes   []byte // snapshot of the page at fill time
	version uint64 // page version at fill time; ICacheStale compares it

	// dec lazily caches instructions decoded from bytes, indexed by
	// in-page offset (Len == 0 means not decoded). It lives and dies
	// with the line, so FlushICache invalidates both together — see
	// decodecache.go.
	dec []isa.Inst

	// sb lazily caches superblocks headed at each in-page offset
	// (superblock.go); like dec, blocks derive only from bytes and die
	// with the line. nsb counts real (non-sentinel) blocks so
	// FlushICache can account invalidations without rescanning.
	sb  []*superblock
	nsb int
}

// New returns a CPU executing from m with the given cost model.
func New(m *mem.Memory, cfg Config) *CPU {
	if cfg.BTBSize == 0 || cfg.BTBSize&(cfg.BTBSize-1) != 0 {
		panic(fmt.Sprintf("cpu: BTBSize %d is not a power of two", cfg.BTBSize))
	}
	return &CPU{
		Mem:         m,
		cfg:         cfg,
		btb:         make([]btbEntry, cfg.BTBSize),
		ras:         make([]uint64, cfg.RASDepth),
		icache:      make(map[uint64]*icLine),
		decodeCache: decodeCacheDefault,
		superblocks: superblocksDefault,
		tracer:      cfg.Tracer,
	}
}

// SetTracer installs (or, with nil, removes) the event/profiling
// tracer. Safe at any point; tracing is passive and never changes
// simulated cycles.
func (c *CPU) SetTracer(t trace.Tracer) { c.tracer = t }

// Tracer returns the installed tracer, if any.
func (c *CPU) Tracer() trace.Tracer { return c.tracer }

// SetInjector installs (or, with nil, removes) the fault injector and
// this CPU's hardware-thread index, which the injector uses to bind
// faults to one SMP thread. With a nil injector the hot path is
// byte-identical to an injection-free build.
func (c *CPU) SetInjector(inj Injector, id int) { c.inject = inj; c.id = id }

// Injector returns the installed fault injector, if any.
func (c *CPU) Injector() Injector { return c.inject }

// Reg returns the value of register r.
func (c *CPU) Reg(r isa.Reg) uint64 { return c.regs[r] }

// SetReg sets register r to v.
func (c *CPU) SetReg(r isa.Reg, v uint64) { c.regs[r] = v }

// PC returns the program counter.
func (c *CPU) PC() uint64 { return c.pc }

// SetPC sets the program counter.
func (c *CPU) SetPC(pc uint64) { c.pc = pc; c.halted = false }

// Cycles returns the cycle counter (also readable by RDTSC).
func (c *CPU) Cycles() uint64 { return c.cycles }

// AddCycles advances the cycle counter by n; the benchmark harness uses
// it to model measurement overhead.
func (c *CPU) AddCycles(n uint64) { c.cycles += n }

// Halted reports whether the CPU has executed HLT.
func (c *CPU) Halted() bool { return c.halted }

// Stats returns a copy of the execution statistics.
func (c *CPU) Stats() Stats { return c.stats }

// Mode returns the execution mode.
func (c *CPU) Mode() Mode { return c.mode }

// SetMode switches between Native and Guest execution.
func (c *CPU) SetMode(m Mode) { c.mode = m }

// SetHypervisor installs the handler for hypercalls and guest traps.
func (c *CPU) SetHypervisor(h Hypervisor) { c.hypervisor = h }

// InterruptsEnabled reports the virtual interrupt flag.
func (c *CPU) InterruptsEnabled() bool { return c.intrOn }

// SetInterruptsEnabled sets the virtual interrupt flag (used by
// hypervisor implementations of sti/cli hypercalls).
func (c *CPU) SetInterruptsEnabled(on bool) { c.intrOn = on }

// SetInterruptPerturbation makes an asynchronous interrupt steal cost
// cycles roughly every period cycles while interrupts are enabled —
// the perturbation the paper's measurement methodology attributes its
// rare outliers to (§6.1, §7.5). Deterministic: the same program sees
// the same interrupt schedule. period 0 disables.
func (c *CPU) SetInterruptPerturbation(period, cost uint64) {
	c.intrPeriod = period
	c.intrCost = cost
	c.nextIntr = c.cycles + period
}

// Config returns the cost model.
func (c *CPU) Config() Config { return c.cfg }

// FlushICache invalidates the instruction cache for [addr, addr+n).
// Binary patching must call this (via the runtime library) or the CPU
// keeps executing the stale pre-patch bytes.
func (c *CPU) FlushICache(addr, n uint64) {
	if n == 0 {
		return
	}
	if c.inject != nil && c.inject.DropFlush(c.id, addr, n) {
		// The shootdown IPI for this CPU was lost: its snapshot lines
		// survive and it keeps executing the pre-patch bytes. The
		// commit-side coherence verification (core) detects the stale
		// lines via ICacheStale and re-issues the flush.
		if c.tracer != nil {
			c.tracer.Emit(trace.KindFaultInjected, addr, n, 2)
		}
		return
	}
	c.Mem.Stats.Flushes++
	if c.tracer != nil {
		c.tracer.Emit(trace.KindFlushICache, addr, n, 0)
	}
	first := addr >> mem.PageShift
	last := (addr + n - 1) >> mem.PageShift
	for pn := first; pn <= last; pn++ {
		if line, ok := c.icache[pn]; ok {
			c.stats.BlockInvalidates += uint64(line.nsb)
			delete(c.icache, pn)
		}
	}
	// The decode-cache fast path memoizes the last line; a flush may
	// have dropped it.
	c.lastLine = nil
}

// ICacheStale reports whether this CPU holds an instruction-cache line
// overlapping [addr, addr+n) whose snapshot predates the newest write
// to its page — i.e. whether a patch has not yet reached this CPU's
// frontend. Each line records the page's write-version at fill time;
// comparing it against the current version is exactly the check a
// shootdown-acknowledge protocol performs. The crash-consistency layer
// (core) uses it after commits and rollbacks to verify that no SMP
// thread lost its invalidation to an injected dropped-IPI fault.
func (c *CPU) ICacheStale(addr, n uint64) bool {
	if n == 0 {
		return false
	}
	first := addr >> mem.PageShift
	last := (addr + n - 1) >> mem.PageShift
	// Wide queries (a whole-address-space coherence sweep) walk the
	// cached lines instead of every page of the range.
	if last-first >= uint64(len(c.icache)) {
		for pn, line := range c.icache {
			if pn < first || pn > last {
				continue
			}
			if ver, mapped := c.Mem.PageVersion(pn << mem.PageShift); mapped && ver != line.version {
				return true
			}
		}
		return false
	}
	for pn := first; pn <= last; pn++ {
		line, ok := c.icache[pn]
		if !ok {
			continue // next fetch refills from memory: coherent
		}
		if ver, mapped := c.Mem.PageVersion(pn << mem.PageShift); mapped && ver != line.version {
			return true
		}
	}
	return false
}

// FlushPredictor clears the BTB and the return-address stack. The
// BTB-cold ablation (experiment E8) uses it to model branch-predictor
// pressure from surrounding kernel code.
func (c *CPU) FlushPredictor() {
	for i := range c.btb {
		c.btb[i] = btbEntry{}
	}
	c.rasN = 0
}

// icFetch copies n instruction bytes at addr into buf from the
// instruction cache, filling lines as needed. It checks the Exec
// permission at fill time, like a hardware ifetch.
func (c *CPU) icFetch(addr uint64, buf []byte) (int, error) {
	got := 0
	for got < len(buf) {
		pn := addr >> mem.PageShift
		line, ok := c.icache[pn]
		if !ok {
			prot, mapped := c.Mem.ProtOf(addr)
			if !mapped || prot&mem.Exec == 0 {
				if got > 0 {
					return got, nil // partial window; decoder decides
				}
				return 0, &mem.Fault{Addr: addr, Kind: mem.AccessExec, Prot: prot, Mapped: mapped}
			}
			pageBytes := make([]byte, mem.PageSize)
			if err := c.Mem.Fetch(pn<<mem.PageShift, pageBytes); err != nil {
				return got, err
			}
			ver, _ := c.Mem.PageVersion(addr)
			line = &icLine{bytes: pageBytes, version: ver}
			c.icache[pn] = line
			c.stats.ICacheFills++
		}
		off := int(addr & (mem.PageSize - 1))
		n := copy(buf[got:], line.bytes[off:])
		got += n
		addr += uint64(n)
	}
	return got, nil
}

// maxInstLen is the longest instruction we fetch eagerly (MOVI).
// NOPN is handled specially since only its first two bytes matter.
const maxInstLen = 10

type execError struct {
	pc  uint64
	err error
}

func (e *execError) Error() string { return fmt.Sprintf("cpu: at pc=%#x: %v", e.pc, e.err) }
func (e *execError) Unwrap() error { return e.err }

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return fmt.Errorf("cpu: step on halted CPU")
	}
	pc := c.pc
	if c.inject != nil {
		if err := c.inject.FetchFault(c.id, pc, c.cycles); err != nil {
			// A spurious fetch fault: nothing retired, the PC holds, so
			// the caller may service it and re-step the instruction.
			if c.tracer != nil {
				c.tracer.Emit(trace.KindFaultInjected, pc, 0, 3)
			}
			return &execError{pc, err}
		}
	}
	if c.decodeCache {
		if in, ok := c.cachedInst(pc); ok {
			c.stats.DecodeHits++
			if c.Trace != nil {
				c.Trace(pc, in)
			}
			if c.tracer != nil {
				c.tracer.Step(pc, c.cycles)
			}
			return c.exec(in)
		}
	}
	return c.stepDecode(pc)
}

// stepDecode is the decode-cache-miss path: fetch through the
// instruction cache, decode, optionally cache, execute.
func (c *CPU) stepDecode(pc uint64) error {
	var window [maxInstLen]byte
	n, err := c.icFetch(pc, window[:])
	if err != nil {
		return &execError{pc, err}
	}

	var in isa.Inst
	if n >= 2 && isa.Op(window[0]) == isa.NOPN {
		// NOPN: only the length byte matters; the padding need not be
		// fetched (it may even cross into the next page).
		length := int(window[1])
		if length < 2 {
			return &execError{pc, fmt.Errorf("NOPN length %d", length)}
		}
		in = isa.Inst{Op: isa.NOPN, Len: length}
	} else {
		in, err = isa.Decode(window[:n])
		if err != nil {
			return &execError{pc, err}
		}
	}
	if c.decodeCache {
		c.stats.DecodeMisses++
		c.cacheInst(pc, in)
	}
	if c.Trace != nil {
		c.Trace(pc, in)
	}
	if c.tracer != nil {
		c.tracer.Step(pc, c.cycles)
	}
	return c.exec(in)
}

func (c *CPU) exec(in isa.Inst) error {
	pc := c.pc
	if in.Op == isa.BRK {
		// A breakpoint byte planted by the text-poke protocol. Nothing
		// retires: the PC holds (the error path skips the epilogue), so
		// the caller can spin until the poke finishes and re-step the
		// then-rewritten instruction.
		c.stats.Traps++
		if c.tracer != nil {
			c.tracer.Emit(trace.KindTrap, pc, 0, 0)
		}
		return &execError{pc, &TrapFault{PC: pc}}
	}
	next := pc + uint64(in.Len)
	cost := 0
	c.stats.Instructions++

	// Every opcode must fall through to the common epilogue below: an
	// early return would skip the interrupt-perturbation check, making
	// a due interrupt silently unserviceable across that instruction
	// (a real bug the RDTSC regression test provokes).
	switch in.Op {
	case isa.HLT:
		c.halted = true

	case isa.NOP, isa.NOPN:
		cost = c.cfg.CostNop

	case isa.MOVI:
		c.regs[in.Rd] = uint64(in.Imm)
		cost = c.cfg.CostALU

	case isa.MOV:
		c.regs[in.Rd] = c.regs[in.Rs]
		cost = c.cfg.CostALU

	case isa.LEA:
		c.regs[in.Rd] = c.regs[in.Rs] + uint64(in.Imm)
		cost = c.cfg.CostALU

	case isa.LD, isa.LDS:
		addr := c.regs[in.Rs] + uint64(in.Imm)
		v, err := c.Mem.ReadUint(addr, in.Size)
		if err != nil {
			return &execError{pc, err}
		}
		if in.Op == isa.LDS {
			shift := 64 - 8*in.Size
			v = uint64(int64(v<<shift) >> shift)
		}
		c.regs[in.Rd] = v
		c.stats.Loads++
		cost = c.cfg.CostLoad

	case isa.ST:
		addr := c.regs[in.Rd] + uint64(in.Imm)
		if err := c.Mem.WriteUint(addr, in.Size, c.regs[in.Rs]); err != nil {
			return &execError{pc, err}
		}
		c.stats.Stores++
		cost = c.cfg.CostStore

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SAR, isa.NEG, isa.NOT, isa.UDIV, isa.UMOD:
		var err error
		cost, err = c.alu(in.Op, in.Rd, c.regs[in.Rs])
		if err != nil {
			return &execError{pc, err}
		}

	case isa.ADDI, isa.SUBI, isa.MULI, isa.DIVI, isa.MODI, isa.ANDI, isa.ORI,
		isa.XORI, isa.SHLI, isa.SHRI, isa.SARI:
		var err error
		cost, err = c.alu(immToReg(in.Op), in.Rd, uint64(in.Imm))
		if err != nil {
			return &execError{pc, err}
		}

	case isa.CMP:
		c.cmpA, c.cmpB = int64(c.regs[in.Rd]), int64(c.regs[in.Rs])
		cost = c.cfg.CostCmp

	case isa.CMPI:
		c.cmpA, c.cmpB = int64(c.regs[in.Rd]), in.Imm
		cost = c.cfg.CostCmp

	case isa.SETCC:
		if in.Cond.Eval(c.cmpA, c.cmpB) {
			c.regs[in.Rd] = 1
		} else {
			c.regs[in.Rd] = 0
		}
		cost = c.cfg.CostALU

	case isa.JCC:
		taken := in.Cond.Eval(c.cmpA, c.cmpB)
		cost = c.cfg.CostBranch
		if !c.predictCond(pc, taken) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
			if c.tracer != nil {
				var t uint64
				if taken {
					t = 1
				}
				c.tracer.Emit(trace.KindMispredict, pc, t, 0)
			}
		}
		c.stats.Branches++
		if taken {
			next += uint64(in.Imm)
		}

	case isa.JMP:
		next += uint64(in.Imm)
		cost = c.cfg.CostJmp

	case isa.CALL:
		c.rasPush(next)
		if err := c.push(next); err != nil {
			return &execError{pc, err}
		}
		next += uint64(in.Imm)
		cost = c.cfg.CostCall
		c.stats.Calls++
		if c.tracer != nil {
			c.tracer.Call(pc, next)
		}

	case isa.CLLM:
		ptr, err := c.Mem.ReadUint(uint64(in.Imm), 8)
		if err != nil {
			return &execError{pc, err}
		}
		if ptr == 0 {
			return &execError{pc, fmt.Errorf("call through null function pointer at %#x", uint64(in.Imm))}
		}
		c.stats.Loads++
		cost = c.cfg.CostLoad + c.cfg.CostCallR
		if !c.predictIndirect(pc, ptr) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
			if c.tracer != nil {
				c.tracer.Emit(trace.KindMispredict, pc, ptr, 1)
			}
		}
		c.stats.Branches++
		c.rasPush(next)
		if err := c.push(next); err != nil {
			return &execError{pc, err}
		}
		next = ptr
		c.stats.Calls++
		if c.tracer != nil {
			c.tracer.Call(pc, ptr)
		}

	case isa.CLLR:
		target := c.regs[in.Rs]
		cost = c.cfg.CostCallR
		if !c.predictIndirect(pc, target) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
			if c.tracer != nil {
				c.tracer.Emit(trace.KindMispredict, pc, target, 1)
			}
		}
		c.stats.Branches++
		c.rasPush(next)
		if err := c.push(next); err != nil {
			return &execError{pc, err}
		}
		next = target
		c.stats.Calls++
		if c.tracer != nil {
			c.tracer.Call(pc, target)
		}

	case isa.RET:
		ret, err := c.pop()
		if err != nil {
			return &execError{pc, err}
		}
		cost = c.cfg.CostRet
		if !c.rasPop(ret) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
			if c.tracer != nil {
				c.tracer.Emit(trace.KindMispredict, pc, ret, 2)
			}
		}
		next = ret
		if c.tracer != nil {
			c.tracer.Ret(pc, ret)
		}

	case isa.PUSH:
		if err := c.push(c.regs[in.Rd]); err != nil {
			return &execError{pc, err}
		}
		cost = c.cfg.CostPush

	case isa.POP:
		v, err := c.pop()
		if err != nil {
			return &execError{pc, err}
		}
		c.regs[in.Rd] = v
		cost = c.cfg.CostPop

	case isa.SPAD:
		c.regs[isa.SP] += uint64(in.Imm)
		cost = c.cfg.CostALU

	case isa.XCHG:
		addr := c.regs[in.Rd]
		old, err := c.Mem.ReadUint(addr, 8)
		if err != nil {
			return &execError{pc, err}
		}
		if err := c.Mem.WriteUint(addr, 8, c.regs[in.Rs]); err != nil {
			return &execError{pc, err}
		}
		c.regs[in.Rs] = old
		c.stats.Loads++
		c.stats.Stores++
		cost = c.cfg.CostXchg

	case isa.PAUSE:
		cost = c.cfg.CostPause

	case isa.CLI, isa.STI:
		on := in.Op == isa.STI
		if c.mode == Guest {
			// A paravirtualized guest is deprivileged: the
			// instruction traps and the hypervisor emulates it.
			cost = c.cfg.GuestTrapCost
			c.intrOn = on
		} else {
			cost = c.cfg.CostCliSti
			c.intrOn = on
		}

	case isa.HCALL:
		if c.hypervisor == nil {
			return &execError{pc, fmt.Errorf("HCALL %d with no hypervisor", in.Imm)}
		}
		if err := c.hypervisor.Hypercall(c, uint8(in.Imm)); err != nil {
			return &execError{pc, err}
		}
		cost = c.cfg.CostHcall

	case isa.RDTSC:
		// Like rdtsc_ordered: the cost is charged before the value is
		// read so that back-to-back reads measure the in-between work
		// plus one timer read. cost stays 0 so the epilogue adds
		// nothing more, but the interrupt check still runs.
		c.cycles += uint64(c.cfg.CostRdtsc)
		c.regs[in.Rd] = c.cycles

	case isa.OUTB:
		if c.OutB != nil {
			c.OutB(uint8(in.Imm), byte(c.regs[in.Rs]))
		}
		cost = c.cfg.CostIO

	case isa.INB:
		var v byte
		if c.InB != nil {
			v = c.InB(uint8(in.Imm))
		}
		c.regs[in.Rd] = uint64(v)
		cost = c.cfg.CostIO

	default:
		return &execError{pc, fmt.Errorf("unimplemented opcode %v", in.Op)}
	}

	c.cycles += uint64(cost)
	c.pc = next
	if c.intrPeriod > 0 && c.intrOn && c.cycles >= c.nextIntr {
		// Service an asynchronous interrupt: time passes, state is
		// preserved (the handler saves and restores everything).
		c.cycles += c.intrCost
		c.stats.Interrupts++
		c.nextIntr = c.cycles + c.intrPeriod
		if c.tracer != nil {
			c.tracer.Emit(trace.KindInterrupt, pc, c.intrCost, 0)
		}
	}
	return nil
}

func immToReg(op isa.Op) isa.Op {
	// ADDI..SARI mirror ADD..SAR with a fixed offset.
	return op - isa.ADDI + isa.ADD
}

func (c *CPU) alu(op isa.Op, rd isa.Reg, src uint64) (int, error) {
	a := c.regs[rd]
	cost := c.cfg.CostALU
	switch op {
	case isa.ADD:
		a += src
	case isa.SUB:
		a -= src
	case isa.MUL:
		a *= src
		cost = c.cfg.CostMul
	case isa.DIV:
		if src == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		a = uint64(int64(a) / int64(src))
		cost = c.cfg.CostDiv
	case isa.MOD:
		if src == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		a = uint64(int64(a) % int64(src))
		cost = c.cfg.CostDiv
	case isa.UDIV:
		if src == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		a /= src
		cost = c.cfg.CostDiv
	case isa.UMOD:
		if src == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		a %= src
		cost = c.cfg.CostDiv
	case isa.AND:
		a &= src
	case isa.OR:
		a |= src
	case isa.XOR:
		a ^= src
	case isa.SHL:
		a <<= src & 63
	case isa.SHR:
		a >>= src & 63
	case isa.SAR:
		a = uint64(int64(a) >> (src & 63))
	case isa.NEG:
		a = -a
	case isa.NOT:
		a = ^a
	default:
		return 0, fmt.Errorf("not an ALU op: %v", op)
	}
	c.regs[rd] = a
	return cost, nil
}

func (c *CPU) push(v uint64) error {
	c.regs[isa.SP] -= 8
	return c.Mem.WriteUint(c.regs[isa.SP], 8, v)
}

func (c *CPU) pop() (uint64, error) {
	v, err := c.Mem.ReadUint(c.regs[isa.SP], 8)
	if err != nil {
		return 0, err
	}
	c.regs[isa.SP] += 8
	return v, nil
}

// predictCond consults and updates the conditional predictor; it
// reports whether the prediction was correct.
func (c *CPU) predictCond(pc uint64, taken bool) bool {
	e := &c.btb[pc&uint64(c.cfg.BTBSize-1)]
	predictTaken := e.valid && e.tag == pc && e.counter >= 2
	correct := predictTaken == taken
	if !e.valid || e.tag != pc {
		*e = btbEntry{valid: true, tag: pc, counter: 1} // weakly not-taken
	}
	if taken {
		if e.counter < 3 {
			e.counter++
		}
	} else if e.counter > 0 {
		e.counter--
	}
	return correct
}

// predictIndirect consults and updates the indirect-target predictor;
// it reports whether the prediction was correct.
func (c *CPU) predictIndirect(pc, target uint64) bool {
	e := &c.btb[pc&uint64(c.cfg.BTBSize-1)]
	correct := e.valid && e.tag == pc && e.target == target
	if !e.valid || e.tag != pc {
		// Re-initialize like predictCond: the saturating counter of an
		// aliased entry was trained by an unrelated pc and must not be
		// carried into the new entry.
		*e = btbEntry{valid: true, tag: pc, counter: 1, target: target}
		return correct
	}
	e.target = target
	return correct
}

func (c *CPU) rasPush(ret uint64) {
	if len(c.ras) == 0 {
		return
	}
	c.ras[c.rasN%len(c.ras)] = ret
	c.rasN++
}

func (c *CPU) rasPop(actual uint64) bool {
	if len(c.ras) == 0 || c.rasN == 0 {
		return false
	}
	c.rasN--
	return c.ras[c.rasN%len(c.ras)] == actual
}

// Run executes until HLT, an error, or maxSteps instructions. It
// returns the number of instructions executed.
func (c *CPU) Run(maxSteps uint64) (uint64, error) {
	var steps uint64
	// Hooks are bound before Run and cannot appear mid-run, so the
	// per-instruction nil checks can be hoisted out of the loop.
	if c.Trace == nil && c.tracer == nil && c.inject == nil {
		for steps < maxSteps {
			if c.halted {
				return steps, nil
			}
			// stepFastN retires up to the remaining budget through a
			// superblock (or exactly one instruction off the block path),
			// so steps stays exact: a block never overshoots maxSteps and
			// a faulting instruction is not counted, same as Step.
			n, err := c.stepFastN(maxSteps - steps)
			steps += n
			if err != nil {
				return steps, err
			}
		}
	} else {
		for steps < maxSteps {
			if c.halted {
				return steps, nil
			}
			if err := c.Step(); err != nil {
				return steps, err
			}
			steps++
		}
	}
	if !c.halted {
		return steps, fmt.Errorf("cpu: exceeded %d steps without HLT (pc=%#x)", maxSteps, c.pc)
	}
	return steps, nil
}
