package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// hotLoop assembles the counter loop used by the decode-cache tests:
// r1 counts up to n with a backward conditional branch.
func hotLoop(n int32) []byte {
	var a isa.Asm
	a.Movi(1, 0)
	loop := a.Len()
	a.AluI(isa.ADDI, 1, 1)
	a.CmpI(1, n)
	jccAt := a.Len()
	a.Jcc(isa.LT, int32(loop-(jccAt+6)))
	a.Hlt()
	return a.Bytes()
}

func TestDecodeCacheHitsOnHotLoop(t *testing.T) {
	c := newVM(t, hotLoop(1000))
	if !c.DecodeCacheEnabled() {
		t.Fatal("decode cache not enabled by default")
	}
	run(t, c)
	st := c.Stats()
	if st.DecodeHits+st.DecodeMisses != st.Instructions {
		t.Errorf("hits %d + misses %d != instructions %d",
			st.DecodeHits, st.DecodeMisses, st.Instructions)
	}
	// Four distinct loop instructions plus prologue/HLT decode once;
	// every further execution must be a hit.
	if st.DecodeMisses > 6 {
		t.Errorf("misses = %d, want one per distinct pc (<= 6)", st.DecodeMisses)
	}
	if st.DecodeHits < st.Instructions*9/10 {
		t.Errorf("hits = %d of %d instructions; hot loop not served from cache",
			st.DecodeHits, st.Instructions)
	}
}

func TestDecodeCacheDisabled(t *testing.T) {
	c := newVM(t, hotLoop(100))
	c.SetDecodeCache(false)
	run(t, c)
	st := c.Stats()
	if st.DecodeHits != 0 || st.DecodeMisses != 0 {
		t.Errorf("disabled cache recorded hits %d / misses %d", st.DecodeHits, st.DecodeMisses)
	}
}

// TestDecodeCacheCycleInvariance is the load-bearing invariant: the
// decode cache is a host-side accelerator only, so simulated cycles and
// every architectural statistic must be bit-identical with it on/off.
func TestDecodeCacheCycleInvariance(t *testing.T) {
	program := func() []byte {
		var a isa.Asm
		a.Movi(1, 0)
		a.Movi(4, int64(dataBase))
		loop := a.Len()
		a.AluI(isa.ADDI, 1, 1)
		a.St(4, 1, 8, 0)
		a.Ld(5, 4, 8, 0)
		a.Movi(6, 3)
		a.Xchg(4, 6)
		a.CmpI(1, 300)
		jccAt := a.Len()
		a.Jcc(isa.LT, int32(loop-(jccAt+6)))
		a.Hlt()
		return a.Bytes()
	}
	exec := func(cache bool) (uint64, Stats) {
		c := newVM(t, program())
		c.SetDecodeCache(cache)
		run(t, c)
		st := c.Stats()
		st.DecodeHits, st.DecodeMisses = 0, 0 // the only permitted difference
		return c.Cycles(), st
	}
	onCycles, onStats := exec(true)
	offCycles, offStats := exec(false)
	if onCycles != offCycles {
		t.Errorf("cycles differ: cache on %d, off %d", onCycles, offCycles)
	}
	if onStats != offStats {
		t.Errorf("stats differ:\ncache on:  %+v\ncache off: %+v", onStats, offStats)
	}
}

// TestStaleDecodedInstructionUntilFlush mirrors TestStaleICacheUntilFlush
// one level up: after patching without a flush, the stale *decoded*
// instruction must keep executing from the cache, and the flush must
// drop the decode together with the icache line.
func TestStaleDecodedInstructionUntilFlush(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	c.SetPC(textBase)
	run(t, c)
	if c.Stats().DecodeHits == 0 {
		t.Fatal("second run not served from the decode cache")
	}

	var b isa.Asm
	b.Movi(0, 2)
	if err := c.Mem.WriteForce(textBase, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	hits := c.Stats().DecodeHits
	c.SetPC(textBase)
	run(t, c)
	if c.Reg(0) != 1 {
		t.Errorf("r0 = %d after unflushed patch, want stale 1", c.Reg(0))
	}
	if got := c.Stats().DecodeHits - hits; got == 0 {
		t.Error("post-patch run bypassed the decode cache")
	}

	c.FlushICache(textBase, uint64(b.Len()))
	c.SetPC(textBase)
	run(t, c)
	if c.Reg(0) != 2 {
		t.Errorf("r0 = %d after flush, want 2", c.Reg(0))
	}
}

// TestStraddlingWindowNotCached provokes the case that forbids caching
// near page ends: an instruction whose fetch window straddles a page
// boundary takes bytes from two icache lines with independent
// lifetimes. Flushing only the second page must be visible on the next
// execution even though the first page stays cached, with or without
// the decode cache.
func TestStraddlingWindowNotCached(t *testing.T) {
	build := func(cache bool) (*CPU, uint64) {
		m := mem.New()
		if err := m.Map(textBase, 2*mem.PageSize, mem.RWX); err != nil {
			t.Fatal(err)
		}
		start := textBase + mem.PageSize - 5 // MOVI: 5 bytes page 0, 5 bytes page 1
		var a isa.Asm
		a.Movi(3, 0x1111111111111111)
		a.Hlt()
		if err := m.Write(start, a.Bytes()); err != nil {
			t.Fatal(err)
		}
		c := New(m, DefaultConfig())
		c.SetDecodeCache(cache)
		c.SetPC(start)
		return c, start
	}
	for _, cache := range []bool{true, false} {
		c, start := build(cache)
		if _, err := c.Run(10); err != nil {
			t.Fatal(err)
		}
		if c.Reg(3) != 0x1111111111111111 {
			t.Fatalf("cache=%v: r3 = %#x", cache, c.Reg(3))
		}
		// Patch the five immediate bytes that live in page 1 and flush
		// only page 1: the re-executed MOVI must mix the stale page-0
		// bytes with the fresh page-1 bytes.
		patch := []byte{0x22, 0x22, 0x22, 0x22, 0x22}
		if err := c.Mem.Write(textBase+mem.PageSize, patch); err != nil {
			t.Fatal(err)
		}
		c.FlushICache(textBase+mem.PageSize, uint64(len(patch)))
		c.SetPC(start)
		if _, err := c.Run(10); err != nil {
			t.Fatal(err)
		}
		const want = 0x2222222222111111 // low 3 bytes stale, high 5 fresh
		if c.Reg(3) != want {
			t.Errorf("cache=%v: r3 = %#x, want %#x (page-1 flush ignored)", cache, c.Reg(3), want)
		}
		if cache && c.Stats().DecodeHits != 0 {
			t.Errorf("straddling instruction served from decode cache (%d hits)", c.Stats().DecodeHits)
		}
	}
}

// TestStraddleWithOnlyFirstPageCached executes a straddling instruction
// whose second page has never been fetched: the first page's line (and
// decode cache) exists from earlier execution, the second fills on
// demand.
func TestStraddleWithOnlyFirstPageCached(t *testing.T) {
	m := mem.New()
	if err := m.Map(textBase, 2*mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	// Page 0: a warm-up HLT well inside the page, then a MOVI that
	// straddles into page 1.
	var warm isa.Asm
	warm.Movi(0, 7)
	warm.Hlt()
	if err := m.Write(textBase, warm.Bytes()); err != nil {
		t.Fatal(err)
	}
	start := textBase + mem.PageSize - 5
	var a isa.Asm
	a.Movi(3, 0x1122334455667788)
	a.Hlt()
	if err := m.Write(start, a.Bytes()); err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultConfig())
	c.SetPC(textBase)
	if _, err := c.Run(10); err != nil { // fills and decode-caches page 0 only
		t.Fatal(err)
	}
	if c.Stats().ICacheFills != 1 {
		t.Fatalf("fills = %d, want 1 (page 0 only)", c.Stats().ICacheFills)
	}
	c.SetPC(start)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Reg(3) != 0x1122334455667788 {
		t.Errorf("r3 = %#x", c.Reg(3))
	}
	if c.Stats().ICacheFills != 2 {
		t.Errorf("fills = %d, want 2 (page 1 filled on demand)", c.Stats().ICacheFills)
	}
}

func TestSetDecodeCacheDefault(t *testing.T) {
	orig := DecodeCacheDefault()
	defer SetDecodeCacheDefault(orig)
	SetDecodeCacheDefault(false)
	if c := New(mem.New(), DefaultConfig()); c.DecodeCacheEnabled() {
		t.Error("new CPU ignores disabled default")
	}
	SetDecodeCacheDefault(true)
	if c := New(mem.New(), DefaultConfig()); !c.DecodeCacheEnabled() {
		t.Error("new CPU ignores enabled default")
	}
}
