package cpu

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// FuzzBlockVsStep is the differential oracle for block chaining: any
// byte string, loaded as text and executed through Run's superblock
// dispatcher, must produce exactly the architectural outcome of
// single-stepping the same bytes — same retired count, same error (or
// none), same registers, pc, cycles, halt state, memory and
// architectural stats. The corpus seeds the structured shapes the
// chainer special-cases (hot loops, NOPN padding, straddling
// instructions, calls, traps, privileged ops); the fuzzer mutates from
// there into arbitrary garbage, which must still agree byte for byte.
func FuzzBlockVsStep(f *testing.F) {
	f.Add(hotLoopProgram(20))
	{
		// Call/return across a block boundary, stack traffic, XCHG.
		var a isa.Asm
		a.Movi(1, int64(dataBase))
		a.Movi(2, 7)
		a.Push(2)
		a.Pop(3)
		a.Xchg(1, 2)
		a.Call(2) // skip the HLT below... lands on the Ret
		a.Hlt()
		a.Ret()
		a.Hlt()
		f.Add(a.Bytes())
	}
	{
		// NOPN padding, privileged ops, RDTSC, a BRK trap at the end.
		var a isa.Asm
		a.Nop(6)
		a.Sti()
		a.Rdtsc(4)
		a.Cli()
		a.Pause()
		a.Brk()
		f.Add(a.Bytes())
	}
	{
		// An instruction straddling the first page boundary.
		pad := bytes.Repeat([]byte{byte(isa.NOP)}, int(mem.PageSize)-5)
		var a isa.Asm
		a.Movi(3, 0x1234567890)
		a.Hlt()
		f.Add(append(pad, a.Bytes()...))
	}
	{
		// Memory traffic into the data page plus a fault at the end
		// (store to unmapped memory).
		var a isa.Asm
		a.Movi(1, int64(dataBase))
		a.Movi(2, 0xabcd)
		a.St(1, 2, 8, 0)
		a.Ld(3, 1, 8, 0)
		a.Movi(1, 0x10)
		a.St(1, 2, 8, 0)
		a.Hlt()
		f.Add(a.Bytes())
	}

	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) == 0 {
			return
		}
		if len(code) > 2*int(mem.PageSize) {
			code = code[:2*mem.PageSize]
		}
		build := func() *CPU {
			m := mem.New()
			textLen := mem.PageAlignUp(uint64(len(code)))
			if err := m.Map(textBase, textLen, mem.RW); err != nil {
				t.Fatal(err)
			}
			if err := m.Write(textBase, code); err != nil {
				t.Fatal(err)
			}
			if err := m.Protect(textBase, textLen, mem.RX); err != nil {
				t.Fatal(err)
			}
			if err := m.Map(dataBase, mem.PageSize, mem.RW); err != nil {
				t.Fatal(err)
			}
			if err := m.Map(stackTop-stackSize, stackSize, mem.RW); err != nil {
				t.Fatal(err)
			}
			c := New(m, DefaultConfig())
			c.SetPC(textBase)
			c.SetReg(isa.SP, stackTop)
			// Exercise the interrupt-perturbation epilogue too: block
			// dispatch must service due interrupts at exactly the same
			// instructions as single-stepping.
			c.SetInterruptPerturbation(97, 13)
			c.SetInterruptsEnabled(true)
			return c
		}

		const maxSteps = 2000
		blocks := build()
		blocks.SetSuperblocks(true)
		nA, errA := blocks.Run(maxSteps)
		if errA != nil && strings.Contains(errA.Error(), "exceeded") {
			errA = nil // budget exhausted, not an execution error
		}

		ref := build()
		ref.SetSuperblocks(false) // Step never uses blocks anyway
		var nB uint64
		var errB error
		for nB < maxSteps && !ref.Halted() {
			if err := ref.Step(); err != nil {
				errB = err
				break
			}
			nB++
		}

		if nA != nB {
			t.Fatalf("retired %d via blocks, %d via Step", nA, nB)
		}
		switch {
		case (errA == nil) != (errB == nil):
			t.Fatalf("errors diverge: blocks %v, Step %v", errA, errB)
		case errA != nil && errA.Error() != errB.Error():
			t.Fatalf("error text diverges:\nblocks: %v\nStep:   %v", errA, errB)
		}
		if blocks.PC() != ref.PC() || blocks.Cycles() != ref.Cycles() || blocks.Halted() != ref.Halted() {
			t.Fatalf("state diverges: pc %#x/%#x cycles %d/%d halted %v/%v",
				blocks.PC(), ref.PC(), blocks.Cycles(), ref.Cycles(), blocks.Halted(), ref.Halted())
		}
		for r := 0; r < isa.NumRegs; r++ {
			if blocks.Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
				t.Fatalf("r%d diverges: %#x vs %#x", r, blocks.Reg(isa.Reg(r)), ref.Reg(isa.Reg(r)))
			}
		}
		sa, sb := blocks.Stats(), ref.Stats()
		for _, s := range []*Stats{&sa, &sb} {
			// Host-accelerator counters legitimately differ between the
			// two dispatch strategies.
			s.DecodeHits, s.DecodeMisses = 0, 0
			s.BlockBuilds, s.BlockHits, s.BlockInsts, s.BlockInvalidates = 0, 0, 0, 0
		}
		if sa != sb {
			t.Fatalf("architectural stats diverge:\nblocks: %+v\nStep:   %+v", sa, sb)
		}
		var da, db [mem.PageSize]byte
		if err := blocks.Mem.Read(dataBase, da[:]); err != nil {
			t.Fatal(err)
		}
		if err := ref.Mem.Read(dataBase, db[:]); err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatal("data page contents diverge")
		}
	})
}
