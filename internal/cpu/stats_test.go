package cpu

import (
	"math"
	"reflect"
	"testing"
)

// TestStatsAddCoversAllFields fails whenever a field is added to Stats
// but forgotten in Add — the silent-drop bug class where a new per-CPU
// counter never reaches machine.TotalStats on SMP machines. Every
// field is seeded with a distinct value pair and the sum is checked
// field by field via reflection, so the test needs no updating when
// Stats grows.
func TestStatsAddCoversAllFields(t *testing.T) {
	var a, b Stats
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	for i := 0; i < va.NumField(); i++ {
		if va.Field(i).Kind() != reflect.Uint64 {
			t.Fatalf("Stats.%s is %s; extend this test for non-uint64 fields",
				va.Type().Field(i).Name, va.Field(i).Kind())
		}
		va.Field(i).SetUint(uint64(i + 1))
		vb.Field(i).SetUint(uint64(1000 * (i + 1)))
	}
	sum := reflect.ValueOf(a.Add(b))
	for i := 0; i < sum.NumField(); i++ {
		want := uint64(i+1) + uint64(1000*(i+1))
		if got := sum.Field(i).Uint(); got != want {
			t.Errorf("Stats.Add drops field %s: got %d, want %d",
				sum.Type().Field(i).Name, got, want)
		}
	}
}

// TestRatiosZeroSampleGuard: ratio accessors feed JSON-exported gauges
// and must return 0, never NaN, before any instruction has run.
func TestRatiosZeroSampleGuard(t *testing.T) {
	var s Stats
	for name, v := range map[string]float64{
		"DecodeHitRatio": s.DecodeHitRatio(),
		"BlockHitRatio":  s.BlockHitRatio(),
	} {
		if math.IsNaN(v) || v != 0 {
			t.Errorf("%s on zero Stats = %v, want 0", name, v)
		}
	}
}

func TestBlockHitRatio(t *testing.T) {
	s := Stats{Instructions: 200, BlockInsts: 150}
	if got := s.BlockHitRatio(); got != 0.75 {
		t.Errorf("BlockHitRatio = %v, want 0.75", got)
	}
}
