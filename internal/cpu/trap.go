package cpu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// TrapFault is returned (wrapped) by Step when the fetched instruction
// byte is BRK — the breakpoint a text-poke protocol plants over the
// first byte of an instruction it is rewriting. The trap is fully
// resumable: no architectural state changed and the PC still points at
// the BRK byte, so once the poke completes (and the icache is flushed)
// re-stepping executes the new instruction.
type TrapFault struct {
	PC uint64 // address of the BRK byte
}

func (t *TrapFault) Error() string {
	return fmt.Sprintf("breakpoint trap at %#x", t.PC)
}

// AsTrap extracts a TrapFault from err's chain, or returns nil.
func AsTrap(err error) *TrapFault {
	var t *TrapFault
	if errors.As(err, &t) {
		return t
	}
	return nil
}

// PauseSpin charges one PAUSE worth of cycles without executing
// anything — how a CPU parked in a breakpoint trap models its
// spin-wait for the poke to finish (the kernel's text_poke_bp handler
// does literally cpu_relax() in a loop).
func (c *CPU) PauseSpin() {
	c.cycles += uint64(c.cfg.CostPause)
}

// RASLive returns the live entries of the return-address stack,
// youngest first. The RAS is a bounded ring, so entries older than its
// depth have been overwritten and are not reported; callers must treat
// the result as a lower bound on the real return addresses and
// cross-check against the in-memory stack (StackReturnAddresses).
func (c *CPU) RASLive() []uint64 {
	if len(c.ras) == 0 || c.rasN == 0 {
		return nil
	}
	n := c.rasN
	if n > len(c.ras) {
		n = len(c.ras)
	}
	out := make([]uint64, 0, n)
	for k := 1; k <= n; k++ {
		out = append(out, c.ras[(c.rasN-k)%len(c.ras)])
	}
	return out
}

// StackReturnAddresses walks this CPU's stack memory from SP up to
// top (exclusive) and returns every word that plausibly is a live
// return address — the activeness oracle live patching consults before
// rebinding a function whose old body may still be on some stack
// (cf. kernel livepatch's stack checking).
//
// m64 frames are not chained through a frame pointer, so the walk is a
// conservative scan: a word w qualifies if it points into executable
// memory and is preceded by a call-site encoding (a 5-byte CALL/CLLR
// or a 9-byte CLLM ends exactly at w), or if it matches a live
// return-address-stack entry. Scanning stops at the first word equal
// to halt, the synthesized root frame every machine-started call
// pushes; spilled integers below it can therefore alias a code address
// and be over-reported, which only ever defers a patch, never
// misapplies one. At most max words are scanned (0 means no bound);
// when the bound cuts the walk short of the root frame the second
// result is false, signalling that the returned list is incomplete and
// the caller must fall back to "everything might be active" — a
// silently short list would let a patch land under a live frame.
func (c *CPU) StackReturnAddresses(top, halt uint64, max int) ([]uint64, bool) {
	sites, complete := c.StackReturnSites(top, halt, max)
	if len(sites) == 0 {
		return nil, complete
	}
	out := make([]uint64, len(sites))
	for i, s := range sites {
		out[i] = s.Value
	}
	return out, complete
}

// ReturnSite is one plausible live return address found by the stack
// scan: the word's value plus the stack address holding it — which an
// on-stack replacement needs to rewrite the frame in place.
type ReturnSite struct {
	Addr  uint64 // stack address of the word
	Value uint64 // the return address
}

// StackReturnSites is StackReturnAddresses with stack locations: the
// same conservative scan, reporting where each qualifying word lives.
// The bool result is false when the max bound cut the scan short of
// the root frame (the list is then incomplete).
func (c *CPU) StackReturnSites(top, halt uint64, max int) ([]ReturnSite, bool) {
	sp := c.regs[isa.SP]
	if sp >= top || sp&7 != 0 {
		return nil, true
	}
	ras := c.RASLive()
	inRAS := func(w uint64) bool {
		for _, r := range ras {
			if r == w {
				return true
			}
		}
		return false
	}
	var out []ReturnSite
	scanned := 0
	for addr := sp; addr < top; addr += 8 {
		if max > 0 && scanned >= max {
			return out, false // bound hit before the root frame
		}
		scanned++
		w, err := c.Mem.ReadUint(addr, 8)
		if err != nil {
			break
		}
		if w == halt {
			break // root frame: nothing above it is ours
		}
		if prot, mapped := c.Mem.ProtOf(w); !mapped || prot&mem.Exec == 0 {
			continue
		}
		if c.precededByCall(w) || inRAS(w) {
			out = append(out, ReturnSite{Addr: addr, Value: w})
		}
	}
	return out, true
}

// precededByCall reports whether the bytes ending at addr decode as a
// call instruction — the shape every genuine return address has.
func (c *CPU) precededByCall(addr uint64) bool {
	var buf [isa.MemCallSiteLen]byte
	if addr >= isa.CallSiteLen {
		if err := c.Mem.Fetch(addr-isa.CallSiteLen, buf[:isa.CallSiteLen]); err == nil {
			if in, err := isa.Decode(buf[:isa.CallSiteLen]); err == nil &&
				(in.Op == isa.CALL || in.Op == isa.CLLR) && in.Len == isa.CallSiteLen {
				return true
			}
		}
	}
	if addr >= isa.MemCallSiteLen {
		if err := c.Mem.Fetch(addr-isa.MemCallSiteLen, buf[:]); err == nil {
			if in, err := isa.Decode(buf[:]); err == nil && in.Op == isa.CLLM {
				return true
			}
		}
	}
	return false
}
