// The predecoded-instruction cache.
//
// Before this cache existed, Step re-fetched a 10-byte window from the
// icache line snapshot and re-ran isa.Decode on every single
// instruction, which made decoding the hottest host-side path of every
// experiment (cf. Wong et al., "Faster Variational Execution with
// Transparent Bytecode Transformation": cache the decoded form,
// invalidate when code changes). Here "when code changes" is exactly
// the icache-flush discipline the paper's patching runtime already
// follows, so the decode cache simply lives inside the icache line:
//
//   - Entries are derived exclusively from the line's byte snapshot
//     and die with the line in FlushICache. Patching without a flush
//     therefore keeps executing the stale *decoded* instruction, just
//     as the raw interpreter keeps executing the stale bytes.
//   - An instruction is cached only when its whole fetch window lies
//     within one page. A window that straddles a page boundary draws
//     bytes from two lines with independent lifetimes (the second page
//     can be flushed while the first stays cached), so those always
//     take the fetch-and-decode slow path.
//   - Each CPU owns its icache, so each SMP hardware thread keeps a
//     private decode cache, mirroring real per-core frontends.
//
// The cache is a pure host-side accelerator: simulated cycle counts,
// architectural state, and all non-Decode* statistics are bit-identical
// with the cache enabled or disabled. internal/difftest asserts this
// invariance on the E1 and E4 workloads.

package cpu

import (
	"os"

	"repro/internal/isa"
	"repro/internal/mem"
)

// decodeCacheDefault is the construction-time default for new CPUs,
// overridable globally with SetDecodeCacheDefault (mvbench's
// -decode-cache flag) or the environment knob MV_DECODE_CACHE=off
// (also "0" / "false").
var decodeCacheDefault = func() bool {
	switch os.Getenv("MV_DECODE_CACHE") {
	case "0", "off", "false":
		return false
	}
	return true
}()

// SetDecodeCacheDefault sets whether newly constructed CPUs use the
// predecoded-instruction cache. Existing CPUs are unaffected.
func SetDecodeCacheDefault(on bool) { decodeCacheDefault = on }

// DecodeCacheDefault reports the construction-time default.
func DecodeCacheDefault() bool { return decodeCacheDefault }

// SetDecodeCache enables or disables this CPU's predecoded-instruction
// cache. Toggling is safe at any point: entries are always consistent
// with their line's byte snapshot, so re-enabling reuses them.
func (c *CPU) SetDecodeCache(on bool) { c.decodeCache = on }

// DecodeCacheEnabled reports whether this CPU serves Step from the
// decode cache.
func (c *CPU) DecodeCacheEnabled() bool { return c.decodeCache }

// cachedInst returns the predecoded instruction at pc, if present. It
// memoizes the last icache line to keep the steady-state hit path free
// of map lookups; FlushICache clears the memo along with the lines.
func (c *CPU) cachedInst(pc uint64) (isa.Inst, bool) {
	pn := pc >> mem.PageShift
	line := c.lastLine
	if line == nil || c.lastPN != pn {
		var ok bool
		line, ok = c.icache[pn]
		if !ok {
			return isa.Inst{}, false
		}
		c.lastPN, c.lastLine = pn, line
	}
	if line.dec == nil {
		return isa.Inst{}, false
	}
	in := line.dec[pc&(mem.PageSize-1)]
	return in, in.Len != 0
}

// cacheInst records the decode of the instruction at pc, provided its
// whole fetch window lies within pc's page. Instructions in the last
// maxInstLen-1 bytes of a page are never cached: their window bytes
// came (or would come) from the next page's line, whose lifetime is
// independent — caching them under the first page could outlive a
// flush of the second and break the cycle-invariance guarantee.
func (c *CPU) cacheInst(pc uint64, in isa.Inst) {
	off := pc & (mem.PageSize - 1)
	if off+maxInstLen > mem.PageSize {
		return
	}
	line, ok := c.icache[pc>>mem.PageShift]
	if !ok {
		return
	}
	if line.dec == nil {
		line.dec = make([]isa.Inst, mem.PageSize)
	}
	line.dec[off] = in
}
