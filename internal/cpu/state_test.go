package cpu

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// TestCPUFieldsClassifiedForSnapshot is the snapshot-completeness
// gate: every field of CPU and icLine must be explicitly classified as
// serialized (captured by ExportState) or host wiring (reconstructed
// by the harness, not state). Adding a field without deciding its
// disposition fails this test — the bug class where new machine state
// silently never reaches a snapshot, so a restored run diverges.
func TestCPUFieldsClassifiedForSnapshot(t *testing.T) {
	serialized := map[string]bool{
		"regs": true, "pc": true, "cycles": true, "halted": true,
		"cmpA": true, "cmpB": true,
		"btb": true, "ras": true, "rasN": true,
		"decodeCache": true, "superblocks": true,
		"mode": true, "intrOn": true,
		"intrPeriod": true, "intrCost": true, "nextIntr": true,
		"icache": true, "stats": true,
	}
	hostWiring := map[string]bool{
		"Mem":        true,                // the address space is serialized by mem.ExportPages
		"cfg":        true,                // cost model: the constructing harness's contract
		"hypervisor": true,                // host callback
		"tracer":     true, "Trace": true, // observability hooks
		"inject": true, "id": true, // fault-injection wiring
		"OutB": true, "InB": true, // device callbacks
		"lastPN": true, "lastLine": true, // decode-cache memo, rebuilt lazily
		"cycleStop": true, // transient RunUntil pause mark, zero at capture
	}
	checkFields(t, reflect.TypeOf(CPU{}), serialized, hostWiring)

	lineSerialized := map[string]bool{
		"bytes": true, "version": true,
		// dec, sb and nsb are serialized as offset lists (ICLineState
		// Decoded/SBHeads/SBRject) and rebuilt deterministically from
		// bytes at import; nsb is re-derived by the buildBlock calls.
		"dec": true, "sb": true, "nsb": true,
	}
	checkFields(t, reflect.TypeOf(icLine{}), lineSerialized, nil)
}

func checkFields(t *testing.T, typ reflect.Type, serialized, hostWiring map[string]bool) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if serialized[name] || hostWiring[name] {
			continue
		}
		t.Errorf("%s.%s is not classified for snapshots: extend ExportState/ImportState "+
			"(and the wire format in internal/snapshot) or record it as host wiring here",
			typ.Name(), name)
	}
}

// stateVM builds a CPU mid-flight: warmed predictors, resident icache
// lines with decode-cache and superblock entries, live RAS, interrupt
// perturbation — everything ExportState claims to capture.
func stateVM(t *testing.T) *CPU {
	t.Helper()
	var a isa.Asm
	// A call in a loop keeps the RAS and BTB busy; the loop body is
	// long enough to head a superblock.
	a.Movi(0, 0)
	a.Movi(1, 0)
	loop := a.Len()
	callAt := a.Len()
	a.Call(0) // patched below to target fn
	a.AluI(isa.ADDI, 1, 1)
	a.CmpI(1, 300)
	jccAt := a.Len()
	a.Jcc(isa.LT, int32(loop-(jccAt+6)))
	a.Hlt()
	fn := a.Len()
	a.AluI(isa.ADDI, 0, 3)
	a.Ret()
	code := a.Bytes()
	// Fix the call displacement now that fn's offset is known.
	var fix isa.Asm
	fix.Call(int32(fn - (callAt + 5)))
	copy(code[callAt:], fix.Bytes())

	c := newVM(t, code)
	c.SetInterruptsEnabled(true)
	c.SetInterruptPerturbation(997, 30)
	if _, err := c.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	if c.Stats().Calls == 0 || len(c.icache) == 0 {
		t.Fatal("warmup did not exercise the caches")
	}
	return c
}

// TestExportImportRoundTrip: importing an exported state onto a fresh
// CPU (same config) reproduces it exactly, including the rebuilt
// derived caches and the overwritten statistics.
func TestExportImportRoundTrip(t *testing.T) {
	for _, sb := range []bool{false, true} {
		c := stateVM(t)
		c.SetSuperblocks(sb)
		s := c.ExportState()

		fresh := New(c.Mem, c.Config())
		if err := fresh.ImportState(s); err != nil {
			t.Fatalf("superblocks=%v: %v", sb, err)
		}
		again := fresh.ExportState()
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("superblocks=%v: re-export diverged\nfirst:  %+v\nsecond: %+v", sb, s, again)
		}
		// The rebuilt superblock caches must carry the same line
		// structure, not just the same export view.
		for pn, line := range c.icache {
			fl, ok := fresh.icache[pn]
			if !ok {
				t.Fatalf("line %#x missing after import", pn)
			}
			if fl.nsb != line.nsb {
				t.Fatalf("line %#x: rebuilt nsb %d, original %d", pn, fl.nsb, line.nsb)
			}
		}
	}
}

func TestImportRejectsConfigMismatch(t *testing.T) {
	c := stateVM(t)
	s := c.ExportState()
	cfg := c.Config()
	cfg.BTBSize *= 2
	other := New(c.Mem, cfg)
	if err := other.ImportState(s); err == nil {
		t.Fatal("imported state across a predictor-geometry change")
	}
}

// TestRunUntilPauseInvariance pins the checkpoint property: a run
// paused at arbitrary cycle thresholds and continued retires exactly
// the cycles, registers and statistics of one uninterrupted run —
// with superblocks both off and on (where the pause must land between
// block dispatches, never inside one).
func TestRunUntilPauseInvariance(t *testing.T) {
	for _, sb := range []bool{false, true} {
		var a isa.Asm
		a.Movi(0, 0)
		a.Movi(1, 0)
		loop := a.Len()
		a.Alu(isa.ADD, 0, 1)
		a.AluI(isa.ADDI, 1, 1)
		a.CmpI(1, 500)
		jccAt := a.Len()
		a.Jcc(isa.LT, int32(loop-(jccAt+6)))
		a.Hlt()
		code := a.Bytes()

		straight := newVM(t, code)
		straight.SetSuperblocks(sb)
		run(t, straight)

		paused := newVM(t, code)
		paused.SetSuperblocks(sb)
		// Pause every 137 cycles until past the straight run's total,
		// then run to the halt.
		for target := uint64(137); target < straight.Cycles()+200; target += 137 {
			if _, err := paused.RunUntil(target, 1_000_000); err != nil {
				t.Fatalf("superblocks=%v: %v", sb, err)
			}
			if paused.Halted() {
				break
			}
			if got := paused.Cycles(); got < target && !paused.Halted() {
				t.Fatalf("superblocks=%v: RunUntil(%d) stopped at cycle %d", sb, target, got)
			}
		}
		if !paused.Halted() {
			if _, err := paused.Run(1_000_000); err != nil {
				t.Fatal(err)
			}
		}
		if straight.Cycles() != paused.Cycles() {
			t.Fatalf("superblocks=%v: cycles %d (straight) vs %d (paused)",
				sb, straight.Cycles(), paused.Cycles())
		}
		if straight.Reg(0) != paused.Reg(0) {
			t.Fatalf("superblocks=%v: results diverged", sb)
		}
		if straight.Stats() != paused.Stats() {
			t.Fatalf("superblocks=%v: stats diverged\nstraight: %+v\npaused:   %+v",
				sb, straight.Stats(), paused.Stats())
		}
	}
}
