package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// TestFlushCountsAndTraces checks the CPU-side memory counter and the
// FlushICache trace event.
func TestFlushCountsAndTraces(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	col := trace.NewCollector(trace.Options{})
	c.SetTracer(col.NewStream("cpu0", c.Cycles))

	c.FlushICache(textBase, 16)
	c.FlushICache(textBase, 0) // zero-length: no flush, no event
	if got := c.Mem.Stats.Flushes; got != 1 {
		t.Errorf("mem flush counter = %d, want 1", got)
	}
	evs := col.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if ev := evs[0]; ev.Kind != trace.KindFlushICache || ev.Addr != textBase || ev.A != 16 {
		t.Errorf("bad flush event: %+v", ev)
	}
}

// TestTracerObservesMispredicts runs a short loop whose final
// not-taken branch mispredicts and checks the profiler feed and the
// mispredict event agree with the CPU's own statistics.
func TestTracerObservesMispredicts(t *testing.T) {
	var a isa.Asm
	a.Movi(1, 0)
	loop := a.Len()
	a.AluI(isa.ADDI, 1, 1)
	a.CmpI(1, 4)
	jccAt := a.Len()
	a.Jcc(isa.LT, int32(loop-(jccAt+6)))
	a.Hlt()
	c := newVM(t, a.Bytes())
	col := trace.NewCollector(trace.Options{Profile: true})
	col.SetSymbols(trace.NewSymTable([]trace.Sym{{Name: "loopfn", Addr: textBase, Size: 64}}))
	c.SetTracer(col.NewStream("cpu0", c.Cycles))
	run(t, c)

	var mispredicts int
	for _, ev := range col.Events() {
		if ev.Kind == trace.KindMispredict {
			mispredicts++
		}
	}
	if want := int(c.Stats().Mispredicts); mispredicts != want {
		t.Errorf("traced %d mispredicts, CPU counted %d", mispredicts, want)
	}
	if mispredicts == 0 {
		t.Error("expected at least one mispredict in a short loop")
	}
	prof := col.Profile()
	if prof.Flat["loopfn"] == 0 {
		t.Errorf("profiler attributed no cycles to loopfn: %v", prof.Flat)
	}
}
