package cpu

import (
	"testing"

	"repro/internal/isa"
)

// TestBrkTrapResumable steps a CPU into a BRK byte, rewrites it (as
// the poke protocol would), flushes, and resumes — the instruction
// must execute as if the trap never happened, with nothing retired in
// between.
func TestBrkTrapResumable(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 1)
	brkOff := a.Len()
	a.Brk() // will be rewritten to NOP
	a.Movi(1, 2)
	a.Hlt()
	c := newVM(t, a.Bytes())

	if err := c.Step(); err != nil { // movi
		t.Fatal(err)
	}
	pcAtBrk := c.PC()
	if pcAtBrk != textBase+uint64(brkOff) {
		t.Fatalf("pc = %#x, want %#x", pcAtBrk, textBase+uint64(brkOff))
	}
	instBefore := c.Stats().Instructions
	for i := 0; i < 3; i++ {
		err := c.Step()
		tf := AsTrap(err)
		if tf == nil {
			t.Fatalf("step %d: err = %v, want TrapFault", i, err)
		}
		if tf.PC != pcAtBrk {
			t.Fatalf("trap PC = %#x, want %#x", tf.PC, pcAtBrk)
		}
		if c.PC() != pcAtBrk {
			t.Fatalf("PC moved to %#x during trap", c.PC())
		}
		c.PauseSpin()
	}
	if got := c.Stats().Traps; got != 3 {
		t.Errorf("Traps = %d, want 3", got)
	}
	if got := c.Stats().Instructions; got != instBefore {
		t.Errorf("Instructions advanced %d->%d across traps", instBefore, got)
	}

	// Poke completes: BRK becomes NOP, icache flushed.
	if err := c.Mem.WriteForce(pcAtBrk, []byte{byte(isa.NOP)}); err != nil {
		t.Fatal(err)
	}
	c.FlushICache(pcAtBrk, 1)
	run(t, c)
	if c.Reg(0) != 1 || c.Reg(1) != 2 {
		t.Errorf("r0,r1 = %d,%d; want 1,2", c.Reg(0), c.Reg(1))
	}
}

// TestStackReturnAddresses builds a three-deep call chain, halts the
// innermost frame mid-flight... actually stops it at a known PC, and
// asserts the walker reports exactly the two live return addresses
// (cross-checked against the RAS) and stops at the halt-stub root.
func TestStackReturnAddresses(t *testing.T) {
	// Layout:
	//   outer: call mid; hlt
	//   mid:   call inner; ret
	//   inner: nop; nop; hlt  (we stop at the first nop)
	var a isa.Asm
	a.Call(0) // placeholder -> mid
	retOuter := uint64(a.Len())
	a.Hlt()
	mid := a.Len()
	a.Call(0) // placeholder -> inner
	retMid := uint64(a.Len())
	a.Ret()
	inner := a.Len()
	a.Nop(1)
	a.Nop(1)
	a.Hlt()
	code := a.Bytes()
	// Fix up the two call displacements.
	fix := func(site, target int) {
		rel, err := isa.CallRel(textBase+uint64(site), textBase+uint64(target))
		if err != nil {
			t.Fatal(err)
		}
		enc := isa.EncodeCall(rel)
		copy(code[site:], enc[:])
	}
	fix(0, mid)
	fix(mid, inner)

	c := newVM(t, code)
	// Simulate machine.StartCall's root frame: push a halt-stub address.
	halt := textBase + uint64(len(code)) - 1 // the final HLT byte (any sentinel works)
	c.SetReg(isa.SP, stackTop-8)
	if err := c.Mem.WriteUint(stackTop-8, 8, halt); err != nil {
		t.Fatal(err)
	}
	// Step until the innermost nop.
	for c.PC() != textBase+uint64(inner) {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, complete := c.StackReturnAddresses(stackTop, halt, 0)
	if !complete {
		t.Fatal("unbounded scan reported as incomplete")
	}
	want := []uint64{textBase + retMid, textBase + retOuter}
	if len(got) != len(want) {
		t.Fatalf("StackReturnAddresses = %#x, want %#x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StackReturnAddresses = %#x, want %#x", got, want)
		}
	}
	// The RAS agrees (youngest first).
	ras := c.RASLive()
	if len(ras) != 2 || ras[0] != textBase+retMid || ras[1] != textBase+retOuter {
		t.Fatalf("RASLive = %#x, want %#x", ras, want)
	}
}

// TestStackWalkIgnoresNonCode checks that spilled integers that do not
// point at executable memory, or are not preceded by a call encoding,
// are not reported as return addresses.
func TestStackWalkIgnoresNonCode(t *testing.T) {
	var a isa.Asm
	a.Nop(1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	halt := textBase + 1
	sp := stackTop - 8*4
	c.SetReg(isa.SP, sp)
	// Stack (low to high): data pointer, mid-text address with no call
	// before it, then the halt root, then garbage beyond the root.
	vals := []uint64{dataBase + 16, textBase, halt, textBase}
	for i, v := range vals {
		if err := c.Mem.WriteUint(sp+uint64(8*i), 8, v); err != nil {
			t.Fatal(err)
		}
	}
	if got, complete := c.StackReturnAddresses(stackTop, halt, 0); len(got) != 0 || !complete {
		t.Fatalf("StackReturnAddresses = %#x (complete=%v), want none", got, complete)
	}
}

// TestStackScanTruncationSignalled builds a call chain deep enough to
// exceed a small scan bound and asserts the walker reports the result
// as incomplete instead of silently returning a short list — the
// signal the activeness check needs to fall back to "everything is
// live". The regression this pins: a bounded scan that hit its limit
// used to look identical to a complete one.
func TestStackScanTruncationSignalled(t *testing.T) {
	// recurse: push a word, call self while r0 > 0, then unwind.
	var a isa.Asm
	a.Movi(0, 40) // recursion depth
	callerSite := a.Len()
	a.Call(0) // placeholder -> fn
	a.Hlt()
	fn := a.Len()
	a.AluI(isa.SUBI, 0, 1)
	a.Push(1) // deepen the frame so each level costs stack words
	a.CmpI(0, 0)
	a.Jcc(isa.EQ, isa.CallSiteLen) // skip the recursive call at zero
	site := a.Len()
	a.Call(0) // placeholder -> fn (recursive)
	a.Pop(1)
	a.Ret()
	code := a.Bytes()
	fix := func(siteOff, target int) {
		rel, err := isa.CallRel(textBase+uint64(siteOff), textBase+uint64(target))
		if err != nil {
			t.Fatal(err)
		}
		enc := isa.EncodeCall(rel)
		copy(code[siteOff:], enc[:])
	}
	fix(callerSite, fn)
	fix(site, fn)

	c := newVM(t, code)
	halt := textBase + uint64(len(code)) - 1
	c.SetReg(isa.SP, stackTop-8)
	if err := c.Mem.WriteUint(stackTop-8, 8, halt); err != nil {
		t.Fatal(err)
	}
	// Run to the deepest point: r0 == 0 right after the last Subi.
	if err := c.Step(); err != nil { // movi r0, depth
		t.Fatal(err)
	}
	for c.Reg(0) != 0 {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}

	full, complete := c.StackReturnAddresses(stackTop, halt, 0)
	if !complete {
		t.Fatal("unbounded scan reported as incomplete")
	}
	if len(full) < 10 {
		t.Fatalf("expected a deep chain, got %d return addresses", len(full))
	}
	// A bound smaller than the live stack must be reported as such.
	short, complete := c.StackReturnAddresses(stackTop, halt, 8)
	if complete {
		t.Fatalf("bounded scan of 8 words over %d live addresses claims completeness", len(full))
	}
	if len(short) >= len(full) {
		t.Fatalf("bounded scan returned %d addresses, full scan %d", len(short), len(full))
	}
	// Sites carry the stack locations the full walk saw.
	sites, ok := c.StackReturnSites(stackTop, halt, 0)
	if !ok || len(sites) != len(full) {
		t.Fatalf("StackReturnSites = %d entries (complete=%v), want %d", len(sites), ok, len(full))
	}
	for i, s := range sites {
		if s.Value != full[i] {
			t.Fatalf("site %d value %#x, want %#x", i, s.Value, full[i])
		}
		if got, err := c.Mem.ReadUint(s.Addr, 8); err != nil || got != s.Value {
			t.Fatalf("site %d addr %#x holds %#x (err=%v), want %#x", i, s.Addr, got, err, s.Value)
		}
	}
}
