package cpu

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

const (
	textBase  = uint64(0x400000)
	dataBase  = uint64(0x600000)
	stackTop  = uint64(0x7ff000)
	stackSize = uint64(4 * mem.PageSize)
)

// newVM loads code at textBase (read-exec), maps a data page and a
// stack, and returns a ready CPU.
func newVM(t *testing.T, code []byte) *CPU {
	t.Helper()
	m := mem.New()
	textLen := mem.PageAlignUp(uint64(len(code)))
	if textLen == 0 {
		textLen = mem.PageSize
	}
	if err := m.Map(textBase, textLen, mem.RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(textBase, code); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(textBase, textLen, mem.RX); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(dataBase, mem.PageSize, mem.RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(stackTop-stackSize, stackSize, mem.RW); err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultConfig())
	c.SetPC(textBase)
	c.SetReg(isa.SP, stackTop)
	return c
}

func run(t *testing.T, c *CPU) {
	t.Helper()
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted() {
		t.Fatal("CPU did not halt")
	}
}

func TestArithmetic(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 10)
	a.Movi(1, 3)
	a.Alu(isa.ADD, 0, 1)   // 13
	a.AluI(isa.MULI, 0, 4) // 52
	a.AluI(isa.SUBI, 0, 2) // 50
	a.Movi(2, 7)
	a.Alu(isa.DIV, 0, 2)   // 7
	a.AluI(isa.MODI, 0, 4) // 3
	a.Alu(isa.NEG, 0, 0)   // -3
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if got := int64(c.Reg(0)); got != -3 {
		t.Errorf("r0 = %d, want -3", got)
	}
}

func TestShiftsAndBitwise(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 0b1010)
	a.AluI(isa.SHLI, 0, 4)    // 0b10100000
	a.AluI(isa.ORI, 0, 1)     // 0b10100001
	a.AluI(isa.ANDI, 0, 0xF1) // 0b10100001 & 0xF1 = 0xA1 & 0xF1 = 0xA1
	a.AluI(isa.XORI, 0, 0xFF)
	a.Movi(1, -8)
	a.AluI(isa.SARI, 1, 1) // -4
	a.Movi(2, -8)
	a.AluI(isa.SHRI, 2, 60)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if got := c.Reg(0); got != (0xA1&0xF1)^0xFF {
		t.Errorf("r0 = %#x, want %#x", got, (0xA1&0xF1)^0xFF)
	}
	if got := int64(c.Reg(1)); got != -4 {
		t.Errorf("r1 = %d, want -4", got)
	}
	if got := c.Reg(2); got != 0xF {
		t.Errorf("r2 = %#x, want 0xf", got)
	}
}

func TestLoadStoreSizes(t *testing.T) {
	var a isa.Asm
	a.Movi(1, int64(dataBase))
	a.Movi(0, -2) // 0xFFFF...FE
	a.St(1, 0, 4, 0)
	a.Ld(2, 1, 4, 0)  // zero-extended 32-bit
	a.Lds(3, 1, 4, 0) // sign-extended 32-bit
	a.Lds(4, 1, 1, 0) // sign-extended byte (0xFE -> -2)
	a.Ld(5, 1, 2, 0)  // zero-extended 16-bit
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if got := c.Reg(2); got != 0xFFFFFFFE {
		t.Errorf("zero-ext 32 = %#x", got)
	}
	if got := int64(c.Reg(3)); got != -2 {
		t.Errorf("sign-ext 32 = %d", got)
	}
	if got := int64(c.Reg(4)); got != -2 {
		t.Errorf("sign-ext 8 = %d", got)
	}
	if got := c.Reg(5); got != 0xFFFE {
		t.Errorf("zero-ext 16 = %#x", got)
	}
}

func TestCallRetAndStack(t *testing.T) {
	var a isa.Asm
	// main: push sentinel, call f, hlt. f: r0 = 42, ret.
	a.Movi(0, 0)
	callOff := a.Len()
	a.Call(0) // placeholder
	a.Hlt()
	fOff := a.Len()
	a.Movi(0, 42)
	a.Ret()
	// Fix the call displacement.
	rel, err := isa.CallRel(textBase+uint64(callOff), textBase+uint64(fOff))
	if err != nil {
		t.Fatal(err)
	}
	patched := isa.EncodeCall(rel)
	copy(a.Bytes()[callOff:], patched[:])

	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(0) != 42 {
		t.Errorf("r0 = %d, want 42", c.Reg(0))
	}
	if c.Reg(isa.SP) != stackTop {
		t.Errorf("sp = %#x, want %#x (balanced)", c.Reg(isa.SP), stackTop)
	}
}

func TestPushPop(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 11)
	a.Movi(1, 22)
	a.Push(0)
	a.Push(1)
	a.Pop(2)
	a.Pop(3)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(2) != 22 || c.Reg(3) != 11 {
		t.Errorf("r2, r3 = %d, %d; want 22, 11", c.Reg(2), c.Reg(3))
	}
}

func TestConditionalLoop(t *testing.T) {
	// r0 = sum 1..10 via a backward loop.
	var a isa.Asm
	a.Movi(0, 0)
	a.Movi(1, 1)
	loop := a.Len()
	a.Alu(isa.ADD, 0, 1)
	a.AluI(isa.ADDI, 1, 1)
	a.CmpI(1, 10)
	// jle loop
	jccAt := a.Len()
	a.Jcc(isa.LE, int32(loop-(jccAt+6)))
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(0) != 55 {
		t.Errorf("sum = %d, want 55", c.Reg(0))
	}
}

func TestBranchPredictorWarmsUp(t *testing.T) {
	// A long loop: the backward branch mispredicts at most a couple of
	// times, then stays predicted.
	var a isa.Asm
	a.Movi(1, 0)
	loop := a.Len()
	a.AluI(isa.ADDI, 1, 1)
	a.CmpI(1, 1000)
	jccAt := a.Len()
	a.Jcc(isa.LT, int32(loop-(jccAt+6)))
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	st := c.Stats()
	if st.Branches != 1000 {
		t.Fatalf("branches = %d, want 1000", st.Branches)
	}
	if st.Mispredicts > 3 {
		t.Errorf("mispredicts = %d, want <= 3 after warmup", st.Mispredicts)
	}
}

func TestFlushPredictorForcesMispredicts(t *testing.T) {
	cfg := DefaultConfig()
	m := mem.New()
	var a isa.Asm
	a.Movi(1, 0)
	a.CmpI(1, 1)
	a.Jcc(isa.LT, 0) // taken branch to the next insn
	a.Hlt()
	code := a.Bytes()
	if err := m.Map(textBase, mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(textBase, code); err != nil {
		t.Fatal(err)
	}
	c := New(m, cfg)

	runOnce := func() {
		c.SetPC(textBase)
		if _, err := c.Run(100); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // cold: mispredict (predicted not-taken, was taken)
	first := c.Stats().Mispredicts
	if first != 1 {
		t.Fatalf("cold mispredicts = %d, want 1", first)
	}
	runOnce()
	runOnce() // counter saturates toward taken
	warm := c.Stats().Mispredicts
	runOnce()
	if c.Stats().Mispredicts != warm {
		t.Errorf("warm branch still mispredicts")
	}
	c.FlushPredictor()
	runOnce()
	if c.Stats().Mispredicts != warm+1 {
		t.Errorf("flushed predictor did not mispredict")
	}
}

func TestReturnAddressStack(t *testing.T) {
	var a isa.Asm
	callAt := a.Len()
	a.Call(0)
	a.Hlt()
	fOff := a.Len()
	a.Ret()
	rel, _ := isa.CallRel(textBase+uint64(callAt), textBase+uint64(fOff))
	p := isa.EncodeCall(rel)
	copy(a.Bytes()[callAt:], p[:])
	c := newVM(t, a.Bytes())
	run(t, c)
	if got := c.Stats().Mispredicts; got != 0 {
		t.Errorf("matched call/ret mispredicted %d times", got)
	}
}

func TestIndirectCallPrediction(t *testing.T) {
	var a isa.Asm
	a.Movi(1, 0) // counter
	a.Movi(2, 0) // placeholder for target, fixed below
	moviAt := a.Len() - 10
	loop := a.Len()
	a.CallR(2)
	a.AluI(isa.ADDI, 1, 1)
	a.CmpI(1, 100)
	jccAt := a.Len()
	a.Jcc(isa.LT, int32(loop-(jccAt+6)))
	a.Hlt()
	fOff := a.Len()
	a.Ret()
	// Fix the MOVI target immediate.
	target := textBase + uint64(fOff)
	code := a.Bytes()
	for i := 0; i < 8; i++ {
		code[moviAt+2+i] = byte(target >> (8 * i))
	}
	c := newVM(t, code)
	run(t, c)
	st := c.Stats()
	// First indirect call mispredicts (plus the loop branch warmup);
	// subsequent ones hit the BTB.
	if st.Mispredicts > 4 {
		t.Errorf("mispredicts = %d, want <= 4", st.Mispredicts)
	}
	if st.Calls != 100 {
		t.Errorf("calls = %d, want 100", st.Calls)
	}
}

func TestXchg(t *testing.T) {
	var a isa.Asm
	a.Movi(1, int64(dataBase))
	a.Movi(0, 5)
	a.St(1, 0, 8, 0) // mem = 5
	a.Movi(2, 9)
	a.Xchg(1, 2) // r2 = 5, mem = 9
	a.Ld(3, 1, 8, 0)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(2) != 5 || c.Reg(3) != 9 {
		t.Errorf("r2, r3 = %d, %d; want 5, 9", c.Reg(2), c.Reg(3))
	}
}

func TestCliStiNativeVsGuest(t *testing.T) {
	prog := func() []byte {
		var a isa.Asm
		a.Sti()
		a.Cli()
		a.Hlt()
		return a.Bytes()
	}
	c := newVM(t, prog())
	run(t, c)
	nativeCycles := c.Cycles()
	if c.InterruptsEnabled() {
		t.Error("interrupts enabled after CLI")
	}

	g := newVM(t, prog())
	g.SetMode(Guest)
	run(t, g)
	if g.Cycles() <= nativeCycles {
		t.Errorf("guest CLI/STI (%d cycles) not slower than native (%d)", g.Cycles(), nativeCycles)
	}
	cfg := DefaultConfig()
	wantExtra := uint64(2 * (cfg.GuestTrapCost - cfg.CostCliSti))
	if g.Cycles()-nativeCycles != wantExtra {
		t.Errorf("guest overhead = %d cycles, want %d", g.Cycles()-nativeCycles, wantExtra)
	}
}

type fakeHV struct {
	calls []uint8
}

func (h *fakeHV) Hypercall(c *CPU, n uint8) error {
	h.calls = append(h.calls, n)
	switch n {
	case 1:
		c.SetInterruptsEnabled(true)
	case 2:
		c.SetInterruptsEnabled(false)
	}
	return nil
}

func TestHypercall(t *testing.T) {
	var a isa.Asm
	a.Hcall(1)
	a.Hcall(2)
	a.Hlt()
	c := newVM(t, a.Bytes())
	hv := &fakeHV{}
	c.SetHypervisor(hv)
	run(t, c)
	if len(hv.calls) != 2 || hv.calls[0] != 1 || hv.calls[1] != 2 {
		t.Errorf("hypercalls = %v", hv.calls)
	}
	if c.InterruptsEnabled() {
		t.Error("interrupts should be off after hcall 2")
	}
}

func TestHypercallWithoutHypervisorFaults(t *testing.T) {
	var a isa.Asm
	a.Hcall(1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	if _, err := c.Run(10); err == nil {
		t.Error("HCALL without hypervisor succeeded")
	}
}

func TestRdtscMonotonic(t *testing.T) {
	var a isa.Asm
	a.Rdtsc(0)
	a.AluI(isa.ADDI, 5, 1)
	a.Rdtsc(1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(1) <= c.Reg(0) {
		t.Errorf("rdtsc not monotonic: %d then %d", c.Reg(0), c.Reg(1))
	}
}

func TestDeviceIO(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 'X')
	a.OutB(1, 0)
	a.InB(2, 7)
	a.Hlt()
	c := newVM(t, a.Bytes())
	var out []byte
	c.OutB = func(port uint8, b byte) {
		if port == 1 {
			out = append(out, b)
		}
	}
	c.InB = func(port uint8) byte {
		if port == 7 {
			return 0x5A
		}
		return 0
	}
	run(t, c)
	if string(out) != "X" {
		t.Errorf("out = %q", out)
	}
	if c.Reg(2) != 0x5A {
		t.Errorf("in = %#x", c.Reg(2))
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 1)
	a.Movi(1, 0)
	a.Alu(isa.DIV, 0, 1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	_, err := c.Run(10)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestExecFaultOnDataPage(t *testing.T) {
	var a isa.Asm
	a.Hlt()
	c := newVM(t, a.Bytes())
	c.SetPC(dataBase) // rw- page
	_, err := c.Run(1)
	if err == nil {
		t.Error("executing from rw- page succeeded")
	}
}

func TestStaleICacheUntilFlush(t *testing.T) {
	// Program: movi r0, 1; hlt. Patch the immediate to 2 behind the
	// icache's back: without a flush the CPU must still see 1.
	var a isa.Asm
	a.Movi(0, 1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(0) != 1 {
		t.Fatalf("r0 = %d", c.Reg(0))
	}

	// Patch via WriteForce (kernel-style, ignores RX).
	var b isa.Asm
	b.Movi(0, 2)
	if err := c.Mem.WriteForce(textBase, b.Bytes()); err != nil {
		t.Fatal(err)
	}

	c.SetPC(textBase)
	run(t, c)
	if c.Reg(0) != 1 {
		t.Errorf("r0 = %d after unflushed patch, want stale 1", c.Reg(0))
	}

	c.FlushICache(textBase, uint64(b.Len()))
	c.SetPC(textBase)
	run(t, c)
	if c.Reg(0) != 2 {
		t.Errorf("r0 = %d after flush, want 2", c.Reg(0))
	}
}

func TestNopnSkipsCorrectly(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 7)
	a.Nop(13)
	a.AluI(isa.ADDI, 0, 1)
	a.Nop(2)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(0) != 8 {
		t.Errorf("r0 = %d, want 8", c.Reg(0))
	}
}

func TestRunMaxStepsExceeded(t *testing.T) {
	var a isa.Asm
	a.Jmp(-5) // tight infinite loop
	c := newVM(t, a.Bytes())
	if _, err := c.Run(100); err == nil {
		t.Error("infinite loop terminated without error")
	}
}

func TestStepOnHaltedCPUFails(t *testing.T) {
	var a isa.Asm
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if err := c.Step(); err == nil {
		t.Error("Step on halted CPU succeeded")
	}
}

func TestDeterministicCycles(t *testing.T) {
	prog := func() *CPU {
		var a isa.Asm
		a.Movi(1, 0)
		loop := a.Len()
		a.AluI(isa.ADDI, 1, 1)
		a.CmpI(1, 500)
		jccAt := a.Len()
		a.Jcc(isa.LT, int32(loop-(jccAt+6)))
		a.Hlt()
		return newVM(t, a.Bytes())
	}
	c1, c2 := prog(), prog()
	run(t, c1)
	run(t, c2)
	if c1.Cycles() != c2.Cycles() {
		t.Errorf("cycles differ: %d vs %d", c1.Cycles(), c2.Cycles())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with non-power-of-two BTB did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.BTBSize = 100
	New(mem.New(), cfg)
}

func TestSpAdd(t *testing.T) {
	var a isa.Asm
	a.SpAdd(-32)
	a.SpAdd(32)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(isa.SP) != stackTop {
		t.Errorf("sp = %#x, want %#x", c.Reg(isa.SP), stackTop)
	}
}

func TestLea(t *testing.T) {
	var a isa.Asm
	a.Movi(1, 100)
	a.Lea(0, 1, -4)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if c.Reg(0) != 96 {
		t.Errorf("lea = %d, want 96", c.Reg(0))
	}
}

func TestRdtscServicesDueInterrupts(t *testing.T) {
	// Regression: RDTSC (and HLT) used to return from exec before the
	// common epilogue, so a CPU with interrupt perturbation enabled
	// never serviced a due interrupt across a timer read — back-to-back
	// RDTSCs appeared to run on an interrupt-free machine, exactly
	// where the §6.1/§7.5 measurement methodology needs the
	// perturbation visible.
	const intrCost = 1000
	var a isa.Asm
	a.Sti()
	a.Rdtsc(0)
	a.Rdtsc(1)
	a.Rdtsc(2)
	a.Hlt()
	c := newVM(t, a.Bytes())
	c.SetInterruptPerturbation(1, intrCost) // due after every instruction
	run(t, c)
	if c.Stats().Interrupts < 3 {
		t.Fatalf("interrupts = %d, want one per instruction (>= 3)", c.Stats().Interrupts)
	}
	// The schedule is deterministic: every inter-read gap is exactly
	// one timer read plus one serviced interrupt.
	want := uint64(c.Config().CostRdtsc) + intrCost
	if d := c.Reg(1) - c.Reg(0); d != want {
		t.Errorf("rdtsc delta r1-r0 = %d, want %d (interrupt skipped)", d, want)
	}
	if d := c.Reg(2) - c.Reg(1); d != want {
		t.Errorf("rdtsc delta r2-r1 = %d, want %d (interrupt skipped)", d, want)
	}
}

func TestIndirectRetagResetsAliasedCounter(t *testing.T) {
	// Regression: predictIndirect re-tagged an aliased BTB entry with
	// counter: e.counter, carrying a conditional-branch saturating
	// counter trained by an unrelated pc into the new entry. A JCC and
	// a CLLR aliasing the same direct-mapped slot must not share
	// counter state.
	cfg := DefaultConfig()
	cfg.BTBSize = 16
	c := New(mem.New(), cfg)
	jccPC := uint64(0x1000)  // slot 0
	callPC := uint64(0x2000) // also slot 0: 0x2000 & 15 == 0x1000 & 15
	if jccPC&uint64(cfg.BTBSize-1) != callPC&uint64(cfg.BTBSize-1) {
		t.Fatal("test pcs do not alias")
	}
	// Train the conditional branch to strongly taken.
	for i := 0; i < 4; i++ {
		c.predictCond(jccPC, true)
	}
	if got := c.btb[jccPC&uint64(cfg.BTBSize-1)].counter; got != 3 {
		t.Fatalf("trained counter = %d, want saturated 3", got)
	}
	// An indirect call evicts the aliased entry; the counter must be
	// re-initialized like predictCond does, not inherited.
	c.predictIndirect(callPC, 0x5000)
	e := c.btb[callPC&uint64(cfg.BTBSize-1)]
	if e.tag != callPC || !e.valid || e.target != 0x5000 {
		t.Fatalf("entry not re-tagged: %+v", e)
	}
	if e.counter != 1 {
		t.Errorf("aliased counter carried over: counter = %d, want re-init 1", e.counter)
	}
	// Behavioral check: a never-seen not-taken branch at the call's pc
	// (the site could be patched to a JCC) must not predict taken off
	// the inherited counter.
	if !c.predictCond(callPC, false) {
		t.Error("fresh branch mispredicted taken due to inherited counter")
	}
	// On a tag match the counter is preserved, only the target moves.
	c.predictIndirect(jccPC, 0x6000)            // re-tags slot to jccPC
	correct := c.predictIndirect(jccPC, 0x7000) // same tag, new target
	if correct {
		t.Error("changed target predicted as correct")
	}
	if e := c.btb[jccPC&uint64(cfg.BTBSize-1)]; e.target != 0x7000 || e.counter != 1 {
		t.Errorf("tag-match update wrong: %+v", e)
	}
}
