// The superblock interpreter.
//
// The decode cache (decodecache.go) removed re-decoding from the hot
// path, but every instruction still paid one full trip through Step's
// dispatch machinery: halted check, cache probe, the monolithic exec
// switch, and the Run loop's own bookkeeping. Superblocks remove that
// per-instruction overhead the way trace-based interpreters do (cf.
// Wong et al., "Faster Variational Execution with Transparent Bytecode
// Transformation"): straight-line runs of instructions are chained
// into a block once, then replayed by a threaded-dispatch loop that
// calls one pre-resolved handler function per instruction.
//
// Formation. A block starts at the first pc executed through the fast
// path whose icache line is already resident, and chains decoded
// instructions forward while they are straight-line, stopping at
//
//   - control flow (JCC, JMP, CALL, CLLR, CLLM, RET) — included as the
//     block's final instruction, since its handler computes the next
//     pc itself;
//   - HLT, BRK and HCALL — never included: HLT must bounce control
//     back to the Run loop's halt check, a resident BRK byte must trap
//     through the slow path, and a hypercall hands the CPU to an
//     arbitrary host handler;
//   - any byte sequence that does not decode entirely from this line's
//     snapshot (instructions straddling the line boundary draw bytes
//     from a second line with an independent lifetime, exactly the
//     rule cacheInst follows);
//   - the line boundary and a maximum block length.
//
// A pc where no block can start (it holds HLT, BRK, HCALL or
// undecodable bytes) caches a shared zero-length sentinel so the fast
// path stops re-attempting the build and falls through to the decode
// cache.
//
// Invalidation. Blocks are derived exclusively from the line's byte
// snapshot and are stored on the line itself, so FlushICache drops
// them together with the line — the same lifetime the decode cache
// has, and therefore the same lifetime the BRK text-poke protocol
// already relies on: the poke's phase-1 flush kills every block built
// over the old bytes before any CPU can fetch the breakpoint.
// Patching *without* a flush keeps executing the stale block, just as
// the raw interpreter keeps executing the stale bytes.
//
// Semantics. Block execution is bit-identical to single-stepping: each
// handler mirrors its exec() case exactly (costs, stat counters,
// predictor updates, operation order on fault paths), and the dispatch
// loop runs the same per-instruction epilogue — cycle charge, pc
// advance, interrupt-perturbation check. Blocks run only from the
// hook-free fast path (no Trace callback, no tracer, no fault
// injector), so the observability and injection hooks always see
// true single-instruction execution. internal/difftest pins E1/E4
// simulated cycles bit-identical with superblocks on and off.

package cpu

import (
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/mem"
)

// maxBlockInsts bounds block length. Long enough to swallow any hot
// loop body or function prologue in one dispatch, short enough that
// clamping against a Run step budget stays cheap.
const maxBlockInsts = 64

// superblocksDefault is the construction-time default for new CPUs,
// overridable globally with SetSuperblocksDefault (mvbench's
// -superblocks flag) or the environment knob MV_SUPERBLOCKS=off
// (also "0" / "false").
var superblocksDefault = func() bool {
	switch os.Getenv("MV_SUPERBLOCKS") {
	case "0", "off", "false":
		return false
	}
	return true
}()

// SetSuperblocksDefault sets whether newly constructed CPUs use the
// superblock interpreter. Existing CPUs are unaffected.
func SetSuperblocksDefault(on bool) { superblocksDefault = on }

// SuperblocksDefault reports the construction-time default.
func SuperblocksDefault() bool { return superblocksDefault }

// SetSuperblocks enables or disables this CPU's superblock layer.
// Toggling is safe at any point: blocks are always consistent with
// their line's byte snapshot, so re-enabling reuses them.
func (c *CPU) SetSuperblocks(on bool) { c.superblocks = on }

// SuperblocksEnabled reports whether this CPU executes straight-line
// runs through cached superblocks.
func (c *CPU) SuperblocksEnabled() bool { return c.superblocks }

// sbFn executes one block entry. It returns the next pc (e.next for
// straight-line instructions; terminators compute their own) and the
// cycle cost the common epilogue charges. On error nothing retired:
// registers, pc and cycles are exactly as the corresponding exec()
// case leaves them.
type sbFn func(c *CPU, e *sbEntry) (next uint64, cost int, err error)

// sbEntry is one predecoded, pre-dispatched instruction of a block.
type sbEntry struct {
	fn   sbFn
	in   isa.Inst
	pc   uint64
	next uint64 // pc + in.Len
}

// superblock is a straight-line chain of instructions, optionally
// terminated by a single control-flow instruction.
type superblock struct {
	entries []sbEntry
}

// sbReject is the shared "no block starts here" sentinel: a pc whose
// instruction cannot head a block (HLT, BRK, HCALL, undecodable)
// caches it so the fast path probes once and falls through.
var sbReject = &superblock{}

// cachedBlock returns the block starting at pc (which may be the
// sbReject sentinel) and the resident line, either of which may be
// nil. It shares the decode cache's last-line memo.
func (c *CPU) cachedBlock(pc uint64) (*superblock, *icLine) {
	pn := pc >> mem.PageShift
	line := c.lastLine
	if line == nil || c.lastPN != pn {
		var ok bool
		line, ok = c.icache[pn]
		if !ok {
			return nil, nil
		}
		c.lastPN, c.lastLine = pn, line
	}
	if line.sb == nil {
		return nil, line
	}
	return line.sb[pc&(mem.PageSize-1)], line
}

// sbTerminator reports whether op ends a block as its final,
// included instruction.
func sbTerminator(op isa.Op) bool {
	switch op {
	case isa.JCC, isa.JMP, isa.CALL, isa.CLLR, isa.CLLM, isa.RET:
		return true
	}
	return false
}

// buildBlock decodes a superblock starting at pc from line's byte
// snapshot and caches it on the line. Build is pure host work: no
// simulated state changes and no simulated cycles pass.
func (c *CPU) buildBlock(line *icLine, pc uint64) *superblock {
	if line.sb == nil {
		line.sb = make([]*superblock, mem.PageSize)
	}
	pn := pc >> mem.PageShift
	b := &superblock{}
	cur := pc
	for len(b.entries) < maxBlockInsts && cur>>mem.PageShift == pn {
		off := cur & (mem.PageSize - 1)
		w := line.bytes[off:]
		if len(w) > maxInstLen {
			w = w[:maxInstLen]
		}
		var in isa.Inst
		if isa.Op(w[0]) == isa.NOPN {
			// Like stepDecode: only the length byte matters; the padding
			// need not lie in this line (it may cross into the next page).
			if len(w) < 2 || int(w[1]) < 2 {
				break
			}
			in = isa.Inst{Op: isa.NOPN, Len: int(w[1])}
		} else {
			var err error
			in, err = isa.Decode(w)
			if err != nil {
				// Undecodable from this line alone — possibly a valid
				// instruction straddling into the next line, whose
				// lifetime is independent. The slow path handles it.
				break
			}
		}
		fn := sbOps[in.Op]
		if fn == nil {
			break // HLT, BRK, HCALL or an op with no handler
		}
		b.entries = append(b.entries, sbEntry{fn: fn, in: in, pc: cur, next: cur + uint64(in.Len)})
		if sbTerminator(in.Op) {
			break
		}
		cur += uint64(in.Len)
	}
	if len(b.entries) == 0 {
		b = sbReject
	} else {
		line.nsb++
		c.stats.BlockBuilds++
	}
	line.sb[pc&(mem.PageSize-1)] = b
	return b
}

// execBlock replays up to budget entries of b through threaded
// dispatch. It returns the number of instructions that fully retired.
// The per-instruction epilogue is exec()'s: charge the cost, advance
// the pc, service a due perturbation interrupt. Stats that exec()
// counts unconditionally per dispatched instruction (Instructions,
// and DecodeHits when the decode cache is on — block entries are
// predecoded, so dispatching one is a decode-cache hit) are
// accumulated locally and flushed on every exit path, including the
// not-retired dispatch of a faulting instruction, mirroring exec()
// counting Instructions before the opcode runs.
func (c *CPU) execBlock(b *superblock, budget uint64) (uint64, error) {
	entries := b.entries
	if budget < uint64(len(entries)) {
		entries = entries[:budget]
	}
	var done uint64
	for i := range entries {
		e := &entries[i]
		next, cost, err := e.fn(c, e)
		if err != nil {
			dispatched := done + 1
			c.stats.Instructions += dispatched
			c.stats.BlockInsts += dispatched
			if c.decodeCache {
				c.stats.DecodeHits += dispatched
			}
			return done, &execError{e.pc, err}
		}
		done++
		c.cycles += uint64(cost)
		c.pc = next
		if c.intrPeriod > 0 && c.intrOn && c.cycles >= c.nextIntr {
			// Service an asynchronous interrupt: time passes, state is
			// preserved (the handler saves and restores everything).
			c.cycles += c.intrCost
			c.stats.Interrupts++
			c.nextIntr = c.cycles + c.intrPeriod
		}
	}
	c.stats.Instructions += done
	c.stats.BlockInsts += done
	if c.decodeCache {
		c.stats.DecodeHits += done
	}
	c.stats.BlockHits++
	return done, nil
}

// stepFastN is the fast-path dispatcher Run drives when no hooks are
// installed: it executes up to budget instructions (at least one),
// chaining block to block — a terminator whose target heads another
// resident or buildable block continues dispatching without
// re-entering Run (HLT never lives inside a block, so the halted
// check cannot be skipped past). A pc with no block retires exactly
// one instruction via the decode cache or the full fetch-and-decode
// path. It returns the number of instructions that retired.
func (c *CPU) stepFastN(budget uint64) (uint64, error) {
	if c.halted {
		return 0, fmt.Errorf("cpu: step on halted CPU")
	}
	pc := c.pc
	if c.superblocks {
		var total uint64
		for total < budget {
			b, line := c.cachedBlock(pc)
			if b == nil && line != nil {
				b = c.buildBlock(line, pc)
			}
			if b == nil || len(b.entries) == 0 {
				break
			}
			n, err := c.execBlock(b, budget-total)
			total += n
			if err != nil {
				return total, err
			}
			pc = c.pc
			if c.cycleStop != 0 && c.cycles >= c.cycleStop {
				// RunUntil's pause point: between block dispatches, never
				// inside one. total > 0 here — execBlock either retired at
				// least one instruction or returned the error above.
				return total, nil
			}
		}
		if total > 0 {
			return total, nil
		}
	}
	// Single-instruction fall-through: a faulting instruction did not
	// retire, so it must not count against the caller's step budget —
	// the same contract as Run's Step loop.
	if c.decodeCache {
		if in, ok := c.cachedInst(pc); ok {
			c.stats.DecodeHits++
			if err := c.exec(in); err != nil {
				return 0, err
			}
			return 1, nil
		}
	}
	if err := c.stepDecode(pc); err != nil {
		return 0, err
	}
	return 1, nil
}

// --- the threaded-dispatch table ---
//
// One handler per opcode, indexed by the opcode byte. Every handler is
// a line-for-line mirror of its exec() case: same costs, same stat
// counters, same operation order on fault paths (the difftests and the
// chaining fuzz test hold them to it). Handlers never touch tracers or
// injectors — blocks only run on the hook-free path, where both are
// nil by construction.

var sbOps [256]sbFn

func init() {
	for _, op := range []isa.Op{isa.NOP, isa.NOPN} {
		sbOps[op] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			return e.next, c.cfg.CostNop, nil
		}
	}
	sbOps[isa.MOVI] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] = uint64(e.in.Imm)
		return e.next, c.cfg.CostALU, nil
	}
	sbOps[isa.MOV] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] = c.regs[e.in.Rs]
		return e.next, c.cfg.CostALU, nil
	}
	sbOps[isa.LEA] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] = c.regs[e.in.Rs] + uint64(e.in.Imm)
		return e.next, c.cfg.CostALU, nil
	}
	for _, op := range []isa.Op{isa.LD, isa.LDS} {
		sbOps[op] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			addr := c.regs[e.in.Rs] + uint64(e.in.Imm)
			v, err := c.Mem.ReadUint(addr, e.in.Size)
			if err != nil {
				return 0, 0, err
			}
			if e.in.Op == isa.LDS {
				shift := 64 - 8*e.in.Size
				v = uint64(int64(v<<shift) >> shift)
			}
			c.regs[e.in.Rd] = v
			c.stats.Loads++
			return e.next, c.cfg.CostLoad, nil
		}
	}
	sbOps[isa.ST] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		addr := c.regs[e.in.Rd] + uint64(e.in.Imm)
		if err := c.Mem.WriteUint(addr, e.in.Size, c.regs[e.in.Rs]); err != nil {
			return 0, 0, err
		}
		c.stats.Stores++
		return e.next, c.cfg.CostStore, nil
	}
	// ALU ops that cannot fault get direct handlers — no trip through
	// the alu() switch, whose dispatch cost dominates 1-cycle ops on
	// the host. The divide family keeps the generic path: it is rare
	// and carries the division-by-zero error return.
	type aluFn func(a, b uint64) uint64
	aluPairs := []struct {
		reg, imm isa.Op
		f        aluFn
	}{
		{isa.ADD, isa.ADDI, func(a, b uint64) uint64 { return a + b }},
		{isa.SUB, isa.SUBI, func(a, b uint64) uint64 { return a - b }},
		{isa.AND, isa.ANDI, func(a, b uint64) uint64 { return a & b }},
		{isa.OR, isa.ORI, func(a, b uint64) uint64 { return a | b }},
		{isa.XOR, isa.XORI, func(a, b uint64) uint64 { return a ^ b }},
		{isa.SHL, isa.SHLI, func(a, b uint64) uint64 { return a << (b & 63) }},
		{isa.SHR, isa.SHRI, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{isa.SAR, isa.SARI, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
	}
	for _, p := range aluPairs {
		f := p.f
		sbOps[p.reg] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			c.regs[e.in.Rd] = f(c.regs[e.in.Rd], c.regs[e.in.Rs])
			return e.next, c.cfg.CostALU, nil
		}
		sbOps[p.imm] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			c.regs[e.in.Rd] = f(c.regs[e.in.Rd], uint64(e.in.Imm))
			return e.next, c.cfg.CostALU, nil
		}
	}
	sbOps[isa.NEG] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] = -c.regs[e.in.Rd]
		return e.next, c.cfg.CostALU, nil
	}
	sbOps[isa.NOT] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] = ^c.regs[e.in.Rd]
		return e.next, c.cfg.CostALU, nil
	}
	sbOps[isa.MUL] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] *= c.regs[e.in.Rs]
		return e.next, c.cfg.CostMul, nil
	}
	sbOps[isa.MULI] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[e.in.Rd] *= uint64(e.in.Imm)
		return e.next, c.cfg.CostMul, nil
	}
	for _, op := range []isa.Op{isa.DIV, isa.MOD, isa.UDIV, isa.UMOD} {
		sbOps[op] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			cost, err := c.alu(e.in.Op, e.in.Rd, c.regs[e.in.Rs])
			if err != nil {
				return 0, 0, err
			}
			return e.next, cost, nil
		}
	}
	for _, op := range []isa.Op{isa.DIVI, isa.MODI} {
		sbOps[op] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			cost, err := c.alu(immToReg(e.in.Op), e.in.Rd, uint64(e.in.Imm))
			if err != nil {
				return 0, 0, err
			}
			return e.next, cost, nil
		}
	}
	sbOps[isa.CMP] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.cmpA, c.cmpB = int64(c.regs[e.in.Rd]), int64(c.regs[e.in.Rs])
		return e.next, c.cfg.CostCmp, nil
	}
	sbOps[isa.CMPI] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.cmpA, c.cmpB = int64(c.regs[e.in.Rd]), e.in.Imm
		return e.next, c.cfg.CostCmp, nil
	}
	sbOps[isa.SETCC] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		if e.in.Cond.Eval(c.cmpA, c.cmpB) {
			c.regs[e.in.Rd] = 1
		} else {
			c.regs[e.in.Rd] = 0
		}
		return e.next, c.cfg.CostALU, nil
	}
	sbOps[isa.JCC] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		taken := e.in.Cond.Eval(c.cmpA, c.cmpB)
		cost := c.cfg.CostBranch
		if !c.predictCond(e.pc, taken) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
		}
		c.stats.Branches++
		next := e.next
		if taken {
			next += uint64(e.in.Imm)
		}
		return next, cost, nil
	}
	sbOps[isa.JMP] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		return e.next + uint64(e.in.Imm), c.cfg.CostJmp, nil
	}
	sbOps[isa.CALL] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.rasPush(e.next)
		if err := c.push(e.next); err != nil {
			return 0, 0, err
		}
		c.stats.Calls++
		return e.next + uint64(e.in.Imm), c.cfg.CostCall, nil
	}
	sbOps[isa.CLLM] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		ptr, err := c.Mem.ReadUint(uint64(e.in.Imm), 8)
		if err != nil {
			return 0, 0, err
		}
		if ptr == 0 {
			return 0, 0, fmt.Errorf("call through null function pointer at %#x", uint64(e.in.Imm))
		}
		c.stats.Loads++
		cost := c.cfg.CostLoad + c.cfg.CostCallR
		if !c.predictIndirect(e.pc, ptr) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
		}
		c.stats.Branches++
		c.rasPush(e.next)
		if err := c.push(e.next); err != nil {
			return 0, 0, err
		}
		c.stats.Calls++
		return ptr, cost, nil
	}
	sbOps[isa.CLLR] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		target := c.regs[e.in.Rs]
		cost := c.cfg.CostCallR
		if !c.predictIndirect(e.pc, target) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
		}
		c.stats.Branches++
		c.rasPush(e.next)
		if err := c.push(e.next); err != nil {
			return 0, 0, err
		}
		c.stats.Calls++
		return target, cost, nil
	}
	sbOps[isa.RET] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		ret, err := c.pop()
		if err != nil {
			return 0, 0, err
		}
		cost := c.cfg.CostRet
		if !c.rasPop(ret) {
			cost += c.cfg.MispredictPenalty
			c.stats.Mispredicts++
		}
		return ret, cost, nil
	}
	sbOps[isa.PUSH] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		if err := c.push(c.regs[e.in.Rd]); err != nil {
			return 0, 0, err
		}
		return e.next, c.cfg.CostPush, nil
	}
	sbOps[isa.POP] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		v, err := c.pop()
		if err != nil {
			return 0, 0, err
		}
		c.regs[e.in.Rd] = v
		return e.next, c.cfg.CostPop, nil
	}
	sbOps[isa.SPAD] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		c.regs[isa.SP] += uint64(e.in.Imm)
		return e.next, c.cfg.CostALU, nil
	}
	sbOps[isa.XCHG] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		addr := c.regs[e.in.Rd]
		old, err := c.Mem.ReadUint(addr, 8)
		if err != nil {
			return 0, 0, err
		}
		if err := c.Mem.WriteUint(addr, 8, c.regs[e.in.Rs]); err != nil {
			return 0, 0, err
		}
		c.regs[e.in.Rs] = old
		c.stats.Loads++
		c.stats.Stores++
		return e.next, c.cfg.CostXchg, nil
	}
	sbOps[isa.PAUSE] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		return e.next, c.cfg.CostPause, nil
	}
	for _, op := range []isa.Op{isa.CLI, isa.STI} {
		sbOps[op] = func(c *CPU, e *sbEntry) (uint64, int, error) {
			on := e.in.Op == isa.STI
			cost := c.cfg.CostCliSti
			if c.mode == Guest {
				// A paravirtualized guest is deprivileged: the
				// instruction traps and the hypervisor emulates it.
				cost = c.cfg.GuestTrapCost
			}
			c.intrOn = on
			return e.next, cost, nil
		}
	}
	sbOps[isa.RDTSC] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		// Like rdtsc_ordered: the cost is charged before the value is
		// read; the epilogue adds nothing more but its interrupt check
		// still runs.
		c.cycles += uint64(c.cfg.CostRdtsc)
		c.regs[e.in.Rd] = c.cycles
		return e.next, 0, nil
	}
	sbOps[isa.OUTB] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		if c.OutB != nil {
			c.OutB(uint8(e.in.Imm), byte(c.regs[e.in.Rs]))
		}
		return e.next, c.cfg.CostIO, nil
	}
	sbOps[isa.INB] = func(c *CPU, e *sbEntry) (uint64, int, error) {
		var v byte
		if c.InB != nil {
			v = c.InB(uint8(e.in.Imm))
		}
		c.regs[e.in.Rd] = uint64(v)
		return e.next, c.cfg.CostIO, nil
	}
}
