// CPU state export/import for deterministic machine snapshots.
//
// ExportState captures everything a CPU's future execution depends on:
// architectural state (registers, pc, flags operands, stack pointer is
// a register), the microarchitectural predictors (BTB, RAS) whose
// contents change simulated cycle counts, the interrupt-perturbation
// schedule, and — crucially — the instruction cache, because stale
// icache lines are architecturally visible in this machine: a CPU
// keeps executing its snapshot of a page until FlushICache, so two
// machines with identical memory but different resident lines can
// diverge.
//
// The derived caches layered on each line (predecoded instructions,
// superblocks) never change simulated behavior, but they do change the
// Decode*/Block* statistics, and snapshot determinism demands that a
// restored machine's stats evolve bit-identically to the uninterrupted
// run. ExportState therefore records *which* offsets were decoded and
// which headed superblocks; ImportState rebuilds those entries from
// the line's byte snapshot (a pure, deterministic derivation) and then
// overwrites the stats with the snapshot's values, so the rebuild
// itself leaves no trace.
//
// Host wiring — the memory reference, the cost model, tracers, fault
// injectors, device callbacks and the decode-cache line memo — is
// deliberately not state: it belongs to the constructing harness, and
// the memo is rebuilt lazily. state_test.go enumerates every CPU field
// and fails compilation of a lie: adding a field without classifying
// it as serialized or host-wiring breaks the build gate.

package cpu

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// BTBState is one exported branch-target-buffer entry.
type BTBState struct {
	Valid   bool
	Tag     uint64
	Counter uint8
	Target  uint64
}

// ICLineState is one exported instruction-cache line: the page-byte
// snapshot plus the offsets of its derived decode-cache and superblock
// entries (offsets only — the entries rebuild deterministically from
// Bytes at import).
type ICLineState struct {
	PN      uint64 // page number
	Version uint64 // page write-version at fill time
	Bytes   []byte // PageSize-long snapshot

	Decoded []uint16 // in-page offsets with a predecoded instruction
	SBHeads []uint16 // in-page offsets heading a real superblock
	SBRject []uint16 // in-page offsets caching the reject sentinel
}

// State is the complete serializable state of one CPU.
type State struct {
	Regs   [isa.NumRegs]uint64
	PC     uint64
	Cycles uint64
	Halted bool
	CmpA   int64
	CmpB   int64

	BTB  []BTBState
	RAS  []uint64
	RASN int

	DecodeCache bool
	Superblocks bool

	Mode       uint8
	IntrOn     bool
	IntrPeriod uint64
	IntrCost   uint64
	NextIntr   uint64

	ICache []ICLineState // sorted by PN
	Stats  Stats
}

// ExportState captures this CPU's complete state. The result shares no
// memory with the CPU: mutating either afterwards is safe.
func (c *CPU) ExportState() State {
	s := State{
		Regs:        c.regs,
		PC:          c.pc,
		Cycles:      c.cycles,
		Halted:      c.halted,
		CmpA:        c.cmpA,
		CmpB:        c.cmpB,
		RAS:         append([]uint64(nil), c.ras...),
		RASN:        c.rasN,
		DecodeCache: c.decodeCache,
		Superblocks: c.superblocks,
		Mode:        uint8(c.mode),
		IntrOn:      c.intrOn,
		IntrPeriod:  c.intrPeriod,
		IntrCost:    c.intrCost,
		NextIntr:    c.nextIntr,
		Stats:       c.stats,
	}
	s.BTB = make([]BTBState, len(c.btb))
	for i, e := range c.btb {
		s.BTB[i] = BTBState{Valid: e.valid, Tag: e.tag, Counter: e.counter, Target: e.target}
	}
	pns := make([]uint64, 0, len(c.icache))
	for pn := range c.icache {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		line := c.icache[pn]
		ls := ICLineState{PN: pn, Version: line.version, Bytes: append([]byte(nil), line.bytes...)}
		if line.dec != nil {
			for off, in := range line.dec {
				if in.Len != 0 {
					ls.Decoded = append(ls.Decoded, uint16(off))
				}
			}
		}
		if line.sb != nil {
			for off, b := range line.sb {
				if b == nil {
					continue
				}
				if len(b.entries) == 0 {
					ls.SBRject = append(ls.SBRject, uint16(off))
				} else {
					ls.SBHeads = append(ls.SBHeads, uint16(off))
				}
			}
		}
		s.ICache = append(s.ICache, ls)
	}
	return s
}

// decodeLineInst decodes the instruction at in-page offset off from a
// line's byte snapshot, mirroring stepDecode's NOPN handling. It is
// the deterministic derivation ImportState replays to rebuild decode
// cache entries.
func decodeLineInst(line *icLine, off int) (isa.Inst, error) {
	w := line.bytes[off:]
	if len(w) > maxInstLen {
		w = w[:maxInstLen]
	}
	if len(w) >= 2 && isa.Op(w[0]) == isa.NOPN {
		length := int(w[1])
		if length < 2 {
			return isa.Inst{}, fmt.Errorf("cpu: NOPN length %d at snapshot offset %#x", length, off)
		}
		return isa.Inst{Op: isa.NOPN, Len: length}, nil
	}
	return isa.Decode(w)
}

// ImportState restores a previously exported state onto this CPU. The
// CPU must have been constructed with the same Config the exporting
// CPU used (the predictor geometry is checked; the cost model is the
// caller's contract). Derived caches are rebuilt from the line byte
// snapshots and the statistics then overwritten from the snapshot, so
// a restored CPU's counters evolve bit-identically to the exporting
// run.
func (c *CPU) ImportState(s State) error {
	if len(s.BTB) != len(c.btb) {
		return fmt.Errorf("cpu: snapshot BTB has %d entries, this CPU %d (different Config)", len(s.BTB), len(c.btb))
	}
	if len(s.RAS) != len(c.ras) {
		return fmt.Errorf("cpu: snapshot RAS depth %d, this CPU %d (different Config)", len(s.RAS), len(c.ras))
	}
	icache := make(map[uint64]*icLine, len(s.ICache))
	for i := range s.ICache {
		ls := &s.ICache[i]
		if len(ls.Bytes) != mem.PageSize {
			return fmt.Errorf("cpu: snapshot icache line %#x holds %d bytes, want %d", ls.PN, len(ls.Bytes), mem.PageSize)
		}
		if _, dup := icache[ls.PN]; dup {
			return fmt.Errorf("cpu: snapshot repeats icache line %#x", ls.PN)
		}
		line := &icLine{bytes: append([]byte(nil), ls.Bytes...), version: ls.Version}
		if len(ls.Decoded) > 0 {
			line.dec = make([]isa.Inst, mem.PageSize)
			for _, off := range ls.Decoded {
				if int(off)+maxInstLen > mem.PageSize {
					return fmt.Errorf("cpu: snapshot decode offset %#x too close to the line end", off)
				}
				in, err := decodeLineInst(line, int(off))
				if err != nil {
					return fmt.Errorf("cpu: rebuilding decode cache for line %#x: %w", ls.PN, err)
				}
				line.dec[off] = in
			}
		}
		icache[ls.PN] = line
	}
	c.regs = s.Regs
	c.pc = s.PC
	c.cycles = s.Cycles
	c.halted = s.Halted
	c.cmpA, c.cmpB = s.CmpA, s.CmpB
	for i, e := range s.BTB {
		c.btb[i] = btbEntry{valid: e.Valid, tag: e.Tag, counter: e.Counter, target: e.Target}
	}
	copy(c.ras, s.RAS)
	c.rasN = s.RASN
	c.decodeCache = s.DecodeCache
	c.superblocks = s.Superblocks
	c.mode = Mode(s.Mode)
	c.intrOn = s.IntrOn
	c.intrPeriod = s.IntrPeriod
	c.intrCost = s.IntrCost
	c.nextIntr = s.NextIntr
	c.icache = icache
	c.lastPN, c.lastLine = 0, nil // memo points at dropped lines
	c.cycleStop = 0
	// Superblock rebuild goes through buildBlock — the same derivation
	// the original run performed — which bumps nsb and BlockBuilds;
	// overwriting the stats afterwards erases the rebuild's traces.
	for i := range s.ICache {
		ls := &s.ICache[i]
		line := c.icache[ls.PN]
		for _, off := range ls.SBHeads {
			b := c.buildBlock(line, ls.PN<<mem.PageShift|uint64(off))
			if len(b.entries) == 0 {
				return fmt.Errorf("cpu: snapshot superblock head %#x rebuilds empty", ls.PN<<mem.PageShift|uint64(off))
			}
		}
		for _, off := range ls.SBRject {
			b := c.buildBlock(line, ls.PN<<mem.PageShift|uint64(off))
			if len(b.entries) != 0 {
				return fmt.Errorf("cpu: snapshot reject sentinel %#x rebuilds non-empty", ls.PN<<mem.PageShift|uint64(off))
			}
		}
	}
	c.stats = s.Stats
	return nil
}

// RunUntil executes until the cycle counter reaches target, the CPU
// halts, an error occurs, or maxSteps instructions retire. It returns
// the number of instructions executed.
//
// The pause point never perturbs the run: on the hook-free fast path
// the superblock chain is interrupted only between block dispatches
// (execBlock is never asked to split a block it would otherwise run
// whole, which would change the BlockHits accounting), so a run paused
// by RunUntil and then continued retires the same instructions, cycles
// and statistics as one uninterrupted Run — the invariant the
// checkpoint difftests pin.
func (c *CPU) RunUntil(target, maxSteps uint64) (uint64, error) {
	var steps uint64
	if c.Trace == nil && c.tracer == nil && c.inject == nil {
		c.cycleStop = target
		defer func() { c.cycleStop = 0 }()
		for steps < maxSteps && c.cycles < target {
			if c.halted {
				return steps, nil
			}
			n, err := c.stepFastN(maxSteps - steps)
			steps += n
			if err != nil {
				return steps, err
			}
		}
		return steps, nil
	}
	for steps < maxSteps && c.cycles < target {
		if c.halted {
			return steps, nil
		}
		if err := c.Step(); err != nil {
			return steps, err
		}
		steps++
	}
	return steps, nil
}
