package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestICacheFillStats(t *testing.T) {
	var a isa.Asm
	a.Movi(0, 1)
	a.Hlt()
	c := newVM(t, a.Bytes())
	run(t, c)
	if got := c.Stats().ICacheFills; got != 1 {
		t.Errorf("icache fills = %d, want 1 (single page)", got)
	}
	// Re-running the same code must not refill.
	c.SetPC(textBase)
	run(t, c)
	if got := c.Stats().ICacheFills; got != 1 {
		t.Errorf("icache refilled on warm run: %d", got)
	}
	// Flushing forces one more fill.
	c.FlushICache(textBase, 1)
	c.SetPC(textBase)
	run(t, c)
	if got := c.Stats().ICacheFills; got != 2 {
		t.Errorf("fills after flush = %d, want 2", got)
	}
}

func TestInstructionStraddlingPageBoundary(t *testing.T) {
	// Place a MOVI so its 10 bytes straddle a page boundary.
	m := mem.New()
	if err := m.Map(textBase, 2*mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	start := textBase + mem.PageSize - 5 // 5 bytes in page 0, 5 in page 1
	var a isa.Asm
	a.Movi(3, 0x1122334455667788)
	a.Hlt()
	if err := m.Write(start, a.Bytes()); err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultConfig())
	c.SetPC(start)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Reg(3) != 0x1122334455667788 {
		t.Errorf("r3 = %#x", c.Reg(3))
	}
	if c.Stats().ICacheFills != 2 {
		t.Errorf("fills = %d, want 2", c.Stats().ICacheFills)
	}
}

func TestShortInstructionAtEndOfMapping(t *testing.T) {
	// A 1-byte HLT as the very last mapped byte must execute even
	// though the 10-byte decode window cannot be fully fetched.
	m := mem.New()
	if err := m.Map(textBase, mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	last := textBase + mem.PageSize - 1
	if err := m.Write(last, []byte{byte(isa.HLT)}); err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultConfig())
	c.SetPC(last)
	if _, err := c.Run(2); err != nil {
		t.Fatalf("HLT at mapping edge: %v", err)
	}
	if !c.Halted() {
		t.Error("did not halt")
	}
}

func TestWideNopStraddlingPages(t *testing.T) {
	// A 200-byte NOPN whose padding crosses into the next page: only
	// the first two bytes matter for decoding.
	m := mem.New()
	if err := m.Map(textBase, 2*mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	start := textBase + mem.PageSize - 3
	code := append(isa.EncodeNop(200), byte(isa.HLT))
	if err := m.Write(start, code); err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultConfig())
	c.SetPC(start)
	if _, err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Error("did not reach HLT after wide NOP")
	}
	if c.PC() != start+201 {
		t.Errorf("pc = %#x, want %#x", c.PC(), start+201)
	}
}

func TestPerCPUICacheIsolation(t *testing.T) {
	// Two CPUs on the same memory: flushing one leaves the other stale.
	m := mem.New()
	if err := m.Map(textBase, mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	var a isa.Asm
	a.Movi(0, 1)
	a.Hlt()
	if err := m.Write(textBase, a.Bytes()); err != nil {
		t.Fatal(err)
	}
	c1 := New(m, DefaultConfig())
	c2 := New(m, DefaultConfig())
	for _, c := range []*CPU{c1, c2} {
		c.SetPC(textBase)
		if _, err := c.Run(10); err != nil {
			t.Fatal(err)
		}
	}
	// Patch the immediate to 2; flush only c1.
	var b isa.Asm
	b.Movi(0, 2)
	if err := m.Write(textBase, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	c1.FlushICache(textBase, 10)
	c1.SetPC(textBase)
	c2.SetPC(textBase)
	if _, err := c1.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(10); err != nil {
		t.Fatal(err)
	}
	if c1.Reg(0) != 2 {
		t.Errorf("flushed CPU sees %d, want 2", c1.Reg(0))
	}
	if c2.Reg(0) != 1 {
		t.Errorf("unflushed CPU sees %d, want stale 1", c2.Reg(0))
	}
}

func TestInterruptPerturbation(t *testing.T) {
	prog := func() *CPU {
		var a isa.Asm
		a.Sti()
		a.Movi(1, 0)
		loop := a.Len()
		a.AluI(isa.ADDI, 1, 1)
		a.CmpI(1, 1000)
		jccAt := a.Len()
		a.Jcc(isa.LT, int32(loop-(jccAt+6)))
		a.Hlt()
		return newVM(t, a.Bytes())
	}
	quiet := prog()
	run(t, quiet)
	base := quiet.Cycles()

	noisy := prog()
	noisy.SetInterruptPerturbation(500, 200)
	run(t, noisy)
	if noisy.Stats().Interrupts == 0 {
		t.Fatal("no interrupts fired")
	}
	wantExtra := noisy.Stats().Interrupts * 200
	if noisy.Cycles() != base+wantExtra {
		t.Errorf("cycles = %d, want %d + %d interrupt cycles", noisy.Cycles(), base, wantExtra)
	}

	// With interrupts masked (no STI executed first) nothing fires.
	var b isa.Asm
	b.Movi(1, 0)
	b.Hlt()
	masked := newVM(t, b.Bytes())
	masked.SetInterruptPerturbation(1, 100)
	run(t, masked)
	if masked.Stats().Interrupts != 0 {
		t.Error("interrupts fired while masked")
	}
}

func TestTraceHookObservesPatchedCode(t *testing.T) {
	var a isa.Asm
	callAt := a.Len()
	a.Call(0)
	a.Hlt()
	f1 := a.Len()
	a.Movi(0, 1)
	a.Ret()
	f2 := a.Len()
	a.Movi(0, 2)
	a.Ret()
	rel, _ := isa.CallRel(textBase+uint64(callAt), textBase+uint64(f1))
	p := isa.EncodeCall(rel)
	copy(a.Bytes()[callAt:], p[:])

	c := newVM(t, a.Bytes())
	var targets []uint64
	c.Trace = func(pc uint64, in isa.Inst) {
		if in.Op == isa.CALL {
			targets = append(targets, pc+uint64(in.Len)+uint64(in.Imm))
		}
	}
	run(t, c)
	if len(targets) != 1 || targets[0] != textBase+uint64(f1) {
		t.Fatalf("targets = %#x", targets)
	}
	// Patch the call site to f2 (with flush) and re-run: the trace
	// must show the new target — unlike GDB on the real system, which
	// §7.2 reports keeps displaying the original call.
	rel2, _ := isa.CallRel(textBase+uint64(callAt), textBase+uint64(f2))
	p2 := isa.EncodeCall(rel2)
	if err := c.Mem.WriteForce(textBase+uint64(callAt), p2[:]); err != nil {
		t.Fatal(err)
	}
	c.FlushICache(textBase+uint64(callAt), 5)
	c.SetPC(textBase)
	run(t, c)
	if len(targets) != 2 || targets[1] != textBase+uint64(f2) {
		t.Fatalf("targets after patch = %#x", targets)
	}
	if c.Reg(0) != 2 {
		t.Errorf("r0 = %d, want 2", c.Reg(0))
	}
}
