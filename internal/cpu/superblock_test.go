package cpu

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// hotLoopProgram is the benchmark's hot loop: MOVI, then a 5-entry
// straight-line body ending in a backward JCC, then HLT.
func hotLoopProgram(iters int32) []byte {
	var a isa.Asm
	a.Movi(1, 0)
	loop := a.Len()
	a.AluI(isa.ADDI, 1, 1)
	a.AluI(isa.XORI, 2, 5)
	a.Alu(isa.ADD, 3, 2)
	a.CmpI(1, iters)
	jccAt := a.Len()
	a.Jcc(isa.LT, int32(loop-(jccAt+6)))
	a.Hlt()
	return a.Bytes()
}

func TestSuperblockHotLoop(t *testing.T) {
	c := newVM(t, hotLoopProgram(100))
	c.SetSuperblocks(true)
	run(t, c)
	s := c.Stats()
	if s.BlockBuilds == 0 {
		t.Error("no superblocks built on a hot loop")
	}
	if s.BlockHits < 100 {
		t.Errorf("BlockHits = %d, want >= 100 (one per loop iteration)", s.BlockHits)
	}
	if s.BlockInsts*10 < s.Instructions*9 {
		t.Errorf("BlockInsts = %d of %d instructions, want >= 90%% block-dispatched",
			s.BlockInsts, s.Instructions)
	}
	// The decode-cache invariant DecodeHits+DecodeMisses == Instructions
	// must survive block dispatch (block-retired instructions count as
	// decode hits: they execute from predecoded state).
	if s.DecodeHits+s.DecodeMisses != s.Instructions {
		t.Errorf("DecodeHits %d + DecodeMisses %d != Instructions %d",
			s.DecodeHits, s.DecodeMisses, s.Instructions)
	}
}

func TestSuperblockDisabled(t *testing.T) {
	c := newVM(t, hotLoopProgram(100))
	c.SetSuperblocks(false)
	if c.SuperblocksEnabled() {
		t.Fatal("SetSuperblocks(false) did not stick")
	}
	run(t, c)
	s := c.Stats()
	if s.BlockBuilds != 0 || s.BlockHits != 0 || s.BlockInsts != 0 || s.BlockInvalidates != 0 {
		t.Errorf("superblock stats nonzero with superblocks disabled: %+v", s)
	}
}

// TestSuperblockStateInvariance runs the same program with superblocks
// on and off and requires identical architectural outcomes: registers,
// pc, cycles and every stat that is not a host-side accelerator
// counter.
func TestSuperblockStateInvariance(t *testing.T) {
	exec := func(on bool) *CPU {
		c := newVM(t, hotLoopProgram(1000))
		c.SetSuperblocks(on)
		c.SetInterruptPerturbation(997, 13)
		c.SetInterruptsEnabled(true)
		run(t, c)
		return c
	}
	a, b := exec(true), exec(false)
	if a.Cycles() != b.Cycles() {
		t.Errorf("cycles differ: superblocks on %d, off %d", a.Cycles(), b.Cycles())
	}
	for r := 0; r < isa.NumRegs; r++ {
		if a.Reg(isa.Reg(r)) != b.Reg(isa.Reg(r)) {
			t.Errorf("r%d differs: %#x vs %#x", r, a.Reg(isa.Reg(r)), b.Reg(isa.Reg(r)))
		}
	}
	sa, sb := a.Stats(), b.Stats()
	for _, s := range []*Stats{&sa, &sb} {
		s.DecodeHits, s.DecodeMisses = 0, 0
		s.BlockBuilds, s.BlockHits, s.BlockInsts, s.BlockInvalidates = 0, 0, 0, 0
	}
	if sa != sb {
		t.Errorf("architectural stats differ:\non:  %+v\noff: %+v", sa, sb)
	}
}

// TestSuperblockRunBudgetExact pins Run's step accounting with blocks
// on: a Run bounded to fewer instructions than a block holds must
// retire exactly the budget and leave the same state as single-stepped
// execution — blocks never overshoot maxSteps.
func TestSuperblockRunBudgetExact(t *testing.T) {
	for _, budget := range []uint64{1, 2, 3, 5, 7, 11, 64} {
		chunked := newVM(t, hotLoopProgram(50))
		chunked.SetSuperblocks(true)
		stepped := newVM(t, hotLoopProgram(50))
		stepped.SetSuperblocks(false)

		var total uint64
		for !chunked.Halted() {
			n, err := chunked.Run(budget)
			if err != nil && !strings.Contains(err.Error(), "exceeded") {
				t.Fatalf("budget %d: %v", budget, err)
			}
			if n > budget {
				t.Fatalf("budget %d: Run retired %d steps", budget, n)
			}
			if !chunked.Halted() && n != budget {
				t.Fatalf("budget %d: Run retired %d steps without halting", budget, n)
			}
			total += n

			// Advance the reference by the same count and compare.
			for i := uint64(0); i < n; i++ {
				if stepped.Halted() {
					break
				}
				if err := stepped.Step(); err != nil {
					t.Fatalf("budget %d: reference step: %v", budget, err)
				}
			}
			if chunked.PC() != stepped.PC() || chunked.Cycles() != stepped.Cycles() {
				t.Fatalf("budget %d after %d steps: pc/cycles diverge: %#x/%d vs %#x/%d",
					budget, total, chunked.PC(), chunked.Cycles(), stepped.PC(), stepped.Cycles())
			}
		}
		if chunked.Stats().Instructions != total {
			t.Errorf("budget %d: Instructions %d != retired %d",
				budget, chunked.Stats().Instructions, total)
		}
	}
}

// multiPageProgram lays one tiny block on each of three consecutive
// text pages, chained by jumps: page N sets a register and jumps to
// page N+1; the last page halts.
func multiPageProgram(t *testing.T) *CPU {
	t.Helper()
	m := mem.New()
	const pages = 3
	if err := m.Map(textBase, pages*mem.PageSize, mem.RWX); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		var a isa.Asm
		a.Movi(isa.Reg(1+p), int64(p+1))
		if p == pages-1 {
			a.Hlt()
		} else {
			// JMP to the next page start: rel is from the end of the
			// 5-byte JMP.
			at := uint64(a.Len())
			a.Jmp(int32(mem.PageSize - (at + 5)))
		}
		if err := m.Write(textBase+p*mem.PageSize, a.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	c := New(m, DefaultConfig())
	c.SetSuperblocks(true)
	c.SetPC(textBase)
	return c
}

// TestFlushOverlapInvalidatesBlocksExactly drives flush ranges that
// partially overlap superblock lines — zero-length, starting mid-block,
// ending mid-line, and a wide multi-line span — and checks blocks die
// exactly with their lines: touched pages rebuild, untouched pages
// keep their blocks.
func TestFlushOverlapInvalidatesBlocksExactly(t *testing.T) {
	c := multiPageProgram(t)
	// Blocks form lazily — the first visit to a pc fills the line via
	// the slow path, the next visit chains the block — so run to the
	// steady state: two blocks on each jump page (the page-start chain
	// and the mid-page jump built on first touch), one on the halting
	// page. 5 real blocks total.
	steady := func() {
		for i := 0; i < 2; i++ {
			c.SetPC(textBase)
			if _, err := c.Run(1000); err != nil {
				t.Fatal(err)
			}
		}
	}
	steady()
	const steadyBuilds = 5
	if got := c.Stats().BlockBuilds; got != steadyBuilds {
		t.Fatalf("BlockBuilds = %d at steady state, want %d", got, steadyBuilds)
	}
	steady()
	if got := c.Stats().BlockBuilds; got != steadyBuilds {
		t.Fatalf("BlockBuilds = %d after steady re-run, want %d (no rebuild churn)",
			got, steadyBuilds)
	}
	// Per-page real-block counts the flush assertions below rely on.
	perPage := [3]uint64{2, 2, 1}

	builds, invals := uint64(steadyBuilds), uint64(0)
	check := func(what string) {
		t.Helper()
		steady()
		if s := c.Stats(); s.BlockInvalidates != invals || s.BlockBuilds != builds {
			t.Fatalf("after %s: invalidates %d builds %d, want %d/%d",
				what, s.BlockInvalidates, s.BlockBuilds, invals, builds)
		}
	}

	// Zero-length flush: a no-op, nothing invalidated, nothing rebuilt.
	c.FlushICache(textBase+10, 0)
	check("zero-length flush")

	// Flush starting mid-block on page 0 (inside the MOVI's bytes):
	// only page 0's line and blocks die; pages 1-2 keep theirs.
	c.FlushICache(textBase+5, 1)
	invals += perPage[0]
	builds += perPage[0]
	check("mid-block flush")

	// Flush ending mid-line on page 1 (one byte into it): pages 0 and 1
	// die, page 2 survives.
	c.FlushICache(textBase, mem.PageSize+1)
	invals += perPage[0] + perPage[1]
	builds += perPage[0] + perPage[1]
	check("mid-line flush")

	// Wide multi-line flush from the last byte of page 0 across
	// everything: all three lines and their blocks die.
	c.FlushICache(textBase+mem.PageSize-1, 2*mem.PageSize+2)
	invals += perPage[0] + perPage[1] + perPage[2]
	builds += perPage[0] + perPage[1] + perPage[2]
	check("wide flush")
}

// TestSuperblockStaleUntilFlush pins the icache contract under block
// dispatch: patching text without a flush keeps executing the old
// block; the flush (here partially overlapping the block's line) makes
// the patch visible.
func TestSuperblockStaleUntilFlush(t *testing.T) {
	var a isa.Asm
	a.Movi(1, 111)
	a.Hlt()
	c := newVM(t, a.Bytes())
	c.SetSuperblocks(true)
	run(t, c)
	if c.Reg(1) != 111 {
		t.Fatalf("r1 = %d, want 111", c.Reg(1))
	}

	var b isa.Asm
	b.Movi(1, 222)
	if err := c.Mem.WriteForce(textBase, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	c.SetPC(textBase)
	run(t, c)
	if c.Reg(1) != 111 {
		t.Errorf("r1 = %d before flush, want stale 111", c.Reg(1))
	}

	c.FlushICache(textBase, 1) // overlaps the block's first byte only
	c.SetPC(textBase)
	run(t, c)
	if c.Reg(1) != 222 {
		t.Errorf("r1 = %d after flush, want 222", c.Reg(1))
	}
}

// TestSuperblockBRKFallsToSlowPath plants a BRK over block text (the
// poke protocol's phase 1: write the trap byte, then flush) and
// requires the next Run to take the trap — the stale block must not
// keep executing, and the rejected pc must not grow a block.
func TestSuperblockBRKFallsToSlowPath(t *testing.T) {
	c := newVM(t, hotLoopProgram(100))
	c.SetSuperblocks(true)
	run(t, c)
	if c.Stats().BlockBuilds == 0 {
		t.Fatal("no blocks built")
	}

	if err := c.Mem.WriteForce(textBase, []byte{byte(isa.BRK)}); err != nil {
		t.Fatal(err)
	}
	c.FlushICache(textBase, 1)
	c.SetPC(textBase)
	_, err := c.Run(1000)
	trap := AsTrap(err)
	if trap == nil {
		t.Fatalf("Run over BRK: got %v, want TrapFault", err)
	}
	if trap.PC != textBase {
		t.Errorf("trap at %#x, want %#x", trap.PC, textBase)
	}
	if got := c.Stats().Traps; got != 1 {
		t.Errorf("Traps = %d, want 1", got)
	}
}

// TestSuperblockToggleMidRun flips the knob between runs on one CPU:
// blocks built while enabled are reused on re-enable and ignored while
// disabled, with identical execution results throughout.
func TestSuperblockToggleMidRun(t *testing.T) {
	c := newVM(t, hotLoopProgram(100))
	c.SetSuperblocks(true)
	rerun := func() {
		c.SetPC(textBase)
		c.SetReg(2, 0)
		c.SetReg(3, 0)
		run(t, c)
	}
	rerun()
	// A second run reaches block steady state (the entry pc's block
	// forms only once its line is resident).
	rerun()
	builds := c.Stats().BlockBuilds
	r3 := c.Reg(3)

	c.SetSuperblocks(false)
	rerun()
	if c.Reg(3) != r3 {
		t.Errorf("r3 = %d with blocks off, want %d", c.Reg(3), r3)
	}

	c.SetSuperblocks(true)
	rerun()
	if c.Reg(3) != r3 {
		t.Errorf("r3 = %d after re-enable, want %d", c.Reg(3), r3)
	}
	if c.Stats().BlockBuilds != builds {
		t.Errorf("BlockBuilds = %d after re-enable, want %d (blocks reused, not rebuilt)",
			c.Stats().BlockBuilds, builds)
	}
}
