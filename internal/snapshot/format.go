// The snapshot container and payload wire format.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "MVSNAP01"
//	8       4     format version (currently 1)
//	12      4     flags (must be zero)
//	16      8     payload length
//	24      n     payload
//	24+n    4     CRC-32 (IEEE) of the payload
//
// The payload is a flat, deterministic serialization of the machine
// state: no maps are walked in iteration order (every exporter sorts),
// no pointers, no timestamps. Two snapshots of identical machine state
// are byte-equal, which is what makes Digest — the SHA-256 of the
// payload — a meaningful identity for a simulated machine instant.
//
// Decoding is defensive end to end: the CRC is verified before any
// parsing, every length is bounds-checked against the remaining
// payload, and a corrupt or truncated file yields an error, never a
// panic or a silently wrong machine (FuzzSnapshotDecode holds it to
// that).

package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
)

// Version is the current snapshot format version.
const Version = 1

var magic = [8]byte{'M', 'V', 'S', 'N', 'A', 'P', '0', '1'}

// headerLen is the fixed container prefix before the payload.
const headerLen = 8 + 4 + 4 + 8

// maxPayload bounds a plausible payload; anything larger is corruption.
const maxPayload = 1 << 30

// seal wraps a payload in the container: header, payload, CRC.
func seal(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+4)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, 0) // flags
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// unseal validates the container and returns the payload.
func unseal(data []byte) ([]byte, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("snapshot: truncated container (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:8])
	}
	ver := binary.LittleEndian.Uint32(data[8:12])
	if ver != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", ver, Version)
	}
	if flags := binary.LittleEndian.Uint32(data[12:16]); flags != 0 {
		return nil, fmt.Errorf("snapshot: unknown flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(data[16:24])
	if n > maxPayload {
		return nil, fmt.Errorf("snapshot: implausible payload length %d", n)
	}
	if uint64(len(data)) != headerLen+n+4 {
		return nil, fmt.Errorf("snapshot: container holds %d bytes, header promises %d",
			len(data), headerLen+n+4)
	}
	payload := data[headerLen : headerLen+n]
	want := binary.LittleEndian.Uint32(data[headerLen+n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("snapshot: CRC mismatch (file corrupt): %#x != %#x", got, want)
	}
	return payload, nil
}

// Digest validates a serialized snapshot and returns the hex SHA-256
// of its payload — the stable identity of the captured machine state.
func Digest(data []byte) (string, error) {
	payload, err := unseal(data)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// writer builds a payload. Append-only, infallible.
type writer struct {
	b []byte
}

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(v string) { w.bytes([]byte(v)) }

// reader parses a payload with sticky-error bounds checking: once any
// read runs past the end, every subsequent read returns zero values
// and the first error is reported — malformed input can never index
// out of range.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated payload at offset %d (need %d of %d remaining)", r.off, n, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if uint64(n) > uint64(len(r.b)) {
		r.fail("implausible byte-slice length %d", n)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) str() string { return string(r.bytes()) }

// count reads a collection length and sanity-bounds it by the minimum
// encoded size of one element, so a corrupt count cannot drive a huge
// allocation.
func (r *reader) count(elemMin int) int {
	n := r.u32()
	if elemMin > 0 && uint64(n)*uint64(elemMin) > uint64(len(r.b)) {
		r.fail("implausible element count %d", n)
		return 0
	}
	return int(n)
}
