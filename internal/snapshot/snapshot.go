// Package snapshot serializes complete simulated-machine state —
// memory pages with protections and write-versions, per-CPU
// architectural and microarchitectural state (including resident
// icache lines and their derived-cache offsets), the console, and the
// runtime's binding/deferred/span state — into a versioned,
// CRC-protected binary container.
//
// The format is deterministic: capturing the same simulated instant
// twice yields byte-identical files, so Digest (SHA-256 of the
// payload) identifies a machine state. Restoring a snapshot and
// running to completion retires bit-identical cycles, statistics and
// state reports as the uninterrupted run — the property the
// checkpoint/restore difftests pin and the time-travel debugger
// (cmd/mvdbg) is built on.
package snapshot

import (
	"crypto/sha256"
	"fmt"
	"os"
	"reflect"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Snapshot is the complete state of a simulated machine at one
// instant, plus the identity of the image it was loaded from.
type Snapshot struct {
	// SimCycles is the primary CPU's cycle counter at capture — the
	// simulated instant this snapshot names.
	SimCycles uint64

	// ImageSum ties the snapshot to the loaded image (entry point,
	// halt stub, and every segment's address, protection and bytes).
	// Apply refuses a snapshot taken from a different image.
	ImageSum [32]byte

	Console  []byte
	Pages    []mem.PageState
	MemStats mem.Stats
	CPUs     []cpu.State // primary first, AddCPU threads in creation order

	// Runtime is nil when the snapshot was captured without a
	// multiverse runtime attached.
	Runtime *core.RuntimeState
}

// ImageSum computes the image-identity hash Capture embeds and Apply
// checks.
func ImageSum(img *link.Image) [32]byte {
	h := sha256.New()
	var w writer
	w.u64(img.Entry)
	w.u64(img.HaltAddr)
	w.u32(uint32(len(img.Segments)))
	for _, seg := range img.Segments {
		w.u64(seg.Addr)
		w.u8(uint8(seg.Prot))
		w.bytes(seg.Data)
	}
	h.Write(w.b)
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// ErrNotQuiesced is the typed, retryable error Capture returns when
// the runtime is inside an open commit/revert transaction. Commits
// are atomic — there is no observable mid-commit state — but the
// condition clears as soon as the operation finishes, so supervisors
// should match it with errors.Is and retry the capture rather than
// treat the machine as corrupt.
var ErrNotQuiesced = core.ErrNotQuiesced

// Capture exports the machine's complete state. rt may be nil when no
// runtime is attached; when present it must be commit-quiesced —
// capturing inside an open transaction fails with ErrNotQuiesced.
func Capture(m *machine.Machine, rt *core.Runtime) (*Snapshot, error) {
	s := &Snapshot{
		SimCycles: m.CPU.Cycles(),
		ImageSum:  ImageSum(m.Image),
		Console:   append([]byte(nil), m.Console()...),
		Pages:     m.Mem.ExportPages(),
		MemStats:  m.Mem.Stats,
	}
	for _, c := range m.CPUs() {
		s.CPUs = append(s.CPUs, c.ExportState())
	}
	if rt != nil {
		rs, err := rt.ExportState()
		if err != nil {
			return nil, err
		}
		s.Runtime = &rs
	}
	return s, nil
}

// Apply restores a snapshot onto a machine freshly constructed from
// the same image (and, when the snapshot carries runtime state, a
// runtime freshly constructed against that machine). Secondary
// hardware threads are added as needed; the address space is replaced
// wholesale; the runtime's binding state is imported last so its
// per-site byte windows are re-read from the restored memory.
func Apply(s *Snapshot, m *machine.Machine, rt *core.Runtime) error {
	if got := ImageSum(m.Image); got != s.ImageSum {
		return fmt.Errorf("snapshot: taken from a different image (segment/entry hash mismatch)")
	}
	if len(s.CPUs) == 0 {
		return fmt.Errorf("snapshot: no CPU state")
	}
	if (s.Runtime != nil) != (rt != nil) {
		if rt == nil {
			return fmt.Errorf("snapshot: carries runtime state but no runtime was supplied")
		}
		return fmt.Errorf("snapshot: carries no runtime state but a runtime was supplied")
	}
	for len(m.CPUs()) < len(s.CPUs) {
		if _, err := m.AddCPU(); err != nil {
			return fmt.Errorf("snapshot: adding hardware thread: %w", err)
		}
	}
	if len(m.CPUs()) != len(s.CPUs) {
		return fmt.Errorf("snapshot: machine has %d hardware threads, snapshot %d", len(m.CPUs()), len(s.CPUs))
	}
	if err := m.Mem.ImportPages(s.Pages); err != nil {
		return err
	}
	m.Mem.SetStats(s.MemStats)
	for i, c := range m.CPUs() {
		if err := c.ImportState(s.CPUs[i]); err != nil {
			return fmt.Errorf("snapshot: cpu %d: %w", i, err)
		}
	}
	m.RestoreConsole(s.Console)
	if rt != nil {
		if err := rt.ImportState(*s.Runtime); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the snapshot into the versioned container.
func (s *Snapshot) Encode() []byte {
	var w writer
	w.u64(s.SimCycles)
	w.b = append(w.b, s.ImageSum[:]...)
	w.bytes(s.Console)
	w.u32(uint32(len(s.Pages)))
	for i := range s.Pages {
		p := &s.Pages[i]
		w.u64(p.PN)
		w.u8(uint8(p.Prot))
		w.u64(p.Version)
		w.bytes(p.Data)
	}
	putCounters(&w, s.MemStats)
	w.u32(uint32(len(s.CPUs)))
	for i := range s.CPUs {
		putCPU(&w, &s.CPUs[i])
	}
	if s.Runtime == nil {
		w.u8(0)
	} else {
		w.u8(1)
		putRuntime(&w, s.Runtime)
	}
	return seal(w.b)
}

// Decode validates the container (magic, version, length, CRC) and
// parses the payload. Corrupt or truncated input yields an error,
// never a panic.
func Decode(data []byte) (*Snapshot, error) {
	payload, err := unseal(data)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	s := &Snapshot{}
	s.SimCycles = r.u64()
	copy(s.ImageSum[:], r.take(32))
	s.Console = r.bytes()
	for i, n := 0, r.count(8+1+8+4); i < n && r.err == nil; i++ {
		p := mem.PageState{PN: r.u64(), Prot: mem.Prot(r.u8()), Version: r.u64(), Data: r.bytes()}
		s.Pages = append(s.Pages, p)
	}
	getCounters(r, &s.MemStats)
	for i, n := 0, r.count(8); i < n && r.err == nil; i++ {
		var c cpu.State
		getCPU(r, &c)
		s.CPUs = append(s.CPUs, c)
	}
	if r.u8() != 0 {
		var rs core.RuntimeState
		getRuntime(r, &rs)
		s.Runtime = &rs
	}
	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes after snapshot body", len(r.b)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

func putCPU(w *writer, s *cpu.State) {
	w.u32(uint32(len(s.Regs)))
	for _, v := range s.Regs {
		w.u64(v)
	}
	w.u64(s.PC)
	w.u64(s.Cycles)
	putBool(w, s.Halted)
	w.u64(uint64(s.CmpA))
	w.u64(uint64(s.CmpB))
	w.u32(uint32(len(s.BTB)))
	for _, e := range s.BTB {
		putBool(w, e.Valid)
		w.u64(e.Tag)
		w.u8(e.Counter)
		w.u64(e.Target)
	}
	w.u32(uint32(len(s.RAS)))
	for _, v := range s.RAS {
		w.u64(v)
	}
	w.u64(uint64(s.RASN))
	putBool(w, s.DecodeCache)
	putBool(w, s.Superblocks)
	w.u8(s.Mode)
	putBool(w, s.IntrOn)
	w.u64(s.IntrPeriod)
	w.u64(s.IntrCost)
	w.u64(s.NextIntr)
	w.u32(uint32(len(s.ICache)))
	for i := range s.ICache {
		ls := &s.ICache[i]
		w.u64(ls.PN)
		w.u64(ls.Version)
		w.bytes(ls.Bytes)
		putU16s(w, ls.Decoded)
		putU16s(w, ls.SBHeads)
		putU16s(w, ls.SBRject)
	}
	putCounters(w, s.Stats)
}

func getCPU(r *reader, s *cpu.State) {
	if n := r.count(8); n != len(s.Regs) && r.err == nil {
		r.fail("cpu state has %d registers, want %d", n, len(s.Regs))
	}
	if r.err != nil {
		return
	}
	for i := range s.Regs {
		s.Regs[i] = r.u64()
	}
	s.PC = r.u64()
	s.Cycles = r.u64()
	s.Halted = getBool(r)
	s.CmpA = int64(r.u64())
	s.CmpB = int64(r.u64())
	for i, n := 0, r.count(1+8+1+8); i < n && r.err == nil; i++ {
		s.BTB = append(s.BTB, cpu.BTBState{Valid: getBool(r), Tag: r.u64(), Counter: r.u8(), Target: r.u64()})
	}
	for i, n := 0, r.count(8); i < n && r.err == nil; i++ {
		s.RAS = append(s.RAS, r.u64())
	}
	s.RASN = int(r.u64())
	s.DecodeCache = getBool(r)
	s.Superblocks = getBool(r)
	s.Mode = r.u8()
	s.IntrOn = getBool(r)
	s.IntrPeriod = r.u64()
	s.IntrCost = r.u64()
	s.NextIntr = r.u64()
	for i, n := 0, r.count(8+8+4); i < n && r.err == nil; i++ {
		ls := cpu.ICLineState{PN: r.u64(), Version: r.u64(), Bytes: r.bytes()}
		ls.Decoded = getU16s(r)
		ls.SBHeads = getU16s(r)
		ls.SBRject = getU16s(r)
		s.ICache = append(s.ICache, ls)
	}
	getCounters(r, &s.Stats)
}

func putRuntime(w *writer, s *core.RuntimeState) {
	w.u32(uint32(len(s.Funcs)))
	for i := range s.Funcs {
		f := &s.Funcs[i]
		w.str(f.Name)
		w.u64(f.Generic)
		w.u64(f.CommittedAddr)
		putBool(w, f.PrologueOn)
		w.bytes(f.SavedPrologue[:])
	}
	w.u32(uint32(len(s.FnPtrs)))
	for _, p := range s.FnPtrs {
		w.u64(p.Addr)
		putBool(w, p.Committed)
		w.u64(p.Target)
	}
	w.u32(uint32(len(s.Deferred)))
	for _, d := range s.Deferred {
		w.str(d.Name)
		w.u8(d.Kind)
	}
	putCounters(w, s.Stats)
	w.u64(s.OpSeq)
}

func getRuntime(r *reader, s *core.RuntimeState) {
	for i, n := 0, r.count(4+8+8+1+4); i < n && r.err == nil; i++ {
		f := core.FuncBindingState{Name: r.str(), Generic: r.u64(), CommittedAddr: r.u64()}
		f.PrologueOn = getBool(r)
		saved := r.bytes()
		if r.err == nil && len(saved) != len(f.SavedPrologue) {
			r.fail("saved prologue holds %d bytes, want %d", len(saved), len(f.SavedPrologue))
		}
		copy(f.SavedPrologue[:], saved)
		s.Funcs = append(s.Funcs, f)
	}
	for i, n := 0, r.count(8+1+8); i < n && r.err == nil; i++ {
		s.FnPtrs = append(s.FnPtrs, core.FnPtrBindingState{Addr: r.u64(), Committed: getBool(r), Target: r.u64()})
	}
	for i, n := 0, r.count(4+1); i < n && r.err == nil; i++ {
		s.Deferred = append(s.Deferred, core.DeferredOpState{Name: r.str(), Kind: r.u8()})
	}
	getCounters(r, &s.Stats)
	s.OpSeq = r.u64()
}

func putU16s(w *writer, v []uint16) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u16(x)
	}
}

func getU16s(r *reader) []uint16 {
	n := r.count(2)
	if n == 0 {
		return nil
	}
	out := make([]uint16, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.u16())
	}
	return out
}

func putBool(w *writer, v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func getBool(r *reader) bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("boolean byte out of range at offset %d", r.off-1)
		return false
	}
}

// putCounters serializes a flat statistics struct (all int or uint64
// fields) by reflection, field-count-prefixed: a counter added to
// cpu.Stats, mem.Stats or core.RuntimeStats is picked up
// automatically, and a reader built for a different field count
// reports format drift instead of silently misparsing.
func putCounters(w *writer, v any) {
	rv := reflect.ValueOf(v)
	w.u32(uint32(rv.NumField()))
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			w.u64(f.Uint())
		case reflect.Int:
			w.u64(uint64(f.Int()))
		default:
			panic(fmt.Sprintf("snapshot: %s.%s is %s, counters must be int or uint64",
				rv.Type(), rv.Type().Field(i).Name, f.Kind()))
		}
	}
}

func getCounters(r *reader, out any) {
	rv := reflect.ValueOf(out).Elem()
	if n := r.count(8); n != rv.NumField() && r.err == nil {
		r.fail("%s block has %d counters, want %d (format drift)", rv.Type(), n, rv.NumField())
	}
	if r.err != nil {
		return
	}
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		v := r.u64()
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(v)
		case reflect.Int:
			f.SetInt(int64(v))
		}
	}
}

// WriteFile encodes the snapshot to path.
func WriteFile(path string, s *Snapshot) error {
	return os.WriteFile(path, s.Encode(), 0o644)
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
