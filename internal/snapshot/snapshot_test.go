package snapshot

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// testSrc exercises every serialized subsystem: two switches and a
// multiversed function (runtime binding state), globals (data pages),
// and a loop long enough to warm the predictors, decode cache and
// superblocks.
const testSrc = `
	multiverse int mode;
	multiverse int verbose;
	long work;
	long extra;
	multiverse void step(void) {
		if (mode) {
			work += 3;
			if (verbose) { extra++; }
		} else {
			work += 1;
		}
	}
	long spin(long n) {
		long i;
		for (i = 0; i < n; i++) { step(); }
		return work;
	}
	long total(void) { return work + extra; }
`

type sys struct {
	m  *machine.Machine
	rt *core.Runtime
}

// buildPair constructs two machine+runtime pairs from one image — the
// restore situation: same image, fresh state.
func buildPair(t *testing.T) (*sys, *sys) {
	t.Helper()
	img, _, err := core.BuildImage(core.GenOptions{}, core.Source{Name: "snap.mvc", Text: testSrc})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *sys {
		m, err := machine.New(img)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.NewRuntime(img, &core.UserPlatform{M: m})
		if err != nil {
			t.Fatal(err)
		}
		return &sys{m: m, rt: rt}
	}
	return mk(), mk()
}

func (s *sys) setSwitch(t *testing.T, name string, v int64) {
	t.Helper()
	if err := s.m.WriteGlobal(name, 4, uint64(v)); err != nil {
		t.Fatal(err)
	}
}

func (s *sys) call(t *testing.T, name string, args ...uint64) uint64 {
	t.Helper()
	v, err := s.m.CallNamed(name, args...)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return v
}

// warm runs the program into an interesting state: committed variant,
// warmed caches, non-trivial console.
func (s *sys) warm(t *testing.T) {
	t.Helper()
	s.setSwitch(t, "mode", 1)
	s.setSwitch(t, "verbose", 1)
	if _, err := s.rt.Commit(); err != nil {
		t.Fatal(err)
	}
	s.call(t, "spin", 500)
	s.m.RestoreConsole([]byte("console so far"))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a, _ := buildPair(t)
	a.warm(t)
	snap, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	data := snap.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("decode round-trip diverged:\nexported: %+v\ndecoded:  %+v", snap, got)
	}
	// Decoding must be canonical: re-encoding reproduces the input.
	if !bytes.Equal(got.Encode(), data) {
		t.Fatal("re-encode of decoded snapshot differs from original bytes")
	}
}

func TestDigestNamesMachineState(t *testing.T) {
	a, _ := buildPair(t)
	a.warm(t)
	s1, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := s1.Encode(), s2.Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("two captures of the same instant are not byte-equal")
	}
	d1, err := Digest(e1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not hex SHA-256", d1)
	}
	a.call(t, "spin", 1)
	s3, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := Digest(s3.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d3 {
		t.Fatal("digest unchanged after executing instructions")
	}
}

// TestApplyResumesBitIdentical is the package-local restore difftest:
// state captured between calls, applied to a fresh machine from the
// same image, and both continued identically must agree on every
// observable — cycles, statistics, state report, console, results.
// (The full mid-call RunUntil version over E1/E4 lives in
// internal/difftest.)
func TestApplyResumesBitIdentical(t *testing.T) {
	a, b := buildPair(t)
	a.warm(t)
	snap, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}

	if err := Apply(snap, b.m, b.rt); err != nil {
		t.Fatal(err)
	}

	// Continue both runs through the same tail, including a revert and
	// recommit so the runtime layer keeps working after restore.
	tail := func(s *sys) (uint64, uint64) {
		s.call(t, "spin", 100)
		if err := s.rt.Revert(); err != nil {
			t.Fatal(err)
		}
		s.setSwitch(t, "verbose", 0)
		if _, err := s.rt.Commit(); err != nil {
			t.Fatal(err)
		}
		r1 := s.call(t, "spin", 50)
		r2 := s.call(t, "total")
		return r1, r2
	}
	a1, a2 := tail(a)
	b1, b2 := tail(b)

	if a1 != b1 || a2 != b2 {
		t.Fatalf("results diverged: uninterrupted (%d,%d) restored (%d,%d)", a1, a2, b1, b2)
	}
	if ac, bc := a.m.CPU.Cycles(), b.m.CPU.Cycles(); ac != bc {
		t.Fatalf("cycles diverged: uninterrupted %d restored %d", ac, bc)
	}
	if as, bs := a.m.TotalStats(), b.m.TotalStats(); as != bs {
		t.Fatalf("stats diverged:\nuninterrupted %+v\nrestored      %+v", as, bs)
	}
	if ar, br := a.rt.StateReport(), b.rt.StateReport(); ar != br {
		t.Fatalf("state reports diverged:\nuninterrupted:\n%s\nrestored:\n%s", ar, br)
	}
	if !bytes.Equal(a.m.Console(), b.m.Console()) {
		t.Fatalf("console diverged: %q vs %q", a.m.Console(), b.m.Console())
	}

	// The final machine states must agree down to the digest.
	sa, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Capture(b.m, b.rt)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := Digest(sa.Encode())
	db, _ := Digest(sb.Encode())
	if da != db {
		t.Fatalf("final digests diverged: %s vs %s", da, db)
	}
}

func TestApplyRejectsDifferentImage(t *testing.T) {
	a, _ := buildPair(t)
	a.warm(t)
	snap, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "other.mvc", Text: `long f(void) { return 7; }`})
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(snap, other.Machine, other.RT); err == nil {
		t.Fatal("applied a snapshot to a different image")
	}
}

func TestApplyRuntimePresenceMustMatch(t *testing.T) {
	a, b := buildPair(t)
	a.warm(t)
	snap, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(snap, b.m, nil); err == nil {
		t.Fatal("applied runtime-bearing snapshot without a runtime")
	}
	bare, err := Capture(a.m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(bare, b.m, b.rt); err == nil {
		t.Fatal("applied runtime-free snapshot onto a runtime")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a, _ := buildPair(t)
	a.warm(t)
	snap, err := Capture(a.m, a.rt)
	if err != nil {
		t.Fatal(err)
	}
	data := snap.Encode()

	if _, err := Decode(nil); err == nil {
		t.Error("decoded empty input")
	}
	// Every truncation must fail cleanly: the container length check
	// catches all of them before the payload is even parsed.
	for _, n := range []int{1, 7, 8, headerLen - 1, headerLen, headerLen + 4, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("decoded %d-byte truncation", n)
		}
	}
	// A flipped bit anywhere in the payload trips the CRC; in the
	// header it trips magic/version/length validation.
	for _, off := range []int{0, 9, 13, 17, headerLen, headerLen + 100, len(data) / 2, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("decoded snapshot with byte %d corrupted", off)
		}
	}
	// Trailing garbage changes the container length.
	if _, err := Decode(append(append([]byte(nil), data...), 0xee)); err == nil {
		t.Error("decoded snapshot with trailing garbage")
	}
}

func FuzzSnapshotDecode(f *testing.F) {
	s, err := core.BuildSystem(core.GenOptions{}, nil, core.Source{Name: "snap.mvc", Text: testSrc})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Machine.CallNamed("spin", 50); err != nil {
		f.Fatal(err)
	}
	snap, err := Capture(s.Machine, s.RT)
	if err != nil {
		f.Fatal(err)
	}
	valid := snap.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("MVSNAP01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must never panic, and anything it accepts must be
		// canonical: re-encoding reproduces the input byte-for-byte.
		got, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Encode(), data) {
			t.Fatal("accepted a non-canonical encoding")
		}
	})
}

// TestCaptureMidCommitNotQuiesced drives a real mid-commit instant —
// a poke-step fault point hands control to the harness between two
// phases of the breakpoint protocol, while the commit transaction is
// open — and pins that Capture fails with the typed, retryable
// ErrNotQuiesced, and that the capture succeeds once the commit
// finishes.
func TestCaptureMidCommitNotQuiesced(t *testing.T) {
	a, _ := buildPair(t)
	a.rt.SetCommitOptions(core.CommitOptions{Mode: core.ModeTextPoke})
	plan := faultinject.Exact(faultinject.Point{Kind: faultinject.KindPokeStep, Op: 0})
	var midErr error
	var fired int
	plan.OnPokeStep = func(phase int, addr, n uint64) {
		if fired == 0 {
			_, midErr = Capture(a.m, a.rt)
		}
		fired++
	}
	plan.Attach(a.m)
	defer faultinject.Detach(a.m)

	a.setSwitch(t, "mode", 1)
	if _, err := a.rt.Commit(); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("poke-step point never fired; commit did not go through the breakpoint protocol")
	}
	if !errors.Is(midErr, ErrNotQuiesced) {
		t.Fatalf("mid-commit Capture = %v, want errors.Is ErrNotQuiesced", midErr)
	}
	if _, err := Capture(a.m, a.rt); err != nil {
		t.Fatalf("post-commit Capture = %v, want success once quiesced", err)
	}
}
