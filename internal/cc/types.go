package cc

import (
	"fmt"
	"strings"
)

// TypeKind classifies MVC types.
type TypeKind int

// Type kinds.
const (
	KindVoid TypeKind = iota
	KindBool
	KindInt  // sized signed/unsigned integer
	KindEnum // named enumeration; represented as i32
	KindPtr
	KindArray // global arrays only
	KindFunc
)

// Type describes an MVC type. Types are immutable after construction;
// equal types may or may not be pointer-identical, use Same.
type Type struct {
	Kind     TypeKind
	Size     int  // byte size for Bool/Int/Enum
	Signed   bool // for Int
	Elem     *Type
	ArrayLen int64
	Ret      *Type
	Params   []*Type
	EnumName string
}

// Predeclared types.
var (
	TypeVoid   = &Type{Kind: KindVoid}
	TypeBool   = &Type{Kind: KindBool, Size: 1}
	TypeChar   = &Type{Kind: KindInt, Size: 1, Signed: true}
	TypeUChar  = &Type{Kind: KindInt, Size: 1}
	TypeShort  = &Type{Kind: KindInt, Size: 2, Signed: true}
	TypeUShort = &Type{Kind: KindInt, Size: 2}
	TypeInt    = &Type{Kind: KindInt, Size: 4, Signed: true}
	TypeUInt   = &Type{Kind: KindInt, Size: 4}
	TypeLong   = &Type{Kind: KindInt, Size: 8, Signed: true}
	TypeULong  = &Type{Kind: KindInt, Size: 8}
)

// PointerTo returns the pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: KindPtr, Size: 8, Elem: elem} }

// ArrayOf returns the array type of n elems.
func ArrayOf(elem *Type, n int64) *Type {
	return &Type{Kind: KindArray, Elem: elem, ArrayLen: n}
}

// FuncType returns a function type.
func FuncType(ret *Type, params []*Type) *Type {
	return &Type{Kind: KindFunc, Ret: ret, Params: params}
}

// EnumType returns the named enum type (i32 representation).
func EnumType(name string) *Type {
	return &Type{Kind: KindEnum, Size: 4, Signed: true, EnumName: name}
}

// IsInteger reports whether t is usable in integer arithmetic (bool,
// int, enum).
func (t *Type) IsInteger() bool {
	return t.Kind == KindBool || t.Kind == KindInt || t.Kind == KindEnum
}

// IsScalar reports whether t can appear in conditions and comparisons.
func (t *Type) IsScalar() bool { return t.IsInteger() || t.Kind == KindPtr }

// ByteSize returns the storage size of a value of type t.
func (t *Type) ByteSize() int64 {
	switch t.Kind {
	case KindBool, KindInt, KindEnum:
		return int64(t.Size)
	case KindPtr:
		return 8
	case KindArray:
		return t.Elem.ByteSize() * t.ArrayLen
	case KindFunc:
		return 8 // function designators decay to pointers
	}
	return 0
}

// IsSigned reports whether loads of t sign-extend.
func (t *Type) IsSigned() bool {
	switch t.Kind {
	case KindInt, KindEnum:
		return t.Signed || t.Kind == KindEnum
	}
	return false
}

// Same reports structural type equality.
func (t *Type) Same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindVoid, KindBool:
		return true
	case KindInt:
		return t.Size == o.Size && t.Signed == o.Signed
	case KindEnum:
		return t.EnumName == o.EnumName
	case KindPtr:
		return t.Elem.Same(o.Elem)
	case KindArray:
		return t.ArrayLen == o.ArrayLen && t.Elem.Same(o.Elem)
	case KindFunc:
		if !t.Ret.Same(o.Ret) || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Same(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindBool:
		return "bool"
	case KindInt:
		base := map[int]string{1: "char", 2: "short", 4: "int", 8: "long"}[t.Size]
		if !t.Signed {
			return "u" + base
		}
		return base
	case KindEnum:
		return "enum " + t.EnumName
	case KindPtr:
		return t.Elem.String() + "*"
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case KindFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "<bad type>"
}

// Common returns the usual-arithmetic-conversion result of two integer
// types: the wider wins; at equal width unsigned wins. Everything is
// computed in 64-bit registers; the common type decides signedness of
// comparisons and of / and %.
func Common(a, b *Type) *Type {
	pa, pb := promote(a), promote(b)
	wa, wb := pa.ByteSize(), pb.ByteSize()
	var w int64
	var signed bool
	switch {
	case wa == wb:
		w = wa
		signed = pa.Signed && pb.Signed
	case wa > wb:
		w, signed = wa, pa.Signed
	default:
		w, signed = wb, pb.Signed
	}
	if w == 4 {
		if signed {
			return TypeInt
		}
		return TypeUInt
	}
	if signed {
		return TypeLong
	}
	return TypeULong
}

// promote applies the C integer promotions: every type narrower than
// int (and bool and enums) becomes signed int.
func promote(t *Type) *Type {
	if t.Kind == KindBool || t.Kind == KindEnum || t.ByteSize() < 4 {
		return TypeInt
	}
	if t.ByteSize() == 4 {
		if t.IsSigned() {
			return TypeInt
		}
		return TypeUInt
	}
	if t.IsSigned() {
		return TypeLong
	}
	return TypeULong
}
