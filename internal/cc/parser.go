package cc

// Parser builds the AST for one translation unit.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse parses MVC source into an (unchecked) unit. Call Check on the
// result before using it.
func Parse(file, src string) (*Unit, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	u := &Unit{
		File:    file,
		Enums:   make(map[string]*EnumDecl),
		Globals: make(map[string]*VarSym),
	}
	for !p.atEOF() {
		d, err := p.parseTopLevel(u)
		if err != nil {
			return nil, err
		}
		if d != nil {
			u.Decls = append(u.Decls, d)
		}
	}
	return u, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekIs(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *Parser) accept(text string) bool {
	if p.peekIs(text) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(text string) (Token, error) {
	if !p.peekIs(text) {
		return Token{}, errf(p.cur().Pos, "expected %q, found %s", text, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, errf(p.cur().Pos, "expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

// typeKeywords maps base type keywords to types.
var typeKeywords = map[string]*Type{
	"void": TypeVoid, "bool": TypeBool,
	"char": TypeChar, "short": TypeShort, "int": TypeInt, "long": TypeLong,
	"uchar": TypeUChar, "ushort": TypeUShort, "uint": TypeUInt, "ulong": TypeULong,
}

// startsType reports whether the current token begins a type specifier.
func (p *Parser) startsType() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	if _, ok := typeKeywords[t.Text]; ok {
		return true
	}
	return t.Text == "enum"
}

// parseTypeSpec parses a base type: a type keyword or "enum Name".
func (p *Parser) parseTypeSpec() (*Type, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		if base, ok := typeKeywords[t.Text]; ok {
			p.next()
			return base, nil
		}
		if t.Text == "enum" {
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return EnumType(name.Text), nil
		}
	}
	return nil, errf(t.Pos, "expected type, found %s", t)
}

// parseStars wraps base in pointer types for each '*'.
func (p *Parser) parseStars(base *Type) *Type {
	for p.accept("*") {
		base = PointerTo(base)
	}
	return base
}

// attrs collects declaration attributes.
type attrs struct {
	multiverse bool
	domain     []int64
	bindOnly   []string // multiverse(bind(a, b)): partial specialization
	static     bool
	extern     bool
	noscratch  bool
}

func (p *Parser) parseAttrs() (attrs, error) {
	var a attrs
	for {
		switch {
		case p.peekIs("multiverse"):
			p.next()
			a.multiverse = true
			if p.accept("(") {
				// Either a value domain (numbers, for variables) or a
				// bind(...) switch subset (identifiers, for functions).
				if p.cur().Kind == TokIdent && p.cur().Text == "bind" {
					p.next()
					if _, err := p.expect("("); err != nil {
						return a, err
					}
					for {
						id, err := p.expectIdent()
						if err != nil {
							return a, err
						}
						a.bindOnly = append(a.bindOnly, id.Text)
						if !p.accept(",") {
							break
						}
					}
					if _, err := p.expect(")"); err != nil {
						return a, err
					}
				} else {
					for {
						neg := p.accept("-")
						t := p.cur()
						if t.Kind != TokNumber {
							return a, errf(t.Pos, "expected domain value, found %s", t)
						}
						p.next()
						v := t.Num
						if neg {
							v = -v
						}
						a.domain = append(a.domain, v)
						if !p.accept(",") {
							break
						}
					}
				}
				if _, err := p.expect(")"); err != nil {
					return a, err
				}
			}
		case p.peekIs("static"):
			p.next()
			a.static = true
		case p.peekIs("extern"):
			p.next()
			a.extern = true
		case p.peekIs("noscratch"):
			p.next()
			a.noscratch = true
		default:
			return a, nil
		}
	}
}

func (p *Parser) parseTopLevel(u *Unit) (Node, error) {
	if p.accept(";") {
		return nil, nil
	}
	// Enum declaration: enum Name { ... };
	if p.peekIs("enum") && p.toks[p.pos+1].Kind == TokIdent &&
		p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
		return p.parseEnumDecl(u)
	}

	a, err := p.parseAttrs()
	if err != nil {
		return nil, err
	}
	startPos := p.cur().Pos
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	ty := p.parseStars(base)

	// Function-pointer declarator: T (*name)(params)
	if p.peekIs("(") {
		p.next()
		if _, err := p.expect("*"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		params, _, err := p.parseParamTypes()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		sym := &VarSym{
			Name:       name.Text,
			Type:       PointerTo(FuncType(ty, params)),
			Storage:    storageOf(a),
			Extern:     a.extern,
			Multiverse: a.multiverse,
			Domain:     a.domain,
		}
		return &GlobalDecl{P: startPos, Sym: sym}, nil
	}

	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}

	// Function declaration or definition.
	if p.peekIs("(") {
		return p.parseFunc(a, ty, name, startPos)
	}

	// Global variable (possibly array).
	if p.accept("[") {
		lenTok := p.cur()
		if lenTok.Kind != TokNumber {
			return nil, errf(lenTok.Pos, "expected array length, found %s", lenTok)
		}
		p.next()
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		ty = ArrayOf(ty, lenTok.Num)
	}
	var init Expr
	if p.accept("=") {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(a.bindOnly) > 0 {
		return nil, errf(startPos, "bind(...) belongs on a multiverse function, not on variable %q", name.Text)
	}
	sym := &VarSym{
		Name:       name.Text,
		Type:       ty,
		Storage:    storageOf(a),
		Extern:     a.extern,
		Multiverse: a.multiverse,
		Domain:     a.domain,
	}
	return &GlobalDecl{P: startPos, Sym: sym, Init: init}, nil
}

func storageOf(a attrs) StorageClass {
	if a.static {
		return StorageStatic
	}
	return StorageGlobal
}

func (p *Parser) parseEnumDecl(u *Unit) (Node, error) {
	pos := p.cur().Pos
	p.next() // enum
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	e := &EnumDecl{P: pos, Name: name.Text}
	next := int64(0)
	for !p.peekIs("}") {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.accept("=") {
			neg := p.accept("-")
			t := p.cur()
			if t.Kind != TokNumber {
				return nil, errf(t.Pos, "expected enumerator value, found %s", t)
			}
			p.next()
			next = t.Num
			if neg {
				next = -next
			}
		}
		e.Names = append(e.Names, id.Text)
		e.Values = append(e.Values, next)
		next++
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(e.Names) == 0 {
		return nil, errf(pos, "enum %q has no enumerators", e.Name)
	}
	if _, dup := u.Enums[e.Name]; dup {
		return nil, errf(pos, "enum %q redefined", e.Name)
	}
	u.Enums[e.Name] = e
	return e, nil
}

// parseParamTypes parses "(void)" or "(T a, T b, ...)"; names optional.
func (p *Parser) parseParamTypes() ([]*Type, []string, error) {
	if _, err := p.expect("("); err != nil {
		return nil, nil, err
	}
	var types []*Type
	var names []string
	if p.accept(")") {
		return nil, nil, nil
	}
	if p.peekIs("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
		p.next()
		p.next()
		return nil, nil, nil
	}
	for {
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, nil, err
		}
		ty := p.parseStars(base)
		name := ""
		if p.cur().Kind == TokIdent {
			name = p.next().Text
		}
		types = append(types, ty)
		names = append(names, name)
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, nil, err
	}
	return types, names, nil
}

func (p *Parser) parseFunc(a attrs, ret *Type, name Token, pos Pos) (Node, error) {
	types, names, err := p.parseParamTypes()
	if err != nil {
		return nil, err
	}
	fd := &FuncDecl{
		P:          pos,
		Name:       name.Text,
		Ret:        ret,
		Multiverse: a.multiverse,
		BindOnly:   a.bindOnly,
		NoScratch:  a.noscratch,
		Static:     a.static,
	}
	if len(a.domain) > 0 {
		return nil, errf(pos, "a value domain belongs on the switch variable, not on function %q", name.Text)
	}
	for i, ty := range types {
		fd.Params = append(fd.Params, &VarSym{
			Name:    names[i],
			Type:    ty,
			Storage: StorageParam,
		})
	}
	if p.accept(";") {
		return fd, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// ---- Statements ----

func (p *Parser) parseBlock() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{P: open.Pos}}
	for !p.peekIs("}") {
		if p.atEOF() {
			return nil, errf(open.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.peekIs("{"):
		return p.parseBlock()

	case p.peekIs(";"):
		p.next()
		return &Empty{stmtBase{t.Pos}}, nil

	case p.peekIs("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{stmtBase{t.Pos}, cond, then, els}, nil

	case p.peekIs("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{stmtBase{t.Pos}, cond, body, 0}, nil

	case p.peekIs("do"):
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhile{stmtBase{t.Pos}, body, cond, 0}, nil

	case p.peekIs("for"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.peekIs(";") {
			if p.startsType() {
				var err error
				init, err = p.parseLocalDecl()
				if err != nil {
					return nil, err
				}
			} else {
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{stmtBase{x.Pos()}, x}
				if _, err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.next()
		}
		var cond Expr
		if !p.peekIs(";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Expr
		if !p.peekIs(")") {
			var err error
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{stmtBase{t.Pos}, init, cond, post, body, 0}, nil

	case p.peekIs("switch"):
		return p.parseSwitch()

	case p.peekIs("return"):
		p.next()
		var x Expr
		if !p.peekIs(";") {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Return{stmtBase{t.Pos}, x}, nil

	case p.peekIs("break"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Break{stmtBase{t.Pos}}, nil

	case p.peekIs("continue"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Continue{stmtBase{t.Pos}}, nil

	case p.startsType():
		return p.parseLocalDecl()
	}

	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase{t.Pos}, x}, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // switch
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	sw := &Switch{stmtBase: stmtBase{pos}, Cond: cond}
	var cur *SwitchCase
	for !p.peekIs("}") {
		if p.atEOF() {
			return nil, errf(pos, "unterminated switch")
		}
		switch {
		case p.peekIs("case"):
			cp := p.next().Pos
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			cur = &SwitchCase{P: cp, Stmts: nil}
			// The constant value is resolved in sema (enum constants
			// only become literals there); stash the expression in an
			// ExprStmt placeholder at the front.
			cur.Stmts = append(cur.Stmts, &ExprStmt{stmtBase{cp}, val})
			sw.Cases = append(sw.Cases, cur)
		case p.peekIs("default"):
			cp := p.next().Pos
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			cur = &SwitchCase{P: cp, IsDefault: true}
			sw.Cases = append(sw.Cases, cur)
		default:
			if cur == nil {
				return nil, errf(p.cur().Pos, "statement before first case label")
			}
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.Stmts = append(cur.Stmts, st)
		}
	}
	p.next()
	return sw, nil
}

// parseLocalDecl parses "T [*]* name [= expr] ;".
func (p *Parser) parseLocalDecl() (Stmt, error) {
	pos := p.cur().Pos
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	ty := p.parseStars(base)
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var init Expr
	if p.accept("=") {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	sym := &VarSym{Name: name.Text, Type: ty, Storage: StorageLocal}
	return &DeclStmt{stmtBase{pos}, sym, init}, nil
}

// ---- Expressions ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase{P: t.Pos}, t.Text, lhs, rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.peekIs("?") {
		return c, nil
	}
	q := p.next()
	tExpr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	fExpr, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Cond{exprBase{P: q.Pos}, c, tExpr, fExpr}, nil
}

// binary operator precedence levels, low to high.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		if t.Kind == TokPunct {
			for _, op := range binLevels[level] {
				if t.Text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{P: t.Pos}, t.Text, lhs, rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase{P: t.Pos}, t.Text, x}, nil
		case "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &IncDec{exprBase{P: t.Pos}, t.Text, x, true}, nil
		case "(":
			// Cast: "(" type ")" unary — disambiguate by lookahead.
			if p.toks[p.pos+1].Kind == TokKeyword {
				kw := p.toks[p.pos+1].Text
				if _, isType := typeKeywords[kw]; isType || kw == "enum" {
					p.next()
					base, err := p.parseTypeSpec()
					if err != nil {
						return nil, err
					}
					ty := p.parseStars(base)
					if _, err := p.expect(")"); err != nil {
						return nil, err
					}
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &Cast{exprBase{P: t.Pos}, ty, x}, nil
				}
			}
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.peekIs("("):
			p.next()
			var args []Expr
			if !p.peekIs(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			if vr, ok := x.(*VarRef); ok && builtinNames[vr.Name] {
				x = &Builtin{exprBase{P: t.Pos}, vr.Name, args}
			} else {
				x = &Call{exprBase{P: t.Pos}, x, args, 0}
			}
		case p.peekIs("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase{P: t.Pos}, x, idx}
		case p.peekIs("++"), p.peekIs("--"):
			p.next()
			x = &IncDec{exprBase{P: t.Pos}, t.Text, x, false}
		default:
			return x, nil
		}
	}
}

// builtinNames lists the compiler builtins.
var builtinNames = map[string]bool{
	"__xchg": true, "__pause": true, "__cli": true, "__sti": true,
	"__hcall": true, "__outb": true, "__inb": true, "__rdtsc": true,
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber, TokChar:
		p.next()
		return &IntLit{exprBase{P: t.Pos}, t.Num}, nil
	case TokString:
		p.next()
		return &StrLit{exprBase{P: t.Pos}, t.Str}, nil
	case TokIdent:
		p.next()
		return &VarRef{exprBase: exprBase{P: t.Pos}, Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.next()
			return &IntLit{exprBase{P: t.Pos}, 1}, nil
		case "false":
			p.next()
			return &IntLit{exprBase{P: t.Pos}, 0}, nil
		}
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, errf(t.Pos, "expected expression, found %s", t)
}
