package cc

// This file defines the typed AST. The parser builds it; Check
// (sema.go) resolves names and annotates types; the optimizer
// (package mvir) transforms deep copies of it; the code generator
// walks it.

// Node is the common interface of AST nodes.
type Node interface {
	Pos() Pos
}

// ---- Symbols ----

// StorageClass distinguishes globals, statics, locals and parameters.
type StorageClass int

// Storage classes.
const (
	StorageGlobal StorageClass = iota
	StorageStatic              // file-local global
	StorageLocal
	StorageParam
)

// VarSym is a resolved variable (or function) symbol. Symbols are
// shared between all references; the optimizer's function cloner keeps
// global symbols shared but re-creates local ones.
type VarSym struct {
	Name    string
	Type    *Type
	Storage StorageClass
	Extern  bool // declared but not defined here

	// Multiverse marks a configuration switch (paper §2).
	Multiverse bool
	// Domain is the explicit specialization domain; nil means the
	// default policy (ints: {0,1}; enums: all enumerators).
	Domain []int64

	// Init is the constant initializer of a global scalar, if any.
	Init *int64

	// Func is non-nil when the symbol names a function.
	Func *FuncDecl

	// Seq disambiguates shadowed locals; assigned by sema.
	Seq int
}

// IsGlobalData reports whether the symbol denotes memory-resident
// global data (including statics).
func (s *VarSym) IsGlobalData() bool {
	return (s.Storage == StorageGlobal || s.Storage == StorageStatic) && s.Func == nil
}

// ---- Expressions ----

// Expr is an expression node. Type() is valid after Check.
type Expr interface {
	Node
	Type() *Type
}

type exprBase struct {
	P  Pos
	Ty *Type
}

func (e *exprBase) Pos() Pos        { return e.P }
func (e *exprBase) Type() *Type     { return e.Ty }
func (e *exprBase) SetType(t *Type) { e.Ty = t }

// IntLit is an integer, boolean or character constant.
type IntLit struct {
	exprBase
	Value int64
}

// StrLit is a string literal; it has type char* and points into
// .rodata.
type StrLit struct {
	exprBase
	Value string
}

// VarRef references a variable, parameter or function.
type VarRef struct {
	exprBase
	Name string
	Sym  *VarSym // set by Check
}

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y for arithmetic, comparison, shift, bitwise and the
// short-circuit && and ||.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is lhs = rhs and the compound forms (+=, <<=, ...).
type Assign struct {
	exprBase
	Op  string // "=", "+=", ...
	LHS Expr
	RHS Expr
}

// IncDec is x++ / x-- / ++x / --x.
type IncDec struct {
	exprBase
	Op     string // "++" or "--"
	X      Expr
	Prefix bool // value semantics: prefix yields the new value
}

// Call invokes a function (direct or through a function pointer).
type Call struct {
	exprBase
	Fn   Expr
	Args []Expr

	// OSR is the variant-invariant logical label of this call's
	// return point (0 = unlabeled). Assigned on the pristine decl
	// before variant cloning so every clone keeps the same id.
	OSR int
}

// Index is base[idx], equivalent to *(base + idx).
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Cast converts x to the named type.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// Cond is c ? t : f.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Builtin is one of the compiler builtins (__xchg, __cli, __sti,
// __hcall, __outb, __inb, __rdtsc, __pause).
type Builtin struct {
	exprBase
	Name string
	Args []Expr
}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface {
	Node
}

type stmtBase struct{ P Pos }

func (s *stmtBase) Pos() Pos { return s.P }

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	stmtBase
	Sym  *VarSym
	Init Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// If is if (cond) then else els.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is while (cond) body.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt

	// OSR is the variant-invariant logical label of this loop's
	// back-edge target (0 = unlabeled). Assigned on the pristine
	// decl before variant cloning so every clone keeps the same id.
	OSR int
}

// DoWhile is do body while (cond);.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr

	// OSR labels the back-edge target; see While.OSR.
	OSR int
}

// For is for (init; cond; post) body. Init may be a DeclStmt or
// ExprStmt; cond and post may be nil.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt

	// OSR labels the back-edge target; see While.OSR.
	OSR int
}

// Switch is switch (cond) { cases }. Consecutive case labels share a
// body through empty-bodied entries (C fallthrough).
type Switch struct {
	stmtBase
	Cond  Expr
	Cases []*SwitchCase
}

// SwitchCase is one case (or default) label and the statements up to
// the next label; execution falls through into the following entry.
type SwitchCase struct {
	P         Pos
	IsDefault bool
	Val       int64 // constant case value (unless IsDefault)
	Stmts     []Stmt
}

// Return is return x; (x may be nil).
type Return struct {
	stmtBase
	X Expr
}

// Break is break;.
type Break struct{ stmtBase }

// Continue is continue;.
type Continue struct{ stmtBase }

// Empty is a lone semicolon.
type Empty struct{ stmtBase }

// ---- Declarations ----

// FuncDecl is a function declaration or definition.
type FuncDecl struct {
	P      Pos
	Name   string
	Sym    *VarSym // the symbol naming this function
	Params []*VarSym
	Ret    *Type
	Body   *Block // nil for a prototype

	Multiverse bool
	// BindOnly restricts specialization to the named switches —
	// partial specialization (paper §2, §7.1). Empty binds all
	// referenced switches.
	BindOnly  []string
	NoScratch bool // PV-Ops style callee-saves-everything convention
	Static    bool
}

// Pos implements Node.
func (f *FuncDecl) Pos() Pos { return f.P }

// Type returns the function type.
func (f *FuncDecl) Type() *Type {
	params := make([]*Type, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Type
	}
	return FuncType(f.Ret, params)
}

// GlobalDecl is a file-scope variable definition or extern declaration.
type GlobalDecl struct {
	P    Pos
	Sym  *VarSym
	Init Expr // constant initializer or nil
}

// Pos implements Node.
func (g *GlobalDecl) Pos() Pos { return g.P }

// EnumDecl declares an enumeration; its enumerators become integer
// constants.
type EnumDecl struct {
	P      Pos
	Name   string
	Names  []string
	Values []int64
}

// Pos implements Node.
func (e *EnumDecl) Pos() Pos { return e.P }

// Unit is one translation unit.
type Unit struct {
	File    string
	Decls   []Node // FuncDecl, GlobalDecl, EnumDecl in source order
	Enums   map[string]*EnumDecl
	Globals map[string]*VarSym // all file-scope variable and function symbols
}
