package cc

import "math"

// Check resolves names, assigns types, and validates the multiverse
// attribute rules of one translation unit. It rewrites the AST in
// place (enum constants become integer literals).
func Check(u *Unit) error {
	c := &checker{
		unit:       u,
		enumConsts: make(map[string]int64),
		enumOf:     make(map[string]*EnumDecl),
	}
	return c.checkUnit()
}

type checker struct {
	unit       *Unit
	enumConsts map[string]int64
	enumOf     map[string]*EnumDecl // constant name -> its enum
	scopes     []map[string]*VarSym
	curFunc    *FuncDecl
	loopDepth  int // enclosing loops (continue targets)
	breakDepth int // enclosing loops and switches (break targets)
	seq        int
}

func (c *checker) checkUnit() error {
	u := c.unit
	// Pass 1: enums, then file-scope symbols.
	for _, d := range u.Decls {
		e, ok := d.(*EnumDecl)
		if !ok {
			continue
		}
		for i, n := range e.Names {
			if _, dup := c.enumConsts[n]; dup {
				return errf(e.P, "enumerator %q redefined", n)
			}
			c.enumConsts[n] = e.Values[i]
			c.enumOf[n] = e
		}
	}
	for _, d := range u.Decls {
		switch d := d.(type) {
		case *GlobalDecl:
			if err := c.declareGlobal(d); err != nil {
				return err
			}
		case *FuncDecl:
			if err := c.declareFunc(d); err != nil {
				return err
			}
		}
	}
	// Pass 2: bodies and initializers.
	for _, d := range u.Decls {
		switch d := d.(type) {
		case *GlobalDecl:
			if err := c.checkGlobalInit(d); err != nil {
				return err
			}
		case *FuncDecl:
			if d.Body == nil {
				continue
			}
			if err := c.checkFuncBody(d); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) declareGlobal(d *GlobalDecl) error {
	s := d.Sym
	if err := c.validateType(d.P, s.Type); err != nil {
		return err
	}
	if s.Multiverse {
		if err := c.validateMultiverseVar(d.P, s); err != nil {
			return err
		}
	}
	if _, isConst := c.enumConsts[s.Name]; isConst {
		return errf(d.P, "%q conflicts with an enumerator", s.Name)
	}
	if prev, ok := c.unit.Globals[s.Name]; ok {
		if !prev.Type.Same(s.Type) {
			return errf(d.P, "conflicting declarations of %q: %s vs %s", s.Name, prev.Type, s.Type)
		}
		if prev.Multiverse != s.Multiverse {
			return errf(d.P, "inconsistent multiverse attribute on %q", s.Name)
		}
		if !prev.Extern && !s.Extern {
			return errf(d.P, "%q redefined", s.Name)
		}
		// Keep the defining symbol; rewire this decl to it.
		if prev.Extern && !s.Extern {
			prev.Extern = false
			prev.Storage = s.Storage
			prev.Domain = s.Domain
		}
		d.Sym = prev
		return nil
	}
	c.unit.Globals[s.Name] = s
	return nil
}

func (c *checker) validateMultiverseVar(pos Pos, s *VarSym) error {
	t := s.Type
	isFnPtr := t.Kind == KindPtr && t.Elem.Kind == KindFunc
	if !t.IsInteger() && !isFnPtr {
		return errf(pos, "multiverse attribute requires an integer, bool, enum or function-pointer type, not %s", t)
	}
	if isFnPtr && len(s.Domain) > 0 {
		return errf(pos, "function-pointer switch %q cannot have a value domain", s.Name)
	}
	for _, v := range s.Domain {
		if v < math.MinInt32 || v > math.MaxInt32 {
			return errf(pos, "domain value %d of %q out of 32-bit range", v, s.Name)
		}
	}
	seen := make(map[int64]bool)
	for _, v := range s.Domain {
		if seen[v] {
			return errf(pos, "duplicate domain value %d for %q", v, s.Name)
		}
		seen[v] = true
	}
	return nil
}

// EffectiveDomain returns the specialization domain of a multiverse
// variable under the paper's default policy: an explicit domain wins;
// enums use all enumerators; other integers use {0, 1}.
func EffectiveDomain(s *VarSym, enums map[string]*EnumDecl) []int64 {
	if len(s.Domain) > 0 {
		out := make([]int64, len(s.Domain))
		copy(out, s.Domain)
		return out
	}
	if s.Type.Kind == KindEnum {
		if e, ok := enums[s.Type.EnumName]; ok {
			out := make([]int64, len(e.Values))
			copy(out, e.Values)
			return out
		}
	}
	return []int64{0, 1}
}

func (c *checker) declareFunc(d *FuncDecl) error {
	if err := c.validateType(d.P, d.Ret); err != nil {
		return err
	}
	for _, p := range d.Params {
		if err := c.validateType(d.P, p.Type); err != nil {
			return err
		}
		if p.Type.Kind == KindArray || p.Type.Kind == KindVoid {
			return errf(d.P, "invalid parameter type %s", p.Type)
		}
	}
	if d.NoScratch && d.Ret.Kind != KindVoid {
		return errf(d.P, "noscratch function %q must return void", d.Name)
	}
	// A multiverse prototype without a body is fine — the attribute
	// must be visible in every unit (paper §5).
	storage := StorageGlobal
	if d.Static {
		storage = StorageStatic
	}
	sym := &VarSym{Name: d.Name, Type: d.Type(), Storage: storage, Func: d, Multiverse: d.Multiverse}
	if prev, ok := c.unit.Globals[d.Name]; ok {
		if prev.Func == nil {
			return errf(d.P, "%q redeclared as a function", d.Name)
		}
		if !prev.Type.Same(sym.Type) {
			return errf(d.P, "conflicting declarations of %q", d.Name)
		}
		if prev.Func.Multiverse != d.Multiverse {
			return errf(d.P, "inconsistent multiverse attribute on function %q", d.Name)
		}
		if prev.Func.NoScratch != d.NoScratch {
			return errf(d.P, "inconsistent noscratch attribute on function %q", d.Name)
		}
		if prev.Func.Body != nil && d.Body != nil {
			return errf(d.P, "function %q redefined", d.Name)
		}
		if d.Body != nil {
			prev.Func = d // definition wins
		}
		d.Sym = prev
		return nil
	}
	d.Sym = sym
	c.unit.Globals[d.Name] = sym
	return nil
}

func (c *checker) validateType(pos Pos, t *Type) error {
	switch t.Kind {
	case KindEnum:
		if _, ok := c.unit.Enums[t.EnumName]; !ok {
			return errf(pos, "undefined enum %q", t.EnumName)
		}
	case KindPtr:
		if t.Elem.Kind == KindFunc {
			return c.validateType(pos, t.Elem.Ret)
		}
		return c.validateType(pos, t.Elem)
	case KindArray:
		if t.ArrayLen <= 0 {
			return errf(pos, "array length must be positive")
		}
		return c.validateType(pos, t.Elem)
	}
	return nil
}

func (c *checker) checkGlobalInit(d *GlobalDecl) error {
	if d.Init == nil {
		return nil
	}
	s := d.Sym
	if s.Extern {
		return errf(d.P, "extern %q cannot have an initializer", s.Name)
	}
	x, err := c.checkExpr(d.Init)
	if err != nil {
		return err
	}
	d.Init = x
	v, ok := constEval(x)
	if !ok {
		return errf(d.P, "initializer of %q must be an integer constant expression", s.Name)
	}
	if !s.Type.IsInteger() {
		return errf(d.P, "cannot initialize %s with a constant", s.Type)
	}
	s.Init = &v
	return nil
}

// constEval evaluates an integer constant expression (64-bit
// arithmetic; shifts masked; division by zero is not constant).
func constEval(x Expr) (int64, bool) {
	switch x := x.(type) {
	case *IntLit:
		return x.Value, true
	case *Unary:
		v, ok := constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		a, ok := constEval(x.X)
		if !ok {
			return 0, false
		}
		b, ok := constEval(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		case "<<":
			return a << (uint64(b) & 63), true
		case ">>":
			return a >> (uint64(b) & 63), true
		}
	case *Cast:
		return constEval(x.X)
	}
	return 0, false
}

// ---- Function bodies ----

func (c *checker) checkFuncBody(d *FuncDecl) error {
	c.curFunc = d
	for _, name := range d.BindOnly {
		sym, ok := c.unit.Globals[name]
		if !ok || !sym.Multiverse {
			return errf(d.P, "bind(%s): not a multiverse configuration switch", name)
		}
	}
	c.pushScope()
	defer c.popScope()
	for _, p := range d.Params {
		if p.Name == "" {
			return errf(d.P, "parameter of %q missing a name", d.Name)
		}
		if err := c.declareLocal(d.P, p); err != nil {
			return err
		}
	}
	if len(d.Params) > 6 {
		return errf(d.P, "function %q has more than 6 parameters", d.Name)
	}
	return c.checkStmt(d.Body)
}

func (c *checker) pushScope() {
	c.scopes = append(c.scopes, make(map[string]*VarSym))
}

func (c *checker) popScope() { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(pos Pos, s *VarSym) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[s.Name]; dup {
		return errf(pos, "%q redeclared in this scope", s.Name)
	}
	c.seq++
	s.Seq = c.seq
	top[s.Name] = s
	return nil
}

func (c *checker) lookup(name string) *VarSym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.unit.Globals[name]
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		c.pushScope()
		defer c.popScope()
		for _, st := range s.Stmts {
			if err := c.checkStmt(st); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		if err := c.validateType(s.Pos(), s.Sym.Type); err != nil {
			return err
		}
		switch s.Sym.Type.Kind {
		case KindVoid, KindArray, KindFunc:
			return errf(s.Pos(), "invalid local variable type %s", s.Sym.Type)
		}
		if s.Init != nil {
			x, err := c.checkExpr(s.Init)
			if err != nil {
				return err
			}
			if err := c.checkAssignable(s.Pos(), s.Sym.Type, x); err != nil {
				return err
			}
			s.Init = x
		}
		return c.declareLocal(s.Pos(), s.Sym)

	case *ExprStmt:
		x, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		s.X = x
		return nil

	case *If:
		x, err := c.checkCond(s.Cond)
		if err != nil {
			return err
		}
		s.Cond = x
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil

	case *While:
		x, err := c.checkCond(s.Cond)
		if err != nil {
			return err
		}
		s.Cond = x
		c.loopDepth++
		c.breakDepth++
		defer func() { c.loopDepth--; c.breakDepth-- }()
		return c.checkStmt(s.Body)

	case *DoWhile:
		c.loopDepth++
		c.breakDepth++
		err := c.checkStmt(s.Body)
		c.loopDepth--
		c.breakDepth--
		if err != nil {
			return err
		}
		x, err := c.checkCond(s.Cond)
		if err != nil {
			return err
		}
		s.Cond = x
		return nil

	case *For:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			x, err := c.checkCond(s.Cond)
			if err != nil {
				return err
			}
			s.Cond = x
		}
		if s.Post != nil {
			x, err := c.checkExpr(s.Post)
			if err != nil {
				return err
			}
			s.Post = x
		}
		c.loopDepth++
		c.breakDepth++
		defer func() { c.loopDepth--; c.breakDepth-- }()
		return c.checkStmt(s.Body)

	case *Switch:
		return c.checkSwitch(s)

	case *Return:
		ret := c.curFunc.Ret
		if s.X == nil {
			if ret.Kind != KindVoid {
				return errf(s.Pos(), "missing return value in %q", c.curFunc.Name)
			}
			return nil
		}
		if ret.Kind == KindVoid {
			return errf(s.Pos(), "return with a value in void function %q", c.curFunc.Name)
		}
		x, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		if err := c.checkAssignable(s.Pos(), ret, x); err != nil {
			return err
		}
		s.X = x
		return nil

	case *Break:
		if c.breakDepth == 0 {
			return errf(s.Pos(), "break outside a loop or switch")
		}
		return nil

	case *Continue:
		if c.loopDepth == 0 {
			return errf(s.Pos(), "continue outside a loop")
		}
		return nil

	case *Empty:
		return nil
	}
	return errf(s.Pos(), "internal: unknown statement %T", s)
}

func (c *checker) checkSwitch(s *Switch) error {
	x, err := c.checkExpr(s.Cond)
	if err != nil {
		return err
	}
	if !x.Type().IsInteger() {
		return errf(s.Pos(), "switch requires an integer, not %s", x.Type())
	}
	s.Cond = x
	seen := make(map[int64]bool)
	sawDefault := false
	c.breakDepth++
	defer func() { c.breakDepth-- }()
	for _, cs := range s.Cases {
		if cs.IsDefault {
			if sawDefault {
				return errf(cs.P, "multiple default labels")
			}
			sawDefault = true
		} else {
			// The parser stashed the label expression as a leading
			// ExprStmt placeholder; resolve it to a constant.
			placeholder, ok := cs.Stmts[0].(*ExprStmt)
			if !ok {
				return errf(cs.P, "internal: malformed case label")
			}
			lx, err := c.checkExpr(placeholder.X)
			if err != nil {
				return err
			}
			v, isConst := constEval(lx)
			if !isConst {
				return errf(cs.P, "case label must be an integer constant expression")
			}
			if seen[v] {
				return errf(cs.P, "duplicate case value %d", v)
			}
			seen[v] = true
			cs.Val = v
			cs.Stmts = cs.Stmts[1:]
		}
		c.pushScope()
		for _, st := range cs.Stmts {
			if err := c.checkStmt(st); err != nil {
				c.popScope()
				return err
			}
		}
		c.popScope()
	}
	return nil
}

func (c *checker) checkCond(x Expr) (Expr, error) {
	x, err := c.checkExpr(x)
	if err != nil {
		return nil, err
	}
	if !x.Type().IsScalar() {
		return nil, errf(x.Pos(), "condition must be scalar, not %s", x.Type())
	}
	return x, nil
}

// checkAssignable validates storing a value of x's type into type dst.
func (c *checker) checkAssignable(pos Pos, dst *Type, x Expr) error {
	src := x.Type()
	switch {
	case dst.IsInteger() && src.IsInteger():
		return nil
	case dst.Kind == KindPtr && src.Kind == KindPtr:
		return nil // C-style lenient pointer assignment
	case dst.Kind == KindPtr && src.IsInteger():
		if lit, ok := x.(*IntLit); ok && lit.Value == 0 {
			return nil // null pointer constant
		}
		return errf(pos, "cannot assign %s to %s without a cast", src, dst)
	default:
		return errf(pos, "cannot assign %s to %s", src, dst)
	}
}

func isLvalue(x Expr) bool {
	switch x := x.(type) {
	case *VarRef:
		return x.Sym != nil && x.Sym.Func == nil && x.Sym.Type.Kind != KindArray
	case *Unary:
		return x.Op == "*"
	case *Index:
		return true
	}
	return false
}

func (c *checker) checkExpr(x Expr) (Expr, error) {
	switch x := x.(type) {
	case *IntLit:
		if x.Ty == nil {
			x.Ty = TypeInt
			if x.Value > math.MaxInt32 || x.Value < math.MinInt32 {
				x.Ty = TypeLong
			}
		}
		return x, nil

	case *StrLit:
		x.Ty = PointerTo(TypeChar)
		return x, nil

	case *VarRef:
		if builtinNames[x.Name] {
			return nil, errf(x.Pos(), "builtin %q must be called", x.Name)
		}
		if v, ok := c.enumConsts[x.Name]; ok {
			e := c.enumOf[x.Name]
			return &IntLit{exprBase{P: x.Pos(), Ty: EnumType(e.Name)}, v}, nil
		}
		sym := c.lookup(x.Name)
		if sym == nil {
			return nil, errf(x.Pos(), "undefined: %q", x.Name)
		}
		x.Sym = sym
		switch {
		case sym.Func != nil:
			x.Ty = PointerTo(sym.Type)
		case sym.Type.Kind == KindArray:
			x.Ty = PointerTo(sym.Type.Elem) // array-to-pointer decay
		default:
			x.Ty = sym.Type
		}
		return x, nil

	case *Unary:
		inner, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		x.X = inner
		t := inner.Type()
		switch x.Op {
		case "-", "~":
			if !t.IsInteger() {
				return nil, errf(x.Pos(), "unary %s requires an integer, not %s", x.Op, t)
			}
			x.Ty = Common(t, TypeInt)
		case "!":
			if !t.IsScalar() {
				return nil, errf(x.Pos(), "unary ! requires a scalar, not %s", t)
			}
			x.Ty = TypeInt
		case "*":
			if t.Kind != KindPtr || t.Elem.Kind == KindFunc || t.Elem.Kind == KindVoid {
				return nil, errf(x.Pos(), "cannot dereference %s", t)
			}
			x.Ty = t.Elem
		case "&":
			if vr, ok := inner.(*VarRef); ok && vr.Sym.Func != nil {
				// &f on a function yields the same function pointer.
				return inner, nil
			}
			if !isLvalue(inner) {
				return nil, errf(x.Pos(), "cannot take the address of this expression")
			}
			x.Ty = PointerTo(t)
		default:
			return nil, errf(x.Pos(), "internal: unary %q", x.Op)
		}
		return x, nil

	case *Binary:
		return c.checkBinary(x)

	case *Assign:
		lhs, err := c.checkExpr(x.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := c.checkExpr(x.RHS)
		if err != nil {
			return nil, err
		}
		x.LHS, x.RHS = lhs, rhs
		if !isLvalue(lhs) {
			return nil, errf(x.Pos(), "left side of %s is not assignable", x.Op)
		}
		lt := lhs.Type()
		if x.Op == "=" {
			if err := c.checkAssignable(x.Pos(), lt, rhs); err != nil {
				return nil, err
			}
		} else {
			// Compound: lhs op= rhs needs integer lhs (or ptr +=/-= int).
			if lt.Kind == KindPtr {
				if (x.Op != "+=" && x.Op != "-=") || !rhs.Type().IsInteger() {
					return nil, errf(x.Pos(), "invalid %s on %s", x.Op, lt)
				}
			} else if !lt.IsInteger() || !rhs.Type().IsInteger() {
				return nil, errf(x.Pos(), "invalid %s on %s and %s", x.Op, lt, rhs.Type())
			}
		}
		x.Ty = lt
		return x, nil

	case *IncDec:
		inner, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		x.X = inner
		if !isLvalue(inner) {
			return nil, errf(x.Pos(), "%s requires an lvalue", x.Op)
		}
		t := inner.Type()
		if !t.IsInteger() && t.Kind != KindPtr {
			return nil, errf(x.Pos(), "%s requires an integer or pointer", x.Op)
		}
		x.Ty = t
		return x, nil

	case *Call:
		fn, err := c.checkExpr(x.Fn)
		if err != nil {
			return nil, err
		}
		x.Fn = fn
		ft := fn.Type()
		if ft.Kind == KindPtr && ft.Elem.Kind == KindFunc {
			ft = ft.Elem
		}
		if ft.Kind != KindFunc {
			return nil, errf(x.Pos(), "cannot call a value of type %s", fn.Type())
		}
		if len(x.Args) != len(ft.Params) {
			return nil, errf(x.Pos(), "call has %d arguments, want %d", len(x.Args), len(ft.Params))
		}
		for i, a := range x.Args {
			ca, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if err := c.checkAssignable(a.Pos(), ft.Params[i], ca); err != nil {
				return nil, err
			}
			x.Args[i] = ca
		}
		x.Ty = ft.Ret
		return x, nil

	case *Index:
		base, err := c.checkExpr(x.Base)
		if err != nil {
			return nil, err
		}
		idx, err := c.checkExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		x.Base, x.Idx = base, idx
		bt := base.Type()
		if bt.Kind != KindPtr || bt.Elem.Kind == KindVoid || bt.Elem.Kind == KindFunc {
			return nil, errf(x.Pos(), "cannot index %s", bt)
		}
		if !idx.Type().IsInteger() {
			return nil, errf(x.Pos(), "index must be an integer")
		}
		x.Ty = bt.Elem
		return x, nil

	case *Cast:
		inner, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		x.X = inner
		if err := c.validateType(x.Pos(), x.To); err != nil {
			return nil, err
		}
		from := inner.Type()
		ok := (x.To.IsScalar() && from.IsScalar()) || x.To.Kind == KindVoid
		if !ok {
			return nil, errf(x.Pos(), "invalid cast from %s to %s", from, x.To)
		}
		x.Ty = x.To
		return x, nil

	case *Cond:
		cond, err := c.checkCond(x.C)
		if err != nil {
			return nil, err
		}
		tv, err := c.checkExpr(x.T)
		if err != nil {
			return nil, err
		}
		fv, err := c.checkExpr(x.F)
		if err != nil {
			return nil, err
		}
		x.C, x.T, x.F = cond, tv, fv
		tt, ft := tv.Type(), fv.Type()
		switch {
		case tt.IsInteger() && ft.IsInteger():
			x.Ty = Common(tt, ft)
		case tt.Kind == KindPtr && ft.Kind == KindPtr:
			x.Ty = tt
		default:
			return nil, errf(x.Pos(), "mismatched ?: operand types %s and %s", tt, ft)
		}
		return x, nil

	case *Builtin:
		return c.checkBuiltin(x)
	}
	return nil, errf(x.Pos(), "internal: unknown expression %T", x)
}

func (c *checker) checkBinary(x *Binary) (Expr, error) {
	lhs, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	rhs, err := c.checkExpr(x.Y)
	if err != nil {
		return nil, err
	}
	x.X, x.Y = lhs, rhs
	lt, rt := lhs.Type(), rhs.Type()

	switch x.Op {
	case "&&", "||":
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, errf(x.Pos(), "%s requires scalar operands", x.Op)
		}
		x.Ty = TypeInt
		return x, nil

	case "==", "!=", "<", "<=", ">", ">=":
		switch {
		case lt.IsInteger() && rt.IsInteger():
		case lt.Kind == KindPtr && rt.Kind == KindPtr:
		case lt.Kind == KindPtr && isNullConst(rhs):
		case rt.Kind == KindPtr && isNullConst(lhs):
		default:
			return nil, errf(x.Pos(), "cannot compare %s and %s", lt, rt)
		}
		x.Ty = TypeInt
		return x, nil

	case "+", "-":
		if lt.Kind == KindPtr || rt.Kind == KindPtr {
			switch {
			case lt.Kind == KindPtr && rt.IsInteger():
				x.Ty = lt
			case rt.Kind == KindPtr && lt.IsInteger() && x.Op == "+":
				x.Ty = rt
			case lt.Kind == KindPtr && rt.Kind == KindPtr && x.Op == "-":
				if !lt.Elem.Same(rt.Elem) {
					return nil, errf(x.Pos(), "pointer subtraction of incompatible types")
				}
				x.Ty = TypeLong
			default:
				return nil, errf(x.Pos(), "invalid pointer arithmetic %s %s %s", lt, x.Op, rt)
			}
			return x, nil
		}
		fallthrough

	case "*", "/", "%", "&", "|", "^":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, errf(x.Pos(), "%s requires integer operands, got %s and %s", x.Op, lt, rt)
		}
		x.Ty = Common(lt, rt)
		return x, nil

	case "<<", ">>":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, errf(x.Pos(), "%s requires integer operands", x.Op)
		}
		x.Ty = Common(lt, TypeInt)
		return x, nil
	}
	return nil, errf(x.Pos(), "internal: binary %q", x.Op)
}

func isNullConst(x Expr) bool {
	lit, ok := x.(*IntLit)
	return ok && lit.Value == 0
}

var builtinSigs = map[string]struct {
	args int
	ret  *Type
}{
	"__xchg":  {2, TypeLong},
	"__pause": {0, TypeVoid},
	"__cli":   {0, TypeVoid},
	"__sti":   {0, TypeVoid},
	"__hcall": {1, TypeVoid},
	"__outb":  {2, TypeVoid},
	"__inb":   {1, TypeInt},
	"__rdtsc": {0, TypeULong},
}

func (c *checker) checkBuiltin(x *Builtin) (Expr, error) {
	sig, ok := builtinSigs[x.Name]
	if !ok {
		return nil, errf(x.Pos(), "internal: unknown builtin %q", x.Name)
	}
	if len(x.Args) != sig.args {
		return nil, errf(x.Pos(), "%s takes %d arguments, got %d", x.Name, sig.args, len(x.Args))
	}
	for i, a := range x.Args {
		ca, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		x.Args[i] = ca
	}
	if x.Name == "__xchg" {
		pt := x.Args[0].Type()
		if pt.Kind != KindPtr || pt.Elem.ByteSize() != 8 {
			return nil, errf(x.Pos(), "__xchg requires a pointer to an 8-byte integer, got %s", pt)
		}
		if !x.Args[1].Type().IsInteger() {
			return nil, errf(x.Pos(), "__xchg value must be an integer")
		}
	} else {
		for _, a := range x.Args {
			if !a.Type().IsInteger() {
				return nil, errf(a.Pos(), "%s arguments must be integers", x.Name)
			}
		}
	}
	x.Ty = sig.ret
	return x, nil
}
