// Package cc implements the front end of the MVC language: a C subset
// extended with the multiverse attribute of the paper.
//
// MVC keeps exactly the C surface the paper's case studies need:
// integer and enum types, pointers, global/static variables, functions,
// the usual statements and operators, plus a handful of compiler
// builtins that map to privileged or atomic m64 instructions. The only
// extension over plain C is the `multiverse` declaration attribute
// (with an optional explicit value domain) and the `noscratch`
// function attribute modelling the Linux PV-Ops custom calling
// convention.
package cc

import "fmt"

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokChar   // character literal
	TokString // string literal
	TokPunct  // operators and punctuation
	TokKeyword
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier, keyword or punctuation text
	Num  int64  // for TokNumber / TokChar
	Str  string // for TokString (decoded)
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokNumber:
		return fmt.Sprintf("number %d", t.Num)
	case TokChar:
		return fmt.Sprintf("char %q", rune(t.Num))
	case TokString:
		return fmt.Sprintf("string %q", t.Str)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"void": true, "bool": true, "char": true, "short": true, "int": true,
	"long": true, "uchar": true, "ushort": true, "uint": true, "ulong": true,
	"enum": true, "if": true, "else": true, "while": true, "do": true,
	"for": true, "break": true, "continue": true, "return": true,
	"switch": true, "case": true, "default": true,
	"static": true, "extern": true, "multiverse": true, "noscratch": true,
	"true": true, "false": true,
}

// Error is a front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer turns MVC source into tokens.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer for src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	b := l.src[l.off]
	l.off++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
		case b == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case b == '/' && l.peekByte2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentCont(b byte) bool { return isIdentStart(b) || isDigit(b) }

// multi-byte punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", "?",
}

func (l *Lexer) escape(pos Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, errf(pos, "unterminated escape")
	}
	b := l.advance()
	switch b {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return b, nil
	}
	return 0, errf(pos, "unknown escape \\%c", b)
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	b := l.peekByte()

	switch {
	case isIdentStart(b):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case isDigit(b):
		start := l.off
		base := int64(10)
		if b == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			start = l.off
		}
		for l.off < len(l.src) {
			c := l.peekByte()
			if isDigit(c) || (base == 16 && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))) {
				l.advance()
			} else {
				break
			}
		}
		text := l.src[start:l.off]
		if text == "" {
			return Token{}, errf(pos, "malformed number")
		}
		var v int64
		for i := 0; i < len(text); i++ {
			c := text[i]
			var d int64
			switch {
			case isDigit(c):
				d = int64(c - '0')
			case c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			}
			v = v*base + d
		}
		return Token{Kind: TokNumber, Num: v, Pos: pos}, nil

	case b == '\'':
		l.advance()
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated char literal")
		}
		var c byte
		if l.peekByte() == '\\' {
			l.advance()
			var err error
			c, err = l.escape(pos)
			if err != nil {
				return Token{}, err
			}
		} else {
			c = l.advance()
		}
		if l.off >= len(l.src) || l.advance() != '\'' {
			return Token{}, errf(pos, "unterminated char literal")
		}
		return Token{Kind: TokChar, Num: int64(c), Pos: pos}, nil

	case b == '"':
		l.advance()
		var out []byte
		for {
			if l.off >= len(l.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				e, err := l.escape(pos)
				if err != nil {
					return Token{}, err
				}
				out = append(out, e)
				continue
			}
			out = append(out, c)
		}
		return Token{Kind: TokString, Str: string(out), Pos: pos}, nil
	}

	for _, p := range puncts {
		if len(l.src)-l.off >= len(p) && l.src[l.off:l.off+len(p)] == p {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", rune(b))
}

// LexAll tokenizes the whole input (for tests and tooling).
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
