package cc

import (
	"strings"
	"testing"
)

func parseAndCheck(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Parse("test.mvc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(u); err != nil {
		t.Fatalf("check: %v", err)
	}
	return u
}

func expectError(t *testing.T, src, want string) {
	t.Helper()
	u, err := Parse("test.mvc", src)
	if err == nil {
		err = Check(u)
	}
	if err == nil {
		t.Fatalf("no error, want %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll("t", `int x = 0x1F; // comment
	/* block
	   comment */ char c = '\n'; "str\t"`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[3].Kind != TokNumber || toks[3].Num != 0x1F {
		t.Errorf("hex literal = %+v", toks[3])
	}
	var char, str *Token
	for i := range toks {
		if toks[i].Kind == TokChar {
			char = &toks[i]
		}
		if toks[i].Kind == TokString {
			str = &toks[i]
		}
	}
	if char == nil || char.Num != '\n' {
		t.Errorf("char literal = %+v", char)
	}
	if str == nil || str.Str != "str\t" {
		t.Errorf("string literal = %+v", str)
	}
	_ = kinds
}

func TestLexerPositions(t *testing.T) {
	toks, err := LexAll("f.c", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "'a", `"unterminated`, "/* open", `'\q'`} {
		if _, err := LexAll("t", src); err == nil {
			t.Errorf("LexAll(%q) succeeded", src)
		}
	}
}

func TestParseSimpleProgram(t *testing.T) {
	u := parseAndCheck(t, `
		int counter = 5;
		int add(int a, int b) { return a + b; }
		int main(void) {
			int x = add(counter, 2);
			return x;
		}
	`)
	if len(u.Decls) != 3 {
		t.Fatalf("decls = %d", len(u.Decls))
	}
	g := u.Decls[0].(*GlobalDecl)
	if g.Sym.Init == nil || *g.Sym.Init != 5 {
		t.Error("global initializer not recorded")
	}
	f := u.Decls[1].(*FuncDecl)
	if f.Name != "add" || len(f.Params) != 2 || f.Ret != TypeInt {
		t.Errorf("add decl = %+v", f)
	}
}

func TestMultiverseAttribute(t *testing.T) {
	u := parseAndCheck(t, `
		multiverse int config_smp;
		multiverse(0, 1, 4) int nr_cpus;
		multiverse void spin_lock(void) {
			if (config_smp) { nr_cpus = nr_cpus; }
		}
	`)
	smp := u.Globals["config_smp"]
	if !smp.Multiverse || smp.Domain != nil {
		t.Errorf("config_smp = %+v", smp)
	}
	if got := EffectiveDomain(smp, u.Enums); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("default domain = %v", got)
	}
	cpus := u.Globals["nr_cpus"]
	if got := EffectiveDomain(cpus, u.Enums); len(got) != 3 || got[2] != 4 {
		t.Errorf("explicit domain = %v", got)
	}
	if !u.Globals["spin_lock"].Func.Multiverse {
		t.Error("function attribute lost")
	}
}

func TestEnumDomain(t *testing.T) {
	u := parseAndCheck(t, `
		enum Mode { MODE_ASCII, MODE_UTF8 = 5, MODE_OTHER };
		multiverse enum Mode mode;
		int f(void) { return mode == MODE_UTF8; }
	`)
	m := u.Globals["mode"]
	dom := EffectiveDomain(m, u.Enums)
	if len(dom) != 3 || dom[0] != 0 || dom[1] != 5 || dom[2] != 6 {
		t.Errorf("enum domain = %v", dom)
	}
}

func TestEnumConstantsBecomeLiterals(t *testing.T) {
	u := parseAndCheck(t, `
		enum E { A = 3, B };
		int f(void) { return B; }
	`)
	f := u.Globals["f"].Func
	ret := f.Body.Stmts[0].(*Return)
	lit, ok := ret.X.(*IntLit)
	if !ok || lit.Value != 4 {
		t.Errorf("return expr = %#v", ret.X)
	}
}

func TestFunctionPointerSwitch(t *testing.T) {
	u := parseAndCheck(t, `
		void native_sti(void);
		multiverse void (*pv_sti)(void);
		void irq_enable(void) { pv_sti(); }
		void setup(void) { pv_sti = native_sti; }
	`)
	fp := u.Globals["pv_sti"]
	if !fp.Multiverse || fp.Type.Kind != KindPtr || fp.Type.Elem.Kind != KindFunc {
		t.Errorf("pv_sti = %v", fp.Type)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	u := parseAndCheck(t, `
		char buf[100];
		long f(char* p, long n) {
			char* q = p + n;
			long d = q - p;
			int c = q[0];
			q[1] = 'x';
			return d + c + buf[2];
		}
	`)
	_ = u
}

func TestStatementsParse(t *testing.T) {
	parseAndCheck(t, `
		int f(int n) {
			int sum = 0;
			for (int i = 0; i < n; i++) { sum += i; }
			while (sum > 100) { sum -= 10; }
			do { sum++; } while (sum < 0);
			if (sum == 7) { return 1; } else if (sum) return 2;
			for (;;) { break; }
			int i = 0;
			while (1) {
				i++;
				if (i > 3) break;
				continue;
			}
			return sum ? sum : -1;
		}
	`)
}

func TestBuiltins(t *testing.T) {
	parseAndCheck(t, `
		ulong lockvar;
		void f(void) {
			long old = __xchg(&lockvar, 1);
			__pause();
			__cli();
			__sti();
			__hcall(2);
			__outb(1, 'x');
			int v = __inb(7);
			ulong t = __rdtsc();
			if (old + v + (long)t) {}
		}
	`)
	expectError(t, "void f(void) { __xchg(1, 2); }", "__xchg requires a pointer")
	expectError(t, "void f(void) { __pause(1); }", "takes 0 arguments")
	expectError(t, "void f(void) { int x = __pause; }", "must be called")
}

func TestTypeErrors(t *testing.T) {
	expectError(t, "int f(void) { return x; }", "undefined")
	expectError(t, "int f(void) { int x; int x; }", "redeclared")
	expectError(t, "void f(void) { break; }", "outside a loop")
	expectError(t, "void f(void) { continue; }", "outside a loop")
	expectError(t, "int f(void) { return; }", "missing return value")
	expectError(t, "void f(void) { return 1; }", "return with a value")
	expectError(t, "void f(void) { 1 = 2; }", "not assignable")
	expectError(t, "void f(int* p) { p = 5; }", "cannot assign")
	expectError(t, "void f(int* p) { int x = *p + p; }", "cannot assign") // int = ptr
	expectError(t, "int g; int g;", "redefined")
	expectError(t, "int g(void); int g; ", "conflicting declarations")
	expectError(t, "int f(void) { return f(1); }", "0")
	expectError(t, "void f(void* p) { *p; }", "dereference")
	expectError(t, "multiverse int* p;", "multiverse attribute requires")
	expectError(t, "multiverse(9999999999) int x;", "out of 32-bit range")
	expectError(t, "multiverse(1, 1) int x;", "duplicate domain value")
	expectError(t, "noscratch int f(void) { return 1; }", "must return void")
	expectError(t, "enum E { A }; enum E { B };", "redefined")
	expectError(t, "enum E { A, A };", "redefined")
	expectError(t, "int f(void) { return 1; } int f(void) { return 2; }", "redefined")
	expectError(t, "multiverse int x; int x;", "inconsistent multiverse attribute")
	expectError(t, "extern int x = 5;", "cannot have an initializer")
	expectError(t, "enum Nope v;", "undefined enum")
	expectError(t, "int a[0];", "array length")
}

func TestExternMergesWithDefinition(t *testing.T) {
	u := parseAndCheck(t, `
		extern multiverse int flag;
		multiverse int flag;
		int f(void) { return flag; }
	`)
	if u.Globals["flag"].Extern {
		t.Error("definition did not override extern")
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	u := parseAndCheck(t, `
		int twice(int x);
		int user(void) { return twice(4); }
		int twice(int x) { return x * 2; }
	`)
	if u.Globals["twice"].Func.Body == nil {
		t.Error("definition did not replace prototype")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	u := parseAndCheck(t, "int f(void) { return 2 + 3 * 4; }")
	ret := u.Globals["f"].Func.Body.Stmts[0].(*Return)
	b := ret.X.(*Binary)
	if b.Op != "+" {
		t.Fatalf("top op = %q", b.Op)
	}
	if inner, ok := b.Y.(*Binary); !ok || inner.Op != "*" {
		t.Errorf("rhs = %#v", b.Y)
	}
}

func TestUnsignedSemantics(t *testing.T) {
	u := parseAndCheck(t, `
		uint f(uint a, int b) { return a / b; }
		long g(long a, long b) { return a / b; }
	`)
	fd := u.Globals["f"].Func
	ret := fd.Body.Stmts[0].(*Return)
	if ret.X.Type().IsSigned() {
		t.Error("uint/int division should be unsigned")
	}
	gd := u.Globals["g"].Func
	ret2 := gd.Body.Stmts[0].(*Return)
	if !ret2.X.Type().IsSigned() {
		t.Error("long/long division should be signed")
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	u := parseAndCheck(t, `
		int f(int x) {
			int y = x;
			{ int x = 2; y += x; }
			return y + x;
		}
	`)
	_ = u
}

func TestCasts(t *testing.T) {
	parseAndCheck(t, `
		long f(int* p) {
			long a = (long)p;
			int* q = (int*)a;
			char c = (char)300;
			return (long)(q == p) + c;
		}
	`)
}

func TestStringLiteralType(t *testing.T) {
	u := parseAndCheck(t, `char* msg(void) { return "hello"; }`)
	ret := u.Globals["msg"].Func.Body.Stmts[0].(*Return)
	if ret.X.Type().String() != "char*" {
		t.Errorf("string type = %v", ret.X.Type())
	}
}

func TestCommonTypeRules(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{TypeChar, TypeChar, TypeInt},
		{TypeInt, TypeUInt, TypeUInt},
		{TypeInt, TypeLong, TypeLong},
		{TypeULong, TypeInt, TypeULong},
		{TypeUInt, TypeLong, TypeLong},
		{TypeBool, TypeBool, TypeInt},
	}
	for _, c := range cases {
		got := Common(c.a, c.b)
		if !got.Same(c.want) {
			t.Errorf("Common(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTypeStringAndSame(t *testing.T) {
	fp := PointerTo(FuncType(TypeVoid, []*Type{TypeInt}))
	if fp.String() != "void(int)*" {
		t.Errorf("fp string = %q", fp.String())
	}
	if !fp.Same(PointerTo(FuncType(TypeVoid, []*Type{TypeInt}))) {
		t.Error("structurally equal function pointers not Same")
	}
	if fp.Same(PointerTo(FuncType(TypeVoid, nil))) {
		t.Error("different arities Same")
	}
	arr := ArrayOf(TypeChar, 10)
	if arr.ByteSize() != 10 {
		t.Error("array size")
	}
	if !EnumType("M").Same(EnumType("M")) || EnumType("M").Same(EnumType("N")) {
		t.Error("enum Same by name")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"int f( { }",
		"int f(void) { if }",
		"int f(void) { return 1 }",
		"int",
		"int x",
		"int f(void) { x ]; }",
		"enum E { };", // empty enums: first expectIdent fails
		"multiverse() int x;",
	} {
		if u, err := Parse("t", src); err == nil {
			if err := Check(u); err == nil {
				t.Errorf("Parse+Check(%q) succeeded", src)
			}
		}
	}
}

func TestMoreThanSixParamsRejected(t *testing.T) {
	expectError(t, "int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }",
		"more than 6 parameters")
}

func TestTernaryTyping(t *testing.T) {
	u := parseAndCheck(t, "long f(int c, int* p, int* q) { int* r = c ? p : q; return c ? 1 : 2; }")
	_ = u
	expectError(t, "void f(int c, int* p) { c ? p : 1; }", "mismatched")
}

func TestSwitchParsing(t *testing.T) {
	u := parseAndCheck(t, `
		enum M { A, B };
		int f(int x) {
			switch (x + 1) {
			case A:
				return 1;
			case B: {
				int t = 2;
				return t;
			}
			case 2 + 3:
				break;
			default:
				return 9;
			}
			return 0;
		}
	`)
	f := u.Globals["f"].Func
	sw := f.Body.Stmts[0].(*Switch)
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if sw.Cases[2].Val != 5 {
		t.Errorf("constant-expression case = %d, want 5", sw.Cases[2].Val)
	}
	if !sw.Cases[3].IsDefault {
		t.Error("default not last")
	}
}

func TestSwitchErrors(t *testing.T) {
	expectError(t, "void f(int x) { switch (x) { case 1: break; case 1: break; } }",
		"duplicate case")
	expectError(t, "void f(int x) { switch (x) { default: break; default: break; } }",
		"multiple default")
	expectError(t, "void f(int x) { switch (x) { case x: break; } }",
		"constant expression")
	expectError(t, "void f(int* p) { switch (p) { case 0: break; } }",
		"requires an integer")
	expectError(t, "void f(int x) { switch (x) { x = 1; case 1: break; } }",
		"before first case")
	expectError(t, "void f(void) { break; }", "outside a loop or switch")
}

func TestSwitchBreakBindsToSwitch(t *testing.T) {
	// break inside a switch is legal even outside any loop.
	parseAndCheck(t, `
		void f(int x) {
			switch (x) {
			case 1:
				break;
			}
		}
	`)
	// continue inside a switch but outside a loop is not.
	expectError(t, "void f(int x) { switch (x) { case 1: continue; } }",
		"continue outside a loop")
}

func TestBindAttributeParsing(t *testing.T) {
	u := parseAndCheck(t, `
		multiverse int a;
		multiverse int b;
		multiverse(bind(a)) void f(void) { if (a && b) { } }
	`)
	f := u.Globals["f"].Func
	if len(f.BindOnly) != 1 || f.BindOnly[0] != "a" {
		t.Errorf("BindOnly = %v", f.BindOnly)
	}
	expectError(t, "multiverse(bind(nope)) void f(void) { }", "not a multiverse configuration switch")
	expectError(t, "int x; multiverse(bind(x)) void f(void) { }", "not a multiverse configuration switch")
	expectError(t, "multiverse(bind(a)) int v;", "belongs on a multiverse function")
	expectError(t, "multiverse(0, 1) void f(void) { }", "belongs on the switch variable")
}
