package cc

import (
	"fmt"
	"strings"
)

// FormatFunc renders a (possibly specialized) function definition back
// to MVC source. The variant generator uses it to make generated
// variants inspectable (`mvcc -dump-variants`), and the tests use it
// for parse-print round trips.
func FormatFunc(f *FuncDecl) string {
	p := &srcPrinter{}
	p.funcDecl(f)
	return p.sb.String()
}

// FormatStmt renders one statement (mainly for diagnostics).
func FormatStmt(s Stmt) string {
	p := &srcPrinter{}
	p.stmt(s)
	return p.sb.String()
}

// FormatExpr renders one expression.
func FormatExpr(e Expr) string {
	p := &srcPrinter{}
	p.expr(e, 0)
	return p.sb.String()
}

type srcPrinter struct {
	sb     strings.Builder
	indent int
}

func (p *srcPrinter) nl() {
	p.sb.WriteString("\n")
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("\t")
	}
}

func (p *srcPrinter) funcDecl(f *FuncDecl) {
	if f.Multiverse {
		p.sb.WriteString("multiverse ")
	}
	if f.NoScratch {
		p.sb.WriteString("noscratch ")
	}
	if f.Static {
		p.sb.WriteString("static ")
	}
	p.sb.WriteString(typeName(f.Ret))
	p.sb.WriteString(" ")
	p.sb.WriteString(f.Name)
	p.sb.WriteString("(")
	if len(f.Params) == 0 {
		p.sb.WriteString("void")
	}
	for i, param := range f.Params {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		p.sb.WriteString(typeName(param.Type))
		p.sb.WriteString(" ")
		p.sb.WriteString(localName(param))
	}
	p.sb.WriteString(")")
	if f.Body == nil {
		p.sb.WriteString(";")
		return
	}
	p.sb.WriteString(" ")
	p.block(f.Body)
	p.sb.WriteString("\n")
}

// typeName renders a type in MVC declaration syntax.
func typeName(t *Type) string {
	switch t.Kind {
	case KindPtr:
		return typeName(t.Elem) + "*"
	case KindArray:
		// Only valid in global declarations; expressions never need it.
		return fmt.Sprintf("%s[%d]", typeName(t.Elem), t.ArrayLen)
	default:
		return t.String()
	}
}

// localName disambiguates shadowed locals with their sema sequence
// number so the printed program stays compilable.
func localName(s *VarSym) string {
	if s.Storage == StorageLocal || s.Storage == StorageParam {
		if s.Seq > 0 {
			return fmt.Sprintf("%s_%d", s.Name, s.Seq)
		}
	}
	return s.Name
}

func (p *srcPrinter) block(b *Block) {
	p.sb.WriteString("{")
	p.indent++
	for _, st := range b.Stmts {
		p.nl()
		p.stmt(st)
	}
	p.indent--
	p.nl()
	p.sb.WriteString("}")
}

func (p *srcPrinter) stmt(s Stmt) {
	switch s := s.(type) {
	case nil:
	case *Block:
		p.block(s)
	case *DeclStmt:
		p.sb.WriteString(typeName(s.Sym.Type))
		p.sb.WriteString(" ")
		p.sb.WriteString(localName(s.Sym))
		if s.Init != nil {
			p.sb.WriteString(" = ")
			p.expr(s.Init, 0)
		}
		p.sb.WriteString(";")
	case *ExprStmt:
		p.expr(s.X, 0)
		p.sb.WriteString(";")
	case *If:
		p.sb.WriteString("if (")
		p.expr(s.Cond, 0)
		p.sb.WriteString(") ")
		p.stmtAsBlock(s.Then)
		if s.Else != nil {
			p.sb.WriteString(" else ")
			p.stmtAsBlock(s.Else)
		}
	case *While:
		p.sb.WriteString("while (")
		p.expr(s.Cond, 0)
		p.sb.WriteString(") ")
		p.stmtAsBlock(s.Body)
	case *DoWhile:
		p.sb.WriteString("do ")
		p.stmtAsBlock(s.Body)
		p.sb.WriteString(" while (")
		p.expr(s.Cond, 0)
		p.sb.WriteString(");")
	case *For:
		p.sb.WriteString("for (")
		if s.Init != nil {
			p.stmt(s.Init) // includes its own ';'
		} else {
			p.sb.WriteString(";")
		}
		p.sb.WriteString(" ")
		if s.Cond != nil {
			p.expr(s.Cond, 0)
		}
		p.sb.WriteString("; ")
		if s.Post != nil {
			p.expr(s.Post, 0)
		}
		p.sb.WriteString(") ")
		p.stmtAsBlock(s.Body)
	case *Switch:
		p.sb.WriteString("switch (")
		p.expr(s.Cond, 0)
		p.sb.WriteString(") {")
		for _, cs := range s.Cases {
			p.nl()
			if cs.IsDefault {
				p.sb.WriteString("default:")
			} else {
				fmt.Fprintf(&p.sb, "case %d:", cs.Val)
			}
			p.indent++
			for _, st := range cs.Stmts {
				p.nl()
				p.stmt(st)
			}
			p.indent--
		}
		p.nl()
		p.sb.WriteString("}")
	case *Return:
		p.sb.WriteString("return")
		if s.X != nil {
			p.sb.WriteString(" ")
			p.expr(s.X, 0)
		}
		p.sb.WriteString(";")
	case *Break:
		p.sb.WriteString("break;")
	case *Continue:
		p.sb.WriteString("continue;")
	case *Empty:
		p.sb.WriteString(";")
	default:
		fmt.Fprintf(&p.sb, "/* ?%T */", s)
	}
}

// stmtAsBlock prints control-flow bodies as braced blocks so dangling
// elses cannot re-associate.
func (p *srcPrinter) stmtAsBlock(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.sb.WriteString("{")
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
	p.nl()
	p.sb.WriteString("}")
}

// Binding powers for parenthesization, mirroring the parser's levels.
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

const (
	precTernary = 0
	precUnary   = 11
	precPostfix = 12
)

// expr prints e, parenthesizing when its precedence is below min.
func (p *srcPrinter) expr(e Expr, min int) {
	switch e := e.(type) {
	case *IntLit:
		if e.Value < 0 {
			// Negative literals re-lex as unary minus; parenthesize so
			// contexts like case labels or a-(-1) stay unambiguous.
			fmt.Fprintf(&p.sb, "(%d)", e.Value)
		} else {
			fmt.Fprintf(&p.sb, "%d", e.Value)
		}
	case *StrLit:
		fmt.Fprintf(&p.sb, "%q", e.Value)
	case *VarRef:
		if e.Sym != nil {
			p.sb.WriteString(localName(e.Sym))
		} else {
			p.sb.WriteString(e.Name)
		}
	case *Unary:
		p.paren(min > precUnary, func() {
			p.sb.WriteString(e.Op)
			// Space avoids -(-x) printing as --x.
			if e.Op == "-" {
				p.sb.WriteString(" ")
			}
			p.expr(e.X, precUnary)
		})
	case *Binary:
		prec := binPrec[e.Op]
		p.paren(min > prec, func() {
			p.expr(e.X, prec)
			fmt.Fprintf(&p.sb, " %s ", e.Op)
			p.expr(e.Y, prec+1)
		})
	case *Assign:
		p.paren(min > precTernary, func() {
			p.expr(e.LHS, precPostfix)
			fmt.Fprintf(&p.sb, " %s ", e.Op)
			p.expr(e.RHS, precTernary)
		})
	case *IncDec:
		if e.Prefix {
			p.sb.WriteString(e.Op)
			p.expr(e.X, precUnary)
		} else {
			p.expr(e.X, precPostfix)
			p.sb.WriteString(e.Op)
		}
	case *Call:
		p.expr(e.Fn, precPostfix)
		p.sb.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(a, precTernary)
		}
		p.sb.WriteString(")")
	case *Index:
		p.expr(e.Base, precPostfix)
		p.sb.WriteString("[")
		p.expr(e.Idx, precTernary)
		p.sb.WriteString("]")
	case *Cast:
		p.paren(min > precUnary, func() {
			fmt.Fprintf(&p.sb, "(%s)", typeName(e.To))
			p.expr(e.X, precUnary)
		})
	case *Cond:
		p.paren(min > precTernary, func() {
			p.expr(e.C, 1)
			p.sb.WriteString(" ? ")
			p.expr(e.T, precTernary)
			p.sb.WriteString(" : ")
			p.expr(e.F, precTernary)
		})
	case *Builtin:
		p.sb.WriteString(e.Name)
		p.sb.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(a, precTernary)
		}
		p.sb.WriteString(")")
	default:
		fmt.Fprintf(&p.sb, "/* ?%T */", e)
	}
}

func (p *srcPrinter) paren(need bool, body func()) {
	if need {
		p.sb.WriteString("(")
	}
	body()
	if need {
		p.sb.WriteString(")")
	}
}
