package dbg

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/snapshot"
)

// testSrc is the canonical debugger workload: a multiverse switch, a
// generic function whose variants differ, and a driver loop so there
// are plenty of cycles to travel through.
const testSrc = `
multiverse int mode;
long work;
multiverse void step(void) {
	if (mode) {
		work += 3;
	} else {
		work += 1;
	}
}
long spin(long n) {
	long i;
	for (i = 0; i < n; i++) { step(); }
	return work;
}
`

func buildImg(t *testing.T) *link.Image {
	t.Helper()
	img, _, err := core.BuildImage(core.GenOptions{}, core.Source{Name: "dbg_test.mvc", Text: testSrc})
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	return img
}

func newSession(t *testing.T, opts Options) *Session {
	t.Helper()
	s, err := New(buildImg(t), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// mustRun advances n cycles, failing the test on error.
func mustRun(t *testing.T, s *Session, n uint64) string {
	t.Helper()
	out, err := s.Run(n)
	if err != nil {
		t.Fatalf("Run(%d): %v", n, err)
	}
	return out
}

func mustDigest(t *testing.T, s *Session) string {
	t.Helper()
	d, err := s.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	return d
}

// TestBackThroughTextPokeCommit is the headline acceptance property:
// rewind across a commit that used the BRK text-poke protocol, run
// forward again, and land on the same snapshot digest as the first
// pass — bit-identical time travel through self-modification.
func TestBackThroughTextPokeCommit(t *testing.T) {
	s := newSession(t, Options{Commit: core.CommitOptions{Mode: core.ModeTextPoke}})
	if err := s.Call("spin", 500); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// Advance to a pause where pc sits in spin's loop body, not inside
	// step — the activeness check would (correctly) refuse the commit
	// if the generic being rebound were live on the stack.
	mustRun(t, s, 2004)
	pauseCycle := s.Cycles()
	if err := s.Set("mode", 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if pokes := s.Runtime().Stats.TextPokes; pokes == 0 {
		t.Fatalf("commit did not use the BRK poke protocol (TextPokes=0)")
	}
	mustRun(t, s, 1500)
	wantCycle := s.Cycles()
	wantDigest := mustDigest(t, s)

	// Rewind to before the set+commit, then replay forward to the exact
	// same cycle. The retained future must re-fire the poke-protocol
	// commit at its recorded place.
	back := wantCycle - pauseCycle + 600 // lands well before the commit
	if _, err := s.Back(back); err != nil {
		t.Fatalf("Back(%d): %v", back, err)
	}
	if got := s.Cycles(); got >= pauseCycle {
		t.Fatalf("Back(%d) landed at cycle %d, not before the commit at %d", back, got, pauseCycle)
	}
	if s.Runtime().Stats.Commits != 0 {
		t.Fatalf("rewound state still shows %d commit(s)", s.Runtime().Stats.Commits)
	}
	mustRun(t, s, wantCycle-s.Cycles())
	if got := s.Cycles(); got != wantCycle {
		t.Fatalf("replay stopped at cycle %d, want %d", got, wantCycle)
	}
	if st := s.Runtime().Stats; st.Commits != 1 || st.TextPokes == 0 {
		t.Fatalf("replay did not re-fire the poke commit: %+v", st)
	}
	if got := mustDigest(t, s); got != wantDigest {
		t.Fatalf("digest after back+replay = %s, want %s", got, wantDigest)
	}
}

// TestBackSplitsRunMove rewinds into the middle of a single long run
// move and checks the position, then replays to the end state.
func TestBackSplitsRunMove(t *testing.T) {
	s := newSession(t, Options{})
	if err := s.Call("spin", 300); err != nil {
		t.Fatalf("Call: %v", err)
	}
	out := mustRun(t, s, 0) // run to halt
	if !strings.Contains(out, "halted") {
		t.Fatalf("run to halt reported %q", out)
	}
	endCycle := s.Cycles()
	endDigest := mustDigest(t, s)
	if !s.Machine().CPU.Halted() {
		t.Fatalf("not halted after run to halt")
	}

	if _, err := s.Back(endCycle / 2); err != nil {
		t.Fatalf("Back: %v", err)
	}
	midCycle := s.Cycles()
	if midCycle >= endCycle || s.Machine().CPU.Halted() {
		t.Fatalf("rewind landed at cycle %d (halted=%v), want mid-run", midCycle, s.Machine().CPU.Halted())
	}
	// The target may overshoot to a block boundary but must be near it.
	if target := endCycle - endCycle/2; midCycle < target {
		t.Fatalf("rewound to %d, before the target %d", midCycle, target)
	}
	// Replay to halt reproduces the end state.
	out = mustRun(t, s, 0)
	if !strings.Contains(out, "halted") {
		t.Fatalf("replay to halt reported %q", out)
	}
	if s.Cycles() != endCycle {
		t.Fatalf("replay halted at cycle %d, want %d", s.Cycles(), endCycle)
	}
	if got := mustDigest(t, s); got != endDigest {
		t.Fatalf("digest after replay-to-halt = %s, want %s", got, endDigest)
	}
}

// TestTruncateOnNewWrite: issuing a new operation mid-timeline
// discards the retained future, and the session continues on the new
// branch.
func TestTruncateOnNewWrite(t *testing.T) {
	s := newSession(t, Options{})
	if err := s.Call("spin", 200); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mustRun(t, s, 1000)
	if err := s.Set("mode", 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	mustRun(t, s, 1000)
	movesBefore := len(s.moves)

	// Rewind past the commit, then branch with a different set: the
	// old future (set mode=1 + commit + run) must be gone.
	if _, err := s.Back(s.Cycles() - 500); err != nil {
		t.Fatalf("Back: %v", err)
	}
	if s.pos >= movesBefore {
		t.Fatalf("rewind did not move the position back (pos=%d)", s.pos)
	}
	if err := s.Set("mode", 0); err != nil {
		t.Fatalf("Set on branch: %v", err)
	}
	if s.pos != len(s.moves) {
		t.Fatalf("new write left a retained future (pos=%d, moves=%d)", s.pos, len(s.moves))
	}
	if s.Runtime().Stats.Commits != 0 {
		t.Fatalf("branch state still shows the truncated commit")
	}
	// The branch keeps running normally.
	out := mustRun(t, s, 0)
	if !strings.Contains(out, "halted") {
		t.Fatalf("branch run to halt reported %q", out)
	}
}

// TestFailedCommitReplays: a commit refused by the activeness check
// stays on the timeline and replays as the same failure.
func TestFailedCommitReplays(t *testing.T) {
	s := newSession(t, Options{Commit: core.CommitOptions{Mode: core.ModeTextPoke}})
	if err := s.Call("spin", 500); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// Probe pauses until one lands inside step (the generic being
	// rebound live on the stack) so the commit is refused.
	var ferr error
	for i := 0; i < 64; i++ {
		mustRun(t, s, 7)
		if err := s.Set("mode", 1); err != nil {
			t.Fatalf("Set: %v", err)
		}
		if _, ferr = s.Commit(); ferr != nil {
			break
		}
		if err := s.Revert(); err != nil {
			t.Fatalf("Revert: %v", err)
		}
	}
	if ferr == nil {
		t.Skip("never caught the generic active on the stack; layout changed")
	}
	refusals := s.Runtime().Stats.ActiveRefusals
	if refusals == 0 {
		t.Fatalf("refused commit did not count an active-refusal")
	}
	mustRun(t, s, 400)
	wantDigest := mustDigest(t, s)
	wantCycle := s.Cycles()

	if _, err := s.Back(350); err != nil {
		t.Fatalf("Back: %v", err)
	}
	mustRun(t, s, wantCycle-s.Cycles())
	if got := mustDigest(t, s); got != wantDigest {
		t.Fatalf("digest after replaying a failed commit = %s, want %s", got, wantDigest)
	}
	if got := s.Runtime().Stats.ActiveRefusals; got != refusals {
		t.Fatalf("replay refusal count = %d, want %d", got, refusals)
	}
}

// TestBreaksAndSpans: the commit break class stops a run at commit
// activity, and the spans view groups the recorded events.
func TestBreaksAndSpans(t *testing.T) {
	s := newSession(t, Options{})
	if err := s.Call("spin", 2000); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mustRun(t, s, 1000)
	if on, err := s.ToggleBreak("commit"); err != nil || !on {
		t.Fatalf("ToggleBreak: on=%v err=%v", on, err)
	}
	if _, err := s.ToggleBreak("bogus"); err == nil {
		t.Fatalf("ToggleBreak accepted a bogus class")
	}
	if err := s.Set("mode", 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	out := mustRun(t, s, 50_000)
	// The commit events predate the run, so the first chunk's scan
	// trips immediately.
	if !strings.Contains(out, "break: commit") {
		// Commit happened before the run; the cursor was synced at arm
		// time, so the commit events recorded between arm and run DO
		// count as fresh.
		t.Fatalf("run did not stop at the commit break: %q", out)
	}
	spans := s.Spans()
	if !strings.Contains(spans, "span ") {
		t.Fatalf("spans view shows no spans:\n%s", spans)
	}
	if off, err := s.ToggleBreak("commit"); err != nil || off {
		t.Fatalf("ToggleBreak disarm: on=%v err=%v", off, err)
	}
}

// TestWhereStateDis: smoke the inspection views.
func TestWhereStateDis(t *testing.T) {
	s := newSession(t, Options{})
	if err := s.Call("spin", 100); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mustRun(t, s, 500)
	if w := s.Where(); !strings.Contains(w, "cycle ") || !strings.Contains(w, "pc=") {
		t.Fatalf("Where: %q", w)
	}
	if st := s.State(); !strings.Contains(st, "func step") {
		t.Fatalf("State missing function table:\n%s", st)
	}
	dis, err := s.Disassemble("spin", 6)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if !strings.Contains(dis, "spin:") {
		t.Fatalf("Disassemble missing symbol label:\n%s", dis)
	}
	if _, err := s.Disassemble("no_such_symbol", 1); err == nil {
		t.Fatalf("Disassemble accepted an unknown symbol")
	}
}

// TestOpenAtSnapshot: a session opened with Options.Snapshot starts
// at the captured state (same digest) and continuing from it lands
// exactly where the original session's forward execution landed.
func TestOpenAtSnapshot(t *testing.T) {
	img := buildImg(t)
	a, err := New(img, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.Call("spin", 300); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mustRun(t, a, 1000)
	midCycle := a.Cycles()
	midDigest := mustDigest(t, a)
	snap, err := snapshot.Capture(a.Machine(), a.Runtime())
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	mustRun(t, a, 700)
	wantCycle, wantDigest := a.Cycles(), mustDigest(t, a)

	b, err := New(img, Options{Snapshot: snap.Encode()})
	if err != nil {
		t.Fatalf("New with snapshot: %v", err)
	}
	if b.Cycles() != midCycle {
		t.Fatalf("opened at cycle %d, want %d", b.Cycles(), midCycle)
	}
	if d := mustDigest(t, b); d != midDigest {
		t.Fatalf("opening digest %s != captured %s", d, midDigest)
	}
	mustRun(t, b, 700)
	if b.Cycles() != wantCycle {
		t.Fatalf("continued to cycle %d, want %d", b.Cycles(), wantCycle)
	}
	if d := mustDigest(t, b); d != wantDigest {
		t.Fatalf("continuation digest diverged from forward execution")
	}
	// Rewinding below the snapshot clamps to the timeline origin.
	if _, err := b.Back(10 * midCycle); err != nil {
		t.Fatalf("Back: %v", err)
	}
	if b.Cycles() != midCycle {
		t.Fatalf("rewound to cycle %d, want the snapshot's %d", b.Cycles(), midCycle)
	}
}

// TestOpenAtSnapshotWrongImage: a snapshot from a different binary is
// refused at session construction, not at first use.
func TestOpenAtSnapshotWrongImage(t *testing.T) {
	a, err := New(buildImg(t), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap, err := snapshot.Capture(a.Machine(), a.Runtime())
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	other, _, err := core.BuildImage(core.GenOptions{}, core.Source{
		Name: "other.mvc",
		Text: "long f(long n) { return n + 1; }",
	})
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	if _, err := New(other, Options{Snapshot: snap.Encode()}); err == nil {
		t.Fatalf("snapshot from a different image accepted")
	}
}
