// Package dbg is the time-travel debugger engine behind cmd/mvdbg.
//
// A Session owns one simulated machine plus its multiverse runtime and
// exposes a deterministic timeline made of *moves*: cycle advances
// (run), host-driven runtime operations (set/commit/revert) and call
// starts. Because execution is bit-deterministic and pausing with
// cpu.RunUntil is invariant (the difftests pin both), going backwards
// needs no inverse interpreter: `back N` restores the nearest earlier
// keyframe snapshot and re-executes the logged moves forward to the
// target cycle, landing on a state whose snapshot digest is identical
// to the one forward execution produced the first time — including
// through commits that used the BRK text-poke protocol.
//
// Keyframes are full machine snapshots (internal/snapshot) captured
// every few moves, so rewind cost is bounded by the keyframe interval,
// not by distance from cycle zero.
//
// Rewinding keeps the future: after `back`, the moves ahead of the new
// position stay on the timeline and `run` replays them — the logged
// set/commit/revert operations fire at their recorded cycles — so
// going back and forward again reproduces the original states, digest
// for digest. Only issuing a *new* write operation (call, set, commit,
// revert) mid-timeline discards the stale future, exactly like an
// editor's undo history.
package dbg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// keyframeEvery is the keyframe interval in moves: rewinding replays
// at most this many moves past the restored snapshot.
const keyframeEvery = 8

// breakChunk is the run granularity (in cycles) while breakpoints are
// armed: the run pauses at each chunk boundary to scan for newly
// recorded events. Pausing is cycle-invariant, so chunking never
// changes what the program computes — only where the debugger stops.
const breakChunk = 2048

// runToHalt is the recorded target of a bare `run`: drive the CPU to
// the halt stub rather than to a cycle threshold.
const runToHalt = ^uint64(0)

type moveKind uint8

const (
	moveCall moveKind = iota
	moveRun
	moveSet
	moveCommit
	moveRevert
)

// move is one timeline step. Replaying the same move sequence from
// the same snapshot reproduces the same machine state bit for bit —
// that is the whole time-travel mechanism.
type move struct {
	kind   moveKind
	target uint64   // moveRun: absolute cycle to run until (runToHalt: to the halt stub)
	name   string   // moveCall: entry symbol; moveSet: global
	value  uint64   // moveSet: value
	args   []uint64 // moveCall
	// failed records that the operation errored when first executed
	// (e.g. a commit refused because the function was active). The
	// abort itself mutates state (statistics, flight events), so the
	// move stays on the timeline and replay expects the same failure.
	failed bool
	// postCycle is the cycle counter after the move — the timeline
	// coordinate `back` searches.
	postCycle uint64
}

// Options configures a Session.
type Options struct {
	// Commit is the runtime's commit-mode policy (parked, stop-machine,
	// text-poke; refuse or defer on activeness). It is host wiring, not
	// machine state, so the session re-applies it after every restore.
	Commit core.CommitOptions
	// MaxSteps bounds each run move; 0 uses the machine default.
	MaxSteps uint64
	// Snapshot, when non-empty, is an encoded machine snapshot (a
	// mvrun checkpoint, a -flight-snap failure capture, or a chaos
	// <artifact>.snap pin) applied to the fresh system before the
	// timeline starts: position zero is the snapshot's state, so the
	// debugger opens directly at the captured point — typically the
	// failure — with no re-run. It must match the session's image.
	Snapshot []byte
}

// Session is one debugging timeline over one image.
type Session struct {
	img  *link.Image
	opts Options

	m  *machine.Machine
	rt *core.Runtime
	// rec is the always-on flight recorder: the spans view and the
	// break-event scans read it. It is rebuilt (empty) on every
	// restore, so its history covers the timeline since the last
	// rewind — the replayed moves repopulate it deterministically.
	rec *trace.Recorder
	wd  *trace.Watchdog

	// moves is the full timeline; pos is the current position in it.
	// pos < len(moves) after a rewind: the future is retained and a
	// subsequent Run *replays* it (set/commit/revert at their logged
	// places), landing on bit-identical states. Issuing a new write
	// operation mid-timeline truncates the stale future first.
	moves     []move
	pos       int
	keyframes map[int][]byte // encoded snapshots, keyed by move position
	breaks    map[string]bool

	initialCycle uint64
	seenEvents   uint64 // recorder events already scanned for breaks
	seenAlerts   int    // watchdog alerts already scanned
}

// New builds a session: a fresh machine and runtime for the image and
// the position-zero keyframe.
func New(img *link.Image, opts Options) (*Session, error) {
	s := &Session{
		img:       img,
		opts:      opts,
		keyframes: make(map[int][]byte),
		breaks:    make(map[string]bool),
	}
	if err := s.freshSystem(); err != nil {
		return nil, err
	}
	if len(opts.Snapshot) != 0 {
		snap, err := snapshot.Decode(opts.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("dbg: snapshot: %w", err)
		}
		if err := snapshot.Apply(snap, s.m, s.rt); err != nil {
			return nil, fmt.Errorf("dbg: snapshot: %w", err)
		}
	}
	s.initialCycle = s.m.CPU.Cycles()
	if err := s.keyframe(0); err != nil {
		return nil, err
	}
	return s, nil
}

// freshSystem replaces the session's machine/runtime pair with a
// pristine one and re-attaches the observability wiring.
func (s *Session) freshSystem() error {
	m, err := machine.New(s.img)
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(s.img, &core.UserPlatform{M: m})
	if err != nil {
		return err
	}
	rt.SetCommitOptions(s.opts.Commit)
	rec := trace.NewRecorder(0)
	core.AttachFlightRecorder(rec, m, rt)
	rules, err := trace.ParseWatchdogRules("")
	if err != nil {
		return err
	}
	wd := trace.NewWatchdog(rules)
	core.AttachWatchdog(wd, m, rt)
	if s.opts.MaxSteps != 0 {
		m.MaxSteps = s.opts.MaxSteps
	}
	s.m, s.rt, s.rec, s.wd = m, rt, rec, wd
	s.seenEvents, s.seenAlerts = 0, 0
	return nil
}

// Machine exposes the live machine (tests inspect it).
func (s *Session) Machine() *machine.Machine { return s.m }

// Runtime exposes the live runtime (tests inspect it).
func (s *Session) Runtime() *core.Runtime { return s.rt }

// Cycles returns the current timeline position in simulated cycles.
func (s *Session) Cycles() uint64 { return s.m.CPU.Cycles() }

// Digest captures the current machine+runtime state and returns its
// canonical snapshot digest.
func (s *Session) Digest() (string, error) {
	snap, err := snapshot.Capture(s.m, s.rt)
	if err != nil {
		return "", err
	}
	return snapshot.Digest(snap.Encode())
}

func (s *Session) keyframe(pos int) error {
	snap, err := snapshot.Capture(s.m, s.rt)
	if err != nil {
		return fmt.Errorf("keyframe: %w", err)
	}
	s.keyframes[pos] = snap.Encode()
	return nil
}

// stateCycle returns the cycle counter at move boundary i.
func (s *Session) stateCycle(i int) uint64 {
	if i == 0 {
		return s.initialCycle
	}
	return s.moves[i-1].postCycle
}

// record appends an executed move at the current (end) position and
// drops a keyframe on interval boundaries.
func (s *Session) record(mv move) error {
	mv.postCycle = s.m.CPU.Cycles()
	s.moves = append(s.moves, mv)
	s.pos = len(s.moves)
	if len(s.moves)%keyframeEvery == 0 {
		return s.keyframe(len(s.moves))
	}
	return nil
}

// truncate discards the retained future before a new write operation
// diverges the timeline. If the session sits mid-way through a run
// move (a rewind landed inside it), the already re-executed part is
// first logged as its own run move so later rewinds can replay it.
func (s *Session) truncate() error {
	if s.pos < len(s.moves) {
		s.moves = s.moves[:s.pos]
		for k := range s.keyframes {
			if k > s.pos {
				delete(s.keyframes, k)
			}
		}
	}
	if c := s.m.CPU.Cycles(); c > s.stateCycle(s.pos) {
		return s.record(move{kind: moveRun, target: c})
	}
	return nil
}

// apply re-executes a logged move during replay. Moves recorded as
// failed must fail again; everything else must succeed — a mismatch
// means determinism broke, which is a bug worth a loud error.
func (s *Session) apply(mv *move) error {
	var err error
	switch mv.kind {
	case moveCall:
		err = s.m.StartCall(s.m.CPU, mv.name, mv.args...)
	case moveRun:
		c := s.m.CPU
		switch {
		case c.Halted():
		case mv.target == runToHalt:
			_, err = c.Run(s.m.MaxSteps)
		case c.Cycles() < mv.target:
			_, err = c.RunUntil(mv.target, s.m.MaxSteps)
		}
	case moveSet:
		err = s.writeGlobal(mv.name, mv.value)
	case moveCommit:
		_, err = s.rt.Commit()
	case moveRevert:
		err = s.rt.Revert()
	}
	if mv.failed {
		if err == nil {
			return fmt.Errorf("replay diverged: %s succeeded but originally failed", mv.describe())
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("replay diverged: %s: %w", mv.describe(), err)
	}
	return nil
}

func (mv *move) describe() string {
	switch mv.kind {
	case moveCall:
		return fmt.Sprintf("call %s", mv.name)
	case moveRun:
		if mv.target == runToHalt {
			return "run (to halt)"
		}
		return fmt.Sprintf("run until cycle %d", mv.target)
	case moveSet:
		return fmt.Sprintf("set %s=%d", mv.name, mv.value)
	case moveCommit:
		return "commit"
	case moveRevert:
		return "revert"
	}
	return "?"
}

func (s *Session) writeGlobal(name string, v uint64) error {
	sym, ok := s.img.Symbols[name]
	if !ok {
		return fmt.Errorf("no symbol %q", name)
	}
	size := 8
	if sym.Size > 0 && sym.Size < 8 {
		size = int(sym.Size)
	}
	return s.m.Mem.WriteUint(sym.Addr, size, v)
}

// seekTo rewinds the timeline to move position p: restore the nearest
// keyframe at or before p and replay the logged moves up to p. The
// future (moves p and beyond) is retained — a subsequent Run replays
// it rather than re-recording, so forward motion after a rewind lands
// on bit-identical states.
func (s *Session) seekTo(p int) error {
	best := 0
	for k := range s.keyframes {
		if k <= p && k > best {
			best = k
		}
	}
	snap, err := snapshot.Decode(s.keyframes[best])
	if err != nil {
		return fmt.Errorf("keyframe %d: %w", best, err)
	}
	if err := s.freshSystem(); err != nil {
		return err
	}
	if err := snapshot.Apply(snap, s.m, s.rt); err != nil {
		return fmt.Errorf("keyframe %d: %w", best, err)
	}
	for i := best; i < p; i++ {
		if err := s.apply(&s.moves[i]); err != nil {
			return err
		}
	}
	s.pos = p
	s.syncEventCursor()
	return nil
}

// syncEventCursor marks every currently recorded event and alert as
// seen, so break scans only trip on events newer than this point.
func (s *Session) syncEventCursor() {
	d := s.rec.Dump("dbg-cursor")
	s.seenEvents = d.Dropped + uint64(len(d.Events))
	s.seenAlerts = len(s.wd.Alerts())
}

// scanBreaks reports the first armed break event recorded since the
// last scan ("" when none).
func (s *Session) scanBreaks() string {
	d := s.rec.Dump("dbg-break-scan")
	total := d.Dropped + uint64(len(d.Events))
	fresh := total - s.seenEvents
	s.seenEvents = total
	if fresh > uint64(len(d.Events)) {
		fresh = uint64(len(d.Events))
	}
	hit := ""
	for _, fe := range d.Events[uint64(len(d.Events))-fresh:] {
		ev, err := fe.Event()
		if err != nil {
			continue
		}
		switch ev.Kind {
		case trace.KindCommitBegin, trace.KindCommitEnd, trace.KindCommitAbort:
			if s.breaks["commit"] && hit == "" {
				hit = fmt.Sprintf("commit (%s at cycle %d, span %d)", ev.Kind.Name(), ev.Cycle, ev.Span)
			}
		case trace.KindTrap:
			if s.breaks["trap"] && hit == "" {
				hit = fmt.Sprintf("trap (BRK fetch at %#x, cycle %d)", ev.Addr, ev.Cycle)
			}
		}
	}
	if s.breaks["watchdog"] {
		alerts := s.wd.Alerts()
		if len(alerts) > s.seenAlerts && hit == "" {
			a := alerts[s.seenAlerts]
			hit = fmt.Sprintf("watchdog (rule %s at cycle %d, value %d > %d)",
				a.Rule, a.Cycle, a.Value, a.Threshold)
		}
		s.seenAlerts = len(alerts)
	}
	return hit
}

// Call starts entry(args) on the boot CPU: registers loaded, the halt
// stub pushed as the return address. It does not execute anything —
// follow with Run.
func (s *Session) Call(entry string, args ...uint64) error {
	if err := s.truncate(); err != nil {
		return err
	}
	if err := s.m.StartCall(s.m.CPU, entry, args...); err != nil {
		return err
	}
	return s.record(move{kind: moveCall, name: entry, args: args})
}

// Run advances up to n simulated cycles (to the halt stub if n is 0),
// stopping early at an armed break event. After a rewind the timeline
// still holds the original future, and Run first *replays* it — logged
// set/commit/revert moves fire at their recorded places — before any
// fresh execution is recorded; break scanning resumes once the replay
// is exhausted. It returns a human-readable stop description.
func (s *Session) Run(n uint64) (string, error) {
	c := s.m.CPU
	if c.Halted() && s.pos == len(s.moves) {
		return "", fmt.Errorf("machine is halted (cycle %d); back up or start a new call", c.Cycles())
	}
	target, toHalt := c.Cycles()+n, n == 0

	// Replay phase: consume retained moves up to the target cycle.
	replayed := false
	for s.pos < len(s.moves) {
		if !toHalt && c.Cycles() >= target {
			return fmt.Sprintf("stopped at cycle %d (replaying history, %d move(s) ahead)",
				c.Cycles(), len(s.moves)-s.pos), nil
		}
		replayed = true
		mv := &s.moves[s.pos]
		if mv.kind == moveRun && !c.Halted() {
			t, bounded := mv.target, false
			if !toHalt && (t == runToHalt || t > target) {
				t, bounded = target, true
			}
			var err error
			if t == runToHalt {
				_, err = c.Run(s.m.MaxSteps)
			} else if c.Cycles() < t {
				_, err = c.RunUntil(t, s.m.MaxSteps)
			}
			if err != nil {
				return "", err
			}
			if bounded && !c.Halted() && (mv.target == runToHalt || c.Cycles() < mv.postCycle) {
				return fmt.Sprintf("stopped at cycle %d (replaying history, %d move(s) ahead)",
					c.Cycles(), len(s.moves)-s.pos), nil
			}
			s.pos++
			continue
		}
		if err := s.apply(mv); err != nil {
			return "", err
		}
		s.pos++
	}
	if replayed {
		// Replayed events must not retrigger armed breaks: they already
		// fired (or were scanned) on the original pass.
		s.syncEventCursor()
		if c.Halted() {
			return fmt.Sprintf("halted at cycle %d (r0=%d)", c.Cycles(), c.Reg(0)), nil
		}
		if !toHalt && c.Cycles() >= target {
			return fmt.Sprintf("stopped at cycle %d", c.Cycles()), nil
		}
	}
	armed := len(s.breaks) > 0
	for !c.Halted() && (toHalt || c.Cycles() < target) {
		next := c.Cycles() + breakChunk
		if !armed {
			next = target
		}
		if !toHalt && next > target {
			next = target
		}
		if toHalt && !armed {
			if _, err := c.Run(s.m.MaxSteps); err != nil {
				return "", err
			}
			break
		}
		if _, err := c.RunUntil(next, s.m.MaxSteps); err != nil {
			return "", err
		}
		if armed {
			if hit := s.scanBreaks(); hit != "" {
				if err := s.record(move{kind: moveRun, target: c.Cycles()}); err != nil {
					return "", err
				}
				return fmt.Sprintf("break: %s — stopped at cycle %d", hit, c.Cycles()), nil
			}
		}
	}
	recTarget := target
	if toHalt {
		recTarget = runToHalt
	}
	if err := s.record(move{kind: moveRun, target: recTarget}); err != nil {
		return "", err
	}
	if c.Halted() {
		return fmt.Sprintf("halted at cycle %d (r0=%d)", c.Cycles(), c.Reg(0)), nil
	}
	return fmt.Sprintf("stopped at cycle %d", c.Cycles()), nil
}

// Back rewinds n simulated cycles: restore the nearest keyframe at or
// before the target cycle and re-execute forward to it. The rewound-
// over future stays on the timeline — `run` replays it (including any
// commits, BRK pokes and all) and lands on digest-identical states;
// only a new write operation discards it. If the target falls inside a
// logged run move the re-execution stops at the first block boundary
// at or after the target; if it falls inside a host operation (a
// commit's internal cycles) the session stops at the operation
// boundary just before it.
func (s *Session) Back(n uint64) (string, error) {
	cur := s.m.CPU.Cycles()
	target := s.initialCycle
	if cur-s.initialCycle > n {
		target = cur - n
	}
	// Largest position whose post-state is at or before the target.
	p := 0
	for i := 0; i < s.pos; i++ {
		if s.moves[i].postCycle <= target {
			p = i + 1
		}
	}
	if err := s.seekTo(p); err != nil {
		return "", err
	}
	c := s.m.CPU
	if p < len(s.moves) && s.moves[p].kind == moveRun && !c.Halted() && c.Cycles() < target {
		// The target lands inside this run move: re-execute its prefix.
		// No recording — the move itself is still ahead on the timeline
		// and the position is simply "part-way through it".
		if _, err := c.RunUntil(target, s.m.MaxSteps); err != nil {
			return "", err
		}
		mv := &s.moves[p]
		if mv.target != runToHalt && c.Cycles() >= mv.postCycle {
			s.pos++ // the boundary overshoot consumed the whole move
		}
	}
	ahead := ""
	if rem := len(s.moves) - s.pos; rem > 0 {
		ahead = fmt.Sprintf("; %d move(s) retained ahead — run replays them", rem)
	}
	if got := c.Cycles(); got != target {
		return fmt.Sprintf("rewound to cycle %d (first boundary at or after %d)%s", got, target, ahead), nil
	}
	return fmt.Sprintf("rewound to cycle %d%s", target, ahead), nil
}

// Set writes a global/switch and logs the move. Like every new write
// operation it truncates a retained (rewound-over) future first: the
// timeline diverges here.
func (s *Session) Set(name string, v uint64) error {
	if err := s.truncate(); err != nil {
		return err
	}
	if err := s.writeGlobal(name, v); err != nil {
		return err
	}
	return s.record(move{kind: moveSet, name: name, value: v})
}

// Commit runs multiverse_commit under the session's commit options.
// A refused commit stays on the timeline (the abort mutates counters
// and flight events) and the error is reported.
func (s *Session) Commit() (core.CommitResult, error) {
	if err := s.truncate(); err != nil {
		return core.CommitResult{}, err
	}
	res, err := s.rt.Commit()
	if rerr := s.record(move{kind: moveCommit, failed: err != nil}); rerr != nil {
		return res, rerr
	}
	return res, err
}

// Revert runs multiverse_revert and logs the move.
func (s *Session) Revert() error {
	if err := s.truncate(); err != nil {
		return err
	}
	err := s.rt.Revert()
	if rerr := s.record(move{kind: moveRevert, failed: err != nil}); rerr != nil {
		return rerr
	}
	return err
}

// ToggleBreak arms/disarms a break class: commit, trap or watchdog.
func (s *Session) ToggleBreak(class string) (bool, error) {
	switch class {
	case "commit", "trap", "watchdog":
	default:
		return false, fmt.Errorf("unknown break class %q (want commit, trap or watchdog)", class)
	}
	if s.breaks[class] {
		delete(s.breaks, class)
		return false, nil
	}
	// Arm from "now": events already recorded don't retrigger.
	s.syncEventCursor()
	s.breaks[class] = true
	return true, nil
}

// Breaks lists the armed break classes, sorted.
func (s *Session) Breaks() []string {
	out := make([]string, 0, len(s.breaks))
	for k := range s.breaks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Where describes the current position: cycle, pc (symbolized),
// halted state and timeline length.
func (s *Session) Where() string {
	c := s.m.CPU
	loc := fmt.Sprintf("%#x", c.PC())
	if name, ok := s.img.SymbolAt(c.PC()); ok {
		loc = fmt.Sprintf("%s+%#x (%s)", name, c.PC()-s.img.Symbols[name].Addr, loc)
	}
	state := "running"
	if c.Halted() {
		state = fmt.Sprintf("halted, r0=%d", c.Reg(0))
	}
	timeline := fmt.Sprintf("%d moves", len(s.moves))
	if s.pos < len(s.moves) {
		timeline = fmt.Sprintf("move %d of %d, future retained", s.pos, len(s.moves))
	}
	return fmt.Sprintf("cycle %d  pc=%s  %s  [%s, %d keyframes]",
		c.Cycles(), loc, state, timeline, len(s.keyframes))
}

// State renders the runtime binding report plus the position line.
func (s *Session) State() string {
	return s.Where() + "\n" + s.rt.StateReport()
}

// Disassemble decodes count instructions starting at addr (the
// current pc if addr is the empty string; otherwise a symbol name or
// a hex/decimal address).
func (s *Session) Disassemble(addr string, count int) (string, error) {
	pc := s.m.CPU.PC()
	if addr != "" {
		if a, err := s.m.Symbol(addr); err == nil {
			pc = a
		} else if v, perr := strconv.ParseUint(addr, 0, 64); perr == nil {
			pc = v
		} else {
			return "", fmt.Errorf("neither a symbol nor an address: %q", addr)
		}
	}
	if count <= 0 {
		count = 8
	}
	var b strings.Builder
	for i := 0; i < count; i++ {
		// MemCallSiteLen (9) is the longest encoding; a couple of
		// spare bytes keep this robust to future ops.
		buf, n := make([]byte, isa.MemCallSiteLen+3), 0
		for ; n < len(buf); n++ {
			if s.m.Mem.Read(pc+uint64(n), buf[n:n+1]) != nil {
				break
			}
		}
		if n == 0 {
			fmt.Fprintf(&b, "%#08x: <unmapped>\n", pc)
			break
		}
		in, err := isa.Decode(buf[:n])
		if err != nil {
			fmt.Fprintf(&b, "%#08x: .byte %#02x\n", pc, buf[0])
			pc++
			continue
		}
		marker := "  "
		if pc == s.m.CPU.PC() {
			marker = "=>"
		}
		if name, ok := s.img.SymbolAt(pc); ok && s.img.Symbols[name].Addr == pc {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%s %#08x: %s\n", marker, pc, in.Format(pc))
		pc += uint64(in.Len)
	}
	return b.String(), nil
}

// Spans summarizes the flight recorder's commit-causality spans since
// the last rewind (rewinding rebuilds the recorder; replay repopulates
// it deterministically).
func (s *Session) Spans() string {
	d := s.rec.Dump("dbg-spans")
	type group struct {
		span        uint64
		first, last uint64
		n           int
		kinds       map[string]int
	}
	var order []uint64
	groups := map[uint64]*group{}
	for _, fe := range d.Events {
		ev, err := fe.Event()
		if err != nil {
			continue
		}
		g := groups[ev.Span]
		if g == nil {
			g = &group{span: ev.Span, first: ev.Cycle, kinds: map[string]int{}}
			groups[ev.Span] = g
			order = append(order, ev.Span)
		}
		g.last = ev.Cycle
		g.n++
		g.kinds[ev.Kind.Name()]++
	}
	if len(order) == 0 {
		return "no recorded events\n"
	}
	var b strings.Builder
	if d.Dropped > 0 {
		fmt.Fprintf(&b, "(ring overwrote %d older events)\n", d.Dropped)
	}
	for _, id := range order {
		g := groups[id]
		kinds := make([]string, 0, len(g.kinds))
		for k := range g.kinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s×%d", k, g.kinds[k])
		}
		label := fmt.Sprintf("span %d", g.span)
		if g.span == 0 {
			label = "unspanned"
		}
		fmt.Fprintf(&b, "%-10s cycles %d..%d  %d event(s): %s\n",
			label, g.first, g.last, g.n, strings.Join(parts, ", "))
	}
	return b.String()
}
