package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/trace"
)

// runConcurrent is the cross-modifying-commit property run: unlike the
// quiesced Run loop, runtime operations land while workload CPUs are
// mid-function, parked at arbitrary instruction boundaries between
// seeded interleave quanta. The runtime — not the harness — is
// responsible for making that safe, via the stop-machine rendezvous
// (Mode "stop") or the BRK text-poke protocol plus activeness
// deferral (Mode "poke"). The properties checked:
//
//   - no CPU ever fetches a torn instruction: every step either
//     decodes a whole (old or new) instruction or traps on a BRK, and
//     a BRK trap is only ever observed inside an open poke window,
//   - aborted operations leave a byte-identical, BRK-free image,
//   - core.Runtime.Audit stays green after every operation,
//   - rebindings deferred by the stack-activeness check drain once
//     the CPUs quiesce, and the workload's semantic models hold at
//     every quiescent point,
//   - the final revert restores the boot-time image bit for bit.
//
// Per-CPU quanta derive from the seed (or cfg.Quanta pins them), so a
// failing seed replays the exact schedule.
func runConcurrent(seed int64, cfg Config) (res Result, err error) {
	res = Result{Seed: seed}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.Mode == "" {
		cfg.Mode = "stop"
	}
	var mode core.CommitMode
	switch cfg.Mode {
	case "stop":
		mode = core.ModeStopMachine
	case "poke":
		mode = core.ModeTextPoke
	default:
		return res, fmt.Errorf("chaos: unknown concurrent mode %q (want stop or poke)", cfg.Mode)
	}
	onActive := core.ActiveDefer
	switch cfg.OnActive {
	case "", "defer":
	case "osr":
		onActive = core.ActiveOSR
	default:
		return res, fmt.Errorf("chaos: unknown onactive policy %q (want defer or osr)", cfg.OnActive)
	}

	w, err := buildWorkload(cfg.Workload)
	if err != nil {
		return res, err
	}
	sys := w.system()
	m, rt := sys.Machine, sys.RT
	m.MaxSteps = maxCallSteps

	// Flight recorder: failed runs carry their last commit-lifecycle
	// events (see Run).
	rec := trace.NewRecorder(0)
	core.AttachFlightRecorder(rec, m, rt)
	defer func() {
		if err != nil {
			d := rec.Dump("chaos property violation")
			res.FlightDump = &d
		}
	}()

	pristine, err := snapshotExec(m)
	if err != nil {
		return res, err
	}

	cpus := []*cpu.CPU{m.CPU}
	if cfg.CPUs >= 2 {
		second, err := m.AddCPU()
		if err != nil {
			return res, err
		}
		cpus = append(cpus, second)
	}

	// Quanta derive from the seed; cfg.Quanta overrides the values but
	// the draws still happen, so a pinned replay sees the same rng
	// stream as the run that recorded them.
	rng := rand.New(rand.NewSource(seed))
	quanta := make([]int, len(cpus))
	for i := range quanta {
		quanta[i] = 1 + rng.Intn(97)
	}
	if len(cfg.Quanta) == len(cpus) {
		copy(quanta, cfg.Quanta)
	}
	res.Quanta = quanta

	rt.SetCommitOptions(core.CommitOptions{Mode: mode, OnActive: onActive})

	// pokeOpen tracks whether a BRK window is currently planted; a trap
	// observed while it is false is a torn or residual BRK — the
	// central property violation. hookErr carries violations detected
	// while stepping victims from inside the poke hooks (where we
	// cannot return an error) out to the operation loop.
	pokeOpen := false
	var hookErr error

	// stepCPU advances one workload CPU up to n instructions, riding
	// out injected fetch faults (the PC holds, so the next step
	// retries) and parking trapped CPUs on the BRK pause loop.
	stepCPU := func(i int, c *cpu.CPU, n int) error {
		for k := 0; k < n && !c.Halted(); k++ {
			err := c.Step()
			if err == nil {
				continue
			}
			if isInjectedFetchFault(err) {
				continue
			}
			if tf := cpu.AsTrap(err); tf != nil {
				res.Traps++
				if !pokeOpen {
					return fmt.Errorf("chaos: cpu %d trapped on BRK at %#x outside any poke window (torn or residual poke)", i, tf.PC)
				}
				c.PauseSpin()
				return nil // parked at the site until the poke completes
			}
			return fmt.Errorf("chaos: cpu %d at %#x: %w", i, c.PC(), err)
		}
		return nil
	}

	// Victim stepping between poke phases: the hook lands guest
	// execution inside the open BRK window, which is where torn
	// fetches would hide. A second stream keeps hook-consumed
	// randomness from shifting the operation schedule.
	vrng := rand.New(rand.NewSource(seed ^ 0x5ee5eed5eed))
	stepVictims := func(burst func() int) {
		if hookErr != nil {
			return
		}
		for i, c := range cpus {
			if err := stepCPU(i, c, burst()); err != nil {
				hookErr = err
				return
			}
		}
	}
	m.PokeHook = func(phase int, addr, n uint64) {
		switch phase {
		case 1:
			pokeOpen = true
		case 3:
			pokeOpen = false
			return
		}
		stepVictims(func() int { return 1 + vrng.Intn(8) })
	}
	defer func() { m.PokeHook = nil }()

	plan := faultinject.New(seed, faultinject.Opts{
		Points:   cfg.Faults,
		CPUs:     len(cpus),
		MaxOp:    uint64(4 * cfg.Steps),
		MaxCycle: 2_000_000,
		Poke:     mode == core.ModeTextPoke,
	})
	// Injected poke-step points pile extra victim execution onto
	// randomly chosen phases, beyond the hook's deterministic bursts.
	plan.OnPokeStep = func(phase int, addr, n uint64) {
		stepVictims(func() int { return 1 + vrng.Intn(16) })
	}
	plan.Attach(m)
	defer faultinject.Detach(m)
	defer func() {
		res.Retries = rt.Stats.CommitRetries
		res.FlushFixes = rt.Stats.FlushRetries
		res.FaultsFired = plan.Stats.Total()
		res.Deferred = rt.Stats.DeferredPatches
		res.OSRTransfers = rt.Stats.OSRTransfers
		res.OSRFallbacks = rt.Stats.OSRFallbacks
		res.OSRRollbacks = rt.Stats.OSRRollbacks
	}()

	// drainDeferred retries DrainDeferred across injected aborts; the
	// plan is finite, so a bounded retry loop must converge.
	drainDeferred := func() error {
		var err error
		for i := 0; i < 64; i++ {
			if _, err = rt.DrainDeferred(); err == nil {
				return nil
			}
			if !errors.Is(err, core.ErrCommitAborted) {
				return err
			}
		}
		return fmt.Errorf("chaos: deferred drain still failing after 64 attempts: %w", err)
	}

	// drainCPU runs one worker to halt in chunks, rescuing protocol
	// state between chunks: a commit whose activeness check deferred
	// spin_lock (the CPU was inside it) while rebinding spin_unlock
	// leaves a mixed pair, and the worker then leaks the lock word on
	// every iteration — each rescue buys it at least one more
	// iteration, so the chunk count bounds the bench length, not the
	// total step budget.
	drainCPU := func(i int, c *cpu.CPU) error {
		for chunk := 0; chunk < 1024 && !c.Halted(); chunk++ {
			if err := w.rescue(m); err != nil {
				return err
			}
			for k := 0; k < 10_000 && !c.Halted(); k++ {
				err := c.Step()
				if err == nil {
					continue
				}
				if isInjectedFetchFault(err) {
					continue
				}
				if tf := cpu.AsTrap(err); tf != nil {
					res.Traps++
					return fmt.Errorf("chaos: cpu %d trapped on BRK at %#x while draining — residual poke", i, tf.PC)
				}
				return fmt.Errorf("chaos: draining cpu %d at %#x: %w", i, c.PC(), err)
			}
		}
		if !c.Halted() {
			return fmt.Errorf("chaos: cpu %d never halted while draining (livelocked workload)", i)
		}
		return nil
	}

	// recommit re-applies the current configuration once the machine is
	// quiet. It plays the operator's retry: an aborted commit leaves
	// the switch ahead of the bindings, and the deferred drain then
	// upgrades only the functions that happened to be queued — each
	// per-function operation is correct in isolation (deferred patches
	// apply against the latest configuration, as in kernel livepatch),
	// but only a fresh whole-image commit restores the cross-function
	// consistency the semantic checks assume.
	recommit := func() error {
		var err error
		for i := 0; i < 64; i++ {
			if _, err = rt.Commit(); err == nil {
				return nil
			}
			if !errors.Is(err, core.ErrCommitAborted) {
				return err
			}
		}
		return fmt.Errorf("chaos: re-commit still failing after 64 attempts: %w", err)
	}

	// quiesce runs every CPU to halt, applies the deferred queue,
	// re-commits the current configuration and re-normalizes protocol
	// state (racy non-atomic counters, leaked lock words) before a
	// semantic check.
	quiesce := func() error {
		for i, c := range cpus {
			if c.Halted() {
				continue
			}
			if err := drainCPU(i, c); err != nil {
				return err
			}
		}
		if err := drainDeferred(); err != nil {
			return err
		}
		if n := rt.DeferredCount(); n != 0 {
			return fmt.Errorf("chaos: %d deferred ops still queued with all CPUs halted", n)
		}
		if err := recommit(); err != nil {
			return err
		}
		if err := rt.Audit(); err != nil {
			return fmt.Errorf("chaos: audit after deferred drain: %w", err)
		}
		return w.rescue(m)
	}

	started := make([]bool, len(cpus))
	for op := 0; op < cfg.Steps; op++ {
		// (Re)start any worker that has not run yet or ran to
		// completion, then advance the interleaving so the operation
		// below lands mid-execution. (A fresh CPU is not halted, so
		// first starts are tracked explicitly.)
		for i, c := range cpus {
			if !started[i] || c.Halted() {
				started[i] = true
				if err := w.startWorker(m, c, i, rng); err != nil {
					return res, fmt.Errorf("seed %d op %d: starting worker %d: %w", seed, op, i, err)
				}
			}
		}
		for r := 1 + rng.Intn(4); r > 0; r-- {
			for i, c := range cpus {
				if err := stepCPU(i, c, quanta[i]); err != nil {
					return res, fmt.Errorf("seed %d op %d: %w", seed, op, err)
				}
			}
		}

		pre, err := snapshotExec(m)
		if err != nil {
			return res, err
		}
		abortsBefore := rt.Stats.CommitAborts

		atomic, opErr := w.mutate(rng, rt)
		res.Ops++
		if hookErr != nil {
			return res, fmt.Errorf("seed %d op %d: %w", seed, op, hookErr)
		}
		if opErr != nil {
			if !errors.Is(opErr, core.ErrCommitAborted) {
				return res, fmt.Errorf("seed %d op %d: operation failed without aborting cleanly: %w", seed, op, opErr)
			}
			res.Aborts++
			if atomic {
				// The rollback must also have removed any planted BRK:
				// byte-identity against the pre-operation snapshot covers it.
				if err := assertExecEqual(m, pre); err != nil {
					return res, fmt.Errorf("seed %d op %d: aborted operation left a modified image: %w", seed, op, err)
				}
			} else if err := revertUntilClean(rt); err != nil {
				return res, fmt.Errorf("seed %d op %d: recovering from partial revert: %w", seed, op, err)
			}
		} else if rt.Stats.CommitAborts != abortsBefore {
			return res, fmt.Errorf("seed %d op %d: abort recorded but no error returned", seed, op)
		}
		if cfg.Sabotage > 0 && op+1 == cfg.Sabotage {
			if err := sabotageText(m, rt); err != nil {
				return res, fmt.Errorf("seed %d op %d: sabotage: %w", seed, op, err)
			}
		}
		if err := rt.Audit(); err != nil {
			return res, fmt.Errorf("seed %d op %d: audit: %w", seed, op, err)
		}

		if op%5 == 4 {
			if err := quiesce(); err != nil {
				return res, fmt.Errorf("seed %d op %d: %w", seed, op, err)
			}
			if err := w.check(m, rng); err != nil {
				return res, fmt.Errorf("seed %d op %d: semantic check: %w", seed, op, err)
			}
			res.Checks++
		}
	}

	// Final teardown: quiesce with the plan still armed (a trap here
	// is a residual BRK), then detach, drain anything the last ops
	// deferred, and require the revert to restore the boot image.
	if err := quiesce(); err != nil {
		return res, fmt.Errorf("seed %d: %w", seed, err)
	}
	faultinject.Detach(m)
	if err := drainDeferred(); err != nil {
		return res, fmt.Errorf("seed %d: %w", seed, err)
	}
	if n := rt.DeferredCount(); n != 0 {
		return res, fmt.Errorf("seed %d: %d deferred ops still queued with all CPUs halted", seed, n)
	}
	if err := rt.Revert(); err != nil {
		return res, fmt.Errorf("seed %d: final revert: %w", seed, err)
	}
	if err := rt.Audit(); err != nil {
		return res, fmt.Errorf("seed %d: final audit: %w", seed, err)
	}
	if err := assertExecEqual(m, pristine); err != nil {
		return res, fmt.Errorf("seed %d: final revert is not byte-identical to the boot image: %w", seed, err)
	}
	if err := w.check(m, rng); err != nil {
		return res, fmt.Errorf("seed %d: final semantic check: %w", seed, err)
	}
	res.Checks++
	if onActive == core.ActiveOSR {
		// Under OSR every deferral must be an accounted fallback (no
		// mapped point / frameless body / scratch live) — an eligible
		// commit that still deferred means the transfer path was skipped.
		if d, f := rt.Stats.DeferredPatches, rt.Stats.OSRFallbacks; d != f {
			return res, fmt.Errorf("seed %d: %d deferrals but only %d OSR fallbacks — an OSR-eligible commit was deferred", seed, d, f)
		}
	}
	return res, nil
}
