// Package chaos drives seeded chaos runs against the multiverse
// runtime: random sequences of commits, reverts and switch flips on a
// real workload (the paper's E1 spinlock kernel or E4 mini-musl),
// with a deterministic fault plan injected into the memory and CPU
// layers, asserting after every operation that the crash-consistency
// guarantees hold:
//
//   - an operation either completes or fails with ErrCommitAborted
//     and a text image byte-identical to its pre-operation snapshot,
//   - core.Runtime.Audit passes at every patchable point,
//   - the workload's semantics survive: E1's preempt_count and
//     lock_word return to zero around every benchmark run, E4's
//     random()/fputc() match a host-side model of musl's LCG and
//     stream position,
//   - after the fault plan is exhausted, a final revert restores the
//     boot-time text image bit for bit.
//
// Runs are deterministic per (seed, Config): the fault plan, the
// operation sequence and the SMP interleaving all derive from the one
// seed, so a failing seed printed by cmd/mvstress reproduces exactly.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/kernelsim"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/muslsim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Config shapes one chaos run.
type Config struct {
	// Workload is "e1" (spinlock kernel, lock elision via multiverse)
	// or "e4" (mini-musl, thread-count specialized locks).
	Workload string
	// Steps is the number of runtime operations to perform (default 40).
	Steps int
	// Faults is the number of armed fault points (default 6).
	Faults int
	// SMP adds a second hardware thread that executes workload code
	// between runtime operations, exercising cross-CPU shootdowns.
	SMP bool
	// Concurrent switches Run to the cross-modifying-commit property
	// run (concurrent.go): runtime operations land mid-execution,
	// between interleave quanta of running workload CPUs, under
	// ModeStopMachine or ModeTextPoke with activeness deferral. SMP is
	// ignored in this mode; use CPUs.
	Concurrent bool
	// CPUs is the hardware thread count in concurrent mode (1 or 2;
	// default 1).
	CPUs int `json:",omitempty"`
	// Mode selects the concurrent commit mode: "stop" (stop-machine
	// rendezvous) or "poke" (BRK text-poke protocol). Default "stop".
	Mode string `json:",omitempty"`
	// OnActive selects the concurrent activeness policy: "defer"
	// (queue operations against active functions for DrainDeferred) or
	// "osr" (transfer live frames to the target body inside the commit,
	// falling back to defer only when no mapping exists). Default
	// "defer".
	OnActive string `json:",omitempty"`
	// Quanta pins the per-CPU interleave quanta in concurrent mode;
	// when empty they derive from the seed. Result records the
	// effective value so failing-seed artifacts capture the schedule.
	Quanta []int `json:",omitempty"`
	// Sabotage, when > 0, corrupts one text byte behind the runtime's
	// back after that many operations, guaranteeing an audit violation.
	// It exists to test the failure path itself — that a violated run
	// produces a flight-recorder dump in its Result and artifacts.
	Sabotage int `json:",omitempty"`
}

// Result summarizes one run.
type Result struct {
	Seed        int64
	Ops         int    // runtime operations performed
	Aborts      int    // operations that rolled back (ErrCommitAborted)
	Retries     int    // transparent patch retries inside commits
	FlushFixes  int    // dropped shootdowns caught and re-broadcast
	FaultsFired uint64 // fault points that actually fired
	Checks      int    // semantic model checks that passed
	Quanta      []int  `json:",omitempty"` // effective per-CPU interleave quanta (concurrent mode)
	Traps       uint64 // BRK traps taken by workload CPUs inside poke windows
	Deferred    int    // rebindings deferred by the activeness check

	// On-stack replacement counters (OnActive "osr").
	OSRTransfers int `json:",omitempty"` // live frames transferred into new bodies
	OSRFallbacks int `json:",omitempty"` // OSR commits that fell back to deferral
	OSRRollbacks int `json:",omitempty"` // frame transfers undone by aborts

	// FlightDump is the flight recorder's view of the failure: the last
	// commit-lifecycle and fault events before the violated invariant.
	// Nil for passing runs.
	FlightDump *trace.FlightDump `json:",omitempty"`

	// Replay pins a snapshot-based reproduction of non-concurrent runs:
	// the machine+runtime snapshot taken at the quiesced boundary of
	// the most recent operation, plus the host coordinates (rng draws,
	// fault-plan progress, semantic-model state) needed to resume from
	// exactly there. For a failed run that is the op preceding the
	// violation — ReplaySnapshot picks it up. Nil in concurrent mode.
	Replay *ReplayInfo `json:",omitempty"`
}

// maxCallSteps bounds any single guest call during chaos runs.
const maxCallSteps = 5_000_000

// Run executes one seeded chaos run and returns its summary, or an
// error describing the first violated invariant. The Result counters
// are filled in even for failed runs, so failure reports carry the
// fault and retry activity up to the violation. Non-concurrent runs
// additionally keep a replay pin — a machine snapshot taken at the
// quiesced boundary of the most recent operation plus the host-side
// coordinates the snapshot cannot see — so a failing run's Result can
// reproduce from the op preceding the violation (ReplaySnapshot)
// without re-executing the prefix.
func Run(seed int64, cfg Config) (Result, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 40
	}
	if cfg.Faults <= 0 {
		cfg.Faults = 6
	}
	if cfg.Concurrent {
		return runConcurrent(seed, cfg)
	}
	r, err := newRunner(seed, cfg)
	if err != nil {
		return Result{Seed: seed}, err
	}
	r.capture = r.captureReplay
	return r.run(0)
}

// runner is the non-concurrent chaos engine, factored so a fresh run
// (Run, from op 0) and a snapshot-based replay (ReplaySnapshot, from
// the failing op) execute the identical per-operation body — the
// reproduction guarantee is "same code, different starting point".
type runner struct {
	seed int64
	cfg  Config
	w    workload
	m    *machine.Machine
	rt   *core.Runtime
	src  *countingSource
	rng  *rand.Rand
	plan *faultinject.Plan
	rec  *trace.Recorder

	second        *cpu.CPU
	secondaryBusy bool // StartCall issued and not yet drained to halt

	pristine map[uint64][]byte
	res      Result

	// capture, when non-nil, runs at every quiesced op boundary (each
	// loop top and once before the final revert): Run points it at
	// captureReplay to keep the failure artifact's snapshot fresh.
	capture func(op int) error
}

func newRunner(seed int64, cfg Config) (*runner, error) {
	r := &runner{seed: seed, cfg: cfg, res: Result{Seed: seed}}
	w, err := buildWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	r.w = w
	sys := w.system()
	r.m, r.rt = sys.Machine, sys.RT
	r.m.MaxSteps = maxCallSteps

	// The always-on flight recorder: when any property is violated,
	// the Result carries the last commit-lifecycle events as the
	// failure's causal record (mvstress attaches it to artifacts).
	r.rec = trace.NewRecorder(0)
	core.AttachFlightRecorder(r.rec, r.m, r.rt)

	r.pristine, err = snapshotExec(r.m)
	if err != nil {
		return nil, err
	}
	ncpu := 1
	if cfg.SMP {
		ncpu = 2
		r.second, err = r.m.AddCPU()
		if err != nil {
			return nil, err
		}
	}
	r.src = newCountingSource(seed, 0)
	r.rng = rand.New(r.src)
	r.plan = faultinject.New(seed, faultinject.Opts{
		Points:   cfg.Faults,
		CPUs:     ncpu,
		MaxOp:    uint64(4 * cfg.Steps),
		MaxCycle: 2_000_000,
	})
	r.plan.Attach(r.m)
	return r, nil
}

// run executes operations [startOp, Steps) plus the final-revert
// section, then fills in the Result counters and, on failure, the
// flight dump.
func (r *runner) run(startOp int) (Result, error) {
	err := r.body(startOp)
	faultinject.Detach(r.m)
	r.res.Retries = r.rt.Stats.CommitRetries
	r.res.FlushFixes = r.rt.Stats.FlushRetries
	r.res.FaultsFired = r.plan.Stats.Total()
	if err != nil {
		d := r.rec.Dump("chaos property violation")
		r.res.FlightDump = &d
	}
	return r.res, err
}

func (r *runner) body(startOp int) error {
	for op := startOp; op < r.cfg.Steps; op++ {
		if err := r.quiesce(op); err != nil {
			return err
		}
		if r.capture != nil {
			if err := r.capture(op); err != nil {
				return err
			}
		}
		if err := r.doOp(op); err != nil {
			return err
		}
	}
	// Drain the secondary and require the final revert to restore the
	// boot image bit for bit.
	if err := r.quiesce(r.cfg.Steps); err != nil {
		return err
	}
	if r.capture != nil {
		if err := r.capture(r.cfg.Steps); err != nil {
			return err
		}
	}
	return r.finish()
}

// quiesce drains the secondary CPU and (before an operation) asserts
// no PC sits inside a patch window — runtime operations and replay
// snapshots both happen only at patchable points.
func (r *runner) quiesce(op int) error {
	if r.secondaryBusy && !r.second.Halted() {
		if err := stepToHalt(r.second, maxCallSteps); err != nil {
			if op >= r.cfg.Steps {
				return fmt.Errorf("seed %d: draining secondary: %w", r.seed, err)
			}
			return fmt.Errorf("seed %d op %d: quiescing secondary: %w", r.seed, op, err)
		}
	}
	r.secondaryBusy = false
	if op >= r.cfg.Steps {
		return nil
	}
	if err := assertOutsidePatchRanges(r.m, r.rt); err != nil {
		return fmt.Errorf("seed %d op %d: %w", r.seed, op, err)
	}
	return nil
}

// captureReplay refreshes the Result's replay pin: a full machine+
// runtime snapshot at this quiesced boundary plus the host-side
// coordinates a snapshot cannot carry — the rng draw count, the fault
// plan's progress and the workload's semantic model. Only the latest
// pin is kept, so on failure it names the op preceding the violation.
func (r *runner) captureReplay(op int) error {
	snap, err := snapshot.Capture(r.m, r.rt)
	if err != nil {
		return fmt.Errorf("chaos: replay capture at op %d: %w", op, err)
	}
	data := snap.Encode()
	digest, err := snapshot.Digest(data)
	if err != nil {
		return fmt.Errorf("chaos: replay capture at op %d: %w", op, err)
	}
	r.res.Replay = &ReplayInfo{
		Op:       op,
		RngDraws: r.src.draws,
		Plan:     r.plan.Export(),
		Model:    r.w.exportModel(),
		Digest:   digest,
		Snap:     data,
	}
	return nil
}

// doOp performs one randomized runtime operation and every invariant
// check attached to it.
func (r *runner) doOp(op int) error {
	seed, m, rt, rng := r.seed, r.m, r.rt, r.rng
	pre, err := snapshotExec(m)
	if err != nil {
		return err
	}
	abortsBefore := rt.Stats.CommitAborts

	atomic, opErr := r.w.mutate(rng, rt)
	r.res.Ops++
	if opErr != nil {
		if !errors.Is(opErr, core.ErrCommitAborted) {
			return fmt.Errorf("seed %d op %d: operation failed without aborting cleanly: %w", seed, op, opErr)
		}
		r.res.Aborts++
		// Single-transaction ops promise all-or-nothing; Revert
		// promises only per-function atomicity plus a green audit,
		// which the Audit below enforces.
		if atomic {
			if err := assertExecEqual(m, pre); err != nil {
				return fmt.Errorf("seed %d op %d: aborted operation left a modified image: %w", seed, op, err)
			}
		} else {
			// A partial revert is per-function consistent but not
			// cross-function consistent: spin_lock may stay bound to
			// the real SMP variant while spin_unlock already reverted
			// to the elided one, which leaks the lock word on the
			// next acquire/release pair. Before running workload code
			// the harness does what an operator would: retry the
			// revert until it goes through (the fault plan is finite,
			// so it must).
			if err := revertUntilClean(rt); err != nil {
				return fmt.Errorf("seed %d op %d: recovering from partial revert: %w", seed, op, err)
			}
		}
	} else if rt.Stats.CommitAborts != abortsBefore {
		// Revert aggregates per-function transactions; a partial
		// failure surfaces as an error, so a silent abort is a bug.
		return fmt.Errorf("seed %d op %d: abort recorded but no error returned", seed, op)
	}
	if r.cfg.Sabotage > 0 && op+1 == r.cfg.Sabotage {
		if err := sabotageText(m, rt); err != nil {
			return fmt.Errorf("seed %d op %d: sabotage: %w", seed, op, err)
		}
	}
	if err := rt.Audit(); err != nil {
		return fmt.Errorf("seed %d op %d: audit: %w", seed, op, err)
	}

	// Interleave: restart the secondary on workload code and let it
	// run a random partial quantum against the (possibly re-bound)
	// text.
	if r.second != nil && rng.Intn(2) == 0 {
		if err := r.w.startSecondary(m, r.second, rng); err != nil {
			return fmt.Errorf("seed %d op %d: starting secondary: %w", seed, op, err)
		}
		r.secondaryBusy = true
		if err := stepSome(r.second, rng.Intn(400)); err != nil {
			return fmt.Errorf("seed %d op %d: stepping secondary: %w", seed, op, err)
		}
	}

	// Periodic semantic checks on the primary CPU. The secondary
	// must be drained first: on E1 it may be parked mid-critical-
	// section holding lock_word, and the primary's run-to-completion
	// bench would spin forever against a CPU nobody is stepping.
	if op%5 == 4 {
		if r.secondaryBusy && !r.second.Halted() {
			if err := stepToHalt(r.second, maxCallSteps); err != nil {
				return fmt.Errorf("seed %d op %d: draining secondary before check: %w", seed, op, err)
			}
		}
		r.secondaryBusy = false
		if err := r.w.check(m, rng); err != nil {
			return fmt.Errorf("seed %d op %d: semantic check: %w", seed, op, err)
		}
		r.res.Checks++
	}
	return nil
}

// finish is the end-of-run section: detach faults, revert everything,
// and require the boot-time image and workload semantics back intact.
func (r *runner) finish() error {
	seed, m, rt := r.seed, r.m, r.rt
	faultinject.Detach(m)
	if err := rt.Revert(); err != nil {
		return fmt.Errorf("seed %d: final revert: %w", seed, err)
	}
	if err := rt.Audit(); err != nil {
		return fmt.Errorf("seed %d: final audit: %w", seed, err)
	}
	if err := assertExecEqual(m, r.pristine); err != nil {
		return fmt.Errorf("seed %d: final revert is not byte-identical to the boot image: %w", seed, err)
	}
	if err := r.w.check(m, r.rng); err != nil {
		return fmt.Errorf("seed %d: final semantic check: %w", seed, err)
	}
	r.res.Checks++
	return nil
}

// workload abstracts the two chaos targets.
type workload interface {
	system() *core.System
	// mutate performs one random runtime operation (switch flip +
	// commit, revert, refs-scoped commit, ...). atomic reports whether
	// the operation ran as a single transaction, i.e. whether an abort
	// guarantees a byte-identical image (Revert deliberately keeps
	// per-function progress past failures, so it is not whole-image
	// atomic).
	mutate(rng *rand.Rand, rt *core.Runtime) (atomic bool, err error)
	// startSecondary points an idle secondary CPU at workload code.
	startSecondary(m *machine.Machine, c *cpu.CPU, rng *rand.Rand) error
	// check runs the workload on the primary CPU and compares the
	// observable state against a host-side model.
	check(m *machine.Machine, rng *rand.Rand) error
	// startWorker points an idle CPU at this workload's concurrent
	// worker loop for hardware thread idx, updating any host-side
	// model that tracks the call's completed effects (concurrent
	// workers always run to halt before the next check reads state).
	startWorker(m *machine.Machine, c *cpu.CPU, idx int, rng *rand.Rand) error
	// rescue normalizes cross-function protocol state (lock words,
	// preemption counters) that a mid-critical-section rebinding can
	// legally corrupt: stack activeness defers patches to functions a
	// CPU is inside, but it cannot see that a lock acquired through a
	// real variant is still waiting for its matching unlock when the
	// unlock function itself is idle and gets rebound to the elided
	// variant. The concurrent harness plays the operator and resets
	// those protocol words at quiescent points before semantic checks.
	rescue(m *machine.Machine) error
	// exportModel / importModel carry the host-side semantic model
	// that lives outside the simulated machine (E4's LCG mirror and
	// stream-position counters; E1 keeps none), so a snapshot-based
	// replay resumes with the exact model the original run had — even
	// when the pending violation is a guest/model divergence a resync
	// from guest globals would paper over.
	exportModel() []uint64
	importModel([]uint64)
}

func buildWorkload(name string) (workload, error) {
	switch name {
	case "", "e1":
		ks, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
		if err != nil {
			return nil, err
		}
		return &e1Workload{ks: ks}, nil
	case "e4":
		ms, err := muslsim.BuildMusl(muslsim.Multiverse)
		if err != nil {
			return nil, err
		}
		return &e4Workload{ms: ms}, nil
	}
	return nil, fmt.Errorf("chaos: unknown workload %q (want e1 or e4)", name)
}

// --- E1: spinlock kernel -------------------------------------------------

type e1Workload struct {
	ks *kernelsim.SpinSystem
}

func (w *e1Workload) system() *core.System { return w.ks.System() }

func (w *e1Workload) mutate(rng *rand.Rand, rt *core.Runtime) (bool, error) {
	sys := w.ks.System()
	switch rng.Intn(4) {
	case 0: // flip the switch and commit everything
		if err := sys.SetSwitch("config_smp", int64(rng.Intn(2))); err != nil {
			return true, err
		}
		_, err := rt.Commit()
		return true, err
	case 1: // revert everything (per-function transactions)
		return false, rt.Revert()
	case 2: // refs-scoped commit on the switch
		addr, ok := rt.VarByName("config_smp")
		if !ok {
			return true, fmt.Errorf("chaos: no config_smp switch")
		}
		if err := sys.SetSwitch("config_smp", int64(rng.Intn(2))); err != nil {
			return true, err
		}
		_, err := rt.CommitRefs(addr)
		return true, err
	default: // commit without changing anything (idempotence)
		_, err := rt.Commit()
		return true, err
	}
}

func (w *e1Workload) startSecondary(m *machine.Machine, c *cpu.CPU, rng *rand.Rand) error {
	return m.StartCall(c, "bench_spin", uint64(10+rng.Intn(40)))
}

// startWorker runs the contended lock/unlock loop on every hardware
// thread — with the real SMP variant bound, both CPUs fight over
// lock_word, which is exactly the traffic a cross-modifying commit
// must survive.
func (w *e1Workload) startWorker(m *machine.Machine, c *cpu.CPU, idx int, rng *rand.Rand) error {
	return m.StartCall(c, "bench_spin", uint64(5+rng.Intn(30)))
}

// rescue force-releases lock_word and rebalances preempt_count: a
// rebinding that lands between a real spin_lock and its matching
// spin_unlock leaks the word (the elided unlock never stores 0), and
// two CPUs running the non-atomic preempt_count++/-- race lose
// updates. Both are protocol-level effects of mixed bindings, not
// text-integrity violations, so the harness resets them at quiescent
// points the way an operator would.
func (w *e1Workload) rescue(m *machine.Machine) error {
	if err := m.WriteGlobal("lock_word", 8, 0); err != nil {
		return err
	}
	return m.WriteGlobal("preempt_count", 8, 0)
}

// E1's invariants are all guest-visible; there is no host-side model.
func (w *e1Workload) exportModel() []uint64 { return nil }
func (w *e1Workload) importModel([]uint64)  {}

// check runs the lock/unlock loop to completion and asserts the
// always-true invariants of every consistent binding: the preemption
// counter balances back to zero and the lock word ends released.
func (w *e1Workload) check(m *machine.Machine, rng *rand.Rand) error {
	if _, err := callResumed(m, "bench_spin", uint64(20+rng.Intn(30))); err != nil {
		return err
	}
	lw, err := w.ks.LockWord()
	if err != nil {
		return err
	}
	if lw != 0 {
		return fmt.Errorf("chaos: lock_word = %d after bench_spin, want 0 (leaked lock)", lw)
	}
	pc, err := w.ks.PreemptCount()
	if err != nil {
		return err
	}
	if pc != 0 {
		return fmt.Errorf("chaos: preempt_count = %d after bench_spin, want 0", pc)
	}
	return nil
}

// --- E4: mini-musl --------------------------------------------------------

type e4Workload struct {
	ms *muslsim.Musl

	randState uint64 // host-side model of musl's LCG
	fpos      uint64 // host-side model of the stdio stream position
	flushed   uint64
}

func (w *e4Workload) system() *core.System { return w.ms.System() }

func (w *e4Workload) mutate(rng *rand.Rand, rt *core.Runtime) (bool, error) {
	sys := w.ms.System()
	switch rng.Intn(4) {
	case 0:
		if err := sys.SetSwitch("threads_minus_1", int64(rng.Intn(2))); err != nil {
			return true, err
		}
		_, err := rt.Commit()
		return true, err
	case 1:
		return false, rt.Revert()
	case 2:
		addr, ok := rt.VarByName("threads_minus_1")
		if !ok {
			return true, fmt.Errorf("chaos: no threads_minus_1 switch")
		}
		if err := sys.SetSwitch("threads_minus_1", int64(rng.Intn(2))); err != nil {
			return true, err
		}
		_, err := rt.CommitRefs(addr)
		return true, err
	default:
		_, err := rt.Commit()
		return true, err
	}
}

// startSecondary runs the lock-free baseline loop: the chaos driver
// re-binds lock elision between operations, and only the primary's
// run-to-completion calls are guaranteed to see one consistent
// binding per critical section.
func (w *e4Workload) startSecondary(m *machine.Machine, c *cpu.CPU, rng *rand.Rand) error {
	return m.StartCall(c, "bench_baseline", uint64(50+rng.Intn(200)))
}

// startWorker gives each hardware thread a disjoint slice of libc so
// the host models stay exact under interleaving: thread 0 draws from
// the LCG (check reseeds it, so partial progress is absorbed), thread
// 1 drives the buffered stream, whose position model advances here —
// the call always completes before the next check reads the globals.
func (w *e4Workload) startWorker(m *machine.Machine, c *cpu.CPU, idx int, rng *rand.Rand) error {
	if idx == 0 {
		return m.StartCall(c, "bench_random", uint64(10+rng.Intn(50)))
	}
	k := uint64(50 + rng.Intn(300))
	if err := m.StartCall(c, "bench_fputc", k); err != nil {
		return err
	}
	for i := uint64(0); i < k; i++ {
		w.fpos++
		if w.fpos == 4096 {
			w.flushed += w.fpos
			w.fpos = 0
		}
	}
	return nil
}

// rescue force-releases the three musl lock words that a rebinding
// between a real __lock and its matching elided __unlock can leak.
func (w *e4Workload) rescue(m *machine.Machine) error {
	for _, g := range []string{"rand_lock", "file_lock", "malloc_lock"} {
		if err := m.WriteGlobal(g, 8, 0); err != nil {
			return err
		}
	}
	return nil
}

func (w *e4Workload) exportModel() []uint64 {
	return []uint64{w.randState, w.fpos, w.flushed}
}

func (w *e4Workload) importModel(m []uint64) {
	if len(m) == 3 {
		w.randState, w.fpos, w.flushed = m[0], m[1], m[2]
	}
}

const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

// check replays musl semantics against host-side models: the LCG
// behind random_() and the buffered stream position behind fputc_().
func (w *e4Workload) check(m *machine.Machine, rng *rand.Rand) error {
	// Reseed and advance the LCG a known number of steps.
	seed := rng.Uint64()
	if _, err := callResumed(m, "srandom_", seed); err != nil {
		return err
	}
	w.randState = seed
	n := uint64(10 + rng.Intn(30))
	if _, err := callResumed(m, "bench_random", n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		w.randState = w.randState*lcgMul + lcgAdd
	}
	got, err := m.ReadGlobal("rand_state", 8)
	if err != nil {
		return err
	}
	if got != w.randState {
		return fmt.Errorf("chaos: rand_state = %#x, model says %#x after %d draws", got, w.randState, n)
	}
	// One direct draw returns the model's next output.
	w.randState = w.randState*lcgMul + lcgAdd
	r, err := callResumed(m, "random_")
	if err != nil {
		return err
	}
	if want := w.randState >> 33; r != want {
		return fmt.Errorf("chaos: random_() = %d, model says %d", r, want)
	}

	// Stream position model for the buffered fputc.
	k := uint64(100 + rng.Intn(400))
	if _, err := callResumed(m, "bench_fputc", k); err != nil {
		return err
	}
	for i := uint64(0); i < k; i++ {
		w.fpos++
		if w.fpos == 4096 {
			w.flushed += w.fpos
			w.fpos = 0
		}
	}
	fpos, err := m.ReadGlobal("fpos", 8)
	if err != nil {
		return err
	}
	flushed, err := m.ReadGlobal("flushed_bytes", 8)
	if err != nil {
		return err
	}
	if fpos != w.fpos || flushed != w.flushed {
		return fmt.Errorf("chaos: stream state fpos=%d flushed=%d, model says fpos=%d flushed=%d",
			fpos, flushed, w.fpos, w.flushed)
	}

	// Exercise malloc/free and require the lock released afterwards.
	if _, err := callResumed(m, "bench_malloc", 20, 16); err != nil {
		return err
	}
	if lock, err := m.ReadGlobal("malloc_lock", 8); err != nil {
		return err
	} else if lock != 0 {
		return fmt.Errorf("chaos: malloc_lock = %d after bench_malloc, want 0 (leaked lock)", lock)
	}
	return nil
}

// --- shared helpers -------------------------------------------------------

// sabotageText corrupts one byte of a runtime-managed text range
// behind the runtime's back (WriteForce bypasses page protection), so
// the next Audit must report a torn-or-tampered site. Used by the
// Sabotage config to exercise the violation path end to end.
func sabotageText(m *machine.Machine, rt *core.Runtime) error {
	ranges := rt.PatchRanges()
	if len(ranges) == 0 {
		return fmt.Errorf("chaos: no patch ranges to sabotage")
	}
	addr := ranges[0].Addr
	var b [1]byte
	if err := m.Mem.Read(addr, b[:]); err != nil {
		return err
	}
	b[0] ^= 0xff
	return m.Mem.WriteForce(addr, b[:])
}

// CallResumed invokes a guest function on the primary CPU, transparently
// re-stepping across injected spurious fetch faults (the PC holds, so
// resuming the run retries the same fetch). Exported for harnesses
// layered above chaos — the fleet supervisor serves requests under
// fault plans and must ride out spurious faults the same way.
func CallResumed(m *machine.Machine, name string, args ...uint64) (uint64, error) {
	c := m.CPU
	if err := m.StartCall(c, name, args...); err != nil {
		return 0, err
	}
	for {
		if _, err := c.Run(m.MaxSteps); err != nil {
			if isInjectedFetchFault(err) {
				continue
			}
			return 0, err
		}
		return c.Reg(0), nil
	}
}

// callResumed keeps the package-internal name used by the workloads.
func callResumed(m *machine.Machine, name string, args ...uint64) (uint64, error) {
	return CallResumed(m, name, args...)
}

// stepToHalt drives a CPU until it halts, riding out injected fetch
// faults.
func stepToHalt(c *cpu.CPU, limit int) error {
	for i := 0; i < limit && !c.Halted(); i++ {
		if err := c.Step(); err != nil && !isInjectedFetchFault(err) {
			return err
		}
	}
	if !c.Halted() {
		return fmt.Errorf("chaos: CPU did not halt within %d steps", limit)
	}
	return nil
}

// stepSome executes up to n instructions (stopping early at halt).
func stepSome(c *cpu.CPU, n int) error {
	for i := 0; i < n && !c.Halted(); i++ {
		if err := c.Step(); err != nil && !isInjectedFetchFault(err) {
			return err
		}
	}
	return nil
}

// revertUntilClean retries Revert until it completes without error.
// Each failed attempt consumes at least one armed fault point and
// plans are finite, so the loop terminates; the bound is a backstop
// against runtime regressions that fail persistently without faults.
func revertUntilClean(rt *core.Runtime) error {
	var err error
	for i := 0; i < 64; i++ {
		if err = rt.Revert(); err == nil {
			return nil
		}
		if !errors.Is(err, core.ErrCommitAborted) {
			return err
		}
	}
	return fmt.Errorf("chaos: revert still failing after 64 attempts: %w", err)
}

// IsInjectedFetchFault reports whether err is (or wraps) a spurious
// injected instruction-fetch fault — transient by definition: the PC
// does not advance, so re-running the CPU retries the fetch.
func IsInjectedFetchFault(err error) bool {
	var inj *faultinject.Fault
	return errors.As(err, &inj) && inj.Point.Kind == faultinject.KindFetchFault
}

func isInjectedFetchFault(err error) bool { return IsInjectedFetchFault(err) }

// assertOutsidePatchRanges checks no running CPU's PC sits inside a
// text range the runtime may rewrite — the paper's interrupt-window
// hazard. At chaos op boundaries every CPU is quiesced, so a
// violation means the harness (not the runtime) is broken.
func assertOutsidePatchRanges(m *machine.Machine, rt *core.Runtime) error {
	ranges := rt.PatchRanges()
	for i, c := range m.CPUs() {
		if c.Halted() && i > 0 {
			continue
		}
		pc := c.PC()
		for _, r := range ranges {
			if pc >= r.Addr && pc < r.Addr+r.Len {
				return fmt.Errorf("chaos: cpu %d PC %#x inside patch window [%#x,%#x)", i, pc, r.Addr, r.Addr+r.Len)
			}
		}
	}
	return nil
}

// snapshotExec copies every executable mapping.
func snapshotExec(m *machine.Machine) (map[uint64][]byte, error) {
	snap := make(map[uint64][]byte)
	for _, r := range m.Mem.Regions() {
		if r.Prot&mem.Exec == 0 {
			continue
		}
		buf := make([]byte, r.Len)
		if err := m.Mem.Read(r.Addr, buf); err != nil {
			return nil, err
		}
		snap[r.Addr] = buf
	}
	return snap, nil
}

// assertExecEqual compares the current executable mappings against a
// snapshot, reporting the first differing byte.
func assertExecEqual(m *machine.Machine, snap map[uint64][]byte) error {
	for addr, want := range snap {
		got := make([]byte, len(want))
		if err := m.Mem.Read(addr, got); err != nil {
			return err
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("text byte at %#x: got %#x, want %#x", addr+uint64(i), got[i], want[i])
			}
		}
	}
	return nil
}
