package chaos

import "math/rand"

// countingSource wraps math/rand's seeded source and counts how many
// times it advanced. A snapshot-based replay fast-forwards a fresh
// source by that count and continues drawing the exact values the
// original run would have drawn next.
//
// It implements Source64 by delegation, so rand.Rand takes the same
// internal paths (Uint64 vs composed Int63 calls) as it does over the
// bare source — the draw sequence per seed is bit-identical to
// rand.New(rand.NewSource(seed)), which keeps every historical
// mvstress seed reproducing the same run.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

// newCountingSource seeds a source and fast-forwards it by skip
// advances. Both Int63 and Uint64 advance math/rand's generator by
// exactly one step, so a flat count replays either mix.
func newCountingSource(seed int64, skip uint64) *countingSource {
	c := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	for i := uint64(0); i < skip; i++ {
		c.src.Uint64()
	}
	c.draws = skip
	return c
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) {
	c.src.Seed(s)
	c.draws = 0
}
