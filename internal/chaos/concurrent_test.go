package chaos

import (
	"reflect"
	"testing"
)

// concurrentSeeds returns the per-configuration seed count for the
// concurrent property sweeps; CI's mvstress matrix runs the deep
// (≥200 seed) version of the same configurations.
func concurrentSeeds(t *testing.T) int64 {
	if testing.Short() {
		return 3
	}
	return 12
}

func sweepConcurrent(t *testing.T, cfg Config) {
	t.Helper()
	cfg.Concurrent = true
	n := concurrentSeeds(t)
	var fired, traps uint64
	var aborts, deferred int
	for seed := int64(1); seed <= n; seed++ {
		res, err := Run(seed, cfg)
		if err != nil {
			t.Fatalf("concurrent chaos run failed: %v", err)
		}
		if len(res.Quanta) != cfg.CPUs {
			t.Fatalf("seed %d: %d quanta recorded for %d CPUs", seed, len(res.Quanta), cfg.CPUs)
		}
		fired += res.FaultsFired
		traps += res.Traps
		aborts += res.Aborts
		deferred += res.Deferred
	}
	if fired == 0 {
		t.Fatalf("no fault points fired across %d seeds — injector not exercised", n)
	}
	t.Logf("%d seeds: %d faults fired, %d aborts, %d traps, %d deferred",
		n, fired, aborts, traps, deferred)
}

func TestConcurrentE1Stop1CPU(t *testing.T) {
	sweepConcurrent(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 1, Mode: "stop"})
}

func TestConcurrentE1Stop2CPU(t *testing.T) {
	sweepConcurrent(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 2, Mode: "stop"})
}

func TestConcurrentE1Poke1CPU(t *testing.T) {
	sweepConcurrent(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 1, Mode: "poke"})
}

func TestConcurrentE1Poke2CPU(t *testing.T) {
	sweepConcurrent(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 2, Mode: "poke"})
}

func TestConcurrentE4Stop2CPU(t *testing.T) {
	sweepConcurrent(t, Config{Workload: "e4", Steps: 25, Faults: 6, CPUs: 2, Mode: "stop"})
}

func TestConcurrentE4Poke2CPU(t *testing.T) {
	sweepConcurrent(t, Config{Workload: "e4", Steps: 25, Faults: 6, CPUs: 2, Mode: "poke"})
}

// TestConcurrentDeterministic: same seed, same config — bit-identical
// Result, including the derived quanta and trap counts.
func TestConcurrentDeterministic(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 20, Faults: 5, Concurrent: true, CPUs: 2, Mode: "poke"}
	a, err := Run(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestConcurrentPinnedQuanta: an artifact's recorded quanta replay the
// exact schedule when passed back through Config.Quanta.
func TestConcurrentPinnedQuanta(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 15, Faults: 5, Concurrent: true, CPUs: 2, Mode: "stop"}
	a, err := Run(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Quanta = a.Quanta
	b, err := Run(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pinned quanta diverged from the derived schedule:\n%+v\n%+v", a, b)
	}
}

func TestConcurrentRejectsUnknownMode(t *testing.T) {
	if _, err := Run(1, Config{Workload: "e1", Concurrent: true, Mode: "yolo"}); err == nil {
		t.Fatal("unknown concurrent mode accepted")
	}
}
