package chaos

import (
	"reflect"
	"testing"
)

// sweepOSR runs the concurrent sweep with the on-stack-replacement
// policy and requires the transfer path to actually fire somewhere in
// the sweep: a policy that silently degrades to deferral would pass
// every per-seed property while testing nothing new. Per-seed, the run
// itself enforces that every deferral is an accounted OSR fallback.
func sweepOSR(t *testing.T, cfg Config) {
	t.Helper()
	cfg.Concurrent = true
	cfg.OnActive = "osr"
	n := concurrentSeeds(t)
	var fired uint64
	var transfers, fallbacks, rollbacks, deferred int
	for seed := int64(1); seed <= n; seed++ {
		res, err := Run(seed, cfg)
		if err != nil {
			t.Fatalf("concurrent OSR chaos run failed: %v", err)
		}
		fired += res.FaultsFired
		transfers += res.OSRTransfers
		fallbacks += res.OSRFallbacks
		rollbacks += res.OSRRollbacks
		deferred += res.Deferred
	}
	if fired == 0 {
		t.Fatalf("no fault points fired across %d seeds — injector not exercised", n)
	}
	if transfers == 0 {
		t.Fatalf("no live frames transferred across %d seeds — OSR path never fired", n)
	}
	t.Logf("%d seeds: %d faults fired, %d transfers, %d fallbacks, %d rollbacks, %d deferred",
		n, fired, transfers, fallbacks, rollbacks, deferred)
}

func TestConcurrentOSRE1Stop1CPU(t *testing.T) {
	sweepOSR(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 1, Mode: "stop"})
}

func TestConcurrentOSRE1Stop2CPU(t *testing.T) {
	sweepOSR(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 2, Mode: "stop"})
}

func TestConcurrentOSRE1Poke1CPU(t *testing.T) {
	sweepOSR(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 1, Mode: "poke"})
}

func TestConcurrentOSRE1Poke2CPU(t *testing.T) {
	sweepOSR(t, Config{Workload: "e1", Steps: 25, Faults: 6, CPUs: 2, Mode: "poke"})
}

func TestConcurrentOSRE4Stop2CPU(t *testing.T) {
	sweepOSR(t, Config{Workload: "e4", Steps: 25, Faults: 6, CPUs: 2, Mode: "stop"})
}

func TestConcurrentOSRE4Poke2CPU(t *testing.T) {
	sweepOSR(t, Config{Workload: "e4", Steps: 25, Faults: 6, CPUs: 2, Mode: "poke"})
}

// TestConcurrentOSRDeterministic: same seed, same config — the OSR
// herd/locate/transfer sequence is fully deterministic, so the Result
// (including the new transfer counters) must be bit-identical.
func TestConcurrentOSRDeterministic(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 20, Faults: 5, Concurrent: true, CPUs: 2, Mode: "poke", OnActive: "osr"}
	a, err := Run(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestConcurrentRejectsUnknownOnActive(t *testing.T) {
	if _, err := Run(1, Config{Workload: "e1", Concurrent: true, OnActive: "yolo"}); err == nil {
		t.Fatal("unknown onactive policy accepted")
	}
}
