package chaos

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// TestCountingSourceMatchesBare pins the property every historical
// mvstress seed depends on: wrapping the seeded source in the counting
// wrapper must not change the draw sequence — including the Uint64
// fast path rand.Rand takes when the source implements Source64.
func TestCountingSourceMatchesBare(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(newCountingSource(42, 0))
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if x, y := a.Intn(1000), b.Intn(1000); x != y {
				t.Fatalf("draw %d: Intn %d != %d", i, x, y)
			}
		case 1:
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("draw %d: Uint64 %d != %d", i, x, y)
			}
		case 2:
			if x, y := a.Int63n(77), b.Int63n(77); x != y {
				t.Fatalf("draw %d: Int63n %d != %d", i, x, y)
			}
		case 3:
			if x, y := a.Intn(2), b.Intn(2); x != y {
				t.Fatalf("draw %d: Intn(2) %d != %d", i, x, y)
			}
		}
	}
}

// TestCountingSourceFastForward: a fresh source skipped by a recorded
// draw count continues with exactly the values the original would
// have produced next.
func TestCountingSourceFastForward(t *testing.T) {
	src := newCountingSource(7, 0)
	rng := rand.New(src)
	for i := 0; i < 57; i++ {
		rng.Intn(1000)
		rng.Uint64()
	}
	draws := src.draws
	var want [10]int
	for i := range want {
		want[i] = rng.Intn(1 << 30)
	}

	resumed := rand.New(newCountingSource(7, draws))
	for i := range want {
		if got := resumed.Intn(1 << 30); got != want[i] {
			t.Fatalf("resumed draw %d = %d, want %d", i, got, want[i])
		}
	}
}

// runAndReplay forces a violation via sabotage, then replays it from
// the Result's snapshot pin and requires the identical error. wantOp
// is the op the pin must sit at — the op preceding the violation, or
// Steps when the violation only surfaces in the final-revert section.
func runAndReplay(t *testing.T, seed int64, cfg Config, wantOp int) {
	t.Helper()
	res, err := Run(seed, cfg)
	if err == nil {
		t.Fatalf("sabotaged run passed")
	}
	if res.Replay == nil || len(res.Replay.Snap) == 0 {
		t.Fatalf("failed run carries no replay pin")
	}
	if res.Replay.Op != wantOp {
		t.Fatalf("replay pin at op %d, want %d (violation: %v)", res.Replay.Op, wantOp, err)
	}
	if d, derr := snapshot.Digest(res.Replay.Snap); derr != nil || d != res.Replay.Digest {
		t.Fatalf("replay digest mismatch: %s vs %s (err %v)", d, res.Replay.Digest, derr)
	}

	rres, rerr := ReplaySnapshot(seed, cfg, res.Replay)
	if rerr == nil {
		t.Fatalf("snapshot replay did not reproduce the violation")
	}
	if rerr.Error() != err.Error() {
		t.Fatalf("snapshot replay diverged:\n  full run: %v\n  replay:   %v", err, rerr)
	}
	// The replay resumed mid-run: it must have executed only the
	// suffix, not the whole operation sequence.
	if rres.Ops >= res.Ops {
		t.Fatalf("replay performed %d ops, full run %d — did it start from op 0?", rres.Ops, res.Ops)
	}
}

// Seed 1's sabotage trips the text audit inside the sabotaged op, so
// the pin sits at op Sabotage-1 and the replay runs only the suffix.
func TestReplaySnapshotE1(t *testing.T) {
	runAndReplay(t, 1, Config{Workload: "e1", Steps: 12, Faults: 4, Sabotage: 8}, 7)
}

func TestReplaySnapshotE1SMP(t *testing.T) {
	runAndReplay(t, 1, Config{Workload: "e1", Steps: 12, Faults: 4, SMP: true, Sabotage: 9}, 8)
}

// Seed 3's sabotaged byte lands where the auditor does not look, so
// the violation only surfaces at the final boot-image comparison: the
// pin sits at op == Steps and the replay runs just the final section.
func TestReplaySnapshotE1FinalSection(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 12, Faults: 4, Sabotage: 8}
	runAndReplay(t, 3, cfg, cfg.Steps)
}

// TestReplaySnapshotE4 exercises the host-model carry: E4's LCG and
// stream counters live outside the machine, so the replay pin must
// restore them for the suffix's semantic checks to agree.
func TestReplaySnapshotE4(t *testing.T) {
	runAndReplay(t, 1, Config{Workload: "e4", Steps: 12, Faults: 4, Sabotage: 8}, 7)
}

// TestReplayPassingRun: a clean run's final pin sits at op == Steps;
// replaying it executes just the final-revert section and passes.
func TestReplayPassingRun(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 10, Faults: 3}
	res, err := Run(5, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Replay == nil || res.Replay.Op != cfg.Steps {
		t.Fatalf("passing run's pin = %+v, want op %d", res.Replay, cfg.Steps)
	}
	rres, rerr := ReplaySnapshot(5, cfg, res.Replay)
	if rerr != nil {
		t.Fatalf("replaying a passing run's final pin failed: %v", rerr)
	}
	if rres.Ops != 0 || rres.Checks != 1 {
		t.Fatalf("final-pin replay ran ops=%d checks=%d, want 0 and 1", rres.Ops, rres.Checks)
	}
}

func TestReplayRejectsConcurrent(t *testing.T) {
	_, err := ReplaySnapshot(1, Config{Workload: "e1", Concurrent: true}, &ReplayInfo{Snap: []byte{1}})
	if err == nil || !strings.Contains(err.Error(), "concurrent") {
		t.Fatalf("concurrent replay not rejected: %v", err)
	}
}

func TestReplayRejectsEmptyPin(t *testing.T) {
	if _, err := ReplaySnapshot(1, Config{Workload: "e1"}, nil); err == nil {
		t.Fatalf("nil replay info accepted")
	}
	if _, err := ReplaySnapshot(1, Config{Workload: "e1"}, &ReplayInfo{}); err == nil {
		t.Fatalf("empty snapshot accepted")
	}
}
