package chaos

import (
	"reflect"
	"testing"
)

// seedCount returns how many seeds to sweep per configuration; the
// full sweep in long mode, a smoke batch under -short.
func seedCount(t *testing.T) int64 {
	if testing.Short() {
		return 4
	}
	return 24
}

func sweep(t *testing.T, cfg Config) {
	t.Helper()
	n := seedCount(t)
	var fired uint64
	var aborts int
	for seed := int64(1); seed <= n; seed++ {
		res, err := Run(seed, cfg)
		if err != nil {
			t.Fatalf("chaos run failed: %v", err)
		}
		fired += res.FaultsFired
		aborts += res.Aborts
		if res.Ops != cfg.Steps && cfg.Steps != 0 {
			t.Fatalf("seed %d: performed %d ops, want %d", seed, res.Ops, cfg.Steps)
		}
	}
	// The sweep must actually exercise the fault machinery: across all
	// seeds at least some points must fire. (Individual seeds may arm
	// points the run never reaches.)
	if fired == 0 {
		t.Fatalf("no fault points fired across %d seeds — injector not exercised", n)
	}
	t.Logf("%d seeds: %d faults fired, %d clean aborts", n, fired, aborts)
}

func TestChaosE1(t *testing.T) {
	sweep(t, Config{Workload: "e1", Steps: 25, Faults: 6})
}

func TestChaosE1SMP(t *testing.T) {
	sweep(t, Config{Workload: "e1", Steps: 25, Faults: 6, SMP: true})
}

func TestChaosE4(t *testing.T) {
	sweep(t, Config{Workload: "e4", Steps: 25, Faults: 6})
}

func TestChaosE4SMP(t *testing.T) {
	sweep(t, Config{Workload: "e4", Steps: 25, Faults: 6, SMP: true})
}

func TestChaosRunIsDeterministic(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 20, Faults: 5, SMP: true}
	a, err := Run(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestChaosRejectsUnknownWorkload(t *testing.T) {
	if _, err := Run(1, Config{Workload: "e9"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestSabotageProducesFlightDump forces a property violation (a text
// byte corrupted behind the runtime's back trips the auditor) and
// asserts the failing run carries its flight-recorder dump — the same
// payload mvstress embeds in failing-seed artifacts.
func TestSabotageProducesFlightDump(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 10, Faults: 0, Sabotage: 3}
	res, err := Run(1, cfg)
	if err == nil {
		t.Fatal("sabotaged run reported success")
	}
	d := res.FlightDump
	if d == nil {
		t.Fatal("failing run has no flight dump")
	}
	if d.Reason != "chaos property violation" {
		t.Errorf("dump reason = %q", d.Reason)
	}
	if len(d.Events) == 0 {
		t.Fatal("flight dump is empty")
	}
	for _, fe := range d.Events {
		if _, err := fe.Event(); err != nil {
			t.Fatalf("dump event does not decode: %v", err)
		}
	}
	// A healthy run of the same shape carries no dump.
	ok, err := Run(1, Config{Workload: "e1", Steps: 10, Faults: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok.FlightDump != nil {
		t.Error("successful run should not attach a flight dump")
	}
}

func TestSabotageProducesFlightDumpConcurrent(t *testing.T) {
	cfg := Config{Workload: "e1", Steps: 10, Faults: 0,
		Concurrent: true, CPUs: 2, Mode: "stop", Sabotage: 3}
	res, err := Run(1, cfg)
	if err == nil {
		t.Fatal("sabotaged concurrent run reported success")
	}
	if res.FlightDump == nil || len(res.FlightDump.Events) == 0 {
		t.Fatalf("failing concurrent run has no flight dump: %+v", res.FlightDump)
	}
}
