package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/faultinject"
	"repro/internal/snapshot"
)

// ReplayInfo pins a snapshot-based reproduction point: the encoded
// machine+runtime snapshot at a quiesced operation boundary, plus
// everything that lives in the harness rather than the machine — how
// far the seeded rng had advanced, which fault points had fired, and
// the workload's host-side semantic model. Together with the (seed,
// Config) pair it is sufficient to resume the run mid-flight.
//
// The snapshot bytes are excluded from JSON: mvstress stores them
// standalone next to the artifact (<artifact>.snap) and the Digest
// field ties the two files together.
type ReplayInfo struct {
	// Op is the operation index the snapshot was taken before.
	Op int `json:"op"`
	// RngDraws is how many times the seeded source had advanced.
	RngDraws uint64 `json:"rng_draws"`
	// Plan is the fault plan's progress (fired points, op counters).
	Plan faultinject.PlanState `json:"plan"`
	// Model is the workload's host-side semantic model (E4's LCG
	// mirror and stream counters), nil for workloads without one.
	Model []uint64 `json:"model,omitempty"`
	// Digest is the canonical snapshot digest of Snap.
	Digest string `json:"snap_digest"`
	// Snap is the encoded snapshot (stored out of band in artifacts).
	Snap []byte `json:"-"`
}

// ReplaySnapshot resumes a chaos run from a replay pin instead of from
// cycle zero: it rebuilds the workload system, applies the snapshot,
// fast-forwards a fresh seeded rng by the recorded draw count,
// restores the fault plan's progress and the host-side model, then
// executes the remaining operations through the same per-op body Run
// uses. A genuine violation reproduces as the same error the full run
// reported. The returned Result's counters cover only the replayed
// suffix. Concurrent configs replay from seed only.
func ReplaySnapshot(seed int64, cfg Config, info *ReplayInfo) (Result, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 40
	}
	if cfg.Faults <= 0 {
		cfg.Faults = 6
	}
	if cfg.Concurrent {
		return Result{Seed: seed}, fmt.Errorf("chaos: concurrent runs replay from seed, not from snapshots")
	}
	if info == nil || len(info.Snap) == 0 {
		return Result{Seed: seed}, fmt.Errorf("chaos: replay info carries no snapshot")
	}
	if info.Op > cfg.Steps {
		return Result{Seed: seed}, fmt.Errorf("chaos: replay op %d beyond the run's %d steps", info.Op, cfg.Steps)
	}
	r, err := newRunner(seed, cfg)
	if err != nil {
		return Result{Seed: seed}, err
	}
	snap, err := snapshot.Decode(info.Snap)
	if err != nil {
		return r.res, fmt.Errorf("chaos: replay snapshot: %w", err)
	}
	if err := snapshot.Apply(snap, r.m, r.rt); err != nil {
		return r.res, fmt.Errorf("chaos: applying replay snapshot: %w", err)
	}
	if err := r.plan.Import(info.Plan); err != nil {
		return r.res, err
	}
	r.src = newCountingSource(seed, info.RngDraws)
	r.rng = rand.New(r.src)
	r.w.importModel(info.Model)
	return r.run(info.Op)
}
