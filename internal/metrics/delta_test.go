package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestDeltaTrackerAttributesIntervals pins the mvbench -repeat
// contract: each Take returns only the activity since the previous
// Take, and the deltas across rounds sum to the counter total — no
// since-run-start double counting.
func TestDeltaTrackerAttributesIntervals(t *testing.T) {
	r := New()
	c := r.Counter("work_total", "")
	names := []string{"work_total", "absent_total"}
	dt := NewDeltaTracker(r)

	c.Add(10)
	d1 := dt.Take(names)
	if d1["work_total"] != 10 {
		t.Errorf("first interval delta = %d, want 10", d1["work_total"])
	}
	if d1["absent_total"] != 0 {
		t.Errorf("absent counter delta = %d, want 0", d1["absent_total"])
	}

	c.Add(7)
	d2 := dt.Take(names)
	if d2["work_total"] != 7 {
		t.Errorf("second interval delta = %d, want 7 (got since-start value?)", d2["work_total"])
	}

	// Idle interval: baseline must have advanced, so the delta is 0,
	// not a replay of the previous interval.
	d3 := dt.Take(names)
	if d3["work_total"] != 0 {
		t.Errorf("idle interval delta = %d, want 0", d3["work_total"])
	}

	if total := d1["work_total"] + d2["work_total"] + d3["work_total"]; total != c.Value() {
		t.Errorf("interval deltas sum to %d, counter total is %d", total, c.Value())
	}
}

// TestSnapshotSanitizesNonFiniteGauges: a GaugeFunc returning NaN or
// ±Inf (a ratio before its denominator has moved) must not poison the
// snapshot — JSON has no encoding for those values, and json.Marshal
// errors out on them, which would break mvbench -json and the
// /metrics.json endpoint wholesale.
func TestSnapshotSanitizesNonFiniteGauges(t *testing.T) {
	r := New()
	r.GaugeFunc("bad_ratio", "", func() float64 { return math.NaN() })
	r.GaugeFunc("bad_inf", "", func() float64 { return math.Inf(1) })
	r.GaugeFunc("bad_neginf", "", func() float64 { return math.Inf(-1) })
	r.GaugeFunc("good", "", func() float64 { return 0.5 })

	snap := r.Snapshot()
	for _, name := range []string{"bad_ratio", "bad_inf", "bad_neginf"} {
		f := snap.Find(name)
		if f == nil || len(f.Series) != 1 || f.Series[0].Value == nil {
			t.Fatalf("%s missing from snapshot", name)
		}
		if v := *f.Series[0].Value; v != 0 {
			t.Errorf("%s exported as %v, want sanitized 0", name, v)
		}
	}
	if v := *snap.Find("good").Series[0].Value; v != 0.5 {
		t.Errorf("finite gauge perturbed: %v, want 0.5", v)
	}

	// The end-to-end property the sanitizing exists for.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot with non-finite gauges does not marshal: %v", err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}
