package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SampleFormat selects the sampler's row encoding.
type SampleFormat uint8

// Sampler row encodings.
const (
	// FormatJSONL writes one full Snapshot per line — the format
	// mvtop replays. Series that appear later (e.g. residency labels
	// created by the first commit) show up in later rows.
	FormatJSONL SampleFormat = iota
	// FormatCSV writes a flat numeric table for plotting: a header
	// row of cycle plus one column per series (histograms contribute
	// _count and _sum columns). The column set is fixed by the first
	// row; series created afterwards are not added (noted on stderr
	// by callers that care), keeping every row parseable.
	FormatCSV
)

// ParseSampleFormat parses "jsonl" or "csv".
func ParseSampleFormat(s string) (SampleFormat, error) {
	switch s {
	case "jsonl":
		return FormatJSONL, nil
	case "csv":
		return FormatCSV, nil
	}
	return 0, fmt.Errorf("metrics: unknown sample format %q (want jsonl or csv)", s)
}

// Sampler appends periodic time-series rows of a registry to a
// writer, driven by the simulated-cycle clock: Tick(now) is cheap
// (one compare) until the period elapses, then snapshots the registry
// and writes one row. It makes experiment *trajectories* — how
// flush rates or residency evolve over a run — plottable, where the
// end-of-run snapshot only gives totals.
type Sampler struct {
	reg    *Registry
	w      io.Writer
	every  uint64
	next   uint64
	format SampleFormat

	header []string // CSV column keys, fixed at first row
	err    error
	rows   int
}

// NewSampler returns a sampler emitting a row each time the clock
// advances by every cycles (minimum 1). The first row is written on
// the first Tick.
func NewSampler(reg *Registry, w io.Writer, every uint64, format SampleFormat) *Sampler {
	if every == 0 {
		every = 1
	}
	return &Sampler{reg: reg, w: w, every: every, format: format}
}

// Tick emits a row if now has reached the next sampling point.
func (s *Sampler) Tick(now uint64) {
	if now < s.next || s.err != nil {
		return
	}
	s.next = now + s.every
	s.Sample()
}

// Rows returns the number of rows written so far.
func (s *Sampler) Rows() int { return s.rows }

// Err returns the first write error, if any.
func (s *Sampler) Err() error { return s.err }

// Sample writes one row unconditionally (callers use it for a final
// end-of-run row so short runs still produce data).
func (s *Sampler) Sample() {
	if s.err != nil {
		return
	}
	snap := s.reg.Snapshot()
	switch s.format {
	case FormatJSONL:
		s.err = writeJSONLRow(s.w, snap)
	case FormatCSV:
		s.err = s.writeCSVRow(snap)
	}
	if s.err == nil {
		s.rows++
	}
}

func writeJSONLRow(w io.Writer, snap Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// flatten renders the snapshot as ordered (key, value) pairs:
// "name{labels}" for counters and gauges, "_count"/"_sum" suffixed
// keys for histograms.
func flatten(snap Snapshot) ([]string, map[string]float64) {
	var keys []string
	vals := make(map[string]float64)
	add := func(k string, v float64) {
		keys = append(keys, k)
		vals[k] = v
	}
	for _, f := range snap.Families {
		for _, sv := range f.Series {
			key := f.Name + labelSig(sv.Labels)
			switch {
			case sv.Value != nil:
				add(key, *sv.Value)
			case sv.Hist != nil:
				add(key+"_count", float64(sv.Hist.Count))
				add(key+"_sum", float64(sv.Hist.Sum))
			}
		}
	}
	return keys, vals
}

func labelSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, 0, len(labels))
	for k, v := range labels {
		ls = append(ls, Label{Key: k, Value: v})
	}
	return signature(sortLabels(ls))
}

func (s *Sampler) writeCSVRow(snap Snapshot) error {
	keys, vals := flatten(snap)
	if s.header == nil {
		s.header = keys
		cols := append([]string{"cycle"}, keys...)
		quoted := make([]string, len(cols))
		for i, c := range cols {
			quoted[i] = csvQuote(c)
		}
		if _, err := fmt.Fprintln(s.w, strings.Join(quoted, ",")); err != nil {
			return err
		}
	}
	row := make([]string, 0, len(s.header)+1)
	row = append(row, strconv.FormatUint(snap.Cycle, 10))
	for _, k := range s.header {
		row = append(row, strconv.FormatFloat(vals[k], 'g', -1, 64))
	}
	_, err := fmt.Fprintln(s.w, strings.Join(row, ","))
	return err
}

// csvQuote quotes a header cell (metric signatures contain commas
// and quotes).
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
