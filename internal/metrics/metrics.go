// Package metrics is the simulator's unified telemetry registry: a
// stdlib-only collection of counters, gauges and log₂-bucketed
// histograms whose values live in the *simulated cycle* domain.
//
// The design splits responsibility the same way the paper splits
// mechanism from policy:
//
//   - The hot layers (internal/cpu, internal/mem, internal/core) keep
//     their plain struct counters — a field increment in the
//     interpreter loop costs one add and the metrics package never
//     appears on that path. The difftests assert simulated cycle
//     counts are bit-identical with a registry attached or not.
//   - The registry holds *readers*: closures registered with
//     CounterFunc/GaugeFunc that sample those structs at export time.
//     Registering the same name+labels again appends another reader
//     and the exported value is the sum, which is how many simulated
//     systems (mvbench builds hundreds) aggregate into one registry.
//   - Distributions that only exist at event granularity — commit
//     latency, patched-sites-per-commit — are owned by the registry
//     as log₂ histograms: distributions, not means, are what reveal
//     patching stalls (cf. the OSR transition-cost literature).
//
// Export surfaces are prom.go (Prometheus text exposition),
// snapshot.go (JSON) and sampler.go (cycle-driven CSV/JSONL time
// series). All exports use a stable ordering: families sorted by
// name, series sorted by label signature.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Type classifies a metric family.
type Type uint8

// Metric family types.
const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
)

// String names the type as used in Prometheus TYPE lines.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. All structural operations (creating
// families and series) are guarded by a mutex; exports gather the
// series under the lock and evaluate readers outside it, so a reader
// may itself consult the registry (CounterTotal) without deadlocking.
type Registry struct {
	mu        sync.Mutex
	clock     func() uint64
	baseCycle uint64
	fams      map[string]*family
	mounts    []mount // merged source registries (see Merge)
}

type family struct {
	name, help string
	typ        Type
	series     map[string]*series
}

type series struct {
	labels []Label // sorted by key

	mu     sync.Mutex
	val    uint64          // Counter
	gauge  float64         // Gauge
	cfuncs []func() uint64 // CounterFunc readers (summed)
	gfuncs []func() float64
	hist   *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// SetClock installs the simulated-cycle clock stamped onto snapshots
// and sampler rows. When several systems share one registry the last
// attached clock wins.
func (r *Registry) SetClock(f func() uint64) {
	r.mu.Lock()
	r.clock = f
	r.mu.Unlock()
}

// SetBaseCycle records the simulated cycle the attached system
// *started* at — nonzero exactly when it was restored from a
// checkpoint rather than booted from cycle zero. The value is stamped
// onto every snapshot so replay consumers (mvtop, ReadSnapshotLog
// rate math) can distinguish "counted since cycle 0" from "counted
// since the restore point" in the first sample window.
func (r *Registry) SetBaseCycle(c uint64) {
	r.mu.Lock()
	r.baseCycle = c
	r.mu.Unlock()
}

// BaseCycle returns the cycle recorded by SetBaseCycle (0 for runs
// that started from boot).
func (r *Registry) BaseCycle() uint64 {
	r.mu.Lock()
	c := r.baseCycle
	r.mu.Unlock()
	return c
}

// Now returns the current simulated cycle (0 without a clock).
func (r *Registry) Now() uint64 {
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c()
}

// Has reports whether a family with the given name exists.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	_, ok := r.fams[name]
	r.mu.Unlock()
	return ok
}

// signature renders sorted labels into a stable series key; it is
// also the exact label block used in the Prometheus exposition.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// getSeries returns (creating as needed) the series for name+labels,
// panicking on a type mismatch — mixing types under one name is a
// programming error the exposition format cannot represent.
func (r *Registry) getSeries(name, help string, typ Type, labels []Label) *series {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: labels}
		if typ == TypeHistogram {
			s.hist = &Histogram{}
		}
		f.series[sig] = s
	}
	return s
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ s *series }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.s.mu.Lock()
	c.s.val += n
	c.s.mu.Unlock()
}

// Value returns the stored count (excluding reader contributions).
func (c *Counter) Value() uint64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// Counter returns (creating as needed) a stored counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{r.getSeries(name, help, TypeCounter, labels)}
}

// CounterFunc registers a reader for a counter series. Registering
// the same name+labels again appends another reader; the exported
// value is the sum of all readers plus any stored count.
func (r *Registry) CounterFunc(name, help string, f func() uint64, labels ...Label) {
	s := r.getSeries(name, help, TypeCounter, labels)
	s.mu.Lock()
	s.cfuncs = append(s.cfuncs, f)
	s.mu.Unlock()
}

// Gauge is a settable float64 metric.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.gauge = v
	g.s.mu.Unlock()
}

// Gauge returns (creating as needed) a stored gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{r.getSeries(name, help, TypeGauge, labels)}
}

// GaugeFunc registers a reader for a gauge series; multiple readers
// on one series sum. Derived gauges (ratios, rates) should be
// registered once per registry and read aggregated counters, so they
// stay correct when many systems share the registry — see Has.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	s := r.getSeries(name, help, TypeGauge, labels)
	s.mu.Lock()
	s.gfuncs = append(s.gfuncs, f)
	s.mu.Unlock()
}

// Histogram returns (creating as needed) a log₂-bucketed histogram
// series. Calling again with the same name+labels returns the same
// underlying histogram, which is how many systems aggregate.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.getSeries(name, help, TypeHistogram, labels).hist
}

// CounterTotal returns the summed value of every series (stored and
// readers) of the named counter family, 0 if absent. Readers are
// evaluated outside the registry lock.
func (r *Registry) CounterTotal(name string) uint64 {
	r.mu.Lock()
	f, ok := r.fams[name]
	if !ok || f.typ != TypeCounter {
		r.mu.Unlock()
		return 0
	}
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	r.mu.Unlock()
	var total uint64
	for _, s := range ss {
		total += s.counterValue()
	}
	return total
}

func (s *series) counterValue() uint64 {
	s.mu.Lock()
	v := s.val
	fs := append([]func() uint64(nil), s.cfuncs...)
	s.mu.Unlock()
	for _, f := range fs {
		v += f()
	}
	return v
}

func (s *series) gaugeValue() float64 {
	s.mu.Lock()
	v := s.gauge
	fs := append([]func() float64(nil), s.gfuncs...)
	s.mu.Unlock()
	for _, f := range fs {
		v += f()
	}
	return v
}

// --- log₂ histogram ---

// histBuckets is bucket 0 (value 0), 64 power-of-two buckets
// (value ≤ 2^k for k = 0..63) and one overflow bucket.
const histBuckets = 66

// Histogram counts observations into log₂ buckets: bucket 0 holds
// zeros, bucket k (1 ≤ k ≤ 64) holds values in (2^(k-2), 2^(k-1)],
// i.e. its upper bound is 2^(k-1), and the last bucket holds values
// above 2^63. Observations are expected to be simulated-cycle
// quantities; the exact-power upper bounds make bucket edges
// self-describing in the exposition ("le=1", "le=2", "le=4", ...).
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	sum    uint64
	total  uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v == 0 {
		return 0
	}
	// Smallest k with v <= 2^k is bits.Len64(v-1); +1 skips the zero
	// bucket. v > 2^63 lands in the overflow bucket (index 65).
	return 1 + bits.Len64(v-1)
}

// BucketBound returns the inclusive upper bound of bucket i and
// whether it is finite (the overflow bucket is not).
func BucketBound(i int) (uint64, bool) {
	switch {
	case i <= 0:
		return 0, true
	case i <= 64:
		return 1 << (i - 1), true
	default:
		return 0, false
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	h.counts[bucketIndex(v)]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram, with
// cumulative bucket counts as in the Prometheus exposition.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket; Le is the inclusive
// upper bound rendered as a decimal integer, or "+Inf".
type Bucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot copies the histogram. Buckets run from le="0" up to the
// highest non-empty finite bucket, then "+Inf", so empty tails do not
// bloat the exposition while the ordering stays deterministic.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	counts := h.counts
	out := HistSnapshot{Count: h.total, Sum: h.sum}
	h.mu.Unlock()

	last := 0
	for i := 1; i < histBuckets-1; i++ {
		if counts[i] != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		bound, _ := BucketBound(i)
		out.Buckets = append(out.Buckets, Bucket{Le: fmt.Sprintf("%d", bound), Count: cum})
	}
	cum = out.Count
	out.Buckets = append(out.Buckets, Bucket{Le: "+Inf", Count: cum})
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the cumulative
// buckets, returning the upper bound of the bucket containing it. The
// second result is false for an empty histogram.
func (s HistSnapshot) Quantile(q float64) (uint64, bool) {
	if s.Count == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= rank {
			if b.Le == "+Inf" {
				break
			}
			var v uint64
			fmt.Sscanf(b.Le, "%d", &v)
			return v, true
		}
	}
	return ^uint64(0), true
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
