package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the log₂ bucketing at the exact
// edges: 0, 1, every 2^k and 2^k+1, and the maximum value.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},               // le=1
		{2, 2},               // le=2
		{3, 3},               // (2,4]
		{4, 3},               // le=4
		{5, 4},               // (4,8]
		{1 << 10, 11},        // 2^10 -> le=2^10
		{1<<10 + 1, 12},      // just past the edge -> next bucket
		{1 << 62, 63},        // le=2^62
		{1<<62 + 1, 64},      // (2^62, 2^63]
		{1 << 63, 64},        // le=2^63, last finite bucket
		{1<<63 + 1, 65},      // overflow
		{math.MaxUint64, 65}, // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for k := 0; k <= 63; k++ {
		v := uint64(1) << k
		idx := bucketIndex(v)
		bound, finite := BucketBound(idx)
		if !finite || bound != v {
			t.Errorf("2^%d: bucket %d has bound %d (finite=%v), want %d", k, idx, bound, finite, v)
		}
		if k < 63 {
			if got := bucketIndex(v + 1); got != idx+1 {
				t.Errorf("2^%d+1: bucket %d, want %d", k, got, idx+1)
			}
		}
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{0, 1, 1, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 109 {
		t.Fatalf("count=%d sum=%d, want 6/109", s.Count, s.Sum)
	}
	// Buckets: le=0:1, le=1:3, le=2:3, le=4:5, ..., le=128:6, +Inf:6.
	want := map[string]uint64{"0": 1, "1": 3, "2": 3, "4": 5, "8": 5, "128": 6, "+Inf": 6}
	got := make(map[string]uint64)
	for _, b := range s.Buckets {
		got[b.Le] = b.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%s: %d, want %d (buckets: %+v)", le, got[le], n, s.Buckets)
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Le != "+Inf" || last.Count != 6 {
		t.Errorf("last bucket = %+v, want +Inf/6", last)
	}
	if prev := s.Buckets[len(s.Buckets)-2]; prev.Le != "128" {
		t.Errorf("highest finite bucket le=%s, want 128 (trailing empties trimmed)", prev.Le)
	}
	if q, ok := s.Quantile(0.5); !ok || q != 1 {
		t.Errorf("p50 = %d (%v), want 1", q, ok)
	}
	if q, ok := s.Quantile(0.99); !ok || q != 128 {
		t.Errorf("p99 = %d (%v), want 128", q, ok)
	}
}

func TestCounterFuncAggregation(t *testing.T) {
	r := New()
	var a, b uint64 = 10, 5
	r.CounterFunc("mv_x_total", "x", func() uint64 { return a })
	r.CounterFunc("mv_x_total", "x", func() uint64 { return b })
	c := r.Counter("mv_x_total", "x")
	c.Add(1)
	if got := r.CounterTotal("mv_x_total"); got != 16 {
		t.Fatalf("CounterTotal = %d, want 16", got)
	}
	snap := r.Snapshot()
	f := snap.Find("mv_x_total")
	if f == nil || len(f.Series) != 1 || *f.Series[0].Value != 16 {
		t.Fatalf("snapshot: %+v", f)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("mv_y_total", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r.Gauge("mv_y_total", "y")
}

func TestSamplerJSONLAndCSV(t *testing.T) {
	r := New()
	var cyc uint64
	r.SetClock(func() uint64 { return cyc })
	c := r.Counter("mv_ops_total", "ops")
	h := r.Histogram("mv_lat_cycles", "lat")

	var jsonl, csv strings.Builder
	sj := NewSampler(r, &jsonl, 100, FormatJSONL)
	sc := NewSampler(r, &csv, 100, FormatCSV)

	cyc = 0
	c.Add(1)
	h.Observe(7)
	sj.Tick(cyc)
	sc.Tick(cyc)
	sj.Tick(50) // below period: no row
	sc.Tick(50)
	cyc = 150
	c.Add(2)
	sj.Tick(cyc)
	sc.Tick(cyc)

	if sj.Rows() != 2 || sc.Rows() != 2 {
		t.Fatalf("rows jsonl=%d csv=%d, want 2/2", sj.Rows(), sc.Rows())
	}
	jl := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(jl) != 2 || !strings.Contains(jl[1], `"cycle":150`) {
		t.Fatalf("jsonl rows: %q", jl)
	}
	cl := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(cl) != 3 { // header + 2 rows
		t.Fatalf("csv lines: %q", cl)
	}
	if !strings.HasPrefix(cl[0], "cycle,") || !strings.Contains(cl[0], "mv_lat_cycles_sum") {
		t.Fatalf("csv header: %q", cl[0])
	}
	// Families sort by name: mv_lat_cycles (_count, _sum) then
	// mv_ops_total.
	if cl[2] != "150,1,7,3" {
		t.Fatalf("csv second row: %q, want \"150,1,7,3\"", cl[2])
	}
	if sj.Err() != nil || sc.Err() != nil {
		t.Fatalf("sampler errors: %v / %v", sj.Err(), sc.Err())
	}
}
