package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// Snapshot is a point-in-time JSON-marshalable copy of a registry,
// stamped with the simulated cycle of the registry clock. It is the
// payload of mvrun's /metrics.json endpoint, of the JSONL sampler
// rows, and of the metrics section in mvbench -json output.
type Snapshot struct {
	Cycle uint64 `json:"cycle"`
	// BaseCycle is the simulated cycle the run started at: zero for a
	// boot-from-scratch run, the checkpoint's cycle for a run restored
	// with mvrun -restore. Consumers computing rates over the first
	// sample window must divide by Cycle-BaseCycle, not Cycle.
	BaseCycle uint64         `json:"base_cycle,omitempty"`
	Families  []FamilyValues `json:"metrics"`
}

// FamilyValues is one exported metric family.
type FamilyValues struct {
	Name   string        `json:"name"`
	Help   string        `json:"help,omitempty"`
	Type   string        `json:"type"`
	Series []SeriesValue `json:"series"`
}

// SeriesValue is one exported series. Exactly one of Value (counters
// and gauges) or Hist is set.
type SeriesValue struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *HistSnapshot     `json:"histogram,omitempty"`

	sig string // export ordering key
}

// gathered is one series plus everything needed to evaluate it
// outside the registry lock: the label set and signature carry any
// extra labels contributed by the mount path the series was reached
// through (see Merge).
type gathered struct {
	fam    *family
	sig    string
	labels []Label
	s      *series
}

func (r *Registry) gather() (func() uint64, []*family, map[*family][]gathered) {
	r.mu.Lock()
	clock := r.clock
	r.mu.Unlock()
	byName := make(map[string]*family)
	byFam := make(map[*family][]gathered)
	var fams []*family
	r.collect(nil, byName, byFam, &fams, make(map[*Registry]bool))
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		gs := byFam[f]
		sort.Slice(gs, func(i, j int) bool { return gs[i].sig < gs[j].sig })
		byFam[f] = gs
	}
	return clock, fams, byFam
}

// Snapshot evaluates every series (readers run outside the registry
// lock) into a stable-ordered Snapshot.
func (r *Registry) Snapshot() Snapshot {
	clock, fams, byFam := r.gather()
	var snap Snapshot
	if clock != nil {
		snap.Cycle = clock()
	}
	snap.BaseCycle = r.BaseCycle()
	for _, f := range fams {
		fv := FamilyValues{Name: f.name, Help: f.help, Type: f.typ.String()}
		for _, g := range byFam[f] {
			sv := SeriesValue{sig: g.sig}
			if len(g.labels) > 0 {
				sv.Labels = make(map[string]string, len(g.labels))
				for _, l := range g.labels {
					sv.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case TypeCounter:
				v := float64(g.s.counterValue())
				sv.Value = &v
			case TypeGauge:
				// JSON has no encoding for NaN or ±Inf — json.Marshal
				// fails on them — so a single misbehaving GaugeFunc
				// (e.g. a ratio with a zero denominator) must not take
				// down every snapshot consumer. Export 0 instead.
				v := g.s.gaugeValue()
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				sv.Value = &v
			case TypeHistogram:
				h := g.s.hist.Snapshot()
				sv.Hist = &h
			}
			fv.Series = append(fv.Series, sv)
		}
		snap.Families = append(snap.Families, fv)
	}
	return snap
}

// WindowCycles returns the cycles this run has actually executed when
// the snapshot was taken: Cycle minus the restore point. For a run
// restored from a checkpoint the absolute cycle counter starts at the
// checkpoint's cycle, so rate math over the first sample window must
// use this, not Cycle, as the denominator.
func (s *Snapshot) WindowCycles() uint64 {
	if s.Cycle < s.BaseCycle {
		return 0
	}
	return s.Cycle - s.BaseCycle
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Find returns the family with the given name, nil if absent.
func (s *Snapshot) Find(name string) *FamilyValues {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}
