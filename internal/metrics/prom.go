package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name with
// HELP/TYPE lines, series sorted by label signature, histograms as
// cumulative _bucket/_sum/_count series. Counter values are rendered
// as decimal integers so the output is stable and diff-friendly;
// gauges use the shortest float representation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, fams, byFam := r.gather()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, g := range byFam[f] {
			var err error
			switch f.typ {
			case TypeCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, g.sig, g.s.counterValue())
			case TypeGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, g.sig,
					strconv.FormatFloat(g.s.gaugeValue(), 'g', -1, 64))
			case TypeHistogram:
				err = writePromHist(w, f.name, g.sig, g.s.hist.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist renders one histogram series. The le label is merged
// into the series' own label block.
func writePromHist(w io.Writer, name, sig string, h HistSnapshot) error {
	for _, b := range h.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, mergeLabel(sig, "le", b.Le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, sig, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, sig, h.Count)
	return err
}

// escapeHelp escapes HELP text per the exposition format: backslash
// and newline only (quotes stay literal, unlike label values).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// mergeLabel appends key="value" to an existing {...} label block
// (or creates one).
func mergeLabel(sig, key, value string) string {
	pair := key + `="` + escapeLabel(value) + `"`
	if sig == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(sig, "}") + "," + pair + "}"
}
