package metrics

import (
	"strings"
	"testing"
)

func TestReadSnapshotLog(t *testing.T) {
	in := `{"cycle": 10, "metrics": []}
{"cycle": 20, "metrics": []}

{"cycle": 30, "metrics": []}
`
	snaps, err := ReadSnapshotLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, want := range []uint64{10, 20, 30} {
		if snaps[i].Cycle != want {
			t.Errorf("snaps[%d].Cycle = %d, want %d", i, snaps[i].Cycle, want)
		}
	}
}

// TestReadSnapshotLogTruncatedFinalRow covers the normal crash shape:
// the sampled process died mid-write, leaving a torn last line. The
// recording up to that point must replay.
func TestReadSnapshotLogTruncatedFinalRow(t *testing.T) {
	in := `{"cycle": 10, "metrics": []}
{"cycle": 20, "metrics": []}
{"cycle": 30, "metr`
	snaps, err := ReadSnapshotLog(strings.NewReader(in))
	if err != nil {
		t.Fatalf("truncated final row must be tolerated, got: %v", err)
	}
	if len(snaps) != 2 || snaps[1].Cycle != 20 {
		t.Fatalf("got %d snapshots (last cycle %d), want the 2 intact rows",
			len(snaps), snaps[len(snaps)-1].Cycle)
	}
}

// A bad row with valid rows after it is corruption, not truncation.
func TestReadSnapshotLogRejectsMidFileCorruption(t *testing.T) {
	in := `{"cycle": 10, "metrics": []}
{"cycle": 20, "metr
{"cycle": 30, "metrics": []}
`
	if _, err := ReadSnapshotLog(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file corruption must be an error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the bad line: %v", err)
	}
}

// A file whose only row is bad has nothing to salvage.
func TestReadSnapshotLogRejectsAllBad(t *testing.T) {
	if _, err := ReadSnapshotLog(strings.NewReader(`{"cycle": bogus`)); err == nil {
		t.Fatal("a lone bad row must be an error")
	}
}

func TestReadSnapshotLogEmpty(t *testing.T) {
	snaps, err := ReadSnapshotLog(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("got %d snapshots from empty input", len(snaps))
	}
}
