package metrics

import (
	"strings"
	"testing"
)

func TestReadSnapshotLog(t *testing.T) {
	in := `{"cycle": 10, "metrics": []}
{"cycle": 20, "metrics": []}

{"cycle": 30, "metrics": []}
`
	snaps, err := ReadSnapshotLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, want := range []uint64{10, 20, 30} {
		if snaps[i].Cycle != want {
			t.Errorf("snaps[%d].Cycle = %d, want %d", i, snaps[i].Cycle, want)
		}
	}
}

// TestReadSnapshotLogRestoredRun pins the restored-from-checkpoint
// shape: a run that began at a nonzero base cycle stamps base_cycle on
// every row, and rate math over the first window must use the elapsed
// window, not the absolute counter.
func TestReadSnapshotLogRestoredRun(t *testing.T) {
	reg := New()
	var now uint64 = 500_000
	reg.SetClock(func() uint64 { return now })
	reg.SetBaseCycle(500_000) // restored exactly at the clock's start
	reg.Counter("ops_total", "").Add(0)

	var buf strings.Builder
	s := NewSampler(reg, &buf, 1000, FormatJSONL)
	s.Tick(now) // first window: zero elapsed cycles
	now += 2500
	s.Tick(now)

	snaps, err := ReadSnapshotLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	for i, snap := range snaps {
		if snap.BaseCycle != 500_000 {
			t.Errorf("snaps[%d].BaseCycle = %d, want 500000", i, snap.BaseCycle)
		}
	}
	if got := snaps[0].WindowCycles(); got != 0 {
		t.Errorf("first-window elapsed = %d, want 0 (restored run had executed nothing)", got)
	}
	if got := snaps[1].WindowCycles(); got != 2500 {
		t.Errorf("second-window elapsed = %d, want 2500", got)
	}
	// A fresh-boot row without the field keeps the zero value.
	plain, err := ReadSnapshotLog(strings.NewReader(`{"cycle": 10, "metrics": []}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].BaseCycle != 0 || plain[0].WindowCycles() != 10 {
		t.Errorf("fresh-boot row: base=%d window=%d, want 0 and 10",
			plain[0].BaseCycle, plain[0].WindowCycles())
	}
}

// TestReadSnapshotLogTruncatedFinalRow covers the normal crash shape:
// the sampled process died mid-write, leaving a torn last line. The
// recording up to that point must replay.
func TestReadSnapshotLogTruncatedFinalRow(t *testing.T) {
	in := `{"cycle": 10, "metrics": []}
{"cycle": 20, "metrics": []}
{"cycle": 30, "metr`
	snaps, err := ReadSnapshotLog(strings.NewReader(in))
	if err != nil {
		t.Fatalf("truncated final row must be tolerated, got: %v", err)
	}
	if len(snaps) != 2 || snaps[1].Cycle != 20 {
		t.Fatalf("got %d snapshots (last cycle %d), want the 2 intact rows",
			len(snaps), snaps[len(snaps)-1].Cycle)
	}
}

// A bad row with valid rows after it is corruption, not truncation.
func TestReadSnapshotLogRejectsMidFileCorruption(t *testing.T) {
	in := `{"cycle": 10, "metrics": []}
{"cycle": 20, "metr
{"cycle": 30, "metrics": []}
`
	if _, err := ReadSnapshotLog(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file corruption must be an error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the bad line: %v", err)
	}
}

// A file whose only row is bad has nothing to salvage.
func TestReadSnapshotLogRejectsAllBad(t *testing.T) {
	if _, err := ReadSnapshotLog(strings.NewReader(`{"cycle": bogus`)); err == nil {
		t.Fatal("a lone bad row must be an error")
	}
}

func TestReadSnapshotLogEmpty(t *testing.T) {
	snaps, err := ReadSnapshotLog(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("got %d snapshots from empty input", len(snaps))
	}
}
