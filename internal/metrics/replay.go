package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadSnapshotLog parses a JSONL sampler stream — one Snapshot per
// line, as written by Sampler's jsonl format — and returns the
// snapshots in order.
//
// A malformed FINAL row is tolerated and dropped: a sampled process
// that dies (or is killed) mid-write leaves a truncated last line, and
// the recording up to that point is still perfectly replayable. A
// malformed row with more rows after it is corruption, not truncation,
// and stays an error — as does a file whose only rows are bad.
func ReadSnapshotLog(r io.Reader) ([]Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var snaps []Snapshot
	var pending error // bad row seen; fatal unless it stays the last row
	line := 0
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		line++
		if text == "" {
			continue
		}
		if pending != nil {
			return nil, pending
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			pending = fmt.Errorf("line %d: %w", line, err)
			continue
		}
		snaps = append(snaps, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pending != nil && len(snaps) == 0 {
		return nil, pending
	}
	return snaps, nil
}
