package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition byte-for-byte:
// family ordering (sorted by name), HELP/TYPE lines, label
// signatures (keys sorted), histogram bucket/sum/count rendering and
// label escaping. A printf slip in prom.go fails here, not in
// production scrapes.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("mv_commits_total", "Total commit operations.").Add(3)
	r.Counter("mv_variant_residency_cycles", "Cycles spent bound to each variant.",
		L("function", "process"), L("variant", "process.variant1")).Add(1200)
	r.Counter("mv_variant_residency_cycles", "Cycles spent bound to each variant.",
		L("function", "process"), L("variant", "generic")).Add(34)
	r.Gauge("mv_decode_hit_ratio", "Decode-cache hit ratio.").Set(0.75)
	h := r.Histogram("mv_commit_latency_cycles", "Modeled commit latency.")
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(900)

	const want = `# HELP mv_commit_latency_cycles Modeled commit latency.
# TYPE mv_commit_latency_cycles histogram
mv_commit_latency_cycles_bucket{le="0"} 1
mv_commit_latency_cycles_bucket{le="1"} 2
mv_commit_latency_cycles_bucket{le="2"} 2
mv_commit_latency_cycles_bucket{le="4"} 3
mv_commit_latency_cycles_bucket{le="8"} 3
mv_commit_latency_cycles_bucket{le="16"} 3
mv_commit_latency_cycles_bucket{le="32"} 3
mv_commit_latency_cycles_bucket{le="64"} 3
mv_commit_latency_cycles_bucket{le="128"} 3
mv_commit_latency_cycles_bucket{le="256"} 3
mv_commit_latency_cycles_bucket{le="512"} 3
mv_commit_latency_cycles_bucket{le="1024"} 4
mv_commit_latency_cycles_bucket{le="+Inf"} 4
mv_commit_latency_cycles_sum 904
mv_commit_latency_cycles_count 4
# HELP mv_commits_total Total commit operations.
# TYPE mv_commits_total counter
mv_commits_total 3
# HELP mv_decode_hit_ratio Decode-cache hit ratio.
# TYPE mv_decode_hit_ratio gauge
mv_decode_hit_ratio 0.75
# HELP mv_variant_residency_cycles Cycles spent bound to each variant.
# TYPE mv_variant_residency_cycles counter
mv_variant_residency_cycles{function="process",variant="generic"} 34
mv_variant_residency_cycles{function="process",variant="process.variant1"} 1200
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Exposition must be stable across repeated scrapes.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Error("exposition not stable across scrapes")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("mv_esc_total", "", L("name", `a"b\c`)).Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `mv_esc_total{name="a\"b\\c"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaping: got %q, want to contain %q", sb.String(), want)
	}
}

// TestExpositionEscaping pins every escape the text format requires:
// label values escape backslash, double-quote and newline; HELP text
// escapes backslash and newline (quotes stay literal). A raw newline
// anywhere would tear the line-oriented format apart, so the test also
// asserts each logical row is exactly one physical line.
func TestExpositionEscaping(t *testing.T) {
	r := New()
	r.Counter("mv_esc_total", `help with \backslash
and newline`, L("stream", "cpu\"0\"\\x\ny")).Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`# HELP mv_esc_total help with \\backslash\nand newline`,
		`mv_esc_total{stream="cpu\"0\"\\x\ny"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "mv_esc_total") {
			t.Errorf("line %d is a torn fragment: %q", i+1, line)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.SetClock(func() uint64 { return 42 })
	r.Counter("mv_ops_total", "ops").Add(9)
	r.Histogram("mv_lat_cycles", "lat").Observe(5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cycle != 42 {
		t.Errorf("cycle = %d, want 42", snap.Cycle)
	}
	ops := snap.Find("mv_ops_total")
	if ops == nil || len(ops.Series) != 1 || *ops.Series[0].Value != 9 {
		t.Fatalf("mv_ops_total: %+v", ops)
	}
	lat := snap.Find("mv_lat_cycles")
	if lat == nil || lat.Series[0].Hist == nil || lat.Series[0].Hist.Count != 1 {
		t.Fatalf("mv_lat_cycles: %+v", lat)
	}
}
