package metrics

// Registry mounting: Merge grafts one registry's families into
// another's export surface, live. A fleet of N shards can then keep
// per-shard registries — incremented lock-free with respect to each
// other — while a single root registry serves the one Prometheus
// endpoint, with an extra label per shard keeping series distinct
// instead of colliding by name.

// mount is one merged source registry plus the labels its series gain
// on export.
type mount struct {
	src   *Registry
	extra []Label
}

// Merge mounts src into r: every family and series src holds — now or
// in the future — appears in r's exports (Prometheus, Snapshot) with
// extra appended to its labels. The mount is live, not a copy: series
// created in src after the Merge are exported too, and values are
// read at export time. Mounted families with the same name as a local
// (or previously mounted) family are merged into it when the types
// agree; a type clash drops the mounted family rather than corrupt
// the exposition. Callers are responsible for supplying extra labels
// that keep same-named series distinct (e.g. shard="3").
//
// Mounts nest (a mounted registry's own mounts are followed,
// accumulating labels) and cycles are tolerated: a registry already
// visited during one export pass is skipped. Local-only accessors
// (CounterTotal, Has) do not traverse mounts.
func (r *Registry) Merge(src *Registry, extra ...Label) {
	if src == nil || src == r {
		return
	}
	r.mu.Lock()
	r.mounts = append(r.mounts, mount{src: src, extra: append([]Label(nil), extra...)})
	r.mu.Unlock()
}

// collect appends r's families (and, recursively, its mounts') to the
// accumulator, re-keying every series with the accumulated extra
// labels. Families merge by name; the first registration fixes help
// text and type.
func (r *Registry) collect(extra []Label, byName map[string]*family, byFam map[*family][]gathered, order *[]*family, visited map[*Registry]bool) {
	if visited[r] {
		return
	}
	visited[r] = true

	// Copy the structure under the lock; evaluate nothing here.
	type rawFam struct {
		name, help string
		typ        Type
		series     []*series
	}
	r.mu.Lock()
	raws := make([]rawFam, 0, len(r.fams))
	for _, f := range r.fams {
		rf := rawFam{name: f.name, help: f.help, typ: f.typ}
		for _, s := range f.series {
			rf.series = append(rf.series, s)
		}
		raws = append(raws, rf)
	}
	mounts := append([]mount(nil), r.mounts...)
	r.mu.Unlock()

	for _, rf := range raws {
		out, ok := byName[rf.name]
		if !ok {
			out = &family{name: rf.name, help: rf.help, typ: rf.typ}
			byName[rf.name] = out
			*order = append(*order, out)
		} else if out.typ != rf.typ {
			continue
		}
		for _, s := range rf.series {
			labels := s.labels
			if len(extra) > 0 {
				labels = sortLabels(append(append([]Label(nil), s.labels...), extra...))
			}
			byFam[out] = append(byFam[out], gathered{fam: out, sig: signature(labels), labels: labels, s: s})
		}
	}
	for _, m := range mounts {
		sub := extra
		if len(m.extra) > 0 {
			sub = append(append([]Label(nil), extra...), m.extra...)
		}
		m.src.collect(sub, byName, byFam, order, visited)
	}
}
