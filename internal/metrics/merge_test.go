package metrics

import (
	"strings"
	"testing"
)

// TestMergeExportsMountedSeries pins the fleet export shape: two
// shard registries with identically named counters merge into one
// root without colliding, because the mount's extra label keys the
// series apart.
func TestMergeExportsMountedSeries(t *testing.T) {
	root := New()
	s0, s1 := New(), New()
	s0.Counter("fleet_requests_total", "requests").Add(7)
	s1.Counter("fleet_requests_total", "requests").Add(9)
	root.Merge(s0, L("shard", "0"))
	root.Merge(s1, L("shard", "1"))

	var sb strings.Builder
	if err := root.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fleet_requests_total{shard="0"} 7`,
		`fleet_requests_total{shard="1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE fleet_requests_total counter"); n != 1 {
		t.Errorf("family header rendered %d times, want 1:\n%s", n, out)
	}

	snap := root.Snapshot()
	fam := snap.Find("fleet_requests_total")
	if fam == nil || len(fam.Series) != 2 {
		t.Fatalf("snapshot families = %+v, want one family with two series", snap.Families)
	}
	if fam.Series[0].Labels["shard"] != "0" || *fam.Series[0].Value != 7 {
		t.Errorf("series 0 = labels %v value %v", fam.Series[0].Labels, *fam.Series[0].Value)
	}
}

// TestMergeIsLive pins that a mount is a view, not a copy: series
// created and values added after the Merge call show up on the next
// export.
func TestMergeIsLive(t *testing.T) {
	root, shard := New(), New()
	root.Merge(shard, L("shard", "2"))
	c := shard.Counter("late_total", "created after the mount")
	c.Add(3)
	shard.Histogram("late_latency", "hist after the mount").Observe(16)

	snap := root.Snapshot()
	if fam := snap.Find("late_total"); fam == nil || *fam.Series[0].Value != 3 {
		t.Fatalf("late counter not live: %+v", snap.Families)
	}
	fam := snap.Find("late_latency")
	if fam == nil || fam.Series[0].Hist == nil || fam.Series[0].Hist.Count != 1 {
		t.Fatalf("late histogram not live: %+v", snap.Families)
	}
	c.Add(2)
	snap = root.Snapshot()
	if fam := snap.Find("late_total"); *fam.Series[0].Value != 5 {
		t.Fatalf("re-export did not re-read the mounted counter: %+v", fam.Series[0])
	}
}

// TestMergeNestsAndMergesLocalFamilies: a mounted registry's own
// mounts are followed with accumulated labels, and a mounted family
// whose name matches a local one merges under a single header.
func TestMergeNestsAndMergesLocalFamilies(t *testing.T) {
	root, mid, leaf := New(), New(), New()
	root.Counter("shared_total", "local and mounted").Add(1)
	leaf.Counter("shared_total", "local and mounted").Add(10)
	mid.Merge(leaf, L("leaf", "a"))
	root.Merge(mid, L("mid", "x"))

	var sb strings.Builder
	if err := root.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "shared_total 1") {
		t.Errorf("local series lost:\n%s", out)
	}
	if !strings.Contains(out, `shared_total{leaf="a",mid="x"} 10`) {
		t.Errorf("nested mount labels wrong:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE shared_total counter"); n != 1 {
		t.Errorf("family header rendered %d times, want 1:\n%s", n, out)
	}
}

// TestMergeToleratesCycles: mutually mounted registries export each
// series exactly once instead of recursing forever.
func TestMergeToleratesCycles(t *testing.T) {
	a, b := New(), New()
	a.Counter("a_total", "").Add(1)
	b.Counter("b_total", "").Add(2)
	a.Merge(b, L("from", "b"))
	b.Merge(a, L("from", "a"))
	snap := a.Snapshot()
	if fam := snap.Find("a_total"); fam == nil || len(fam.Series) != 1 {
		t.Fatalf("cycle export duplicated or lost a_total: %+v", snap.Families)
	}
	if fam := snap.Find("b_total"); fam == nil || len(fam.Series) != 1 {
		t.Fatalf("cycle export duplicated or lost b_total: %+v", snap.Families)
	}
}
