package metrics

// DeltaTracker attributes counter activity to successive measurement
// intervals: each Take returns, per counter, the increase since the
// previous Take that sampled it (or since the tracker was created),
// and advances that baseline. Consumers that tag measurements with
// "what did the machine do during this sample" — mvbench's -json
// Counters field, across any number of -repeat rounds — get
// non-overlapping deltas that sum to the counter totals, never
// since-run-start values that would double-count earlier intervals.
type DeltaTracker struct {
	reg  *Registry
	last map[string]uint64
}

// NewDeltaTracker returns a tracker whose baseline for every counter
// is its value at first Take... i.e. zero for counters that have not
// moved yet, so the first interval is attributed fully.
func NewDeltaTracker(reg *Registry) *DeltaTracker {
	return &DeltaTracker{reg: reg, last: make(map[string]uint64)}
}

// Take returns the per-counter increase since each counter's previous
// Take and moves the baseline forward. Counters absent from the
// registry read as 0 total, so their delta is 0.
func (t *DeltaTracker) Take(names []string) map[string]uint64 {
	out := make(map[string]uint64, len(names))
	for _, name := range names {
		now := t.reg.CounterTotal(name)
		out[name] = now - t.last[name]
		t.last[name] = now
	}
	return out
}
