// Package mem implements the paged physical memory of the simulated
// machine: 4 KiB pages with R/W/X permissions, an mprotect-style
// protection interface, and an optional strict W^X policy.
//
// The multiverse runtime library depends on this layer behaving like a
// real MMU: writing to a read-only text page faults, and under W^X a
// page can never be writable and executable at the same time — exactly
// the constraints §7.2 of the paper discusses.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// PageSize is the size of a page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Prot is a page-protection bit set.
type Prot uint8

// Protection bits.
const (
	Read  Prot = 1 << iota // page may be read by data accesses
	Write                  // page may be written
	Exec                   // page may be fetched from
)

// Common protection combinations.
const (
	RW  = Read | Write
	RX  = Read | Exec
	RWX = Read | Write | Exec
)

// String renders the protection like "rwx" / "r-x".
func (p Prot) String() string {
	b := []byte("---")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Exec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind classifies the access that caused a fault.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "unknown"
}

// Fault describes a memory access violation.
type Fault struct {
	Addr   uint64
	Kind   AccessKind
	Prot   Prot // protection of the faulting page; 0 if unmapped
	Mapped bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if !f.Mapped {
		return fmt.Sprintf("mem: %s fault at %#x: page not mapped", f.Kind, f.Addr)
	}
	return fmt.Sprintf("mem: %s fault at %#x: page protection %s", f.Kind, f.Addr, f.Prot)
}

type page struct {
	data    []byte // always PageSize long
	prot    Prot
	version uint64 // incremented on every write; the icache keys on it
}

// Stats counts the memory-system operations the paper's evaluation
// cares about: protection flips (the mprotect cost of user-mode
// patching, §7.2) and icache flushes (counted here, incremented by
// the CPUs sharing this memory).
type Stats struct {
	ProtectCalls uint64 // successful Protect invocations
	Flushes      uint64 // icache flushes across all attached CPUs
}

// Sub returns the field-wise difference s − prev; the commit-latency
// accounting in core uses it to attribute the protection flips and
// flushes of one commit span.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		ProtectCalls: s.ProtectCalls - prev.ProtectCalls,
		Flushes:      s.Flushes - prev.Flushes,
	}
}

// Injector is the fault-injection hook of the memory system (see
// internal/faultinject, which implements it). A nil injector disables
// injection; the hooks below are single pointer-nil checks, so the
// uninjected paths stay unperturbed. Implementations must be
// deterministic: the same operation sequence sees the same faults.
type Injector interface {
	// ProtectFault is consulted after a Protect call has validated its
	// arguments and before it mutates any page. A non-nil error models
	// a transient or permanent mprotect failure (EPERM/EAGAIN); no
	// protection changes when it fires.
	ProtectFault(addr, length uint64, prot Prot) error
	// WriteTear is consulted before a multi-byte write. A non-nil
	// error models an interrupt or fault landing mid-write: the first
	// tear bytes still reach memory, the rest do not (a torn rel32).
	WriteTear(addr uint64, n int) (tear int, err error)
}

// Memory is a sparse paged address space.
type Memory struct {
	pages map[uint64]*page // keyed by page number (addr >> PageShift)

	// WXExclusive enforces strict W^X: Map and Protect reject any
	// protection with both Write and Exec set.
	WXExclusive bool

	// Stats accumulates operation counters; zero-cost to leave alone.
	Stats Stats

	// Tracer, when non-nil, observes protection transitions.
	Tracer trace.Tracer

	// Inject, when non-nil, may fail Protect calls and tear writes
	// (see Injector). Left nil, the write and protect paths cost one
	// pointer check.
	Inject Injector
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) checkWX(prot Prot) error {
	if m.WXExclusive && prot&Write != 0 && prot&Exec != 0 {
		return fmt.Errorf("mem: W^X policy forbids %s mapping", prot)
	}
	return nil
}

// Map creates pages covering [addr, addr+length) with the given
// protection. addr and length must be page-aligned, and the range must
// not overlap an existing mapping.
func (m *Memory) Map(addr, length uint64, prot Prot) error {
	if addr%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("mem: Map(%#x, %#x) not page-aligned", addr, length)
	}
	if length == 0 {
		return fmt.Errorf("mem: Map with zero length")
	}
	if err := m.checkWX(prot); err != nil {
		return err
	}
	first := addr >> PageShift
	n := length >> PageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := m.pages[first+i]; ok {
			return fmt.Errorf("mem: Map(%#x, %#x) overlaps existing mapping at %#x", addr, length, (first+i)<<PageShift)
		}
	}
	for i := uint64(0); i < n; i++ {
		m.pages[first+i] = &page{data: make([]byte, PageSize), prot: prot}
	}
	return nil
}

// Unmap removes the pages covering [addr, addr+length). Like Map it
// rejects zero-length ranges, and an unmapped page anywhere in the
// range fails the whole call with a *Fault before anything is removed.
func (m *Memory) Unmap(addr, length uint64) error {
	if addr%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("mem: Unmap(%#x, %#x) not page-aligned", addr, length)
	}
	if length == 0 {
		return fmt.Errorf("mem: Unmap with zero length")
	}
	first := addr >> PageShift
	n := length >> PageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := m.pages[first+i]; !ok {
			return fmt.Errorf("mem: Unmap(%#x, %#x): %w", addr, length,
				&Fault{Addr: (first + i) << PageShift, Kind: AccessWrite})
		}
	}
	for i := uint64(0); i < n; i++ {
		delete(m.pages, first+i)
	}
	return nil
}

// Protect changes the protection of all pages overlapping
// [addr, addr+length), like mprotect(2). addr need not be aligned; the
// range is widened to page boundaries. The call is atomic: every page
// is validated (mapped, W^X) before any protection changes, so a
// failure anywhere in the range leaves every page untouched. An
// unmapped page reports a *Fault carrying its address.
func (m *Memory) Protect(addr, length uint64, prot Prot) error {
	if length == 0 {
		return fmt.Errorf("mem: Protect with zero length")
	}
	if err := m.checkWX(prot); err != nil {
		return err
	}
	first := addr >> PageShift
	last := (addr + length - 1) >> PageShift
	for pn := first; pn <= last; pn++ {
		if _, ok := m.pages[pn]; !ok {
			return fmt.Errorf("mem: Protect(%#x, %#x): %w", addr, length,
				&Fault{Addr: pn << PageShift, Kind: AccessWrite})
		}
	}
	if m.Inject != nil {
		if err := m.Inject.ProtectFault(addr, length, prot); err != nil {
			if m.Tracer != nil {
				m.Tracer.Emit(trace.KindFaultInjected, addr, length, 0)
			}
			return err
		}
	}
	old := m.pages[first].prot
	for pn := first; pn <= last; pn++ {
		m.pages[pn].prot = prot
	}
	m.Stats.ProtectCalls++
	if m.Tracer != nil {
		m.Tracer.Emit(trace.KindProtect, addr, length, uint64(prot)|uint64(old)<<8)
	}
	return nil
}

// ProtOf returns the protection of the page containing addr.
func (m *Memory) ProtOf(addr uint64) (Prot, bool) {
	p, ok := m.pages[addr>>PageShift]
	if !ok {
		return 0, false
	}
	return p.prot, true
}

// PageVersion returns the write-version counter of the page containing
// addr. It is incremented on every store to the page; the CPU's
// instruction cache uses it to detect (un)flushed code modification.
func (m *Memory) PageVersion(addr uint64) (uint64, bool) {
	p, ok := m.pages[addr>>PageShift]
	if !ok {
		return 0, false
	}
	return p.version, true
}

func (m *Memory) fault(addr uint64, kind AccessKind) error {
	p, ok := m.pages[addr>>PageShift]
	f := &Fault{Addr: addr, Kind: kind, Mapped: ok}
	if ok {
		f.Prot = p.prot
	}
	return f
}

// access walks the pages covering [addr, addr+len(buf)) and calls f
// once per page with the in-page slice.
func (m *Memory) access(addr uint64, n int, kind AccessKind, need Prot, f func(pg *page, off int, slice []byte)) error {
	if n == 0 {
		return nil
	}
	for n > 0 {
		pg, ok := m.pages[addr>>PageShift]
		if !ok || pg.prot&need != need {
			return m.fault(addr, kind)
		}
		off := int(addr & (PageSize - 1))
		chunk := PageSize - off
		if chunk > n {
			chunk = n
		}
		f(pg, off, pg.data[off:off+chunk])
		addr += uint64(chunk)
		n -= chunk
	}
	return nil
}

// Read copies len(buf) bytes starting at addr into buf, checking the
// Read permission.
func (m *Memory) Read(addr uint64, buf []byte) error {
	pos := 0
	return m.access(addr, len(buf), AccessRead, Read, func(pg *page, off int, slice []byte) {
		copy(buf[pos:], slice)
		pos += len(slice)
	})
}

// Write copies buf to addr, checking the Write permission and bumping
// the page version counters.
func (m *Memory) Write(addr uint64, buf []byte) error {
	if m.Inject != nil {
		if err := m.tornWrite(addr, buf, Write); err != nil {
			return err
		}
	}
	return m.writeBytes(addr, buf, Write)
}

// tornWrite consults the injector before a write; when a tear fires it
// lands the torn prefix (the bytes the interrupted store already
// retired) and returns the injected fault. A nil verdict reports nil
// and the caller proceeds with the full write.
func (m *Memory) tornWrite(addr uint64, buf []byte, need Prot) error {
	tear, err := m.Inject.WriteTear(addr, len(buf))
	if err == nil {
		return nil
	}
	if tear > len(buf) {
		tear = len(buf)
	}
	if tear > 0 {
		if werr := m.writeBytes(addr, buf[:tear], need); werr != nil {
			return werr
		}
	}
	if m.Tracer != nil {
		m.Tracer.Emit(trace.KindFaultInjected, addr, uint64(tear), 1)
	}
	return err
}

// writeBytes is the shared store path of Write and WriteForce.
func (m *Memory) writeBytes(addr uint64, buf []byte, need Prot) error {
	pos := 0
	return m.access(addr, len(buf), AccessWrite, need, func(pg *page, off int, slice []byte) {
		copy(slice, buf[pos:])
		pos += len(slice)
		pg.version++
	})
}

// Fetch copies len(buf) instruction bytes starting at addr into buf,
// checking the Exec permission.
func (m *Memory) Fetch(addr uint64, buf []byte) error {
	pos := 0
	return m.access(addr, len(buf), AccessExec, Exec, func(pg *page, off int, slice []byte) {
		copy(buf[pos:], slice)
		pos += len(slice)
	})
}

// WriteForce copies buf to addr ignoring page protection (but still
// requiring the pages to be mapped). It models the kernel-mode port of
// the runtime library, which patches text through the direct mapping
// instead of calling mprotect. Page versions are bumped as usual.
func (m *Memory) WriteForce(addr uint64, buf []byte) error {
	if m.Inject != nil {
		if err := m.tornWrite(addr, buf, 0); err != nil {
			return err
		}
	}
	return m.writeBytes(addr, buf, 0)
}

func le(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// ReadUint reads a little-endian unsigned integer of the given size
// (1, 2, 4 or 8 bytes) at addr.
func (m *Memory) ReadUint(addr uint64, size int) (uint64, error) {
	var buf [8]byte
	if err := m.Read(addr, buf[:size]); err != nil {
		return 0, err
	}
	return le(buf[:size]), nil
}

// WriteUint writes a little-endian unsigned integer of the given size
// (1, 2, 4 or 8 bytes) at addr.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) error {
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, buf[:size])
}

// Region describes one mapped protection-homogeneous address range.
type Region struct {
	Addr uint64
	Len  uint64
	Prot Prot
}

// Regions returns the mapped regions in address order, coalescing
// adjacent pages with equal protection.
func (m *Memory) Regions() []Region {
	if len(m.pages) == 0 {
		return nil
	}
	nums := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		nums = append(nums, pn)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	var out []Region
	for _, pn := range nums {
		p := m.pages[pn]
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Addr+prev.Len == pn<<PageShift && prev.Prot == p.prot {
				prev.Len += PageSize
				continue
			}
		}
		out = append(out, Region{Addr: pn << PageShift, Len: PageSize, Prot: p.prot})
	}
	return out
}

// PageAlignDown rounds addr down to a page boundary.
func PageAlignDown(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// PageAlignUp rounds n up to a multiple of the page size.
func PageAlignUp(n uint64) uint64 { return (n + PageSize - 1) &^ (PageSize - 1) }
