package mem

import (
	"testing"

	"repro/internal/trace"
)

func TestProtectCountsAndTraces(t *testing.T) {
	m := New()
	if err := m.Map(0x1000, 2*PageSize, RW); err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector(trace.Options{})
	m.Tracer = col.NewStream("mem", nil)

	if err := m.Protect(0x1000, PageSize, Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x1000, PageSize, RW); err != nil {
		t.Fatal(err)
	}
	// A failing Protect (unmapped page) must count and emit nothing.
	if err := m.Protect(0x100000, PageSize, Read); err == nil {
		t.Fatal("Protect of unmapped range should fail")
	}

	if m.Stats.ProtectCalls != 2 {
		t.Errorf("ProtectCalls = %d, want 2", m.Stats.ProtectCalls)
	}
	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	ev := evs[0]
	if ev.Kind != trace.KindProtect || ev.Addr != 0x1000 || ev.A != PageSize {
		t.Errorf("bad event: %+v", ev)
	}
	if newProt, oldProt := Prot(ev.B), Prot(ev.B>>8); newProt != Read || oldProt != RW {
		t.Errorf("prot packing: new=%v old=%v, want new=%v old=%v", newProt, oldProt, Read, RW)
	}
}
