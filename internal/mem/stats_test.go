package mem

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestStatsSubCoversAllFields fails whenever a field is added to Stats
// but forgotten in Sub — which would silently corrupt the per-commit
// deltas the core commit-latency accounting computes. Fields are
// seeded with distinct values via reflection so the test needs no
// updating when Stats grows.
func TestStatsSubCoversAllFields(t *testing.T) {
	var now, prev Stats
	vn := reflect.ValueOf(&now).Elem()
	vp := reflect.ValueOf(&prev).Elem()
	for i := 0; i < vn.NumField(); i++ {
		if vn.Field(i).Kind() != reflect.Uint64 {
			t.Fatalf("Stats.%s is %s; extend this test for non-uint64 fields",
				vn.Type().Field(i).Name, vn.Field(i).Kind())
		}
		vn.Field(i).SetUint(uint64(1000 * (i + 1)))
		vp.Field(i).SetUint(uint64(i + 1))
	}
	diff := reflect.ValueOf(now.Sub(prev))
	for i := 0; i < diff.NumField(); i++ {
		want := uint64(1000*(i+1)) - uint64(i+1)
		if got := diff.Field(i).Uint(); got != want {
			t.Errorf("Stats.Sub drops field %s: got %d, want %d",
				diff.Type().Field(i).Name, got, want)
		}
	}
}

func TestProtectCountsAndTraces(t *testing.T) {
	m := New()
	if err := m.Map(0x1000, 2*PageSize, RW); err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector(trace.Options{})
	m.Tracer = col.NewStream("mem", nil)

	if err := m.Protect(0x1000, PageSize, Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x1000, PageSize, RW); err != nil {
		t.Fatal(err)
	}
	// A failing Protect (unmapped page) must count and emit nothing.
	if err := m.Protect(0x100000, PageSize, Read); err == nil {
		t.Fatal("Protect of unmapped range should fail")
	}

	if m.Stats.ProtectCalls != 2 {
		t.Errorf("ProtectCalls = %d, want 2", m.Stats.ProtectCalls)
	}
	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	ev := evs[0]
	if ev.Kind != trace.KindProtect || ev.Addr != 0x1000 || ev.A != PageSize {
		t.Errorf("bad event: %+v", ev)
	}
	if newProt, oldProt := Prot(ev.B), Prot(ev.B>>8); newProt != Read || oldProt != RW {
		t.Errorf("prot packing: new=%v old=%v, want new=%v old=%v", newProt, oldProt, Read, RW)
	}
}
