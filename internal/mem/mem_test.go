package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, m *Memory, addr, length uint64, prot Prot) {
	t.Helper()
	if err := m.Map(addr, length, prot); err != nil {
		t.Fatalf("Map(%#x, %#x, %v): %v", addr, length, prot, err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, RW)
	data := []byte("hello, multiverse")
	if err := m.Write(0x1F00, data); err != nil { // straddles no boundary
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(0x1F00, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, RW)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	addr := uint64(0x2000 - 50) // straddles the page boundary
	if err := m.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page read mismatch")
	}
}

func TestUnmappedFault(t *testing.T) {
	m := New()
	err := m.Read(0x5000, make([]byte, 1))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Mapped || f.Kind != AccessRead || f.Addr != 0x5000 {
		t.Errorf("fault = %+v", f)
	}
}

func TestProtectionFaults(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Read)
	if err := m.Read(0x1000, make([]byte, 8)); err != nil {
		t.Errorf("read from r-- page: %v", err)
	}
	err := m.Write(0x1000, []byte{1})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != AccessWrite {
		t.Errorf("write to r-- page: err = %v, want write fault", err)
	}
	err = m.Fetch(0x1000, make([]byte, 1))
	if !errors.As(err, &f) || f.Kind != AccessExec {
		t.Errorf("fetch from r-- page: err = %v, want exec fault", err)
	}
}

func TestFetchFromExecPage(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RX)
	if err := m.Fetch(0x1000, make([]byte, 4)); err != nil {
		t.Errorf("fetch from r-x page: %v", err)
	}
	if err := m.Write(0x1000, []byte{1}); err == nil {
		t.Error("write to r-x page succeeded, want fault")
	}
}

func TestProtectChangesPermissions(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RX)
	// The runtime library's patching dance: RX -> RW -> write -> RX.
	if err := m.Protect(0x1000, PageSize, RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1005, []byte{0xAA}); err != nil {
		t.Fatalf("write after mprotect(RW): %v", err)
	}
	if err := m.Protect(0x1000, PageSize, RX); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1005, []byte{0xBB}); err == nil {
		t.Error("write after mprotect(RX) succeeded, want fault")
	}
	var b [1]byte
	if err := m.Read(0x1005, b[:]); err != nil || b[0] != 0xAA {
		t.Errorf("byte = %#x, err = %v; want 0xAA", b[0], err)
	}
}

func TestProtectUnalignedRangeWidens(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, Read)
	// A 5-byte protect straddling the boundary must affect both pages.
	if err := m.Protect(0x1FFE, 5, RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1000, []byte{1}); err != nil {
		t.Errorf("first page not widened: %v", err)
	}
	if err := m.Write(0x2FFF, []byte{1}); err != nil {
		t.Errorf("second page not widened: %v", err)
	}
}

func TestProtectUnmappedFails(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RW)
	if err := m.Protect(0x1000, 2*PageSize, RW); err == nil {
		t.Error("Protect over hole succeeded, want error")
	}
}

func TestWXPolicy(t *testing.T) {
	m := New()
	m.WXExclusive = true
	if err := m.Map(0x1000, PageSize, RWX); err == nil {
		t.Error("Map(RWX) under W^X succeeded, want error")
	}
	mustMap(t, m, 0x1000, PageSize, RX)
	if err := m.Protect(0x1000, PageSize, RWX); err == nil {
		t.Error("Protect(RWX) under W^X succeeded, want error")
	}
	if err := m.Protect(0x1000, PageSize, RW); err != nil {
		t.Errorf("Protect(RW) under W^X: %v", err)
	}
}

func TestMapOverlapAndAlignment(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RW)
	if err := m.Map(0x1000, PageSize, RW); err == nil {
		t.Error("overlapping Map succeeded")
	}
	if err := m.Map(0x1001, PageSize, RW); err == nil {
		t.Error("unaligned Map succeeded")
	}
	if err := m.Map(0x3000, 100, RW); err == nil {
		t.Error("unaligned length Map succeeded")
	}
	if err := m.Map(0x3000, 0, RW); err == nil {
		t.Error("zero-length Map succeeded")
	}
}

func TestUnmap(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, RW)
	if err := m.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(0x1000, make([]byte, 1)); err == nil {
		t.Error("read from unmapped page succeeded")
	}
	if err := m.Read(0x2000, make([]byte, 1)); err != nil {
		t.Errorf("second page vanished: %v", err)
	}
	if err := m.Unmap(0x1000, PageSize); err == nil {
		t.Error("double Unmap succeeded")
	}
}

func TestPageVersionBumpsOnWrite(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RW)
	v0, ok := m.PageVersion(0x1234)
	if !ok {
		t.Fatal("PageVersion not ok")
	}
	if err := m.Write(0x1200, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	v1, _ := m.PageVersion(0x1234)
	if v1 == v0 {
		t.Error("page version did not change on write")
	}
	// Reads must not bump the version.
	if err := m.Read(0x1200, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	v2, _ := m.PageVersion(0x1234)
	if v2 != v1 {
		t.Error("page version changed on read")
	}
}

func TestWriteForceIgnoresProtection(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RX)
	v0, _ := m.PageVersion(0x1000)
	if err := m.WriteForce(0x1000, []byte{0x42}); err != nil {
		t.Fatalf("WriteForce: %v", err)
	}
	v1, _ := m.PageVersion(0x1000)
	if v1 == v0 {
		t.Error("WriteForce did not bump page version")
	}
	var b [1]byte
	if err := m.Read(0x1000, b[:]); err != nil || b[0] != 0x42 {
		t.Errorf("byte = %#x, err = %v", b[0], err)
	}
	// Still requires a mapping.
	if err := m.WriteForce(0x9000, []byte{1}); err == nil {
		t.Error("WriteForce to unmapped page succeeded")
	}
}

func TestReadWriteUint(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, RW)
	for _, size := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			want = 0x1122334455667788
		}
		if err := m.WriteUint(0x1100, size, 0x1122334455667788); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadUint(0x1100, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestUintRoundTripProperty(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, RW)
	f := func(v uint64, offset uint16) bool {
		addr := 0x1000 + uint64(offset)%(2*PageSize-8)
		if err := m.WriteUint(addr, 8, v); err != nil {
			return false
		}
		got, err := m.ReadUint(addr, 8)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionsCoalesce(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, RX)
	mustMap(t, m, 0x3000, PageSize, RW)
	mustMap(t, m, 0x5000, PageSize, RW) // hole at 0x4000
	got := m.Regions()
	want := []Region{
		{Addr: 0x1000, Len: 2 * PageSize, Prot: RX},
		{Addr: 0x3000, Len: PageSize, Prot: RW},
		{Addr: 0x5000, Len: PageSize, Prot: RW},
	}
	if len(got) != len(want) {
		t.Fatalf("regions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("region %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRegionsSplitOnProtChange(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, RX)
	if err := m.Protect(0x2000, PageSize, RW); err != nil {
		t.Fatal(err)
	}
	got := m.Regions()
	if len(got) != 2 || got[0].Prot != RX || got[1].Prot != RW {
		t.Errorf("regions = %+v", got)
	}
}

func TestZeroLengthAccessesSucceed(t *testing.T) {
	m := New()
	if err := m.Read(0x9999, nil); err != nil {
		t.Errorf("zero-length read: %v", err)
	}
	if err := m.Write(0x9999, nil); err != nil {
		t.Errorf("zero-length write: %v", err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if PageAlignDown(0x1FFF) != 0x1000 {
		t.Error("PageAlignDown")
	}
	if PageAlignUp(1) != PageSize {
		t.Error("PageAlignUp(1)")
	}
	if PageAlignUp(PageSize) != PageSize {
		t.Error("PageAlignUp(PageSize)")
	}
	if PageAlignUp(0) != 0 {
		t.Error("PageAlignUp(0)")
	}
}

func TestFaultErrorStrings(t *testing.T) {
	f := &Fault{Addr: 0x1234, Kind: AccessWrite, Mapped: true, Prot: RX}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
	g := &Fault{Addr: 0x1234, Kind: AccessExec}
	if g.Error() == "" {
		t.Error("empty unmapped fault message")
	}
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{0: "---", Read: "r--", RW: "rw-", RX: "r-x", RWX: "rwx"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
