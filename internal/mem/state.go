// Memory state export/import for deterministic machine snapshots.
//
// A page's complete observable state is its data, its protection and
// its write-version counter. The version matters as much as the data:
// the CPUs' instruction caches key coherence checks (ICacheStale) on
// it, so restoring data without versions would let a restored machine
// disagree with the original about which icache lines are stale.

package mem

import (
	"fmt"
	"sort"
)

// PageState is one exported page.
type PageState struct {
	PN      uint64 // page number (addr >> PageShift)
	Prot    Prot
	Version uint64
	Data    []byte // PageSize long
}

// ExportPages returns every mapped page in page-number order. The
// result shares no memory with the address space.
func (m *Memory) ExportPages() []PageState {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	out := make([]PageState, 0, len(pns))
	for _, pn := range pns {
		p := m.pages[pn]
		out = append(out, PageState{
			PN:      pn,
			Prot:    p.prot,
			Version: p.version,
			Data:    append([]byte(nil), p.data...),
		})
	}
	return out
}

// ImportPages replaces the entire address space with the given pages —
// wholesale, so the restored mapping is exactly the exported one
// regardless of what the caller had mapped before (a freshly loaded
// image, extra CPU stacks, anything). Stats and policy flags are left
// untouched; the snapshot layer restores Stats separately.
func (m *Memory) ImportPages(pages []PageState) error {
	fresh := make(map[uint64]*page, len(pages))
	for i := range pages {
		ps := &pages[i]
		if len(ps.Data) != PageSize {
			return fmt.Errorf("mem: page %#x holds %d bytes, want %d", ps.PN, len(ps.Data), PageSize)
		}
		if _, dup := fresh[ps.PN]; dup {
			return fmt.Errorf("mem: duplicate page %#x in import", ps.PN)
		}
		if err := m.checkWX(ps.Prot); err != nil {
			return fmt.Errorf("mem: page %#x: %w", ps.PN, err)
		}
		fresh[ps.PN] = &page{
			data:    append([]byte(nil), ps.Data...),
			prot:    ps.Prot,
			version: ps.Version,
		}
	}
	m.pages = fresh
	return nil
}

// SetStats overwrites the operation counters; the snapshot layer uses
// it so a restored run's counters continue from the exported values.
func (m *Memory) SetStats(s Stats) { m.Stats = s }
